# Fixture: every line here must trip R5 (fast-math / rogue ISA flags).
add_compile_options(-O2 -ffast-math)
target_compile_options(core PRIVATE -funsafe-math-optimizations)
set(CMAKE_CXX_FLAGS "${CMAKE_CXX_FLAGS} -Ofast")
set_source_files_properties(kernels_avx2.cc PROPERTIES COMPILE_OPTIONS "-mavx2;-mfma;-fassociative-math")
