// Client selection: the paper's shuffled-queue protocol (§V-D).
//
// "At the beginning of an epoch, the server shuffles the queue of clients.
//  Then, at each epoch, there are several rounds for the central server to
//  traverse the client queue. During each round, the central server selects
//  256 users for training."
#ifndef HETEFEDREC_FED_SCHEDULER_H_
#define HETEFEDREC_FED_SCHEDULER_H_

#include <vector>

#include "src/data/types.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Produces per-epoch round batches covering every client once.
class RoundScheduler {
 public:
  /// \param num_users total client population.
  /// \param clients_per_round batch size (paper: 256).
  RoundScheduler(size_t num_users, size_t clients_per_round);

  /// Shuffles the queue and splits it into consecutive round batches. Every
  /// user appears in exactly one batch; the last batch may be smaller.
  std::vector<std::vector<UserId>> EpochBatches(Rng* rng) const;

  size_t rounds_per_epoch() const;

 private:
  size_t num_users_;
  size_t clients_per_round_;
};

/// \brief Stateful client queue for availability / over-selection rounds.
///
/// Generalizes the shuffled-queue protocol: `BeginEpoch` refills and
/// shuffles, `NextRound` pops the next `clients_per_round + over_selection`
/// clients, and `Requeue` re-enters a client at the tail — used when a
/// selected client was offline or straggled past the round cut. With
/// availability 1.0 and no over-selection, the popped rounds are exactly
/// `RoundScheduler::EpochBatches` of the same Rng draw (asserted in
/// tests/fed/scheduler_test.cc), which keeps the default path bit-identical
/// to the paper's protocol.
class ClientQueue {
 public:
  /// \param over_selection extra clients selected per round (straggler
  ///   slack); the round still merges at most clients_per_round updates.
  ClientQueue(size_t num_users, size_t clients_per_round,
              size_t over_selection = 0);

  /// Refills the queue with every user and shuffles it.
  void BeginEpoch(Rng* rng);

  bool Exhausted() const { return head_ >= queue_.size(); }

  /// Remaining clients in the queue (including requeued ones).
  size_t pending() const { return queue_.size() - head_; }

  /// Pops up to clients_per_round + over_selection clients in queue order.
  std::vector<UserId> NextRound();

  /// Pops the single next client in queue order — the asynchronous
  /// dispatcher's unit of selection. Requires !Exhausted().
  UserId PopNext();

  /// Re-enters a client at the queue tail (it will be selected again this
  /// epoch).
  void Requeue(UserId u) { queue_.push_back(u); }

  /// Nominal rounds per epoch with everyone online (the paper's count).
  size_t rounds_per_epoch() const;

  /// Pending clients in queue order (head..tail), for run checkpoints.
  std::vector<UserId> PendingSnapshot() const {
    return std::vector<UserId>(queue_.begin() + head_, queue_.end());
  }

  /// Replaces the queue with a snapshot taken by PendingSnapshot (the
  /// compaction offset resets; only the pending order matters).
  void RestorePending(const std::vector<UserId>& pending) {
    queue_ = pending;
    head_ = 0;
  }

 private:
  size_t num_users_;
  size_t clients_per_round_;
  size_t over_selection_;
  std::vector<UserId> queue_;
  size_t head_ = 0;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SCHEDULER_H_
