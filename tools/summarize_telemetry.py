#!/usr/bin/env python3
"""Summarize / validate HeteFedRec telemetry output (docs/OBSERVABILITY.md).

Usage:
  tools/summarize_telemetry.py run.jsonl               render tables
  tools/summarize_telemetry.py --trace run_trace.json  validate + summarize
  tools/summarize_telemetry.py --check run.jsonl [--trace run_trace.json]
                                                       validate only (CI)

Validates the JSONL metrics stream (schema version, row types, monotone
round index and virtual clock) and the Chrome trace file (parseable JSON,
traceEvents present, ts non-decreasing in file order for non-metadata
events), then renders round / eval / phase-profile tables.
"""

import argparse
import json
import sys

ROW_TYPES = {"meta", "round", "eval", "summary", "profile"}


def fail(msg):
    print(f"summarize_telemetry: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_metrics(path):
    rows = []
    with open(path, "r", encoding="utf-8") as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"{path}:{n}: not valid JSON: {e}")
            if not isinstance(row, dict) or "type" not in row:
                fail(f"{path}:{n}: row has no 'type'")
            if row["type"] not in ROW_TYPES:
                fail(f"{path}:{n}: unknown row type '{row['type']}'")
            rows.append(row)
    if not rows:
        fail(f"{path}: empty metrics stream")
    return rows


def check_metrics(path, rows):
    if rows[0]["type"] != "meta":
        fail(f"{path}: first row must be type=meta, got {rows[0]['type']}")
    if rows[0].get("version") != 1:
        fail(f"{path}: unsupported schema version {rows[0].get('version')}")
    prev_round, prev_clock = 0, -1.0
    summaries = 0
    for row in rows:
        t = row["type"]
        if t == "round":
            for key in ("round", "epoch", "clock", "duration", "merged",
                        "metrics"):
                if key not in row:
                    fail(f"{path}: round row missing '{key}'")
            if row["round"] <= prev_round:
                fail(f"{path}: round index not increasing at {row['round']}")
            prev_round = row["round"]
            if row["clock"] < prev_clock:
                fail(f"{path}: virtual clock went backwards at round "
                     f"{row['round']}")
            prev_clock = row["clock"]
        elif t == "eval":
            for key in ("epoch", "recall", "ndcg"):
                if key not in row:
                    fail(f"{path}: eval row missing '{key}'")
        elif t == "summary":
            summaries += 1
    if summaries != 1:
        fail(f"{path}: expected exactly one summary row, got {summaries}")
    print(f"summarize_telemetry: {path}: OK "
          f"({prev_round} rounds, clock {prev_clock:.1f}s)")


def check_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            trace = json.load(f)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON: {e}")
    if "traceEvents" not in trace:
        fail(f"{path}: no traceEvents key")
    events = trace["traceEvents"]
    prev_ts = -1.0
    names = {}
    for i, ev in enumerate(events):
        for key in ("ph", "name", "pid", "tid"):
            if key not in ev:
                fail(f"{path}: event {i} missing '{key}'")
        if ev["ph"] == "M":
            continue
        if "ts" not in ev:
            fail(f"{path}: event {i} ({ev['name']}) has no ts")
        if ev["ts"] < prev_ts:
            fail(f"{path}: ts not monotone at event {i} ({ev['name']}): "
                 f"{ev['ts']} < {prev_ts}")
        prev_ts = ev["ts"]
        names[ev["name"]] = names.get(ev["name"], 0) + 1
    breakdown = " ".join(f"{k}={v}" for k, v in sorted(names.items()))
    print(f"summarize_telemetry: {path}: OK ({len(events)} events, "
          f"{breakdown})")
    return events


def table(title, headers, rows):
    widths = [len(h) for h in headers]
    rows = [[str(c) for c in r] for r in rows]
    for r in rows:
        for i, c in enumerate(r):
            widths[i] = max(widths[i], len(c))
    print(f"\n{title}")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def render(rows):
    meta = rows[0]
    print(f"run: method={meta.get('method')} dataset={meta.get('dataset')} "
          f"seed={meta.get('seed')} async={meta.get('async')} "
          f"epochs={meta.get('epochs')}")

    rounds = [r for r in rows if r["type"] == "round"]
    if rounds:
        step = max(1, len(rounds) // 10)
        shown = rounds[::step]
        if shown[-1] is not rounds[-1]:
            shown.append(rounds[-1])
        table("Rounds (sampled)",
              ["round", "epoch", "clock_s", "dur_s", "merged", "queue",
               "down_scalars", "up_scalars"],
              [[r["round"], r["epoch"], f"{r['clock']:.1f}",
                f"{r['duration']:.2f}", r["merged"], r.get("queue", ""),
                r["metrics"].get("comm.down_scalars", ""),
                r["metrics"].get("comm.up_scalars", "")] for r in shown])

    evals = [r for r in rows if r["type"] == "eval"]
    if evals:
        table("Evaluations",
              ["epoch", "clock_s", "recall@K", "ndcg@K", "loss"],
              [[r["epoch"], f"{r['clock']:.1f}", f"{r['recall']:.5f}",
                f"{r['ndcg']:.5f}", f"{r.get('loss', 0.0):.4f}"]
               for r in evals])

    profiles = [r for r in rows if r["type"] == "profile"]
    if profiles:
        table("Phase profile (wall seconds)",
              ["phase", "calls", "total_s", "self_s"],
              [["  " * r["path"].count("/") + r["path"].rsplit("/", 1)[-1],
                r["calls"], f"{r['total_s']:.3f}", f"{r['self_s']:.3f}"]
               for r in profiles])

    summary = [r for r in rows if r["type"] == "summary"]
    if summary:
        s = summary[0]
        print(f"\nsummary: rounds={s.get('rounds')} merges={s.get('merges')} "
              f"clock={s.get('clock', 0.0):.1f}s "
              f"recall={s.get('recall', 0.0):.5f} "
              f"ndcg={s.get('ndcg', 0.0):.5f} "
              f"scalars={s.get('total_scalars')} "
              f"dropped={s.get('dropped')}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("metrics", nargs="?", help="metrics JSONL stream")
    ap.add_argument("--trace", help="Chrome trace JSON file")
    ap.add_argument("--check", action="store_true",
                    help="validate only; exit nonzero on any violation")
    args = ap.parse_args()
    if not args.metrics and not args.trace:
        ap.error("nothing to do: pass a metrics file and/or --trace")

    if args.metrics:
        rows = load_metrics(args.metrics)
        check_metrics(args.metrics, rows)
        if not args.check:
            render(rows)
    if args.trace:
        check_trace(args.trace)


if __name__ == "__main__":
    main()
