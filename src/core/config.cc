#include "src/core/config.h"

#include "src/util/cli.h"

namespace hetefedrec {

Status ApplyExperimentFlags(const CommandLine& cli,
                            ExperimentConfig* config) {
  config->seed = cli.GetUint64("seed");
  config->num_threads = static_cast<size_t>(cli.GetInt("threads"));
  config->use_sparse_updates = !cli.GetBool("dense_updates");
  config->use_batched_scoring = !cli.GetBool("scalar_scoring");
  config->use_batched_topk = !cli.GetBool("scalar_topk");
  config->eval_candidate_sample =
      static_cast<size_t>(cli.GetInt("eval_candidates"));
  config->sync_replica_cap = static_cast<size_t>(cli.GetInt("replica_cap"));
  config->sparse_comm_accounting = cli.GetBool("sparse_comm");
  config->full_downloads = !cli.GetBool("delta_downloads");
  config->availability = cli.GetDouble("availability");
  config->straggler_slack = static_cast<size_t>(cli.GetInt("straggler_slack"));
  config->round_deadline = cli.GetDouble("round_deadline");

  auto backend = ComputeBackendByName(cli.GetString("compute_backend"));
  if (!backend.ok()) return backend.status();
  config->compute_backend = *backend;
  const std::string wire_format = cli.GetString("wire_format");
  if (wire_format == "auto") {
    config->wire_scalar_bytes =
        config->compute_backend == ComputeBackend::kFp64 ? 8 : 4;
  } else {
    auto wire = WireScalarBytesByName(wire_format);
    if (!wire.ok()) return wire.status();
    config->wire_scalar_bytes = *wire;
  }
  config->server_shards = static_cast<size_t>(cli.GetInt("server_shards"));

  config->net_bandwidth = cli.GetDouble("net_bandwidth");
  config->net_bandwidth_sigma = cli.GetDouble("net_bandwidth_sigma");
  config->net_latency = cli.GetDouble("net_latency");
  config->net_latency_sigma = cli.GetDouble("net_latency_sigma");
  config->net_compute_per_sample = cli.GetDouble("net_compute");

  config->async_mode = cli.GetBool("async");
  config->async_staleness_alpha = cli.GetDouble("async_alpha");
  config->async_max_staleness =
      static_cast<size_t>(cli.GetInt("async_max_staleness"));
  config->async_dispatch_batch =
      static_cast<size_t>(cli.GetInt("async_dispatch_batch"));
  config->async_inflight = static_cast<size_t>(cli.GetInt("async_inflight"));
  config->async_distill_every =
      static_cast<size_t>(cli.GetInt("async_distill_every"));

  config->fault_upload_loss = cli.GetDouble("fault_upload_loss");
  config->fault_download_loss = cli.GetDouble("fault_download_loss");
  config->fault_crash = cli.GetDouble("fault_crash");
  config->fault_duplicate = cli.GetDouble("fault_duplicate");
  config->fault_corrupt = cli.GetDouble("fault_corrupt");
  config->fault_retry_max = static_cast<size_t>(cli.GetInt("fault_retry_max"));
  config->fault_retry_base = cli.GetDouble("fault_retry_base");
  config->fault_retry_cap = cli.GetDouble("fault_retry_cap");
  config->fault_quarantine_base = cli.GetDouble("fault_quarantine_base");
  config->fault_quarantine_cap = cli.GetDouble("fault_quarantine_cap");
  config->fault_jitter = cli.GetDouble("fault_jitter");
  config->admission_control = cli.GetBool("admission");
  config->admit_max_row_norm = cli.GetDouble("admit_max_row_norm");
  config->admit_outlier_z = cli.GetDouble("admit_outlier_z");

  config->checkpoint_every =
      static_cast<size_t>(cli.GetInt("checkpoint_every"));
  config->resume_run = cli.GetBool("resume");
  config->debug_stop_after_rounds =
      static_cast<size_t>(cli.GetUint64("stop_after_rounds"));
  config->metrics_out = cli.GetString("metrics_out");
  config->trace_out = cli.GetString("trace_out");
  config->profile = cli.GetBool("profile");

  const std::string agg = cli.GetString("agg");
  if (agg == "mean") {
    config->aggregation = AggregationMode::kMean;
  } else if (agg == "sum") {
    config->aggregation = AggregationMode::kSum;
  } else if (agg == "weighted") {
    config->aggregation = AggregationMode::kDataWeighted;
  } else {
    return Status::InvalidArgument("unknown --agg '" + agg + "'");
  }
  return Status::OK();
}

std::string MethodName(Method m) {
  switch (m) {
    case Method::kAllSmall:
      return "All Small";
    case Method::kAllLarge:
      return "All Large";
    case Method::kAllLargeExclusive:
      return "All Large/Exclusive";
    case Method::kStandalone:
      return "Standalone";
    case Method::kClusteredFedRec:
      return "Clustered FedRec";
    case Method::kDirectlyAggregate:
      return "Directly Aggregate";
    case Method::kHeteFedRec:
      return "HeteFedRec(Ours)";
  }
  return "?";
}

StatusOr<Method> MethodByName(const std::string& name) {
  if (name == "all_small") return Method::kAllSmall;
  if (name == "all_large") return Method::kAllLarge;
  if (name == "all_large_exclusive") return Method::kAllLargeExclusive;
  if (name == "standalone") return Method::kStandalone;
  if (name == "clustered") return Method::kClusteredFedRec;
  if (name == "direct") return Method::kDirectlyAggregate;
  if (name == "hetefedrec") return Method::kHeteFedRec;
  return Status::InvalidArgument(
      "unknown method '" + name +
      "' (expected all_small|all_large|all_large_exclusive|standalone|"
      "clustered|direct|hetefedrec)");
}

StatusOr<size_t> WireScalarBytesByName(const std::string& name) {
  if (name == "fp64") return size_t{8};
  if (name == "fp32") return size_t{4};
  if (name == "fp16") return size_t{2};
  return Status::InvalidArgument("unknown wire format '" + name +
                                 "' (expected fp64|fp32|fp16)");
}

bool IsHeterogeneous(Method m) {
  switch (m) {
    case Method::kStandalone:
    case Method::kClusteredFedRec:
    case Method::kDirectlyAggregate:
    case Method::kHeteFedRec:
      return true;
    default:
      return false;
  }
}

Status ExperimentConfig::Validate() const {
  if (dims[0] == 0 || dims[0] > dims[1] || dims[1] > dims[2]) {
    return Status::InvalidArgument("dims must satisfy 0 < Ns <= Nm <= Nl");
  }
  if (data_scale <= 0.0 || data_scale > 1.0) {
    return Status::InvalidArgument("data_scale must be in (0, 1]");
  }
  if (global_epochs <= 0 || local_epochs <= 0) {
    return Status::InvalidArgument("epoch counts must be positive");
  }
  if (clients_per_round == 0) {
    return Status::InvalidArgument("clients_per_round must be positive");
  }
  if (lr <= 0.0) return Status::InvalidArgument("lr must be positive");
  if (alpha < 0.0) return Status::InvalidArgument("alpha must be >= 0");
  if (kd_items == 0 && ensemble_distillation) {
    return Status::InvalidArgument("kd_items must be positive with RESKD on");
  }
  if (kd_steps < 0 || kd_lr < 0.0) {
    return Status::InvalidArgument("kd_steps/kd_lr must be non-negative");
  }
  if (top_k == 0) return Status::InvalidArgument("top_k must be positive");
  if (eval_candidate_sample > 0 && eval_candidate_sample < top_k) {
    // A candidate pool smaller than the list length would silently report
    // metrics over truncated rankings, incomparable with full evaluation.
    return Status::InvalidArgument(
        "eval_candidate_sample must be 0 (full catalogue) or >= top_k");
  }
  if (local_validation_fraction < 0.0 || local_validation_fraction >= 1.0) {
    return Status::InvalidArgument(
        "local_validation_fraction must be in [0, 1)");
  }
  double frac_total =
      group_fractions[0] + group_fractions[1] + group_fractions[2];
  if (frac_total <= 0.0) {
    return Status::InvalidArgument("group fractions must sum to > 0");
  }
  if (availability <= 0.0 || availability > 1.0) {
    return Status::InvalidArgument("availability must be in (0, 1]");
  }
  // Catches negative CLI ints cast through size_t (2^64-ish values).
  if (num_threads > 4096) {
    return Status::InvalidArgument("num_threads is implausibly large");
  }
  if (server_shards > 4096) {
    return Status::InvalidArgument(
        "server_shards is implausibly large (negative CLI value?)");
  }
  if (eval_candidate_sample > (size_t{1} << 32)) {
    return Status::InvalidArgument(
        "eval_candidate_sample is implausibly large (negative CLI value?)");
  }
  if (sync_replica_cap > (size_t{1} << 32)) {
    return Status::InvalidArgument(
        "sync_replica_cap is implausibly large (negative CLI value?)");
  }
  if (straggler_slack > 16 * clients_per_round) {
    return Status::InvalidArgument(
        "straggler_slack must be <= 16 x clients_per_round");
  }
  if (round_deadline < 0.0) {
    return Status::InvalidArgument("round_deadline must be >= 0");
  }
  if (net_bandwidth <= 0.0) {
    return Status::InvalidArgument("net_bandwidth must be positive");
  }
  if (net_bandwidth_sigma < 0.0 || net_latency < 0.0 ||
      net_latency_sigma < 0.0 || net_compute_per_sample < 0.0) {
    return Status::InvalidArgument("network parameters must be >= 0");
  }
  if (wire_scalar_bytes != 2 && wire_scalar_bytes != 4 &&
      wire_scalar_bytes != 8) {
    return Status::InvalidArgument(
        "wire_scalar_bytes must be 2 (fp16), 4 (fp32) or 8 (fp64)");
  }
  if (async_staleness_alpha < 0.0) {
    return Status::InvalidArgument("async_staleness_alpha must be >= 0");
  }
  if (async_dispatch_batch == 0) {
    return Status::InvalidArgument("async_dispatch_batch must be >= 1");
  }
  if (async_mode && aggregation == AggregationMode::kDataWeighted) {
    // Async merges apply one update at a time with its staleness weight;
    // there is no round population to normalize data-size weights against.
    return Status::InvalidArgument(
        "async_mode does not support data-weighted aggregation");
  }
  // Catch negative CLI ints cast through size_t (2^64-ish values).
  if (async_inflight > (size_t{1} << 32) ||
      async_distill_every > (size_t{1} << 32) ||
      async_max_staleness > (size_t{1} << 32) ||
      async_dispatch_batch > (size_t{1} << 32)) {
    return Status::InvalidArgument(
        "async_* knob is implausibly large (negative CLI value?)");
  }
  const std::array<double, 5> fault_rates = {
      fault_upload_loss, fault_download_loss, fault_crash, fault_duplicate,
      fault_corrupt};
  double fault_total = 0.0;
  for (double rate : fault_rates) {
    if (rate < 0.0 || rate > 1.0) {
      return Status::InvalidArgument("fault_* rates must be in [0, 1]");
    }
    fault_total += rate;
  }
  if (fault_total > 1.0) {
    // The rates partition a single uniform draw; a sum above 1 would
    // silently truncate the last segments.
    return Status::InvalidArgument("fault_* rates must sum to <= 1");
  }
  if (fault_retry_max < 1) {
    return Status::InvalidArgument("fault_retry_max must be >= 1");
  }
  if (fault_retry_max > (size_t{1} << 32)) {
    return Status::InvalidArgument(
        "fault_retry_max is implausibly large (negative CLI value?)");
  }
  if (fault_retry_base <= 0.0 || fault_quarantine_base <= 0.0) {
    return Status::InvalidArgument(
        "fault retry/quarantine base delays must be positive");
  }
  if (fault_retry_cap < fault_retry_base ||
      fault_quarantine_cap < fault_quarantine_base) {
    return Status::InvalidArgument(
        "fault retry/quarantine caps must be >= their base delays");
  }
  if (fault_jitter < 0.0 || fault_jitter > 1.0) {
    return Status::InvalidArgument("fault_jitter must be in [0, 1]");
  }
  if (!admission_control && (admit_max_row_norm > 0.0 || admit_outlier_z > 0.0)) {
    return Status::InvalidArgument(
        "admit_* thresholds require admission_control");
  }
  if (admit_max_row_norm < 0.0 || admit_outlier_z < 0.0) {
    return Status::InvalidArgument("admit_* thresholds must be >= 0");
  }
  if (checkpoint_every > (size_t{1} << 32)) {
    return Status::InvalidArgument(
        "checkpoint_every is implausibly large (negative CLI value?)");
  }
  if (checkpoint_every > 0 && checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "checkpoint_every requires checkpoint_path");
  }
  if (resume_run && checkpoint_path.empty()) {
    return Status::InvalidArgument("resume_run requires checkpoint_path");
  }
  if (resume_run && sync_verify_replicas) {
    // The verify cache (replica row bytes) is not serialized, so a resumed
    // audit run would immediately CHECK-fail on the first skipped row.
    return Status::InvalidArgument(
        "resume_run is incompatible with sync_verify_replicas");
  }
  if (debug_stop_after_rounds > (size_t{1} << 32)) {
    return Status::InvalidArgument(
        "debug_stop_after_rounds is implausibly large (negative CLI value?)");
  }
  return Status::OK();
}

}  // namespace hetefedrec
