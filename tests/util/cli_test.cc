#include "src/util/cli.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetefedrec {
namespace {

// Builds a mutable argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args) : args_(std::move(args)) {
    for (auto& a : args_) argv_.push_back(a.data());
  }
  int argc() { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> argv_;
};

TEST(CliTest, DefaultsApplyWithoutArgs) {
  CommandLine cli;
  cli.AddFlag("epochs", "20", "training epochs");
  ArgvBuilder args({"prog"});
  ASSERT_TRUE(cli.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(cli.GetInt("epochs"), 20);
}

TEST(CliTest, EqualsSyntax) {
  CommandLine cli;
  cli.AddFlag("scale", "bench", "scale preset");
  ArgvBuilder args({"prog", "--scale=paper"});
  ASSERT_TRUE(cli.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(cli.GetString("scale"), "paper");
}

TEST(CliTest, SpaceSyntax) {
  CommandLine cli;
  cli.AddFlag("alpha", "1.0", "regularization factor");
  ArgvBuilder args({"prog", "--alpha", "0.5"});
  ASSERT_TRUE(cli.Parse(args.argc(), args.argv()).ok());
  EXPECT_DOUBLE_EQ(cli.GetDouble("alpha"), 0.5);
}

TEST(CliTest, BareBooleanFlag) {
  CommandLine cli;
  cli.AddFlag("verbose", "false", "chatty output");
  ArgvBuilder args({"prog", "--verbose"});
  ASSERT_TRUE(cli.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(cli.GetBool("verbose"));
}

TEST(CliTest, UnknownFlagRejected) {
  CommandLine cli;
  cli.AddFlag("epochs", "20", "training epochs");
  ArgvBuilder args({"prog", "--epoch=5"});
  Status s = cli.Parse(args.argc(), args.argv());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CliTest, PositionalArgumentRejected) {
  CommandLine cli;
  ArgvBuilder args({"prog", "stray"});
  EXPECT_FALSE(cli.Parse(args.argc(), args.argv()).ok());
}

TEST(CliTest, MissingValueRejected) {
  CommandLine cli;
  cli.AddFlag("seed", "1", "rng seed");
  ArgvBuilder args({"prog", "--seed"});
  EXPECT_FALSE(cli.Parse(args.argc(), args.argv()).ok());
}

TEST(CliTest, UsageListsFlags) {
  CommandLine cli;
  cli.AddFlag("seed", "1", "rng seed");
  std::string usage = cli.Usage("prog");
  EXPECT_NE(usage.find("--seed"), std::string::npos);
  EXPECT_NE(usage.find("rng seed"), std::string::npos);
}

// The shared registry behind every experiment binary: registering it
// makes the shared flags parseable with their documented defaults, and it
// composes with binary-local flags.
TEST(CliTest, ExperimentFlagRegistryParsesSharedFlags) {
  CommandLine cli;
  cli.AddFlag("scale", "bench", "binary-local flag");
  RegisterExperimentFlags(&cli);
  ArgvBuilder args({"prog", "--server_shards=4", "--async",
                    "--fault_crash=0.1", "--round_deadline=30",
                    "--scale=paper"});
  ASSERT_TRUE(cli.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(cli.GetInt("server_shards"), 4);
  EXPECT_TRUE(cli.GetBool("async"));
  EXPECT_DOUBLE_EQ(cli.GetDouble("fault_crash"), 0.1);
  EXPECT_DOUBLE_EQ(cli.GetDouble("round_deadline"), 30.0);
  EXPECT_EQ(cli.GetString("scale"), "paper");
  // Untouched shared flags keep their documented defaults.
  EXPECT_EQ(cli.GetInt("seed"), 7);
  EXPECT_EQ(cli.GetString("agg"), "mean");
  EXPECT_EQ(cli.GetInt("server_shards"), 4);
  EXPECT_DOUBLE_EQ(cli.GetDouble("net_bandwidth"), 1.25e6);
  EXPECT_EQ(cli.GetInt("fault_retry_max"), 5);
}

}  // namespace
}  // namespace hetefedrec
