#include "src/fed/scheduler.h"

#include <numeric>

#include "src/util/logging.h"

namespace hetefedrec {

RoundScheduler::RoundScheduler(size_t num_users, size_t clients_per_round)
    : num_users_(num_users), clients_per_round_(clients_per_round) {
  HFR_CHECK_GT(num_users, 0u);
  HFR_CHECK_GT(clients_per_round, 0u);
}

std::vector<std::vector<UserId>> RoundScheduler::EpochBatches(Rng* rng) const {
  std::vector<UserId> queue(num_users_);
  std::iota(queue.begin(), queue.end(), 0);
  rng->Shuffle(&queue);
  std::vector<std::vector<UserId>> batches;
  for (size_t start = 0; start < num_users_; start += clients_per_round_) {
    size_t end = std::min(num_users_, start + clients_per_round_);
    batches.emplace_back(queue.begin() + start, queue.begin() + end);
  }
  return batches;
}

size_t RoundScheduler::rounds_per_epoch() const {
  return (num_users_ + clients_per_round_ - 1) / clients_per_round_;
}

}  // namespace hetefedrec
