// Microbenchmarks of the numeric kernels underlying every experiment:
// scoring, backprop, aggregation, DDR and RESKD. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include "src/core/decorrelation.h"
#include "src/core/distillation.h"
#include "src/data/dataset.h"
#include "src/data/synthetic.h"
#include "src/eval/metrics.h"
#include "src/math/activations.h"
#include "src/math/adam.h"
#include "src/math/eigen.h"
#include "src/math/init.h"
#include "src/math/stats.h"
#include "src/models/scorer.h"

namespace hetefedrec {
namespace {

constexpr size_t kItems = 2048;

Matrix RandomTable(size_t rows, size_t cols, uint64_t seed = 3) {
  Rng rng(seed);
  Matrix m(rows, cols);
  InitNormal(&m, 0.1, &rng);
  return m;
}

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomTable(n, n, 1);
  Matrix b = RandomTable(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matrix::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_FfnForward(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  FeedForwardNet net(2 * width, {8, 8});
  Rng rng(5);
  net.InitXavier(&rng);
  std::vector<double> x(2 * width, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x.data(), nullptr));
  }
}
BENCHMARK(BM_FfnForward)->Arg(8)->Arg(32)->Arg(128);

void BM_FfnForwardBackward(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  FeedForwardNet net(2 * width, {8, 8});
  Rng rng(7);
  net.InitXavier(&rng);
  std::vector<double> x(2 * width, 0.3);
  std::vector<double> dx(2 * width);
  FeedForwardNet grads = FeedForwardNet::ZerosLike(net);
  FeedForwardNet::Cache cache;
  for (auto _ : state) {
    double logit = net.Forward(x.data(), &cache);
    net.Backward(cache, BceWithLogitsGrad(logit, 1.0), &grads, dx.data());
    benchmark::DoNotOptimize(grads);
  }
}
BENCHMARK(BM_FfnForwardBackward)->Arg(8)->Arg(32)->Arg(128);

void BM_ScorerFullCatalogue(benchmark::State& state) {
  // Cost of ranking all items for one user (the evaluation inner loop).
  const size_t width = static_cast<size_t>(state.range(0));
  const BaseModel model =
      state.range(1) == 0 ? BaseModel::kNcf : BaseModel::kLightGcn;
  Matrix table = RandomTable(kItems, width);
  Matrix user = RandomTable(1, width, 11);
  FeedForwardNet theta(2 * width, {8, 8});
  Rng rng(13);
  theta.InitXavier(&rng);
  std::vector<ItemId> interacted;
  for (ItemId i = 0; i < 64; ++i) interacted.push_back(i * 7 % kItems);

  Scorer sc(model, width);
  for (auto _ : state) {
    sc.BeginUser(user.Row(0), table, interacted);
    double sum = 0;
    for (size_t j = 0; j < kItems; ++j) {
      sum += sc.Score(table, theta, static_cast<ItemId>(j));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_ScorerFullCatalogue)
    ->Args({8, 0})
    ->Args({32, 0})
    ->Args({8, 1})
    ->Args({32, 1});

void BM_AdamStep(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  Matrix param = RandomTable(kItems, width, 17);
  Matrix grad = RandomTable(kItems, width, 19);
  Adam adam;
  for (auto _ : state) {
    adam.Step(&param, grad);
    benchmark::DoNotOptimize(param);
  }
  state.SetItemsProcessed(state.iterations() * param.size());
}
BENCHMARK(BM_AdamStep)->Arg(8)->Arg(32)->Arg(128);

void BM_DecorrelationLossAndGrad(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  const size_t sample_rows = static_cast<size_t>(state.range(1));
  Matrix table = RandomTable(kItems, width, 23);
  Matrix grad(kItems, width);
  Rng rng(29);
  for (auto _ : state) {
    grad.SetZero();
    benchmark::DoNotOptimize(
        DecorrelationLossAndGrad(table, 1.0, sample_rows, &rng, &grad));
  }
}
BENCHMARK(BM_DecorrelationLossAndGrad)
    ->Args({32, 0})
    ->Args({32, 256})
    ->Args({128, 256});

void BM_EnsembleDistill(benchmark::State& state) {
  const size_t kd_items = static_cast<size_t>(state.range(0));
  Matrix s = RandomTable(kItems, 8, 31);
  Matrix m = RandomTable(kItems, 16, 37);
  Matrix l = RandomTable(kItems, 32, 41);
  DistillationOptions opt;
  opt.kd_items = kd_items;
  opt.steps = 2;
  opt.lr = 0.001;
  Rng rng(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnsembleDistill({&s, &m, &l}, opt, &rng));
  }
}
BENCHMARK(BM_EnsembleDistill)->Arg(32)->Arg(64)->Arg(128);

void BM_SymmetricEigenvalues(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix cov = CovarianceMatrix(RandomTable(512, n, 47));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymmetricEigenvalues(cov));
  }
}
BENCHMARK(BM_SymmetricEigenvalues)->Arg(8)->Arg(32)->Arg(128);

void BM_NegativeSampling(benchmark::State& state) {
  SyntheticConfig cfg = MovieLensConfig(0.05);
  auto ds = Dataset::FromInteractions(GenerateInteractions(cfg),
                                      cfg.num_users, cfg.num_items)
                .value();
  Rng rng(53);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.BuildLocalEpoch(0, &rng));
  }
}
BENCHMARK(BM_NegativeSampling);

void BM_TopK(benchmark::State& state) {
  Rng rng(59);
  std::vector<double> scores(kItems);
  for (auto& s : scores) s = rng.Uniform();
  std::vector<bool> mask(kItems, false);
  for (size_t i = 0; i < kItems; i += 13) mask[i] = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopKItems(scores, mask, 20));
  }
}
BENCHMARK(BM_TopK);

}  // namespace
}  // namespace hetefedrec

BENCHMARK_MAIN();
