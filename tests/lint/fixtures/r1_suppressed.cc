// Fixture: the violations carry line suppressions with reasons — zero
// unsuppressed findings expected.
#include <chrono>

double Sample() {
  // hfr-lint: allow(R1): fixture demonstrating a reasoned suppression
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();  // hfr-lint: allow(R1): trailing form
  return std::chrono::duration<double>(t1 - t0).count();
}
