#include "src/util/telemetry/profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace hetefedrec {
namespace internal {

struct ProfNode {
  const char* name = "";  // string literal identity (pointer compare first)
  ProfNode* parent = nullptr;
  uint64_t calls = 0;
  double total_seconds = 0.0;
  double child_seconds = 0.0;
  std::vector<std::unique_ptr<ProfNode>> children;
};

namespace {

// One tree per thread that ever profiled; owned process-wide so Collect()
// can read trees of exited threads and Reset() never invalidates the
// thread_local cursor of a live one.
struct ThreadTree {
  ProfNode root;
  ProfNode* current = &root;
};

std::mutex g_trees_mu;
std::vector<std::unique_ptr<ThreadTree>>& Trees() {
  static auto* trees = new std::vector<std::unique_ptr<ThreadTree>>();
  return *trees;
}

ThreadTree* LocalTree() {
  thread_local ThreadTree* tree = [] {
    auto owned = std::make_unique<ThreadTree>();
    ThreadTree* raw = owned.get();
    std::lock_guard<std::mutex> lock(g_trees_mu);
    Trees().push_back(std::move(owned));
    return raw;
  }();
  return tree;
}

void ZeroTree(ProfNode* node) {
  node->calls = 0;
  node->total_seconds = 0.0;
  node->child_seconds = 0.0;
  for (auto& c : node->children) ZeroTree(c.get());
}

struct MergedNode {
  uint64_t calls = 0;
  double total_seconds = 0.0;
  double child_seconds = 0.0;
  std::map<std::string, MergedNode> children;
};

void MergeInto(const ProfNode& src, MergedNode* dst) {
  dst->calls += src.calls;
  dst->total_seconds += src.total_seconds;
  dst->child_seconds += src.child_seconds;
  for (const auto& c : src.children) {
    if (c->calls == 0 && c->children.empty()) continue;
    MergeInto(*c, &dst->children[c->name]);
  }
}

void Flatten(const MergedNode& node, const std::string& prefix, int depth,
             std::vector<Profiler::PhaseStat>* out) {
  std::vector<std::pair<std::string, const MergedNode*>> kids;
  kids.reserve(node.children.size());
  for (const auto& kv : node.children) kids.emplace_back(kv.first, &kv.second);
  std::stable_sort(kids.begin(), kids.end(),
                   [](const auto& a, const auto& b) {
                     return a.second->total_seconds > b.second->total_seconds;
                   });
  for (const auto& [name, kid] : kids) {
    if (kid->calls == 0) continue;
    const std::string path = prefix.empty() ? name : prefix + "/" + name;
    Profiler::PhaseStat stat;
    stat.path = path;
    stat.depth = depth;
    stat.calls = kid->calls;
    stat.total_seconds = kid->total_seconds;
    stat.self_seconds = kid->total_seconds - kid->child_seconds;
    out->push_back(std::move(stat));
    Flatten(*kid, path, depth + 1, out);
  }
}

}  // namespace

ProfNode* ProfEnter(const char* name) {
  ThreadTree* tree = LocalTree();
  ProfNode* parent = tree->current;
  for (auto& c : parent->children) {
    // Scope names are string literals; pointer equality is the common case
    // but fall back to strcmp so identical names across TUs still merge.
    if (c->name == name || std::strcmp(c->name, name) == 0) {
      tree->current = c.get();
      return c.get();
    }
  }
  parent->children.push_back(std::make_unique<ProfNode>());
  ProfNode* node = parent->children.back().get();
  node->name = name;
  node->parent = parent;
  tree->current = node;
  return node;
}

void ProfExit(ProfNode* node, double seconds) {
  node->calls += 1;
  node->total_seconds += seconds;
  if (node->parent) node->parent->child_seconds += seconds;
  LocalTree()->current = node->parent;
}

}  // namespace internal

Profiler& Profiler::Get() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::Reset() {
  std::lock_guard<std::mutex> lock(internal::g_trees_mu);
  for (auto& tree : internal::Trees()) {
    internal::ZeroTree(&tree->root);
    tree->current = &tree->root;
  }
}

std::vector<Profiler::PhaseStat> Profiler::Collect() const {
  internal::MergedNode merged;
  {
    std::lock_guard<std::mutex> lock(internal::g_trees_mu);
    for (const auto& tree : internal::Trees()) {
      internal::MergeInto(tree->root, &merged);
    }
  }
  std::vector<PhaseStat> out;
  internal::Flatten(merged, "", 0, &out);
  return out;
}

std::string Profiler::Render(const std::vector<PhaseStat>& stats) {
  std::string out;
  out += "phase                                    calls     total_s      self_s\n";
  for (const PhaseStat& s : stats) {
    const std::string label =
        std::string(static_cast<size_t>(s.depth) * 2, ' ') +
        s.path.substr(s.path.rfind('/') + 1);
    char line[160];
    std::snprintf(line, sizeof(line), "%-38s %9llu %11.4f %11.4f\n",
                  label.c_str(), static_cast<unsigned long long>(s.calls),
                  s.total_seconds, s.self_seconds);
    out += line;
  }
  return out;
}

}  // namespace hetefedrec
