// Scorer's batched entry points (ScoreBatch / ScoreRange /
// ScoreForTrainBatch + BackwardBatch) must be bit-identical to the scalar
// Score / ScoreForTrain + BackwardSample sequence, for both base models
// and both gradient sinks. Batches deliberately repeat items so
// accumulation order into shared rows is exercised.
#include <gtest/gtest.h>

#include <vector>

#include "src/math/init.h"
#include "src/math/sparse.h"
#include "src/models/scorer.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

constexpr size_t kItems = 300;  // > 2 x Scorer::kScoreBlock

struct ScorerFixture {
  Matrix table;
  Matrix user;
  FeedForwardNet theta;
  std::vector<ItemId> interacted;

  explicit ScorerFixture(size_t width) : theta(2 * width, {8, 8}) {
    Rng rng(101 + width);
    table = Matrix(kItems, width);
    InitNormal(&table, 0.1, &rng);
    user = Matrix(1, width);
    InitNormal(&user, 0.1, &rng);
    theta.InitXavier(&rng);
    for (ItemId i = 0; i < 12; ++i) {
      interacted.push_back((i * 23) % static_cast<ItemId>(kItems));
    }
  }
};

class ScorerBatchEquivalence
    : public ::testing::TestWithParam<std::tuple<BaseModel, size_t, size_t>> {
};

TEST_P(ScorerBatchEquivalence, ScoreBatchMatchesScore) {
  const BaseModel model = std::get<0>(GetParam());
  const size_t width = std::get<1>(GetParam());
  const size_t batch = std::get<2>(GetParam());
  ScorerFixture s(width);

  Scorer sc(model, width);
  sc.BeginUser(s.user.Row(0), s.table, s.interacted);

  // Arbitrary ids including repeats and interacted items.
  std::vector<ItemId> ids(batch);
  for (size_t b = 0; b < batch; ++b) {
    ids[b] = static_cast<ItemId>((b * 37 + 5) % kItems);
  }
  std::vector<double> out(batch);
  sc.ScoreBatch(s.table, s.theta, ids.data(), batch, out.data());
  for (size_t b = 0; b < batch; ++b) {
    ASSERT_EQ(out[b], sc.Score(s.table, s.theta, ids[b])) << "b=" << b;
  }
}

TEST_P(ScorerBatchEquivalence, TrainBatchMatchesPerSampleSequence) {
  const BaseModel model = std::get<0>(GetParam());
  const size_t width = std::get<1>(GetParam());
  const size_t batch = std::get<2>(GetParam());
  ScorerFixture s(width);

  std::vector<ItemId> items(batch);
  std::vector<double> dlogits(batch);
  Rng rng(7);
  for (size_t b = 0; b < batch; ++b) {
    // Repeats (modulus) and interacted items both occur.
    items[b] = static_cast<ItemId>((b * 23) % (kItems / 2));
    dlogits[b] = rng.Normal(0.0, 1.0);
  }

  // Batched pass.
  Scorer sc_batch(model, width);
  sc_batch.BeginUser(s.user.Row(0), s.table, s.interacted);
  Scorer::BatchTrainCache bcache;
  std::vector<double> logits_batch(batch);
  sc_batch.ScoreForTrainBatch(s.table, s.theta, items.data(), batch, &bcache,
                              logits_batch.data());
  Matrix dv_batch(kItems, width);
  Matrix du_batch(1, width);
  FeedForwardNet dtheta_batch = FeedForwardNet::ZerosLike(s.theta);
  sc_batch.BackwardBatch(s.theta, bcache, dlogits.data(), &dv_batch,
                         du_batch.Row(0), &dtheta_batch);
  sc_batch.FinishUserBackward(&dv_batch, du_batch.Row(0));

  // Scalar reference in the same sample order.
  Scorer sc_ref(model, width);
  sc_ref.BeginUser(s.user.Row(0), s.table, s.interacted);
  Matrix dv_ref(kItems, width);
  Matrix du_ref(1, width);
  FeedForwardNet dtheta_ref = FeedForwardNet::ZerosLike(s.theta);
  Scorer::TrainCache cache;
  for (size_t b = 0; b < batch; ++b) {
    double logit = sc_ref.ScoreForTrain(s.table, s.theta, items[b], &cache);
    ASSERT_EQ(logits_batch[b], logit) << "b=" << b;
    sc_ref.BackwardSample(s.theta, cache, dlogits[b], &dv_ref, du_ref.Row(0),
                          &dtheta_ref);
  }
  sc_ref.FinishUserBackward(&dv_ref, du_ref.Row(0));

  for (size_t t = 0; t < dv_batch.data().size(); ++t) {
    ASSERT_EQ(dv_batch.data()[t], dv_ref.data()[t]) << "dV elem " << t;
  }
  for (size_t d = 0; d < width; ++d) {
    ASSERT_EQ(du_batch(0, d), du_ref(0, d)) << "dU dim " << d;
  }
  for (size_t l = 0; l < dtheta_batch.num_layers(); ++l) {
    for (size_t t = 0; t < dtheta_batch.weight(l).data().size(); ++t) {
      ASSERT_EQ(dtheta_batch.weight(l).data()[t],
                dtheta_ref.weight(l).data()[t]);
    }
    for (size_t t = 0; t < dtheta_batch.bias(l).data().size(); ++t) {
      ASSERT_EQ(dtheta_batch.bias(l).data()[t], dtheta_ref.bias(l).data()[t]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsWidthsBatches, ScorerBatchEquivalence,
    ::testing::Combine(::testing::Values(BaseModel::kNcf,
                                         BaseModel::kLightGcn),
                       ::testing::Values(size_t{8}, size_t{16}, size_t{32}),
                       ::testing::Values(size_t{1}, size_t{7}, size_t{64})));

TEST(ScorerBatchTest, ScoreRangeCoversFullCatalogueAcrossBlocks) {
  // kItems > 2 blocks: the block loop and the lazily filled user halves
  // must agree with per-item Score over the whole span, both models.
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    ScorerFixture s(16);
    Scorer sc(model, 16);
    sc.BeginUser(s.user.Row(0), s.table, s.interacted);
    std::vector<double> out(kItems);
    sc.ScoreRange(s.table, s.theta, 0, kItems, out.data());
    for (size_t j = 0; j < kItems; ++j) {
      ASSERT_EQ(out[j], sc.Score(s.table, s.theta, static_cast<ItemId>(j)))
          << "item " << j;
    }
  }
}

TEST(ScorerBatchTest, BatchScratchRefreshesAcrossUsers) {
  // The lazily filled user half must be invalidated by BeginUser: two
  // users scored back-to-back through the same scorer get their own pu.
  ScorerFixture s(8);
  Matrix user2(1, 8);
  Rng rng(55);
  InitNormal(&user2, 0.1, &rng);

  Scorer sc(BaseModel::kNcf, 8);
  std::vector<ItemId> ids = {1, 2, 3};
  std::vector<double> out_a(3), out_b(3);

  sc.BeginUser(s.user.Row(0), s.table, s.interacted);
  sc.ScoreBatch(s.table, s.theta, ids.data(), 3, out_a.data());
  sc.BeginUser(user2.Row(0), s.table, s.interacted);
  sc.ScoreBatch(s.table, s.theta, ids.data(), 3, out_b.data());

  Scorer fresh(BaseModel::kNcf, 8);
  fresh.BeginUser(user2.Row(0), s.table, s.interacted);
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(out_b[b], fresh.Score(s.table, s.theta, ids[b]));
    EXPECT_NE(out_a[b], out_b[b]);
  }
}

TEST(ScorerBatchTest, SparseSinkAndOverlayMatchDense) {
  // Overlay reads + SparseRowStore gradient sink through the batched path
  // must equal the dense-table batched pass scattered into a Matrix.
  const size_t width = 16;
  ScorerFixture s(width);
  RowOverlayTable overlay;
  overlay.Reset(&s.table);

  std::vector<ItemId> items = {3, 9, 3, 120, 9, 3, 250};
  std::vector<double> dlogits(items.size());
  Rng rng(77);
  for (double& v : dlogits) v = rng.Normal(0.0, 1.0);

  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    Scorer sc_dense(model, width);
    sc_dense.BeginUser(s.user.Row(0), s.table, s.interacted);
    Scorer::BatchTrainCache cache_dense;
    std::vector<double> logits_dense(items.size());
    sc_dense.ScoreForTrainBatch(s.table, s.theta, items.data(), items.size(),
                                &cache_dense, logits_dense.data());
    Matrix dv_dense(kItems, width);
    Matrix du_dense(1, width);
    FeedForwardNet dtheta_dense = FeedForwardNet::ZerosLike(s.theta);
    sc_dense.BackwardBatch(s.theta, cache_dense, dlogits.data(), &dv_dense,
                           du_dense.Row(0), &dtheta_dense);
    sc_dense.FinishUserBackward(&dv_dense, du_dense.Row(0));

    Scorer sc_sparse(model, width);
    sc_sparse.BeginUser(s.user.Row(0), overlay, s.interacted);
    Scorer::BatchTrainCache cache_sparse;
    std::vector<double> logits_sparse(items.size());
    sc_sparse.ScoreForTrainBatch(overlay, s.theta, items.data(), items.size(),
                                 &cache_sparse, logits_sparse.data());
    SparseRowStore dv_sparse;
    dv_sparse.Reset(kItems, width);
    Matrix du_sparse(1, width);
    FeedForwardNet dtheta_sparse = FeedForwardNet::ZerosLike(s.theta);
    sc_sparse.BackwardBatch(s.theta, cache_sparse, dlogits.data(), &dv_sparse,
                            du_sparse.Row(0), &dtheta_sparse);
    sc_sparse.FinishUserBackward(&dv_sparse, du_sparse.Row(0));

    for (size_t b = 0; b < items.size(); ++b) {
      EXPECT_EQ(logits_dense[b], logits_sparse[b]);
    }
    for (size_t r = 0; r < kItems; ++r) {
      const double* sparse_row = dv_sparse.RowOrNull(r);
      for (size_t d = 0; d < width; ++d) {
        double sparse_val = sparse_row != nullptr ? sparse_row[d] : 0.0;
        ASSERT_EQ(dv_dense(r, d), sparse_val) << "row " << r << " d " << d;
      }
    }
    for (size_t d = 0; d < width; ++d) {
      EXPECT_EQ(du_dense(0, d), du_sparse(0, d));
    }
  }
}

}  // namespace
}  // namespace hetefedrec
