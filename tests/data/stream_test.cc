// ClientStream contract: clients are a pure function of (seed, user) —
// byte-identical across passes and stream instances — with distinct,
// sorted, in-range items per client; the item popularity follows the
// configured power law (log-log slope fit over the mid ranks); and a
// multi-million-user stream costs O(items) memory, never O(users)
// (asserted against the process peak RSS).
#include "src/data/stream.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/util/rss.h"

namespace hetefedrec {
namespace {

StreamConfig SmallConfig() {
  StreamConfig cfg;
  cfg.num_users = 30000;
  cfg.num_items = 5000;
  cfg.popularity_exponent = 1.05;
  cfg.size_exponent = 1.6;
  cfg.min_items_per_user = 4;
  cfg.max_items_per_user = 64;
  cfg.seed = 11;
  return cfg;
}

TEST(ClientStreamTest, ClientsAreDistinctSortedAndInRange) {
  const ClientStream stream(SmallConfig());
  for (UserId u = 0; u < 500; ++u) {
    const StreamClient client = stream.Get(u);
    EXPECT_EQ(client.user, u);
    ASSERT_GE(client.items.size(), SmallConfig().min_items_per_user);
    ASSERT_LE(client.items.size(), SmallConfig().max_items_per_user);
    for (size_t k = 0; k < client.items.size(); ++k) {
      EXPECT_LT(client.items[k], stream.num_items());
      if (k > 0) EXPECT_LT(client.items[k - 1], client.items[k]);
    }
  }
}

// Two same-seed passes — through the same stream and through a second
// stream built from the same config — yield byte-identical clients.
TEST(ClientStreamTest, SameSeedPassesAreByteIdentical) {
  const ClientStream a(SmallConfig());
  const ClientStream b(SmallConfig());
  for (UserId u = 0; u < 2000; u += 7) {
    const StreamClient first = a.Get(u);
    const StreamClient again = a.Get(u);
    const StreamClient other = b.Get(u);
    EXPECT_EQ(first.items, again.items) << "user " << u;
    EXPECT_EQ(first.items, other.items) << "user " << u;
  }
}

TEST(ClientStreamTest, DifferentSeedProducesDifferentClients) {
  StreamConfig other_cfg = SmallConfig();
  other_cfg.seed = 12;
  const ClientStream a(SmallConfig());
  const ClientStream b(other_cfg);
  size_t differing = 0;
  for (UserId u = 0; u < 200; ++u) {
    if (a.Get(u).items != b.Get(u).items) ++differing;
  }
  EXPECT_GT(differing, 150u);  // near-certainly all of them
}

// The empirical item popularity follows the configured Zipf exponent:
// aggregate interaction counts over many clients and fit the log-log
// slope over mid ranks (the head is mildly flattened by per-client
// distinctness, the tail by counting noise — both excluded).
TEST(ClientStreamTest, PopularityFollowsConfiguredPowerLaw) {
  const StreamConfig cfg = SmallConfig();
  const ClientStream stream(cfg);
  std::vector<double> counts(cfg.num_items, 0.0);
  for (UserId u = 0; u < 20000; ++u) {
    for (uint32_t item : stream.Get(u).items) counts[item] += 1.0;
  }
  // Item id order IS popularity rank order (the CDF is built over ids).
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (size_t rank = 10; rank <= 300; ++rank) {
    ASSERT_GT(counts[rank - 1], 0.0) << "rank " << rank;
    const double x = std::log(static_cast<double>(rank));
    const double y = std::log(counts[rank - 1]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
  EXPECT_NEAR(-slope, cfg.popularity_exponent, 0.2);
}

// Client sizes follow the heavy-tailed Pareto: the mean stays near the
// analytic value and the configured bounds hold (bounds are asserted per
// client above; here the tail actually exercises the cap).
TEST(ClientStreamTest, ClientSizesAreHeavyTailedWithinBounds) {
  const StreamConfig cfg = SmallConfig();
  const ClientStream stream(cfg);
  size_t total = 0;
  size_t at_cap = 0;
  const size_t sample = 20000;
  for (UserId u = 0; u < static_cast<UserId>(sample); ++u) {
    const size_t k = stream.Get(u).items.size();
    total += k;
    if (k == cfg.max_items_per_user) ++at_cap;
  }
  // Uncapped Pareto mean = min * s/(s-1) = 4 * 1.6/0.6 ≈ 10.7; the cap
  // pulls it down slightly. Loose band.
  const double mean = static_cast<double>(total) / sample;
  EXPECT_GT(mean, 6.0);
  EXPECT_LT(mean, 14.0);
  // The tail is real: some clients hit the cap, but only a small share.
  EXPECT_GT(at_cap, 0u);
  EXPECT_LT(at_cap, sample / 20);
}

// The whole point of streaming: a 50M-user stream costs no per-user
// memory. Construct one, read a slice of clients from across the id
// space, and assert the process high-water mark stays far below what any
// per-user materialization would need (50M users x ≥4 items x 4 bytes
// ≥ 800 MB).
TEST(ClientStreamTest, MillionsOfUsersNeedNoPerUserMemory) {
  StreamConfig cfg = SmallConfig();
  cfg.num_users = 50'000'000;
  cfg.num_items = 100'000;
  const ClientStream stream(cfg);
  uint64_t checksum = 0;
  for (UserId u = 0; u < static_cast<UserId>(cfg.num_users);
       u += 1'000'000) {
    for (uint32_t item : stream.Get(u).items) checksum += item;
  }
  EXPECT_GT(checksum, 0u);
  const size_t peak_kb = PeakRssKb();
  if (peak_kb == 0) GTEST_SKIP() << "peak-RSS probe unavailable";
  EXPECT_LT(peak_kb, 256u * 1024u) << "peak RSS suggests per-user state";
}

}  // namespace
}  // namespace hetefedrec
