#include "src/math/kernels.h"

#include <algorithm>
#include <type_traits>

#include "src/math/backend.h"
#include "src/math/kernels_fp32.h"

namespace hetefedrec {

namespace {

// True when the float kernels should run their AVX2 implementations; the
// choice is results-inert (scalar fp32 and AVX2 produce the same bits).
inline bool UseSimd() {
#ifdef HFR_HAVE_AVX2_TU
  return Fp32SimdEnabled();
#else
  return false;
#endif
}

// Fixed-width inner kernels for the double backend: the FFN layer widths
// are tiny (hidden 8, out 1), so compile-time OutDim keeps the whole
// accumulator row in registers and fully unrolls the j loop. Loop nesting
// and unrolling only regroup *independent* accumulator targets — per
// (b, j) the i order (and the exact-zero skip) is the scalar loop's, so
// results are bit-identical.
template <size_t OutDim>
void GemvBatchResumeFixed(const double* x, size_t batch, size_t x_stride,
                          size_t in_dim, const double* w, const double* init,
                          double* out) {
  for (size_t b = 0; b < batch; ++b) {
    const double* xrow = x + b * x_stride;
    double acc[OutDim];
    for (size_t j = 0; j < OutDim; ++j) acc[j] = init[j];
    for (size_t i = 0; i < in_dim; ++i) {
      const double xi = xrow[i];
      if (xi == 0.0) continue;
      const double* wrow = w + i * OutDim;
      for (size_t j = 0; j < OutDim; ++j) acc[j] += xi * wrow[j];
    }
    double* orow = out + b * OutDim;
    for (size_t j = 0; j < OutDim; ++j) orow[j] = acc[j];
  }
}

void GemvBatchResumeGeneric(const double* x, size_t batch, size_t x_stride,
                            size_t in_dim, const double* w,
                            const double* init, size_t out_dim, double* out) {
  for (size_t b = 0; b < batch; ++b) {
    const double* xrow = x + b * x_stride;
    double* orow = out + b * out_dim;
    std::copy(init, init + out_dim, orow);
    for (size_t i = 0; i < in_dim; ++i) {
      const double xi = xrow[i];
      if (xi == 0.0) continue;
      const double* wrow = w + i * out_dim;
      for (size_t j = 0; j < out_dim; ++j) orow[j] += xi * wrow[j];
    }
  }
}

void GemvBatchResumeF64(const double* x, size_t batch, size_t x_stride,
                        size_t in_dim, const double* w, const double* init,
                        size_t out_dim, double* out) {
  switch (out_dim) {
    case 1:
      return GemvBatchResumeFixed<1>(x, batch, x_stride, in_dim, w, init,
                                     out);
    case 2:
      return GemvBatchResumeFixed<2>(x, batch, x_stride, in_dim, w, init,
                                     out);
    case 4:
      return GemvBatchResumeFixed<4>(x, batch, x_stride, in_dim, w, init,
                                     out);
    case 8:
      return GemvBatchResumeFixed<8>(x, batch, x_stride, in_dim, w, init,
                                     out);
    case 16:
      return GemvBatchResumeFixed<16>(x, batch, x_stride, in_dim, w, init,
                                      out);
    default:
      return GemvBatchResumeGeneric(x, batch, x_stride, in_dim, w, init,
                                    out_dim, out);
  }
}

template <size_t OutDim>
void GemvBatchTransposedFixed(const double* delta, size_t batch,
                              const double* w, size_t in_dim, double* dx) {
  for (size_t b = 0; b < batch; ++b) {
    const double* drow = delta + b * OutDim;
    double* dxrow = dx + b * in_dim;
    for (size_t i = 0; i < in_dim; ++i) {
      const double* wrow = w + i * OutDim;
      double acc = 0.0;
      for (size_t j = 0; j < OutDim; ++j) acc += wrow[j] * drow[j];
      dxrow[i] = acc;
    }
  }
}

template <size_t OutDim>
void AccumulateOuterBatchFixed(const double* in, const double* delta,
                               size_t batch, size_t in_dim, double* grads_w,
                               double* grads_b) {
  for (size_t b = 0; b < batch; ++b) {
    const double* drow = delta + b * OutDim;
    const double* irow = in + b * in_dim;
    for (size_t j = 0; j < OutDim; ++j) grads_b[j] += drow[j];
    for (size_t i = 0; i < in_dim; ++i) {
      const double xi = irow[i];
      if (xi == 0.0) continue;
      double* grow = grads_w + i * OutDim;
      for (size_t j = 0; j < OutDim; ++j) grow[j] += xi * drow[j];
    }
  }
}

void AccumulateOuterBatchGeneric(const double* in, const double* delta,
                                 size_t batch, size_t in_dim, size_t out_dim,
                                 double* grads_w, double* grads_b) {
  for (size_t b = 0; b < batch; ++b) {
    const double* drow = delta + b * out_dim;
    const double* irow = in + b * in_dim;
    for (size_t j = 0; j < out_dim; ++j) grads_b[j] += drow[j];
    for (size_t i = 0; i < in_dim; ++i) {
      const double xi = irow[i];
      if (xi == 0.0) continue;
      double* grow = grads_w + i * out_dim;
      for (size_t j = 0; j < out_dim; ++j) grow[j] += xi * drow[j];
    }
  }
}

void GemvBatchTransposedGeneric(const double* delta, size_t batch,
                                size_t out_dim, const double* w,
                                size_t in_dim, double* dx) {
  for (size_t b = 0; b < batch; ++b) {
    const double* drow = delta + b * out_dim;
    double* dxrow = dx + b * in_dim;
    for (size_t i = 0; i < in_dim; ++i) {
      const double* wrow = w + i * out_dim;
      double acc = 0.0;
      for (size_t j = 0; j < out_dim; ++j) acc += wrow[j] * drow[j];
      dxrow[i] = acc;
    }
  }
}

void AccumulateOuterBatchF64(const double* in, const double* delta,
                             size_t batch, size_t in_dim, size_t out_dim,
                             double* grads_w, double* grads_b) {
  // b-outer is exactly the sample-by-sample scalar sequence; the gradient
  // panel (in_dim x out_dim doubles) is small enough to stay resident
  // while the contiguous in/delta rows stream through.
  switch (out_dim) {
    case 1:
      return AccumulateOuterBatchFixed<1>(in, delta, batch, in_dim, grads_w,
                                          grads_b);
    case 2:
      return AccumulateOuterBatchFixed<2>(in, delta, batch, in_dim, grads_w,
                                          grads_b);
    case 4:
      return AccumulateOuterBatchFixed<4>(in, delta, batch, in_dim, grads_w,
                                          grads_b);
    case 8:
      return AccumulateOuterBatchFixed<8>(in, delta, batch, in_dim, grads_w,
                                          grads_b);
    case 16:
      return AccumulateOuterBatchFixed<16>(in, delta, batch, in_dim, grads_w,
                                           grads_b);
    default:
      return AccumulateOuterBatchGeneric(in, delta, batch, in_dim, out_dim,
                                         grads_w, grads_b);
  }
}

void GemvBatchTransposedF64(const double* delta, size_t batch, size_t out_dim,
                            const double* w, size_t in_dim, double* dx) {
  switch (out_dim) {
    case 1:
      return GemvBatchTransposedFixed<1>(delta, batch, w, in_dim, dx);
    case 2:
      return GemvBatchTransposedFixed<2>(delta, batch, w, in_dim, dx);
    case 4:
      return GemvBatchTransposedFixed<4>(delta, batch, w, in_dim, dx);
    case 8:
      return GemvBatchTransposedFixed<8>(delta, batch, w, in_dim, dx);
    case 16:
      return GemvBatchTransposedFixed<16>(delta, batch, w, in_dim, dx);
    default:
      return GemvBatchTransposedGeneric(delta, batch, out_dim, w, in_dim, dx);
  }
}

}  // namespace

template <typename T>
void GemvBatchResume(const T* x, size_t batch, size_t x_stride, size_t in_dim,
                     const T* w, const T* init, size_t out_dim, T* out) {
  if constexpr (std::is_same_v<T, double>) {
    GemvBatchResumeF64(x, batch, x_stride, in_dim, w, init, out_dim, out);
  } else {
#ifdef HFR_HAVE_AVX2_TU
    if (UseSimd()) {
      return fp32::GemvBatchResumeAvx2(x, batch, x_stride, in_dim, w, init,
                                       out_dim, out);
    }
#endif
    fp32::GemvBatchResumeScalar(x, batch, x_stride, in_dim, w, init, out_dim,
                                out);
  }
}

template <typename T>
void GemvBatchBiased(const T* x, size_t batch, size_t in_dim, const T* w,
                     const T* bias, size_t out_dim, T* out) {
  // A biased GEMV is a resume from the bias with contiguous rows.
  GemvBatchResume(x, batch, in_dim, in_dim, w, bias, out_dim, out);
}

template <typename T>
void AccumulateOuterBatch(const T* in, const T* delta, size_t batch,
                          size_t in_dim, size_t out_dim, T* grads_w,
                          T* grads_b) {
  if constexpr (std::is_same_v<T, double>) {
    AccumulateOuterBatchF64(in, delta, batch, in_dim, out_dim, grads_w,
                            grads_b);
  } else {
#ifdef HFR_HAVE_AVX2_TU
    if (UseSimd()) {
      return fp32::AccumulateOuterBatchAvx2(in, delta, batch, in_dim, out_dim,
                                            grads_w, grads_b);
    }
#endif
    fp32::AccumulateOuterBatchScalar(in, delta, batch, in_dim, out_dim,
                                     grads_w, grads_b);
  }
}

template <typename T>
void GemvBatchTransposed(const T* delta, size_t batch, size_t out_dim,
                         const T* w, size_t in_dim, T* dx) {
  if constexpr (std::is_same_v<T, double>) {
    GemvBatchTransposedF64(delta, batch, out_dim, w, in_dim, dx);
  } else {
#ifdef HFR_HAVE_AVX2_TU
    if (UseSimd()) {
      return fp32::GemvBatchTransposedAvx2(delta, batch, out_dim, w, in_dim,
                                           dx);
    }
#endif
    fp32::GemvBatchTransposedScalar(delta, batch, out_dim, w, in_dim, dx);
  }
}

template <typename T>
void GramMatrix(const T* x, size_t k, size_t n, MatrixT<T>* out) {
  HFR_CHECK(out != nullptr);
  HFR_CHECK_EQ(out->rows(), k);
  HFR_CHECK_EQ(out->cols(), k);
  // Upper triangle in square tiles so both operand panels stay cache-hot;
  // every entry is still the backend's dot of two packed rows.
  for (size_t a0 = 0; a0 < k; a0 += kKernelRowBlock) {
    const size_t a1 = std::min(k, a0 + kKernelRowBlock);
    for (size_t c0 = a0; c0 < k; c0 += kKernelRowBlock) {
      const size_t c1 = std::min(k, c0 + kKernelRowBlock);
      for (size_t a = a0; a < a1; ++a) {
        const T* xa = x + a * n;
        for (size_t c = std::max(a, c0); c < c1; ++c) {
          (*out)(a, c) = Dot(xa, x + c * n, n);
        }
      }
    }
  }
  for (size_t a = 0; a < k; ++a) {
    for (size_t c = a + 1; c < k; ++c) (*out)(c, a) = (*out)(a, c);
  }
}

template void GemvBatchBiased<double>(const double*, size_t, size_t,
                                      const double*, const double*, size_t,
                                      double*);
template void GemvBatchBiased<float>(const float*, size_t, size_t,
                                     const float*, const float*, size_t,
                                     float*);
template void GemvBatchResume<double>(const double*, size_t, size_t, size_t,
                                      const double*, const double*, size_t,
                                      double*);
template void GemvBatchResume<float>(const float*, size_t, size_t, size_t,
                                     const float*, const float*, size_t,
                                     float*);
template void AccumulateOuterBatch<double>(const double*, const double*,
                                           size_t, size_t, size_t, double*,
                                           double*);
template void AccumulateOuterBatch<float>(const float*, const float*, size_t,
                                          size_t, size_t, float*, float*);
template void GemvBatchTransposed<double>(const double*, size_t, size_t,
                                          const double*, size_t, double*);
template void GemvBatchTransposed<float>(const float*, size_t, size_t,
                                         const float*, size_t, float*);
template void GramMatrix<double>(const double*, size_t, size_t, Matrix*);
template void GramMatrix<float>(const float*, size_t, size_t, MatrixF*);

}  // namespace hetefedrec
