#include "src/math/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/math/init.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

Matrix TwoColumn() {
  // col0 = [1,2,3,4], col1 = [2,4,6,8] (perfectly correlated, col1 = 2*col0)
  Matrix m(4, 2);
  for (size_t r = 0; r < 4; ++r) {
    m(r, 0) = static_cast<double>(r + 1);
    m(r, 1) = 2.0 * static_cast<double>(r + 1);
  }
  return m;
}

TEST(StatsTest, ColumnMeans) {
  auto means = ColumnMeans(TwoColumn());
  EXPECT_DOUBLE_EQ(means[0], 2.5);
  EXPECT_DOUBLE_EQ(means[1], 5.0);
}

TEST(StatsTest, ColumnVariances) {
  auto vars = ColumnVariances(TwoColumn());
  EXPECT_DOUBLE_EQ(vars[0], 1.25);  // population variance of 1..4
  EXPECT_DOUBLE_EQ(vars[1], 5.0);
}

TEST(StatsTest, CovarianceMatrixSymmetricAndCorrect) {
  Matrix cov = CovarianceMatrix(TwoColumn());
  EXPECT_DOUBLE_EQ(cov(0, 0), 1.25);
  EXPECT_DOUBLE_EQ(cov(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(cov(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(cov(0, 1), cov(1, 0));
}

TEST(StatsTest, CorrelationOfPerfectlyCorrelatedColumns) {
  Matrix corr = CorrelationMatrix(TwoColumn());
  EXPECT_DOUBLE_EQ(corr(0, 0), 1.0);
  EXPECT_NEAR(corr(0, 1), 1.0, 1e-12);
}

TEST(StatsTest, CorrelationOfAntiCorrelatedColumns) {
  Matrix m(3, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  m(0, 1) = 3;
  m(1, 1) = 2;
  m(2, 1) = 1;
  Matrix corr = CorrelationMatrix(m);
  EXPECT_NEAR(corr(0, 1), -1.0, 1e-12);
}

TEST(StatsTest, CorrelationHandlesConstantColumn) {
  Matrix m(3, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  // column 1 constant
  for (size_t r = 0; r < 3; ++r) m(r, 1) = 7.0;
  Matrix corr = CorrelationMatrix(m);
  EXPECT_DOUBLE_EQ(corr(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(corr(1, 1), 1.0);
}

TEST(StatsTest, StandardizeColumnsZeroMeanUnitVar) {
  Rng rng(3);
  Matrix m(200, 4);
  InitNormal(&m, 3.0, &rng);
  for (size_t r = 0; r < m.rows(); ++r) m(r, 2) += 10.0;  // shifted column
  Matrix z = StandardizeColumns(m);
  auto means = ColumnMeans(z);
  auto vars = ColumnVariances(z);
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(means[c], 0.0, 1e-9);
    EXPECT_NEAR(vars[c], 1.0, 1e-6);
  }
}

TEST(StatsTest, ScalarHelpers) {
  std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(Variance(v), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(v), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 20.0);
}

TEST(StatsTest, EmptyMatrixStats) {
  Matrix m(0, 3);
  auto means = ColumnMeans(m);
  EXPECT_EQ(means.size(), 3u);
  EXPECT_DOUBLE_EQ(means[0], 0.0);
  Matrix cov = CovarianceMatrix(m);
  EXPECT_EQ(cov.rows(), 3u);
}

}  // namespace
}  // namespace hetefedrec
