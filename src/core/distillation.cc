#include "src/core/distillation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/data/types.h"
#include "src/math/aligned.h"
#include "src/math/kernels.h"

namespace hetefedrec {

namespace {

// Gathers the selected rows into a contiguous k x n block — the layout the
// batched Gram kernel (and the SIMD backend) wants. The Vkd rows are
// scattered across the table; everything downstream then reads packed rows.
// The fp32 pipeline casts at this gather, once per row.
template <typename T>
void GatherRows(const Matrix& table, const std::vector<ItemId>& items,
                AlignedVector<T>* packed) {
  const size_t n = table.cols();
  packed->resize(items.size() * n);
  for (size_t a = 0; a < items.size(); ++a) {
    const double* src = table.Row(items[a]);
    T* dst = packed->data() + a * n;
    for (size_t d = 0; d < n; ++d) dst[d] = static_cast<T>(src[d]);
  }
}

// Relation matrix from a precomputed Gram matrix: rel(a,b) =
// gram(a,b) / (norm_a * norm_b) with 1s on the diagonal and 0 for all-zero
// rows — exactly CosineSimilarity per pair (norms are the diagonal sqrts,
// the same Dot the scalar path computed).
template <typename T>
void RelationFromGram(const MatrixT<T>& gram, const std::vector<T>& norm,
                      MatrixT<T>* rel) {
  const size_t k = gram.rows();
  for (size_t a = 0; a < k; ++a) {
    (*rel)(a, a) = T(1);
    for (size_t b = a + 1; b < k; ++b) {
      T s = (norm[a] == T(0) || norm[b] == T(0))
                ? T(0)
                : gram(a, b) / (norm[a] * norm[b]);
      (*rel)(a, b) = s;
      (*rel)(b, a) = s;
    }
  }
}

template <typename T>
MatrixT<T> RelationMatrixImpl(const Matrix& table,
                              const std::vector<ItemId>& items) {
  const size_t k = items.size();
  const size_t n = table.cols();
  AlignedVector<T> packed;
  GatherRows(table, items, &packed);
  MatrixT<T> gram(k, k);
  GramMatrix(packed.data(), k, n, &gram);
  std::vector<T> norm(k);
  for (size_t a = 0; a < k; ++a) norm[a] = std::sqrt(gram(a, a));
  MatrixT<T> rel(k, k);
  RelationFromGram(gram, norm, &rel);
  return rel;
}

template <typename T>
double RelationLossImpl(const MatrixT<T>& relation, const MatrixT<T>& target) {
  HFR_CHECK(relation.SameShape(target));
  double loss = 0.0;
  for (size_t i = 0; i < relation.data().size(); ++i) {
    double d = static_cast<double>(relation.data()[i]) -
               static_cast<double>(target.data()[i]);
    loss += d * d;
  }
  return loss;
}

// One gradient-descent step of || rel(V) - target ||² on the selected rows.
// The table is read through a T-cast gather and the computed gradient is
// upcast row-by-row at the final write — the table stays fp64 state.
template <typename T>
void DistillStep(Matrix* table, const std::vector<ItemId>& items,
                 const MatrixT<T>& target, double lr) {
  const size_t k = items.size();
  const size_t n = table->cols();
  // One gather + one batched Gram serve norms, normalized copies and the
  // relation matrix (the scalar path recomputed each dot per pair).
  AlignedVector<T> packed;
  GatherRows(*table, items, &packed);
  MatrixT<T> gram(k, k);
  GramMatrix(packed.data(), k, n, &gram);
  // Normalized copies ẑ_a and norms of the selected rows. Norm2 is
  // sqrt(Dot(row, row)) — the Gram diagonal.
  MatrixT<T> z(k, n);
  std::vector<T> norm(k, T(0));
  for (size_t a = 0; a < k; ++a) {
    norm[a] = std::sqrt(gram(a, a));
    if (norm[a] > T(0)) {
      T inv = T(1) / norm[a];
      const T* row = packed.data() + a * n;
      T* zr = z.Row(a);
      for (size_t d = 0; d < n; ++d) zr[d] = row[d] * inv;
    }
  }
  MatrixT<T> rel(k, k);
  RelationFromGram(gram, norm, &rel);

  // Accumulate gradients; entries (a,b) and (b,a) both appear in the
  // squared norm, so each unordered pair contributes coefficient
  // 4 (s_ab - t_ab); ds_ab/dx_a = (ẑ_b - s_ab ẑ_a) / ||x_a||.
  MatrixT<T> grads(k, n);
  for (size_t a = 0; a < k; ++a) {
    if (norm[a] == T(0)) continue;
    const T* za = z.Row(a);
    T* ga = grads.Row(a);
    for (size_t b = 0; b < k; ++b) {
      if (b == a || norm[b] == T(0)) continue;
      T coef = T(4) * (rel(a, b) - target(a, b)) / norm[a];
      const T* zb = z.Row(b);
      T s = rel(a, b);
      for (size_t d = 0; d < n; ++d) ga[d] += coef * (zb[d] - s * za[d]);
    }
  }
  for (size_t a = 0; a < k; ++a) {
    double* row = table->Row(items[a]);
    const T* ga = grads.Row(a);
    for (size_t d = 0; d < n; ++d) row[d] -= lr * static_cast<double>(ga[d]);
  }
}

template <typename T>
double EnsembleDistillImpl(const std::vector<Matrix*>& tables,
                           const DistillationOptions& options,
                           const std::vector<ItemId>& items) {
  const size_t k = items.size();

  // Ensemble relation d_ens (Eq. 16), fixed during the descent.
  MatrixT<T> ens(k, k);
  std::vector<MatrixT<T>> relations;
  relations.reserve(tables.size());
  for (Matrix* t : tables) {
    relations.push_back(RelationMatrixImpl<T>(*t, items));
    ens.AddScaled(relations.back(), T(1));
  }
  ens.Scale(T(1) / static_cast<T>(tables.size()));

  double pre_loss = 0.0;
  for (const MatrixT<T>& rel : relations) {
    pre_loss += RelationLossImpl(rel, ens);
  }
  pre_loss /= static_cast<double>(tables.size());

  for (Matrix* t : tables) {
    for (int s = 0; s < options.steps; ++s) {
      DistillStep(t, items, ens, options.lr);
    }
  }
  return pre_loss;
}

}  // namespace

Matrix RelationMatrix(const Matrix& table, const std::vector<ItemId>& items) {
  return RelationMatrixImpl<double>(table, items);
}

double RelationLoss(const Matrix& relation, const Matrix& target) {
  return RelationLossImpl(relation, target);
}

double EnsembleDistill(const std::vector<Matrix*>& tables,
                       const DistillationOptions& options, Rng* rng,
                       std::vector<ItemId>* sampled_items) {
  HFR_CHECK(!tables.empty());
  const size_t num_items = tables[0]->rows();
  for (const Matrix* t : tables) HFR_CHECK_EQ(t->rows(), num_items);

  // Sample Vkd (distinct items). Scalar-free, so the draw sequence is the
  // same on every compute backend.
  size_t k = std::min(options.kd_items, num_items);
  std::vector<ItemId> all(num_items);
  for (size_t i = 0; i < num_items; ++i) all[i] = static_cast<ItemId>(i);
  rng->Shuffle(&all);
  std::vector<ItemId> items(all.begin(), all.begin() + k);
  if (sampled_items != nullptr) *sampled_items = items;

  if (options.backend == ComputeBackend::kFp64) {
    return EnsembleDistillImpl<double>(tables, options, items);
  }
  return EnsembleDistillImpl<float>(tables, options, items);
}

}  // namespace hetefedrec
