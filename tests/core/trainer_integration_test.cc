// End-to-end integration tests over the full federated pipeline.
//
// These run tiny synthetic experiments (seconds each) and assert the
// qualitative properties the paper's evaluation depends on, not absolute
// numbers.
#include "src/core/trainer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "src/core/checkpoint.h"

namespace hetefedrec {
namespace {

ExperimentConfig TinyConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.025;  // ~150 users, ~92 items
  cfg.dims = {4, 8, 16};
  cfg.global_epochs = 4;
  cfg.local_epochs = 2;
  cfg.clients_per_round = 64;
  cfg.eval_user_sample = 80;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 32;
  cfg.seed = 5;
  return cfg;
}

TEST(ExperimentRunnerTest, CreateValidatesConfig) {
  ExperimentConfig bad = TinyConfig();
  bad.lr = -1;
  EXPECT_FALSE(ExperimentRunner::Create(bad).ok());
  bad = TinyConfig();
  bad.dataset = "imdb";
  EXPECT_FALSE(ExperimentRunner::Create(bad).ok());
}

TEST(ExperimentRunnerTest, GroupSizesFollowFractions) {
  auto runner = ExperimentRunner::Create(TinyConfig());
  ASSERT_TRUE(runner.ok());
  const auto& g = (*runner)->groups();
  size_t n = (*runner)->dataset().num_users();
  EXPECT_NEAR(static_cast<double>(g.size(Group::kSmall)), 0.5 * n, 2.0);
  EXPECT_NEAR(static_cast<double>(g.size(Group::kMedium)), 0.3 * n, 2.0);
  EXPECT_NEAR(static_cast<double>(g.size(Group::kLarge)), 0.2 * n, 2.0);
}

class MethodSmokeTest : public testing::TestWithParam<Method> {};

TEST_P(MethodSmokeTest, RunsAndProducesFiniteMetrics) {
  auto runner = ExperimentRunner::Create(TinyConfig());
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(GetParam());
  EXPECT_TRUE(std::isfinite(r.final_eval.overall.recall));
  EXPECT_TRUE(std::isfinite(r.final_eval.overall.ndcg));
  EXPECT_GE(r.final_eval.overall.recall, 0.0);
  EXPECT_LE(r.final_eval.overall.recall, 1.0);
  EXPECT_GE(r.final_eval.overall.ndcg, 0.0);
  EXPECT_LE(r.final_eval.overall.ndcg, 1.0);
  EXPECT_GT(r.final_eval.overall.users, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodSmokeTest, testing::ValuesIn(kAllMethods),
    [](const auto& info) {
      std::string name = MethodName(info.param);
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c))) out.push_back(c);
      }
      return out;
    });

TEST(ExperimentRunnerTest, TrainingBeatsRandomScoring) {
  // Compare against an honest random scorer run through the same
  // evaluation protocol (same users, same masking).
  ExperimentConfig cfg = TinyConfig();
  cfg.global_epochs = 8;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(Method::kAllSmall);

  Evaluator ev((*runner)->dataset(), (*runner)->groups(), cfg.top_k,
               cfg.eval_user_sample, cfg.seed ^ 0xe5a1ULL);
  Rng rng(99);
  auto random_fn = [&](UserId, std::vector<double>* scores) {
    scores->resize((*runner)->dataset().num_items());
    for (auto& s : *scores) s = rng.Uniform();
  };
  GroupedEval random_eval = ev.Evaluate(random_fn);
  EXPECT_GT(r.final_eval.overall.ndcg, 1.1 * random_eval.overall.ndcg);
  EXPECT_GT(r.final_eval.overall.recall, 1.1 * random_eval.overall.recall);
}

TEST(ExperimentRunnerTest, DeterministicAcrossRuns) {
  auto runner = ExperimentRunner::Create(TinyConfig());
  ASSERT_TRUE(runner.ok());
  ExperimentResult a = (*runner)->Run(Method::kHeteFedRec);
  ExperimentResult b = (*runner)->Run(Method::kHeteFedRec);
  EXPECT_DOUBLE_EQ(a.final_eval.overall.ndcg, b.final_eval.overall.ndcg);
  EXPECT_DOUBLE_EQ(a.final_eval.overall.recall,
                   b.final_eval.overall.recall);
}

TEST(ExperimentRunnerTest, HistoryRecordedWhenRequested) {
  ExperimentConfig cfg = TinyConfig();
  cfg.eval_every = 2;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(Method::kAllSmall);
  ASSERT_EQ(r.history.size(), 2u);  // epochs 2 and 4
  EXPECT_EQ(r.history[0].epoch, 2);
  EXPECT_EQ(r.history[1].epoch, 4);
  // Final eval equals the last history point.
  EXPECT_DOUBLE_EQ(r.history.back().eval.overall.ndcg,
                   r.final_eval.overall.ndcg);
}

TEST(ExperimentRunnerTest, CommCostsMatchTableThreeFormulas) {
  ExperimentConfig cfg = TinyConfig();
  cfg.global_epochs = 1;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  size_t items = (*runner)->dataset().num_items();

  // Θ parameter counts per slot width.
  auto theta_params = [&](size_t w) {
    FeedForwardNet t(2 * w, {cfg.ffn_hidden[0], cfg.ffn_hidden[1]});
    return t.ParamCount();
  };

  // HeteFedRec: Us moves Vs+Θs; Um moves Vm+Θs+Θm; Ul moves Vl+Θs+Θm+Θl.
  ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
  EXPECT_DOUBLE_EQ(r.comm.AvgUpload(Group::kSmall),
                   static_cast<double>(items * cfg.dims[0] +
                                       theta_params(cfg.dims[0])));
  EXPECT_DOUBLE_EQ(
      r.comm.AvgUpload(Group::kMedium),
      static_cast<double>(items * cfg.dims[1] + theta_params(cfg.dims[0]) +
                          theta_params(cfg.dims[1])));
  EXPECT_DOUBLE_EQ(
      r.comm.AvgUpload(Group::kLarge),
      static_cast<double>(items * cfg.dims[2] + theta_params(cfg.dims[0]) +
                          theta_params(cfg.dims[1]) +
                          theta_params(cfg.dims[2])));

  // All Small: everyone moves Vs+Θs.
  ExperimentResult small = (*runner)->Run(Method::kAllSmall);
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    EXPECT_DOUBLE_EQ(small.comm.AvgUpload(g),
                     static_cast<double>(items * cfg.dims[0] +
                                         theta_params(cfg.dims[0])));
  }
}

TEST(ExperimentRunnerTest, StandaloneHasNoCommunication) {
  auto runner = ExperimentRunner::Create(TinyConfig());
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(Method::kStandalone);
  EXPECT_EQ(r.comm.TotalTransmitted(), 0u);
}

TEST(ExperimentRunnerTest, DdrReducesCollapseVariance) {
  // Table V: +DDR lowers the singular-value variance of cov(Vl).
  ExperimentConfig cfg = TinyConfig();
  cfg.global_epochs = 5;
  cfg.ensemble_distillation = false;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());

  cfg.decorrelation = false;
  auto runner_off = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner_off.ok());

  double with_ddr = (*runner)->Run(Method::kHeteFedRec).collapse_variance;
  double without_ddr =
      (*runner_off)->Run(Method::kHeteFedRec).collapse_variance;
  EXPECT_LT(with_ddr, without_ddr);
}

TEST(ExperimentRunnerTest, CheckpointWrittenAndLoadable) {
  ExperimentConfig cfg = TinyConfig();
  cfg.global_epochs = 2;
  cfg.checkpoint_path = testing::TempDir() + "/e2e_ckpt.bin";
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  (*runner)->Run(Method::kHeteFedRec);
  auto ckpt = LoadServerCheckpoint(cfg.checkpoint_path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_EQ(ckpt->base_model_name, "Fed-NCF");
  ASSERT_EQ(ckpt->tables.size(), 3u);
  EXPECT_EQ(ckpt->tables[0].cols(), cfg.dims[0]);
  EXPECT_EQ(ckpt->tables[2].cols(), cfg.dims[2]);
  EXPECT_EQ(ckpt->tables[0].rows(), (*runner)->dataset().num_items());
  // A trained table is no longer pure noise: it differs from a fresh init.
  EXPECT_GT(ckpt->tables[2].MaxAbs(), 0.0);
  std::remove(cfg.checkpoint_path.c_str());
}

TEST(ExperimentRunnerTest, ValidationCarveOutEndToEnd) {
  ExperimentConfig cfg = TinyConfig();
  cfg.global_epochs = 2;
  cfg.local_validation_fraction = 0.1;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
  EXPECT_TRUE(std::isfinite(r.final_eval.overall.ndcg));
  EXPECT_GT(r.final_eval.overall.users, 0u);
}

TEST(ExperimentRunnerTest, DoubanWideDimsEndToEnd) {
  // The Douban configuration uses {32,64,128} embedding widths (§V-D) —
  // exercise that widest path end to end.
  ExperimentConfig cfg = TinyConfig();
  cfg.dataset = "douban";
  cfg.dims = {32, 64, 128};
  cfg.global_epochs = 2;
  cfg.ddr_sample_rows = 32;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
  EXPECT_TRUE(std::isfinite(r.final_eval.overall.ndcg));
  EXPECT_GT(r.final_eval.overall.users, 0u);
  // Comm reflects the wide tables: Ul moves 128-dim embeddings.
  EXPECT_GT(r.comm.AvgUpload(Group::kLarge),
            r.comm.AvgUpload(Group::kSmall) * 3.0);
}

TEST(ExperimentRunnerTest, LightGcnEndToEnd) {
  ExperimentConfig cfg = TinyConfig();
  cfg.base_model = BaseModel::kLightGcn;
  cfg.global_epochs = 3;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
  EXPECT_TRUE(std::isfinite(r.final_eval.overall.ndcg));
  EXPECT_GT(r.final_eval.overall.users, 0u);
}

TEST(ExperimentRunnerTest, Eq10PrefixInvariantHoldsEndToEnd) {
  // With UDL only (no RESKD perturbing tables independently), the trained
  // server must still satisfy Vs = Vm[:,:Ns] = Vl[:,:Ns] after full
  // federated training — Eq. 10 carried through real local updates, Adam,
  // padding aggregation and multiple epochs.
  ExperimentConfig cfg = TinyConfig();
  cfg.global_epochs = 3;
  cfg.decorrelation = true;          // DDR is client-side; prefix-safe
  cfg.ensemble_distillation = false; // RESKD would break the tie by design
  cfg.checkpoint_path = testing::TempDir() + "/eq10_ckpt.bin";
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  (*runner)->Run(Method::kHeteFedRec);
  auto ckpt = LoadServerCheckpoint(cfg.checkpoint_path);
  ASSERT_TRUE(ckpt.ok());
  const Matrix& vs = ckpt->tables[0];
  const Matrix& vm = ckpt->tables[1];
  const Matrix& vl = ckpt->tables[2];
  for (size_t r = 0; r < vs.rows(); ++r) {
    for (size_t c = 0; c < vs.cols(); ++c) {
      ASSERT_DOUBLE_EQ(vs(r, c), vm(r, c)) << r << "," << c;
      ASSERT_DOUBLE_EQ(vs(r, c), vl(r, c)) << r << "," << c;
    }
    for (size_t c = 0; c < vm.cols(); ++c) {
      ASSERT_DOUBLE_EQ(vm(r, c), vl(r, c)) << r << "," << c;
    }
  }
  std::remove(cfg.checkpoint_path.c_str());
}

TEST(ExperimentRunnerTest, ReskdBreaksPrefixTie) {
  // The dual of the invariant above: with RESKD on, the three tables are
  // distilled independently and the prefixes must diverge.
  ExperimentConfig cfg = TinyConfig();
  cfg.global_epochs = 2;
  cfg.ensemble_distillation = true;
  cfg.checkpoint_path = testing::TempDir() + "/reskd_ckpt.bin";
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  (*runner)->Run(Method::kHeteFedRec);
  auto ckpt = LoadServerCheckpoint(cfg.checkpoint_path);
  ASSERT_TRUE(ckpt.ok());
  bool diverged = false;
  const Matrix& vs = ckpt->tables[0];
  const Matrix& vl = ckpt->tables[2];
  for (size_t r = 0; r < vs.rows() && !diverged; ++r) {
    for (size_t c = 0; c < vs.cols() && !diverged; ++c) {
      diverged = vs(r, c) != vl(r, c);
    }
  }
  EXPECT_TRUE(diverged);
  std::remove(cfg.checkpoint_path.c_str());
}

TEST(ExperimentRunnerTest, AblationTogglesChangeResults) {
  ExperimentConfig cfg = TinyConfig();
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  double full = (*runner)->Run(Method::kHeteFedRec).final_eval.overall.ndcg;

  cfg.unified_dual_task = false;
  cfg.decorrelation = false;
  cfg.ensemble_distillation = false;
  auto ablated = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(ablated.ok());
  double stripped =
      (*ablated)->Run(Method::kHeteFedRec).final_eval.overall.ndcg;
  // Fully stripped HeteFedRec == Directly Aggregate by construction.
  double direct = (*ablated)->Run(Method::kDirectlyAggregate)
                      .final_eval.overall.ndcg;
  EXPECT_DOUBLE_EQ(stripped, direct);
  EXPECT_NE(full, stripped);
}

}  // namespace
}  // namespace hetefedrec
