// Portable scalar fp32 kernels that emulate the AVX2 set lane-for-lane.
//
// Every multiply-add is a std::fmaf — correctly rounded to float in one
// step, exactly like _mm256_fmadd_ps — and every horizontal reduction
// retires the same fixed 8→4→2→1 tree the vector code uses, so this file
// and kernels_avx2.cc produce the same bits on the same inputs. Keep the
// two files in lockstep: any change to an accumulation order here must be
// mirrored there (tests/math/kernels_test.cc pins the identity).

#include "src/math/kernels_fp32.h"

#include <cmath>

namespace hetefedrec {
namespace fp32 {

namespace {

// Canonical fp32 dot product: 8 lane accumulators over ascending 8-element
// chunks (first chunk a plain product, later chunks fused), reduced
// (l0+l4, l1+l5, l2+l6, l3+l7) → (s0+s2, s1+s3) → t0+t1, then the tail
// fused in ascending order. n < 8 is a plain ascending fmaf chain from 0.
inline float DotImpl(const float* a, const float* b, size_t n) {
  if (n < 8) {
    float r = 0.0f;
    for (size_t i = 0; i < n; ++i) r = std::fmaf(a[i], b[i], r);
    return r;
  }
  float lane[8];
  for (size_t k = 0; k < 8; ++k) lane[k] = a[k] * b[k];
  size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    for (size_t k = 0; k < 8; ++k)
      lane[k] = std::fmaf(a[i + k], b[i + k], lane[k]);
  }
  const float s0 = lane[0] + lane[4];
  const float s1 = lane[1] + lane[5];
  const float s2 = lane[2] + lane[6];
  const float s3 = lane[3] + lane[7];
  float r = (s0 + s2) + (s1 + s3);
  for (; i < n; ++i) r = std::fmaf(a[i], b[i], r);
  return r;
}

}  // namespace

void GemvBatchResumeScalar(const float* x, size_t batch, size_t x_stride,
                           size_t in_dim, const float* w, const float* init,
                           size_t out_dim, float* out) {
  if (out_dim == 1) {
    // The weight column is contiguous — dot-shaped, resumed from init.
    for (size_t b = 0; b < batch; ++b) {
      out[b] = init[0] + DotImpl(x + b * x_stride, w, in_dim);
    }
    return;
  }
  for (size_t b = 0; b < batch; ++b) {
    const float* xrow = x + b * x_stride;
    float* orow = out + b * out_dim;
    size_t j0 = 0;
    for (; j0 + 8 <= out_dim; j0 += 8) {
      float acc[8];
      for (size_t k = 0; k < 8; ++k) acc[k] = init[j0 + k];
      for (size_t i = 0; i < in_dim; ++i) {
        const float xi = xrow[i];
        const float* wrow = w + i * out_dim + j0;
        for (size_t k = 0; k < 8; ++k) acc[k] = std::fmaf(xi, wrow[k], acc[k]);
      }
      for (size_t k = 0; k < 8; ++k) orow[j0 + k] = acc[k];
    }
    for (; j0 < out_dim; ++j0) {
      float acc = init[j0];
      for (size_t i = 0; i < in_dim; ++i) {
        acc = std::fmaf(xrow[i], w[i * out_dim + j0], acc);
      }
      orow[j0] = acc;
    }
  }
}

void AccumulateOuterBatchScalar(const float* in, const float* delta,
                                size_t batch, size_t in_dim, size_t out_dim,
                                float* grads_w, float* grads_b) {
  for (size_t b = 0; b < batch; ++b) {
    const float* drow = delta + b * out_dim;
    const float* irow = in + b * in_dim;
    for (size_t j = 0; j < out_dim; ++j) grads_b[j] += drow[j];
    if (out_dim == 1) {
      const float d = drow[0];
      for (size_t i = 0; i < in_dim; ++i) {
        grads_w[i] = std::fmaf(irow[i], d, grads_w[i]);
      }
      continue;
    }
    for (size_t i = 0; i < in_dim; ++i) {
      const float xi = irow[i];
      float* grow = grads_w + i * out_dim;
      size_t j0 = 0;
      for (; j0 + 8 <= out_dim; j0 += 8) {
        for (size_t k = 0; k < 8; ++k) {
          grow[j0 + k] = std::fmaf(xi, drow[j0 + k], grow[j0 + k]);
        }
      }
      for (; j0 < out_dim; ++j0) {
        grow[j0] = std::fmaf(xi, drow[j0], grow[j0]);
      }
    }
  }
}

void GemvBatchTransposedScalar(const float* delta, size_t batch,
                               size_t out_dim, const float* w, size_t in_dim,
                               float* dx) {
  for (size_t b = 0; b < batch; ++b) {
    const float* drow = delta + b * out_dim;
    float* dxrow = dx + b * in_dim;
    for (size_t i = 0; i < in_dim; ++i) {
      dxrow[i] = DotImpl(w + i * out_dim, drow, out_dim);
    }
  }
}

float DotScalar(const float* a, const float* b, size_t n) {
  return DotImpl(a, b, n);
}

void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

}  // namespace fp32
}  // namespace hetefedrec
