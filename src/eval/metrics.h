// Ranking metrics: Recall@K and NDCG@K (§V-B).
#ifndef HETEFEDREC_EVAL_METRICS_H_
#define HETEFEDREC_EVAL_METRICS_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "src/data/types.h"

namespace hetefedrec {

/// Recall@K = |topk ∩ relevant| / |relevant|. `topk` is the recommendation
/// list in rank order; `relevant` the user's held-out test items.
double RecallAtK(const std::vector<ItemId>& topk,
                 const std::unordered_set<ItemId>& relevant);

/// NDCG@K with binary relevance: DCG = Σ_{hit at rank p} 1/log2(p+1)
/// (1-indexed ranks), normalized by the ideal DCG for min(k, |relevant|).
/// `k` is the *requested* list length and must be passed explicitly:
/// `topk.size()` can be smaller than k (catalogue or candidate pool
/// smaller than K), and the ideal ranking is truncated at k, not at the
/// achievable list length — normalizing by min(topk.size(), |relevant|)
/// would silently inflate NDCG exactly when the ranking is starved.
/// Full-catalogue paper runs are unaffected (topk.size() == k there).
double NdcgAtK(const std::vector<ItemId>& topk,
               const std::unordered_set<ItemId>& relevant, size_t k);

/// Extracts the indices of the K largest scores in descending order.
/// `masked` entries (same length as scores) are skipped — used to exclude
/// a user's training items from ranking.
///
/// This is the partial_sort *reference* selection (routed through
/// TopKSelector's reference path so repeated calls reuse scratch); the
/// evaluator's hot path streams TopKSelector directly — see
/// src/eval/topk.h.
std::vector<ItemId> TopKItems(const std::vector<double>& scores,
                              const std::vector<bool>& masked, size_t k);

/// Top-K over an explicit candidate list: `scores[i]` is the score of
/// `ids[i]`. Uses the same (score descending, item id ascending) order as
/// TopKItems, so the result equals TopKItems' full ranking restricted to
/// the candidate set — the invariant behind candidate-sliced evaluation.
/// Reference path, like TopKItems.
std::vector<ItemId> TopKFromCandidates(const std::vector<ItemId>& ids,
                                       const std::vector<double>& scores,
                                       size_t k);

// --- Supplementary ranking metrics ----------------------------------------
// The paper reports Recall@20 and NDCG@20; these are provided for users of
// the library who want the other standard top-K diagnostics.

/// HitRate@K: 1 if any relevant item appears in the list, else 0.
double HitRateAtK(const std::vector<ItemId>& topk,
                  const std::unordered_set<ItemId>& relevant);

/// Precision@K: fraction of the list that is relevant (divides by the
/// list's actual length).
double PrecisionAtK(const std::vector<ItemId>& topk,
                    const std::unordered_set<ItemId>& relevant);

/// MRR@K: reciprocal rank of the first relevant item (1-indexed), 0 if the
/// list contains none.
double MrrAtK(const std::vector<ItemId>& topk,
              const std::unordered_set<ItemId>& relevant);

/// Average Precision@K (binary relevance), normalized by
/// min(K, |relevant|); the mean over users is MAP@K.
double AveragePrecisionAtK(const std::vector<ItemId>& topk,
                           const std::unordered_set<ItemId>& relevant);

}  // namespace hetefedrec

#endif  // HETEFEDREC_EVAL_METRICS_H_
