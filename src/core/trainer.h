// Experiment driver: runs any of the paper's seven training schemes end to
// end on one dataset and reports the metrics every bench binary consumes.
#ifndef HETEFEDREC_CORE_TRAINER_H_
#define HETEFEDREC_CORE_TRAINER_H_

#include <memory>
#include <vector>

#include "src/core/config.h"
#include "src/core/hetero_server.h"
#include "src/data/dataset.h"
#include "src/eval/evaluator.h"
#include "src/fed/comm.h"
#include "src/fed/groups.h"

namespace hetefedrec {

/// \brief One point of a convergence curve (Fig. 7).
struct EpochPoint {
  int epoch = 0;            // 1-based global epoch
  GroupedEval eval;         // metrics at that epoch
  double mean_train_loss = 0.0;
  /// Simulated-network seconds elapsed when this point was taken (the
  /// virtual clock of the round/event executor, not wall time).
  double simulated_seconds = 0.0;
};

/// \brief Everything one experiment run produces.
struct ExperimentResult {
  GroupedEval final_eval;            // Table II / Fig. 6
  std::vector<EpochPoint> history;   // Fig. 7 (empty if eval_every == 0)
  CommStats comm;                    // Table III
  /// Per-round traffic deltas (CommStats::SnapshotRound), one entry per
  /// completed synchronous round / async merge batch. Filled only when
  /// config.track_round_comm is set; empty otherwise.
  std::vector<CommRound> round_comm;
  /// Variance of the eigenvalues of cov(V_largest) — Table V diagnostic.
  double collapse_variance = 0.0;
  /// Scale-normalized variant: variance of eigenvalues divided by their
  /// squared mean (a squared coefficient of variation). Raw variances
  /// shrink quadratically with embedding magnitude, so this is the robust
  /// quantity to compare across runs at reduced training scale.
  double collapse_cv = 0.0;
  double train_seconds = 0.0;
  /// Total simulated-network seconds the run consumed: the sum of round
  /// durations (each round waits for its slowest merged client) in the
  /// synchronous protocol, the final virtual-clock reading of the event
  /// queue in async mode. 0 for Standalone (no network).
  double simulated_seconds = 0.0;
};

/// \brief Owns the dataset + group division and runs methods against them.
///
/// Construct once per (dataset, config) and call Run for each method so all
/// methods see identical data, splits and group assignment.
class ExperimentRunner {
 public:
  /// Generates the synthetic dataset and divides clients into groups.
  /// Fails on invalid config.
  static StatusOr<std::unique_ptr<ExperimentRunner>> Create(
      const ExperimentConfig& config);

  /// Runs one training scheme to completion.
  ExperimentResult Run(Method method) const;

  const Dataset& dataset() const { return dataset_; }
  const GroupAssignment& groups() const { return groups_; }
  const ExperimentConfig& config() const { return config_; }

 private:
  ExperimentRunner(ExperimentConfig config, Dataset dataset,
                   GroupAssignment groups);

  /// Federated schemes (everything except Standalone).
  ExperimentResult RunFederated(Method method) const;

  /// Per-client isolated training.
  ExperimentResult RunStandalone() const;

  ExperimentConfig config_;
  Dataset dataset_;
  GroupAssignment groups_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_TRAINER_H_
