// Fixture: must produce zero findings. Lookup-only access, an annotated
// walk, and reference parameters (not owned declarations).
#include <unordered_map>
#include <unordered_set>

// hfr-lint: iteration-order-safe(lookup-only in this fixture; the one walk below carries its own annotation)
static std::unordered_map<int, double> weights;

double Lookup(int key) {
  auto it = weights.find(key);
  return it == weights.end() ? 0.0 : it->second;
}

double SumCommutative() {
  double total = 0.0;
  // Summing doubles is NOT commutative in general; this fixture stands in
  // for a genuinely order-free reduction (e.g. exact u64 counters).
  // hfr-lint: iteration-order-safe(fixture stand-in for an exact commutative reduction)
  for (const auto& kv : weights) total += kv.second;
  return total;
}

// A const-reference parameter is not an owned declaration.
bool Contains(const std::unordered_set<int>& pool, int key) {
  return pool.count(key) > 0;
}
