// Batched micro-kernels over contiguous row-major blocks.
//
// The scoring model (Eq. 1-3: user⊕item embedding through a small MLP) is
// embarrassingly batchable across samples and items, but the original hot
// paths walked it one sample at a time: a GEMV per FFN layer per sample
// during training, and one full scalar forward per item during evaluation.
// The kernels here push a B x dim block through each step at once — one
// bias-initialized GEMM per layer, one outer-product accumulation per layer
// on the way back, and a Gram matrix for the distillation relation — while
// every per-sample result stays *bit-identical* to the scalar loops:
//
//   * Each output element accumulates its terms in exactly the scalar
//     order (ascending input index for forwards, ascending sample index
//     for gradient sums, ascending output index for input gradients).
//     Blocking only regroups independent accumulator targets; it never
//     reorders additions into the same target.
//   * Exact-zero inputs are skipped, matching the scalar kernels' skip
//     (relevant for -0.0 accumulators: acc + 0.0 can flip -0.0 to +0.0).
//
// These invariants make the batched layer a drop-in replacement: the
// trainer, the distiller and the evaluator all produce the same bits as the
// per-sample reference (tests/math/kernels_test.cc and
// tests/core/batched_equivalence_test.cc pin this), and the contiguous
// block layout is the prerequisite for any future float/SIMD backend.
#ifndef HETEFEDREC_MATH_KERNELS_H_
#define HETEFEDREC_MATH_KERNELS_H_

#include <cstddef>

#include "src/math/matrix.h"

namespace hetefedrec {

/// Rows per block in the batched kernels: bounds the working set of one
/// block (kKernelRowBlock x dim doubles) so the weight panel stays hot in
/// L1/L2 across the block's rows.
inline constexpr size_t kKernelRowBlock = 32;

/// out[b, j] = bias[j] + Σ_i x[b, i] * w[i, j]   (x: batch x in_dim,
/// w: in_dim x out_dim, out: batch x out_dim, all row-major contiguous).
///
/// Per (b, j) the sum runs over ascending i with exact-zero x skipped —
/// the scalar FFN-layer loop — so each row of `out` is bit-identical to a
/// standalone GEMV of that sample.
void GemvBatchBiased(const double* x, size_t batch, size_t in_dim,
                     const double* w, const double* bias, size_t out_dim,
                     double* out);

/// GemvBatchBiased resuming from shared partial sums: every row's
/// accumulators start at `init` (length out_dim — e.g. the bias plus a
/// prefix of input terms common to the whole batch) and consume `in_dim`
/// further inputs per row, rows starting `x_stride` doubles apart.
/// Per (b, j) the additions run in ascending i with exact-zero x skipped,
/// so resuming is bit-identical to re-running the full accumulation.
void GemvBatchResume(const double* x, size_t batch, size_t x_stride,
                     size_t in_dim, const double* w, const double* init,
                     size_t out_dim, double* out);

/// Gradient outer products of one layer over a batch:
///   grads_w[i, j] += Σ_b in[b, i] * delta[b, j]
///   grads_b[j]    += Σ_b delta[b, j]
/// Per target element the sum runs over ascending b with exact-zero in
/// skipped, matching a sample-by-sample sequence of scalar accumulations.
void AccumulateOuterBatch(const double* in, const double* delta, size_t batch,
                          size_t in_dim, size_t out_dim, double* grads_w,
                          double* grads_b);

/// Back-propagated input gradients of one layer over a batch:
///   dx[b, i] = Σ_j w[i, j] * delta[b, j]
/// Per (b, i) the sum runs over ascending j — the scalar loop's order.
void GemvBatchTransposed(const double* delta, size_t batch, size_t out_dim,
                         const double* w, size_t in_dim, double* dx);

/// Gram matrix of k packed rows: out(a, b) = Dot(x_a, x_b) for the
/// row-major k x n block `x`. Symmetric; only the upper triangle (plus the
/// diagonal) is computed, then mirrored. Each entry is the plain ascending
/// Dot of the two rows, so it is bit-identical to pairwise Dot calls.
void GramMatrix(const double* x, size_t k, size_t n, Matrix* out);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_KERNELS_H_
