// Feed-forward preference predictor (the paper's Θ).
//
// Architecture per §V-D: input [u, v] of size 2N, hidden layers [8, 8] with
// ReLU, and a single output logit (Eq. 5 applies the sigmoid; we keep logits
// and use BCE-with-logits for stability). One FeedForwardNet instance also
// serves as the gradient container for another of the same shape, which
// keeps aggregation code uniform (server sums Θ updates exactly like item
// embedding updates, Eq. 15).
#ifndef HETEFEDREC_MODELS_FFN_H_
#define HETEFEDREC_MODELS_FFN_H_

#include <vector>

#include "src/math/adam.h"
#include "src/math/matrix.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Multi-layer perceptron with ReLU hidden activations and a single
/// linear output (logit).
class FeedForwardNet {
 public:
  /// Empty network (no layers). Usable only after assignment.
  FeedForwardNet() = default;

  /// \param input_dim size of the input vector (2N for NCF/LightGCN).
  /// \param hidden sizes of the hidden layers (paper: {8, 8}).
  FeedForwardNet(size_t input_dim, std::vector<size_t> hidden);

  /// Xavier-uniform initialization of all weights; biases to zero.
  void InitXavier(Rng* rng);

  size_t input_dim() const { return input_dim_; }
  size_t num_layers() const { return weights_.size(); }

  /// Per-sample activations needed by Backward.
  struct Cache {
    std::vector<double> input;               // copy of x
    std::vector<std::vector<double>> pre;    // pre-activation per layer
    std::vector<std::vector<double>> post;   // post-activation per layer
  };

  /// Computes the output logit for input `x` (length input_dim). If `cache`
  /// is non-null it is filled for a subsequent Backward call.
  double Forward(const double* x, Cache* cache) const;

  /// Accumulates gradients into `grads` (a same-shape FeedForwardNet) given
  /// dL/dlogit. If `dx` is non-null, writes dL/dx (length input_dim) —
  /// the path through which item/user embeddings receive gradient.
  void Backward(const Cache& cache, double dlogit, FeedForwardNet* grads,
                double* dx) const;

  /// Zeroes all parameters (turns the net into a gradient accumulator).
  void SetZero();

  /// this += scale * other (same shape).
  void AddScaled(const FeedForwardNet& other, double scale);

  /// Total number of scalar parameters (Table III accounting).
  size_t ParamCount() const;

  /// Largest |parameter| across all layers.
  double MaxAbs() const;

  /// Same-shape zero-initialized copy (gradient accumulator factory).
  static FeedForwardNet ZerosLike(const FeedForwardNet& other);

  /// True when every layer of `other` has identical dimensions.
  bool SameShape(const FeedForwardNet& other) const;

  /// Layer parameter access (weights[l] is in x out; biases[l] is 1 x out).
  const Matrix& weight(size_t l) const { return weights_[l]; }
  Matrix& weight(size_t l) { return weights_[l]; }
  const Matrix& bias(size_t l) const { return biases_[l]; }
  Matrix& bias(size_t l) { return biases_[l]; }

 private:
  size_t input_dim_ = 0;
  std::vector<Matrix> weights_;
  std::vector<Matrix> biases_;
};

/// \brief Adam optimizer state spanning all layers of a FeedForwardNet.
class FfnAdam {
 public:
  explicit FfnAdam(AdamOptions options = {}) : options_(options) {}

  /// One Adam step per layer; `grads` must have the same shape as `net`.
  void Step(FeedForwardNet* net, const FeedForwardNet& grads);

  /// Drops all moment state.
  void Reset();

 private:
  AdamOptions options_;
  std::vector<Adam> weight_state_;
  std::vector<Adam> bias_state_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_MODELS_FFN_H_
