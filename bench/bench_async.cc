// Asynchronous vs synchronous aggregation on a straggler-heavy network
// (docs/SYNC.md "Asynchronous aggregation").
//
// The scenario: 80% availability and a wide log-normal bandwidth/latency
// spread — the regime the FedRecSys surveys identify as the production
// bottleneck for synchronous rounds. Four protocols run the same HeteFedRec
// configuration and report final ranking quality, the simulated network
// seconds the run consumed, and — from the per-epoch history — the first
// simulated instant each protocol reached the synchronous baseline's final
// NDCG@20. The async rows reach it in a fraction of the barrier protocols'
// virtual time because no merge ever waits for the round's slowest client.
#include <cstdio>
#include <string>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

struct ProtocolRow {
  std::string name;
  ExperimentResult result;
};

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  ExperimentConfig cfg = *base_cfg;
  cfg.dataset =
      cli.GetString("dataset").empty() ? "ml" : cli.GetString("dataset");
  ApplyPaperDims(&cfg);
  // The straggler-heavy network, unless overridden by flags: offline
  // clients and a 10x-spread device fleet.
  if (cfg.availability >= 1.0) cfg.availability = 0.8;
  if (cfg.net_bandwidth_sigma == 0.0) cfg.net_bandwidth_sigma = 1.0;
  if (cfg.net_latency_sigma == 0.0) cfg.net_latency_sigma = 0.3;
  cfg.eval_every = 1;  // history drives the time-to-quality column

  std::printf(
      "Async vs sync on %s (availability=%.2f, bw sigma=%.1f, "
      "latency sigma=%.1f, %d epochs)\n\n",
      cfg.dataset.c_str(), cfg.availability, cfg.net_bandwidth_sigma,
      cfg.net_latency_sigma, cfg.global_epochs);

  auto run = [&](const std::string& name,
                 ExperimentConfig c) -> ProtocolRow {
    auto runner = ExperimentRunner::Create(c);
    if (!runner.ok()) {
      std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
      std::exit(1);
    }
    ProtocolRow row{name, (*runner)->Run(Method::kHeteFedRec)};
    std::printf("  %-28s ndcg=%.5f  simulated=%.0fs  wall=%.1fs\n",
                name.c_str(), row.result.final_eval.overall.ndcg,
                row.result.simulated_seconds, row.result.train_seconds);
    return row;
  };

  std::vector<ProtocolRow> rows;
  {
    ExperimentConfig c = cfg;
    rows.push_back(run("sync (paper barrier)", c));
  }
  {
    ExperimentConfig c = cfg;
    c.straggler_slack = cfg.clients_per_round / 4;
    rows.push_back(run("sync + over-selection", c));
  }
  {
    ExperimentConfig c = cfg;
    c.async_mode = true;
    rows.push_back(run("async (merge-on-arrival)", c));
  }
  {
    ExperimentConfig c = cfg;
    c.async_mode = true;
    c.async_max_staleness = 2 * cfg.clients_per_round;
    rows.push_back(run("async + staleness cap", c));
  }

  // Time-to-quality: first simulated instant each protocol's history
  // reached the synchronous baseline's final NDCG.
  const double target = rows[0].result.final_eval.overall.ndcg;
  auto time_to_target = [&](const ExperimentResult& r) -> std::string {
    for (const EpochPoint& p : r.history) {
      if (p.eval.overall.ndcg >= target) {
        return TablePrinter::Num(p.simulated_seconds, 0) + " s";
      }
    }
    return "-";
  };

  TablePrinter table(
      "HeteFedRec under stragglers: quality vs simulated seconds (target "
      "NDCG@20 = sync final)",
      {"Protocol", "NDCG@20", "Recall@20", "Sim seconds",
       "To target NDCG", "Merged", "Dropped"});
  for (const ProtocolRow& row : rows) {
    size_t merged = 0;
    for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
      merged += row.result.comm.Participations(g);
    }
    const size_t dropped = row.result.comm.TotalDropped();
    table.AddRow({row.name,
                  TablePrinter::Num(row.result.final_eval.overall.ndcg, 5),
                  TablePrinter::Num(row.result.final_eval.overall.recall, 5),
                  TablePrinter::Num(row.result.simulated_seconds, 0),
                  time_to_target(row.result), TablePrinter::Count(merged),
                  TablePrinter::Count(dropped)});
  }
  std::printf("\n");
  table.Print();
  st = table.WriteCsv(CsvPath(cli, "async_vs_sync"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) {
  return hetefedrec::bench::Main(argc, argv);
}
