#include "src/fed/sync/replica.h"

#include <algorithm>

#include "src/util/logging.h"

namespace hetefedrec {

void ClientReplica::set_capacity(size_t capacity) {
  // Uncapped replicas skip all LRU bookkeeping, so a cap cannot be turned
  // on once rows are held — the recency order was never tracked. In
  // practice caps are fixed at SyncService construction.
  if (capacity_ == 0 && capacity > 0) HFR_CHECK(held_.empty());
  capacity_ = capacity;
  EvictOverCapacity();
}

void ClientReplica::Hold(uint32_t row, uint64_t version) {
  auto it = held_.find(row);
  if (it != held_.end()) {
    it->second.version = version;
    if (capacity_ > 0) lru_.splice(lru_.begin(), lru_, it->second.lru);
    return;
  }
  if (capacity_ == 0) {
    // No cap: skip the list node — the iterator field is never read.
    held_.emplace(row, Entry{version, lru_.end()});
    return;
  }
  lru_.push_front(row);
  held_.emplace(row, Entry{version, lru_.begin()});
  EvictOverCapacity();
}

void ClientReplica::Touch(uint32_t row) {
  if (capacity_ == 0) return;  // recency is meaningless without a cap
  auto it = held_.find(row);
  if (it == held_.end()) return;
  lru_.splice(lru_.begin(), lru_, it->second.lru);
}

void ClientReplica::EvictOverCapacity() {
  if (capacity_ == 0) return;
  while (held_.size() > capacity_) {
    const uint32_t victim = lru_.back();
    lru_.pop_back();
    held_.erase(victim);
    auto vit = value_pos_.find(victim);
    if (vit != value_pos_.end()) {
      free_value_pos_.push_back(vit->second);
      value_pos_.erase(vit);
    }
  }
}

void ClientReplica::HoldValues(uint32_t row, const double* data,
                               size_t width) {
  auto it = value_pos_.find(row);
  size_t pos;
  if (it != value_pos_.end()) {
    pos = it->second;
  } else if (!free_value_pos_.empty()) {
    pos = free_value_pos_.back();
    free_value_pos_.pop_back();
    value_pos_.emplace(row, pos);
  } else {
    pos = values_.size();
    values_.resize(pos + width);
    value_pos_.emplace(row, pos);
  }
  std::copy(data, data + width, values_.begin() + pos);
}

const double* ClientReplica::Values(uint32_t row, size_t width) const {
  auto it = value_pos_.find(row);
  if (it == value_pos_.end()) return nullptr;
  (void)width;
  return values_.data() + it->second;
}

void ClientReplica::Invalidate() {
  held_.clear();
  lru_.clear();
  value_pos_.clear();
  free_value_pos_.clear();
  values_.clear();
}

}  // namespace hetefedrec
