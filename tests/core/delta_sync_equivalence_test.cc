// Delta-sync equivalence: the row-subscription download protocol must be
// invisible to training — bit-identical metrics and tables for all seven
// methods — while shrinking the reported download volume. Also pins
// replica invalidation after RESKD distillation and the determinism of
// the availability / straggler machinery under a fixed seed.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/hetero_server.h"
#include "src/core/local_trainer.h"
#include "src/core/trainer.h"
#include "src/fed/sync/sync_service.h"
#include "src/math/init.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  return cfg;
}

// Every method, full pipeline: delta sync with replica verification ON
// (every skipped row is CHECKed byte-identical against the live table, so
// a missed version stamp aborts the test) must reproduce the
// full-download run exactly. DDR and RESKD matter here: both dirty rows
// outside any single client's touched set.
TEST(DeltaSyncEquivalence, AllMethodsMatchFullDownloads) {
  for (Method method : kAllMethods) {
    ExperimentConfig full_cfg = SmallConfig();
    full_cfg.full_downloads = true;
    ExperimentConfig delta_cfg = SmallConfig();
    delta_cfg.full_downloads = false;
    delta_cfg.sync_verify_replicas = true;

    auto full_runner = ExperimentRunner::Create(full_cfg);
    auto delta_runner = ExperimentRunner::Create(delta_cfg);
    ASSERT_TRUE(full_runner.ok());
    ASSERT_TRUE(delta_runner.ok());
    ExperimentResult full_res = (*full_runner)->Run(method);
    ExperimentResult delta_res = (*delta_runner)->Run(method);

    SCOPED_TRACE(MethodName(method));
    ExpectSameEval(full_res.final_eval, delta_res.final_eval);
    if (method != Method::kStandalone) {
      EXPECT_EQ(full_res.collapse_variance, delta_res.collapse_variance);
      EXPECT_EQ(full_res.collapse_cv, delta_res.collapse_cv);
      // Default accounting still reports the paper's dense numbers.
      EXPECT_EQ(full_res.comm.TotalTransmitted(),
                delta_res.comm.TotalTransmitted());
    }
  }
}

TEST(DeltaSyncEquivalence, DeltaAccountingShrinksDownloads) {
  ExperimentConfig delta_cfg = SmallConfig();
  delta_cfg.full_downloads = false;
  delta_cfg.sparse_comm_accounting = true;
  ExperimentConfig dense_cfg = SmallConfig();
  dense_cfg.sparse_comm_accounting = true;

  auto delta_runner = ExperimentRunner::Create(delta_cfg);
  auto dense_runner = ExperimentRunner::Create(dense_cfg);
  ASSERT_TRUE(delta_runner.ok());
  ASSERT_TRUE(dense_runner.ok());
  ExperimentResult delta_res = (*delta_runner)->Run(Method::kHeteFedRec);
  ExperimentResult dense_res = (*dense_runner)->Run(Method::kHeteFedRec);

  ExpectSameEval(delta_res.final_eval, dense_res.final_eval);
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    EXPECT_LT(delta_res.comm.AvgDownload(g), dense_res.comm.AvgDownload(g))
        << GroupName(g);
    // Uploads are identical — delta sync only changes the down direction.
    EXPECT_EQ(delta_res.comm.AvgUpload(g), dense_res.comm.AvgUpload(g));
  }
}

// Capped replicas (sync_replica_cap): evicting LRU rows must not change
// any metric — an evicted row reads as never held and simply re-ships.
// Verify mode stays on so any stale byte served from a capped replica
// aborts the run.
TEST(DeltaSyncEquivalence, ReplicaCapIsMetricIdentical) {
  ExperimentConfig full_cfg = SmallConfig();

  ExperimentConfig capped_cfg = SmallConfig();
  capped_cfg.full_downloads = false;
  capped_cfg.sync_verify_replicas = true;
  capped_cfg.sparse_comm_accounting = true;
  capped_cfg.sync_replica_cap = 16;  // far below typical subscriptions

  auto full_runner = ExperimentRunner::Create(full_cfg);
  auto capped_runner = ExperimentRunner::Create(capped_cfg);
  ASSERT_TRUE(full_runner.ok());
  ASSERT_TRUE(capped_runner.ok());
  ExperimentResult full_res = (*full_runner)->Run(Method::kHeteFedRec);
  ExperimentResult capped_res = (*capped_runner)->Run(Method::kHeteFedRec);

  ExpectSameEval(full_res.final_eval, capped_res.final_eval);
  EXPECT_EQ(full_res.collapse_variance, capped_res.collapse_variance);
}

// The cap's downlink cost needs sparse staleness to be observable: at toy
// pipeline scale every row is stamped between two participations of any
// client, so capped and uncapped ship identically. This round loop mimics
// the paper-scale regime instead — a big catalogue where a round stamps
// only the participants' rows — and pins that eviction misses raise
// `params_down` while the uncapped replica keeps skipping fresh rows.
TEST(DeltaSyncEquivalence, ReplicaCapRaisesParamsDown) {
  constexpr size_t kItems = 2000;
  constexpr size_t kUsers = 16;
  constexpr size_t kPerRound = 4;
  constexpr size_t kSubRows = 100;
  Matrix table(kItems, 8);
  Rng init(5);
  InitNormal(&table, 0.1, &init);

  // Fixed per-user subscriptions (a client's positives dominate and are
  // stable round to round).
  Rng pick(7);
  std::vector<std::vector<uint32_t>> subs(kUsers);
  for (auto& s : subs) {
    while (s.size() < kSubRows) {
      s.push_back(static_cast<uint32_t>(pick.UniformInt(kItems)));
      std::sort(s.begin(), s.end());
      s.erase(std::unique(s.begin(), s.end()), s.end());
    }
  }

  auto run = [&](size_t cap) {
    VersionedTable versions(1, kItems);
    SyncService::Options opts;
    opts.verify_values = true;
    opts.replica_cap = cap;
    SyncService sync(kUsers, opts);
    size_t total_params = 0;
    for (size_t round = 0; round < 3 * kUsers / kPerRound; ++round) {
      versions.AdvanceRound();
      for (size_t c = 0; c < kPerRound; ++c) {
        const UserId u = static_cast<UserId>((round * kPerRound + c) % kUsers);
        total_params +=
            sync.Sync(u, 0, subs[u], table, versions, 100).params;
      }
      // Only the *trained* half of each participant's subscription changes
      // server-side; the other half is read-only (validation items, stable
      // negatives) — exactly the rows an uncapped replica keeps skipping.
      for (size_t c = 0; c < kPerRound; ++c) {
        const UserId u = static_cast<UserId>((round * kPerRound + c) % kUsers);
        for (size_t i = 0; i < subs[u].size() / 2; ++i) {
          versions.Stamp(0, subs[u][i]);
        }
      }
    }
    return total_params;
  };

  const size_t uncapped = run(0);
  const size_t capped = run(kSubRows / 2);  // cap below the working set
  EXPECT_GT(capped, uncapped);
  // Rows a client keeps re-reading unchanged are skipped only uncapped:
  // the capped total approaches ship-everything-every-time.
  const size_t ship_all = run(1);
  EXPECT_LE(capped, ship_all);
}

// After Distill, rows in the Vkd sample must re-ship even to a client
// that held them fresh — RESKD perturbs every slot's table server-side.
TEST(DeltaSyncEquivalence, ReplicaInvalidationAfterDistill) {
  HeteroServer::Options opts;
  opts.widths = {4, 8};
  opts.num_items = 40;
  opts.seed = 17;
  HeteroServer server(opts);
  SyncService sync(1);

  std::vector<uint32_t> subs(40);
  for (uint32_t r = 0; r < 40; ++r) subs[r] = r;

  server.BeginRound();
  server.FinishRound();
  SyncPlan first =
      sync.Sync(0, 1, subs, server.table(1), server.versions(), 0);
  EXPECT_EQ(first.shipped_rows, 40u);

  // An idle round: nothing to re-ship.
  server.BeginRound();
  server.FinishRound();
  SyncPlan idle =
      sync.Sync(0, 1, subs, server.table(1), server.versions(), 0);
  EXPECT_EQ(idle.shipped_rows, 0u);

  // A round with distillation: exactly the Vkd rows go stale.
  server.BeginRound();
  server.FinishRound();
  DistillationOptions kd;
  kd.kd_items = 8;
  kd.steps = 1;
  kd.lr = 0.01;
  Rng kd_rng(23);
  server.Distill(kd, &kd_rng);
  SyncPlan after =
      sync.Sync(0, 1, subs, server.table(1), server.versions(), 0);
  EXPECT_EQ(after.shipped_rows, 8u);
}

// The availability / over-selection protocol must be a pure function of
// the seed: two identical runs agree bit-for-bit, and the protocol still
// covers the population (uploads keep flowing).
TEST(DeltaSyncDeterminism, AvailabilityAndStragglersReproduce) {
  ExperimentConfig cfg = SmallConfig();
  cfg.full_downloads = false;
  cfg.availability = 0.6;
  cfg.straggler_slack = 4;
  cfg.net_bandwidth_sigma = 0.6;
  cfg.net_latency_sigma = 0.2;
  cfg.net_compute_per_sample = 1e-6;

  auto runner_a = ExperimentRunner::Create(cfg);
  auto runner_b = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner_a.ok());
  ASSERT_TRUE(runner_b.ok());
  ExperimentResult a = (*runner_a)->Run(Method::kHeteFedRec);
  ExperimentResult b = (*runner_b)->Run(Method::kHeteFedRec);

  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.collapse_variance, b.collapse_variance);
  EXPECT_EQ(a.comm.TotalTransmitted(), b.comm.TotalTransmitted());
  size_t participations = 0;
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    participations += a.comm.Participations(g);
  }
  EXPECT_GT(participations, 0u);
}

// ... and thread count must not change the outcome even with stragglers
// in play (winners merge in batch order, not completion order).
TEST(DeltaSyncDeterminism, StragglerRunsAreThreadCountInvariant) {
  ExperimentConfig cfg = SmallConfig();
  cfg.availability = 0.7;
  cfg.straggler_slack = 3;
  cfg.net_bandwidth_sigma = 0.4;
  ExperimentConfig cfg4 = cfg;
  cfg4.num_threads = 4;

  auto serial = ExperimentRunner::Create(cfg);
  auto parallel = ExperimentRunner::Create(cfg4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExperimentResult a = (*serial)->Run(Method::kHeteFedRec);
  ExperimentResult b = (*parallel)->Run(Method::kHeteFedRec);
  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.collapse_variance, b.collapse_variance);
  EXPECT_EQ(a.comm.TotalTransmitted(), b.comm.TotalTransmitted());
}

// Over-selection with everyone online and no network noise: every round
// still merges exactly clients_per_round updates, so the acceptance bar
// "availability 1.0 / no stragglers == paper protocol" holds by
// construction and the slack only adds discarded work.
TEST(DeltaSyncDeterminism, DeadlineDropsStragglers) {
  ExperimentConfig cfg = SmallConfig();
  cfg.net_latency = 0.05;
  cfg.round_deadline = 0.01;  // everyone misses it
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(Method::kAllSmall);
  size_t uploads = 0;
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    uploads += r.comm.Participations(g);
  }
  // No update ever merges; the round budget caps the epoch.
  EXPECT_EQ(uploads, 0u);
}

}  // namespace
}  // namespace hetefedrec
