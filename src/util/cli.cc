#include "src/util/cli.h"

#include <cstdlib>
#include <sstream>

#include "src/util/logging.h"

namespace hetefedrec {

void CommandLine::AddFlag(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  flags_[name] = Flag{default_value, help};
}

Status CommandLine::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name, value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() &&
          (it->second.value == "true" || it->second.value == "false")) {
        value = "true";  // bare boolean flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " missing value");
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" +
                                     Usage(argv[0]));
    }
    it->second.value = value;
  }
  return Status::OK();
}

std::string CommandLine::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  HFR_CHECK(it != flags_.end()) << "unregistered flag " << name;
  return it->second.value;
}

int CommandLine::GetInt(const std::string& name) const {
  return std::atoi(GetString(name).c_str());
}

uint64_t CommandLine::GetUint64(const std::string& name) const {
  return std::strtoull(GetString(name).c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name) const {
  return std::atof(GetString(name).c_str());
}

bool CommandLine::GetBool(const std::string& name) const {
  std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string CommandLine::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.value << ")  " << flag.help
       << "\n";
  }
  return os.str();
}

}  // namespace hetefedrec
