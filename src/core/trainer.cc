#include "src/core/trainer.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <thread>
#include <utility>

#include "src/core/checkpoint.h"
#include "src/core/local_trainer.h"
#include "src/core/run_state.h"
#include "src/data/synthetic.h"
#include "src/eval/topk.h"
#include "src/fed/fault/admission.h"
#include "src/fed/fault/client_gate.h"
#include "src/fed/fault/fault_injector.h"
#include "src/fed/scheduler.h"
#include "src/fed/shard/sharded_server.h"
#include "src/fed/sync/async_aggregator.h"
#include "src/fed/sync/network.h"
#include "src/fed/sync/sync_service.h"
#include "src/math/eigen.h"
#include "src/math/init.h"
#include "src/math/stats.h"
#include "src/util/telemetry/json.h"
#include "src/util/telemetry/profiler.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace hetefedrec {

namespace {

/// Derived per-method wiring: slots, group->slot map, dual-task lists,
/// aggregation flavor and component toggles.
struct MethodSetup {
  std::vector<size_t> widths;
  bool shared_aggregation = true;
  std::array<size_t, kNumGroups> slot_of_group = {0, 0, 0};
  std::array<std::vector<LocalTaskSpec>, kNumGroups> tasks_of_group;
  std::array<bool, kNumGroups> excluded = {false, false, false};
  std::array<bool, kNumGroups> apply_ddr = {false, false, false};
  bool reskd = false;
};

/// Stable handles into the run's MetricsRegistry (docs/OBSERVABILITY.md has
/// the catalogue). Registration order here is the serialization order of
/// every metrics dump, so it must stay fixed.
struct RunMetrics {
  // Cumulative traffic, mirrored from CommStats each round.
  Counter* downloads = nullptr;
  Counter* uploads = nullptr;
  Counter* dropped = nullptr;
  Counter* down_scalars = nullptr;
  Counter* up_scalars = nullptr;
  // Delta-sync row flow (incremented live in AccountDownload).
  Counter* rows_subscribed = nullptr;
  Counter* rows_shipped = nullptr;
  // Server progress.
  Counter* rounds = nullptr;
  Counter* merges = nullptr;
  Counter* distills = nullptr;
  Counter* checkpoints = nullptr;
  // Robustness counters, mirrored from FaultStats (same order as
  // CommStats::ExportCounters' fault segment).
  std::array<Counter*, 12> faults{};
  // Per-round gauges (main thread only).
  Gauge* clock = nullptr;
  Gauge* queue_depth = nullptr;
  Gauge* round_merged = nullptr;
  Gauge* round_down_scalars = nullptr;
  Gauge* round_up_scalars = nullptr;
  Gauge* loss_mean = nullptr;
  Gauge* replica_hit_rate = nullptr;
  Gauge* eval_recall = nullptr;
  Gauge* eval_ndcg = nullptr;
  // Distributions (main thread only).
  Histogram* round_seconds = nullptr;
  Histogram* staleness = nullptr;  // async only

  void Register(MetricsRegistry* reg, bool async_mode) {
    downloads = reg->GetCounter("comm.downloads");
    uploads = reg->GetCounter("comm.uploads");
    dropped = reg->GetCounter("comm.dropped");
    down_scalars = reg->GetCounter("comm.down_scalars");
    up_scalars = reg->GetCounter("comm.up_scalars");
    rows_subscribed = reg->GetCounter("sync.rows_subscribed");
    rows_shipped = reg->GetCounter("sync.rows_shipped");
    rounds = reg->GetCounter("server.rounds");
    merges = reg->GetCounter("server.merges");
    distills = reg->GetCounter("server.distills");
    checkpoints = reg->GetCounter("server.checkpoints");
    static constexpr const char* kFaultNames[12] = {
        "fault.download_lost",         "fault.upload_lost",
        "fault.crashed",               "fault.duplicates",
        "fault.corrupted",             "admission.rejected_nonfinite",
        "admission.rejected_outlier",  "admission.rows_clipped",
        "gate.quarantines",            "gate.retries",
        "gate.gave_up",                "train.nonfinite_grad_steps"};
    for (int i = 0; i < 12; ++i) faults[i] = reg->GetCounter(kFaultNames[i]);
    clock = reg->GetGauge("clock.sim_seconds");
    queue_depth = reg->GetGauge("queue.depth");
    round_merged = reg->GetGauge("round.merged");
    round_down_scalars = reg->GetGauge("round.down_scalars");
    round_up_scalars = reg->GetGauge("round.up_scalars");
    loss_mean = reg->GetGauge("train.loss_mean");
    replica_hit_rate = reg->GetGauge("sync.replica_hit_rate");
    eval_recall = reg->GetGauge("eval.recall");
    eval_ndcg = reg->GetGauge("eval.ndcg");
    round_seconds =
        reg->GetHistogram("round.seconds", {1, 2, 5, 10, 30, 60, 120, 300});
    if (async_mode) {
      staleness =
          reg->GetHistogram("async.staleness", {0, 1, 2, 4, 8, 16, 32, 64});
    }
  }

  /// Counters mirror cumulative sources, so "set to total" is a delta Add.
  /// Main-thread only (Value() must not race a concurrent Add).
  static void SetTo(Counter* c, uint64_t total) { c->Add(total - c->Value()); }

  void MirrorComm(const CommStats& comm) {
    uint64_t down = 0, up = 0, drop = 0, down_p = 0, up_p = 0;
    for (int g = 0; g < kNumGroups; ++g) {
      const Group grp = static_cast<Group>(g);
      down += comm.Downloads(grp);
      up += comm.Participations(grp);
      drop += comm.Dropped(grp);
      down_p += comm.DownParams(grp);
      up_p += comm.UpParams(grp);
    }
    SetTo(downloads, down);
    SetTo(uploads, up);
    SetTo(dropped, drop);
    SetTo(down_scalars, down_p);
    SetTo(up_scalars, up_p);
    const FaultStats& f = comm.faults();
    const uint64_t totals[12] = {
        f.download_lost,      f.upload_lost,      f.crashed,
        f.duplicates,         f.corrupted,        f.rejected_nonfinite,
        f.rejected_outlier,   f.rows_clipped,     f.quarantines,
        f.retries,            f.gave_up,          f.nonfinite_grad_steps};
    for (int i = 0; i < 12; ++i) SetTo(faults[i], totals[i]);
  }
};

/// Resolves cfg.num_threads (0 = hardware concurrency) to a thread count.
size_t EffectiveThreads(const ExperimentConfig& cfg) {
  if (cfg.num_threads > 0) return cfg.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Shared evaluator scoring dispatch: the per-item reference loop, the
/// in-place ScoreRange over the full span (full mode passes the contiguous
/// ids [0, num_items)), or the id-list ScoreBatch (candidate mode).
/// Requires a prior BeginUser on `sc`.
void ScoreIdsForEval(const Scorer& sc, const Matrix& table,
                     const FeedForwardNet& theta,
                     const std::vector<ItemId>& ids, bool use_batched,
                     bool full_span, double* out) {
  if (!use_batched) {
    for (size_t i = 0; i < ids.size(); ++i) {
      out[i] = sc.Score(table, theta, ids[i]);
    }
  } else if (full_span) {
    // full_span promises ids == [0, table.rows()); scoring the wrong span
    // here would silently corrupt metrics.
    HFR_CHECK_EQ(ids.size(), table.rows());
    sc.ScoreRange(table, theta, 0, ids.size(), out);
  } else {
    sc.ScoreBatch(table, theta, ids.data(), ids.size(), out);
  }
}

/// Score blocks fed to the fused top-K sink: per-user state (prefix, pu_)
/// survives across ScoreRange calls, so scoring block [first, first + bs)
/// yields the exact per-item logits of one full-span pass while `buf` only
/// ever holds kEvalStreamBlock scores. Requires a prior BeginUser on `sc`.
constexpr size_t kEvalStreamBlock = 8 * Scorer::kScoreBlock;

void StreamScoresForEval(const Scorer& sc, const Matrix& table,
                         const FeedForwardNet& theta, bool use_batched,
                         std::vector<double>* buf, TopKSelector* sink) {
  const size_t n = table.rows();
  buf->resize(std::min(kEvalStreamBlock, n));
  for (size_t first = 0; first < n; first += kEvalStreamBlock) {
    const size_t bs = std::min(kEvalStreamBlock, n - first);
    if (use_batched) {
      sc.ScoreRange(table, theta, static_cast<ItemId>(first), bs,
                    buf->data());
    } else {
      for (size_t i = 0; i < bs; ++i) {
        (*buf)[i] = sc.Score(table, theta, static_cast<ItemId>(first + i));
      }
    }
    sink->Push(static_cast<ItemId>(first), buf->data(), bs);
  }
}

// fp32-backend overloads: score in float against float casts of the server
// state, upcasting each block into the evaluator's double contract (the
// metrics pipeline and top-K sink stay fp64). The thread_local scratch is
// bounded by kEvalStreamBlock / the candidate-list length per thread.
void ScoreIdsForEval(const ScorerF& sc, const MatrixF& table,
                     const FeedForwardNetF& theta,
                     const std::vector<ItemId>& ids, bool use_batched,
                     bool full_span, double* out) {
  thread_local std::vector<float> tmp;
  tmp.resize(ids.size());
  if (!use_batched) {
    for (size_t i = 0; i < ids.size(); ++i) {
      tmp[i] = sc.Score(table, theta, ids[i]);
    }
  } else if (full_span) {
    HFR_CHECK_EQ(ids.size(), table.rows());
    sc.ScoreRange(table, theta, 0, ids.size(), tmp.data());
  } else {
    sc.ScoreBatch(table, theta, ids.data(), ids.size(), tmp.data());
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    out[i] = static_cast<double>(tmp[i]);
  }
}

void StreamScoresForEval(const ScorerF& sc, const MatrixF& table,
                         const FeedForwardNetF& theta, bool use_batched,
                         std::vector<double>* buf, TopKSelector* sink) {
  thread_local std::vector<float> tmp;
  const size_t n = table.rows();
  buf->resize(std::min(kEvalStreamBlock, n));
  tmp.resize(std::min(kEvalStreamBlock, n));
  for (size_t first = 0; first < n; first += kEvalStreamBlock) {
    const size_t bs = std::min(kEvalStreamBlock, n - first);
    if (use_batched) {
      sc.ScoreRange(table, theta, static_cast<ItemId>(first), bs, tmp.data());
    } else {
      for (size_t i = 0; i < bs; ++i) {
        tmp[i] = sc.Score(table, theta, static_cast<ItemId>(first + i));
      }
    }
    for (size_t i = 0; i < bs; ++i) (*buf)[i] = static_cast<double>(tmp[i]);
    sink->Push(static_cast<ItemId>(first), buf->data(), bs);
  }
}

MethodSetup BuildSetup(const ExperimentConfig& cfg, Method method) {
  MethodSetup s;
  const auto& dims = cfg.dims;
  auto homogeneous = [&](size_t width) {
    s.widths = {width};
    for (int g = 0; g < kNumGroups; ++g) {
      s.slot_of_group[g] = 0;
      s.tasks_of_group[g] = {LocalTaskSpec{0, width}};
    }
  };
  switch (method) {
    case Method::kAllSmall:
      homogeneous(dims[0]);
      break;
    case Method::kAllLarge:
      homogeneous(dims[2]);
      break;
    case Method::kAllLargeExclusive:
      homogeneous(dims[2]);
      s.excluded[static_cast<int>(Group::kSmall)] = true;
      break;
    case Method::kClusteredFedRec:
    case Method::kDirectlyAggregate:
    case Method::kStandalone:
      s.widths = {dims[0], dims[1], dims[2]};
      s.shared_aggregation = (method == Method::kDirectlyAggregate);
      for (int g = 0; g < kNumGroups; ++g) {
        s.slot_of_group[g] = static_cast<size_t>(g);
        s.tasks_of_group[g] = {
            LocalTaskSpec{static_cast<size_t>(g), dims[g]}};
      }
      break;
    case Method::kHeteFedRec:
      s.widths = {dims[0], dims[1], dims[2]};
      s.shared_aggregation = true;
      for (int g = 0; g < kNumGroups; ++g) {
        s.slot_of_group[g] = static_cast<size_t>(g);
        if (cfg.unified_dual_task) {
          // Eq. 11: one objective per width Ns..Ng over shared storage.
          for (int t = 0; t <= g; ++t) {
            s.tasks_of_group[g].push_back(
                LocalTaskSpec{static_cast<size_t>(t), dims[t]});
          }
        } else {
          s.tasks_of_group[g] = {
              LocalTaskSpec{static_cast<size_t>(g), dims[g]}};
        }
        // Eq. 14: DDR applies to medium and large clients.
        s.apply_ddr[g] = cfg.decorrelation && g > 0;
      }
      s.reskd = cfg.ensemble_distillation;
      break;
  }
  return s;
}

/// \brief One federated run: the shared executor core plus two schedules.
///
/// Both schedules drive the same per-client machinery — dispatch (download
/// accounting + local training), simulated completion timing, merge,
/// distillation, evaluation — and differ only in *when* merges happen:
///
///   SyncEpoch  — the paper's synchronous protocol, i.e. the degenerate
///     schedule of the event loop: a whole batch dispatches at one virtual
///     instant, a barrier closes the round (duration = the slowest merged
///     completion), merges land in batch order and the version advances
///     once per round. Bit-identical to the pre-async implementation.
///   AsyncEpoch — merge-on-arrival through AsyncAggregator: dispatches
///     fill free in-flight slots, completions merge strictly in virtual
///     completion-time order with staleness weighting w(s) = 1/(1+s)^alpha,
///     and the version advances once per merge (docs/SYNC.md).
class FederatedRun {
 public:
  FederatedRun(const ExperimentConfig& cfg, const Dataset& dataset,
               const GroupAssignment& groups, Method method)
      : cfg_(cfg),
        dataset_(dataset),
        groups_(groups),
        setup_(BuildSetup(cfg, method)),
        method_(method),
        root_(cfg.seed),
        fp32_(cfg.compute_backend != ComputeBackend::kFp64) {
    // Arms (or disarms) the process-wide fp32 SIMD dispatch; falls back to
    // the scalar fp32 kernels (identical results) when AVX2 is unavailable.
    ActivateBackend(cfg_.compute_backend);
    if (setup_.widths.size() > 1) {
      HFR_CHECK_LT(cfg_.dims[0], cfg_.dims[1]);
      HFR_CHECK_LT(cfg_.dims[1], cfg_.dims[2]);
    }

    HeteroServer::Options server_opts;
    server_opts.widths = setup_.widths;
    server_opts.ffn_hidden = cfg_.ffn_hidden;
    server_opts.num_items = dataset_.num_items();
    server_opts.embed_init_std = cfg_.embed_init_std;
    server_opts.aggregation = cfg_.aggregation;
    server_opts.shared_aggregation = setup_.shared_aggregation;
    server_opts.seed = root_.Fork(1).Next();
    // server_shards == 0 keeps the single-table HeteroServer; any S >= 1
    // builds the item-range ShardedServer. Either way the trainer only
    // sees ServerApi from here on.
    server_ = MakeServer(server_opts, cfg_.server_shards);

    clients_.resize(dataset_.num_users());
    for (size_t u = 0; u < clients_.size(); ++u) {
      Group g = groups_.of(static_cast<UserId>(u));
      size_t width = setup_.widths[setup_.slot_of_group[static_cast<int>(g)]];
      InitClient(&clients_[u], static_cast<UserId>(u), g, width,
                 cfg_.embed_init_std, root_);
    }

    // One LocalTrainer per executing thread (scratch buffers are not
    // shareable); slot t of the pool uses trainers[t].
    const size_t n_threads = EffectiveThreads(cfg_);
    pool_ = std::make_unique<ThreadPool>(n_threads - 1);
    trainers_.reserve(pool_->num_slots());
    for (size_t t = 0; t < pool_->num_slots(); ++t) {
      trainers_.push_back(
          std::make_unique<LocalTrainer>(dataset_, cfg_.base_model));
    }
    queue_ = std::make_unique<ClientQueue>(
        dataset_.num_users(), cfg_.clients_per_round, cfg_.straggler_slack);
    sched_rng_ = root_.Fork(2);
    kd_rng_ = root_.Fork(3);
    kd_opts_.kd_items = cfg_.kd_items;
    kd_opts_.steps = cfg_.kd_steps;
    kd_opts_.lr = cfg_.kd_lr;
    kd_opts_.backend = cfg_.compute_backend;

    // Delta-sync machinery (docs/SYNC.md). With full_downloads the replica
    // bookkeeping is skipped entirely — the default path stays the paper's.
    delta_sync_ = !cfg_.full_downloads;
    if (delta_sync_) {
      SyncService::Options sync_opts;
      sync_opts.verify_values = cfg_.sync_verify_replicas;
      sync_opts.replica_cap = cfg_.sync_replica_cap;
      sync_ = std::make_unique<SyncService>(dataset_.num_users(), sync_opts);
    }
    NetworkOptions net_opts;
    net_opts.availability = cfg_.availability;
    net_opts.bandwidth_bytes_per_sec = cfg_.net_bandwidth;
    net_opts.bandwidth_sigma = cfg_.net_bandwidth_sigma;
    net_opts.latency_seconds = cfg_.net_latency;
    net_opts.latency_sigma = cfg_.net_latency_sigma;
    net_opts.compute_seconds_per_sample = cfg_.net_compute_per_sample;
    net_opts.seed = root_.Fork(5).Next();
    net_ = std::make_unique<SimulatedNetwork>(net_opts);
    // Over-selection: rank completions by simulated time, merge the first
    // clients_per_round (a deadline alone also activates the ranking).
    over_select_ = cfg_.straggler_slack > 0 || cfg_.round_deadline > 0.0;

    // Robustness layer (docs/ROBUSTNESS.md). All three pieces stay null on
    // the default configuration, so the fault-free path is bit-identical to
    // a build without them (Fork is const, so the seeds drawn below never
    // perturb root_'s other streams).
    const bool any_fault =
        cfg_.fault_upload_loss > 0.0 || cfg_.fault_download_loss > 0.0 ||
        cfg_.fault_crash > 0.0 || cfg_.fault_duplicate > 0.0 ||
        cfg_.fault_corrupt > 0.0;
    if (any_fault) {
      FaultOptions fault_opts;
      fault_opts.upload_loss = cfg_.fault_upload_loss;
      fault_opts.download_loss = cfg_.fault_download_loss;
      fault_opts.crash = cfg_.fault_crash;
      fault_opts.duplicate = cfg_.fault_duplicate;
      fault_opts.corrupt = cfg_.fault_corrupt;
      fault_opts.seed = root_.Fork(6).Next();
      injector_ = std::make_unique<FaultInjector>(fault_opts);
    }
    if (any_fault || cfg_.admission_control) {
      BackoffOptions gate_opts;
      gate_opts.retry_base_seconds = cfg_.fault_retry_base;
      gate_opts.retry_cap_seconds = cfg_.fault_retry_cap;
      gate_opts.quarantine_base_seconds = cfg_.fault_quarantine_base;
      gate_opts.quarantine_cap_seconds = cfg_.fault_quarantine_cap;
      gate_opts.jitter = cfg_.fault_jitter;
      gate_opts.retry_max = cfg_.fault_retry_max;
      gate_opts.seed = root_.Fork(7).Next();
      gate_ = std::make_unique<ClientGate>(dataset_.num_users(), gate_opts);
    }
    if (cfg_.admission_control) {
      AdmissionOptions admit_opts;
      admit_opts.max_row_norm = cfg_.admit_max_row_norm;
      admit_opts.outlier_z = cfg_.admit_outlier_z;
      admission_ = std::make_unique<AdmissionController>(server_->num_slots(),
                                                         admit_opts);
      server_->SetAdmission(admission_.get());
    }

    evaluator_ = std::make_unique<Evaluator>(
        dataset_, groups_, cfg_.top_k, cfg_.eval_user_sample,
        cfg_.seed ^ 0xe5a1ULL, cfg_.eval_candidate_sample,
        cfg_.use_batched_topk);
    // One Scorer per (executing thread, slot), constructed once and reused
    // for every evaluated user (Scorer construction allocates per-width
    // scratch; the evaluator likewise reuses per-thread scores buffers).
    eval_stream_bufs_.resize(pool_->num_slots());
    if (fp32_) {
      eval_scorers_f_.resize(pool_->num_slots());
      eval_user_f_.resize(pool_->num_slots());
      for (size_t t = 0; t < pool_->num_slots(); ++t) {
        eval_scorers_f_[t].reserve(server_->num_slots());
        for (size_t s = 0; s < server_->num_slots(); ++s) {
          eval_scorers_f_[t].emplace_back(cfg_.base_model, server_->width(s));
        }
      }
    } else {
      eval_scorers_.resize(pool_->num_slots());
      for (size_t t = 0; t < pool_->num_slots(); ++t) {
        eval_scorers_[t].reserve(server_->num_slots());
        for (size_t s = 0; s < server_->num_slots(); ++s) {
          eval_scorers_[t].emplace_back(cfg_.base_model, server_->width(s));
        }
      }
    }

    if (cfg_.async_mode) {
      async_inflight_ = cfg_.async_inflight > 0 ? cfg_.async_inflight
                                                : cfg_.clients_per_round;
      AsyncAggregator::Options agg_opts;
      agg_opts.staleness_alpha = cfg_.async_staleness_alpha;
      agg_opts.max_staleness = cfg_.async_max_staleness;
      // RESKD's per-round trigger becomes a per-N-merges cadence.
      agg_opts.distill_every =
          setup_.reskd ? (cfg_.async_distill_every > 0
                              ? cfg_.async_distill_every
                              : cfg_.clients_per_round)
                       : 0;
      agg_ = std::make_unique<AsyncAggregator>(server_.get(), agg_opts);
    }

    result_.comm.set_wire_scalar_bytes(cfg_.wire_scalar_bytes);
    SetupTelemetry();
  }

  ExperimentResult Run() {
    if (cfg_.resume_run) LoadRun();
    for (int epoch = start_epoch_; epoch <= cfg_.global_epochs; ++epoch) {
      if (!resume_mid_epoch_) {
        loss_sum_ = 0.0;
        loss_count_ = 0;
      }
      if (cfg_.async_mode) {
        AsyncEpoch(epoch);
      } else {
        SyncEpoch(epoch);
      }
      if (stopped_) {
        // The debug kill hook simulates a crash: no evaluation, no final
        // model checkpoint — the last *run* checkpoint is the survivor a
        // resumed process picks up. Telemetry still flushes what it saw.
        result_.simulated_seconds = sim_clock_;
        result_.train_seconds = timer_.Seconds();
        TelemetryFinish();
        return std::move(result_);
      }

      const bool last = (epoch == cfg_.global_epochs);
      if ((cfg_.eval_every > 0 && epoch % cfg_.eval_every == 0) || last) {
        EpochPoint point;
        point.epoch = epoch;
        point.eval = RunEvaluation();
        point.mean_train_loss =
            loss_count_ > 0 ? loss_sum_ / static_cast<double>(loss_count_)
                            : 0.0;
        point.simulated_seconds = sim_clock_;
        if (cfg_.eval_every > 0) result_.history.push_back(point);
        if (last) result_.final_eval = point.eval;
        TelemetryEval(point);
      }
      // Async runs checkpoint at epoch boundaries, where the event queue
      // has fully drained (the sync schedule checkpoints per round inside
      // SyncEpoch instead).
      if (cfg_.checkpoint_every > 0 && cfg_.async_mode && !last) {
        WriteRunCheckpoint(epoch + 1, /*mid_epoch=*/false);
      }
    }

    {
      const Matrix& largest = server_->table(server_->num_slots() - 1);
      // Corrupted updates merged without admission control can poison the
      // tables with NaN/Inf; the eigen solver CHECKs on a non-finite
      // covariance, so report NaN collapse stats instead of aborting.
      bool finite = true;
      for (double v : largest.data()) {
        if (!std::isfinite(v)) {
          finite = false;
          break;
        }
      }
      if (finite) {
        std::vector<double> eig =
            SymmetricEigenvalues(CovarianceMatrix(largest));
        result_.collapse_variance = Variance(eig);
        double mean = Mean(eig);
        result_.collapse_cv =
            mean > 0 ? result_.collapse_variance / (mean * mean) : 0.0;
      } else {
        result_.collapse_variance = std::numeric_limits<double>::quiet_NaN();
        result_.collapse_cv = result_.collapse_variance;
      }
    }
    if (!cfg_.checkpoint_path.empty()) {
      Status st = SaveServerCheckpoint(cfg_.checkpoint_path, *server_,
                                       BaseModelName(cfg_.base_model));
      if (!st.ok()) {
        HFR_LOG(Warning) << "checkpoint save failed: " << st.ToString();
      }
    }
    result_.simulated_seconds = sim_clock_;
    result_.train_seconds = timer_.Seconds();
    TelemetryFinish();
    return std::move(result_);
  }

 private:
  /// Local training of one client against the current server tables.
  void TrainOne(UserId u, size_t slot_idx, LocalUpdateResult* out) {
    HFR_PROFILE("train");
    ClientState& client = clients_[u];
    const int g = static_cast<int>(client.group);
    const auto& tasks = setup_.tasks_of_group[g];
    std::vector<const FeedForwardNet*> thetas;
    thetas.reserve(tasks.size());
    for (const auto& task : tasks) {
      thetas.push_back(&server_->theta(task.slot));
    }

    LocalTrainerOptions lopt;
    lopt.local_epochs = cfg_.local_epochs;
    lopt.lr = cfg_.lr;
    lopt.apply_ddr = setup_.apply_ddr[g];
    lopt.alpha = cfg_.alpha;
    lopt.ddr_sample_rows = cfg_.ddr_sample_rows;
    lopt.validation_fraction = cfg_.local_validation_fraction;
    lopt.use_sparse = cfg_.use_sparse_updates;
    lopt.use_batched = cfg_.use_batched_scoring;
    lopt.sparse_comm_accounting = cfg_.sparse_comm_accounting;
    lopt.backend = cfg_.compute_backend;

    size_t slot = setup_.slot_of_group[g];
    *out = trainers_[slot_idx]->Train(&client, server_->table(slot), thetas,
                                      setup_.tasks_of_group[g], lopt);
  }

  /// Download accounting for one trained client, in deterministic dispatch
  /// order (the replica commit must be deterministic). Returns the scalars
  /// the active protocol actually ships down; also records CommStats.
  size_t AccountDownload(UserId u, const LocalUpdateResult& update) {
    HFR_PROFILE("sync");
    const size_t slot =
        setup_.slot_of_group[static_cast<int>(clients_[u].group)];
    const Matrix& table = server_->table(slot);
    // update.params_down is the dense accounting: |V| + |Θ...|.
    const size_t theta_params = update.params_down - table.size();
    size_t shipped = update.params_down;
    if (delta_sync_ && update.sparse) {
      SyncPlan plan = sync_->Sync(u, slot, update.read_rows, table,
                                  server_->versions(), theta_params);
      shipped = plan.params;
      if (tel_) {
        metrics_.rows_subscribed->Add(plan.subscribed_rows);
        metrics_.rows_shipped->Add(plan.shipped_rows);
      }
    }
    result_.comm.RecordDownload(
        clients_[u].group,
        cfg_.sparse_comm_accounting ? shipped : update.params_down);
    return shipped;
  }

  /// Merges one accepted update into the open round's accumulators.
  void MergeOne(UserId u, const LocalUpdateResult& update) {
    HFR_PROFILE("merge");
    result_.comm.RecordUpload(clients_[u].group, update.params_up);
    loss_sum_ += update.train_loss;
    loss_count_++;
    double weight =
        cfg_.aggregation == AggregationMode::kDataWeighted
            ? static_cast<double>(dataset_.TrainItems(u).size())
            : 1.0;
    server_->UploadDelta(
        setup_.tasks_of_group[static_cast<int>(clients_[u].group)], update,
        weight);
  }

  /// Local training with the crash fault applied: the device ran (its RNG
  /// stream advances, so a resumed run replays the identical draw) but the
  /// local work is lost — the private embedding reverts, and the update is
  /// discarded at resolve time. Client-local, so parallel-safe.
  void TrainOneFaulted(UserId u, size_t slot_idx, FaultKind fk,
                       LocalUpdateResult* out) {
    if (fk != FaultKind::kCrash) {
      TrainOne(u, slot_idx, out);
      return;
    }
    Matrix saved = clients_[u].user_embedding;
    TrainOne(u, slot_idx, out);
    clients_[u].user_embedding = std::move(saved);
  }

  /// Schedules a failed transfer's retry: capped exponential backoff on the
  /// virtual clock, giving the client up (until the next epoch refill) once
  /// retry_max consecutive failures accumulate.
  void FailAndRequeue(UserId u, double now) {
    FaultStats* f = result_.comm.mutable_faults();
    if (gate_ && !gate_->RetryAfterFailure(u, now)) {
      f->gave_up++;
      return;
    }
    f->retries++;
    queue_->Requeue(u);
  }

  /// Admission gate in front of MergeOne: rejected updates quarantine the
  /// client; accepted ones clear its failure streak. Returns true iff the
  /// update merged.
  bool TryMerge(UserId u, LocalUpdateResult* update, double now) {
    if (server_->admission_enabled()) {
      const AdmissionDecision decision = server_->Admit(
          setup_.tasks_of_group[static_cast<int>(clients_[u].group)], update);
      FaultStats* f = result_.comm.mutable_faults();
      f->rows_clipped += decision.rows_clipped;
      if (decision.verdict != AdmissionVerdict::kAccept) {
        if (decision.verdict == AdmissionVerdict::kRejectNonFinite) {
          f->rejected_nonfinite++;
          TraceFault("reject_nonfinite", "admission", u, now);
        } else {
          f->rejected_outlier++;
          TraceFault("reject_outlier", "admission", u, now);
        }
        f->quarantines++;
        if (gate_) gate_->Quarantine(u, now);
        queue_->Requeue(u);
        return false;
      }
    }
    MergeOne(u, *update);
    if (gate_) gate_->OnSuccess(u);
    return true;
  }

  /// Resolves one trained client's upload against its drawn fault
  /// (synchronous schedule). Returns true when the update merged — only
  /// merged clients extend the round barrier.
  bool ResolveUpload(UserId u, FaultKind fk, uint64_t key,
                     LocalUpdateResult* update) {
    FaultStats* f = result_.comm.mutable_faults();
    f->nonfinite_grad_steps += update->nonfinite_grad_steps;
    switch (fk) {
      case FaultKind::kCrash:
        f->crashed++;
        TraceFault("crash", "fault", u, sim_clock_);
        FailAndRequeue(u, sim_clock_);
        return false;
      case FaultKind::kUploadLoss:
        f->upload_lost++;
        TraceFault("upload_loss", "fault", u, sim_clock_);
        FailAndRequeue(u, sim_clock_);
        return false;
      case FaultKind::kDuplicate:
        // Delivered twice; the server dedups by (client, round id), so the
        // redundant copy shows up only in the fault counters.
        f->duplicates++;
        TraceFault("duplicate", "fault", u, sim_clock_);
        break;
      case FaultKind::kCorrupt:
        f->corrupted++;
        TraceFault("corrupt", "fault", u, sim_clock_);
        injector_->Corrupt(u, key, update);
        break;
      default:
        break;
    }
    return TryMerge(u, update, sim_clock_);
  }

  /// Simulated wall-clock seconds of one full participation: what the wire
  /// actually carries down (`down_scalars`, from AccountDownload) and up
  /// (packed touched rows on the sparse path, the dense delta otherwise),
  /// plus local compute. `time_key` salts the per-participation latency
  /// draw: the round id under the synchronous schedule, the dispatch
  /// sequence number under the asynchronous one.
  double ClientFinishSeconds(UserId u, uint64_t time_key, size_t down_scalars,
                             const LocalUpdateResult& up) const {
    const size_t slot =
        setup_.slot_of_group[static_cast<int>(clients_[u].group)];
    const size_t theta_params = up.params_down - server_->table(slot).size();
    const size_t up_scalars =
        up.sparse ? up.v_delta_sparse.ParamCount() + theta_params
                  : up.params_down;
    return net_->FinishSeconds(u, time_key,
                               down_scalars * cfg_.wire_scalar_bytes,
                               up_scalars * cfg_.wire_scalar_bytes,
                               up.train_samples);
  }

  /// The synchronous round protocol (the paper's), unchanged semantics on
  /// the default path: barrier rounds over the shuffled queue, optional
  /// over-selection, optional fault injection / admission control.
  void SyncEpoch(int epoch) {
    if (resume_mid_epoch_) {
      // Queue contents, loss accumulators and the round budget were
      // restored from the run checkpoint; re-shuffling would diverge.
      resume_mid_epoch_ = false;
    } else {
      queue_->BeginEpoch(&sched_rng_);
      // With availability < 1 offline clients requeue, so an epoch can take
      // more than the nominal number of rounds; the budget bounds the tail
      // (P(still queued) decays geometrically) so a tiny p cannot hang a
      // run.
      round_budget_ = 10 * queue_->rounds_per_epoch() + 10;
    }
    while (!queue_->Exhausted() && round_budget_ > 0) {
      --round_budget_;
      const std::vector<UserId> selected = queue_->NextRound();
      server_->BeginRound();
      const uint64_t round_id = server_->versions().round();
      // "All Large/Exclusive": data-poor clients are excluded from the
      // federation entirely — they receive the global model for
      // inference but are never selected for training, so even their
      // private user embeddings stay at initialization. This matches the
      // severity of the paper's reported drop (Table II). Offline clients
      // re-enter the queue and are tried again in a later round.
      std::vector<UserId> work;
      std::vector<FaultKind> fault;  // aligned with work (kNone when off)
      work.reserve(selected.size());
      fault.reserve(selected.size());
      for (UserId u : selected) {
        if (setup_.excluded[static_cast<int>(clients_[u].group)]) continue;
        if (gate_ && !gate_->Ready(u, sim_clock_)) {
          // Backing off after a failure or quarantined: not selectable yet.
          queue_->Requeue(u);
          continue;
        }
        if (!net_->Online(u, round_id)) {
          queue_->Requeue(u);
          continue;
        }
        const FaultKind fk =
            injector_ ? injector_->Draw(u, round_id) : FaultKind::kNone;
        if (fk == FaultKind::kDownloadLoss) {
          // The model never reaches the client: no download accounting, no
          // training — the client retries after backoff.
          result_.comm.mutable_faults()->download_lost++;
          TraceFault("download_loss", "fault", u, sim_clock_);
          FailAndRequeue(u, sim_clock_);
          continue;
        }
        work.push_back(u);
        fault.push_back(fk);
      }

      // The round's barrier in simulated time: the server applies the
      // aggregate only once its slowest *merged* client has finished.
      double round_seconds = 0.0;
      size_t merged_count = 0;
      // While the round is open sim_clock_ is the round's start instant;
      // every trace event inside the round is stamped with it, and the
      // barrier-close events below with round_start + round_seconds.
      const double round_start = sim_clock_;

      // Clients of a batch train in parallel (each mutates only its own
      // ClientState and its thread's LocalTrainer scratch; the server and
      // dataset are read-only during the batch). Updates land in
      // per-client slots and merge into the server afterwards in batch
      // order, so results are bit-identical for every thread count.
      if (!over_select_ && pool_->num_workers() == 0) {
        // Serial: merge each update immediately so only one is ever live
        // (a full batch of dense reference deltas would be large).
        LocalUpdateResult update;
        for (size_t k = 0; k < work.size(); ++k) {
          TrainOneFaulted(work[k], 0, fault[k], &update);
          const size_t shipped = AccountDownload(work[k], update);
          if (ResolveUpload(work[k], fault[k], round_id, &update)) {
            const double fin =
                ClientFinishSeconds(work[k], round_id, shipped, update);
            round_seconds = std::max(round_seconds, fin);
            ++merged_count;
            if (trace_) trace_round_merges_.push_back(work[k]);
            TraceTransfer(work[k], round_start, fin, /*merged=*/true);
          }
        }
      } else {
        std::vector<LocalUpdateResult> updates(work.size());
        if (pool_->num_workers() == 0) {
          for (size_t k = 0; k < work.size(); ++k) {
            TrainOneFaulted(work[k], 0, fault[k], &updates[k]);
          }
        } else {
          pool_->ParallelFor(work.size(), [&](size_t k, size_t slot_idx) {
            TrainOneFaulted(work[k], slot_idx, fault[k], &updates[k]);
          });
        }
        if (!over_select_) {
          for (size_t k = 0; k < work.size(); ++k) {
            const size_t shipped = AccountDownload(work[k], updates[k]);
            if (ResolveUpload(work[k], fault[k], round_id, &updates[k])) {
              const double fin = ClientFinishSeconds(work[k], round_id,
                                                     shipped, updates[k]);
              round_seconds = std::max(round_seconds, fin);
              ++merged_count;
              if (trace_) trace_round_merges_.push_back(work[k]);
              TraceTransfer(work[k], round_start, fin, /*merged=*/true);
            }
          }
        } else {
          // Over-selection: every selected client downloads and trains
          // (its replica, embedding and RNG advance), but only the first
          // clients_per_round simulated completions merge — in batch
          // order, so results stay thread-count independent. Stragglers
          // and deadline misses are discarded and re-queued; crashed and
          // upload-lost clients never complete, so they leave the ranking
          // entirely.
          std::vector<double> finish(work.size());
          std::vector<uint8_t> eligible(work.size(), 1);
          for (size_t k = 0; k < work.size(); ++k) {
            const size_t down_scalars = AccountDownload(work[k], updates[k]);
            finish[k] = ClientFinishSeconds(work[k], round_id, down_scalars,
                                            updates[k]);
            if (fault[k] == FaultKind::kCrash ||
                fault[k] == FaultKind::kUploadLoss) {
              FaultStats* f = result_.comm.mutable_faults();
              f->nonfinite_grad_steps += updates[k].nonfinite_grad_steps;
              if (fault[k] == FaultKind::kCrash) {
                f->crashed++;
                TraceFault("crash", "fault", work[k], sim_clock_);
              } else {
                f->upload_lost++;
                TraceFault("upload_loss", "fault", work[k], sim_clock_);
              }
              FailAndRequeue(work[k], sim_clock_);
              eligible[k] = 0;
            }
          }
          std::vector<size_t> order(work.size());
          std::iota(order.begin(), order.end(), 0);
          std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return finish[a] != finish[b] ? finish[a] < finish[b] : a < b;
          });
          std::vector<uint8_t> merged(work.size(), 0);
          size_t taken = 0;
          bool deadline_cut = false;
          for (size_t k : order) {
            if (!eligible[k]) continue;
            if (taken >= cfg_.clients_per_round) break;
            if (cfg_.round_deadline > 0.0 &&
                finish[k] > cfg_.round_deadline) {
              deadline_cut = true;
              break;  // order is sorted: everyone later missed it too
            }
            merged[k] = 1;
            taken++;
          }
          for (size_t k = 0; k < work.size(); ++k) {
            if (!eligible[k]) continue;
            // Stragglers transferred too (their download is on the wire);
            // the merged flag separates the two populations in the trace.
            TraceTransfer(work[k], round_start, finish[k], merged[k] != 0);
            if (merged[k]) {
              if (ResolveUpload(work[k], fault[k], round_id, &updates[k])) {
                round_seconds = std::max(round_seconds, finish[k]);
                ++merged_count;
                if (trace_) trace_round_merges_.push_back(work[k]);
              }
            } else {
              queue_->Requeue(work[k]);
            }
          }
          if (deadline_cut) {
            // The quota went unfilled because clients missed the deadline:
            // the server waited the deadline out before closing the round.
            round_seconds = cfg_.round_deadline;
          }
        }
      }
      server_->FinishRound();
      if (setup_.reskd) {
        server_->Distill(kd_opts_, &kd_rng_);
        if (tel_) metrics_.distills->Increment();
      }
      sim_clock_ += round_seconds;
      ++rounds_done_;
      if (trace_) {
        // Barrier close: the round span, then the merges it applied and the
        // distillation, all at the close instant (ts stays monotone — every
        // in-round event above was stamped with round_start).
        JsonObj args;
        args.U64("round", rounds_done_)
            .U64("merged", merged_count)
            .U64("queue", queue_->pending());
        trace_->Complete("round", "server", round_start, round_seconds,
                         kServerTrack, args.Build());
        for (const UserId u : trace_round_merges_) {
          JsonObj margs;
          margs.U64("user", u);
          trace_->Instant("merge", "server", sim_clock_, kServerTrack,
                          margs.Build());
        }
        if (setup_.reskd) {
          trace_->Instant("distill", "server", sim_clock_, kServerTrack);
        }
      }
      trace_round_merges_.clear();
      TelemetryRound(epoch, round_seconds, merged_count);
      if (cfg_.debug_stop_after_rounds > 0 &&
          rounds_done_ >= cfg_.debug_stop_after_rounds) {
        // Simulated crash: the round that just completed is never
        // checkpointed, exactly like a kill between rounds.
        stopped_ = true;
        return;
      }
      if (cfg_.checkpoint_every > 0 &&
          rounds_done_ % cfg_.checkpoint_every == 0) {
        WriteRunCheckpoint(epoch, /*mid_epoch=*/true);
      }
    }
    if (!queue_->Exhausted()) {
      HFR_LOG(Warning) << "epoch " << epoch
                       << " round budget exhausted with " << queue_->pending()
                       << " clients still queued (availability="
                       << cfg_.availability
                       << "); dropping them until next epoch";
    }
  }

  /// Fills free in-flight slots from the queue at the current virtual
  /// instant. The collected batch trains in parallel against the current
  /// tables — every client of one dispatch batch downloads the same model
  /// version, which is what dispatching at one virtual instant means.
  /// Offline clients requeue (a fresh availability draw at their next
  /// dispatch attempt); excluded groups never dispatch.
  void AsyncDispatch(size_t* budget) {
    HFR_CHECK_GE(async_inflight_, agg_->in_flight());
    const size_t free_slots = async_inflight_ - agg_->in_flight();
    dispatch_users_.clear();
    dispatch_seqs_.clear();
    dispatch_faults_.clear();
    const double now = agg_->clock_seconds();
    while (dispatch_users_.size() < free_slots && !queue_->Exhausted() &&
           *budget > 0) {
      --*budget;
      const UserId u = queue_->PopNext();
      if (setup_.excluded[static_cast<int>(clients_[u].group)]) continue;
      if (gate_ && !gate_->Ready(u, now)) {
        // Backing off after a failure or quarantined: not selectable yet.
        queue_->Requeue(u);
        continue;
      }
      const uint64_t seq = dispatch_seq_++;
      if (!net_->Online(u, seq)) {
        queue_->Requeue(u);
        continue;
      }
      const FaultKind fk =
          injector_ ? injector_->Draw(u, seq) : FaultKind::kNone;
      if (fk == FaultKind::kDownloadLoss) {
        // The model never reaches the client: no download accounting, no
        // training — the client retries after backoff.
        result_.comm.mutable_faults()->download_lost++;
        TraceFault("download_loss", "fault", u, now);
        FailAndRequeue(u, now);
        continue;
      }
      dispatch_users_.push_back(u);
      dispatch_seqs_.push_back(seq);
      dispatch_faults_.push_back(fk);
    }
    if (dispatch_users_.empty()) return;

    // In-flight updates must coexist (they are "on the wire"), unlike the
    // synchronous serial path's merge-immediately economy; on the default
    // sparse path each holds only its touched rows.
    dispatch_updates_.resize(dispatch_users_.size());
    const uint64_t version = server_->versions().round();
    if (pool_->num_workers() == 0) {
      for (size_t k = 0; k < dispatch_users_.size(); ++k) {
        TrainOneFaulted(dispatch_users_[k], 0, dispatch_faults_[k],
                        &dispatch_updates_[k]);
      }
    } else {
      pool_->ParallelFor(dispatch_users_.size(),
                         [&](size_t k, size_t slot_idx) {
                           TrainOneFaulted(dispatch_users_[k], slot_idx,
                                           dispatch_faults_[k],
                                           &dispatch_updates_[k]);
                         });
    }
    // Replica commits and the completion events in dispatch order.
    for (size_t k = 0; k < dispatch_users_.size(); ++k) {
      const UserId u = dispatch_users_[k];
      const FaultKind fk = dispatch_faults_[k];
      const size_t shipped = AccountDownload(u, dispatch_updates_[k]);
      FaultStats* f = result_.comm.mutable_faults();
      f->nonfinite_grad_steps += dispatch_updates_[k].nonfinite_grad_steps;
      if (fk == FaultKind::kCrash || fk == FaultKind::kUploadLoss) {
        // The download happened (the replica committed) but no completion
        // event will ever arrive; the client retries after backoff.
        if (fk == FaultKind::kCrash) {
          f->crashed++;
          TraceFault("crash", "fault", u, now);
        } else {
          f->upload_lost++;
          TraceFault("upload_loss", "fault", u, now);
        }
        FailAndRequeue(u, now);
        continue;
      }
      if (fk == FaultKind::kDuplicate) {
        f->duplicates++;
        TraceFault("duplicate", "fault", u, now);
      }
      if (fk == FaultKind::kCorrupt) {
        f->corrupted++;
        TraceFault("corrupt", "fault", u, now);
        injector_->Corrupt(u, dispatch_seqs_[k], &dispatch_updates_[k]);
      }
      const double finish =
          agg_->clock_seconds() +
          ClientFinishSeconds(u, dispatch_seqs_[k], shipped,
                              dispatch_updates_[k]);
      if (trace_) {
        JsonObj args;
        args.U64("user", u).U64("seq", dispatch_seqs_[k]);
        trace_->Complete("transfer", "net", agg_->clock_seconds(),
                         finish - agg_->clock_seconds(),
                         GroupTrack(clients_[u].group), args.Build());
      }
      agg_->Submit(
          u, &setup_.tasks_of_group[static_cast<int>(clients_[u].group)],
          std::move(dispatch_updates_[k]), version, finish);
    }
    dispatch_updates_.clear();
  }

  /// Merge-on-arrival: completions pop in virtual-time order and merge (or
  /// drop) immediately; freed slots re-dispatch every async_dispatch_batch
  /// merges. The epoch ends when the queue is drained and every in-flight
  /// completion has arrived — the virtual clock runs on across epochs.
  void AsyncEpoch(int epoch) {
    queue_->BeginEpoch(&sched_rng_);
    // Dispatch-attempt budget, same role as the sync round budget: with
    // availability < 1 (or a tight staleness cap) clients requeue, and the
    // geometric retry tail must not be able to hang a run.
    size_t budget = 10 * dataset_.num_users() + 10 * async_inflight_;
    AsyncDispatch(&budget);
    size_t since_dispatch = 0;
    while (!agg_->empty()) {
      AsyncAggregator::Outcome out =
          agg_->MergeNext(kd_opts_, setup_.reskd ? &kd_rng_ : nullptr);
      const Group g = clients_[out.user].group;
      if (out.merged) {
        result_.comm.RecordUpload(g, out.params_up);
        result_.comm.mutable_faults()->rows_clipped += out.rows_clipped;
        loss_sum_ += out.train_loss;
        loss_count_++;
        if (gate_) gate_->OnSuccess(out.user);
        ++rounds_done_;
        if (tel_) metrics_.staleness->Observe(static_cast<double>(out.staleness));
        if (trace_) {
          JsonObj args;
          args.U64("user", out.user)
              .U64("staleness", out.staleness)
              .Num("weight", out.weight);
          trace_->Instant("merge", "server", out.finish_seconds, kServerTrack,
                          args.Build());
        }
        // The async "round" is a merge batch: every clients_per_round-th
        // merge closes one for the metrics stream.
        if (++async_merges_in_row_ >= cfg_.clients_per_round) {
          FlushAsyncRound(epoch);
        }
        if (cfg_.debug_stop_after_rounds > 0 &&
            rounds_done_ >= cfg_.debug_stop_after_rounds) {
          // Simulated crash mid-epoch: in-flight events are simply lost.
          sim_clock_ = agg_->clock_seconds();
          stopped_ = true;
          return;
        }
      } else if (out.rejected) {
        // Admission control rejected the update: quarantine the client so
        // it re-enters (much later) with a fresh download.
        FaultStats* f = result_.comm.mutable_faults();
        f->rows_clipped += out.rows_clipped;
        if (out.rejected_nonfinite) {
          f->rejected_nonfinite++;
          TraceFault("reject_nonfinite", "admission", out.user,
                     out.finish_seconds);
        } else {
          f->rejected_outlier++;
          TraceFault("reject_outlier", "admission", out.user,
                     out.finish_seconds);
        }
        f->quarantines++;
        if (gate_) gate_->Quarantine(out.user, agg_->clock_seconds());
        queue_->Requeue(out.user);
      } else {
        // Dropped by the staleness cap: the work is discarded and the
        // client re-queued for a fresh download, like a sync straggler.
        result_.comm.RecordDropped(g);
        if (trace_) {
          JsonObj args;
          args.U64("user", out.user).U64("staleness", out.staleness);
          trace_->Instant("drop", "server", out.finish_seconds,
                          GroupTrack(g), args.Build());
        }
        queue_->Requeue(out.user);
      }
      if (out.distilled && tel_) metrics_.distills->Increment();
      if (out.distilled && trace_) {
        trace_->Instant("distill", "server", out.finish_seconds, kServerTrack);
      }
      if (++since_dispatch >= cfg_.async_dispatch_batch || agg_->empty()) {
        AsyncDispatch(&budget);
        since_dispatch = 0;
      }
    }
    if (!queue_->Exhausted()) {
      HFR_LOG(Warning) << "epoch " << epoch
                       << " async dispatch budget exhausted with "
                       << queue_->pending()
                       << " clients still queued (availability="
                       << cfg_.availability
                       << "); dropping them until next epoch";
    }
    sim_clock_ = agg_->clock_seconds();
    // Close the partial merge batch so the epoch's tail still reports.
    FlushAsyncRound(epoch);
  }

  /// Emits the open async merge batch as one metrics round (no-op when
  /// nothing merged since the last row).
  void FlushAsyncRound(int epoch) {
    if (async_merges_in_row_ == 0) return;
    const double now = agg_->clock_seconds();
    const size_t merged = async_merges_in_row_;
    async_merges_in_row_ = 0;
    const double duration = now - async_row_clock_;
    async_row_clock_ = now;
    sim_clock_ = now;
    TelemetryRound(epoch, duration, merged);
  }

  /// fp32 backend: refreshes the float casts of every slot's table and Θ
  /// once per evaluation pass (the server state mutates between passes).
  void RefreshEvalCasts() {
    const size_t ns = server_->num_slots();
    eval_tables_f_.resize(ns);
    eval_thetas_f_.resize(ns);
    for (size_t s = 0; s < ns; ++s) {
      eval_tables_f_[s].AssignCast(server_->table(s));
      eval_thetas_f_[s].AssignCastFrom(server_->theta(s));
    }
  }

  /// fp32 backend: BeginUser with a float cast of the client's persistent
  /// double user embedding (per-thread scratch row).
  ScorerF& BeginUserF(UserId u, size_t thread_slot, size_t slot) {
    const ClientState& c = clients_[u];
    ScorerF& sc = eval_scorers_f_[thread_slot][slot];
    std::vector<float>& uf = eval_user_f_[thread_slot];
    const double* ud = c.user_embedding.Row(0);
    const size_t w = c.user_embedding.cols();
    uf.resize(w);
    for (size_t d = 0; d < w; ++d) uf[d] = static_cast<float>(ud[d]);
    sc.BeginUser(uf.data(), eval_tables_f_[slot], dataset_.TrainItems(u));
    return sc;
  }

  Evaluator::BatchScoreFn MakeScoreFn() {
    if (fp32_) {
      return [this](UserId u, size_t thread_slot,
                    const std::vector<ItemId>& ids, double* out) {
        size_t slot =
            setup_.slot_of_group[static_cast<int>(clients_[u].group)];
        ScorerF& sc = BeginUserF(u, thread_slot, slot);
        ScoreIdsForEval(sc, eval_tables_f_[slot], eval_thetas_f_[slot], ids,
                        cfg_.use_batched_scoring,
                        cfg_.eval_candidate_sample == 0, out);
      };
    }
    return [this](UserId u, size_t thread_slot,
                  const std::vector<ItemId>& ids, double* out) {
      const ClientState& c = clients_[u];
      size_t slot = setup_.slot_of_group[static_cast<int>(c.group)];
      Scorer& sc = eval_scorers_[thread_slot][slot];
      sc.BeginUser(c.user_embedding.Row(0), server_->table(slot),
                   dataset_.TrainItems(u));
      ScoreIdsForEval(sc, server_->table(slot), server_->theta(slot), ids,
                      cfg_.use_batched_scoring,
                      cfg_.eval_candidate_sample == 0, out);
    };
  }

  Evaluator::StreamScoreFn MakeStreamScoreFn() {
    if (fp32_) {
      return [this](UserId u, size_t thread_slot, TopKSelector* sink) {
        size_t slot =
            setup_.slot_of_group[static_cast<int>(clients_[u].group)];
        ScorerF& sc = BeginUserF(u, thread_slot, slot);
        StreamScoresForEval(sc, eval_tables_f_[slot], eval_thetas_f_[slot],
                            cfg_.use_batched_scoring,
                            &eval_stream_bufs_[thread_slot], sink);
      };
    }
    return [this](UserId u, size_t thread_slot, TopKSelector* sink) {
      const ClientState& c = clients_[u];
      size_t slot = setup_.slot_of_group[static_cast<int>(c.group)];
      Scorer& sc = eval_scorers_[thread_slot][slot];
      sc.BeginUser(c.user_embedding.Row(0), server_->table(slot),
                   dataset_.TrainItems(u));
      StreamScoresForEval(sc, server_->table(slot), server_->theta(slot),
                          cfg_.use_batched_scoring,
                          &eval_stream_bufs_[thread_slot], sink);
    };
  }

  /// Full-catalogue evaluation streams score blocks straight into the
  /// top-K sink (no per-user O(items) buffer); the candidate slice and the
  /// partial_sort reference keep the id-list callback.
  GroupedEval RunEvaluation() {
    HFR_PROFILE("eval");
    if (fp32_) RefreshEvalCasts();
    if (cfg_.use_batched_topk && cfg_.eval_candidate_sample == 0) {
      return evaluator_->Evaluate(MakeStreamScoreFn(), pool_.get());
    }
    return evaluator_->Evaluate(MakeScoreFn(), pool_.get());
  }

  /// Writes the full run state to checkpoint_path + ".run" with an atomic
  /// rename (docs/ROBUSTNESS.md "Checkpoint format v2").
  void WriteRunCheckpoint(int next_epoch, bool mid_epoch) {
    HFR_PROFILE("checkpoint");
    if (tel_) metrics_.checkpoints->Increment();
    if (trace_) {
      trace_->Instant("checkpoint", "server", sim_clock_, kServerTrack);
    }
    RunState st;
    st.fingerprint = ConfigFingerprint(cfg_, MethodName(method_));
    st.method = MethodName(method_);
    st.base_model = BaseModelName(cfg_.base_model);
    st.next_epoch = static_cast<uint64_t>(next_epoch);
    st.mid_epoch = mid_epoch ? 1 : 0;
    st.round_budget = round_budget_;
    st.rounds_done = rounds_done_;
    st.dispatch_seq = dispatch_seq_;
    st.loss_sum = loss_sum_;
    st.loss_count = loss_count_;
    st.sim_clock = sim_clock_;
    st.sched_rng = sched_rng_.SaveState();
    st.kd_rng = kd_rng_.SaveState();
    st.client_rngs.reserve(clients_.size());
    st.client_embeddings.reserve(clients_.size());
    for (const ClientState& c : clients_) {
      st.client_rngs.push_back(c.rng.SaveState());
      st.client_embeddings.push_back(c.user_embedding);
    }
    // The server's mutable state crosses through ServerApi::Snapshot, whose
    // layout is shard-count independent — sharded runs checkpoint and
    // resume through the same RunState fields as the single table.
    ServerSnapshot server_snap = server_->Snapshot();
    st.tables = std::move(server_snap.tables);
    st.thetas = std::move(server_snap.thetas);
    st.version_floors = std::move(server_snap.version_floors);
    st.versions = std::move(server_snap.versions);
    st.version_round = server_snap.version_round;
    for (UserId u : queue_->PendingSnapshot()) {
      st.queue_pending.push_back(static_cast<uint64_t>(u));
    }
    if (agg_) {
      st.async_clock = agg_->clock_seconds();
      st.async_next_seq = agg_->next_seq();
      st.async_merged = agg_->merged_updates();
      st.async_dropped = agg_->dropped_updates();
    }
    if (gate_) st.gate_state = gate_->Export();
    if (admission_) st.admission_history = admission_->ExportHistory();
    st.comm_counters = result_.comm.ExportCounters();
    st.history = result_.history;
    if (sync_) {
      st.has_replicas = 1;
      st.replicas.resize(clients_.size());
      std::vector<uint32_t> rows;
      std::vector<uint64_t> row_versions;
      for (size_t u = 0; u < clients_.size(); ++u) {
        const ClientReplica& rep = sync_->replica(static_cast<UserId>(u));
        ReplicaSnapshot& snap = st.replicas[u];
        snap.slot_plus_one =
            rep.slot() == ClientReplica::kNoSlot ? 0 : rep.slot() + 1;
        rep.ExportRows(&rows, &row_versions);
        snap.rows.assign(rows.begin(), rows.end());
        snap.versions = row_versions;
      }
    }
    const Status saved = SaveRunState(cfg_.checkpoint_path + ".run", st);
    if (!saved.ok()) {
      HFR_LOG(Warning) << "run checkpoint save failed: " << saved.ToString();
    }
  }

  /// Restores the state written by WriteRunCheckpoint. Fatal on a missing
  /// file or an experiment mismatch — resuming a different run would
  /// silently produce garbage.
  void LoadRun() {
    const std::string path = cfg_.checkpoint_path + ".run";
    StatusOr<RunState> loaded = LoadRunState(path);
    HFR_CHECK(loaded.ok()) << "resume from " << path
                           << " failed: " << loaded.status().ToString();
    RunState st = std::move(loaded).value();
    HFR_CHECK_EQ(st.fingerprint, ConfigFingerprint(cfg_, MethodName(method_)))
        << " — the checkpoint was written under a different experiment "
           "configuration";
    HFR_CHECK(st.method == MethodName(method_));
    HFR_CHECK(st.base_model == BaseModelName(cfg_.base_model));
    HFR_CHECK_EQ(st.tables.size(), server_->num_slots());
    HFR_CHECK_EQ(st.client_rngs.size(), clients_.size());
    HFR_CHECK_EQ(st.client_embeddings.size(), clients_.size());

    start_epoch_ = static_cast<int>(st.next_epoch);
    resume_mid_epoch_ = st.mid_epoch != 0;
    round_budget_ = st.round_budget;
    rounds_done_ = st.rounds_done;
    dispatch_seq_ = st.dispatch_seq;
    loss_sum_ = st.loss_sum;
    loss_count_ = static_cast<size_t>(st.loss_count);
    sim_clock_ = st.sim_clock;
    sched_rng_.RestoreState(st.sched_rng);
    kd_rng_.RestoreState(st.kd_rng);
    for (size_t u = 0; u < clients_.size(); ++u) {
      clients_[u].rng.RestoreState(st.client_rngs[u]);
      HFR_CHECK_EQ(st.client_embeddings[u].cols(),
                   clients_[u].user_embedding.cols());
      clients_[u].user_embedding = std::move(st.client_embeddings[u]);
    }
    ServerSnapshot server_snap;
    server_snap.tables = std::move(st.tables);
    server_snap.thetas = std::move(st.thetas);
    server_snap.version_round = st.version_round;
    server_snap.version_floors = std::move(st.version_floors);
    server_snap.versions = std::move(st.versions);
    server_->RestoreSnapshot(std::move(server_snap));
    std::vector<UserId> pending;
    pending.reserve(st.queue_pending.size());
    for (uint64_t u : st.queue_pending) {
      pending.push_back(static_cast<UserId>(u));
    }
    queue_->RestorePending(pending);
    if (agg_) {
      agg_->RestoreState(st.async_clock, st.async_next_seq,
                         static_cast<size_t>(st.async_merged),
                         static_cast<size_t>(st.async_dropped));
    }
    HFR_CHECK_EQ(gate_ != nullptr, !st.gate_state.empty());
    if (gate_) gate_->Restore(st.gate_state);
    HFR_CHECK_EQ(admission_ != nullptr, !st.admission_history.empty());
    if (admission_) admission_->RestoreHistory(st.admission_history);
    result_.comm.RestoreCounters(st.comm_counters);
    result_.history = std::move(st.history);
    HFR_CHECK_EQ(st.has_replicas != 0, delta_sync_);
    if (st.has_replicas != 0) {
      HFR_CHECK_EQ(st.replicas.size(), clients_.size());
      for (size_t u = 0; u < clients_.size(); ++u) {
        const ReplicaSnapshot& snap = st.replicas[u];
        ClientReplica* rep = sync_->mutable_replica(static_cast<UserId>(u));
        if (snap.slot_plus_one > 0) {
          rep->set_slot(static_cast<size_t>(snap.slot_plus_one - 1));
        }
        HFR_CHECK_EQ(snap.rows.size(), snap.versions.size());
        // Coldest first: replaying Hold in export order rebuilds the
        // identical LRU recency list.
        for (size_t k = 0; k < snap.rows.size(); ++k) {
          rep->Hold(static_cast<uint32_t>(snap.rows[k]), snap.versions[k]);
        }
      }
    }
  }

  // --- telemetry (docs/OBSERVABILITY.md) --------------------------------
  // Pure observation: nothing below may touch an RNG stream, the virtual
  // clock or any trained value — a telemetry-on run is bit-identical to a
  // telemetry-off one (tests/core/telemetry_equivalence_test.cc). All
  // emission happens on the deterministic main/merge thread.

  static constexpr int kServerTrack = 0;
  static int GroupTrack(Group g) { return 1 + static_cast<int>(g); }

  void SetupTelemetry() {
    if (cfg_.profile) {
      Profiler::Get().Reset();
      Profiler::Get().Enable(true);
    }
    if (cfg_.metrics_out.empty() && cfg_.trace_out.empty() && !cfg_.profile) {
      return;
    }
    TelemetryOptions topt;
    topt.metrics_path = cfg_.metrics_out;
    topt.trace_path = cfg_.trace_out;
    topt.profile = cfg_.profile;
    StatusOr<std::unique_ptr<Telemetry>> tel = Telemetry::Create(topt);
    HFR_CHECK(tel.ok()) << tel.status().ToString();
    tel_ = std::move(tel).value();
    trace_ = tel_->trace();
    metrics_.Register(tel_->registry(), cfg_.async_mode);
    if (trace_) {
      trace_->SetTrackName(kServerTrack, "server");
      for (int g = 0; g < kNumGroups; ++g) {
        trace_->SetTrackName(1 + g,
                             "clients/" + GroupName(static_cast<Group>(g)));
      }
    }
    if (tel_->metrics_on()) {
      JsonObj meta;
      meta.Str("type", "meta")
          .I64("version", 1)
          .Str("method", MethodName(method_))
          .Str("dataset", cfg_.dataset)
          .Num("data_scale", cfg_.data_scale)
          .U64("seed", cfg_.seed)
          .Bool("async", cfg_.async_mode)
          .U64("clients_per_round", cfg_.clients_per_round)
          .I64("epochs", cfg_.global_epochs)
          .Bool("resumed", cfg_.resume_run);
      tel_->WriteRow(meta.Build());
    }
  }

  /// Instant event for an injected fault / admission rejection on the
  /// client's group track.
  void TraceFault(const char* kind, const char* category, UserId u,
                  double ts) {
    if (!trace_) return;
    JsonObj args;
    args.U64("user", u);
    trace_->Instant(kind, category, ts, GroupTrack(clients_[u].group),
                    args.Build());
  }

  /// One synchronous-round client transfer on its group track, spanning the
  /// round start to the client's simulated finish.
  void TraceTransfer(UserId u, double start, double duration, bool merged) {
    if (!trace_) return;
    JsonObj args;
    args.U64("user", u).Bool("merged", merged);
    trace_->Complete("transfer", "net", start, duration,
                     GroupTrack(clients_[u].group), args.Build());
  }

  /// Round close (sync round / async merge batch): snapshot the per-round
  /// traffic, refresh the registry mirrors and stream one "round" row. The
  /// virtual clock (sim_clock_) has already advanced to the close instant.
  void TelemetryRound(int epoch, double duration, size_t merged) {
    if (!tel_ && !cfg_.track_round_comm) return;
    const CommRound rc = result_.comm.SnapshotRound();
    if (cfg_.track_round_comm) result_.round_comm.push_back(rc);
    if (!tel_) return;
    ++telemetry_rounds_;
    merges_total_ += merged;
    RunMetrics::SetTo(metrics_.rounds, telemetry_rounds_);
    RunMetrics::SetTo(metrics_.merges, merges_total_);
    metrics_.MirrorComm(result_.comm);
    metrics_.clock->Set(sim_clock_);
    metrics_.queue_depth->Set(static_cast<double>(queue_->pending()));
    metrics_.round_merged->Set(static_cast<double>(merged));
    metrics_.round_down_scalars->Set(static_cast<double>(rc.DownParams()));
    metrics_.round_up_scalars->Set(static_cast<double>(rc.UpParams()));
    metrics_.loss_mean->Set(
        loss_count_ > 0 ? loss_sum_ / static_cast<double>(loss_count_) : 0.0);
    // Replica cache hit rate: subscribed rows the round did NOT have to
    // ship (fresh in the client replica) over rows subscribed.
    const uint64_t sub = metrics_.rows_subscribed->Value() - rows_sub_seen_;
    const uint64_t ship = metrics_.rows_shipped->Value() - rows_ship_seen_;
    rows_sub_seen_ += sub;
    rows_ship_seen_ += ship;
    metrics_.replica_hit_rate->Set(
        sub > 0 ? 1.0 - static_cast<double>(ship) / static_cast<double>(sub)
                : 0.0);
    metrics_.round_seconds->Observe(duration);
    if (tel_->metrics_on()) {
      JsonObj row;
      row.U64("round", telemetry_rounds_);
      row.Str("type", "round")
          .I64("epoch", epoch)
          .Num("clock", sim_clock_)
          .Num("duration", duration)
          .U64("merged", merged)
          .U64("queue", queue_->pending())
          .Raw("metrics", tel_->registry()->ToJson());
      tel_->WriteRow(row.Build());
    }
  }

  void TelemetryEval(const EpochPoint& point) {
    if (!tel_) return;
    metrics_.eval_recall->Set(point.eval.overall.recall);
    metrics_.eval_ndcg->Set(point.eval.overall.ndcg);
    if (trace_) {
      JsonObj args;
      args.Num("recall", point.eval.overall.recall)
          .Num("ndcg", point.eval.overall.ndcg);
      trace_->Instant("eval", "server", sim_clock_, kServerTrack,
                      args.Build());
    }
    if (!tel_->metrics_on()) return;
    std::string groups = "[";
    for (int g = 0; g < kNumGroups; ++g) {
      if (g) groups += ',';
      const EvalResult& e = point.eval.per_group[g];
      JsonObj go;
      go.Str("group", GroupName(static_cast<Group>(g)))
          .Num("recall", e.recall)
          .Num("ndcg", e.ndcg)
          .U64("users", e.users);
      groups += go.Build();
    }
    groups += ']';
    JsonObj row;
    row.Str("type", "eval")
        .I64("epoch", point.epoch)
        .Num("clock", point.simulated_seconds)
        .Num("recall", point.eval.overall.recall)
        .Num("ndcg", point.eval.overall.ndcg)
        .Num("loss", point.mean_train_loss)
        .Raw("groups", groups);
    tel_->WriteRow(row.Build());
  }

  /// End of run (normal or debug-kill): profile table, summary row, flush.
  /// Wall-clock profile numbers are nondeterministic, so they are confined
  /// to "profile" rows and stderr — never the round/summary rows the
  /// determinism tests byte-compare.
  void TelemetryFinish() {
    if (cfg_.profile) {
      const std::vector<Profiler::PhaseStat> stats = Profiler::Get().Collect();
      Profiler::Get().Enable(false);
      HFR_LOG(Info) << "phase profile (wall seconds):\n"
                    << Profiler::Render(stats);
      if (tel_ && tel_->metrics_on()) {
        for (const Profiler::PhaseStat& s : stats) {
          JsonObj row;
          row.Str("type", "profile")
              .Str("path", s.path)
              .U64("calls", s.calls)
              .Num("total_s", s.total_seconds)
              .Num("self_s", s.self_seconds);
          tel_->WriteRow(row.Build());
        }
      }
    }
    if (!tel_) return;
    if (tel_->metrics_on()) {
      metrics_.MirrorComm(result_.comm);
      metrics_.clock->Set(sim_clock_);
      JsonObj row;
      row.Str("type", "summary")
          .U64("rounds", telemetry_rounds_)
          .U64("merges", merges_total_)
          .Num("clock", sim_clock_)
          .Num("recall", result_.final_eval.overall.recall)
          .Num("ndcg", result_.final_eval.overall.ndcg)
          .U64("total_scalars", result_.comm.TotalTransmitted())
          .U64("total_bytes", result_.comm.TotalBytes())
          .U64("dropped", result_.comm.TotalDropped())
          .Raw("metrics", tel_->registry()->ToJson());
      tel_->WriteRow(row.Build());
    }
    const Status flushed = tel_->Flush();
    if (!flushed.ok()) {
      HFR_LOG(Warning) << "telemetry flush failed: " << flushed.ToString();
    }
  }

  const ExperimentConfig& cfg_;
  const Dataset& dataset_;
  const GroupAssignment& groups_;
  MethodSetup setup_;
  Method method_;
  Timer timer_;  // wall clock, started at construction like the old loop
  Rng root_;

  std::unique_ptr<ServerApi> server_;
  std::vector<ClientState> clients_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<LocalTrainer>> trainers_;
  std::unique_ptr<ClientQueue> queue_;
  Rng sched_rng_{0};
  Rng kd_rng_{0};
  DistillationOptions kd_opts_;
  bool delta_sync_ = false;
  std::unique_ptr<SyncService> sync_;
  std::unique_ptr<SimulatedNetwork> net_;
  bool over_select_ = false;
  std::unique_ptr<Evaluator> evaluator_;
  std::vector<std::vector<Scorer>> eval_scorers_;
  std::vector<std::vector<double>> eval_stream_bufs_;  // per-thread blocks

  // fp32 backend evaluation state (empty on fp64): float scorers mirror
  // eval_scorers_; the table/Θ casts refresh once per evaluation pass.
  const bool fp32_;
  std::vector<std::vector<ScorerF>> eval_scorers_f_;
  std::vector<MatrixF> eval_tables_f_;
  std::vector<FeedForwardNetF> eval_thetas_f_;
  std::vector<std::vector<float>> eval_user_f_;  // per-thread cast user rows

  // Robustness layer (docs/ROBUSTNESS.md); all null on default configs.
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<ClientGate> gate_;
  std::unique_ptr<AdmissionController> admission_;

  // Run-checkpoint / kill-hook state (docs/ROBUSTNESS.md).
  int start_epoch_ = 1;           // first epoch to run (resume skips ahead)
  bool resume_mid_epoch_ = false; // continue a checkpointed epoch's queue
  bool stopped_ = false;          // the debug kill hook fired
  uint64_t rounds_done_ = 0;      // completed rounds (sync) / merges (async)
  uint64_t round_budget_ = 0;     // remaining sync-epoch round budget

  // Async schedule state.
  std::unique_ptr<AsyncAggregator> agg_;
  size_t async_inflight_ = 0;
  uint64_t dispatch_seq_ = 0;  // monotone across epochs; salts net draws
  std::vector<UserId> dispatch_users_;
  std::vector<uint64_t> dispatch_seqs_;
  std::vector<FaultKind> dispatch_faults_;
  std::vector<LocalUpdateResult> dispatch_updates_;

  ExperimentResult result_;
  double loss_sum_ = 0.0;
  size_t loss_count_ = 0;
  double sim_clock_ = 0.0;

  // Telemetry (null / empty when every telemetry flag is off).
  std::unique_ptr<Telemetry> tel_;
  TraceRecorder* trace_ = nullptr;  // borrowed from tel_; null when off
  RunMetrics metrics_;
  uint64_t telemetry_rounds_ = 0;  // "round" rows emitted (sync rounds or
                                   // async merge batches)
  uint64_t merges_total_ = 0;      // cumulative merged client updates
  std::vector<UserId> trace_round_merges_;  // merged users of the open round
  size_t async_merges_in_row_ = 0;  // merges since the last async batch row
  double async_row_clock_ = 0.0;    // clock at the last async batch close
  uint64_t rows_sub_seen_ = 0;      // row-subscription counters already
  uint64_t rows_ship_seen_ = 0;     // folded into the hit-rate gauge
};

}  // namespace

ExperimentRunner::ExperimentRunner(ExperimentConfig config, Dataset dataset,
                                   GroupAssignment groups)
    : config_(std::move(config)),
      dataset_(std::move(dataset)),
      groups_(std::move(groups)) {}

StatusOr<std::unique_ptr<ExperimentRunner>> ExperimentRunner::Create(
    const ExperimentConfig& config) {
  HFR_RETURN_NOT_OK(config.Validate());
  auto data_cfg = DatasetConfigByName(config.dataset, config.data_scale);
  if (!data_cfg.ok()) return data_cfg.status();
  std::vector<Interaction> interactions = GenerateInteractions(*data_cfg);
  SplitOptions split;
  split.seed = config.seed ^ 0x5eedULL;
  auto ds = Dataset::FromInteractions(interactions, data_cfg->num_users,
                                      data_cfg->num_items, split);
  if (!ds.ok()) return ds.status();
  auto groups = AssignGroups(*ds, config.group_fractions);
  if (!groups.ok()) return groups.status();
  return std::unique_ptr<ExperimentRunner>(new ExperimentRunner(
      config, std::move(ds).value(), std::move(groups).value()));
}

ExperimentResult ExperimentRunner::Run(Method method) const {
  if (method == Method::kStandalone) return RunStandalone();
  return RunFederated(method);
}

ExperimentResult ExperimentRunner::RunFederated(Method method) const {
  FederatedRun run(config_, dataset_, groups_, method);
  return run.Run();
}

ExperimentResult ExperimentRunner::RunStandalone() const {
  const ExperimentConfig& cfg = config_;
  // Standalone has no rounds or network, so only the phase profiler
  // applies; the metrics/trace outputs are federated-run features.
  if (cfg.profile) {
    Profiler::Get().Reset();
    Profiler::Get().Enable(true);
  }
  Timer timer;
  Rng root(cfg.seed);
  Rng init_rng = root.Fork(4);
  const bool fp32 = cfg.compute_backend != ComputeBackend::kFp64;
  ActivateBackend(cfg.compute_backend);

  // Standalone users never interact, so evaluation (train + score per
  // user) parallelizes over users like the federated eval does; each
  // thread slot owns a LocalTrainer (scratch is not shareable).
  ThreadPool pool(EffectiveThreads(cfg) - 1);
  std::vector<std::unique_ptr<LocalTrainer>> locals;
  locals.reserve(pool.num_slots());
  for (size_t t = 0; t < pool.num_slots(); ++t) {
    locals.push_back(std::make_unique<LocalTrainer>(dataset_, cfg.base_model));
  }
  Evaluator evaluator(dataset_, groups_, cfg.top_k, cfg.eval_user_sample,
                      cfg.seed ^ 0xe5a1ULL, cfg.eval_candidate_sample,
                      cfg.use_batched_topk);

  // Train-and-score each evaluated user in isolation: no parameters are
  // ever exchanged, which is exactly the baseline's premise. Training
  // budget matches federated clients: global_epochs x local_epochs local
  // passes over the user's own data.
  auto train_user = [&](UserId u, size_t thread_slot, Matrix* table,
                        FeedForwardNet* theta, ClientState* client) {
    LocalTrainer& local = *locals[thread_slot];
    Group g = groups_.of(u);
    size_t width = cfg.dims[static_cast<int>(g)];
    *table = Matrix(dataset_.num_items(), width);
    Rng user_init = init_rng.Fork(u);
    InitNormal(table, cfg.embed_init_std, &user_init);
    *theta = FeedForwardNet(2 * width,
                            {cfg.ffn_hidden[0], cfg.ffn_hidden[1]});
    theta->InitXavier(&user_init);

    InitClient(client, u, g, width, cfg.embed_init_std, root);

    std::vector<LocalTaskSpec> tasks = {LocalTaskSpec{0, width}};
    LocalTrainerOptions lopt;
    lopt.local_epochs = cfg.global_epochs * cfg.local_epochs;
    lopt.lr = cfg.lr;
    lopt.apply_ddr = false;
    lopt.use_sparse = cfg.use_sparse_updates;
    lopt.use_batched = cfg.use_batched_scoring;
    lopt.sparse_comm_accounting = cfg.sparse_comm_accounting;
    lopt.backend = cfg.compute_backend;
    LocalUpdateResult update =
        local.Train(client, *table, {theta}, tasks, lopt);
    if (update.sparse) {
      update.v_delta_sparse.AddScaledTo(table, 1.0);
    } else {
      table->AddScaled(update.v_delta, 1.0);
    }
    theta->AddScaled(update.theta_deltas[0], 1.0);
  };

  // fp32 backend: score the freshly trained user through float casts of
  // its table/Θ (training itself already ran in float via lopt.backend).
  auto cast_user = [&](const Matrix& table, const FeedForwardNet& theta,
                       const ClientState& client, MatrixF* tf,
                       FeedForwardNetF* thf, std::vector<float>* uf) {
    tf->AssignCast(table);
    thf->AssignCastFrom(theta);
    const double* ud = client.user_embedding.Row(0);
    uf->resize(table.cols());
    for (size_t d = 0; d < uf->size(); ++d) {
      (*uf)[d] = static_cast<float>(ud[d]);
    }
  };

  ExperimentResult result;
  if (cfg.use_batched_topk && cfg.eval_candidate_sample == 0) {
    // Fused path: trained scores stream into the top-K sink per block.
    std::vector<std::vector<double>> stream_bufs(pool.num_slots());
    auto stream_fn = [&](UserId u, size_t thread_slot, TopKSelector* sink) {
      Matrix table;
      FeedForwardNet theta;
      ClientState client;
      train_user(u, thread_slot, &table, &theta, &client);
      if (fp32) {
        MatrixF tf;
        FeedForwardNetF thf;
        std::vector<float> uf;
        cast_user(table, theta, client, &tf, &thf, &uf);
        ScorerF sc(cfg.base_model, table.cols());
        sc.BeginUser(uf.data(), tf, dataset_.TrainItems(u));
        StreamScoresForEval(sc, tf, thf, cfg.use_batched_scoring,
                            &stream_bufs[thread_slot], sink);
        return;
      }
      Scorer sc(cfg.base_model, table.cols());
      sc.BeginUser(client.user_embedding.Row(0), table,
                   dataset_.TrainItems(u));
      StreamScoresForEval(sc, table, theta, cfg.use_batched_scoring,
                          &stream_bufs[thread_slot], sink);
    };
    result.final_eval =
        evaluator.Evaluate(Evaluator::StreamScoreFn(stream_fn), &pool);
  } else {
    auto score_fn = [&](UserId u, size_t thread_slot,
                        const std::vector<ItemId>& ids, double* out) {
      Matrix table;
      FeedForwardNet theta;
      ClientState client;
      train_user(u, thread_slot, &table, &theta, &client);
      if (fp32) {
        MatrixF tf;
        FeedForwardNetF thf;
        std::vector<float> uf;
        cast_user(table, theta, client, &tf, &thf, &uf);
        ScorerF sc(cfg.base_model, table.cols());
        sc.BeginUser(uf.data(), tf, dataset_.TrainItems(u));
        ScoreIdsForEval(sc, tf, thf, ids, cfg.use_batched_scoring,
                        cfg.eval_candidate_sample == 0, out);
        return;
      }
      Scorer sc(cfg.base_model, table.cols());
      sc.BeginUser(client.user_embedding.Row(0), table,
                   dataset_.TrainItems(u));
      ScoreIdsForEval(sc, table, theta, ids, cfg.use_batched_scoring,
                      cfg.eval_candidate_sample == 0, out);
    };
    result.final_eval =
        evaluator.Evaluate(Evaluator::BatchScoreFn(score_fn), &pool);
  }
  result.train_seconds = timer.Seconds();
  if (cfg.profile) {
    const std::vector<Profiler::PhaseStat> stats = Profiler::Get().Collect();
    Profiler::Get().Enable(false);
    HFR_LOG(Info) << "phase profile (wall seconds):\n"
                  << Profiler::Render(stats);
  }
  return result;
}

}  // namespace hetefedrec
