// Reproduces Table III: one-round transmission cost per client type for
// All Small, All Large and HeteFedRec.
//
// Two views are printed: the analytic formulas of Table III evaluated for
// the configured model sizes, and the costs actually *measured* by the
// simulation's communication accounting — they must agree exactly.
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/models/ffn.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  ExperimentConfig cfg = *base_cfg;
  cfg.dataset =
      cli.GetString("dataset").empty() ? "ml" : cli.GetString("dataset");
  ApplyPaperDims(&cfg);
  cfg.global_epochs = 1;  // cost per round is constant

  auto runner = ExperimentRunner::Create(cfg);
  if (!runner.ok()) return FailWith(runner.status());
  const size_t items = (*runner)->dataset().num_items();

  auto theta_params = [&](size_t w) {
    return FeedForwardNet(2 * w, {cfg.ffn_hidden[0], cfg.ffn_hidden[1]})
        .ParamCount();
  };
  const size_t vs = items * cfg.dims[0], vm = items * cfg.dims[1],
               vl = items * cfg.dims[2];
  const size_t ts = theta_params(cfg.dims[0]), tm = theta_params(cfg.dims[1]),
               tl = theta_params(cfg.dims[2]);

  std::printf(
      "Model sizes (%s, %zu items): |Vs|=%s |Vm|=%s |Vl|=%s "
      "|Θs|=%zu |Θm|=%zu |Θl|=%zu\n"
      "(paper quotes 29,648 / 59,296 / 118,592 for V on full-size ML)\n\n",
      cfg.dataset.c_str(), items, TablePrinter::Count(vs).c_str(),
      TablePrinter::Count(vm).c_str(), TablePrinter::Count(vl).c_str(), ts,
      tm, tl);

  TablePrinter table(
      "Table III: one-time transmission cost per client (scalars)",
      {"Client", "All Small", "All Large", "HeteFedRec", "HeteFedRec formula"});
  table.AddRow({"Us", TablePrinter::Count(vs + ts),
                TablePrinter::Count(vl + tl), TablePrinter::Count(vs + ts),
                "size(Vs+Θs)"});
  table.AddRow({"Um", TablePrinter::Count(vs + ts),
                TablePrinter::Count(vl + tl),
                TablePrinter::Count(vm + ts + tm), "size(Vm+Θs,m)"});
  table.AddRow({"Ul", TablePrinter::Count(vs + ts),
                TablePrinter::Count(vl + tl),
                TablePrinter::Count(vl + ts + tm + tl),
                "size(Vl+Θs,m,l)"});
  table.Print();
  st = table.WriteCsv(CsvPath(cli, "table3_comm"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  // Cross-check against the measured accounting, split by direction.
  TablePrinter measured(
      "Measured per participation (scalars, down | up)",
      {"Client", "All Small", "All Large", "HeteFedRec"});
  CommStats small = (*runner)->Run(Method::kAllSmall).comm;
  CommStats large = (*runner)->Run(Method::kAllLarge).comm;
  CommStats hete = (*runner)->Run(Method::kHeteFedRec).comm;
  bool agree = true;
  const Group groups[] = {Group::kSmall, Group::kMedium, Group::kLarge};
  const size_t expect_hete[] = {vs + ts, vm + ts + tm, vl + ts + tm + tl};
  auto split = [](const CommStats& c, Group g) {
    return TablePrinter::Num(c.AvgDownload(g), 0) + " | " +
           TablePrinter::Num(c.AvgUpload(g), 0);
  };
  for (int g = 0; g < kNumGroups; ++g) {
    measured.AddRow({GroupName(groups[g]), split(small, groups[g]),
                     split(large, groups[g]), split(hete, groups[g])});
    agree = agree &&
            small.AvgUpload(groups[g]) == static_cast<double>(vs + ts) &&
            large.AvgUpload(groups[g]) == static_cast<double>(vl + tl) &&
            hete.AvgUpload(groups[g]) ==
                static_cast<double>(expect_hete[g]);
    // Under the paper's accounting the download mirrors the upload
    // (full table + Θ both ways).
    if (!cfg.sparse_comm_accounting) {
      agree = agree &&
              hete.AvgDownload(groups[g]) ==
                  static_cast<double>(expect_hete[g]);
    }
  }
  measured.Print();
  std::printf("\nFormulas and measured costs agree: %s\n",
              agree ? "YES" : "NO");
  std::printf(
      "HeteFedRec's extra cost over a size-matched homogeneous scheme is "
      "only Θs (+Θm) — %zu (+%zu) scalars, negligible next to V (paper "
      "§V-F).\n\n",
      ts, tm);

  // Downlink under the delta-sync protocol (docs/SYNC.md): same training,
  // bit-identical metrics, but params_down counts only the stale
  // subscribed rows actually shipped. All Large shows the pure
  // interaction-proportional regime; HeteFedRec's medium/large clients
  // additionally subscribe to DDR's sampled correlation rows
  // (ddr_sample_rows per local epoch), which caps their reduction — the
  // regularizer, not the recommender, sets their download floor.
  ExperimentConfig delta_cfg = cfg;
  delta_cfg.sparse_comm_accounting = true;
  delta_cfg.full_downloads = false;
  delta_cfg.track_round_comm = true;  // per-round downlink evolution below
  ExperimentConfig dense_cfg = cfg;
  dense_cfg.sparse_comm_accounting = true;
  auto delta_runner = ExperimentRunner::Create(delta_cfg);
  auto dense_runner = ExperimentRunner::Create(dense_cfg);
  if (!delta_runner.ok()) return FailWith(delta_runner.status());
  if (!dense_runner.ok()) return FailWith(dense_runner.status());
  ExperimentResult large_delta = (*delta_runner)->Run(Method::kAllLarge);
  ExperimentResult large_dense = (*dense_runner)->Run(Method::kAllLarge);
  ExperimentResult hete_delta = (*delta_runner)->Run(Method::kHeteFedRec);
  ExperimentResult hete_dense = (*dense_runner)->Run(Method::kHeteFedRec);

  TablePrinter down(
      "Downlink per participation: full-table vs delta sync (scalars)",
      {"Client", "All Large full", "All Large delta", "HeteFedRec full",
       "HeteFedRec delta"});
  auto with_reduction = [](double full, double delta) {
    std::string s = TablePrinter::Num(delta, 0);
    if (delta > 0) s += " (" + TablePrinter::Num(full / delta, 1) + "x)";
    return s;
  };
  double worst_no_ddr = 1e300;
  for (int g = 0; g < kNumGroups; ++g) {
    const double lf = large_dense.comm.AvgDownload(groups[g]);
    const double ld = large_delta.comm.AvgDownload(groups[g]);
    const double hf = hete_dense.comm.AvgDownload(groups[g]);
    const double hd = hete_delta.comm.AvgDownload(groups[g]);
    if (ld > 0 && lf / ld < worst_no_ddr) worst_no_ddr = lf / ld;
    down.AddRow({GroupName(groups[g]), TablePrinter::Num(lf, 0),
                 with_reduction(lf, ld), TablePrinter::Num(hf, 0),
                 with_reduction(hf, hd)});
  }
  // Population-weighted mean download per download (downloads, not
  // uploads: under --straggler_slack the two counts differ).
  auto overall = [&](const CommStats& c) {
    size_t params = 0, n = 0;
    for (int g = 0; g < kNumGroups; ++g) {
      params += c.DownParams(groups[g]);
      n += c.Downloads(groups[g]);
    }
    return n > 0 ? static_cast<double>(params) / static_cast<double>(n) : 0.0;
  };
  {
    const double lf = overall(large_dense.comm), ld = overall(large_delta.comm);
    const double hf = overall(hete_dense.comm), hd = overall(hete_delta.comm);
    down.AddRow({"Overall", TablePrinter::Num(lf, 0), with_reduction(lf, ld),
                 TablePrinter::Num(hf, 0), with_reduction(hf, hd)});
  }
  down.Print();
  const bool metrics_identical =
      hete_delta.final_eval.overall.ndcg ==
          hete_dense.final_eval.overall.ndcg &&
      hete_delta.final_eval.overall.recall ==
          hete_dense.final_eval.overall.recall &&
      large_delta.final_eval.overall.ndcg ==
          large_dense.final_eval.overall.ndcg;
  std::printf(
      "\nDelta-sync metrics bit-identical to full downloads: %s "
      "(HeteFedRec NDCG %.6f vs %.6f); worst-group reduction without DDR "
      "subscriptions %.1fx\n",
      metrics_identical ? "YES" : "NO", hete_delta.final_eval.overall.ndcg,
      hete_dense.final_eval.overall.ndcg, worst_no_ddr);
  st = down.WriteCsv(CsvPath(cli, "table3_delta_downlink"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  // Round-by-round downlink under delta sync (CommStats::SnapshotRound via
  // track_round_comm): round 1 ships cold replicas in full; later rounds
  // decay toward the DDR-subscription floor for medium/large clients.
  const std::vector<CommRound>& rounds = hete_delta.round_comm;
  if (!rounds.empty()) {
    TablePrinter evo(
        "HeteFedRec delta-sync downlink per participation by round (scalars)",
        {"Round", "Us", "Um", "Ul", "Total down"});
    const size_t show = rounds.size() < 8 ? rounds.size() : 8;
    for (size_t r = 0; r < show; ++r) {
      evo.AddRow({TablePrinter::Count(r + 1),
                  TablePrinter::Num(rounds[r].AvgDownload(Group::kSmall), 0),
                  TablePrinter::Num(rounds[r].AvgDownload(Group::kMedium), 0),
                  TablePrinter::Num(rounds[r].AvgDownload(Group::kLarge), 0),
                  TablePrinter::Count(rounds[r].DownParams())});
    }
    if (show < rounds.size()) {
      const CommRound& last = rounds.back();
      evo.AddRow({"... " + TablePrinter::Count(rounds.size()),
                  TablePrinter::Num(last.AvgDownload(Group::kSmall), 0),
                  TablePrinter::Num(last.AvgDownload(Group::kMedium), 0),
                  TablePrinter::Num(last.AvgDownload(Group::kLarge), 0),
                  TablePrinter::Count(last.DownParams())});
    }
    evo.Print();
    st = evo.WriteCsv(CsvPath(cli, "table3_downlink_by_round"));
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  }
  return (agree && metrics_identical) ? 0 : 2;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
