// Crash-consistent resume, end to end: a run killed at an arbitrary round
// and resumed from its last run checkpoint finishes bit-identical to the
// uninterrupted run — metrics, history, comm/fault counters, the virtual
// clock, and the final model checkpoint bytes. Covered across every
// federated method, both base models, both schedules, with faults +
// admission + delta sync in the mix, plus the fingerprint guard.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/core/trainer.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.eval_every = 1;  // the restored history must cover epoch-1 points
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  return cfg;
}

ExperimentResult RunWith(const ExperimentConfig& cfg, Method method) {
  auto runner = ExperimentRunner::Create(cfg);
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  return (*runner)->Run(method);
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing file " << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void RemoveRunFiles(const std::string& ckpt) {
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".run").c_str());
}

// Runs `cfg` three ways — uninterrupted, killed at `stop_after_rounds`,
// and resumed from the kill's last run checkpoint — and asserts the
// resumed run is indistinguishable from the uninterrupted one.
void ExpectKillResumeEquivalent(ExperimentConfig cfg, Method method,
                                uint64_t stop_after_rounds,
                                const std::string& tag) {
  SCOPED_TRACE(tag);
  const std::string full_ckpt = testing::TempDir() + "/resume_" + tag + "_a";
  const std::string kill_ckpt = testing::TempDir() + "/resume_" + tag + "_b";
  RemoveRunFiles(full_ckpt);
  RemoveRunFiles(kill_ckpt);

  ExperimentConfig full_cfg = cfg;
  full_cfg.checkpoint_path = full_ckpt;
  ExperimentResult full = RunWith(full_cfg, method);

  ExperimentConfig kill_cfg = cfg;
  kill_cfg.checkpoint_path = kill_ckpt;
  kill_cfg.checkpoint_every = 1;
  kill_cfg.debug_stop_after_rounds = stop_after_rounds;
  ExperimentResult killed = RunWith(kill_cfg, method);
  // The kill fired: no final eval ran, no final model checkpoint exists,
  // but the last run checkpoint survived.
  EXPECT_EQ(killed.final_eval.overall.users, 0u);
  EXPECT_FALSE(std::ifstream(kill_ckpt).good());
  ASSERT_TRUE(std::ifstream(kill_ckpt + ".run").good())
      << "kill point left no run checkpoint";

  ExperimentConfig resume_cfg = kill_cfg;
  resume_cfg.debug_stop_after_rounds = 0;
  resume_cfg.resume_run = true;
  ExperimentResult resumed = RunWith(resume_cfg, method);

  ExpectSameEval(full.final_eval, resumed.final_eval);
  ASSERT_EQ(full.history.size(), resumed.history.size());
  for (size_t i = 0; i < full.history.size(); ++i) {
    EXPECT_EQ(full.history[i].epoch, resumed.history[i].epoch);
    ExpectSameEval(full.history[i].eval, resumed.history[i].eval);
    EXPECT_EQ(full.history[i].mean_train_loss,
              resumed.history[i].mean_train_loss);
    EXPECT_EQ(full.history[i].simulated_seconds,
              resumed.history[i].simulated_seconds);
  }
  EXPECT_EQ(full.comm.ExportCounters(), resumed.comm.ExportCounters());
  EXPECT_EQ(full.simulated_seconds, resumed.simulated_seconds);
  EXPECT_EQ(full.collapse_variance, resumed.collapse_variance);
  // The strongest form: the final model checkpoints are byte-identical.
  EXPECT_EQ(FileBytes(full_ckpt), FileBytes(kill_ckpt));
}

// Every federated method, both base models, killed three rounds into the
// synchronous schedule.
TEST(ResumeEquivalence, SyncKillResumeAllMethodsAndModels) {
  int i = 0;
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    for (Method method : kAllMethods) {
      if (method == Method::kStandalone) continue;
      ExperimentConfig cfg = SmallConfig();
      cfg.base_model = model;
      ExpectKillResumeEquivalent(cfg, method, 3,
                                 "sync_" + std::to_string(i++));
    }
  }
}

// A later kill point: the resume path must also work from an epoch
// boundary (mid_epoch = false in the sync schedule's final round write is
// never taken, so kill early in epoch 2 instead).
TEST(ResumeEquivalence, SyncKillResumeInSecondEpoch) {
  ExperimentConfig probe_cfg = SmallConfig();
  ExperimentConfig cfg = SmallConfig();
  // One participation per selected client per round: rounds so far track
  // merged rounds, so killing after "rounds in epoch 1 + 1" lands at the
  // start of epoch 2 whatever the round count per epoch is.
  probe_cfg.debug_stop_after_rounds = 0;
  auto runner = ExperimentRunner::Create(probe_cfg);
  ASSERT_TRUE(runner.ok());
  const size_t users = (*runner)->dataset().num_users();
  const uint64_t rounds_per_epoch =
      (users + cfg.clients_per_round - 1) / cfg.clients_per_round;
  ExpectKillResumeEquivalent(cfg, Method::kHeteFedRec, rounds_per_epoch + 1,
                             "sync_epoch2");
}

// Faults, admission control and backoff state all survive the kill: the
// injector draws are positional, the gate and admission windows are
// serialized, so the resumed run replays the identical fault schedule.
TEST(ResumeEquivalence, SyncKillResumeWithFaultsAndAdmission) {
  ExperimentConfig cfg = SmallConfig();
  cfg.fault_upload_loss = 0.05;
  cfg.fault_download_loss = 0.03;
  cfg.fault_crash = 0.02;
  cfg.fault_corrupt = 0.05;
  cfg.admission_control = true;
  cfg.admit_max_row_norm = 1.0;
  cfg.admit_outlier_z = 6.0;
  ExpectKillResumeEquivalent(cfg, Method::kHeteFedRec, 4, "sync_faulted");
}

// Delta-sync replicas (per-client row holdings + versions, LRU order)
// round-trip through the checkpoint too.
TEST(ResumeEquivalence, SyncKillResumeWithDeltaSyncReplicas) {
  ExperimentConfig cfg = SmallConfig();
  cfg.full_downloads = false;
  cfg.sync_replica_cap = 64;
  ExpectKillResumeEquivalent(cfg, Method::kHeteFedRec, 3, "sync_delta");
}

// The asynchronous schedule checkpoints at epoch boundaries (the queue is
// drained there); a kill mid-epoch-2 resumes from the epoch-1 boundary and
// replays epoch 2 bit-identically. rounds under async = merged updates.
TEST(ResumeEquivalence, AsyncKillResume) {
  ExperimentConfig cfg = SmallConfig();
  cfg.async_mode = true;
  cfg.async_dispatch_batch = 4;

  // Find a kill point inside epoch 2: total merges minus a few.
  ExperimentResult probe = RunWith(cfg, Method::kHeteFedRec);
  size_t total_merges = 0;
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    total_merges += probe.comm.Participations(g);
  }
  ASSERT_GT(total_merges, 8u);
  ExpectKillResumeEquivalent(cfg, Method::kHeteFedRec,
                             static_cast<uint64_t>(total_merges - 3),
                             "async");
}

TEST(ResumeEquivalence, AsyncKillResumeWithFaults) {
  ExperimentConfig cfg = SmallConfig();
  cfg.async_mode = true;
  cfg.fault_upload_loss = 0.05;
  cfg.fault_corrupt = 0.03;
  cfg.admission_control = true;
  cfg.admit_max_row_norm = 1.0;

  ExperimentResult probe = RunWith(cfg, Method::kHeteFedRec);
  size_t total_merges = 0;
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    total_merges += probe.comm.Participations(g);
  }
  ASSERT_GT(total_merges, 8u);
  ExpectKillResumeEquivalent(cfg, Method::kHeteFedRec,
                             static_cast<uint64_t>(total_merges - 3),
                             "async_faulted");
}

// Resuming under a different results-affecting config must refuse to run:
// the fingerprint guard aborts instead of silently mixing experiments.
TEST(ResumeEquivalenceDeathTest, FingerprintMismatchAborts) {
  const std::string ckpt = testing::TempDir() + "/resume_fpr_mismatch";
  RemoveRunFiles(ckpt);
  ExperimentConfig cfg = SmallConfig();
  cfg.checkpoint_path = ckpt;
  cfg.checkpoint_every = 1;
  cfg.debug_stop_after_rounds = 2;  // checkpoint after round 1 survives
  RunWith(cfg, Method::kHeteFedRec);
  ASSERT_TRUE(std::ifstream(ckpt + ".run").good());

  ExperimentConfig other = cfg;
  other.debug_stop_after_rounds = 0;
  other.resume_run = true;
  other.seed = 4242;  // results-affecting: different fingerprint
  EXPECT_DEATH(RunWith(other, Method::kHeteFedRec), "");
}

// Resuming with a missing run checkpoint is a hard error, not a silent
// fresh start.
TEST(ResumeEquivalenceDeathTest, MissingRunCheckpointAborts) {
  ExperimentConfig cfg = SmallConfig();
  cfg.checkpoint_path = testing::TempDir() + "/resume_missing_ckpt";
  RemoveRunFiles(cfg.checkpoint_path);
  cfg.resume_run = true;
  EXPECT_DEATH(RunWith(cfg, Method::kHeteFedRec), "");
}

}  // namespace
}  // namespace hetefedrec
