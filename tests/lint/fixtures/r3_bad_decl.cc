// Fixture: when placed under src/ (results-affecting code), an owned
// unordered declaration without an iteration-order-safe annotation must
// trip R3 even if it is never walked. The self-test copies this file into
// a temporary root's src/ tree to exercise that mode.
#include <string>
#include <unordered_map>

class Registry {
 public:
  int Lookup(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? -1 : it->second;
  }

 private:
  std::unordered_map<std::string, int> index_;  // finding (src/ only)
};
