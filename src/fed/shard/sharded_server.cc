#include "src/fed/shard/sharded_server.h"

#include <algorithm>

#include "src/math/init.h"
#include "src/util/telemetry/profiler.h"

namespace hetefedrec {

ShardedServer::ShardedServer(const Options& options)
    : aggregation_(options.base.aggregation),
      shared_aggregation_(options.base.shared_aggregation),
      view_(this) {
  const HeteroServer::Options& base = options.base;
  HFR_CHECK(!base.widths.empty());
  HFR_CHECK_GT(base.num_items, 0u);
  HFR_CHECK_GT(options.num_shards, 0u);
  HFR_CHECK_LE(options.num_shards, base.num_items);
  for (size_t s = 1; s < base.widths.size(); ++s) {
    HFR_CHECK_LT(base.widths[s - 1], base.widths[s]);
  }
  num_items_ = base.num_items;

  // Identical draw sequence to HeteroServer's constructor: the widest
  // table first, then one Xavier init per slot's Θ. Same seed, same bits.
  Rng rng(base.seed);
  const size_t max_width = base.widths.back();
  Matrix widest(base.num_items, max_width);
  InitNormal(&widest, base.embed_init_std, &rng);
  for (size_t w : base.widths) {
    tables_.push_back(widest.LeadingCols(w));
    FeedForwardNet theta(2 * w, {base.ffn_hidden[0], base.ffn_hidden[1]});
    theta.InitXavier(&rng);
    thetas_.push_back(std::move(theta));
  }

  const size_t S = options.num_shards;
  shards_.resize(S);
  shard_starts_.reserve(S);
  for (size_t i = 0; i < S; ++i) {
    Shard& sh = shards_[i];
    sh.lo = base.num_items * i / S;
    const size_t hi = base.num_items * (i + 1) / S;
    sh.rows = hi - sh.lo;
    sh.versions = VersionedTable(tables_.size(), sh.rows);
    sh.v_agg = Matrix(sh.rows, max_width);
    if (!shared_aggregation_) {
      for (size_t w : base.widths) sh.v_agg_per_slot.emplace_back(sh.rows, w);
    }
    shard_starts_.push_back(sh.lo);
  }

  segment_weight_.assign(tables_.size(), 0.0);
  slot_weight_.assign(tables_.size(), 0.0);
  theta_agg_.reserve(thetas_.size());
  for (const auto& t : thetas_) {
    theta_agg_.push_back(FeedForwardNet::ZerosLike(t));
  }
  theta_weight_.assign(thetas_.size(), 0.0);
  touched_mask_.assign(base.num_items, 0);
}

size_t ShardedServer::shard_of_row(size_t row) const {
  HFR_CHECK_LT(row, num_items_);
  const auto it =
      std::upper_bound(shard_starts_.begin(), shard_starts_.end(), row);
  return static_cast<size_t>(it - shard_starts_.begin()) - 1;
}

size_t ShardedServer::SlotParamCount(size_t slot) const {
  HFR_CHECK_LT(slot, tables_.size());
  return tables_[slot].size() + thetas_[slot].ParamCount();
}

void ShardedServer::MarkTouched(uint32_t row, Shard* shard) {
  HFR_CHECK_LT(row, touched_mask_.size());
  if (!touched_mask_[row]) {
    touched_mask_[row] = 1;
    shard->touched.push_back(row);
  }
}

void ShardedServer::BeginRound() {
  // Zero only what the previous round dirtied, exactly like HeteroServer —
  // per shard after an all-sparse round, everything after a dense round.
  for (Shard& sh : shards_) {
    if (round_has_dense_) {
      sh.v_agg.SetZero();
      for (auto& m : sh.v_agg_per_slot) m.SetZero();
    } else {
      for (uint32_t r : sh.touched) {
        double* row = sh.v_agg.Row(r - sh.lo);
        std::fill(row, row + sh.v_agg.cols(), 0.0);
        for (auto& m : sh.v_agg_per_slot) {
          double* srow = m.Row(r - sh.lo);
          std::fill(srow, srow + m.cols(), 0.0);
        }
      }
    }
    for (uint32_t r : sh.touched) touched_mask_[r] = 0;
    sh.touched.clear();
    // Lockstep: every shard's version table advances each round.
    sh.versions.AdvanceRound();
  }
  round_has_dense_ = false;

  std::fill(segment_weight_.begin(), segment_weight_.end(), 0.0);
  std::fill(slot_weight_.begin(), slot_weight_.end(), 0.0);
  for (auto& t : theta_agg_) t.SetZero();
  std::fill(theta_weight_.begin(), theta_weight_.end(), 0.0);
  round_open_ = true;
}

void ShardedServer::UploadDelta(const std::vector<LocalTaskSpec>& tasks,
                                const LocalUpdateResult& update,
                                double weight) {
  HFR_CHECK(round_open_);
  HFR_CHECK(!tasks.empty());
  HFR_CHECK_GE(weight, 0.0);
  const size_t client_width =
      update.sparse ? update.v_delta_sparse.width : update.v_delta.cols();
  HFR_CHECK_EQ(tasks.back().width, client_width);

  // Route each delta row to its shard's buffer. The scatter is the same
  // per-row Axpy HeteroServer performs into its monolithic buffer.
  const size_t slot = tasks.back().slot;
  if (!shared_aggregation_) {
    HFR_CHECK_LT(slot, tables_.size());
    HFR_CHECK_EQ(tables_[slot].cols(), client_width);
  }
  if (update.sparse) {
    const SparseRowUpdate& up = update.v_delta_sparse;
    for (size_t k = 0; k < up.num_rows(); ++k) {
      const uint32_t r = up.rows[k];
      Shard& sh = shards_[shard_of_row(r)];
      MarkTouched(r, &sh);
      double* dst = shared_aggregation_
                        ? sh.v_agg.Row(r - sh.lo)
                        : sh.v_agg_per_slot[slot].Row(r - sh.lo);
      Axpy(weight, up.RowData(k), dst, client_width);
      sh.upload_scalars += client_width;
    }
  } else {
    HFR_CHECK_EQ(update.v_delta.rows(), num_items_);
    round_has_dense_ = true;
    for (Shard& sh : shards_) {
      for (size_t r = 0; r < sh.rows; ++r) {
        double* dst = shared_aggregation_ ? sh.v_agg.Row(r)
                                          : sh.v_agg_per_slot[slot].Row(r);
        Axpy(weight, update.v_delta.Row(sh.lo + r), dst, client_width);
      }
      sh.upload_scalars += static_cast<uint64_t>(sh.rows) * client_width;
    }
  }

  if (shared_aggregation_) {
    for (size_t s = 0; s < tables_.size(); ++s) {
      if (width(s) <= client_width) segment_weight_[s] += weight;
    }
  } else {
    slot_weight_[slot] += weight;
  }

  HFR_CHECK_EQ(tasks.size(), update.theta_deltas.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    const size_t ts = tasks[t].slot;
    HFR_CHECK_LT(ts, theta_agg_.size());
    theta_agg_[ts].AddScaled(update.theta_deltas[t], weight);
    theta_weight_[ts] += weight;
  }
}

void ShardedServer::FinishRound() {
  HFR_PROFILE("apply");
  HFR_CHECK(round_open_);
  round_open_ = false;

  const bool all_rows = round_has_dense_;

  if (shared_aggregation_) {
    // Deterministic cross-shard merge order: for every (slot, segment)
    // pair, shards apply in ascending shard id, each replaying its touched
    // rows in upload order. Per-row arithmetic is identical to
    // HeteroServer's apply_row, so the result is bit-identical for any S.
    for (size_t s = 0; s < tables_.size(); ++s) {
      size_t col0 = 0;
      for (size_t seg = 0; seg <= s; ++seg) {
        const size_t col1 = width(seg);
        double seg_scale = 1.0;
        if (aggregation_ != AggregationMode::kSum) {
          if (segment_weight_[seg] == 0.0) {
            col0 = col1;
            continue;
          }
          seg_scale = 1.0 / segment_weight_[seg];
        }
        for (const Shard& sh : shards_) {
          auto apply_row = [&](size_t r) {
            const double* src = sh.v_agg.Row(r - sh.lo);
            double* dst = tables_[s].Row(r);
            for (size_t c = col0; c < col1; ++c) dst[c] += seg_scale * src[c];
          };
          if (all_rows) {
            for (size_t r = sh.lo; r < sh.lo + sh.rows; ++r) apply_row(r);
          } else {
            for (uint32_t r : sh.touched) apply_row(r);
          }
        }
        col0 = col1;
      }
    }
  } else {
    for (size_t s = 0; s < tables_.size(); ++s) {
      if (slot_weight_[s] == 0.0) continue;
      const double scale = aggregation_ == AggregationMode::kSum
                               ? 1.0
                               : 1.0 / slot_weight_[s];
      for (const Shard& sh : shards_) {
        if (all_rows) {
          for (size_t r = 0; r < sh.rows; ++r) {
            Axpy(scale, sh.v_agg_per_slot[s].Row(r),
                 tables_[s].Row(sh.lo + r), tables_[s].cols());
          }
        } else {
          for (uint32_t r : sh.touched) {
            Axpy(scale, sh.v_agg_per_slot[s].Row(r - sh.lo),
                 tables_[s].Row(r), tables_[s].cols());
          }
        }
      }
    }
  }

  // Θ aggregation is global — identical to HeteroServer.
  for (size_t s = 0; s < thetas_.size(); ++s) {
    if (theta_weight_[s] == 0.0) continue;
    const double scale = aggregation_ == AggregationMode::kSum
                             ? 1.0
                             : 1.0 / theta_weight_[s];
    thetas_[s].AddScaled(theta_agg_[s], scale);
  }

  // Version stamps: the changed-slot criterion uses the global weights, so
  // every shard stamps the same slots — dense rounds raise every shard's
  // StampAll floor in the same round (the lockstep invariant Snapshot
  // relies on).
  for (size_t s = 0; s < tables_.size(); ++s) {
    bool changed = false;
    if (shared_aggregation_) {
      for (size_t seg = 0; seg <= s && !changed; ++seg) {
        changed = segment_weight_[seg] > 0.0;
      }
    } else {
      changed = slot_weight_[s] > 0.0;
    }
    if (!changed) continue;
    for (Shard& sh : shards_) {
      if (all_rows) {
        sh.versions.StampAll(s);
      } else {
        for (uint32_t r : sh.touched) {
          sh.versions.Stamp(s, static_cast<uint32_t>(r - sh.lo));
        }
      }
    }
  }
}

void ShardedServer::ApplyUpdate(const std::vector<LocalTaskSpec>& tasks,
                                const LocalUpdateResult& update,
                                double scale) {
  HFR_CHECK(!round_open_);
  HFR_CHECK_GE(scale, 0.0);
  BeginRound();
  UploadDelta(tasks, update, scale);
  // Force sum semantics for the single accumulated update (see
  // HeteroServer::ApplyUpdate).
  const AggregationMode saved = aggregation_;
  aggregation_ = AggregationMode::kSum;
  FinishRound();
  aggregation_ = saved;
}

double ShardedServer::Distill(const DistillationOptions& options, Rng* rng) {
  HFR_PROFILE("distill");
  if (tables_.size() < 2) return 0.0;
  std::vector<Matrix*> ptrs;
  ptrs.reserve(tables_.size());
  for (auto& t : tables_) ptrs.push_back(&t);
  std::vector<ItemId> sampled;
  const double loss = EnsembleDistill(ptrs, options, rng, &sampled);
  for (size_t s = 0; s < tables_.size(); ++s) {
    for (ItemId i : sampled) {
      Shard& sh = shards_[shard_of_row(static_cast<size_t>(i))];
      sh.versions.Stamp(s, static_cast<uint32_t>(i - sh.lo));
    }
  }
  return loss;
}

void ShardedServer::StampRows(size_t slot,
                              const std::vector<uint32_t>& rows) {
  for (uint32_t r : rows) {
    Shard& sh = shards_[shard_of_row(r)];
    sh.versions.Stamp(slot, static_cast<uint32_t>(r - sh.lo));
  }
}

AdmissionDecision ShardedServer::Admit(
    const std::vector<LocalTaskSpec>& tasks, LocalUpdateResult* update) {
  HFR_CHECK(admission_ != nullptr);
  HFR_CHECK(!tasks.empty());
  return admission_->Admit(tasks.back().slot, update);
}

ServerSnapshot ShardedServer::Snapshot() const {
  ServerSnapshot snap;
  snap.tables = tables_;
  snap.thetas = thetas_;
  snap.version_round = shards_[0].versions.round();
  snap.version_floors.reserve(tables_.size());
  snap.versions.reserve(tables_.size());
  for (size_t s = 0; s < tables_.size(); ++s) {
    // Floors are identical across shards (dense rounds StampAll every
    // shard in lockstep), so shard 0's floor is the global floor.
    snap.version_floors.push_back(shards_[0].versions.floor_of(s));
    std::vector<uint64_t> merged;
    merged.reserve(num_items_);
    for (const Shard& sh : shards_) {
      const std::vector<uint64_t>& local = sh.versions.slot_versions(s);
      merged.insert(merged.end(), local.begin(), local.end());
    }
    snap.versions.push_back(std::move(merged));
  }
  return snap;
}

void ShardedServer::RestoreSnapshot(ServerSnapshot snapshot) {
  HFR_CHECK(!round_open_);
  HFR_CHECK_EQ(snapshot.tables.size(), tables_.size());
  HFR_CHECK_EQ(snapshot.thetas.size(), thetas_.size());
  for (size_t s = 0; s < tables_.size(); ++s) {
    HFR_CHECK_EQ(snapshot.tables[s].rows(), tables_[s].rows());
    HFR_CHECK_EQ(snapshot.tables[s].cols(), tables_[s].cols());
    HFR_CHECK_EQ(snapshot.thetas[s].ParamCount(), thetas_[s].ParamCount());
    HFR_CHECK_EQ(snapshot.versions[s].size(), num_items_);
  }
  tables_ = std::move(snapshot.tables);
  thetas_ = std::move(snapshot.thetas);
  for (Shard& sh : shards_) {
    std::vector<std::vector<uint64_t>> local(tables_.size());
    for (size_t s = 0; s < tables_.size(); ++s) {
      const std::vector<uint64_t>& global = snapshot.versions[s];
      local[s].assign(global.begin() + sh.lo,
                      global.begin() + sh.lo + sh.rows);
    }
    sh.versions.Restore(snapshot.version_round, snapshot.version_floors,
                        local);
  }
}

std::unique_ptr<ServerApi> MakeServer(const HeteroServer::Options& options,
                                      size_t server_shards) {
  if (server_shards == 0) return std::make_unique<HeteroServer>(options);
  ShardedServer::Options opts;
  opts.base = options;
  opts.num_shards = server_shards;
  return std::make_unique<ShardedServer>(opts);
}

}  // namespace hetefedrec
