#include "bench/common.h"

#include <gtest/gtest.h>

#include <vector>

namespace hetefedrec::bench {
namespace {

class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args) : args_(std::move(args)) {
    for (auto& a : args_) argv_.push_back(a.data());
  }
  int argc() { return static_cast<int>(argv_.size()); }
  char** argv() { return argv_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> argv_;
};

CommandLine ParsedCli(std::vector<std::string> args) {
  CommandLine cli;
  AddCommonFlags(&cli);
  args.insert(args.begin(), "prog");
  ArgvBuilder argv(args);
  EXPECT_TRUE(cli.Parse(argv.argc(), argv.argv()).ok());
  return cli;
}

TEST(BenchCommonTest, BenchPresetDefaults) {
  auto cfg = ConfigFromFlags(ParsedCli({}));
  ASSERT_TRUE(cfg.ok());
  EXPECT_DOUBLE_EQ(cfg->data_scale, 0.06);
  EXPECT_EQ(cfg->global_epochs, 18);
  EXPECT_EQ(cfg->clients_per_round, 64u);
  EXPECT_EQ(cfg->aggregation, AggregationMode::kMean);
}

TEST(BenchCommonTest, PaperPresetMatchesPaperProtocol) {
  auto cfg = ConfigFromFlags(ParsedCli({"--scale=paper"}));
  ASSERT_TRUE(cfg.ok());
  EXPECT_DOUBLE_EQ(cfg->data_scale, 1.0);
  EXPECT_EQ(cfg->global_epochs, 20);       // §V-F / Fig. 7
  EXPECT_EQ(cfg->clients_per_round, 256u); // §V-D
  EXPECT_EQ(cfg->eval_user_sample, 0u);    // evaluate everyone
}

TEST(BenchCommonTest, EpochOverrideApplies) {
  auto cfg = ConfigFromFlags(ParsedCli({"--epochs=5"}));
  ASSERT_TRUE(cfg.ok());
  EXPECT_EQ(cfg->global_epochs, 5);
}

TEST(BenchCommonTest, AggregationFlagParsing) {
  EXPECT_EQ(ConfigFromFlags(ParsedCli({"--agg=sum"}))->aggregation,
            AggregationMode::kSum);
  EXPECT_EQ(ConfigFromFlags(ParsedCli({"--agg=weighted"}))->aggregation,
            AggregationMode::kDataWeighted);
  EXPECT_FALSE(ConfigFromFlags(ParsedCli({"--agg=median"})).ok());
}

TEST(BenchCommonTest, UnknownScaleRejected) {
  EXPECT_FALSE(ConfigFromFlags(ParsedCli({"--scale=huge"})).ok());
}

TEST(BenchCommonTest, GridCoversSixCells) {
  auto grid = EvaluationGrid(ParsedCli({}));
  EXPECT_EQ(grid.size(), 6u);
}

TEST(BenchCommonTest, GridFilters) {
  auto only_ncf = EvaluationGrid(ParsedCli({"--model=ncf"}));
  EXPECT_EQ(only_ncf.size(), 3u);
  for (const auto& cell : only_ncf) EXPECT_EQ(cell.model, BaseModel::kNcf);

  auto only_ml = EvaluationGrid(ParsedCli({"--dataset=ml"}));
  EXPECT_EQ(only_ml.size(), 2u);
  for (const auto& cell : only_ml) EXPECT_EQ(cell.dataset, "ml");

  auto one_cell =
      EvaluationGrid(ParsedCli({"--dataset=douban", "--model=lightgcn"}));
  ASSERT_EQ(one_cell.size(), 1u);
  EXPECT_EQ(one_cell[0].model, BaseModel::kLightGcn);
}

TEST(BenchCommonTest, PaperDimsPerDataset) {
  ExperimentConfig cfg;
  cfg.dataset = "douban";
  ApplyPaperDims(&cfg);
  EXPECT_EQ(cfg.dims, (std::array<size_t, 3>{32, 64, 128}));
  cfg.dataset = "ml";
  ApplyPaperDims(&cfg);
  EXPECT_EQ(cfg.dims, (std::array<size_t, 3>{8, 16, 32}));
}

TEST(BenchCommonTest, CsvPathJoinsOutDir) {
  EXPECT_EQ(CsvPath(ParsedCli({"--out_dir=/tmp/x"}), "t1"), "/tmp/x/t1.csv");
}

}  // namespace
}  // namespace hetefedrec::bench
