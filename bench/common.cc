#include "bench/common.h"

#include <cstdio>
#include <sstream>

namespace hetefedrec::bench {

void AddCommonFlags(CommandLine* cli) {
  // Bench-suite flags; everything an experiment run understands (execution
  // toggles, sync, network, async, faults, sharding, telemetry) comes from
  // the shared registry so the bench suite and tools/hetefedrec_run can
  // never drift apart again.
  cli->AddFlag("scale", "bench", "scale preset: smoke | bench | paper");
  cli->AddFlag("dataset", "", "restrict to one dataset (ml|anime|douban)");
  cli->AddFlag("model", "", "restrict to one base model (ncf|lightgcn)");
  cli->AddFlag("epochs", "0", "override global epochs (0 = preset default)");
  cli->AddFlag("out_dir", ".", "directory for CSV output");
  RegisterExperimentFlags(cli);
}

StatusOr<ExperimentConfig> ConfigFromFlags(const CommandLine& cli) {
  ExperimentConfig cfg;

  // clients_per_round scales with the population: the paper selects 256 of
  // 6,040+ users per round (~4%), giving hundreds of aggregation rounds per
  // run. A shrunken population with round size 256 would collapse to a
  // couple of rounds per epoch and under-aggregate every method.
  const std::string scale = cli.GetString("scale");
  if (scale == "smoke") {
    cfg.data_scale = 0.02;
    cfg.global_epochs = 4;
    cfg.eval_user_sample = 150;
    cfg.ddr_sample_rows = 128;
    cfg.clients_per_round = 32;
  } else if (scale == "bench") {
    cfg.data_scale = 0.06;
    cfg.global_epochs = 18;
    cfg.eval_user_sample = 300;
    cfg.ddr_sample_rows = 256;
    cfg.clients_per_round = 64;
  } else if (scale == "paper") {
    cfg.data_scale = 1.0;
    cfg.global_epochs = 20;
    cfg.eval_user_sample = 0;
    cfg.ddr_sample_rows = 1024;
    cfg.clients_per_round = 256;
  } else {
    return Status::InvalidArgument("unknown --scale '" + scale + "'");
  }

  Status applied = ApplyExperimentFlags(cli, &cfg);
  if (!applied.ok()) return applied;

  int epochs = cli.GetInt("epochs");
  if (epochs > 0) cfg.global_epochs = epochs;
  return cfg;
}

void ApplyPaperDims(ExperimentConfig* config) {
  if (config->dataset == "douban") {
    config->dims = {32, 64, 128};
  } else {
    config->dims = {8, 16, 32};
  }
}

std::string CsvPath(const CommandLine& cli, const std::string& name) {
  return cli.GetString("out_dir") + "/" + name + ".csv";
}

std::vector<GridCase> EvaluationGrid(const CommandLine& cli) {
  const std::string only_model = cli.GetString("model");
  const std::string only_dataset = cli.GetString("dataset");
  std::vector<GridCase> grid;
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    if (!only_model.empty() &&
        !(only_model == "ncf" && model == BaseModel::kNcf) &&
        !(only_model == "lightgcn" && model == BaseModel::kLightGcn)) {
      continue;
    }
    for (const char* dataset : {"ml", "anime", "douban"}) {
      if (!only_dataset.empty() && only_dataset != dataset) continue;
      grid.push_back(GridCase{model, dataset});
    }
  }
  return grid;
}

int FailWith(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

}  // namespace hetefedrec::bench
