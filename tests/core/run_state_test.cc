#include "src/core/run_state.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/math/init.h"

namespace hetefedrec {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  InitNormal(&m, 1.0, &rng);
  return m;
}

RngState AdvancedRng(uint64_t seed, int draws) {
  Rng rng(seed);
  for (int i = 0; i < draws; ++i) rng.Uniform();
  return rng.SaveState();
}

void ExpectSameRng(const RngState& a, const RngState& b) {
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.s[i], b.s[i]);
  EXPECT_EQ(a.origin_seed, b.origin_seed);
  EXPECT_EQ(a.cached_normal, b.cached_normal);
  EXPECT_EQ(a.has_cached_normal, b.has_cached_normal);
}

RunState MakeState() {
  RunState st;
  st.fingerprint = 0xabcdef0123456789ULL;
  st.method = "hetefedrec";
  st.base_model = "ncf";
  st.next_epoch = 3;
  st.mid_epoch = 1;
  st.round_budget = 17;
  st.rounds_done = 42;
  st.dispatch_seq = 99;
  st.loss_sum = 1.25;
  st.loss_count = 11;
  st.sim_clock = 321.5;
  st.sched_rng = AdvancedRng(7, 13);
  st.kd_rng = AdvancedRng(8, 5);
  st.client_rngs = {AdvancedRng(9, 1), AdvancedRng(10, 2)};
  st.client_embeddings = {RandomMatrix(1, 8, 1), RandomMatrix(1, 16, 2)};
  st.tables = {RandomMatrix(5, 8, 3), RandomMatrix(5, 16, 4)};
  Rng trng(5);
  for (size_t w : {8u, 16u}) {  // one Θ per slot, like the trainer
    FeedForwardNet theta(2 * w, {4, 4});
    theta.InitXavier(&trng);
    st.thetas.push_back(std::move(theta));
  }
  st.version_round = 6;
  st.version_floors = {2, 3};
  st.versions = {{1, 2, 3, 4, 5}, {0, 0, 6, 6, 6}};
  st.queue_pending = {4, 1, 3};
  st.async_clock = 77.25;
  st.async_next_seq = 12;
  st.async_merged = 10;
  st.async_dropped = 2;
  st.gate_state = {0, 3, 0x3ff0000000000000ULL, 1, 0, 0};
  st.admission_history = {{0.5, 0.75}, {}};
  st.comm_counters = {1, 2, 3, 4, 5};
  EpochPoint p;
  p.epoch = 2;
  p.eval.overall.ndcg = 0.125;
  p.eval.overall.recall = 0.25;
  p.eval.overall.users = 60;
  p.eval.per_group[1].ndcg = 0.0625;
  p.mean_train_loss = 0.5;
  p.simulated_seconds = 300.0;
  st.history.push_back(p);
  st.has_replicas = 1;
  ReplicaSnapshot r0;
  r0.slot_plus_one = 2;
  r0.rows = {3, 0, 4};
  r0.versions = {1, 5, 5};
  st.replicas = {r0, ReplicaSnapshot{}};
  return st;
}

TEST(RunStateTest, RoundTripsEveryField) {
  const std::string path = TempPath("run_state_rt.run");
  const RunState st = MakeState();
  ASSERT_TRUE(SaveRunState(path, st).ok());
  auto loaded = LoadRunState(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const RunState& b = *loaded;

  EXPECT_EQ(b.fingerprint, st.fingerprint);
  EXPECT_EQ(b.method, st.method);
  EXPECT_EQ(b.base_model, st.base_model);
  EXPECT_EQ(b.next_epoch, st.next_epoch);
  EXPECT_EQ(b.mid_epoch, st.mid_epoch);
  EXPECT_EQ(b.round_budget, st.round_budget);
  EXPECT_EQ(b.rounds_done, st.rounds_done);
  EXPECT_EQ(b.dispatch_seq, st.dispatch_seq);
  EXPECT_EQ(b.loss_sum, st.loss_sum);
  EXPECT_EQ(b.loss_count, st.loss_count);
  EXPECT_EQ(b.sim_clock, st.sim_clock);
  ExpectSameRng(b.sched_rng, st.sched_rng);
  ExpectSameRng(b.kd_rng, st.kd_rng);
  ASSERT_EQ(b.client_rngs.size(), st.client_rngs.size());
  for (size_t i = 0; i < st.client_rngs.size(); ++i) {
    ExpectSameRng(b.client_rngs[i], st.client_rngs[i]);
  }
  ASSERT_EQ(b.client_embeddings.size(), st.client_embeddings.size());
  for (size_t i = 0; i < st.client_embeddings.size(); ++i) {
    ASSERT_TRUE(b.client_embeddings[i].SameShape(st.client_embeddings[i]));
    for (size_t k = 0; k < st.client_embeddings[i].size(); ++k) {
      EXPECT_EQ(b.client_embeddings[i].data()[k],
                st.client_embeddings[i].data()[k]);
    }
  }
  ASSERT_EQ(b.tables.size(), st.tables.size());
  for (size_t i = 0; i < st.tables.size(); ++i) {
    for (size_t k = 0; k < st.tables[i].size(); ++k) {
      EXPECT_EQ(b.tables[i].data()[k], st.tables[i].data()[k]);
    }
  }
  ASSERT_EQ(b.thetas.size(), st.thetas.size());
  for (size_t l = 0; l < st.thetas[0].num_layers(); ++l) {
    for (size_t k = 0; k < st.thetas[0].weight(l).size(); ++k) {
      EXPECT_EQ(b.thetas[0].weight(l).data()[k],
                st.thetas[0].weight(l).data()[k]);
    }
  }
  EXPECT_EQ(b.version_round, st.version_round);
  EXPECT_EQ(b.version_floors, st.version_floors);
  EXPECT_EQ(b.versions, st.versions);
  EXPECT_EQ(b.queue_pending, st.queue_pending);
  EXPECT_EQ(b.async_clock, st.async_clock);
  EXPECT_EQ(b.async_next_seq, st.async_next_seq);
  EXPECT_EQ(b.async_merged, st.async_merged);
  EXPECT_EQ(b.async_dropped, st.async_dropped);
  EXPECT_EQ(b.gate_state, st.gate_state);
  EXPECT_EQ(b.admission_history, st.admission_history);
  EXPECT_EQ(b.comm_counters, st.comm_counters);
  ASSERT_EQ(b.history.size(), 1u);
  EXPECT_EQ(b.history[0].epoch, st.history[0].epoch);
  EXPECT_EQ(b.history[0].eval.overall.ndcg, st.history[0].eval.overall.ndcg);
  EXPECT_EQ(b.history[0].eval.overall.recall,
            st.history[0].eval.overall.recall);
  EXPECT_EQ(b.history[0].eval.overall.users,
            st.history[0].eval.overall.users);
  EXPECT_EQ(b.history[0].eval.per_group[1].ndcg,
            st.history[0].eval.per_group[1].ndcg);
  EXPECT_EQ(b.history[0].mean_train_loss, st.history[0].mean_train_loss);
  EXPECT_EQ(b.history[0].simulated_seconds,
            st.history[0].simulated_seconds);
  EXPECT_EQ(b.has_replicas, st.has_replicas);
  ASSERT_EQ(b.replicas.size(), 2u);
  EXPECT_EQ(b.replicas[0].slot_plus_one, 2u);
  EXPECT_EQ(b.replicas[0].rows, st.replicas[0].rows);
  EXPECT_EQ(b.replicas[0].versions, st.replicas[0].versions);
  EXPECT_EQ(b.replicas[1].slot_plus_one, 0u);
}

TEST(RunStateTest, AtomicSaveLeavesNoTempFile) {
  const std::string path = TempPath("run_state_atomic.run");
  ASSERT_TRUE(SaveRunState(path, MakeState()).ok());
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  // Overwriting an existing checkpoint also succeeds (rename semantics).
  ASSERT_TRUE(SaveRunState(path, MakeState()).ok());
  EXPECT_TRUE(LoadRunState(path).ok());
}

TEST(RunStateTest, MissingFileIsAnError) {
  EXPECT_FALSE(LoadRunState(TempPath("does_not_exist.run")).ok());
}

TEST(RunStateTest, TruncatedFileIsAnError) {
  const std::string path = TempPath("run_state_trunc.run");
  ASSERT_TRUE(SaveRunState(path, MakeState()).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_FALSE(LoadRunState(path).ok());
}

TEST(RunStateTest, GarbageHeaderIsAnError) {
  const std::string path = TempPath("run_state_garbage.run");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << "not a checkpoint at all";
  out.close();
  EXPECT_FALSE(LoadRunState(path).ok());
}

TEST(RunStateTest, FingerprintCoversResultsAffectingKnobsOnly) {
  ExperimentConfig a;
  const uint64_t base = ConfigFingerprint(a, "hetefedrec");
  EXPECT_EQ(base, ConfigFingerprint(a, "hetefedrec"));
  EXPECT_NE(base, ConfigFingerprint(a, "all_small"));

  // Results-affecting knobs change the fingerprint...
  ExperimentConfig b = a;
  b.seed = 1234;
  EXPECT_NE(base, ConfigFingerprint(b, "hetefedrec"));
  b = a;
  b.fault_corrupt = 0.01;
  EXPECT_NE(base, ConfigFingerprint(b, "hetefedrec"));
  b = a;
  b.admission_control = true;
  EXPECT_NE(base, ConfigFingerprint(b, "hetefedrec"));

  // ...while IO/perf plumbing does not: the same run can resume under a
  // different thread count or checkpoint cadence.
  b = a;
  b.num_threads = 8;
  b.checkpoint_path = "/tmp/elsewhere.ckpt";
  b.checkpoint_every = 3;
  b.resume_run = true;
  b.debug_stop_after_rounds = 5;
  EXPECT_EQ(base, ConfigFingerprint(b, "hetefedrec"));
}

}  // namespace
}  // namespace hetefedrec
