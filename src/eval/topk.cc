#include "src/eval/topk.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace hetefedrec {

namespace {
// Candidate lists below this size go straight to the heap: two histogram
// passes plus a pool gather cannot beat one bounded-heap sweep over a few
// cache lines of scores.
constexpr size_t kCascadeMinN = 256;
// Histogram resolution of the threshold cascade. With uniform-ish scores
// the surviving pool is ~n/kCascadeBuckets · (buckets at or above the
// threshold) + k entries, so 64 buckets keep the final sort tiny without
// a large per-user counter reset.
constexpr size_t kCascadeBuckets = 64;
}  // namespace

void TopKSelector::Begin(size_t k, const std::vector<bool>* mask) {
  k_ = k;
  mask_ = mask;
  heap_.clear();
  heapified_ = false;
  if (heap_.capacity() < k) heap_.reserve(k);
}

void TopKSelector::Heapify() {
  std::make_heap(heap_.begin(), heap_.end(), Better);
  heapified_ = true;
  worst_ = heap_.front().score;
  worst_id_ = heap_.front().id;
}

void TopKSelector::ReplaceRoot(double score, ItemId id) {
  const size_t size = heap_.size();
  size_t pos = 0;
  heap_[0] = Entry{score, id};
  while (true) {
    size_t child = 2 * pos + 1;
    if (child >= size) break;
    // Sift towards the *worse* child: the heap keeps the worst retained
    // entry at the front.
    const size_t right = child + 1;
    if (right < size && Better(heap_[child], heap_[right])) child = right;
    if (!Better(heap_[pos], heap_[child])) break;
    std::swap(heap_[pos], heap_[child]);
    pos = child;
  }
  worst_ = heap_.front().score;
  worst_id_ = heap_.front().id;
}

void TopKSelector::Push(ItemId first, const double* scores, size_t n) {
  const std::vector<bool>* mask = mask_;
  size_t i = 0;
  // Warm-up: collect the first k entries unordered, heapify on the k-th.
  while (!heapified_ && i < n) {
    if (k_ == 0) return;
    const ItemId id = static_cast<ItemId>(first + i);
    if (mask == nullptr || !(*mask)[id]) {
      heap_.push_back(Entry{scores[i], id});
      if (heap_.size() == k_) Heapify();
    }
    ++i;
  }
  for (; i < n; ++i) {
    const ItemId id = static_cast<ItemId>(first + i);
    if (mask != nullptr && (*mask)[id]) continue;
    // Hot reject: almost every item scores strictly below the current
    // k-th best and costs exactly one compare.
    const double s = scores[i];
    if (s < worst_) continue;
    if (s == worst_ && id > worst_id_) continue;
    ReplaceRoot(s, id);
  }
}

void TopKSelector::PushIds(const ItemId* ids, const double* scores, size_t n) {
  const std::vector<bool>* mask = mask_;
  size_t i = 0;
  while (!heapified_ && i < n) {
    if (k_ == 0) return;
    if (mask == nullptr || !(*mask)[ids[i]]) {
      heap_.push_back(Entry{scores[i], ids[i]});
      if (heap_.size() == k_) Heapify();
    }
    ++i;
  }
  for (; i < n; ++i) {
    if (mask != nullptr && (*mask)[ids[i]]) continue;
    const double s = scores[i];
    if (s < worst_) continue;
    if (s == worst_ && ids[i] > worst_id_) continue;
    ReplaceRoot(s, ids[i]);
  }
}

void TopKSelector::Finish(std::vector<ItemId>* out) {
  std::sort(heap_.begin(), heap_.end(), Better);
  out->resize(heap_.size());
  for (size_t i = 0; i < heap_.size(); ++i) (*out)[i] = heap_[i].id;
  heap_.clear();
  heapified_ = false;
  mask_ = nullptr;
  k_ = 0;
}

void TopKSelector::SelectMasked(const std::vector<double>& scores,
                                const std::vector<bool>& masked, size_t k,
                                std::vector<ItemId>* out) {
  HFR_CHECK_EQ(scores.size(), masked.size());
  Begin(k, &masked);
  Push(0, scores.data(), scores.size());
  Finish(out);
}

void TopKSelector::SelectFromCandidates(const std::vector<ItemId>& ids,
                                        const std::vector<double>& scores,
                                        size_t k, std::vector<ItemId>* out) {
  HFR_CHECK_EQ(ids.size(), scores.size());
  const size_t n = ids.size();
  k = std::min(k, n);
  if (k == 0) {
    out->clear();
    return;
  }
  // Path choice: the bounded heap does one compare per element plus
  // ~k·ln(n/k) sift-downs — unbeatable while k << n. Once k is a sizable
  // fraction of n the replacement churn grows and the histogram cascade's
  // fixed three passes win; the cutover is empirical (BM_TopKCandidates).
  if (n >= kCascadeMinN && k >= n / 8 &&
      SelectCascade(ids.data(), scores.data(), n, k, out)) {
    return;
  }
  Begin(k, nullptr);
  PushIds(ids.data(), scores.data(), n);
  Finish(out);
}

bool TopKSelector::SelectCascade(const ItemId* ids, const double* scores,
                                 size_t n, size_t k,
                                 std::vector<ItemId>* out) {
  double lo = scores[0];
  double hi = scores[0];
  for (size_t i = 1; i < n; ++i) {
    lo = std::min(lo, scores[i]);
    hi = std::max(hi, scores[i]);
  }
  // Degenerate range: all scores equal, ±inf endpoints, a finite range
  // whose width overflows to +inf (e.g. -1e308..1e308), or a subnormal
  // width whose reciprocal overflows — any of these would feed NaN into
  // the bucket index cast (UB). The histogram cannot discriminate there;
  // caller falls back to the exact heap.
  const double width = hi - lo;
  if (!std::isfinite(lo) || !std::isfinite(hi) || !std::isfinite(width) ||
      width <= 0.0) {
    return false;
  }
  const double inv_width = static_cast<double>(kCascadeBuckets) / width;
  if (!std::isfinite(inv_width)) return false;

  // Pass 1: histogram scores into kCascadeBuckets equal-width buckets,
  // bucket 0 holding the highest scores; remember each entry's bucket so
  // the gather pass below is a table lookup, not a float recompute.
  bucket_counts_.assign(kCascadeBuckets, 0);
  bucket_of_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t b = std::min(static_cast<size_t>((hi - scores[i]) * inv_width),
                              kCascadeBuckets - 1);
    bucket_of_[i] = static_cast<uint8_t>(b);
    bucket_counts_[b]++;
  }

  // The threshold bucket: the first one where the running count reaches k.
  // Every entry in a strictly higher bucket is in the top-k; entries in the
  // threshold bucket compete on the exact comparator.
  size_t threshold = 0;
  size_t above = 0;
  while (above + bucket_counts_[threshold] < k) {
    above += bucket_counts_[threshold];
    ++threshold;
  }

  // Pass 2: gather the surviving pool and rank it exactly.
  cascade_pool_.clear();
  for (size_t i = 0; i < n; ++i) {
    if (bucket_of_[i] <= threshold) {
      cascade_pool_.push_back(Entry{scores[i], ids[i]});
    }
  }
  HFR_CHECK_GE(cascade_pool_.size(), k);
  std::partial_sort(cascade_pool_.begin(), cascade_pool_.begin() + k,
                    cascade_pool_.end(), Better);
  out->resize(k);
  for (size_t i = 0; i < k; ++i) (*out)[i] = cascade_pool_[i].id;
  return true;
}

void TopKSelector::SelectMaskedReference(const std::vector<double>& scores,
                                         const std::vector<bool>& masked,
                                         size_t k,
                                         std::vector<ItemId>* out) {
  HFR_CHECK_EQ(scores.size(), masked.size());
  ref_ids_.clear();
  ref_ids_.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!masked[i]) ref_ids_.push_back(static_cast<ItemId>(i));
  }
  k = std::min(k, ref_ids_.size());
  // Stable ordering for ties: higher score first, then lower item id.
  auto better = [&scores](ItemId a, ItemId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  std::partial_sort(ref_ids_.begin(), ref_ids_.begin() + k, ref_ids_.end(),
                    better);
  out->assign(ref_ids_.begin(), ref_ids_.begin() + k);
}

void TopKSelector::SelectFromCandidatesReference(
    const std::vector<ItemId>& ids, const std::vector<double>& scores,
    size_t k, std::vector<ItemId>* out) {
  HFR_CHECK_EQ(ids.size(), scores.size());
  ref_order_.resize(ids.size());
  for (size_t i = 0; i < ref_order_.size(); ++i) ref_order_[i] = i;
  k = std::min(k, ref_order_.size());
  auto better = [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return ids[a] < ids[b];
  };
  std::partial_sort(ref_order_.begin(), ref_order_.begin() + k,
                    ref_order_.end(), better);
  out->resize(k);
  for (size_t i = 0; i < k; ++i) (*out)[i] = ids[ref_order_[i]];
}

}  // namespace hetefedrec
