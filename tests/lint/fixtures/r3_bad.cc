// Fixture: unannotated walks over unordered containers must trip R3.
#include <unordered_map>
#include <unordered_set>
#include <vector>

// hfr-lint: iteration-order-safe(fixture decl annotated so only the walks below are findings)
static std::unordered_map<int, double> weights;
// hfr-lint: iteration-order-safe(fixture decl annotated so only the walks below are findings)
static std::unordered_set<int> members;

double SumWeights() {
  double total = 0.0;
  for (const auto& kv : weights) total += kv.second;  // finding: range-for walk
  return total;
}

std::vector<int> CopyOut() {
  return std::vector<int>(members.begin(), members.end());  // finding: iterator walk
}
