#include "src/data/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace hetefedrec {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(CsvTest, RoundTrip) {
  std::vector<Interaction> xs = {{0, 1}, {0, 2}, {1, 0}, {2, 2}};
  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(SaveInteractionsCsv(path, xs).ok());
  size_t users = 0, items = 0;
  auto loaded = LoadInteractionsCsv(path, &users, &items);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 4u);
  EXPECT_EQ(users, 3u);
  EXPECT_EQ(items, 3u);
  std::remove(path.c_str());
}

TEST(CsvTest, RemapsSparseIdsDense) {
  std::string path = TempPath("sparse.csv");
  {
    std::ofstream out(path);
    out << "1000,777\n1000,888\n2000,777\n";
  }
  size_t users = 0, items = 0;
  auto loaded = LoadInteractionsCsv(path, &users, &items);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(users, 2u);
  EXPECT_EQ(items, 2u);
  // First appearance order: user 1000 -> 0, 2000 -> 1; item 777 -> 0.
  EXPECT_EQ((*loaded)[0].user, 0);
  EXPECT_EQ((*loaded)[0].item, 0);
  EXPECT_EQ((*loaded)[2].user, 1);
  EXPECT_EQ((*loaded)[2].item, 0);
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderRowSkipped) {
  std::string path = TempPath("header.csv");
  {
    std::ofstream out(path);
    out << "user,item\n3,4\n";
  }
  auto loaded = LoadInteractionsCsv(path, nullptr, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTest, ExtraRatingColumnIgnored) {
  std::string path = TempPath("rating.csv");
  {
    std::ofstream out(path);
    out << "1,2,5\n1,3,1\n";
  }
  auto loaded = LoadInteractionsCsv(path, nullptr, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);  // both binarized to positives
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  auto loaded = LoadInteractionsCsv(TempPath("nope.csv"), nullptr, nullptr);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, MalformedRowFails) {
  std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "1,2\nxyz,abc\n";
  }
  auto loaded = LoadInteractionsCsv(path, nullptr, nullptr);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CsvTest, TooFewFieldsFails) {
  std::string path = TempPath("narrow.csv");
  {
    std::ofstream out(path);
    out << "42\n";
  }
  EXPECT_FALSE(LoadInteractionsCsv(path, nullptr, nullptr).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, EmptyLinesSkipped) {
  std::string path = TempPath("empty_lines.csv");
  {
    std::ofstream out(path);
    out << "1,2\n\n3,4\n";
  }
  auto loaded = LoadInteractionsCsv(path, nullptr, nullptr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetefedrec
