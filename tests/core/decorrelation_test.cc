#include "src/core/decorrelation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/math/adam.h"
#include "src/math/eigen.h"
#include "src/math/init.h"
#include "src/math/stats.h"

namespace hetefedrec {
namespace {

Matrix CorrelatedTable(size_t rows, size_t cols, uint64_t seed) {
  // All columns are noisy copies of one factor: heavily collapsed.
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    double t = rng.Normal();
    for (size_t c = 0; c < cols; ++c) m(r, c) = t + 0.05 * rng.Normal();
  }
  return m;
}

Matrix IsotropicTable(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  InitNormal(&m, 1.0, &rng);
  return m;
}

TEST(DecorrelationTest, LossHigherForCorrelatedTable) {
  double collapsed = DecorrelationLossAndGrad(CorrelatedTable(300, 6, 1), 1.0,
                                              0, nullptr, nullptr);
  double isotropic = DecorrelationLossAndGrad(IsotropicTable(300, 6, 2), 1.0,
                                              0, nullptr, nullptr);
  EXPECT_GT(collapsed, isotropic);
  // Fully correlated: C ~ all-ones -> ||C||_F ~ N -> loss ~ 1.
  EXPECT_NEAR(collapsed, 1.0, 0.05);
  // Independent columns: C ~ I -> loss ~ sqrt(N)/N = 1/sqrt(N).
  EXPECT_NEAR(isotropic, 1.0 / std::sqrt(6.0), 0.05);
}

TEST(DecorrelationTest, GradientDescendsTheLossUnderAdam) {
  // Matches real usage: clients feed the DDR gradient to Adam (lr 0.001-
  // 0.01); plain gradient steps would crawl because the loss scales the
  // gradient by 1/(M·N·||C||_F).
  Matrix v = CorrelatedTable(120, 5, 3);
  double before = DecorrelationLossAndGrad(v, 1.0, 0, nullptr, nullptr);
  AdamOptions opt;
  opt.lr = 0.01;
  Adam adam(opt);
  for (int step = 0; step < 300; ++step) {
    Matrix grad(v.rows(), v.cols());
    DecorrelationLossAndGrad(v, 1.0, 0, nullptr, &grad);
    adam.Step(&v, grad);
  }
  double after = DecorrelationLossAndGrad(v, 1.0, 0, nullptr, nullptr);
  EXPECT_LT(after, before * 0.7);
}

TEST(DecorrelationTest, OptimizationReducesSingularValueVariance) {
  // The Table V story: descending Lreg equalizes the covariance
  // eigenvalues.
  Matrix v = CorrelatedTable(200, 4, 5);
  // Normalize scale so the eigenvalue variance comparison is meaningful.
  double before = SingularValueVariance(StandardizeColumns(v));
  AdamOptions opt;
  opt.lr = 0.01;
  Adam adam(opt);
  for (int step = 0; step < 300; ++step) {
    Matrix grad(v.rows(), v.cols());
    DecorrelationLossAndGrad(v, 1.0, 0, nullptr, &grad);
    adam.Step(&v, grad);
  }
  double after = SingularValueVariance(StandardizeColumns(v));
  EXPECT_LT(after, before * 0.5);
}

TEST(DecorrelationTest, GradientScalesLinearlyWithAlpha) {
  Matrix v = CorrelatedTable(80, 4, 7);
  Matrix g1(v.rows(), v.cols());
  Matrix g2(v.rows(), v.cols());
  DecorrelationLossAndGrad(v, 1.0, 0, nullptr, &g1);
  DecorrelationLossAndGrad(v, 2.0, 0, nullptr, &g2);
  for (size_t i = 0; i < g1.data().size(); ++i) {
    EXPECT_NEAR(g2.data()[i], 2.0 * g1.data()[i], 1e-12);
  }
}

TEST(DecorrelationTest, LossInvariantToColumnScaling) {
  // Correlation is scale-free; standardization must absorb column scales.
  Matrix v = CorrelatedTable(150, 4, 9);
  double base = DecorrelationLossAndGrad(v, 1.0, 0, nullptr, nullptr);
  Matrix scaled = v;
  for (size_t r = 0; r < scaled.rows(); ++r) {
    scaled(r, 1) *= 7.0;
    scaled(r, 3) *= 0.01;
  }
  double after = DecorrelationLossAndGrad(scaled, 1.0, 0, nullptr, nullptr);
  // The eps guard in the standardization makes invariance approximate.
  EXPECT_NEAR(base, after, 1e-3);
}

TEST(DecorrelationTest, GradientColumnMeansNearZero) {
  // Exact centering backprop: the gradient of each column sums to ~0.
  Matrix v = CorrelatedTable(100, 5, 11);
  Matrix grad(v.rows(), v.cols());
  DecorrelationLossAndGrad(v, 1.0, 0, nullptr, &grad);
  auto means = ColumnMeans(grad);
  for (double m : means) EXPECT_NEAR(m, 0.0, 1e-12);
}

TEST(DecorrelationTest, RowSamplingApproximatesFullLoss) {
  Matrix v = CorrelatedTable(2000, 4, 13);
  double full = DecorrelationLossAndGrad(v, 1.0, 0, nullptr, nullptr);
  Rng rng(17);
  double sampled = DecorrelationLossAndGrad(v, 1.0, 500, &rng, nullptr);
  EXPECT_NEAR(sampled, full, 0.1 * full);
}

TEST(DecorrelationTest, DegenerateInputsSafe) {
  Matrix one_row(1, 4);
  EXPECT_DOUBLE_EQ(
      DecorrelationLossAndGrad(one_row, 1.0, 0, nullptr, nullptr), 0.0);
  // Constant columns: loss must be finite (eps guards the sd).
  Matrix constant(50, 3);
  constant.Fill(2.5);
  double loss = DecorrelationLossAndGrad(constant, 1.0, 0, nullptr, nullptr);
  EXPECT_FALSE(std::isnan(loss));
}

TEST(DecorrelationTest, ZeroAlphaComputesLossWithoutGrad) {
  Matrix v = CorrelatedTable(60, 4, 19);
  Matrix grad(v.rows(), v.cols());
  double loss = DecorrelationLossAndGrad(v, 0.0, 0, nullptr, &grad);
  EXPECT_GT(loss, 0.0);
  EXPECT_DOUBLE_EQ(grad.MaxAbs(), 0.0);
}

}  // namespace
}  // namespace hetefedrec
