// Client selection: the paper's shuffled-queue protocol (§V-D).
//
// "At the beginning of an epoch, the server shuffles the queue of clients.
//  Then, at each epoch, there are several rounds for the central server to
//  traverse the client queue. During each round, the central server selects
//  256 users for training."
#ifndef HETEFEDREC_FED_SCHEDULER_H_
#define HETEFEDREC_FED_SCHEDULER_H_

#include <vector>

#include "src/data/types.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Produces per-epoch round batches covering every client once.
class RoundScheduler {
 public:
  /// \param num_users total client population.
  /// \param clients_per_round batch size (paper: 256).
  RoundScheduler(size_t num_users, size_t clients_per_round);

  /// Shuffles the queue and splits it into consecutive round batches. Every
  /// user appears in exactly one batch; the last batch may be smaller.
  std::vector<std::vector<UserId>> EpochBatches(Rng* rng) const;

  size_t rounds_per_epoch() const;

 private:
  size_t num_users_;
  size_t clients_per_round_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SCHEDULER_H_
