#include "src/fed/sync/versioned_table.h"

namespace hetefedrec {

VersionedTable::VersionedTable(size_t num_slots, size_t num_rows)
    : num_rows_(num_rows) {
  HFR_CHECK_GT(num_slots, 0u);
  HFR_CHECK_GT(num_rows, 0u);
  versions_.assign(num_slots, std::vector<uint64_t>(num_rows, 0));
  floor_.assign(num_slots, 0);
}

}  // namespace hetefedrec
