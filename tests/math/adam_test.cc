#include "src/math/adam.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hetefedrec {
namespace {

TEST(AdamTest, FirstStepMovesByLearningRate) {
  // With bias correction, the first Adam step is ±lr for any nonzero grad.
  AdamOptions opt;
  opt.lr = 0.1;
  Adam adam(opt);
  Matrix p(1, 2);
  Matrix g(1, 2);
  g(0, 0) = 5.0;
  g(0, 1) = -0.001;
  adam.Step(&p, g);
  EXPECT_NEAR(p(0, 0), -0.1, 1e-6);
  EXPECT_NEAR(p(0, 1), 0.1, 1e-3);  // eps slightly damps tiny grads
}

TEST(AdamTest, ZeroGradLeavesParamsFixed) {
  Adam adam;
  Matrix p(2, 2);
  p.Fill(3.0);
  Matrix g(2, 2);
  adam.Step(&p, g);
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(p(r, c), 3.0);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize f(x) = (x - 3)^2; gradient 2(x-3).
  AdamOptions opt;
  opt.lr = 0.05;
  Adam adam(opt);
  Matrix x(1, 1);
  for (int i = 0; i < 2000; ++i) {
    Matrix g(1, 1);
    g(0, 0) = 2.0 * (x(0, 0) - 3.0);
    adam.Step(&x, g);
  }
  EXPECT_NEAR(x(0, 0), 3.0, 1e-3);
}

TEST(AdamTest, ConvergesOnRosenbrockStart) {
  // A harder anisotropic objective: f = 100(y - x^2)^2 + (1-x)^2.
  AdamOptions opt;
  opt.lr = 0.01;
  Adam adam(opt);
  Matrix p(1, 2);
  p(0, 0) = -1.0;
  p(0, 1) = 1.0;
  for (int i = 0; i < 20000; ++i) {
    double x = p(0, 0), y = p(0, 1);
    Matrix g(1, 2);
    g(0, 0) = -400.0 * x * (y - x * x) - 2.0 * (1.0 - x);
    g(0, 1) = 200.0 * (y - x * x);
    adam.Step(&p, g);
  }
  EXPECT_NEAR(p(0, 0), 1.0, 0.05);
  EXPECT_NEAR(p(0, 1), 1.0, 0.1);
}

TEST(AdamTest, ResetClearsState) {
  Adam adam;
  Matrix p(1, 1);
  Matrix g(1, 1);
  g(0, 0) = 1.0;
  adam.Step(&p, g);
  EXPECT_EQ(adam.step_count(), 1);
  adam.Reset();
  EXPECT_EQ(adam.step_count(), 0);
  // After reset the optimizer accepts a different shape.
  Matrix p2(2, 2), g2(2, 2);
  g2.Fill(1.0);
  adam.Step(&p2, g2);
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(AdamTest, StepCountsAccumulate) {
  Adam adam;
  Matrix p(1, 1), g(1, 1);
  g(0, 0) = 0.5;
  for (int i = 0; i < 5; ++i) adam.Step(&p, g);
  EXPECT_EQ(adam.step_count(), 5);
}

TEST(AdamTest, NonFiniteGradientSkipsTheStep) {
  AdamOptions opt;
  opt.lr = 0.1;
  Adam adam(opt);
  Matrix p(1, 2), g(1, 2);
  g(0, 0) = 1.0;
  g(0, 1) = 1.0;
  adam.Step(&p, g);
  const double p0 = p(0, 0), p1 = p(0, 1);

  // A NaN anywhere in the gradient must leave params, moments, and the step
  // count untouched — otherwise the moments are poisoned forever.
  Matrix bad = g;
  bad(0, 1) = std::nan("");
  adam.Step(&p, bad);
  EXPECT_DOUBLE_EQ(p(0, 0), p0);
  EXPECT_DOUBLE_EQ(p(0, 1), p1);
  EXPECT_EQ(adam.step_count(), 1);
  EXPECT_EQ(adam.skipped_steps(), 1);

  bad(0, 1) = std::numeric_limits<double>::infinity();
  adam.Step(&p, bad);
  EXPECT_EQ(adam.skipped_steps(), 2);

  // The skipped step left no trace: the next clean step matches a fresh
  // optimizer that saw only the two clean gradients.
  adam.Step(&p, g);
  Adam fresh(opt);
  Matrix q(1, 2);
  fresh.Step(&q, g);
  fresh.Step(&q, g);
  EXPECT_DOUBLE_EQ(p(0, 0), q(0, 0));
  EXPECT_DOUBLE_EQ(p(0, 1), q(0, 1));
  EXPECT_EQ(adam.step_count(), 2);
}

TEST(AdamTest, ResetClearsSkippedCounter) {
  Adam adam;
  Matrix p(1, 1), g(1, 1);
  g(0, 0) = std::nan("");
  adam.Step(&p, g);
  EXPECT_EQ(adam.skipped_steps(), 1);
  adam.Reset();
  EXPECT_EQ(adam.skipped_steps(), 0);
}

TEST(SparseRowAdamTest, NonFiniteGradientSkipsTheStep) {
  AdamOptions opt;
  opt.lr = 0.1;
  Matrix base(4, 2);
  base.Fill(1.0);

  RowOverlayTable table;
  table.Reset(&base);
  SparseRowAdam adam(opt);
  adam.Reset(4, 2);

  SparseRowStore grad;
  grad.Reset(4, 2);
  double* row = grad.EnsureRow(1);
  row[0] = 0.5;
  row[1] = std::nan("");
  adam.Step(&table, grad);
  EXPECT_EQ(adam.step_count(), 0);
  EXPECT_EQ(adam.skipped_steps(), 1);
  // No row was enrolled or modified.
  EXPECT_TRUE(table.touched().empty());
  EXPECT_DOUBLE_EQ(table.Row(1)[0], 1.0);

  // A clean step afterwards behaves exactly like the first step of a fresh
  // optimizer.
  row[1] = 0.5;
  adam.Step(&table, grad);
  EXPECT_EQ(adam.step_count(), 1);
  EXPECT_NEAR(table.Row(1)[0], 1.0 - opt.lr, 1e-6);

  adam.Reset(4, 2);
  EXPECT_EQ(adam.skipped_steps(), 0);
}

}  // namespace
}  // namespace hetefedrec
