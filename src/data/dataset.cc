#include "src/data/dataset.h"

#include <algorithm>

#include "src/util/logging.h"

namespace hetefedrec {

StatusOr<Dataset> Dataset::FromInteractions(
    const std::vector<Interaction>& interactions, size_t num_users,
    size_t num_items, const SplitOptions& options) {
  if (num_users == 0 || num_items == 0) {
    return Status::InvalidArgument("num_users and num_items must be positive");
  }
  if (options.train_fraction <= 0.0 || options.train_fraction > 1.0) {
    return Status::InvalidArgument("train_fraction must be in (0, 1]");
  }
  if (options.negatives_per_positive < 0) {
    return Status::InvalidArgument("negatives_per_positive must be >= 0");
  }

  Dataset ds;
  ds.num_items_ = num_items;
  ds.negatives_per_positive_ = options.negatives_per_positive;
  ds.train_.resize(num_users);
  ds.test_.resize(num_users);
  ds.seen_.resize(num_users);

  // Collapse duplicates while collecting per-user item lists.
  std::vector<std::vector<ItemId>> per_user(num_users);
  for (const Interaction& x : interactions) {
    if (x.user < 0 || static_cast<size_t>(x.user) >= num_users) {
      return Status::OutOfRange("user id out of range: " +
                                std::to_string(x.user));
    }
    if (x.item < 0 || static_cast<size_t>(x.item) >= num_items) {
      return Status::OutOfRange("item id out of range: " +
                                std::to_string(x.item));
    }
    if (ds.seen_[x.user].insert(x.item).second) {
      per_user[x.user].push_back(x.item);
    }
  }

  Rng rng(options.seed);
  ds.train_set_.resize(num_users);
  for (size_t u = 0; u < num_users; ++u) {
    auto& items = per_user[u];
    Rng user_rng = rng.Fork(u);
    user_rng.Shuffle(&items);
    // At least one item stays in train when the user has any data; a user
    // with >= 2 items keeps at least one test item only if the fraction
    // allows it (matching a plain 80/20 floor-based split).
    size_t n_train = static_cast<size_t>(
        options.train_fraction * static_cast<double>(items.size()));
    if (n_train == 0 && !items.empty()) n_train = 1;
    ds.train_[u].assign(items.begin(), items.begin() + n_train);
    ds.test_[u].assign(items.begin() + n_train, items.end());
    ds.train_set_[u].insert(ds.train_[u].begin(), ds.train_[u].end());
  }
  return ds;
}

const std::vector<ItemId>& Dataset::TrainItems(UserId u) const {
  HFR_CHECK_LT(static_cast<size_t>(u), train_.size());
  return train_[u];
}

const std::vector<ItemId>& Dataset::TestItems(UserId u) const {
  HFR_CHECK_LT(static_cast<size_t>(u), test_.size());
  return test_[u];
}

size_t Dataset::TotalTrainInteractions() const {
  size_t total = 0;
  for (const auto& v : train_) total += v.size();
  return total;
}

size_t Dataset::TotalInteractions() const {
  size_t total = 0;
  for (size_t u = 0; u < train_.size(); ++u) {
    total += train_[u].size() + test_[u].size();
  }
  return total;
}

size_t Dataset::InteractionCount(UserId u) const {
  return TrainItems(u).size() + TestItems(u).size();
}

bool Dataset::HasInteracted(UserId u, ItemId i) const {
  HFR_CHECK_LT(static_cast<size_t>(u), seen_.size());
  return seen_[u].count(i) > 0;
}

std::vector<ItemId> Dataset::SampleNegatives(UserId u, size_t count,
                                             Rng* rng) const {
  HFR_CHECK_LT(static_cast<size_t>(u), train_set_.size());
  const auto& positives = train_set_[u];
  std::vector<ItemId> out;
  out.reserve(count);
  // Rejection sampling; interaction lists are sparse relative to the
  // catalogue so this terminates quickly. Guard against pathological users
  // who interacted with (nearly) everything.
  if (positives.size() >= num_items_) return out;
  size_t attempts = 0;
  const size_t max_attempts = 50 * (count + 1);
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    ItemId cand = static_cast<ItemId>(rng->UniformInt(num_items_));
    if (!positives.count(cand)) out.push_back(cand);
  }
  return out;
}

std::vector<Sample> Dataset::BuildLocalEpoch(UserId u, Rng* rng) const {
  return BuildEpochFromPositives(u, TrainItems(u), rng);
}

std::vector<Sample> Dataset::BuildEpochFromPositives(
    UserId u, const std::vector<ItemId>& positives, Rng* rng) const {
  std::vector<Sample> samples;
  samples.reserve(positives.size() * (1 + negatives_per_positive_));
  for (ItemId pos : positives) {
    samples.push_back(Sample{pos, 1.0});
    for (ItemId neg :
         SampleNegatives(u, static_cast<size_t>(negatives_per_positive_),
                         rng)) {
      samples.push_back(Sample{neg, 0.0});
    }
  }
  return samples;
}

std::vector<size_t> Dataset::ItemPopularity() const {
  std::vector<size_t> pop(num_items_, 0);
  for (size_t u = 0; u < train_.size(); ++u) {
    for (ItemId i : train_[u]) pop[i]++;
    for (ItemId i : test_[u]) pop[i]++;
  }
  return pop;
}

}  // namespace hetefedrec
