#include "src/core/trainer.h"

#include <algorithm>
#include <array>
#include <memory>
#include <numeric>
#include <thread>

#include "src/core/checkpoint.h"
#include "src/core/local_trainer.h"
#include "src/data/synthetic.h"
#include "src/fed/scheduler.h"
#include "src/fed/sync/network.h"
#include "src/fed/sync/sync_service.h"
#include "src/math/eigen.h"
#include "src/math/init.h"
#include "src/math/stats.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace hetefedrec {

namespace {

/// Derived per-method wiring: slots, group->slot map, dual-task lists,
/// aggregation flavor and component toggles.
struct MethodSetup {
  std::vector<size_t> widths;
  bool shared_aggregation = true;
  std::array<size_t, kNumGroups> slot_of_group = {0, 0, 0};
  std::array<std::vector<LocalTaskSpec>, kNumGroups> tasks_of_group;
  std::array<bool, kNumGroups> excluded = {false, false, false};
  std::array<bool, kNumGroups> apply_ddr = {false, false, false};
  bool reskd = false;
};

/// Resolves cfg.num_threads (0 = hardware concurrency) to a thread count.
size_t EffectiveThreads(const ExperimentConfig& cfg) {
  if (cfg.num_threads > 0) return cfg.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Shared evaluator scoring dispatch: the per-item reference loop, the
/// in-place ScoreRange over the full span (full mode passes the contiguous
/// ids [0, num_items)), or the id-list ScoreBatch (candidate mode).
/// Requires a prior BeginUser on `sc`.
void ScoreIdsForEval(const Scorer& sc, const Matrix& table,
                     const FeedForwardNet& theta,
                     const std::vector<ItemId>& ids, bool use_batched,
                     bool full_span, double* out) {
  if (!use_batched) {
    for (size_t i = 0; i < ids.size(); ++i) {
      out[i] = sc.Score(table, theta, ids[i]);
    }
  } else if (full_span) {
    // full_span promises ids == [0, table.rows()); scoring the wrong span
    // here would silently corrupt metrics.
    HFR_CHECK_EQ(ids.size(), table.rows());
    sc.ScoreRange(table, theta, 0, ids.size(), out);
  } else {
    sc.ScoreBatch(table, theta, ids.data(), ids.size(), out);
  }
}

MethodSetup BuildSetup(const ExperimentConfig& cfg, Method method) {
  MethodSetup s;
  const auto& dims = cfg.dims;
  auto homogeneous = [&](size_t width) {
    s.widths = {width};
    for (int g = 0; g < kNumGroups; ++g) {
      s.slot_of_group[g] = 0;
      s.tasks_of_group[g] = {LocalTaskSpec{0, width}};
    }
  };
  switch (method) {
    case Method::kAllSmall:
      homogeneous(dims[0]);
      break;
    case Method::kAllLarge:
      homogeneous(dims[2]);
      break;
    case Method::kAllLargeExclusive:
      homogeneous(dims[2]);
      s.excluded[static_cast<int>(Group::kSmall)] = true;
      break;
    case Method::kClusteredFedRec:
    case Method::kDirectlyAggregate:
    case Method::kStandalone:
      s.widths = {dims[0], dims[1], dims[2]};
      s.shared_aggregation = (method == Method::kDirectlyAggregate);
      for (int g = 0; g < kNumGroups; ++g) {
        s.slot_of_group[g] = static_cast<size_t>(g);
        s.tasks_of_group[g] = {
            LocalTaskSpec{static_cast<size_t>(g), dims[g]}};
      }
      break;
    case Method::kHeteFedRec:
      s.widths = {dims[0], dims[1], dims[2]};
      s.shared_aggregation = true;
      for (int g = 0; g < kNumGroups; ++g) {
        s.slot_of_group[g] = static_cast<size_t>(g);
        if (cfg.unified_dual_task) {
          // Eq. 11: one objective per width Ns..Ng over shared storage.
          for (int t = 0; t <= g; ++t) {
            s.tasks_of_group[g].push_back(
                LocalTaskSpec{static_cast<size_t>(t), dims[t]});
          }
        } else {
          s.tasks_of_group[g] = {
              LocalTaskSpec{static_cast<size_t>(g), dims[g]}};
        }
        // Eq. 14: DDR applies to medium and large clients.
        s.apply_ddr[g] = cfg.decorrelation && g > 0;
      }
      s.reskd = cfg.ensemble_distillation;
      break;
  }
  return s;
}

}  // namespace

ExperimentRunner::ExperimentRunner(ExperimentConfig config, Dataset dataset,
                                   GroupAssignment groups)
    : config_(std::move(config)),
      dataset_(std::move(dataset)),
      groups_(std::move(groups)) {}

StatusOr<std::unique_ptr<ExperimentRunner>> ExperimentRunner::Create(
    const ExperimentConfig& config) {
  HFR_RETURN_NOT_OK(config.Validate());
  auto data_cfg = DatasetConfigByName(config.dataset, config.data_scale);
  if (!data_cfg.ok()) return data_cfg.status();
  std::vector<Interaction> interactions = GenerateInteractions(*data_cfg);
  SplitOptions split;
  split.seed = config.seed ^ 0x5eedULL;
  auto ds = Dataset::FromInteractions(interactions, data_cfg->num_users,
                                      data_cfg->num_items, split);
  if (!ds.ok()) return ds.status();
  auto groups = AssignGroups(*ds, config.group_fractions);
  if (!groups.ok()) return groups.status();
  return std::unique_ptr<ExperimentRunner>(new ExperimentRunner(
      config, std::move(ds).value(), std::move(groups).value()));
}

ExperimentResult ExperimentRunner::Run(Method method) const {
  if (method == Method::kStandalone) return RunStandalone();
  return RunFederated(method);
}

ExperimentResult ExperimentRunner::RunFederated(Method method) const {
  const ExperimentConfig& cfg = config_;
  MethodSetup setup = BuildSetup(cfg, method);
  if (setup.widths.size() > 1) {
    HFR_CHECK_LT(cfg.dims[0], cfg.dims[1]);
    HFR_CHECK_LT(cfg.dims[1], cfg.dims[2]);
  }

  Timer timer;
  Rng root(cfg.seed);

  HeteroServer::Options server_opts;
  server_opts.widths = setup.widths;
  server_opts.ffn_hidden = cfg.ffn_hidden;
  server_opts.num_items = dataset_.num_items();
  server_opts.embed_init_std = cfg.embed_init_std;
  server_opts.aggregation = cfg.aggregation;
  server_opts.shared_aggregation = setup.shared_aggregation;
  server_opts.seed = root.Fork(1).Next();
  HeteroServer server(server_opts);

  std::vector<ClientState> clients(dataset_.num_users());
  for (size_t u = 0; u < clients.size(); ++u) {
    Group g = groups_.of(static_cast<UserId>(u));
    size_t width = setup.widths[setup.slot_of_group[static_cast<int>(g)]];
    InitClient(&clients[u], static_cast<UserId>(u), g, width,
               cfg.embed_init_std, root);
  }

  // One LocalTrainer per executing thread (scratch buffers are not
  // shareable); slot t of the pool uses trainers[t].
  const size_t n_threads = EffectiveThreads(cfg);
  ThreadPool pool(n_threads - 1);
  std::vector<std::unique_ptr<LocalTrainer>> trainers;
  trainers.reserve(pool.num_slots());
  for (size_t t = 0; t < pool.num_slots(); ++t) {
    trainers.push_back(
        std::make_unique<LocalTrainer>(dataset_, cfg.base_model));
  }
  ClientQueue queue(dataset_.num_users(), cfg.clients_per_round,
                    cfg.straggler_slack);
  Rng sched_rng = root.Fork(2);
  Rng kd_rng = root.Fork(3);
  DistillationOptions kd_opts;
  kd_opts.kd_items = cfg.kd_items;
  kd_opts.steps = cfg.kd_steps;
  kd_opts.lr = cfg.kd_lr;

  // Delta-sync machinery (docs/SYNC.md). With full_downloads the replica
  // bookkeeping is skipped entirely — the default path stays the paper's.
  const bool delta_sync = !cfg.full_downloads;
  std::unique_ptr<SyncService> sync;
  if (delta_sync) {
    SyncService::Options sync_opts;
    sync_opts.verify_values = cfg.sync_verify_replicas;
    sync_opts.replica_cap = cfg.sync_replica_cap;
    sync = std::make_unique<SyncService>(dataset_.num_users(), sync_opts);
  }
  NetworkOptions net_opts;
  net_opts.availability = cfg.availability;
  net_opts.bandwidth_bytes_per_sec = cfg.net_bandwidth;
  net_opts.bandwidth_sigma = cfg.net_bandwidth_sigma;
  net_opts.latency_seconds = cfg.net_latency;
  net_opts.latency_sigma = cfg.net_latency_sigma;
  net_opts.compute_seconds_per_sample = cfg.net_compute_per_sample;
  net_opts.seed = root.Fork(5).Next();
  SimulatedNetwork net(net_opts);
  // Over-selection: rank completions by simulated time, merge the first
  // clients_per_round (a deadline alone also activates the ranking).
  const bool over_select =
      cfg.straggler_slack > 0 || cfg.round_deadline > 0.0;

  Evaluator evaluator(dataset_, groups_, cfg.top_k, cfg.eval_user_sample,
                      cfg.seed ^ 0xe5a1ULL, cfg.eval_candidate_sample);
  // One Scorer per (executing thread, slot), constructed once and reused
  // for every evaluated user (Scorer construction allocates per-width
  // scratch; the evaluator likewise reuses per-thread scores buffers).
  std::vector<std::vector<Scorer>> eval_scorers(pool.num_slots());
  for (size_t t = 0; t < pool.num_slots(); ++t) {
    eval_scorers[t].reserve(server.num_slots());
    for (size_t s = 0; s < server.num_slots(); ++s) {
      eval_scorers[t].emplace_back(cfg.base_model, server.width(s));
    }
  }
  auto score_fn = [&](UserId u, size_t thread_slot,
                      const std::vector<ItemId>& ids, double* out) {
    const ClientState& c = clients[u];
    size_t slot = setup.slot_of_group[static_cast<int>(c.group)];
    Scorer& sc = eval_scorers[thread_slot][slot];
    sc.BeginUser(c.user_embedding.Row(0), server.table(slot),
                 dataset_.TrainItems(u));
    ScoreIdsForEval(sc, server.table(slot), server.theta(slot), ids,
                    cfg.use_batched_scoring, cfg.eval_candidate_sample == 0,
                    out);
  };

  ExperimentResult result;
  result.comm.set_wire_scalar_bytes(cfg.wire_scalar_bytes);
  for (int epoch = 1; epoch <= cfg.global_epochs; ++epoch) {
    double loss_sum = 0.0;
    size_t loss_count = 0;
    queue.BeginEpoch(&sched_rng);
    // With availability < 1 offline clients requeue, so an epoch can take
    // more than the nominal number of rounds; the budget bounds the tail
    // (P(still queued) decays geometrically) so a tiny p cannot hang a run.
    size_t round_budget = 10 * queue.rounds_per_epoch() + 10;
    while (!queue.Exhausted() && round_budget > 0) {
      --round_budget;
      const std::vector<UserId> selected = queue.NextRound();
      server.BeginRound();
      const uint64_t round_id = server.versions().round();
      // "All Large/Exclusive": data-poor clients are excluded from the
      // federation entirely — they receive the global model for
      // inference but are never selected for training, so even their
      // private user embeddings stay at initialization. This matches the
      // severity of the paper's reported drop (Table II). Offline clients
      // re-enter the queue and are tried again in a later round.
      std::vector<UserId> work;
      work.reserve(selected.size());
      for (UserId u : selected) {
        if (setup.excluded[static_cast<int>(clients[u].group)]) continue;
        if (!net.Online(u, round_id)) {
          queue.Requeue(u);
          continue;
        }
        work.push_back(u);
      }

      // Clients of a batch train in parallel (each mutates only its own
      // ClientState and its thread's LocalTrainer scratch; the server and
      // dataset are read-only during the batch). Updates land in
      // per-client slots and merge into the server afterwards in batch
      // order, so results are bit-identical for every thread count.
      auto train_one = [&](size_t k, size_t slot_idx,
                           LocalUpdateResult* out) {
        UserId u = work[k];
        ClientState& client = clients[u];
        const int g = static_cast<int>(client.group);
        const auto& tasks = setup.tasks_of_group[g];
        std::vector<const FeedForwardNet*> thetas;
        thetas.reserve(tasks.size());
        for (const auto& task : tasks) {
          thetas.push_back(&server.theta(task.slot));
        }

        LocalTrainerOptions lopt;
        lopt.local_epochs = cfg.local_epochs;
        lopt.lr = cfg.lr;
        lopt.apply_ddr = setup.apply_ddr[g];
        lopt.alpha = cfg.alpha;
        lopt.ddr_sample_rows = cfg.ddr_sample_rows;
        lopt.validation_fraction = cfg.local_validation_fraction;
        lopt.use_sparse = cfg.use_sparse_updates;
        lopt.use_batched = cfg.use_batched_scoring;
        lopt.sparse_comm_accounting = cfg.sparse_comm_accounting;

        size_t slot = setup.slot_of_group[g];
        *out = trainers[slot_idx]->Train(&client, server.table(slot),
                                         thetas, tasks, lopt);
      };

      // Download accounting for one trained client, in batch order (the
      // replica commit must be deterministic). Returns the scalars the
      // active protocol actually ships down; also records CommStats.
      auto account_download = [&](size_t k,
                                  const LocalUpdateResult& update) -> size_t {
        UserId u = work[k];
        const size_t slot =
            setup.slot_of_group[static_cast<int>(clients[u].group)];
        const Matrix& table = server.table(slot);
        // update.params_down is the dense accounting: |V| + |Θ...|.
        const size_t theta_params = update.params_down - table.size();
        size_t shipped = update.params_down;
        if (delta_sync && update.sparse) {
          SyncPlan plan = sync->Sync(u, slot, update.read_rows, table,
                                     server.versions(), theta_params);
          shipped = plan.params;
        }
        result.comm.RecordDownload(
            clients[u].group,
            cfg.sparse_comm_accounting ? shipped : update.params_down);
        return shipped;
      };

      auto merge_one = [&](size_t k, const LocalUpdateResult& update) {
        UserId u = work[k];
        result.comm.RecordUpload(clients[u].group, update.params_up);
        loss_sum += update.train_loss;
        loss_count++;
        double weight =
            cfg.aggregation == AggregationMode::kDataWeighted
                ? static_cast<double>(dataset_.TrainItems(u).size())
                : 1.0;
        server.Accumulate(setup.tasks_of_group[static_cast<int>(
                              clients[u].group)],
                          update, weight);
      };

      if (!over_select && pool.num_workers() == 0) {
        // Serial: merge each update immediately so only one is ever live
        // (a full batch of dense reference deltas would be large).
        LocalUpdateResult update;
        for (size_t k = 0; k < work.size(); ++k) {
          train_one(k, 0, &update);
          account_download(k, update);
          merge_one(k, update);
        }
      } else {
        std::vector<LocalUpdateResult> updates(work.size());
        if (pool.num_workers() == 0) {
          for (size_t k = 0; k < work.size(); ++k) {
            train_one(k, 0, &updates[k]);
          }
        } else {
          pool.ParallelFor(work.size(), [&](size_t k, size_t slot_idx) {
            train_one(k, slot_idx, &updates[k]);
          });
        }
        if (!over_select) {
          for (size_t k = 0; k < work.size(); ++k) {
            account_download(k, updates[k]);
            merge_one(k, updates[k]);
          }
        } else {
          // Over-selection: every selected client downloads and trains
          // (its replica, embedding and RNG advance), but only the first
          // clients_per_round simulated completions merge — in batch
          // order, so results stay thread-count independent. Stragglers
          // and deadline misses are discarded and re-queued.
          std::vector<double> finish(work.size());
          for (size_t k = 0; k < work.size(); ++k) {
            const LocalUpdateResult& up = updates[k];
            const size_t slot = setup.slot_of_group[static_cast<int>(
                clients[work[k]].group)];
            const size_t theta_params =
                up.params_down - server.table(slot).size();
            const size_t down_scalars = account_download(k, up);
            // What the wire actually carries up: packed touched rows on
            // the sparse path, the dense delta (== |V| + Θ) otherwise.
            const size_t up_scalars =
                up.sparse ? up.v_delta_sparse.ParamCount() + theta_params
                          : up.params_down;
            finish[k] = net.FinishSeconds(
                work[k], round_id, down_scalars * cfg.wire_scalar_bytes,
                up_scalars * cfg.wire_scalar_bytes, up.train_samples);
          }
          std::vector<size_t> order(work.size());
          std::iota(order.begin(), order.end(), 0);
          std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return finish[a] != finish[b] ? finish[a] < finish[b] : a < b;
          });
          std::vector<uint8_t> merged(work.size(), 0);
          size_t taken = 0;
          for (size_t k : order) {
            if (taken >= cfg.clients_per_round) break;
            if (cfg.round_deadline > 0.0 && finish[k] > cfg.round_deadline) {
              break;  // order is sorted: everyone later missed it too
            }
            merged[k] = 1;
            taken++;
          }
          for (size_t k = 0; k < work.size(); ++k) {
            if (merged[k]) {
              merge_one(k, updates[k]);
            } else {
              queue.Requeue(work[k]);
            }
          }
        }
      }
      server.FinishRound();
      if (setup.reskd) server.Distill(kd_opts, &kd_rng);
    }
    if (!queue.Exhausted()) {
      HFR_LOG(Warning) << "epoch " << epoch << " round budget exhausted with "
                       << queue.pending()
                       << " clients still queued (availability="
                       << cfg.availability
                       << "); dropping them until next epoch";
    }

    const bool last = (epoch == cfg.global_epochs);
    if ((cfg.eval_every > 0 && epoch % cfg.eval_every == 0) || last) {
      EpochPoint point;
      point.epoch = epoch;
      point.eval = evaluator.Evaluate(score_fn, &pool);
      point.mean_train_loss =
          loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
      if (cfg.eval_every > 0) result.history.push_back(point);
      if (last) result.final_eval = point.eval;
    }
  }

  {
    const Matrix& largest = server.table(server.num_slots() - 1);
    std::vector<double> eig = SymmetricEigenvalues(CovarianceMatrix(largest));
    result.collapse_variance = Variance(eig);
    double mean = Mean(eig);
    result.collapse_cv =
        mean > 0 ? result.collapse_variance / (mean * mean) : 0.0;
  }
  if (!cfg.checkpoint_path.empty()) {
    Status st = SaveServerCheckpoint(cfg.checkpoint_path, server,
                                     BaseModelName(cfg.base_model));
    if (!st.ok()) {
      HFR_LOG(Warning) << "checkpoint save failed: " << st.ToString();
    }
  }
  result.train_seconds = timer.Seconds();
  return result;
}

ExperimentResult ExperimentRunner::RunStandalone() const {
  const ExperimentConfig& cfg = config_;
  Timer timer;
  Rng root(cfg.seed);
  Rng init_rng = root.Fork(4);

  // Standalone users never interact, so evaluation (train + score per
  // user) parallelizes over users like the federated eval does; each
  // thread slot owns a LocalTrainer (scratch is not shareable).
  ThreadPool pool(EffectiveThreads(cfg) - 1);
  std::vector<std::unique_ptr<LocalTrainer>> locals;
  locals.reserve(pool.num_slots());
  for (size_t t = 0; t < pool.num_slots(); ++t) {
    locals.push_back(std::make_unique<LocalTrainer>(dataset_, cfg.base_model));
  }
  Evaluator evaluator(dataset_, groups_, cfg.top_k, cfg.eval_user_sample,
                      cfg.seed ^ 0xe5a1ULL, cfg.eval_candidate_sample);

  // Train-and-score each evaluated user in isolation: no parameters are
  // ever exchanged, which is exactly the baseline's premise. Training
  // budget matches federated clients: global_epochs x local_epochs local
  // passes over the user's own data.
  auto score_fn = [&](UserId u, size_t thread_slot,
                      const std::vector<ItemId>& ids, double* out) {
    LocalTrainer& local = *locals[thread_slot];
    Group g = groups_.of(u);
    size_t width = cfg.dims[static_cast<int>(g)];
    Matrix table(dataset_.num_items(), width);
    Rng user_init = init_rng.Fork(u);
    InitNormal(&table, cfg.embed_init_std, &user_init);
    FeedForwardNet theta(2 * width, {cfg.ffn_hidden[0], cfg.ffn_hidden[1]});
    theta.InitXavier(&user_init);

    ClientState client;
    InitClient(&client, u, g, width, cfg.embed_init_std, root);

    std::vector<LocalTaskSpec> tasks = {LocalTaskSpec{0, width}};
    LocalTrainerOptions lopt;
    lopt.local_epochs = cfg.global_epochs * cfg.local_epochs;
    lopt.lr = cfg.lr;
    lopt.apply_ddr = false;
    lopt.use_sparse = cfg.use_sparse_updates;
    lopt.use_batched = cfg.use_batched_scoring;
    lopt.sparse_comm_accounting = cfg.sparse_comm_accounting;
    LocalUpdateResult update =
        local.Train(&client, table, {&theta}, tasks, lopt);
    if (update.sparse) {
      update.v_delta_sparse.AddScaledTo(&table, 1.0);
    } else {
      table.AddScaled(update.v_delta, 1.0);
    }
    theta.AddScaled(update.theta_deltas[0], 1.0);

    Scorer sc(cfg.base_model, width);
    sc.BeginUser(client.user_embedding.Row(0), table,
                 dataset_.TrainItems(u));
    ScoreIdsForEval(sc, table, theta, ids, cfg.use_batched_scoring,
                    cfg.eval_candidate_sample == 0, out);
  };

  ExperimentResult result;
  result.final_eval = evaluator.Evaluate(score_fn, &pool);
  result.train_seconds = timer.Seconds();
  return result;
}

}  // namespace hetefedrec
