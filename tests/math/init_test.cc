#include "src/math/init.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/math/stats.h"
#include "src/util/timer.h"

namespace hetefedrec {
namespace {

TEST(InitTest, NormalMomentsMatch) {
  Rng rng(3);
  Matrix m(500, 40);
  InitNormal(&m, 0.1, &rng);
  double sum = 0, sumsq = 0;
  for (double v : m.data()) {
    sum += v;
    sumsq += v * v;
  }
  double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.005);
  EXPECT_NEAR(std::sqrt(sumsq / n), 0.1, 0.005);
}

TEST(InitTest, XavierUniformBounds) {
  Rng rng(5);
  Matrix m(64, 8);
  InitXavierUniform(&m, &rng);
  double bound = std::sqrt(6.0 / (64.0 + 8.0));
  double max_abs = 0.0;
  for (double v : m.data()) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_LE(max_abs, bound);
  EXPECT_GT(max_abs, 0.8 * bound);  // draws should fill the range
}

TEST(InitTest, XavierExplicitFans) {
  Rng rng(7);
  Matrix m(10, 10);
  InitXavierUniform(&m, /*fan_in=*/2, /*fan_out=*/1, &rng);
  double bound = std::sqrt(6.0 / 3.0);
  for (double v : m.data()) EXPECT_LE(std::abs(v), bound);
}

TEST(InitTest, DeterministicPerRng) {
  Rng a(11), b(11);
  Matrix ma(5, 5), mb(5, 5);
  InitNormal(&ma, 1.0, &a);
  InitNormal(&mb, 1.0, &b);
  for (size_t i = 0; i < ma.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(ma.data()[i], mb.data()[i]);
  }
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 2000000; ++i) sink = sink + std::sqrt(i);
  double s = t.Seconds();
  EXPECT_GT(s, 0.0);
  EXPECT_LT(s, 60.0);
  EXPECT_NEAR(t.Millis(), t.Seconds() * 1000.0, t.Seconds() * 100.0);
  t.Reset();
  EXPECT_LT(t.Seconds(), s + 1.0);
}

}  // namespace
}  // namespace hetefedrec
