// Console table rendering shared by all bench binaries.
//
// Every experiment binary prints rows in the same layout as the paper's
// tables; TablePrinter keeps columns aligned and can additionally dump the
// same rows as CSV for machine consumption.
#ifndef HETEFEDREC_UTIL_TABLE_PRINTER_H_
#define HETEFEDREC_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

#include "src/util/status.h"

namespace hetefedrec {

/// \brief Collects rows of string cells and renders them aligned.
class TablePrinter {
 public:
  /// \param title caption printed above the table.
  /// \param header column names.
  TablePrinter(std::string title, std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void AddSeparator();

  /// Renders the aligned table to a string.
  std::string Render() const;

  /// Prints Render() to stdout.
  void Print() const;

  /// Writes header + rows as CSV. Separator rows are skipped.
  Status WriteCsv(const std::string& path) const;

  /// Formats a double with `digits` places after the decimal point.
  static std::string Num(double v, int digits = 5);

  /// Formats an integer with thousands separators, e.g. 1,000,209.
  static std::string Count(long long v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_TABLE_PRINTER_H_
