#include "src/fed/scheduler.h"

#include <gtest/gtest.h>

#include <set>

namespace hetefedrec {
namespace {

TEST(SchedulerTest, EveryUserExactlyOncePerEpoch) {
  RoundScheduler sched(1000, 256);
  Rng rng(3);
  auto batches = sched.EpochBatches(&rng);
  std::set<UserId> seen;
  for (const auto& b : batches) {
    for (UserId u : b) EXPECT_TRUE(seen.insert(u).second);
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 999);
}

TEST(SchedulerTest, BatchSizesMatchPaperProtocol) {
  RoundScheduler sched(1000, 256);
  Rng rng(5);
  auto batches = sched.EpochBatches(&rng);
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches[0].size(), 256u);
  EXPECT_EQ(batches[1].size(), 256u);
  EXPECT_EQ(batches[2].size(), 256u);
  EXPECT_EQ(batches[3].size(), 232u);  // remainder
  EXPECT_EQ(sched.rounds_per_epoch(), 4u);
}

TEST(SchedulerTest, FewerUsersThanRoundSize) {
  RoundScheduler sched(100, 256);
  Rng rng(7);
  auto batches = sched.EpochBatches(&rng);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 100u);
}

TEST(SchedulerTest, ShuffleChangesAcrossEpochs) {
  RoundScheduler sched(500, 100);
  Rng rng(11);
  auto e1 = sched.EpochBatches(&rng);
  auto e2 = sched.EpochBatches(&rng);
  EXPECT_NE(e1[0], e2[0]);  // astronomically unlikely to coincide
}

TEST(SchedulerTest, DeterministicGivenRngState) {
  RoundScheduler sched(300, 64);
  Rng a(13), b(13);
  EXPECT_EQ(sched.EpochBatches(&a), sched.EpochBatches(&b));
}

// The availability-capable queue must degrade to the paper's protocol:
// with no requeues and no over-selection, its rounds are exactly the
// RoundScheduler batches of the same Rng draw. This is what keeps the
// default execution path bit-identical after the round-loop rewrite.
TEST(ClientQueueTest, MatchesEpochBatchesWhenEveryoneIsOnline) {
  RoundScheduler sched(1000, 256);
  ClientQueue queue(1000, 256);
  Rng a(17), b(17);
  auto batches = sched.EpochBatches(&a);
  queue.BeginEpoch(&b);
  for (const auto& batch : batches) {
    ASSERT_FALSE(queue.Exhausted());
    EXPECT_EQ(queue.NextRound(), batch);
  }
  EXPECT_TRUE(queue.Exhausted());
  EXPECT_EQ(queue.rounds_per_epoch(), sched.rounds_per_epoch());
}

TEST(ClientQueueTest, OverSelectionPopsSlackExtra) {
  ClientQueue queue(100, 10, /*over_selection=*/4);
  Rng rng(19);
  queue.BeginEpoch(&rng);
  EXPECT_EQ(queue.NextRound().size(), 14u);
}

TEST(ClientQueueTest, RequeuedClientsComeBackThisEpoch) {
  ClientQueue queue(20, 8);
  Rng rng(23);
  queue.BeginEpoch(&rng);
  auto first = queue.NextRound();
  // Pretend the first three were offline.
  for (size_t k = 0; k < 3; ++k) queue.Requeue(first[k]);
  std::set<UserId> rest;
  while (!queue.Exhausted()) {
    for (UserId u : queue.NextRound()) rest.insert(u);
  }
  // 12 remaining + the 3 requeued.
  EXPECT_EQ(rest.size(), 15u);
  for (size_t k = 0; k < 3; ++k) EXPECT_TRUE(rest.count(first[k]));
}

TEST(ClientQueueTest, CompactionKeepsOrderUnderLongRequeueChains) {
  // Many rounds of "everyone offline" exercise the internal compaction;
  // selection order must stay FIFO.
  ClientQueue queue(16, 4);
  Rng rng(29);
  queue.BeginEpoch(&rng);
  std::vector<UserId> first_pass;
  for (int round = 0; round < 4; ++round) {
    for (UserId u : queue.NextRound()) {
      first_pass.push_back(u);
      queue.Requeue(u);
    }
  }
  std::vector<UserId> second_pass;
  for (int round = 0; round < 4; ++round) {
    for (UserId u : queue.NextRound()) second_pass.push_back(u);
  }
  EXPECT_EQ(first_pass, second_pass);
}

}  // namespace
}  // namespace hetefedrec
