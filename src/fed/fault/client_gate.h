// Retry/quarantine gating on the virtual clock.
//
// The gate tracks, per client, when it is next eligible for selection.
// Failed transfers (lost uploads/downloads, crashes) schedule a retry after
// a capped exponential backoff with deterministic jitter; updates rejected
// by admission control quarantine the client with a second, longer backoff
// schedule. All delays are simulated seconds — the gate never sleeps.
//
// Determinism: jitter is a pure hash draw keyed by (client, cumulative
// failure index), so a resumed run replays identical delays given the
// exported state.
#ifndef HETEFEDREC_FED_FAULT_CLIENT_GATE_H_
#define HETEFEDREC_FED_FAULT_CLIENT_GATE_H_

#include <cstdint>
#include <vector>

#include "src/data/types.h"
#include "src/util/rng.h"

namespace hetefedrec {

struct BackoffOptions {
  double retry_base_seconds = 1.0;        ///< first-failure retry delay
  double retry_cap_seconds = 60.0;        ///< retry delay ceiling
  double quarantine_base_seconds = 5.0;   ///< first-rejection quarantine
  double quarantine_cap_seconds = 300.0;  ///< quarantine ceiling
  double multiplier = 2.0;                ///< backoff growth per failure
  double jitter = 0.5;                    ///< delay *= 1 + jitter * U[0,1)
  size_t retry_max = 5;  ///< consecutive failures before giving up
  uint64_t seed = 1;
};

class ClientGate {
 public:
  ClientGate(size_t num_users, const BackoffOptions& options);

  /// True when client `u` may be selected at virtual time `now`.
  bool Ready(UserId u, double now) const;

  /// Records a failed transfer at time `now` and schedules the retry:
  /// delay = min(cap, base * multiplier^(fails-1)) * (1 + jitter * U).
  /// Returns false once `retry_max` consecutive failures accumulate — the
  /// caller then drops the client until the next epoch refill (the failure
  /// streak resets so the client starts fresh).
  bool RetryAfterFailure(UserId u, double now);

  /// Records an admission rejection at time `now`: same exponential shape
  /// but on the quarantine base/cap, which are typically much longer.
  /// Quarantines never give up — a diverging client keeps re-entering with
  /// ever-longer delays up to the cap.
  void Quarantine(UserId u, double now);

  /// A successful merge clears the client's failure streak.
  void OnSuccess(UserId u);

  size_t num_users() const { return static_cast<size_t>(fails_.size()); }

  /// Serializes the per-client (fails, draws, ready) state as flat u64
  /// triples (ready encoded as a double bit pattern) for run checkpoints.
  std::vector<uint64_t> Export() const;

  /// Restores state exported by `Export`. Client count must match.
  void Restore(const std::vector<uint64_t>& packed);

 private:
  double Delay(UserId u, double base, double cap);

  BackoffOptions options_;
  Rng base_;
  std::vector<uint32_t> fails_;    // consecutive failure streak
  std::vector<uint64_t> draws_;    // cumulative jitter draws (monotone)
  std::vector<double> ready_;      // earliest eligible virtual time
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_FAULT_CLIENT_GATE_H_
