// Streaming round loop: drives a ServerApi at million-client scale.
//
// The full Trainer pipeline materializes per-client state (RNGs, private
// embeddings, sync replicas) for every user — exactly what a million-user
// scale-out must avoid. This loop is the thin alternative: clients come
// from a `ClientStream` (pure function of seed and user id, nothing stored
// per user), each one reads the live server table, builds a real sparse
// MF-SGD delta over its interacted rows, and uploads it through
// `ServerApi::UploadDelta`; the round closes with `FinishRound`. Per-round
// memory is O(clients_per_round · items-per-user), independent of the user
// count — which is what lets bench_sharding push 1M+ clients through a
// round loop and report rounds/wall-second and bytes/round per shard.
//
// Determinism: client order within a round is the user-id order of the
// stream cursor and the server merges uploads in call order, so the final
// tables are a pure function of (stream seed, loop seed, shard count) —
// and because the sharded apply is row-independent, of the first two only.
//
// Telemetry: when `metrics_out` is set the loop emits the standard JSONL
// schema (meta / round / summary, docs/OBSERVABILITY.md) validated by
// tools/summarize_telemetry.py --check; the clock is wall time (there is
// no simulated network in this loop).
#ifndef HETEFEDREC_FED_SHARD_STREAM_LOOP_H_
#define HETEFEDREC_FED_SHARD_STREAM_LOOP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/server_api.h"
#include "src/data/stream.h"

namespace hetefedrec {

struct StreamLoopOptions {
  size_t clients_per_round = 256;
  /// Rounds to run; 0 = one full pass over the stream's users
  /// (ceil(num_users / clients_per_round)).
  size_t rounds = 0;
  /// SGD step scale applied to each client's implicit-feedback delta.
  double lr = 0.05;
  /// Seed for the loop's private user-embedding draws (independent of the
  /// stream's client seed).
  uint64_t seed = 1;
  /// Optional telemetry JSONL path ("" = off).
  std::string metrics_out;
};

struct StreamLoopResult {
  size_t rounds = 0;
  size_t clients = 0;             // uploads merged
  uint64_t rows_uploaded = 0;     // touched rows summed over uploads
  uint64_t upload_scalars = 0;    // sum of shard_upload_scalars deltas
  /// Per-shard lifetime upload scalars at loop end (load-balance view).
  std::vector<uint64_t> shard_scalars;
  double wall_seconds = 0.0;
  /// Process peak RSS after the run, KiB (0 = probe unavailable).
  size_t peak_rss_kb = 0;
};

/// Runs `options.rounds` rounds of the streaming workload against
/// `server`. The server must have at least one slot; uploads target the
/// widest slot. Users cycle through the stream in id order, wrapping after
/// a full pass.
StreamLoopResult RunStreamingRounds(ServerApi* server,
                                    const ClientStream& stream,
                                    const StreamLoopOptions& options);

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SHARD_STREAM_LOOP_H_
