// Reproduces Table IV: component ablation of HeteFedRec.
//
// Rows, as in the paper: full HeteFedRec; -RESKD; -RESKD,DDR;
// -RESKD,DDR,UDL (the last is identical to "Directly Aggregate").
// Paper shape: each removal costs performance, with UDL by far the most
// important component.
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

struct AblationRow {
  const char* name;
  bool udl, ddr, reskd;
};

constexpr AblationRow kRows[] = {
    {"HeteFedRec", true, true, true},
    {"- RESKD", true, true, false},
    {"- RESKD,DDR", true, false, false},
    {"- RESKD,DDR,UDL", false, false, false},
};

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  TablePrinter table("Table IV: ablation study",
                     {"Model", "Dataset", "Variant", "Recall", "NDCG"});

  int cells = 0, udl_largest_drop = 0, full_best = 0;
  for (const GridCase& cell : EvaluationGrid(cli)) {
    std::vector<double> ndcgs;
    for (const AblationRow& row : kRows) {
      ExperimentConfig cfg = *base_cfg;
      cfg.base_model = cell.model;
      cfg.dataset = cell.dataset;
      ApplyPaperDims(&cfg);
      cfg.unified_dual_task = row.udl;
      cfg.decorrelation = row.ddr;
      cfg.ensemble_distillation = row.reskd;
      auto runner = ExperimentRunner::Create(cfg);
      if (!runner.ok()) return FailWith(runner.status());
      std::fprintf(stderr, "[table4] %s / %s / %s ...\n",
                   BaseModelName(cell.model).c_str(), cell.dataset.c_str(),
                   row.name);
      GroupedEval eval = (*runner)->Run(Method::kHeteFedRec).final_eval;
      table.AddRow({BaseModelName(cell.model), cell.dataset, row.name,
                    TablePrinter::Num(eval.overall.recall),
                    TablePrinter::Num(eval.overall.ndcg)});
      ndcgs.push_back(eval.overall.ndcg);
    }
    table.AddSeparator();

    cells++;
    // Paper shape: removing UDL (last row) is the biggest single drop.
    double drop_kd = ndcgs[0] - ndcgs[1];
    double drop_ddr = ndcgs[1] - ndcgs[2];
    double drop_udl = ndcgs[2] - ndcgs[3];
    udl_largest_drop += (drop_udl > drop_kd && drop_udl > drop_ddr);
    full_best += (ndcgs[0] >= ndcgs[1] && ndcgs[0] >= ndcgs[2] &&
                  ndcgs[0] >= ndcgs[3]);
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "table4_ablation"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  std::printf(
      "\nShape checks:\n"
      "  UDL removal is the largest drop: %d/%d cells (paper: all)\n"
      "  Full HeteFedRec is the best row: %d/%d cells (paper: all)\n",
      udl_largest_drop, cells, full_best, cells);
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
