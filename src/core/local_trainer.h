// Client-side local training (Algorithm 1, CLIENT_TRAIN).
//
// A client downloads its group's public parameters, trains local copies for
// `local_epochs` full-batch Adam steps, and uploads the resulting parameter
// deltas. Under unified dual-task learning (Eq. 11) a client in group a
// optimizes one BCE objective per width Ns..Na over *shared* embedding
// storage, so sub-slices of its update are meaningful updates for the
// smaller models; medium/large clients additionally apply the DDR
// regularizer (Eq. 14). The private user embedding is updated in place
// (Eq. 3) and never leaves the client.
//
// Two bit-identical execution paths exist:
//   dense  (use_sparse = false): the reference implementation — the client
//     copies the full item table, accumulates a dense gradient and uploads
//     a dense delta. O(num_items × width) per round.
//   sparse (use_sparse = true, default): the client reads the global table
//     through a copy-on-write RowOverlayTable, accumulates gradients in a
//     SparseRowStore and uploads a SparseRowUpdate over touched rows only.
//     O(|interactions| × width) per round. Rows outside the touched set are
//     provably untouched by Adam (their gradient is exactly zero in every
//     epoch, so their moments and step stay exactly 0.0) — see
//     docs/PERFORMANCE.md.
//
// Orthogonally to the dense/sparse split, the local optimization can run on
// the fp32 compute backend (LocalTrainerOptions::backend): the client casts
// the downloaded parameters to float once, trains entirely in float (the
// loss/regularizer scalars stay double), and upcasts the deltas at the
// upload boundary — the wire and the server stay fp64 storage of record.
// The persistent user embedding round-trips through float for the round.
#ifndef HETEFEDREC_CORE_LOCAL_TRAINER_H_
#define HETEFEDREC_CORE_LOCAL_TRAINER_H_

#include <vector>

#include "src/data/dataset.h"
#include "src/fed/client.h"
#include "src/math/adam.h"
#include "src/math/backend.h"
#include "src/math/sparse.h"
#include "src/models/ffn.h"
#include "src/models/scorer.h"

namespace hetefedrec {

/// One dual-task objective: train at `width` against the Θ of `slot`.
struct LocalTaskSpec {
  size_t slot = 0;   // server model slot owning the Θ for this width
  size_t width = 0;  // embedding slice width
};

/// \brief What a client uploads after local training.
struct LocalUpdateResult {
  /// True when the update was produced by the sparse path: `v_delta_sparse`
  /// is populated and `v_delta` is empty (and vice versa).
  bool sparse = false;
  /// V_local - V_received (dense, |V| x client width). Dense path only.
  Matrix v_delta;
  /// Touched-row deltas (rows ascending). Sparse path only.
  SparseRowUpdate v_delta_sparse;
  /// Θ_local - Θ_received per task, aligned with the task list.
  std::vector<FeedForwardNet> theta_deltas;
  /// Mean per-sample BCE loss (summed over tasks) in the final local epoch.
  double train_loss = 0.0;
  /// Unweighted DDR loss in the final local epoch (0 when DDR off).
  double reg_loss = 0.0;
  /// Mean per-sample validation BCE of the *selected* epoch (0 when the
  /// validation carve-out is disabled or the client is too small).
  double validation_loss = 0.0;
  /// Scalars downloaded / uploaded (Table III accounting).
  size_t params_down = 0;
  size_t params_up = 0;
  /// Item rows the client *read* this round — its delta-sync subscription:
  /// every mutated (touched) row plus validation items scored but not
  /// trained. Sorted, duplicate-free. Sparse path only (dense clients read
  /// the whole table).
  std::vector<uint32_t> read_rows;
  /// Total forward/backward sample evaluations across local epochs and
  /// dual tasks (drives the simulated network's compute time).
  size_t train_samples = 0;
  /// Optimizer steps skipped because a gradient went non-finite (summed
  /// over the item-table, user-embedding, and Θ optimizers). Nonzero only
  /// when the client trained against poisoned parameters.
  size_t nonfinite_grad_steps = 0;
};

/// \brief Options controlling local optimization.
struct LocalTrainerOptions {
  int local_epochs = 2;
  double lr = 0.001;
  bool apply_ddr = false;      // DDR active for this client
  double alpha = 1.0;          // DDR weight
  size_t ddr_sample_rows = 0;  // 0 = all rows
  /// Fraction of the client's training positives held out as a local
  /// validation set (§III-A: "10% of its training data will be used as the
  /// validation set to guide the local training"). When > 0 and the client
  /// has at least `min_validation_positives` training items, the client
  /// keeps the parameters of the local epoch with the lowest validation
  /// BCE instead of the final epoch. 0 disables the carve-out.
  double validation_fraction = 0.0;
  size_t min_validation_positives = 10;
  /// Sparse row-touched updates (bit-identical to dense; see file header).
  /// Defaults to the dense reference contract here at the API level;
  /// ExperimentConfig::use_sparse_updates (default true) switches the
  /// experiment pipeline to the sparse path.
  bool use_sparse = false;
  /// Batched scoring: run each epoch's sample set as one
  /// ScoreForTrainBatch/BackwardBatch block per task (and validation as one
  /// ScoreBatch) instead of per-sample calls. Bit-identical either way
  /// (src/math/kernels.h); false keeps the per-sample reference for
  /// equivalence tests and benchmarks.
  bool use_batched = true;
  /// When true, `params_up` counts the scalars the sparse upload actually
  /// ships (touched rows × (width + 1) + Θ). When false (default),
  /// `params_up` reports the paper's dense accounting regardless of path,
  /// so Table III reproduces unchanged.
  bool sparse_comm_accounting = false;
  /// Working scalar for the local optimization. kFp64 is the bit-exact
  /// reference; kFp32/kFp32Simd train in float (the SIMD flavor is selected
  /// globally via SetFp32SimdEnabled, not per trainer).
  ComputeBackend backend = ComputeBackend::kFp64;
};

/// \brief Executes CLIENT_TRAIN for one client.
///
/// Stateless across clients apart from scratch buffers, so one instance is
/// reused for a whole thread's share of the simulation (buffers are
/// re-sized per width). NOT thread-safe: parallel round execution gives
/// each worker thread its own LocalTrainer.
class LocalTrainer {
 public:
  LocalTrainer(const Dataset& ds, BaseModel model);

  /// Runs local training.
  ///
  /// \param client persistent client state; its user embedding is updated
  ///   in place and its RNG advanced.
  /// \param global_table the client's group item embedding table (width =
  ///   client width = tasks.back().width).
  /// \param thetas global Θ per task (same order as `tasks`; the last task
  ///   is the client's own width).
  /// \param tasks the dual-task list, widths ascending.
  /// \param options optimization parameters.
  LocalUpdateResult Train(ClientState* client, const Matrix& global_table,
                          const std::vector<const FeedForwardNet*>& thetas,
                          const std::vector<LocalTaskSpec>& tasks,
                          const LocalTrainerOptions& options);

 private:
  template <bool kSparse, typename S>
  LocalUpdateResult TrainImpl(ClientState* client, const Matrix& global_table,
                              const std::vector<const FeedForwardNet*>& thetas,
                              const std::vector<LocalTaskSpec>& tasks,
                              const LocalTrainerOptions& options);

  /// Per-scalar scratch reused across clients to limit allocator churn.
  template <typename S>
  struct Scratch {
    MatrixT<S> v_local;                   // dense path local table
    MatrixT<S> v_grad;                    // dense path gradient
    RowOverlayTableT<S> v_overlay;        // sparse path local table view
    SparseRowStoreT<S> v_grad_sparse;     // sparse path gradient
    SparseRowAdamT<S> adam_v_sparse;      // sparse V optimizer (reset/call)
    MatrixT<S> u_grad;
    MatrixT<S> user_emb;                  // float-path working copy of u
    std::vector<FeedForwardNetT<S>> theta_local;  // download buffers
    std::vector<FeedForwardNetT<S>> theta_grad;   // gradient accumulators
    // Batched-scoring scratch (options.use_batched).
    typename ScorerT<S>::BatchTrainCache batch_cache;
    std::vector<S> logits;
    std::vector<S> dlogits;
    std::vector<S> val_scores;
  };

  template <typename S>
  Scratch<S>& ScratchFor() {
    if constexpr (std::is_same_v<S, double>) {
      return scratch64_;
    } else {
      return scratch32_;
    }
  }

  const Dataset& ds_;
  BaseModel model_;

  Scratch<double> scratch64_;
  Scratch<float> scratch32_;
  std::vector<ItemId> sample_items_;
  std::vector<ItemId> val_items_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_LOCAL_TRAINER_H_
