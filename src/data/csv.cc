#include "src/data/csv.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace hetefedrec {

namespace {

bool ParseField(const std::string& field, long* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  long v = std::strtol(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char ch : line) {
    if (ch == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (ch != '\r' && ch != ' ') {
      cur.push_back(ch);
    }
  }
  fields.push_back(cur);
  return fields;
}

}  // namespace

StatusOr<std::vector<Interaction>> LoadInteractionsCsv(const std::string& path,
                                                       size_t* num_users,
                                                       size_t* num_items) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);

  std::vector<Interaction> out;
  // hfr-lint: iteration-order-safe(never iterated - try_emplace/size lookups only, ids assigned by first appearance in file order)
  std::unordered_map<long,UserId> user_map;
  // hfr-lint: iteration-order-safe(never iterated - try_emplace/size lookups only, ids assigned by first appearance in file order)
  std::unordered_map<long,ItemId> item_map;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto fields = SplitCsvLine(line);
    if (fields.size() < 2) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": expected at least 2 fields");
    }
    long raw_user, raw_item;
    if (!ParseField(fields[0], &raw_user) || !ParseField(fields[1], &raw_item)) {
      if (line_no == 1) continue;  // header row
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": non-numeric user/item id");
    }
    auto [uit, _u] = user_map.try_emplace(
        raw_user, static_cast<UserId>(user_map.size()));
    auto [iit, _i] = item_map.try_emplace(
        raw_item, static_cast<ItemId>(item_map.size()));
    out.push_back(Interaction{uit->second, iit->second});
  }
  if (num_users) *num_users = user_map.size();
  if (num_items) *num_items = item_map.size();
  return out;
}

Status SaveInteractionsCsv(const std::string& path,
                           const std::vector<Interaction>& interactions) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path);
  out << "user,item\n";
  for (const Interaction& x : interactions) {
    out << x.user << "," << x.item << "\n";
  }
  return out.good() ? Status::OK() : Status::IOError("write failed: " + path);
}

}  // namespace hetefedrec
