// Experiment configuration shared by the trainer, benches and examples.
#ifndef HETEFEDREC_CORE_CONFIG_H_
#define HETEFEDREC_CORE_CONFIG_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/math/backend.h"
#include "src/models/scorer.h"
#include "src/util/status.h"

namespace hetefedrec {

class CommandLine;
struct ExperimentConfig;

/// Applies the shared experiment flags registered by
/// RegisterExperimentFlags (src/util/cli.h) onto `config`, leaving every
/// other field untouched. Returns InvalidArgument for unparseable enum
/// values (--agg, --compute_backend, --wire_format). Callers set their
/// binary-specific fields (presets, dataset, dims, ...) before or after.
Status ApplyExperimentFlags(const CommandLine& cli, ExperimentConfig* config);

/// The seven training schemes of §V-C: the six baselines plus HeteFedRec.
enum class Method {
  kAllSmall,
  kAllLarge,
  kAllLargeExclusive,
  kStandalone,
  kClusteredFedRec,
  kDirectlyAggregate,
  kHeteFedRec,
};

/// All seven methods in the paper's table order.
inline constexpr std::array<Method, 7> kAllMethods = {
    Method::kAllSmall,          Method::kAllLarge,
    Method::kAllLargeExclusive, Method::kStandalone,
    Method::kClusteredFedRec,   Method::kDirectlyAggregate,
    Method::kHeteFedRec,
};

/// Display name matching Table II rows.
std::string MethodName(Method m);

/// Parses a method name (case-sensitive short form, e.g. "hetefedrec",
/// "all_small", "clustered").
StatusOr<Method> MethodByName(const std::string& name);

/// Parses a wire-format name ("fp64" | "fp32" | "fp16") to its scalar size
/// in bytes — the shared mapping behind every --wire_format flag.
StatusOr<size_t> WireScalarBytesByName(const std::string& name);

/// True for the heterogeneous schemes (lower half of Table II).
bool IsHeterogeneous(Method m);

/// How the server combines uploaded updates.
enum class AggregationMode {
  /// Eq. 4/8-9 literally: V^t = V^{t-1} - lr * Σ ∇V_i, with clients
  /// uploading ∇V_i = (V_received - V_local)/lr, i.e. summed local updates.
  kSum,
  /// FedAvg-style: the summed updates are divided by the number of
  /// contributing clients before application.
  kMean,
  /// FedAvg with data-size weights (McMahan et al. 2017): each client's
  /// update is weighted by its local training-set size before the mean.
  kDataWeighted,
};

/// \brief Everything needed to run one experiment.
struct ExperimentConfig {
  // --- data -----------------------------------------------------------
  std::string dataset = "ml";  // ml | anime | douban
  /// Shrinks the synthetic dataset jointly in users/items (1.0 = Table I
  /// sizes). Benches default to small scales; see DESIGN.md §1.
  double data_scale = 0.10;

  // --- model ----------------------------------------------------------
  BaseModel base_model = BaseModel::kNcf;
  /// Embedding widths {Ns, Nm, Nl}. Paper: {8,16,32} for ML/Anime and
  /// {32,64,128} for Douban (§V-D); Table VII sweeps {2,4,8}..{32,64,128}.
  std::array<size_t, 3> dims = {8, 16, 32};
  /// Hidden sizes of the preference FFN (paper: [2N, 8, 8]).
  std::array<size_t, 2> ffn_hidden = {8, 8};
  double embed_init_std = 0.1;

  // --- grouping (Table VI sweeps the fractions) ------------------------
  std::array<double, 3> group_fractions = {5.0, 3.0, 2.0};

  // --- federated training ----------------------------------------------
  int global_epochs = 20;
  int local_epochs = 2;
  size_t clients_per_round = 256;
  double lr = 0.001;  // Adam locally and server application (§V-D)
  AggregationMode aggregation = AggregationMode::kMean;
  /// Local validation carve-out fraction (§III-A quotes 10%). With the
  /// default 2 local epochs, best-epoch selection is nearly a no-op, so the
  /// benches leave it off (0); set 0.1 for the paper's protocol.
  double local_validation_fraction = 0.0;

  // --- HeteFedRec components (ablations toggle these, Table IV) ---------
  bool unified_dual_task = true;       // UDL  (Eq. 11)
  bool decorrelation = true;           // DDR  (Eq. 13-14)
  bool ensemble_distillation = true;   // RESKD (Eq. 16-17)

  /// DDR weight α (Fig. 8 sweeps 0.5..2.0).
  double alpha = 1.0;
  /// Rows used to estimate the correlation matrix per DDR evaluation
  /// (0 = all rows). Row subsampling is an unbiased estimator that keeps
  /// the regularizer O(sample · N²) per local epoch.
  size_t ddr_sample_rows = 1024;

  /// RESKD: |Vkd| items sampled per round, distillation steps, step size.
  /// The paper does not publish these; defaults were tuned so RESKD adds a
  /// small gain on top of UDL+DDR (Table IV's ordering) without the
  /// distillation drift overpowering the aggregated updates.
  size_t kd_items = 32;
  int kd_steps = 2;
  double kd_lr = 0.001;

  // --- execution (performance; no effect on results) --------------------
  /// Sparse row-touched client updates: clients train through a
  /// copy-on-write view and upload only touched rows. Bit-identical to the
  /// dense reference path (see docs/PERFORMANCE.md); per-round cost drops
  /// from O(clients × items × width) to O(clients × interactions × width).
  bool use_sparse_updates = true;
  /// Communication accounting. False (default): Table III's accounting —
  /// uploads are counted as if the full dense table were shipped, matching
  /// the paper regardless of execution path. True: count the scalars the
  /// sparse path actually uploads (touched rows × (width + 1) + Θ).
  bool sparse_comm_accounting = false;
  /// Batched scoring kernels (src/math/kernels.h): run each client's
  /// per-epoch sample set and every evaluation scoring pass as blocked FFN
  /// batches instead of per-sample calls. Bit-identical either way
  /// (accumulation order is preserved per sample); false keeps the
  /// per-sample reference path for equivalence tests and benchmarks.
  bool use_batched_scoring = true;
  /// Batched top-K selection (src/eval/topk.h): evaluation ranks each user
  /// through a streaming bounded heap fused with the batched score blocks
  /// (full catalogue) or a bucketed threshold cascade (candidate slice)
  /// instead of building and partial_sort-ing an O(items) candidate vector
  /// per user. Bit-identical either way (the (score desc, id asc) order is
  /// a strict total order, so the top-K list is unique); false keeps the
  /// partial_sort reference path for equivalence tests and benchmarks.
  bool use_batched_topk = true;
  /// Threads executing the clients of each round. 1 = serial (default);
  /// 0 = hardware concurrency. Results are bit-identical for any value:
  /// client training is independent and updates merge in batch order.
  size_t num_threads = 1;
  /// Numeric compute backend (src/math/backend.h). kFp64 (default) is the
  /// bit-exact reference — every prior result reproduces unchanged. kFp32
  /// runs client training, evaluation scoring and distillation in float
  /// (server state, aggregation, the wire and checkpoints stay fp64);
  /// kFp32Simd additionally dispatches the float kernels to AVX2+FMA,
  /// bit-identical to kFp32 by construction. fp32 metrics stay within the
  /// tolerance pinned by tests/core/backend_equivalence_test.cc.
  ComputeBackend compute_backend = ComputeBackend::kFp64;

  /// Item-range parameter-server shards (docs/SYNC.md "Sharding").
  /// 0 (default): the single-table HeteroServer — every prior result is
  /// bit-identical. S >= 1: the ShardedServer with S shards; S=1 is
  /// bit-identical to the single table, and because padded aggregation is
  /// row-independent every S reproduces the same tables bit-for-bit (the
  /// shard count changes memory layout and per-shard accounting, not
  /// arithmetic — pinned by tests/core/sharding_equivalence_test.cc).
  /// Participates in the resume fingerprint.
  size_t server_shards = 0;

  // --- delta sync & simulated network (docs/SYNC.md) --------------------
  /// True (default): every participation downloads the full item table —
  /// the paper's accounting, Table III reproduces unchanged. False: the
  /// row-subscription delta protocol — versioned server rows, per-client
  /// replicas, `params_down` = stale subscribed rows × (width + 1) + Θ + 1.
  /// Metrics are bit-identical either way (the protocol is lossless).
  bool full_downloads = true;
  /// Audit mode: replicas additionally cache shipped row bytes and every
  /// skipped row is CHECKed bit-identical against the live table. O(rows
  /// held × width) memory per client; tests and audits only.
  bool sync_verify_replicas = false;
  /// Per-client LRU cap on replica rows under delta sync (0 = unlimited).
  /// A production server cannot let every client's replica grow with its
  /// lifetime subscription union; capped replicas evict the least recently
  /// used rows and re-ship them on the next subscription — metrics are
  /// unchanged (the protocol stays lossless), `params_down` rises.
  size_t sync_replica_cap = 0;
  /// P(scheduled client is online) per selection. Offline clients re-enter
  /// the epoch's queue. 1.0 (default) = the paper's deterministic protocol.
  double availability = 1.0;
  /// Over-selection slack: each round selects clients_per_round + slack
  /// clients and merges the first clients_per_round to finish (by simulated
  /// network time); stragglers are discarded and re-queued. 0 = off.
  size_t straggler_slack = 0;
  /// Round deadline, seconds of simulated time; clients finishing later are
  /// dropped (and re-queued) even if fewer than clients_per_round made it.
  /// 0 = no deadline.
  double round_deadline = 0.0;
  /// Simulated network: median client bandwidth (bytes/s), log-normal
  /// per-client spread, base round-trip latency (s), per-(client, round)
  /// latency spread, and local compute seconds per training sample.
  double net_bandwidth = 1.25e6;
  double net_bandwidth_sigma = 0.0;
  double net_latency = 0.05;
  double net_latency_sigma = 0.0;
  double net_compute_per_sample = 0.0;
  /// Bytes per transmitted scalar on the wire (8 = fp64, 4 = fp32,
  /// 2 = fp16). Affects byte accounting and simulated transfer times only —
  /// the arithmetic stays double precision.
  size_t wire_scalar_bytes = 8;

  // --- asynchronous aggregation (docs/SYNC.md "Asynchronous aggregation") -
  /// Merge-on-arrival server: instead of a synchronous round barrier, each
  /// client's update merges the moment its simulated completion time
  /// arrives, weighted by how stale its downloaded model has become.
  /// False (default): the paper's synchronous round protocol — every prior
  /// result is bit-identical. Async merges ignore `aggregation` (each
  /// update applies individually with its staleness weight).
  bool async_mode = false;
  /// Staleness exponent: an update trained on a model `s` server versions
  /// old merges with weight w(s) = 1/(1+s)^alpha (FedAsync's polynomial
  /// damping). 0 disables damping (every arrival applies at full weight).
  double async_staleness_alpha = 0.5;
  /// Drop arrivals staler than this version gap (0 = no cap). Dropped
  /// clients re-enter the queue and train again on a fresh download; drops
  /// are counted per group in CommStats.
  size_t async_max_staleness = 0;
  /// Merged updates between two RESKD distillations, replacing the
  /// synchronous per-round trigger (0 = clients_per_round, matching the
  /// per-round cadence in expectation).
  size_t async_distill_every = 0;
  /// Clients concurrently in flight (0 = clients_per_round, the same
  /// device parallelism the synchronous protocol assumes).
  size_t async_inflight = 0;
  /// Completions merged before freed slots re-dispatch as one batch whose
  /// clients train in parallel. Part of the protocol (a larger batch defers
  /// dispatches to a slightly later virtual instant), so results depend on
  /// it deterministically — but never on the thread count. 1 = dispatch on
  /// every arrival (pure merge-on-arrival).
  size_t async_dispatch_batch = 1;

  // --- evaluation -------------------------------------------------------
  size_t top_k = 20;
  int eval_every = 0;     // 0 = only final epoch; n = every n epochs
  size_t eval_user_sample = 0;  // 0 = all users
  /// Candidate-sliced evaluation: score each user's test items plus this
  /// many seeded negative candidates instead of the full catalogue
  /// (He et al.'s sampled-candidate protocol). 0 (default) keeps the
  /// paper's full-catalogue ranking, so reported metrics are unchanged;
  /// when > 0, per-user cost drops from O(items) to O(test + candidates).
  /// Candidate top-K provably equals the full top-K restricted to the
  /// candidate set (same ordering; pinned by tests/eval/evaluator_test.cc).
  size_t eval_candidate_sample = 0;

  // --- fault injection & recovery (docs/ROBUSTNESS.md) ------------------
  /// Per-participation fault probabilities, mutually exclusive segments of
  /// one hash draw (their sum must be <= 1). All zero (default) = no
  /// faults, and every result is bit-identical to a fault-free build.
  double fault_upload_loss = 0.0;
  double fault_download_loss = 0.0;
  double fault_crash = 0.0;
  double fault_duplicate = 0.0;
  double fault_corrupt = 0.0;
  /// Failed transfers retry with capped exponential backoff + jitter on the
  /// virtual clock: delay = min(cap, base * 2^(fails-1)) * (1 + jitter*U).
  /// After `fault_retry_max` consecutive failures the client is dropped
  /// until the next epoch.
  size_t fault_retry_max = 5;
  double fault_retry_base = 1.0;   // seconds
  double fault_retry_cap = 60.0;   // seconds
  /// Updates rejected by admission control quarantine the client on a
  /// second (longer) backoff schedule before it may requeue.
  double fault_quarantine_base = 5.0;   // seconds
  double fault_quarantine_cap = 300.0;  // seconds
  double fault_jitter = 0.5;  // backoff jitter fraction in [0, 1]
  /// Server-side update admission control: finite-value scan, per-row norm
  /// clipping (`admit_max_row_norm`, 0 = off) and a robust z-score outlier
  /// gate (`admit_outlier_z`, 0 = off) over recently accepted update norms.
  bool admission_control = false;
  double admit_max_row_norm = 0.0;
  double admit_outlier_z = 0.0;
  /// Crash-consistent run checkpoints: write the full run state (server
  /// tables, versions, replicas, queue, RNG streams, clocks, counters) to
  /// `checkpoint_path + ".run"` every N completed rounds (sync) or at epoch
  /// boundaries (async), with atomic rename. 0 = off.
  size_t checkpoint_every = 0;
  /// Resume a killed run from `checkpoint_path + ".run"`. The restored run
  /// is bit-identical to one that was never interrupted.
  bool resume_run = false;
  /// Test/CI hook: abort the run after this many completed rounds (sync)
  /// or merges (async), simulating a crash. 0 = off.
  size_t debug_stop_after_rounds = 0;

  // --- telemetry (docs/OBSERVABILITY.md) --------------------------------
  /// Pure observation: none of these fields may perturb results — a run
  /// with telemetry on is bit-identical to one with it off (pinned by
  /// tests/core/telemetry_equivalence_test.cc), and none participate in the
  /// resume fingerprint (run_state.cc).
  /// When non-empty, federated runs stream per-round metrics rows (JSONL:
  /// meta / round / eval / summary / profile) to this path.
  std::string metrics_out;
  /// When non-empty, federated runs record dispatch/transfer/merge/distill/
  /// drop/fault/checkpoint events on the simulated clock and write Chrome
  /// trace-event JSON (Perfetto-loadable) to this path.
  std::string trace_out;
  /// Wall-clock RAII phase profiling through the hot paths; renders a
  /// phase-time table to stderr at run end (plus "profile" rows in
  /// metrics_out). Off by default: the disabled scopes cost one atomic load.
  bool profile = false;
  /// Keep each round's CommStats delta (CommStats::SnapshotRound) in
  /// ExperimentResult::round_comm so benches can plot traffic over rounds.
  bool track_round_comm = false;

  uint64_t seed = 7;

  /// When non-empty, federated runs write the final server public
  /// parameters (all slots' V and Θ) to this path (see core/checkpoint.h).
  std::string checkpoint_path;

  /// Validates ranges and cross-field constraints.
  Status Validate() const;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_CONFIG_H_
