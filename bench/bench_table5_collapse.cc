// Reproduces Table V: variance of the singular values of the covariance
// matrix of the largest item embedding Vl, with and without DDR.
//
// Paper shape: +DDR strictly reduces the variance in all six cells,
// i.e. the regularizer prevents dimensional collapse. RESKD is disabled
// here so the diagnostic isolates DDR (the paper's ablation context).
// Alongside the paper's raw variance we print a scale-normalized variant
// (variance / mean², a squared coefficient of variation) because raw
// variances shrink with embedding magnitude at reduced training scale.
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

struct PaperRow {
  const char* model;
  const char* dataset;
  double without_ddr, with_ddr;
};
constexpr PaperRow kPaper[] = {
    {"Fed-NCF", "ml", 0.4573, 0.0974},
    {"Fed-NCF", "anime", 0.9190, 0.0838},
    {"Fed-NCF", "douban", 0.0523, 0.0167},
    {"Fed-LightGCN", "ml", 0.0459, 0.0208},
    {"Fed-LightGCN", "anime", 0.0421, 0.0240},
    {"Fed-LightGCN", "douban", 0.0348, 0.0171},
};

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  TablePrinter table(
      "Table V: variance of singular values of cov(Vl) (lower = less "
      "collapse)",
      {"Model", "Dataset", "-DDR", "+DDR", "-DDR (norm)", "+DDR (norm)",
       "-DDR(paper)", "+DDR(paper)"});

  int cells = 0, ddr_reduces = 0;
  for (const GridCase& cell : EvaluationGrid(cli)) {
    auto run = [&](bool ddr) {
      ExperimentConfig cfg = *base_cfg;
      cfg.base_model = cell.model;
      cfg.dataset = cell.dataset;
      ApplyPaperDims(&cfg);
      cfg.ensemble_distillation = false;
      cfg.decorrelation = ddr;
      auto runner = ExperimentRunner::Create(cfg);
      HFR_CHECK(runner.ok()) << runner.status().ToString();
      std::fprintf(stderr, "[table5] %s / %s / %s ...\n",
                   BaseModelName(cell.model).c_str(), cell.dataset.c_str(),
                   ddr ? "+DDR" : "-DDR");
      return (*runner)->Run(Method::kHeteFedRec);
    };
    ExperimentResult without = run(false);
    ExperimentResult with = run(true);

    const PaperRow* paper = nullptr;
    for (const auto& row : kPaper) {
      if (BaseModelName(cell.model) == row.model &&
          cell.dataset == row.dataset) {
        paper = &row;
      }
    }
    table.AddRow(
        {BaseModelName(cell.model), cell.dataset,
         TablePrinter::Num(without.collapse_variance, 6),
         TablePrinter::Num(with.collapse_variance, 6),
         TablePrinter::Num(without.collapse_cv, 4),
         TablePrinter::Num(with.collapse_cv, 4),
         paper ? TablePrinter::Num(paper->without_ddr, 4) : "-",
         paper ? TablePrinter::Num(paper->with_ddr, 4) : "-"});
    cells++;
    ddr_reduces += (with.collapse_variance < without.collapse_variance);
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "table5_collapse"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  std::printf(
      "\nShape check: +DDR reduces the variance of singular values (the "
      "paper's metric) in %d/%d cells (paper: all 6).\n",
      ddr_reduces, cells);
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
