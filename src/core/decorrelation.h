// Dimensional Decorrelation Regularization (DDR), Eq. 12-14.
//
// UDL alone lets a large embedding table satisfy all of its objectives
// inside the low-dimensional prefix shared with small models — dimensional
// collapse. The paper's fix penalizes the Frobenius norm of the correlation
// matrix of the (column-standardized) embedding table:
//
//   Lreg(V) = (1/N) || corr( (V - V̄) / sqrt(var V) ) ||_F        (Eq. 13)
//
// which is an efficient surrogate for equalizing the singular values of the
// covariance matrix (Eq. 12; see Hua et al. 2021, Shi et al. 2022).
//
// Gradient derivation (see DESIGN.md §3): with X the standardized table
// (M rows) and C = XᵀX / M,
//   dL/dX = 2 · X · C / (M · N · ||C||_F),
// backpropagated exactly through the per-column centering; the per-column
// standard deviation is treated as a constant (stop-gradient), the standard
// simplification in decorrelation losses.
#ifndef HETEFEDREC_CORE_DECORRELATION_H_
#define HETEFEDREC_CORE_DECORRELATION_H_

#include "src/math/matrix.h"
#include "src/math/sparse.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Computes Lreg(V) and accumulates alpha * dLreg/dV into `grad`.
///
/// \param table item embedding table (rows = items, cols = dims) — a dense
///   `Matrix` or a `RowOverlayTable` view (src/math/sparse.h); only the
///   sampled rows are ever read.
/// \param alpha regularization weight (the loss returned is unweighted;
///   the gradient is scaled by alpha, matching Eq. 14's α·Lreg term).
/// \param sample_rows if > 0 and < rows, the correlation matrix and its
///   gradient are estimated on this many uniformly sampled rows.
/// \param rng used only for row sampling.
/// \param grad accumulator (`Matrix` or `SparseRowStore`) with at least as
///   many columns as `table`; gradients land in the leading table.cols()
///   columns. May be null to compute the loss only.
/// \returns Lreg(V) (the unweighted loss value).
template <typename TableT, typename GradT>
double DecorrelationLossAndGrad(const TableT& table, double alpha,
                                size_t sample_rows, Rng* rng, GradT* grad);

/// Loss-only convenience overload (callers pass a literal nullptr, which
/// cannot deduce GradT).
template <typename TableT>
double DecorrelationLossAndGrad(const TableT& table, double alpha,
                                size_t sample_rows, Rng* rng,
                                std::nullptr_t) {
  using GradM = MatrixT<typename TableT::Scalar>;
  return DecorrelationLossAndGrad(table, alpha, sample_rows, rng,
                                  static_cast<GradM*>(nullptr));
}

/// Explicit instantiations live in decorrelation.cc. The float-table
/// variants (fp32 compute backend) keep the loss math itself in double —
/// the sample is small and the RNG draw sequence must match the fp64
/// backend exactly — only the table reads and gradient writes are float.
extern template double DecorrelationLossAndGrad<Matrix, Matrix>(
    const Matrix&, double, size_t, Rng*, Matrix*);
extern template double
DecorrelationLossAndGrad<RowOverlayTable, SparseRowStore>(
    const RowOverlayTable&, double, size_t, Rng*, SparseRowStore*);
extern template double DecorrelationLossAndGrad<MatrixF, MatrixF>(
    const MatrixF&, double, size_t, Rng*, MatrixF*);
extern template double
DecorrelationLossAndGrad<RowOverlayTableF, SparseRowStoreF>(
    const RowOverlayTableF&, double, size_t, Rng*, SparseRowStoreF*);

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_DECORRELATION_H_
