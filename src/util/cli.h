// Tiny command-line flag parser used by bench and example binaries.
//
// Flags look like --name=value or --name value. Unknown flags are an error
// so typos don't silently fall back to defaults mid-experiment.
#ifndef HETEFEDREC_UTIL_CLI_H_
#define HETEFEDREC_UTIL_CLI_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace hetefedrec {

/// \brief Declarative flag registry + parser.
class CommandLine {
 public:
  /// Registers a flag with a default value and help text.
  void AddFlag(const std::string& name, const std::string& default_value,
               const std::string& help);

  /// Parses argv. Returns InvalidArgument on unknown flags or missing values.
  Status Parse(int argc, char** argv);

  /// Accessors; the flag must have been registered.
  std::string GetString(const std::string& name) const;
  int GetInt(const std::string& name) const;
  uint64_t GetUint64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Help text listing all registered flags.
  std::string Usage(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
};

/// Registers the experiment flags shared by every experiment binary (the
/// bench suite and tools/hetefedrec_run): execution toggles, delta sync,
/// simulated network, async aggregation, fault injection, admission,
/// sharding, checkpointing and telemetry. Pure string registration — the
/// matching config application lives in ApplyExperimentFlags
/// (src/core/config.h), so flag names, defaults and help text exist in
/// exactly one place. Binary-specific flags (presets, dataset/model
/// selection, paper hyper-parameters) stay with their binaries.
void RegisterExperimentFlags(CommandLine* cli);

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_CLI_H_
