#include "src/eval/evaluator.h"

#include <numeric>
#include <unordered_set>

#include "src/eval/metrics.h"
#include "src/util/logging.h"
#include "src/util/rng.h"

namespace hetefedrec {

Evaluator::Evaluator(const Dataset& ds, const GroupAssignment& assignment,
                     size_t top_k, size_t user_sample, uint64_t seed)
    : ds_(ds), assignment_(assignment), top_k_(top_k) {
  users_.resize(ds.num_users());
  std::iota(users_.begin(), users_.end(), 0);
  if (user_sample > 0 && user_sample < users_.size()) {
    Rng rng(seed);
    rng.Shuffle(&users_);
    users_.resize(user_sample);
  }
}

GroupedEval Evaluator::Evaluate(const ScoreFn& score_fn) const {
  GroupedEval out;
  std::vector<double> scores;
  std::vector<bool> masked(ds_.num_items());
  double sum_recall[1 + kNumGroups] = {0};
  double sum_ndcg[1 + kNumGroups] = {0};
  size_t counts[1 + kNumGroups] = {0};

  for (UserId u : users_) {
    const auto& test_items = ds_.TestItems(u);
    if (test_items.empty()) continue;
    score_fn(u, &scores);
    HFR_CHECK_EQ(scores.size(), ds_.num_items());

    std::fill(masked.begin(), masked.end(), false);
    for (ItemId i : ds_.TrainItems(u)) masked[i] = true;

    std::unordered_set<ItemId> relevant(test_items.begin(), test_items.end());
    std::vector<ItemId> topk = TopKItems(scores, masked, top_k_);
    double recall = RecallAtK(topk, relevant);
    double ndcg = NdcgAtK(topk, relevant);

    int g = 1 + static_cast<int>(assignment_.of(u));
    sum_recall[0] += recall;
    sum_ndcg[0] += ndcg;
    counts[0]++;
    sum_recall[g] += recall;
    sum_ndcg[g] += ndcg;
    counts[g]++;
  }

  auto finalize = [&](int idx) {
    EvalResult r;
    r.users = counts[idx];
    if (counts[idx] > 0) {
      r.recall = sum_recall[idx] / static_cast<double>(counts[idx]);
      r.ndcg = sum_ndcg[idx] / static_cast<double>(counts[idx]);
    }
    return r;
  };
  out.overall = finalize(0);
  for (int g = 0; g < kNumGroups; ++g) out.per_group[g] = finalize(1 + g);
  return out;
}

}  // namespace hetefedrec
