// Aggregation-mode semantics: the kSum / kMean relationship and end-to-end
// behavior under the paper-literal summation (DESIGN.md §6.4).
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/hetero_server.h"
#include "src/core/trainer.h"

namespace hetefedrec {
namespace {

constexpr size_t kItems = 12;

LocalUpdateResult MakeUpdate(const HeteroServer& server,
                             const std::vector<LocalTaskSpec>& tasks,
                             double value) {
  LocalUpdateResult r;
  r.v_delta = Matrix(kItems, tasks.back().width);
  r.v_delta.Fill(value);
  for (const auto& t : tasks) {
    r.theta_deltas.push_back(FeedForwardNet::ZerosLike(server.theta(t.slot)));
  }
  return r;
}

HeteroServer MakeServer(AggregationMode mode) {
  HeteroServer::Options opt;
  opt.widths = {2, 4};
  opt.num_items = kItems;
  opt.aggregation = mode;
  opt.seed = 3;
  return HeteroServer(opt);
}

TEST(AggregationModesTest, SingleClientSumEqualsMean) {
  // With exactly one contributor the mean divides by one: both modes must
  // produce identical tables.
  HeteroServer sum_server = MakeServer(AggregationMode::kSum);
  HeteroServer mean_server = MakeServer(AggregationMode::kMean);
  std::vector<LocalTaskSpec> tasks = {{0, 2}, {1, 4}};
  for (HeteroServer* s : {&sum_server, &mean_server}) {
    s->BeginRound();
    s->Accumulate(tasks, MakeUpdate(*s, tasks, 0.75));
    s->FinishRound();
  }
  for (size_t slot = 0; slot < 2; ++slot) {
    for (size_t i = 0; i < sum_server.table(slot).data().size(); ++i) {
      EXPECT_DOUBLE_EQ(sum_server.table(slot).data()[i],
                       mean_server.table(slot).data()[i]);
    }
  }
}

TEST(AggregationModesTest, SumScalesLinearlyWithClientCount) {
  // n identical clients under kSum move the table n times further than one.
  auto run = [&](int n) {
    HeteroServer server = MakeServer(AggregationMode::kSum);
    Matrix before = server.table(1);
    std::vector<LocalTaskSpec> tasks = {{0, 2}, {1, 4}};
    server.BeginRound();
    for (int c = 0; c < n; ++c) {
      server.Accumulate(tasks, MakeUpdate(server, tasks, 0.5));
    }
    server.FinishRound();
    return server.table(1)(0, 0) - before(0, 0);
  };
  EXPECT_NEAR(run(4), 4.0 * run(1), 1e-12);
}

TEST(AggregationModesTest, MeanInvariantToClientCount) {
  // n identical clients under kMean move the table exactly as far as one.
  auto run = [&](int n) {
    HeteroServer server = MakeServer(AggregationMode::kMean);
    Matrix before = server.table(1);
    std::vector<LocalTaskSpec> tasks = {{0, 2}, {1, 4}};
    server.BeginRound();
    for (int c = 0; c < n; ++c) {
      server.Accumulate(tasks, MakeUpdate(server, tasks, 0.5));
    }
    server.FinishRound();
    return server.table(1)(0, 0) - before(0, 0);
  };
  EXPECT_NEAR(run(5), run(1), 1e-12);
}

TEST(AggregationModesTest, SumModeEndToEndTrains) {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.025;
  cfg.dims = {4, 8, 16};
  cfg.global_epochs = 3;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.aggregation = AggregationMode::kSum;
  cfg.seed = 5;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  for (Method m : {Method::kAllSmall, Method::kHeteFedRec}) {
    ExperimentResult r = (*runner)->Run(m);
    EXPECT_TRUE(std::isfinite(r.final_eval.overall.ndcg)) << MethodName(m);
    EXPECT_GT(r.final_eval.overall.users, 0u);
  }
}

TEST(AggregationModesTest, DataWeightedMeanFollowsWeights) {
  // Two clients with weights 3 and 1 and deltas 1.0 / -1.0: the weighted
  // mean is (3*1 - 1) / 4 = 0.5.
  HeteroServer server = MakeServer(AggregationMode::kDataWeighted);
  Matrix before = server.table(1);
  std::vector<LocalTaskSpec> tasks = {{0, 2}, {1, 4}};
  server.BeginRound();
  server.Accumulate(tasks, MakeUpdate(server, tasks, 1.0), 3.0);
  server.Accumulate(tasks, MakeUpdate(server, tasks, -1.0), 1.0);
  server.FinishRound();
  EXPECT_NEAR(server.table(1)(0, 0) - before(0, 0), 0.5, 1e-12);
}

TEST(AggregationModesTest, DataWeightedEndToEndTrains) {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.025;
  cfg.dims = {4, 8, 16};
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.aggregation = AggregationMode::kDataWeighted;
  cfg.seed = 5;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
  EXPECT_TRUE(std::isfinite(r.final_eval.overall.ndcg));
  EXPECT_GT(r.final_eval.overall.users, 0u);
}

TEST(AggregationModesTest, ModesDivergeWithMultipleClients) {
  // Sanity: with >1 contributor the two modes genuinely differ.
  HeteroServer sum_server = MakeServer(AggregationMode::kSum);
  HeteroServer mean_server = MakeServer(AggregationMode::kMean);
  std::vector<LocalTaskSpec> tasks = {{0, 2}, {1, 4}};
  for (HeteroServer* s : {&sum_server, &mean_server}) {
    s->BeginRound();
    s->Accumulate(tasks, MakeUpdate(*s, tasks, 1.0));
    s->Accumulate(tasks, MakeUpdate(*s, tasks, 1.0));
    s->FinishRound();
  }
  EXPECT_NE(sum_server.table(1)(0, 0), mean_server.table(1)(0, 0));
}

}  // namespace
}  // namespace hetefedrec
