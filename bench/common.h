// Shared plumbing for the experiment bench binaries: the scale presets,
// common flags, and paper-reference constants for side-by-side reporting.
#ifndef HETEFEDREC_BENCH_COMMON_H_
#define HETEFEDREC_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/util/cli.h"

namespace hetefedrec::bench {

/// Registers the flags every experiment bench shares.
void AddCommonFlags(CommandLine* cli);

/// Builds an ExperimentConfig from parsed common flags. The `--scale`
/// presets trade fidelity for runtime:
///   smoke: seconds (CI sanity),
///   bench: minutes on one core (default; shapes comparable to the paper),
///   paper: Table I dataset sizes and the paper's epoch counts.
StatusOr<ExperimentConfig> ConfigFromFlags(const CommandLine& cli);

/// Applies the per-dataset paper dimensions: {8,16,32} for ml/anime,
/// {32,64,128} for douban (§V-D), unless --dims overrides.
void ApplyPaperDims(ExperimentConfig* config);

/// Output path helper: "<out_dir>/<name>.csv" (out_dir from flags).
std::string CsvPath(const CommandLine& cli, const std::string& name);

/// One (base model, dataset) cell of the paper's evaluation grid.
struct GridCase {
  BaseModel model;
  std::string dataset;
};

/// The six (model × dataset) cells of Table II, filtered by the --model and
/// --dataset flags when set.
std::vector<GridCase> EvaluationGrid(const CommandLine& cli);

/// Parses a CLI status into an exit code, printing the error.
int FailWith(const Status& status);

}  // namespace hetefedrec::bench

#endif  // HETEFEDREC_BENCH_COMMON_H_
