#include "src/fed/sync/async_aggregator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/util/logging.h"
#include "src/util/telemetry/profiler.h"

namespace hetefedrec {

AsyncAggregator::AsyncAggregator(ServerApi* server, const Options& options)
    : server_(server), options_(options) {
  HFR_CHECK(server != nullptr);
  HFR_CHECK_GE(options.staleness_alpha, 0.0);
}

double AsyncAggregator::StalenessWeight(uint64_t staleness) const {
  if (staleness == 0 || options_.staleness_alpha == 0.0) return 1.0;
  return std::pow(1.0 + static_cast<double>(staleness),
                  -options_.staleness_alpha);
}

bool AsyncAggregator::Later(const Event& a, const Event& b) {
  // std::push_heap builds a max-heap; invert so the *earliest* event pops.
  if (a.finish != b.finish) return a.finish > b.finish;
  return a.seq > b.seq;
}

void AsyncAggregator::Submit(UserId user,
                             const std::vector<LocalTaskSpec>* tasks,
                             LocalUpdateResult update,
                             uint64_t download_version,
                             double finish_seconds) {
  HFR_CHECK(tasks != nullptr && !tasks->empty());
  HFR_CHECK_GE(finish_seconds, clock_);
  Event e;
  e.finish = finish_seconds;
  e.seq = next_seq_++;
  e.download_version = download_version;
  e.user = user;
  e.tasks = tasks;
  e.update = std::move(update);
  events_.push_back(std::move(e));
  std::push_heap(events_.begin(), events_.end(), Later);
}

AsyncAggregator::Outcome AsyncAggregator::MergeNext(
    const DistillationOptions& kd_options, Rng* kd_rng) {
  HFR_PROFILE("merge");
  HFR_CHECK(!events_.empty());
  std::pop_heap(events_.begin(), events_.end(), Later);
  Event e = std::move(events_.back());
  events_.pop_back();
  HFR_CHECK_GE(e.finish, clock_);
  clock_ = e.finish;

  const uint64_t now = server_->versions().round();
  HFR_CHECK_GE(now, e.download_version);
  const uint64_t staleness = now - e.download_version;

  Outcome out;
  out.user = e.user;
  out.finish_seconds = e.finish;
  out.staleness = staleness;
  out.train_loss = e.update.train_loss;
  out.params_up = e.update.params_up;

  if (options_.max_staleness > 0 && staleness > options_.max_staleness) {
    ++dropped_;
    return out;  // merged = false, weight = 0
  }

  if (server_->admission_enabled()) {
    const AdmissionDecision decision = server_->Admit(*e.tasks, &e.update);
    out.rows_clipped = decision.rows_clipped;
    if (decision.verdict != AdmissionVerdict::kAccept) {
      out.rejected = true;
      out.rejected_nonfinite =
          decision.verdict == AdmissionVerdict::kRejectNonFinite;
      return out;  // merged = false; the caller quarantines the client
    }
  }

  out.weight = StalenessWeight(staleness);
  server_->ApplyUpdate(*e.tasks, e.update, out.weight);
  out.merged = true;
  ++merged_;

  if (options_.distill_every > 0 && kd_rng != nullptr &&
      merged_ % options_.distill_every == 0) {
    server_->Distill(kd_options, kd_rng);
    out.distilled = true;
  }
  return out;
}

void AsyncAggregator::RestoreState(double clock_seconds, uint64_t next_seq,
                                   size_t merged, size_t dropped) {
  HFR_CHECK(events_.empty());
  clock_ = clock_seconds;
  next_seq_ = next_seq;
  merged_ = merged;
  dropped_ = dropped;
}

}  // namespace hetefedrec
