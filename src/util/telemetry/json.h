// Deterministic JSON emission for the telemetry layer.
//
// The metrics JSONL stream and the Chrome trace file are tested for
// byte-equality across runs and thread counts, so every number must render
// identically everywhere: integers print as integers, doubles print with
// locale-independent snprintf("%.17g") (round-trip exact for IEEE double),
// and non-finite values print as null (JSON has no NaN/Inf).
//
// JsonObj is an append-only object builder: keys are emitted in call order
// (never sorted, never hashed), which keeps the byte layout a pure function
// of the call sequence.
#ifndef HETEFEDREC_UTIL_TELEMETRY_JSON_H_
#define HETEFEDREC_UTIL_TELEMETRY_JSON_H_

#include <cstdint>
#include <string>

namespace hetefedrec {

/// Appends `v` escaped and double-quoted. Escapes quotes, backslashes and
/// control characters; telemetry strings are ASCII identifiers so no UTF-8
/// handling is needed.
void AppendJsonString(std::string* out, const std::string& v);

/// Appends `v` as a JSON number: integer form when exactly integral and
/// within the 2^53 exact range, otherwise %.17g; null when non-finite.
void AppendJsonNumber(std::string* out, double v);

/// Single-use JSON object builder; Build() closes the object.
class JsonObj {
 public:
  JsonObj() : buf_("{") {}

  JsonObj& U64(const char* key, uint64_t v);
  JsonObj& I64(const char* key, int64_t v);
  JsonObj& Num(const char* key, double v);
  JsonObj& Bool(const char* key, bool v);
  JsonObj& Str(const char* key, const std::string& v);
  /// Inserts pre-rendered JSON (nested object or array) verbatim.
  JsonObj& Raw(const char* key, const std::string& json);

  /// Closes and returns the object. The builder must not be reused.
  std::string Build() {
    buf_ += '}';
    return std::move(buf_);
  }

 private:
  void Key(const char* key);

  std::string buf_;
  bool first_ = true;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_TELEMETRY_JSON_H_
