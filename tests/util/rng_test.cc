#include "src/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace hetefedrec {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.UniformInt(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sumsq += x * x;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(3.0, 2.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(19);
  std::vector<double> xs(50001);
  for (auto& x : xs) x = rng.LogNormal(std::log(77.0), 1.0);
  std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
  EXPECT_NEAR(xs[xs.size() / 2], 77.0, 5.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(29);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(37);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, ForkStreamsAreIndependentAndDeterministic) {
  Rng root(99);
  Rng a1 = root.Fork(1);
  Rng a2 = root.Fork(1);
  Rng b = root.Fork(2);
  EXPECT_EQ(a1.Next(), a2.Next());
  // Stream 1 and 2 should diverge immediately.
  Rng c1 = root.Fork(1);
  EXPECT_NE(c1.Next(), b.Next());
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  Rng a(42), b(42);
  (void)a.Fork(7);
  EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace hetefedrec
