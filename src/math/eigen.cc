#include "src/math/eigen.h"

#include <algorithm>
#include <cmath>

#include "src/math/stats.h"

namespace hetefedrec {

std::vector<double> SymmetricEigenvalues(const Matrix& sym, int max_sweeps) {
  HFR_CHECK_EQ(sym.rows(), sym.cols());
  const size_t n = sym.rows();
  Matrix a = sym;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      HFR_CHECK_LE(std::abs(a(i, j) - a(j, i)), 1e-9 + 1e-9 * a.MaxAbs());
      // Symmetrize to wash out representational round-off.
      double v = 0.5 * (a(i, j) + a(j, i));
      a(i, j) = v;
      a(j, i) = v;
    }
  }

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    if (off < 1e-24) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Apply the rotation J(p,q,theta)^T A J(p,q,theta).
        for (size_t k = 0; k < n; ++k) {
          double akp = a(k, p);
          double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          double apk = a(p, k);
          double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
      }
    }
  }

  std::vector<double> eig(n);
  for (size_t i = 0; i < n; ++i) eig[i] = a(i, i);
  std::sort(eig.begin(), eig.end(), std::greater<double>());
  return eig;
}

double SingularValueVariance(const Matrix& m) {
  Matrix cov = CovarianceMatrix(m);
  std::vector<double> eig = SymmetricEigenvalues(cov);
  return Variance(eig);
}

}  // namespace hetefedrec
