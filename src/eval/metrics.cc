#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace hetefedrec {

double RecallAtK(const std::vector<ItemId>& topk,
                 const std::unordered_set<ItemId>& relevant) {
  if (relevant.empty()) return 0.0;
  size_t hits = 0;
  for (ItemId i : topk) hits += relevant.count(i);
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double NdcgAtK(const std::vector<ItemId>& topk,
               const std::unordered_set<ItemId>& relevant) {
  if (relevant.empty()) return 0.0;
  double dcg = 0.0;
  for (size_t p = 0; p < topk.size(); ++p) {
    if (relevant.count(topk[p])) {
      dcg += 1.0 / std::log2(static_cast<double>(p) + 2.0);
    }
  }
  double idcg = 0.0;
  size_t ideal_hits = std::min(topk.size(), relevant.size());
  for (size_t p = 0; p < ideal_hits; ++p) {
    idcg += 1.0 / std::log2(static_cast<double>(p) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double HitRateAtK(const std::vector<ItemId>& topk,
                  const std::unordered_set<ItemId>& relevant) {
  for (ItemId i : topk) {
    if (relevant.count(i)) return 1.0;
  }
  return 0.0;
}

double PrecisionAtK(const std::vector<ItemId>& topk,
                    const std::unordered_set<ItemId>& relevant) {
  if (topk.empty()) return 0.0;
  size_t hits = 0;
  for (ItemId i : topk) hits += relevant.count(i);
  return static_cast<double>(hits) / static_cast<double>(topk.size());
}

double MrrAtK(const std::vector<ItemId>& topk,
              const std::unordered_set<ItemId>& relevant) {
  for (size_t p = 0; p < topk.size(); ++p) {
    if (relevant.count(topk[p])) {
      return 1.0 / static_cast<double>(p + 1);
    }
  }
  return 0.0;
}

double AveragePrecisionAtK(const std::vector<ItemId>& topk,
                           const std::unordered_set<ItemId>& relevant) {
  if (relevant.empty() || topk.empty()) return 0.0;
  size_t hits = 0;
  double sum = 0.0;
  for (size_t p = 0; p < topk.size(); ++p) {
    if (relevant.count(topk[p])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(p + 1);
    }
  }
  size_t denom = std::min(topk.size(), relevant.size());
  return denom > 0 ? sum / static_cast<double>(denom) : 0.0;
}

std::vector<ItemId> TopKItems(const std::vector<double>& scores,
                              const std::vector<bool>& masked, size_t k) {
  HFR_CHECK_EQ(scores.size(), masked.size());
  std::vector<ItemId> candidates;
  candidates.reserve(scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    if (!masked[i]) candidates.push_back(static_cast<ItemId>(i));
  }
  k = std::min(k, candidates.size());
  // Stable ordering for ties: higher score first, then lower item id.
  auto better = [&scores](ItemId a, ItemId b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  std::partial_sort(candidates.begin(), candidates.begin() + k,
                    candidates.end(), better);
  candidates.resize(k);
  return candidates;
}

std::vector<ItemId> TopKFromCandidates(const std::vector<ItemId>& ids,
                                       const std::vector<double>& scores,
                                       size_t k) {
  HFR_CHECK_EQ(ids.size(), scores.size());
  std::vector<size_t> order(ids.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  k = std::min(k, order.size());
  auto better = [&](size_t a, size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return ids[a] < ids[b];
  };
  std::partial_sort(order.begin(), order.begin() + k, order.end(), better);
  std::vector<ItemId> topk(k);
  for (size_t i = 0; i < k; ++i) topk[i] = ids[order[i]];
  return topk;
}

}  // namespace hetefedrec
