#!/usr/bin/env python3
"""Compare a google-benchmark JSON run against a checked-in baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [threshold]

Fails (exit 1) when any benchmark present in both files regressed by more
than `threshold` (default 1.5x) in cpu_time, or when a baseline benchmark
is missing from the current run (a rename or filter edit would otherwise
silently shrink the gate to nothing). Benchmarks missing from the
baseline are reported but never fail the check, so adding a benchmark does
not require touching the baseline in the same commit; remember to
regenerate it afterwards:

    ./build/bench_kernels --benchmark_filter='<ci filter>' \
        --benchmark_min_time=0.05s --benchmark_format=json \
        > .github/bench_baseline.json

The threshold is deliberately loose: CI machines are noisy and shared, so
this guards against step-change regressions (an accidentally quadratic
loop, a lost fast path), not percentage drift. Aggregate entries
(_mean/_median/_stddev) and per-iteration counters are ignored.
"""

import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        name = b.get("name", "")
        if b.get("run_type") == "aggregate" or name.endswith(
            ("_mean", "_median", "_stddev", "_cv")
        ):
            continue
        out[name] = b["cpu_time"] * _UNIT_NS[b.get("time_unit", "ns")]
    return out


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    current = load(argv[1])
    baseline = load(argv[2])
    threshold = float(argv[3]) if len(argv) > 3 else 1.5

    if not current:
        print(f"ERROR: no benchmarks parsed from {argv[1]}")
        return 1

    failures = []
    for name, cpu_ns in sorted(current.items()):
        base_ns = baseline.get(name)
        if base_ns is None:
            print(f"  NEW      {name}: {cpu_ns / 1e6:.3f} ms (no baseline)")
            continue
        ratio = cpu_ns / base_ns if base_ns > 0 else float("inf")
        status = "OK" if ratio <= threshold else "REGRESSED"
        print(
            f"  {status:9s}{name}: {cpu_ns / 1e6:.3f} ms "
            f"vs baseline {base_ns / 1e6:.3f} ms ({ratio:.2f}x)"
        )
        if ratio > threshold:
            failures.append((name, ratio))

    missing = sorted(set(baseline) - set(current))
    if missing:
        print(
            f"\nFAIL: {len(missing)} baseline benchmark(s) missing from the "
            "current run (renamed or dropped from the CI filter?). "
            "Regenerate the baseline if intentional:"
        )
        for name in missing:
            print(f"  {name}")
        return 1

    if failures:
        print(
            f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
            f"{threshold}x:"
        )
        for name, ratio in failures:
            print(f"  {name}: {ratio:.2f}x")
        return 1
    print(f"\nOK: no benchmark regressed more than {threshold}x "
          f"({len(current)} checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
