// Per-row version stamps for the server's public parameter tables.
//
// The delta-sync protocol (docs/SYNC.md) needs one fact per (slot, row):
// the last round in which the row's values could have changed. The server
// stamps rows as it mutates them — `HeteroServer::FinishRound` stamps the
// rows it applied aggregates to, `HeteroServer::Distill` stamps the rows
// RESKD perturbed — and `SyncService` compares stamps against each client
// replica to decide which subscribed rows must be re-shipped.
//
// Invariants (asserted by tests/fed/sync_test.cc):
//   1. Monotonicity: Version(slot, row) never decreases.
//   2. Soundness: a row's bytes change only in a round that stamps it, so
//      "held version == current version" implies the replica's copy is
//      bit-identical to the server row.
// Over-stamping (stamping a row whose bytes happened not to change) is
// always safe — it can only cause a redundant ship, never a stale read.
#ifndef HETEFEDREC_FED_SYNC_VERSIONED_TABLE_H_
#define HETEFEDREC_FED_SYNC_VERSIONED_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/util/logging.h"

namespace hetefedrec {

/// \brief Read-only row-version contract of a server (ServerApi::versions).
///
/// The delta-sync protocol needs exactly two facts from a server, however
/// its version state is stored (one table, or one table per shard):
///   - `round()`: the stamp the *next* mutation will carry — the download
///     version async staleness is measured against.
///   - `Version(slot, row)`: the last round in which (slot, row) could have
///     changed, monotone per row.
/// `VersionedTable` is the single-table implementation; the sharded server
/// exposes a view that routes each row to its shard's table.
class VersionView {
 public:
  virtual ~VersionView() = default;

  /// Round the next stamps will carry.
  virtual uint64_t round() const = 0;

  /// Last round in which (slot, row) could have changed.
  virtual uint64_t Version(size_t slot, size_t row) const = 0;
};

/// \brief Round-stamped row versions for every model slot of one server.
class VersionedTable : public VersionView {
 public:
  VersionedTable() = default;

  /// \param num_slots model slots (small/medium/large or one).
  /// \param num_rows rows per table (the item catalogue size).
  VersionedTable(size_t num_slots, size_t num_rows);

  size_t num_slots() const { return versions_.size(); }
  size_t num_rows() const { return num_rows_; }

  /// Round the next stamps will carry. Starts at 0 (the initial tables);
  /// the server advances it once per aggregation round.
  uint64_t round() const { return round_; }
  void AdvanceRound() { ++round_; }

  /// Marks one row of one slot as (possibly) changed this round.
  void Stamp(size_t slot, uint32_t row) {
    HFR_CHECK_LT(slot, versions_.size());
    HFR_CHECK_LT(static_cast<size_t>(row), num_rows_);
    versions_[slot][row] = round_;
  }

  /// Marks every row of one slot as changed this round. O(1): kept as a
  /// per-slot floor so dense rounds don't pay an O(num_rows) sweep.
  void StampAll(size_t slot) {
    HFR_CHECK_LT(slot, versions_.size());
    floor_[slot] = round_;
  }

  /// Last round in which (slot, row) could have changed.
  uint64_t Version(size_t slot, size_t row) const {
    HFR_CHECK_LT(slot, versions_.size());
    HFR_CHECK_LT(row, num_rows_);
    const uint64_t v = versions_[slot][row];
    return v > floor_[slot] ? v : floor_[slot];
  }

  /// Raw state views for run checkpoints (the raw stamps, not floored).
  uint64_t floor_of(size_t slot) const {
    HFR_CHECK_LT(slot, floor_.size());
    return floor_[slot];
  }
  const std::vector<uint64_t>& slot_versions(size_t slot) const {
    HFR_CHECK_LT(slot, versions_.size());
    return versions_[slot];
  }

  /// Restores a snapshot captured via round()/floor_of()/slot_versions().
  /// Shapes must match the constructed table.
  void Restore(uint64_t round, const std::vector<uint64_t>& floors,
               const std::vector<std::vector<uint64_t>>& versions) {
    HFR_CHECK_EQ(floors.size(), floor_.size());
    HFR_CHECK_EQ(versions.size(), versions_.size());
    for (size_t s = 0; s < versions.size(); ++s) {
      HFR_CHECK_EQ(versions[s].size(), versions_[s].size());
    }
    round_ = round;
    floor_ = floors;
    versions_ = versions;
  }

 private:
  size_t num_rows_ = 0;
  uint64_t round_ = 0;
  std::vector<std::vector<uint64_t>> versions_;  // [slot][row]
  std::vector<uint64_t> floor_;                  // per-slot StampAll floor
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SYNC_VERSIONED_TABLE_H_
