// Fixture: must produce zero findings. Wall time is read only through the
// sanctioned stopwatch; mentions of steady_clock in comments or strings
// must not trip R1, and identifiers merely containing "time(" must not
// match the C time() pattern.
#include <string>

#include "src/util/timer.h"

double Measure() {
  hetefedrec::Timer timer;  // Timer wraps std::chrono::steady_clock
  const std::string label = "wall time(see docs) via system_clock";
  (void)label;
  return timer.Seconds();
}

double runtime(int x) { return static_cast<double>(x); }

double Call() { return runtime(3); }
