#include "src/math/stats.h"

#include <algorithm>
#include <cmath>

namespace hetefedrec {

std::vector<double> ColumnMeans(const Matrix& m) {
  std::vector<double> means(m.cols(), 0.0);
  if (m.rows() == 0) return means;
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) means[c] += row[c];
  }
  for (double& v : means) v /= static_cast<double>(m.rows());
  return means;
}

std::vector<double> ColumnVariances(const Matrix& m) {
  std::vector<double> vars(m.cols(), 0.0);
  if (m.rows() == 0) return vars;
  std::vector<double> means = ColumnMeans(m);
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.Row(r);
    for (size_t c = 0; c < m.cols(); ++c) {
      double d = row[c] - means[c];
      vars[c] += d * d;
    }
  }
  for (double& v : vars) v /= static_cast<double>(m.rows());
  return vars;
}

Matrix CovarianceMatrix(const Matrix& m) {
  const size_t n = m.cols();
  Matrix cov(n, n);
  if (m.rows() == 0) return cov;
  std::vector<double> means = ColumnMeans(m);
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.Row(r);
    for (size_t a = 0; a < n; ++a) {
      double da = row[a] - means[a];
      for (size_t b = a; b < n; ++b) {
        cov(a, b) += da * (row[b] - means[b]);
      }
    }
  }
  double inv = 1.0 / static_cast<double>(m.rows());
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a; b < n; ++b) {
      cov(a, b) *= inv;
      cov(b, a) = cov(a, b);
    }
  }
  return cov;
}

Matrix CorrelationMatrix(const Matrix& m) {
  Matrix cov = CovarianceMatrix(m);
  const size_t n = cov.rows();
  std::vector<double> sd(n);
  for (size_t i = 0; i < n; ++i) sd[i] = std::sqrt(cov(i, i));
  Matrix corr(n, n);
  constexpr double kTiny = 1e-12;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = 0; b < n; ++b) {
      if (a == b) {
        corr(a, b) = 1.0;
      } else if (sd[a] < kTiny || sd[b] < kTiny) {
        corr(a, b) = 0.0;
      } else {
        corr(a, b) = cov(a, b) / (sd[a] * sd[b]);
      }
    }
  }
  return corr;
}

Matrix StandardizeColumns(const Matrix& m, double eps) {
  std::vector<double> means = ColumnMeans(m);
  std::vector<double> vars = ColumnVariances(m);
  Matrix out(m.rows(), m.cols());
  for (size_t c = 0; c < m.cols(); ++c) {
    double inv_sd = 1.0 / std::sqrt(vars[c] + eps);
    for (size_t r = 0; r < m.rows(); ++r) {
      out(r, c) = (m(r, c) - means[c]) * inv_sd;
    }
  }
  return out;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double mu = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - mu) * (x - mu);
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) { return std::sqrt(Variance(v)); }

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, v.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace hetefedrec
