// Narrow abstract surface of a federated parameter server.
//
// Everything outside the server — `Trainer`, `SyncService`, the async
// aggregator, admission control, checkpointing, telemetry, benches — talks
// to this interface, never to a concrete server class. Two implementations
// exist: the single-table `HeteroServer` (src/core/hetero_server.h) and the
// item-range-sharded `ShardedServer` (src/fed/shard/sharded_server.h).
// `MakeServer` (sharded_server.h) picks between them from the config.
//
// Contract highlights (pinned by tests/core/sharding_equivalence_test.cc):
//   - Round protocol: BeginRound → UploadDelta* → FinishRound, or the
//     async ApplyUpdate primitive; Distill between rounds. Identical call
//     sequences on any implementation with the same Options must produce
//     bit-identical tables, thetas and version stamps.
//   - versions() exposes the delta-sync `VersionView`; every mutation of a
//     row's bytes stamps it (over-stamping is safe, under-stamping is not).
//   - Snapshot()/RestoreSnapshot() round-trips the full mutable state in a
//     shard-count-independent layout (whole-catalogue tables, raw stamp
//     arrays), so checkpoints written by one implementation restore into
//     any other with the same geometry.
#ifndef HETEFEDREC_CORE_SERVER_API_H_
#define HETEFEDREC_CORE_SERVER_API_H_

#include <cstdint>
#include <vector>

#include "src/core/distillation.h"
#include "src/core/local_trainer.h"
#include "src/fed/fault/admission.h"
#include "src/fed/sync/versioned_table.h"
#include "src/math/matrix.h"
#include "src/models/ffn.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Full mutable server state in a shard-count-independent layout.
///
/// Field-for-field the server portion of `RunState` (src/core/run_state.h):
/// whole-catalogue per-slot tables and thetas, plus the raw version-stamp
/// state (per-slot StampAll floors and per-row stamps, *not* floored).
/// A sharded server concatenates its per-shard state into this layout on
/// Snapshot and splits it back on RestoreSnapshot, which is what makes
/// checkpoints portable across shard counts.
struct ServerSnapshot {
  std::vector<Matrix> tables;               // [slot], num_items x width(slot)
  std::vector<FeedForwardNet> thetas;       // [slot]
  uint64_t version_round = 0;
  std::vector<uint64_t> version_floors;     // [slot]
  std::vector<std::vector<uint64_t>> versions;  // [slot][row], raw stamps
};

/// \brief Abstract federated parameter server.
class ServerApi {
 public:
  virtual ~ServerApi() = default;

  // ---- Geometry -------------------------------------------------------
  virtual size_t num_slots() const = 0;
  virtual size_t width(size_t slot) const = 0;
  virtual size_t num_items() const = 0;
  /// Total public parameters of slot (V + Θ) — Table III accounting.
  virtual size_t SlotParamCount(size_t slot) const = 0;

  // ---- Sharding topology ----------------------------------------------
  /// Number of item-range shards (1 for the single-table server).
  virtual size_t num_shards() const = 0;
  /// Shard owning item row `row`.
  virtual size_t shard_of_row(size_t row) const = 0;
  /// Cumulative item-embedding delta scalars uploaded into `shard`'s row
  /// range over the server's lifetime (Θ deltas are global, not counted).
  /// Feeds the bytes/round-per-shard accounting in bench_sharding.
  virtual uint64_t shard_upload_scalars(size_t shard) const = 0;

  // ---- Download surface (read-only views) -----------------------------
  virtual const Matrix& table(size_t slot) const = 0;
  virtual const FeedForwardNet& theta(size_t slot) const = 0;
  /// Row-version view for the delta-sync protocol (docs/SYNC.md).
  virtual const VersionView& versions() const = 0;

  // ---- Round protocol -------------------------------------------------
  /// Clears the round accumulators and advances the version round.
  virtual void BeginRound() = 0;
  /// Adds one client's uploaded update (Eq. 7-8 accumulation). Must be
  /// called in deterministic merge order — implementations are not
  /// thread-safe by contract.
  virtual void UploadDelta(const std::vector<LocalTaskSpec>& tasks,
                           const LocalUpdateResult& update,
                           double weight = 1.0) = 0;
  /// Applies the aggregated updates to every slot (Eq. 9 / Eq. 15) and
  /// stamps the changed rows.
  virtual void FinishRound() = 0;
  /// One-client merge-on-arrival primitive (async schedule): the update
  /// lands verbatim times `scale` regardless of the configured aggregation
  /// mode. Must not be called with a round open.
  virtual void ApplyUpdate(const std::vector<LocalTaskSpec>& tasks,
                           const LocalUpdateResult& update, double scale) = 0;
  /// Runs RESKD across all slots' tables (Eq. 16-17); returns the mean
  /// pre-distillation relation loss (0 with one slot).
  virtual double Distill(const DistillationOptions& options, Rng* rng) = 0;
  /// Marks `rows` of `slot` as changed at the current round — the hook for
  /// callers that mutate table bytes outside the round protocol (e.g. via
  /// a restored checkpoint delta or an external editor). Over-stamping is
  /// always safe.
  virtual void StampRows(size_t slot, const std::vector<uint32_t>& rows) = 0;

  // ---- Admission control ----------------------------------------------
  /// Installs update admission control (docs/ROBUSTNESS.md). Not owned.
  virtual void SetAdmission(AdmissionController* admission) = 0;
  virtual bool admission_enabled() const = 0;
  /// Runs the admission gates on one upload (`tasks.back().slot` selects
  /// the norm window; the item delta may be clipped in place).
  virtual AdmissionDecision Admit(const std::vector<LocalTaskSpec>& tasks,
                                  LocalUpdateResult* update) = 0;

  // ---- Persistence ----------------------------------------------------
  /// Captures the full mutable state (tables, thetas, raw version stamps)
  /// in the shard-count-independent `ServerSnapshot` layout.
  virtual ServerSnapshot Snapshot() const = 0;
  /// Restores a snapshot captured by any implementation with the same
  /// geometry (slots, widths, num_items). Checks shapes.
  virtual void RestoreSnapshot(ServerSnapshot snapshot) = 0;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_SERVER_API_H_
