#include "src/core/decorrelation.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "src/math/sparse.h"

namespace hetefedrec {

template <typename TableT, typename GradT>
double DecorrelationLossAndGrad(const TableT& table, double alpha,
                                size_t sample_rows, Rng* rng, GradT* grad) {
  const size_t n_cols = table.cols();
  HFR_CHECK_GT(n_cols, 0u);
  if (grad) {
    HFR_CHECK_GE(grad->cols(), n_cols);
    HFR_CHECK_EQ(grad->rows(), table.rows());
  }
  if (table.rows() < 2) return 0.0;

  // Row sample (or all rows).
  std::vector<size_t> rows;
  if (sample_rows > 0 && sample_rows < table.rows()) {
    HFR_CHECK(rng != nullptr);
    rows.reserve(sample_rows);
    for (size_t k = 0; k < sample_rows; ++k) {
      rows.push_back(rng->UniformInt(table.rows()));
    }
  } else {
    rows.resize(table.rows());
    std::iota(rows.begin(), rows.end(), 0);
  }
  const size_t m = rows.size();
  const double inv_m = 1.0 / static_cast<double>(m);

  // Column means and variances over the sample. The loss math stays in
  // double on every backend (tiny sample, and the RNG draw sequence above
  // must match fp64 exactly); only the row reads below may be float.
  std::vector<double> mean(n_cols, 0.0), inv_sd(n_cols, 0.0);
  for (size_t r : rows) {
    const auto* row = table.Row(r);
    for (size_t c = 0; c < n_cols; ++c) mean[c] += row[c];
  }
  for (double& v : mean) v *= inv_m;
  std::vector<double> var(n_cols, 0.0);
  for (size_t r : rows) {
    const auto* row = table.Row(r);
    for (size_t c = 0; c < n_cols; ++c) {
      double d = row[c] - mean[c];
      var[c] += d * d;
    }
  }
  constexpr double kEps = 1e-8;
  for (size_t c = 0; c < n_cols; ++c) {
    inv_sd[c] = 1.0 / std::sqrt(var[c] * inv_m + kEps);
  }

  // Standardized sample X (m x N) and C = XᵀX / m.
  Matrix x(m, n_cols);
  for (size_t k = 0; k < m; ++k) {
    const auto* row = table.Row(rows[k]);
    double* xrow = x.Row(k);
    for (size_t c = 0; c < n_cols; ++c) {
      xrow[c] = (row[c] - mean[c]) * inv_sd[c];
    }
  }
  Matrix c_mat = Matrix::MatMul(x.Transposed(), x);
  c_mat.Scale(inv_m);

  const double c_norm = c_mat.FrobeniusNorm();
  const double loss = c_norm / static_cast<double>(n_cols);
  if (!grad || c_norm < 1e-12 || alpha == 0.0) return loss;

  // dL/dX = 2 X C / (m N ||C||_F); then exact centering backprop with the
  // per-column sd treated as constant.
  Matrix g = Matrix::MatMul(x, c_mat);
  g.Scale(2.0 * inv_m / (static_cast<double>(n_cols) * c_norm));

  std::vector<double> col_mean_g(n_cols, 0.0);
  for (size_t k = 0; k < m; ++k) {
    const double* grow = g.Row(k);
    for (size_t c = 0; c < n_cols; ++c) col_mean_g[c] += grow[c];
  }
  for (double& v : col_mean_g) v *= inv_m;

  for (size_t k = 0; k < m; ++k) {
    const double* grow = g.Row(k);
    auto* out = grad->MutableRow(rows[k]);
    for (size_t c = 0; c < n_cols; ++c) {
      out[c] += alpha * (grow[c] - col_mean_g[c]) * inv_sd[c];
    }
  }
  return loss;
}

template double DecorrelationLossAndGrad<Matrix, Matrix>(const Matrix&,
                                                         double, size_t,
                                                         Rng*, Matrix*);
template double DecorrelationLossAndGrad<RowOverlayTable, SparseRowStore>(
    const RowOverlayTable&, double, size_t, Rng*, SparseRowStore*);
template double DecorrelationLossAndGrad<MatrixF, MatrixF>(const MatrixF&,
                                                           double, size_t,
                                                           Rng*, MatrixF*);
template double DecorrelationLossAndGrad<RowOverlayTableF, SparseRowStoreF>(
    const RowOverlayTableF&, double, size_t, Rng*, SparseRowStoreF*);

}  // namespace hetefedrec
