#include "src/math/activations.h"

#include <algorithm>
#include <cmath>

namespace hetefedrec {

double Sigmoid(double x) {
  if (x >= 0) {
    double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

double BceWithLogits(double logit, double label) {
  return std::max(logit, 0.0) - logit * label +
         std::log1p(std::exp(-std::abs(logit)));
}

double BceWithLogitsGrad(double logit, double label) {
  return Sigmoid(logit) - label;
}

}  // namespace hetefedrec
