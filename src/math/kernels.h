// Batched micro-kernels over contiguous row-major blocks.
//
// The scoring model (Eq. 1-3: user⊕item embedding through a small MLP) is
// embarrassingly batchable across samples and items, but the original hot
// paths walked it one sample at a time: a GEMV per FFN layer per sample
// during training, and one full scalar forward per item during evaluation.
// The kernels here push a B x dim block through each step at once — one
// bias-initialized GEMM per layer, one outer-product accumulation per layer
// on the way back, and a Gram matrix for the distillation relation.
//
// Two scalar instantiations exist (src/math/backend.h):
//
//   T = double — the reference backend. Every per-sample result stays
//   *bit-identical* to the scalar loops:
//
//   * Each output element accumulates its terms in exactly the scalar
//     order (ascending input index for forwards, ascending sample index
//     for gradient sums, ascending output index for input gradients).
//     Blocking only regroups independent accumulator targets; it never
//     reorders additions into the same target.
//   * Exact-zero inputs are skipped, matching the scalar kernels' skip
//     (relevant for -0.0 accumulators: acc + 0.0 can flip -0.0 to +0.0).
//
//   These invariants make the batched layer a drop-in replacement: the
//   trainer, the distiller and the evaluator all produce the same bits as
//   the per-sample reference (tests/math/kernels_test.cc and
//   tests/core/batched_equivalence_test.cc pin this).
//
//   T = float — the fp32 backend: fused multiply-adds, no exact-zero skip,
//   and fixed-tree reductions, dispatched at runtime to hand-vectorized
//   AVX2+FMA code or a lane-emulating scalar fallback that produces the
//   same bits (src/math/kernels_fp32.h). Not bit-comparable to double —
//   the tolerance harness (tests/core/backend_equivalence_test.cc) bounds
//   the drift at the metrics level instead.
#ifndef HETEFEDREC_MATH_KERNELS_H_
#define HETEFEDREC_MATH_KERNELS_H_

#include <cstddef>

#include "src/math/matrix.h"

namespace hetefedrec {

/// Rows per block in the batched kernels: bounds the working set of one
/// block (kKernelRowBlock x dim scalars) so the weight panel stays hot in
/// L1/L2 across the block's rows.
inline constexpr size_t kKernelRowBlock = 32;

/// out[b, j] = bias[j] + Σ_i x[b, i] * w[i, j]   (x: batch x in_dim,
/// w: in_dim x out_dim, out: batch x out_dim, all row-major contiguous).
///
/// For T = double, per (b, j) the sum runs over ascending i with exact-zero
/// x skipped — the scalar FFN-layer loop — so each row of `out` is
/// bit-identical to a standalone GEMV of that sample.
template <typename T>
void GemvBatchBiased(const T* x, size_t batch, size_t in_dim, const T* w,
                     const T* bias, size_t out_dim, T* out);

/// GemvBatchBiased resuming from shared partial sums: every row's
/// accumulators start at `init` (length out_dim — e.g. the bias plus a
/// prefix of input terms common to the whole batch) and consume `in_dim`
/// further inputs per row, rows starting `x_stride` scalars apart.
/// For T = double, per (b, j) the additions run in ascending i with
/// exact-zero x skipped, so resuming is bit-identical to re-running the
/// full accumulation. For T = float the same ascending-i fused chain makes
/// resume-vs-full identical as well (both are fmaf chains over the same
/// term sequence).
template <typename T>
void GemvBatchResume(const T* x, size_t batch, size_t x_stride, size_t in_dim,
                     const T* w, const T* init, size_t out_dim, T* out);

/// Gradient outer products of one layer over a batch:
///   grads_w[i, j] += Σ_b in[b, i] * delta[b, j]
///   grads_b[j]    += Σ_b delta[b, j]
/// For T = double, per target element the sum runs over ascending b with
/// exact-zero in skipped, matching a sample-by-sample sequence of scalar
/// accumulations.
template <typename T>
void AccumulateOuterBatch(const T* in, const T* delta, size_t batch,
                          size_t in_dim, size_t out_dim, T* grads_w,
                          T* grads_b);

/// Back-propagated input gradients of one layer over a batch:
///   dx[b, i] = Σ_j w[i, j] * delta[b, j]
/// For T = double, per (b, i) the sum runs over ascending j — the scalar
/// loop's order.
template <typename T>
void GemvBatchTransposed(const T* delta, size_t batch, size_t out_dim,
                         const T* w, size_t in_dim, T* dx);

/// Gram matrix of k packed rows: out(a, b) = Dot(x_a, x_b) for the
/// row-major k x n block `x`. Symmetric; only the upper triangle (plus the
/// diagonal) is computed, then mirrored. Each entry is the backend's
/// Dot of the two rows — for T = double bit-identical to pairwise Dot
/// calls, for T = float the dispatched SIMD/scalar tree dot.
template <typename T>
void GramMatrix(const T* x, size_t k, size_t n, MatrixT<T>* out);

extern template void GemvBatchBiased<double>(const double*, size_t, size_t,
                                             const double*, const double*,
                                             size_t, double*);
extern template void GemvBatchBiased<float>(const float*, size_t, size_t,
                                            const float*, const float*,
                                            size_t, float*);
extern template void GemvBatchResume<double>(const double*, size_t, size_t,
                                             size_t, const double*,
                                             const double*, size_t, double*);
extern template void GemvBatchResume<float>(const float*, size_t, size_t,
                                            size_t, const float*, const float*,
                                            size_t, float*);
extern template void AccumulateOuterBatch<double>(const double*, const double*,
                                                  size_t, size_t, size_t,
                                                  double*, double*);
extern template void AccumulateOuterBatch<float>(const float*, const float*,
                                                 size_t, size_t, size_t,
                                                 float*, float*);
extern template void GemvBatchTransposed<double>(const double*, size_t, size_t,
                                                 const double*, size_t,
                                                 double*);
extern template void GemvBatchTransposed<float>(const float*, size_t, size_t,
                                                const float*, size_t, float*);
extern template void GramMatrix<double>(const double*, size_t, size_t,
                                        Matrix*);
extern template void GramMatrix<float>(const float*, size_t, size_t, MatrixF*);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_KERNELS_H_
