#include "src/util/rng.h"

#include <cassert>
#include <cmath>

namespace hetefedrec {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : origin_seed_(seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = (~uint64_t{0}) - (~uint64_t{0}) % n;
  uint64_t draw;
  do {
    draw = Next();
  } while (draw >= limit);
  return draw % n;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to keep the log finite.
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  // Floating-point round-off: return the last positively weighted index.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

RngState Rng::SaveState() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.origin_seed = origin_seed_;
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::RestoreState(const RngState& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  origin_seed_ = state.origin_seed;
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the origin seed with the stream id through splitmix64 twice so that
  // consecutive stream ids land far apart in seed space.
  uint64_t mix = origin_seed_ ^ (0x632be59bd9b4e019ULL * (stream_id + 1));
  uint64_t sm = mix;
  uint64_t derived = SplitMix64(&sm) ^ SplitMix64(&sm);
  return Rng(derived);
}

}  // namespace hetefedrec
