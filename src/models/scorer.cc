#include "src/models/scorer.h"

#include <algorithm>
#include <cmath>

#include "src/math/sparse.h"

namespace hetefedrec {

StatusOr<BaseModel> BaseModelByName(const std::string& name) {
  if (name == "ncf") return BaseModel::kNcf;
  if (name == "lightgcn") return BaseModel::kLightGcn;
  return Status::InvalidArgument("unknown base model '" + name +
                                 "' (expected ncf|lightgcn)");
}

std::string BaseModelName(BaseModel model) {
  return model == BaseModel::kNcf ? "Fed-NCF" : "Fed-LightGCN";
}

Scorer::Scorer(BaseModel model, size_t width) : model_(model), width_(width) {
  HFR_CHECK_GT(width, 0u);
  x_.resize(2 * width);
  dx_.resize(2 * width);
}

template <typename TableT>
void Scorer::BeginUser(const double* user_emb, const TableT& item_table,
                       const std::vector<ItemId>& interacted) {
  HFR_CHECK_GE(item_table.cols(), width_);
  raw_user_.assign(user_emb, user_emb + width_);
  interacted_ = &interacted;
  pending_backward_ = false;

  if (model_ == BaseModel::kNcf) {
    pu_ = raw_user_;
    std::copy(pu_.begin(), pu_.end(), x_.begin());
    return;
  }

  // LightGCN local propagation.
  is_interacted_.assign(item_table.rows(), false);
  for (ItemId i : interacted) {
    HFR_CHECK_LT(static_cast<size_t>(i), item_table.rows());
    is_interacted_[i] = true;
  }
  const double deg = static_cast<double>(interacted.size());
  inv_sqrt_deg_ = deg > 0 ? 1.0 / std::sqrt(deg) : 0.0;

  pu_.assign(width_, 0.0);
  for (ItemId i : interacted) {
    const double* row = item_table.Row(i);
    for (size_t d = 0; d < width_; ++d) pu_[d] += row[d];
  }
  for (size_t d = 0; d < width_; ++d) {
    pu_[d] = 0.5 * (raw_user_[d] + inv_sqrt_deg_ * pu_[d]);
  }
  std::copy(pu_.begin(), pu_.end(), x_.begin());
  dpu_accum_.assign(width_, 0.0);
}

template <typename TableT>
void Scorer::FillItemHalf(const TableT& item_table, ItemId j,
                          double* dst) const {
  HFR_CHECK_LT(static_cast<size_t>(j), item_table.rows());
  const double* vj = item_table.Row(j);
  if (model_ == BaseModel::kNcf) {
    std::copy(vj, vj + width_, dst);
  } else {
    const bool linked = is_interacted_[j];
    for (size_t d = 0; d < width_; ++d) {
      double prop = linked ? inv_sqrt_deg_ * raw_user_[d] : 0.0;
      dst[d] = 0.5 * (vj[d] + prop);
    }
  }
}

template <typename TableT>
double Scorer::Score(const TableT& item_table, const FeedForwardNet& theta,
                     ItemId j) const {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  // The user half of x_ was filled by BeginUser; only the item half moves.
  FillItemHalf(item_table, j, x_.data() + width_);
  return theta.Forward(x_.data(), nullptr);
}

// Computes the per-user layer-0 prefix (bias + user-half terms) shared by
// every item of a batch — the batched structural win: the user half of
// [pu, pv] contributes identical first-layer partial sums for all items,
// so it is accumulated once per user instead of once per item.
void Scorer::PreparePrefix(const FeedForwardNet& theta) const {
  prefix_.resize(theta.weight(0).cols());
  theta.ForwardPrefix(pu_.data(), width_, prefix_.data());
}

template <typename TableT, typename IdFn>
void Scorer::ScoreBlocks(const TableT& item_table, const FeedForwardNet& theta,
                         size_t n, IdFn id_of, double* out) const {
  if (batch_x_.size() != kScoreBlock * width_) {
    batch_x_.resize(kScoreBlock * width_);
  }
  for (size_t done = 0; done < n; done += kScoreBlock) {
    const size_t bs = std::min(kScoreBlock, n - done);
    for (size_t b = 0; b < bs; ++b) {
      FillItemHalf(item_table, id_of(done + b), batch_x_.data() + b * width_);
    }
    theta.ForwardBatchFromPrefix(prefix_.data(), batch_x_.data(), bs, width_,
                                 width_, out + done);
  }
}

template <typename TableT>
void Scorer::ScoreBatch(const TableT& item_table, const FeedForwardNet& theta,
                        const ItemId* ids, size_t n, double* out) const {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  PreparePrefix(theta);
  ScoreBlocks(item_table, theta, n, [ids](size_t k) { return ids[k]; }, out);
}

template <typename TableT>
void Scorer::ScoreRange(const TableT& item_table, const FeedForwardNet& theta,
                        ItemId first, size_t n, double* out) const {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  PreparePrefix(theta);
  if constexpr (std::is_same_v<TableT, Matrix>) {
    if (model_ == BaseModel::kNcf) {
      // NCF item halves are the table rows themselves: score the span in
      // place with the table's row stride — zero assembly.
      HFR_CHECK_LE(static_cast<size_t>(first) + n, item_table.rows());
      for (size_t done = 0; done < n; done += kScoreBlock) {
        const size_t bs = std::min(kScoreBlock, n - done);
        theta.ForwardBatchFromPrefix(
            prefix_.data(), item_table.Row(static_cast<size_t>(first) + done),
            bs, width_, item_table.cols(), out + done);
      }
      return;
    }
  }
  ScoreBlocks(
      item_table, theta, n,
      [first](size_t k) { return static_cast<ItemId>(first + k); }, out);
}

template <typename TableT>
double Scorer::ScoreForTrain(const TableT& item_table,
                             const FeedForwardNet& theta, ItemId j,
                             TrainCache* cache) {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  cache->item = j;
  cache->item_is_interacted =
      model_ == BaseModel::kLightGcn && is_interacted_[j];
  FillItemHalf(item_table, j, x_.data() + width_);
  pending_backward_ = true;
  return theta.Forward(x_.data(), &cache->ffn);
}

template <typename TableT>
void Scorer::ScoreForTrainBatch(const TableT& item_table,
                                const FeedForwardNet& theta,
                                const ItemId* items, size_t n,
                                BatchTrainCache* cache, double* logits) {
  HFR_CHECK_EQ(theta.input_dim(), 2 * width_);
  const size_t row_len = 2 * width_;
  train_x_.resize(n * row_len);
  cache->items.assign(items, items + n);
  cache->item_is_interacted.resize(n);
  for (size_t b = 0; b < n; ++b) {
    double* row = train_x_.data() + b * row_len;
    std::copy(pu_.begin(), pu_.end(), row);
    FillItemHalf(item_table, items[b], row + width_);
    cache->item_is_interacted[b] =
        model_ == BaseModel::kLightGcn && is_interacted_[items[b]] ? 1 : 0;
  }
  pending_backward_ = n > 0;
  theta.ForwardBatch(train_x_.data(), n, &cache->ffn, logits);
}

template <typename GradT>
void Scorer::BackwardSample(const FeedForwardNet& theta,
                            const TrainCache& cache, double dlogit,
                            GradT* d_item_table, double* d_user,
                            FeedForwardNet* d_theta) {
  HFR_CHECK_GE(d_item_table->cols(), width_);
  theta.Backward(cache.ffn, dlogit, d_theta, dx_.data());
  const double* dpu = dx_.data();
  const double* dpv = dx_.data() + width_;
  double* dvj = d_item_table->MutableRow(cache.item);

  if (model_ == BaseModel::kNcf) {
    for (size_t d = 0; d < width_; ++d) {
      d_user[d] += dpu[d];
      dvj[d] += dpv[d];
    }
    return;
  }

  // LightGCN: pu = (u + Σ v_i /√d)/2 ; pv_j = (v_j + 1{j∈N(u)} u/√d)/2.
  for (size_t d = 0; d < width_; ++d) {
    d_user[d] += 0.5 * dpu[d];
    dpu_accum_[d] += dpu[d];  // scattered to v_i rows in FinishUserBackward
    dvj[d] += 0.5 * dpv[d];
  }
  if (cache.item_is_interacted) {
    const double s = 0.5 * inv_sqrt_deg_;
    for (size_t d = 0; d < width_; ++d) d_user[d] += s * dpv[d];
  }
}

template <typename GradT>
void Scorer::BackwardBatch(const FeedForwardNet& theta,
                           const BatchTrainCache& cache, const double* dlogits,
                           GradT* d_item_table, double* d_user,
                           FeedForwardNet* d_theta) {
  HFR_CHECK_GE(d_item_table->cols(), width_);
  const size_t n = cache.ffn.batch;
  HFR_CHECK_EQ(cache.items.size(), n);
  batch_dx_.resize(n * 2 * width_);
  theta.BackwardBatch(cache.ffn, dlogits, d_theta, batch_dx_.data());
  // Embedding scatters in ascending sample order: multiple samples may hit
  // the same item row (or d_user / dpu_accum_), and sample order is what
  // the per-sample reference accumulates in.
  for (size_t b = 0; b < n; ++b) {
    const double* dpu = batch_dx_.data() + b * 2 * width_;
    const double* dpv = dpu + width_;
    double* dvj = d_item_table->MutableRow(cache.items[b]);
    if (model_ == BaseModel::kNcf) {
      for (size_t d = 0; d < width_; ++d) {
        d_user[d] += dpu[d];
        dvj[d] += dpv[d];
      }
      continue;
    }
    for (size_t d = 0; d < width_; ++d) {
      d_user[d] += 0.5 * dpu[d];
      dpu_accum_[d] += dpu[d];
      dvj[d] += 0.5 * dpv[d];
    }
    if (cache.item_is_interacted[b]) {
      const double s = 0.5 * inv_sqrt_deg_;
      for (size_t d = 0; d < width_; ++d) d_user[d] += s * dpv[d];
    }
  }
}

template <typename GradT>
void Scorer::FinishUserBackward(GradT* d_item_table, double* d_user) {
  (void)d_user;
  pending_backward_ = false;
  if (model_ == BaseModel::kNcf || interacted_ == nullptr) return;
  const double s = 0.5 * inv_sqrt_deg_;
  for (ItemId i : *interacted_) {
    double* row = d_item_table->MutableRow(i);
    for (size_t d = 0; d < width_; ++d) row[d] += s * dpu_accum_[d];
  }
  std::fill(dpu_accum_.begin(), dpu_accum_.end(), 0.0);
}

// Explicit instantiations: dense (evaluation + reference dense path) and
// sparse (row-touched client training).
template void Scorer::BeginUser<Matrix>(const double*, const Matrix&,
                                        const std::vector<ItemId>&);
template void Scorer::BeginUser<RowOverlayTable>(const double*,
                                                 const RowOverlayTable&,
                                                 const std::vector<ItemId>&);
template double Scorer::Score<Matrix>(const Matrix&, const FeedForwardNet&,
                                      ItemId) const;
template double Scorer::Score<RowOverlayTable>(const RowOverlayTable&,
                                               const FeedForwardNet&,
                                               ItemId) const;
template void Scorer::ScoreBatch<Matrix>(const Matrix&, const FeedForwardNet&,
                                         const ItemId*, size_t,
                                         double*) const;
template void Scorer::ScoreBatch<RowOverlayTable>(const RowOverlayTable&,
                                                  const FeedForwardNet&,
                                                  const ItemId*, size_t,
                                                  double*) const;
template void Scorer::ScoreRange<Matrix>(const Matrix&, const FeedForwardNet&,
                                         ItemId, size_t, double*) const;
template void Scorer::ScoreRange<RowOverlayTable>(const RowOverlayTable&,
                                                  const FeedForwardNet&,
                                                  ItemId, size_t,
                                                  double*) const;
template double Scorer::ScoreForTrain<Matrix>(const Matrix&,
                                              const FeedForwardNet&, ItemId,
                                              TrainCache*);
template double Scorer::ScoreForTrain<RowOverlayTable>(const RowOverlayTable&,
                                                       const FeedForwardNet&,
                                                       ItemId, TrainCache*);
template void Scorer::ScoreForTrainBatch<Matrix>(const Matrix&,
                                                 const FeedForwardNet&,
                                                 const ItemId*, size_t,
                                                 BatchTrainCache*, double*);
template void Scorer::ScoreForTrainBatch<RowOverlayTable>(
    const RowOverlayTable&, const FeedForwardNet&, const ItemId*, size_t,
    BatchTrainCache*, double*);
template void Scorer::BackwardSample<Matrix>(const FeedForwardNet&,
                                             const TrainCache&, double,
                                             Matrix*, double*,
                                             FeedForwardNet*);
template void Scorer::BackwardSample<SparseRowStore>(const FeedForwardNet&,
                                                     const TrainCache&,
                                                     double, SparseRowStore*,
                                                     double*,
                                                     FeedForwardNet*);
template void Scorer::BackwardBatch<Matrix>(const FeedForwardNet&,
                                            const BatchTrainCache&,
                                            const double*, Matrix*, double*,
                                            FeedForwardNet*);
template void Scorer::BackwardBatch<SparseRowStore>(const FeedForwardNet&,
                                                    const BatchTrainCache&,
                                                    const double*,
                                                    SparseRowStore*, double*,
                                                    FeedForwardNet*);
template void Scorer::FinishUserBackward<Matrix>(Matrix*, double*);
template void Scorer::FinishUserBackward<SparseRowStore>(SparseRowStore*,
                                                         double*);

}  // namespace hetefedrec
