#include "bench/common.h"

#include <cstdio>
#include <sstream>

namespace hetefedrec::bench {

void AddCommonFlags(CommandLine* cli) {
  cli->AddFlag("scale", "bench", "scale preset: smoke | bench | paper");
  cli->AddFlag("dataset", "", "restrict to one dataset (ml|anime|douban)");
  cli->AddFlag("model", "", "restrict to one base model (ncf|lightgcn)");
  cli->AddFlag("seed", "7", "experiment seed");
  cli->AddFlag("epochs", "0", "override global epochs (0 = preset default)");
  cli->AddFlag("out_dir", ".", "directory for CSV output");
  cli->AddFlag("agg", "mean", "server aggregation: mean | sum | weighted");
  cli->AddFlag("threads", "1",
               "round-execution threads (0 = hardware concurrency; results "
               "are identical for any value)");
  cli->AddFlag("dense_updates", "false",
               "use the dense reference client-update path instead of "
               "sparse row-touched updates");
  cli->AddFlag("scalar_scoring", "false",
               "use the per-sample reference scoring path instead of the "
               "batched kernels (bit-identical; for comparison runs)");
  cli->AddFlag("scalar_topk", "false",
               "use the per-user partial_sort reference top-K selection "
               "instead of the fused streaming selector (bit-identical; "
               "for comparison runs)");
  cli->AddFlag("eval_candidates", "0",
               "candidate-sliced evaluation: test items + N seeded "
               "negatives per user (0 = full catalogue, the paper's "
               "protocol)");
  cli->AddFlag("replica_cap", "0",
               "per-client LRU cap on delta-sync replica rows (0 = "
               "unlimited)");
  cli->AddFlag("sparse_comm", "false",
               "report actually-shipped (sparse/delta) scalars instead of "
               "the paper's dense accounting");
  cli->AddFlag("delta_downloads", "false",
               "row-subscription delta downloads instead of full-table "
               "downloads (bit-identical metrics; see docs/SYNC.md)");
  cli->AddFlag("availability", "1.0",
               "P(selected client is online); offline clients requeue");
  cli->AddFlag("straggler_slack", "0",
               "over-selection slack per round (0 = deterministic "
               "protocol)");
  cli->AddFlag("compute_backend", "fp64",
               "numeric compute backend: fp64 (bit-exact reference) | fp32 "
               "(float client math) | fp32_simd (float + AVX2 kernels)");
  cli->AddFlag("wire_format", "auto",
               "wire scalar width for byte accounting: auto | fp64 | fp32 | "
               "fp16 (auto = fp64, or fp32 when --compute_backend is fp32*)");
  cli->AddFlag("async", "false",
               "asynchronous merge-on-arrival aggregation instead of "
               "synchronous rounds (docs/SYNC.md)");
  cli->AddFlag("async_alpha", "0.5",
               "staleness exponent: updates merge with w(s)=1/(1+s)^alpha");
  cli->AddFlag("async_max_staleness", "0",
               "drop arrivals staler than this version gap (0 = no cap)");
  cli->AddFlag("async_dispatch_batch", "1",
               "completions merged before freed slots re-dispatch as one "
               "parallel batch");
  cli->AddFlag("async_inflight", "0",
               "clients concurrently in flight (0 = clients_per_round)");
  cli->AddFlag("async_distill_every", "0",
               "merged updates between RESKD distillations "
               "(0 = clients_per_round)");
  cli->AddFlag("net_bandwidth_sigma", "0",
               "log-normal sigma of the per-client bandwidth multiplier");
  cli->AddFlag("net_latency_sigma", "0",
               "log-normal sigma of the per-(client,round) latency");
  cli->AddFlag("net_compute", "0",
               "local compute seconds per training sample");
  cli->AddFlag("fault_upload_loss", "0", "P(trained update lost in flight)");
  cli->AddFlag("fault_download_loss", "0",
               "P(model never reaches the selected client)");
  cli->AddFlag("fault_crash", "0", "P(client crashes mid-local-epoch)");
  cli->AddFlag("fault_duplicate", "0",
               "P(update delivered twice; server dedupes)");
  cli->AddFlag("fault_corrupt", "0",
               "P(update corrupted in flight: NaN/Inf/large-norm)");
  cli->AddFlag("admission", "false",
               "server-side update admission control (docs/ROBUSTNESS.md)");
  cli->AddFlag("admit_max_row_norm", "0",
               "clip uploaded item-delta rows to this L2 norm (0 = off)");
  cli->AddFlag("admit_outlier_z", "0",
               "reject updates with robust z-score above this (0 = off)");
  cli->AddFlag("checkpoint_every", "0",
               "write a crash-consistent run checkpoint every n rounds "
               "(sync) / epochs (async)");
  cli->AddFlag("resume", "false",
               "resume from a run checkpoint written by --checkpoint_every");
  cli->AddFlag("metrics_out", "",
               "stream per-round metrics as JSONL here "
               "(docs/OBSERVABILITY.md; never perturbs results)");
  cli->AddFlag("trace_out", "",
               "write a Chrome/Perfetto trace of the simulated run here");
  cli->AddFlag("profile", "false",
               "wall-clock phase profiling; prints a phase table per run");
}

StatusOr<ExperimentConfig> ConfigFromFlags(const CommandLine& cli) {
  ExperimentConfig cfg;
  cfg.seed = static_cast<uint64_t>(cli.GetInt("seed"));

  // clients_per_round scales with the population: the paper selects 256 of
  // 6,040+ users per round (~4%), giving hundreds of aggregation rounds per
  // run. A shrunken population with round size 256 would collapse to a
  // couple of rounds per epoch and under-aggregate every method.
  const std::string scale = cli.GetString("scale");
  if (scale == "smoke") {
    cfg.data_scale = 0.02;
    cfg.global_epochs = 4;
    cfg.eval_user_sample = 150;
    cfg.ddr_sample_rows = 128;
    cfg.clients_per_round = 32;
  } else if (scale == "bench") {
    cfg.data_scale = 0.06;
    cfg.global_epochs = 18;
    cfg.eval_user_sample = 300;
    cfg.ddr_sample_rows = 256;
    cfg.clients_per_round = 64;
  } else if (scale == "paper") {
    cfg.data_scale = 1.0;
    cfg.global_epochs = 20;
    cfg.eval_user_sample = 0;
    cfg.ddr_sample_rows = 1024;
    cfg.clients_per_round = 256;
  } else {
    return Status::InvalidArgument("unknown --scale '" + scale + "'");
  }

  int epochs = cli.GetInt("epochs");
  if (epochs > 0) cfg.global_epochs = epochs;

  cfg.num_threads = static_cast<size_t>(cli.GetInt("threads"));
  cfg.use_sparse_updates = !cli.GetBool("dense_updates");
  cfg.use_batched_scoring = !cli.GetBool("scalar_scoring");
  cfg.use_batched_topk = !cli.GetBool("scalar_topk");
  cfg.eval_candidate_sample =
      static_cast<size_t>(cli.GetInt("eval_candidates"));
  cfg.sync_replica_cap = static_cast<size_t>(cli.GetInt("replica_cap"));
  cfg.sparse_comm_accounting = cli.GetBool("sparse_comm");
  cfg.full_downloads = !cli.GetBool("delta_downloads");
  cfg.availability = cli.GetDouble("availability");
  cfg.straggler_slack = static_cast<size_t>(cli.GetInt("straggler_slack"));
  auto backend = ComputeBackendByName(cli.GetString("compute_backend"));
  if (!backend.ok()) return backend.status();
  cfg.compute_backend = *backend;
  const std::string wire_format = cli.GetString("wire_format");
  if (wire_format == "auto") {
    cfg.wire_scalar_bytes =
        cfg.compute_backend == ComputeBackend::kFp64 ? 8 : 4;
  } else {
    auto wire = WireScalarBytesByName(wire_format);
    if (!wire.ok()) return wire.status();
    cfg.wire_scalar_bytes = *wire;
  }
  cfg.async_mode = cli.GetBool("async");
  cfg.async_staleness_alpha = cli.GetDouble("async_alpha");
  cfg.async_max_staleness =
      static_cast<size_t>(cli.GetInt("async_max_staleness"));
  cfg.async_dispatch_batch =
      static_cast<size_t>(cli.GetInt("async_dispatch_batch"));
  cfg.async_inflight = static_cast<size_t>(cli.GetInt("async_inflight"));
  cfg.async_distill_every =
      static_cast<size_t>(cli.GetInt("async_distill_every"));
  cfg.net_bandwidth_sigma = cli.GetDouble("net_bandwidth_sigma");
  cfg.net_latency_sigma = cli.GetDouble("net_latency_sigma");
  cfg.net_compute_per_sample = cli.GetDouble("net_compute");
  cfg.fault_upload_loss = cli.GetDouble("fault_upload_loss");
  cfg.fault_download_loss = cli.GetDouble("fault_download_loss");
  cfg.fault_crash = cli.GetDouble("fault_crash");
  cfg.fault_duplicate = cli.GetDouble("fault_duplicate");
  cfg.fault_corrupt = cli.GetDouble("fault_corrupt");
  cfg.admission_control = cli.GetBool("admission");
  cfg.admit_max_row_norm = cli.GetDouble("admit_max_row_norm");
  cfg.admit_outlier_z = cli.GetDouble("admit_outlier_z");
  cfg.checkpoint_every = static_cast<size_t>(cli.GetInt("checkpoint_every"));
  cfg.resume_run = cli.GetBool("resume");
  cfg.metrics_out = cli.GetString("metrics_out");
  cfg.trace_out = cli.GetString("trace_out");
  cfg.profile = cli.GetBool("profile");

  const std::string agg = cli.GetString("agg");
  if (agg == "mean") {
    cfg.aggregation = AggregationMode::kMean;
  } else if (agg == "sum") {
    cfg.aggregation = AggregationMode::kSum;
  } else if (agg == "weighted") {
    cfg.aggregation = AggregationMode::kDataWeighted;
  } else {
    return Status::InvalidArgument("unknown --agg '" + agg + "'");
  }
  return cfg;
}

void ApplyPaperDims(ExperimentConfig* config) {
  if (config->dataset == "douban") {
    config->dims = {32, 64, 128};
  } else {
    config->dims = {8, 16, 32};
  }
}

std::string CsvPath(const CommandLine& cli, const std::string& name) {
  return cli.GetString("out_dir") + "/" + name + ".csv";
}

std::vector<GridCase> EvaluationGrid(const CommandLine& cli) {
  const std::string only_model = cli.GetString("model");
  const std::string only_dataset = cli.GetString("dataset");
  std::vector<GridCase> grid;
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    if (!only_model.empty() &&
        !(only_model == "ncf" && model == BaseModel::kNcf) &&
        !(only_model == "lightgcn" && model == BaseModel::kLightGcn)) {
      continue;
    }
    for (const char* dataset : {"ml", "anime", "douban"}) {
      if (!only_dataset.empty() && only_dataset != dataset) continue;
      grid.push_back(GridCase{model, dataset});
    }
  }
  return grid;
}

int FailWith(const Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

}  // namespace hetefedrec::bench
