// Server-side update admission control.
//
// Three gates run in order before an update is merged (docs/ROBUSTNESS.md):
//   1. finite scan — any NaN/Inf anywhere in the update rejects it outright;
//   2. per-row norm clipping — item-table delta rows with L2 norm above
//      `max_row_norm` are scaled down to the cap (accepted but bounded);
//   3. robust z-score gate — the update's total item-delta norm is compared
//      against a bounded window of recently *accepted* norms for the same
//      slot via the median/MAD z-score z = 0.6745 (n - med) / MAD; updates
//      with n > med and z > `outlier_z` are rejected.
//
// History is only updated on accept, in merge order, so the gate is
// deterministic for a fixed schedule and serializable for run checkpoints.
#ifndef HETEFEDREC_FED_FAULT_ADMISSION_H_
#define HETEFEDREC_FED_FAULT_ADMISSION_H_

#include <cstddef>
#include <vector>

#include "src/core/local_trainer.h"

namespace hetefedrec {

struct AdmissionOptions {
  double max_row_norm = 0.0;  ///< 0 disables clipping
  double outlier_z = 0.0;     ///< 0 disables the z-score gate
  size_t outlier_window = 128;
  size_t outlier_min_history = 16;  ///< accepted norms before gating starts
};

enum class AdmissionVerdict { kAccept, kRejectNonFinite, kRejectOutlier };

struct AdmissionDecision {
  AdmissionVerdict verdict = AdmissionVerdict::kAccept;
  size_t rows_clipped = 0;
  double update_norm = 0.0;  ///< item-delta L2 norm after clipping
};

class AdmissionController {
 public:
  AdmissionController(size_t num_slots, const AdmissionOptions& options);

  /// Runs the three gates on `update` (the item-table delta may be clipped
  /// in place). `slot` selects the norm-history window — updates of
  /// different widths have incomparable norms.
  AdmissionDecision Admit(size_t slot, LocalUpdateResult* update);

  const AdmissionOptions& options() const { return options_; }

  /// Per-slot accepted-norm windows, oldest first (run checkpoints).
  std::vector<std::vector<double>> ExportHistory() const;
  void RestoreHistory(const std::vector<std::vector<double>>& history);

 private:
  AdmissionOptions options_;
  std::vector<std::vector<double>> history_;  // ring per slot, oldest first
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_FAULT_ADMISSION_H_
