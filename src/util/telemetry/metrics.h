// Run-wide metrics registry: counters, gauges and fixed-bucket histograms.
//
// Determinism contract (docs/OBSERVABILITY.md): the registry must never
// perturb results and its serialized dump must be byte-identical across
// thread counts.
//
//  - Counter is the only cross-thread instrument. It shards a u64 across
//    cache-line-padded atomic slots (relaxed fetch_add, no locks); u64
//    addition is commutative and exact, so the summed value is independent
//    of interleaving.
//  - Gauge and Histogram hold doubles, whose accumulation order matters.
//    They must only be written from the deterministic main/merge thread
//    (the round loop), never from pool workers.
//
// Metrics are registered lazily by name and iterated in registration order,
// so a fixed call sequence yields a fixed serialization order — no name
// sorting, no hash-map iteration.
#ifndef HETEFEDREC_UTIL_TELEMETRY_METRICS_H_
#define HETEFEDREC_UTIL_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace hetefedrec {

class MetricsRegistry;

/// Monotone u64 counter, safe to bump from any thread.
class Counter {
 public:
  void Add(uint64_t n) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;

  static constexpr size_t kShards = 16;  // power of two (masked below)
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };

  /// Stable per-thread shard slot (threads hash to shards round-robin by
  /// creation order; collisions only cost contention, never correctness).
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

/// Last-write-wins double. Main-thread-only (see file comment).
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double Value() const { return value_; }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  double value_ = 0.0;
};

/// Fixed-bucket histogram over doubles. Main-thread-only (see file comment).
/// Buckets are [..b0], (b0..b1], ..., (b_{n-1}..+inf]; bounds are fixed at
/// registration.
class Histogram {
 public:
  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; last is the overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);

  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Owns all instruments; hands out stable pointers. Get* registers on first
/// use and returns the existing instrument (of the same kind) afterwards.
/// Registration takes a mutex-free path only through the unordered_map, so
/// register everything up front (the trainer does) and bump lock-free after.
class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    Kind kind;
    Counter* counter = nullptr;      // set when kind == kCounter
    Gauge* gauge = nullptr;          // set when kind == kGauge
    Histogram* histogram = nullptr;  // set when kind == kHistogram
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  /// Registration order — the deterministic serialization order.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Renders every instrument into one JSON object:
  ///   counters/gauges -> numbers, histograms -> {count,sum,min,max,buckets}.
  std::string ToJson() const;

 private:
  Entry* Find(const std::string& name, Kind kind);

  std::vector<Entry> entries_;
  // hfr-lint: iteration-order-safe(name->slot lookups only - serialization iterates entries_ in registration order, never this map)
  std::unordered_map<std::string, size_t> index_;
  // Deques of stable storage (pointers handed out must survive growth).
  std::vector<std::unique_ptr<Counter>> counters_;
  std::vector<std::unique_ptr<Gauge>> gauges_;
  std::vector<std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_TELEMETRY_METRICS_H_
