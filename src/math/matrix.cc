#include "src/math/matrix.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "src/math/backend.h"
#include "src/math/kernels_fp32.h"

namespace hetefedrec {

template <typename T>
void MatrixT<T>::Fill(T value) {
  std::fill(data_.begin(), data_.end(), value);
}

template <typename T>
void MatrixT<T>::AddScaled(const MatrixT& other, T scale) {
  HFR_CHECK(SameShape(other));
  const T* src = other.data_.data();
  T* dst = data_.data();
  for (size_t i = 0; i < data_.size(); ++i) dst[i] += scale * src[i];
}

template <typename T>
void MatrixT<T>::AddScaledIntoLeadingCols(const MatrixT& other, T scale) {
  HFR_CHECK_EQ(rows_, other.rows_);
  HFR_CHECK_LE(other.cols_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const T* src = other.Row(r);
    T* dst = Row(r);
    for (size_t c = 0; c < other.cols_; ++c) dst[c] += scale * src[c];
  }
}

template <typename T>
void MatrixT<T>::Scale(T scale) {
  for (T& v : data_) v *= scale;
}

template <typename T>
MatrixT<T> MatrixT<T>::LeadingCols(size_t n_cols) const {
  HFR_CHECK_LE(n_cols, cols_);
  MatrixT out(rows_, n_cols);
  for (size_t r = 0; r < rows_; ++r) {
    const T* src = Row(r);
    T* dst = out.Row(r);
    std::copy(src, src + n_cols, dst);
  }
  return out;
}

template <typename T>
MatrixT<T> MatrixT<T>::RowSlice(size_t row0, size_t n_rows) const {
  HFR_CHECK_LE(row0 + n_rows, rows_);
  MatrixT out(n_rows, cols_);
  std::copy(data_.begin() + row0 * cols_,
            data_.begin() + (row0 + n_rows) * cols_, out.data_.begin());
  return out;
}

template <typename T>
MatrixT<T> MatrixT<T>::Transposed() const {
  MatrixT out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

template <typename T>
MatrixT<T> MatrixT<T>::MatMul(const MatrixT& a, const MatrixT& b) {
  HFR_CHECK_EQ(a.cols(), b.rows());
  MatrixT out(a.rows(), b.cols());
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t k = 0; k < a.cols(); ++k) {
      T aik = a(i, k);
      if (aik == T(0)) continue;
      const T* brow = b.Row(k);
      T* orow = out.Row(i);
      for (size_t j = 0; j < b.cols(); ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

template <typename T>
T MatrixT<T>::FrobeniusNorm() const {
  T sum = T(0);
  for (T v : data_) sum += v * v;
  return std::sqrt(sum);
}

template <typename T>
T MatrixT<T>::MaxAbs() const {
  T m = T(0);
  for (T v : data_) m = std::max(m, std::abs(v));
  return m;
}

template class MatrixT<double>;
template class MatrixT<float>;

namespace {

// Float helpers go through the backend dispatch; inside one process the
// scalar and AVX2 sets are bit-identical, so this branch is results-inert.
inline float DotDispatch(const float* a, const float* b, size_t n) {
#ifdef HFR_HAVE_AVX2_TU
  if (Fp32SimdEnabled()) return fp32::DotAvx2(a, b, n);
#endif
  return fp32::DotScalar(a, b, n);
}

}  // namespace

template <typename T>
T Dot(const T* a, const T* b, size_t n) {
  if constexpr (std::is_same_v<T, float>) {
    return DotDispatch(a, b, n);
  } else {
    T s = T(0);
    for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
  }
}

template <typename T>
void Axpy(T alpha, const T* x, T* y, size_t n) {
  if constexpr (std::is_same_v<T, float>) {
#ifdef HFR_HAVE_AVX2_TU
    if (Fp32SimdEnabled()) return fp32::AxpyAvx2(alpha, x, y, n);
#endif
    return fp32::AxpyScalar(alpha, x, y, n);
  } else {
    for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
  }
}

template <typename T>
T Norm2(const T* a, size_t n) {
  return std::sqrt(Dot(a, a, n));
}

template <typename T>
T CosineSimilarity(const T* a, const T* b, size_t n) {
  T na = Norm2(a, n);
  T nb = Norm2(b, n);
  if (na == T(0) || nb == T(0)) return T(0);
  return Dot(a, b, n) / (na * nb);
}

template double Dot<double>(const double*, const double*, size_t);
template float Dot<float>(const float*, const float*, size_t);
template void Axpy<double>(double, const double*, double*, size_t);
template void Axpy<float>(float, const float*, float*, size_t);
template double Norm2<double>(const double*, size_t);
template float Norm2<float>(const float*, size_t);
template double CosineSimilarity<double>(const double*, const double*, size_t);
template float CosineSimilarity<float>(const float*, const float*, size_t);

}  // namespace hetefedrec
