// Communication accounting for Table III.
//
// The simulation never serializes bytes; instead every download/upload of
// public parameters is recorded as a scalar count, which is exactly the
// quantity Table III compares (size(V_a + Θ...) per client per round).
// Byte-level views multiply by the wire format's scalar size
// (`set_wire_scalar_bytes`: 8 = fp64, 4 = fp32, 2 = fp16) so deployment
// budgets can be read off directly; row indices in sparse/delta payloads
// are counted as one scalar each, a deliberate simplification documented in
// docs/SYNC.md.
#ifndef HETEFEDREC_FED_COMM_H_
#define HETEFEDREC_FED_COMM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/fed/group.h"

namespace hetefedrec {

/// \brief Fault-injection and admission-control counters (one per run).
///
/// Everything the robustness layer drops, rejects, or repairs is counted
/// here so tests and the CLI can assert on the fault mix. All zero when
/// fault injection and admission control are off.
struct FaultStats {
  size_t download_lost = 0;   ///< model never reached the client
  size_t upload_lost = 0;     ///< update trained but lost in flight
  size_t crashed = 0;         ///< client died mid-local-epoch
  size_t duplicates = 0;      ///< redundant deliveries deduped by the server
  size_t corrupted = 0;       ///< updates corrupted in flight
  size_t rejected_nonfinite = 0;  ///< admission: NaN/Inf scan rejections
  size_t rejected_outlier = 0;    ///< admission: robust z-score rejections
  size_t rows_clipped = 0;        ///< admission: rows norm-clipped on accept
  size_t quarantines = 0;         ///< clients quarantined after rejection
  size_t retries = 0;             ///< transfer-failure retries scheduled
  size_t gave_up = 0;             ///< clients dropped after retry_max fails
  size_t nonfinite_grad_steps = 0;  ///< local Adam steps skipped (NaN grad)

  size_t TotalInjected() const {
    return download_lost + upload_lost + crashed + duplicates + corrupted;
  }
  size_t TotalRejected() const {
    return rejected_nonfinite + rejected_outlier;
  }
};

/// \brief One round's worth of traffic: the delta between two consecutive
/// CommStats::SnapshotRound() calls.
///
/// Cumulative totals hide how traffic evolves — e.g. delta sync ships the
/// whole subscription on a client's first participation and only stale rows
/// afterwards, so the downlink cost falls over rounds toward the DDR
/// correlation-row floor (docs/SYNC.md "Measuring it"). Per-round snapshots
/// make that curve observable in bench_table3 and the metrics JSONL stream.
struct CommRound {
  struct PerGroup {
    size_t uploads = 0;
    size_t downloads = 0;
    size_t dropped = 0;
    size_t up_params = 0;
    size_t down_params = 0;
  };
  std::array<PerGroup, kNumGroups> groups;

  size_t Uploads() const;
  size_t Downloads() const;
  size_t Dropped() const;
  size_t UpParams() const;
  size_t DownParams() const;
  /// Mean scalars downloaded per download this round (0 if none).
  double AvgDownload(Group g) const;
};

/// \brief Accumulates per-group transmission counts.
class CommStats {
 public:
  /// Records one client download of `params` scalars.
  void RecordDownload(Group g, size_t params);

  /// Records one client upload of `params` scalars.
  void RecordUpload(Group g, size_t params);

  /// Records one async arrival discarded by the staleness cap
  /// (`async_max_staleness`): the download was delivered and is counted,
  /// but the update never merges, so no upload is recorded — the same
  /// accepted-traffic-only convention over-selection stragglers follow.
  void RecordDropped(Group g);

  /// Number of *merged* participations (uploads accepted by the server).
  /// Under over-selection this is smaller than Downloads(): stragglers
  /// receive their download but their upload is cancelled at round close
  /// and never recorded — CommStats counts accepted traffic only, a
  /// conservative lower bound on wire bytes (docs/SYNC.md).
  size_t Participations(Group g) const;

  /// Number of downloads recorded for the group (>= Participations under
  /// over-selection / deadlines).
  size_t Downloads(Group g) const;

  /// Async arrivals dropped by the staleness cap for the group.
  size_t Dropped(Group g) const;

  /// Total dropped arrivals across all groups.
  size_t TotalDropped() const;

  /// Mean scalars uploaded per participation for the group (0 if none).
  double AvgUpload(Group g) const;

  /// Mean scalars downloaded per participation for the group.
  double AvgDownload(Group g) const;

  /// Raw per-group totals (scalars) — the down/up split of Table III.
  size_t DownParams(Group g) const;
  size_t UpParams(Group g) const;

  /// Total scalars transmitted either direction across all groups.
  size_t TotalTransmitted() const;

  /// Wire format: bytes per transmitted scalar (default 8, fp64).
  void set_wire_scalar_bytes(size_t bytes) { wire_scalar_bytes_ = bytes; }
  size_t wire_scalar_bytes() const { return wire_scalar_bytes_; }

  /// Byte views of the scalar counts under the configured wire format.
  double AvgUploadBytes(Group g) const;
  double AvgDownloadBytes(Group g) const;
  size_t TotalBytes() const;

  /// Robustness counters (fault injection / admission control).
  const FaultStats& faults() const { return faults_; }
  FaultStats* mutable_faults() { return &faults_; }

  /// Flattens every counter (per-group + faults) into a fixed-layout u64
  /// vector for run checkpoints. `wire_scalar_bytes` is configuration, not
  /// a counter, so it is excluded (Reset preserves it for the same reason).
  std::vector<uint64_t> ExportCounters() const;

  /// Restores counters exported by `ExportCounters`. Rebaselines the round
  /// snapshot: the first SnapshotRound() after a restore covers only traffic
  /// recorded since the restore.
  void RestoreCounters(const std::vector<uint64_t>& packed);

  void Reset();

  /// Returns the traffic recorded since the previous SnapshotRound() (or
  /// since construction / Reset / RestoreCounters) and advances the
  /// baseline. Call once per round to get per-round deltas.
  CommRound SnapshotRound();

 private:
  using PerGroup = CommRound::PerGroup;
  std::array<PerGroup, kNumGroups> groups_;
  /// Totals at the last SnapshotRound() — the subtrahend for round deltas.
  std::array<PerGroup, kNumGroups> round_base_;
  FaultStats faults_;
  size_t wire_scalar_bytes_ = 8;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_COMM_H_
