// Reproduces Table II: overall Recall@20 / NDCG@20 of HeteFedRec against
// the six baselines, on three datasets with both base models.
//
// Absolute values differ from the paper (synthetic data, reduced scale);
// the reproduction target is the *shape*: heterogeneous baselines fail,
// homogeneous baselines are mid-pack, HeteFedRec wins (see the shape-check
// summary printed at the end).
#include <cstdio>
#include <map>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

// Paper Table II reference values: {recall, ndcg} indexed by
// [model][dataset][method].
struct PaperCell {
  double recall, ndcg;
};
const std::map<std::string, PaperCell> kPaperTable2 = {
    {"ncf/ml/All Small", {0.02203, 0.04328}},
    {"ncf/ml/All Large", {0.02558, 0.04028}},
    {"ncf/ml/All Large/Exclusive", {0.00956, 0.01753}},
    {"ncf/ml/Standalone", {0.00615, 0.01108}},
    {"ncf/ml/Clustered FedRec", {0.01712, 0.02235}},
    {"ncf/ml/Directly Aggregate", {0.01177, 0.02207}},
    {"ncf/ml/HeteFedRec(Ours)", {0.02662, 0.04781}},
    {"ncf/anime/All Small", {0.04301, 0.04962}},
    {"ncf/anime/All Large", {0.02727, 0.04442}},
    {"ncf/anime/All Large/Exclusive", {0.01199, 0.02458}},
    {"ncf/anime/Standalone", {0.00279, 0.00411}},
    {"ncf/anime/Clustered FedRec", {0.01508, 0.01581}},
    {"ncf/anime/Directly Aggregate", {0.01903, 0.03151}},
    {"ncf/anime/HeteFedRec(Ours)", {0.05855, 0.05655}},
    {"ncf/douban/All Small", {0.00759, 0.01087}},
    {"ncf/douban/All Large", {0.00726, 0.00878}},
    {"ncf/douban/All Large/Exclusive", {0.00702, 0.00856}},
    {"ncf/douban/Standalone", {0.00209, 0.00295}},
    {"ncf/douban/Clustered FedRec", {0.00248, 0.00501}},
    {"ncf/douban/Directly Aggregate", {0.00247, 0.00502}},
    {"ncf/douban/HeteFedRec(Ours)", {0.01101, 0.01290}},
    {"lightgcn/ml/All Small", {0.02251, 0.04232}},
    {"lightgcn/ml/All Large", {0.02301, 0.04197}},
    {"lightgcn/ml/All Large/Exclusive", {0.00924, 0.01891}},
    {"lightgcn/ml/Standalone", {0.00605, 0.01085}},
    {"lightgcn/ml/Clustered FedRec", {0.01483, 0.02633}},
    {"lightgcn/ml/Directly Aggregate", {0.01454, 0.02657}},
    {"lightgcn/ml/HeteFedRec(Ours)", {0.02434, 0.04313}},
    {"lightgcn/anime/All Small", {0.02924, 0.04824}},
    {"lightgcn/anime/All Large", {0.02825, 0.04788}},
    {"lightgcn/anime/All Large/Exclusive", {0.01702, 0.01467}},
    {"lightgcn/anime/Standalone", {0.00278, 0.00411}},
    {"lightgcn/anime/Clustered FedRec", {0.01443, 0.01379}},
    {"lightgcn/anime/Directly Aggregate", {0.01450, 0.01437}},
    {"lightgcn/anime/HeteFedRec(Ours)", {0.03306, 0.05177}},
    {"lightgcn/douban/All Small", {0.00350, 0.00530}},
    {"lightgcn/douban/All Large", {0.00234, 0.00378}},
    {"lightgcn/douban/All Large/Exclusive", {0.00215, 0.00363}},
    {"lightgcn/douban/Standalone", {0.00190, 0.00263}},
    {"lightgcn/douban/Clustered FedRec", {0.00259, 0.00480}},
    {"lightgcn/douban/Directly Aggregate", {0.00257, 0.00479}},
    {"lightgcn/douban/HeteFedRec(Ours)", {0.00393, 0.00639}},
};

std::string ModelKey(BaseModel m) {
  return m == BaseModel::kNcf ? "ncf" : "lightgcn";
}

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  TablePrinter table(
      "Table II: overall performance (measured | paper reference)",
      {"Model", "Dataset", "Type", "Method", "Recall", "NDCG",
       "Recall(paper)", "NDCG(paper)"});

  // Shape checks accumulated across the grid.
  int hete_best_overall = 0, cells = 0;
  int hete_beats_homo = 0, standalone_worst = 0;

  for (const GridCase& cell : EvaluationGrid(cli)) {
    ExperimentConfig cfg = *base_cfg;
    cfg.base_model = cell.model;
    cfg.dataset = cell.dataset;
    ApplyPaperDims(&cfg);
    auto runner = ExperimentRunner::Create(cfg);
    if (!runner.ok()) return FailWith(runner.status());

    std::map<Method, GroupedEval> results;
    for (Method m : kAllMethods) {
      std::fprintf(stderr, "[table2] %s / %s / %s ...\n",
                   ModelKey(cell.model).c_str(), cell.dataset.c_str(),
                   MethodName(m).c_str());
      results[m] = (*runner)->Run(m).final_eval;
    }

    for (Method m : kAllMethods) {
      std::string key =
          ModelKey(cell.model) + "/" + cell.dataset + "/" + MethodName(m);
      auto paper = kPaperTable2.find(key);
      table.AddRow({BaseModelName(cell.model), cell.dataset,
                    IsHeterogeneous(m) ? "Hetero" : "Homo", MethodName(m),
                    TablePrinter::Num(results[m].overall.recall),
                    TablePrinter::Num(results[m].overall.ndcg),
                    paper == kPaperTable2.end()
                        ? "-"
                        : TablePrinter::Num(paper->second.recall),
                    paper == kPaperTable2.end()
                        ? "-"
                        : TablePrinter::Num(paper->second.ndcg)});
    }
    table.AddSeparator();

    // Shape checks for this cell.
    cells++;
    double hete = results[Method::kHeteFedRec].overall.ndcg;
    bool best = true;
    for (Method m : kAllMethods) {
      if (m != Method::kHeteFedRec && results[m].overall.ndcg >= hete) {
        best = false;
      }
    }
    hete_best_overall += best;
    hete_beats_homo +=
        (hete > results[Method::kAllSmall].overall.ndcg &&
         hete > results[Method::kAllLarge].overall.ndcg);
    double standalone = results[Method::kStandalone].overall.ndcg;
    bool worst_hetero =
        standalone <= results[Method::kClusteredFedRec].overall.ndcg &&
        standalone <= results[Method::kDirectlyAggregate].overall.ndcg;
    standalone_worst += worst_hetero;
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "table2_overall"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  std::printf(
      "\nShape checks (paper expectation in parentheses):\n"
      "  HeteFedRec best of all 7 methods : %d/%d cells (7/7 in paper)\n"
      "  HeteFedRec beats both homogeneous: %d/%d cells (6/6 in paper)\n"
      "  Standalone worst heterogeneous   : %d/%d cells (6/6 in paper)\n",
      hete_best_overall, cells, hete_beats_homo, cells, standalone_worst,
      cells);
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
