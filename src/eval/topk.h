// Top-K selection over score blocks — the evaluation ranking kernel.
//
// Full-catalogue evaluation ranks every unmasked item for every user. The
// reference implementation (the `*Reference` paths below, and the
// `TopKItems`/`TopKFromCandidates` wrappers in metrics.h) builds an
// O(items) candidate-id vector and `partial_sort`s it per user — after the
// batched scoring kernels (PR 3) that build was the last per-user O(items)
// term besides scoring itself. `TopKSelector` removes it:
//
//   * Streaming bounded min-heap (`Begin`/`Push`/`Finish`): score blocks
//     are consumed as `Scorer::ScoreBatch`/`ScoreRange` produce them, so
//     selection fuses into scoring — no candidate vector, no O(items)
//     sort, and (through `Evaluator`'s stream overload) no materialized
//     O(items) score array either. Cost per user: O(items + k·log k)
//     compares, with an O(1) score-vs-current-worst reject for the vast
//     majority of items once the heap is warm.
//   * Bucketed threshold cascade (`SelectFromCandidates`, engaged when k
//     is a sizable fraction of the candidate pool): a two-pass histogram
//     over the score range finds the bucket containing the k-th score,
//     and only entries at or above that bucket are sorted. While k << n
//     the bounded heap is cheaper and is used instead; the cascade also
//     falls back to the heap when the score range is degenerate (all
//     equal / non-finite).
//
// Both paths are *bit-identical* to the `partial_sort` reference: the
// ordering (score descending, then item id ascending) is a strict total
// order over distinct ids, so the top-K list is unique — every correct
// selection algorithm returns the same ids in the same order
// (tests/eval/topk_test.cc pins this over randomized heavy-tie inputs).
// Scores must be NaN-free (NaN breaks any strict weak ordering, including
// the reference's); ±infinity and extreme magnitudes are handled.
//
// A selector owns its scratch, so one instance per evaluation thread makes
// per-user selection allocation-free. It is not safe for concurrent use.
#ifndef HETEFEDREC_EVAL_TOPK_H_
#define HETEFEDREC_EVAL_TOPK_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/data/types.h"

namespace hetefedrec {

/// \brief Reusable top-K selection with per-instance scratch.
class TopKSelector {
 public:
  // --- Streaming session: fused selection over score blocks -------------

  /// Starts a top-`k` session. When `mask` is non-null it is indexed by
  /// absolute item id and masked items are skipped (the evaluator's
  /// train-item exclusion). The mask must stay valid until Finish().
  void Begin(size_t k, const std::vector<bool>* mask = nullptr);

  /// Feeds one contiguous score block: `scores[i]` scores item
  /// `first + i`. Blocks must be fed in disjoint spans (any order), each
  /// id at most once per session.
  void Push(ItemId first, const double* scores, size_t n);

  /// Like Push for an explicit id list: `scores[i]` scores `ids[i]`.
  void PushIds(const ItemId* ids, const double* scores, size_t n);

  /// Writes the ranked list (score descending, id ascending; at most k
  /// entries) into *out and resets the session.
  void Finish(std::vector<ItemId>* out);

  // --- One-shot entry points --------------------------------------------

  /// Heap-path equivalent of TopKItems: top-k unmasked indices of
  /// `scores`. `masked` must have the same length.
  void SelectMasked(const std::vector<double>& scores,
                    const std::vector<bool>& masked, size_t k,
                    std::vector<ItemId>* out);

  /// Batched equivalent of TopKFromCandidates (`scores[i]` scores
  /// `ids[i]`): the bounded heap while k << n, the bucketed threshold
  /// cascade once k is a sizable fraction of n (heavy replacement churn).
  void SelectFromCandidates(const std::vector<ItemId>& ids,
                            const std::vector<double>& scores, size_t k,
                            std::vector<ItemId>* out);

  // --- partial_sort reference paths -------------------------------------
  // Byte-for-byte the pre-selector implementations (modulo writing into
  // reused scratch instead of freshly allocated vectors); kept live behind
  // `use_batched_topk = false` as the equivalence oracle.

  void SelectMaskedReference(const std::vector<double>& scores,
                             const std::vector<bool>& masked, size_t k,
                             std::vector<ItemId>* out);

  void SelectFromCandidatesReference(const std::vector<ItemId>& ids,
                                     const std::vector<double>& scores,
                                     size_t k, std::vector<ItemId>* out);

 private:
  struct Entry {
    double score;
    ItemId id;
  };
  /// The ranking order: higher score first, lower id on ties. A strict
  /// total order (ids are distinct), hence the unique-top-K argument.
  static bool Better(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;
  }

  /// Heapifies the warm-up entries once the k-th arrives (worst-at-front).
  void Heapify();
  /// The bucketed threshold cascade; returns false (nothing written) when
  /// the score range is degenerate and the caller must use the heap.
  bool SelectCascade(const ItemId* ids, const double* scores, size_t n,
                     size_t k, std::vector<ItemId>* out);
  /// Replaces the root (the worst retained entry) and restores the heap
  /// with one sift-down — half the work of a pop_heap/push_heap pair.
  void ReplaceRoot(double score, ItemId id);

  size_t k_ = 0;
  const std::vector<bool>* mask_ = nullptr;
  // Bounded selection buffer. Until k entries arrive it is an unordered
  // warm-up list; from then on a heap with comparator Better-as-less whose
  // front is the *worst* retained entry — the replacement threshold,
  // mirrored into worst_ for a one-compare reject of the common case.
  std::vector<Entry> heap_;
  bool heapified_ = false;
  double worst_ = 0.0;
  ItemId worst_id_ = 0;

  // Bucketed-cascade scratch.
  std::vector<uint32_t> bucket_counts_;
  std::vector<uint8_t> bucket_of_;
  std::vector<Entry> cascade_pool_;

  // Reference-path scratch.
  std::vector<ItemId> ref_ids_;
  std::vector<size_t> ref_order_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_EVAL_TOPK_H_
