#include "src/util/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/util/telemetry/json.h"
#include "src/util/telemetry/metrics.h"
#include "src/util/telemetry/profiler.h"
#include "src/util/telemetry/trace.h"

namespace hetefedrec {
namespace {

TEST(JsonTest, EscapesStrings) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\nd");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\"");
}

TEST(JsonTest, IntegralDoublesPrintAsIntegers) {
  std::string out;
  AppendJsonNumber(&out, 42.0);
  EXPECT_EQ(out, "42");
  out.clear();
  AppendJsonNumber(&out, -3.0);
  EXPECT_EQ(out, "-3");
}

TEST(JsonTest, FractionalDoublesRoundTrip) {
  std::string out;
  AppendJsonNumber(&out, 0.5);
  EXPECT_EQ(std::stod(out), 0.5);
  out.clear();
  AppendJsonNumber(&out, 1.0 / 3.0);
  EXPECT_EQ(std::stod(out), 1.0 / 3.0);  // %.17g is round-trip exact
}

TEST(JsonTest, NonFiniteBecomesNull) {
  std::string out;
  AppendJsonNumber(&out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "null");
  out.clear();
  AppendJsonNumber(&out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
}

TEST(JsonTest, ObjKeysStayInCallOrder) {
  JsonObj obj;
  const std::string json = obj.Str("b", "x").U64("a", 1).Bool("c", true)
                               .Raw("d", "[1,2]")
                               .Build();
  EXPECT_EQ(json, "{\"b\":\"x\",\"a\":1,\"c\":true,\"d\":[1,2]}");
}

TEST(CounterTest, MultithreadedAddsSumExactly) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x");
  Counter* b = reg.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3u);
}

TEST(MetricsRegistryTest, EntriesKeepRegistrationOrder) {
  MetricsRegistry reg;
  reg.GetCounter("zeta");
  reg.GetGauge("alpha");
  reg.GetHistogram("mid", {1.0, 2.0});
  reg.GetCounter("zeta");  // re-get must not duplicate
  ASSERT_EQ(reg.entries().size(), 3u);
  EXPECT_EQ(reg.entries()[0].name, "zeta");
  EXPECT_EQ(reg.entries()[1].name, "alpha");
  EXPECT_EQ(reg.entries()[2].name, "mid");
}

TEST(MetricsRegistryTest, ToJsonIsDeterministicAndOrdered) {
  MetricsRegistry reg;
  reg.GetCounter("b.count")->Add(7);
  reg.GetGauge("a.gauge")->Set(2.5);
  const std::string json = reg.ToJson();
  EXPECT_EQ(json, "{\"b.count\":7,\"a.gauge\":2.5}");
}

TEST(HistogramTest, BucketsAndStats) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("h", {1.0, 5.0, 10.0});
  h->Observe(0.5);   // <= 1
  h->Observe(1.0);   // <= 1 (inclusive upper bound)
  h->Observe(3.0);   // (1, 5]
  h->Observe(100.0); // overflow
  ASSERT_EQ(h->bucket_counts().size(), 4u);
  EXPECT_EQ(h->bucket_counts()[0], 2u);
  EXPECT_EQ(h->bucket_counts()[1], 1u);
  EXPECT_EQ(h->bucket_counts()[2], 0u);
  EXPECT_EQ(h->bucket_counts()[3], 1u);
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 104.5);
  EXPECT_DOUBLE_EQ(h->min(), 0.5);
  EXPECT_DOUBLE_EQ(h->max(), 100.0);
}

TEST(TraceRecorderTest, EmitsChromeTraceEvents) {
  TraceRecorder trace;
  trace.SetTrackName(0, "server");
  trace.Instant("merge", "server", 1.5, 0);
  JsonObj args;
  args.U64("user", 9);
  trace.Complete("transfer", "net", 1.0, 0.25, 1, args.Build());
  const std::string json = trace.ToJson();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Simulated seconds scale to microseconds.
  EXPECT_NE(json.find("\"ts\":1500000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":250000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"user\":9}"), std::string::npos);
  EXPECT_EQ(trace.size(), 2u);
}

TEST(TraceRecorderTest, WriteJsonFailsOnBadPath) {
  TraceRecorder trace;
  const Status st = trace.WriteJson("/nonexistent_dir_xyz/trace.json");
  EXPECT_FALSE(st.ok());
}

TEST(ProfilerTest, DisabledScopesRecordNothing) {
  Profiler::Get().Enable(false);
  Profiler::Get().Reset();
  { HFR_PROFILE("idle"); }
  EXPECT_TRUE(Profiler::Get().Collect().empty());
}

TEST(ProfilerTest, NestedScopesBuildAPathTree) {
  Profiler::Get().Reset();
  Profiler::Get().Enable(true);
  for (int i = 0; i < 3; ++i) {
    HFR_PROFILE("outer");
    {
      HFR_PROFILE("inner");
      // hfr-lint: allow(R4): test-only sleep so the profiler accumulates nonzero wall time; no result depends on it
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  Profiler::Get().Enable(false);
  const std::vector<Profiler::PhaseStat> stats = Profiler::Get().Collect();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].path, "outer");
  EXPECT_EQ(stats[0].depth, 0);
  EXPECT_EQ(stats[0].calls, 3u);
  EXPECT_EQ(stats[1].path, "outer/inner");
  EXPECT_EQ(stats[1].depth, 1);
  EXPECT_EQ(stats[1].calls, 3u);
  EXPECT_GE(stats[0].total_seconds, stats[1].total_seconds);
  EXPECT_GT(stats[1].total_seconds, 0.0);
  // Self time excludes the child scope.
  EXPECT_LE(stats[0].self_seconds, stats[0].total_seconds);
  const std::string table = Profiler::Render(stats);
  EXPECT_NE(table.find("outer"), std::string::npos);
  EXPECT_NE(table.find("inner"), std::string::npos);
  Profiler::Get().Reset();
}

TEST(ProfilerTest, MergesAcrossThreadsByPath) {
  Profiler::Get().Reset();
  Profiler::Get().Enable(true);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] { HFR_PROFILE("work"); });
  }
  for (auto& t : threads) t.join();
  Profiler::Get().Enable(false);
  const std::vector<Profiler::PhaseStat> stats = Profiler::Get().Collect();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].path, "work");
  EXPECT_EQ(stats[0].calls, 4u);
  Profiler::Get().Reset();
}

TEST(TelemetryTest, CreateFailsOnBadMetricsPath) {
  TelemetryOptions opt;
  opt.metrics_path = "/nonexistent_dir_xyz/metrics.jsonl";
  EXPECT_FALSE(Telemetry::Create(opt).ok());
}

TEST(TelemetryTest, WritesRowsAndTrace) {
  const std::string dir = ::testing::TempDir();
  TelemetryOptions opt;
  opt.metrics_path = dir + "/telemetry_test_metrics.jsonl";
  opt.trace_path = dir + "/telemetry_test_trace.json";
  auto tel = Telemetry::Create(opt);
  ASSERT_TRUE(tel.ok());
  EXPECT_TRUE((*tel)->metrics_on());
  ASSERT_TRUE((*tel)->trace_on());
  (*tel)->WriteRow("{\"type\":\"meta\"}");
  (*tel)->trace()->Instant("merge", "server", 1.0, 0);
  ASSERT_TRUE((*tel)->Flush().ok());

  std::FILE* f = std::fopen(opt.metrics_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {0};
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  std::fclose(f);
  EXPECT_EQ(std::string(buf), "{\"type\":\"meta\"}\n");

  f = std::fopen(opt.trace_path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string trace;
  char chunk[256];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    trace.append(chunk, n);
  }
  std::fclose(f);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"merge\""), std::string::npos);
  std::remove(opt.metrics_path.c_str());
  std::remove(opt.trace_path.c_str());
}

}  // namespace
}  // namespace hetefedrec
