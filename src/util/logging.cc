#include "src/util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace hetefedrec {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Honors HETEFEDREC_LOG_LEVEL before the first line is logged; runs once
/// during static initialization of g_min_level.
int InitialLevel() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once during static init,
  // before any thread that could call setenv exists.
  const char* env = std::getenv("HETEFEDREC_LOG_LEVEL");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kInfo);
  }
  LogLevel level = LogLevel::kInfo;
  if (!ParseLogLevel(env, &level)) {
    std::fprintf(stderr,
                 "[WARN] unrecognized HETEFEDREC_LOG_LEVEL '%s'; using info\n",
                 env);
  }
  return static_cast<int>(level);
}

std::atomic<int> g_min_level{InitialLevel()};

/// Compact per-process thread ordinal: t0 is the first thread that logs.
unsigned ThreadOrdinal() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// "2026-08-07T12:00:00.123Z" (UTC, millisecond precision) into buf.
void FormatTimestamp(char* buf, size_t size) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &secs);
#else
  gmtime_r(&secs, &tm);
#endif
  std::snprintf(buf, size, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") {
    *out = LogLevel::kDebug;
  } else if (lower == "info" || lower == "1") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn" || lower == "2") {
    *out = LogLevel::kWarning;
  } else if (lower == "error" || lower == "3") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // File/line kept only for debug level to keep routine logs compact.
  if (level == LogLevel::kDebug) stream_ << file << ":" << line << " ";
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  char ts[32];
  FormatTimestamp(ts, sizeof(ts));
  std::fprintf(stderr, "[%s %s t%u] %s\n", ts, LevelName(level_),
               ThreadOrdinal(), stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  char ts[32];
  FormatTimestamp(ts, sizeof(ts));
  std::fprintf(stderr, "[%s FATAL t%u] %s:%d %s\n", ts, ThreadOrdinal(), file_,
               line_, stream_.str().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace hetefedrec
