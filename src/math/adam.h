// Adam optimizer (Kingma & Ba, 2015) over Matrix parameters.
//
// Clients run Adam locally (the paper's optimizer, lr = 0.001); the server
// applies aggregated *updates*, not Adam, per Eq. 4/9. Both classes are
// templated on the working scalar: the double instantiations are the
// bit-identity reference, the float ones serve the fp32 compute backend
// (hyper-parameters stay double in AdamOptions and are cast once per
// step, and the bias corrections are computed in double then cast, so the
// double path is unchanged to the bit).
#ifndef HETEFEDREC_MATH_ADAM_H_
#define HETEFEDREC_MATH_ADAM_H_

#include "src/math/matrix.h"
#include "src/math/sparse.h"

namespace hetefedrec {

/// Hyper-parameters for Adam; defaults follow the original paper.
struct AdamOptions {
  double lr = 0.001;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

/// \brief Per-parameter Adam state (first/second moments + step count).
///
/// One `AdamT` instance owns the state for exactly one Matrix-shaped
/// parameter. State is created lazily on the first `Step` so the class can
/// be declared before parameter shapes are known.
template <typename T>
class AdamT {
 public:
  explicit AdamT(AdamOptions options = {}) : options_(options) {}

  /// Applies one Adam update: param -= lr * mhat / (sqrt(vhat) + eps).
  /// Shapes of `param` and `grad` must match across all calls.
  ///
  /// A gradient containing any non-finite value (NaN/Inf) would poison the
  /// moment estimates forever; such steps are skipped entirely — no moment
  /// decay, no step-count increment — and counted in `skipped_steps()`.
  void Step(MatrixT<T>* param, const MatrixT<T>& grad);

  /// Resets moments and the step counter (used when a client receives fresh
  /// global parameters at the start of a round).
  void Reset();

  const AdamOptions& options() const { return options_; }
  long long step_count() const { return t_; }

  /// Steps dropped because the gradient contained a non-finite value.
  /// Cleared by `Reset` along with the moments.
  long long skipped_steps() const { return skipped_; }

 private:
  AdamOptions options_;
  MatrixT<T> m_;
  MatrixT<T> v_;
  long long t_ = 0;
  long long skipped_ = 0;
};

using Adam = AdamT<double>;
using AdamF = AdamT<float>;

extern template class AdamT<double>;
extern template class AdamT<float>;

/// \brief Row-sparse Adam over a copy-on-write table view.
///
/// Bit-identical to running dense `Adam` over the full table with a
/// gradient that is zero outside the touched rows: a never-touched row has
/// zero moments and zero gradient, so its dense update is exactly 0.0;
/// a row first touched at global step t has had zero moments through steps
/// 1..t-1, which is exactly the state this class materializes lazily. Rows
/// touched in an earlier step keep receiving moment-decay steps in later
/// ones (matching dense Adam), so the per-step cost is O(cumulative touched
/// rows × width), never O(table).
template <typename T>
class SparseRowAdamT {
 public:
  explicit SparseRowAdamT(AdamOptions options = {}) : options_(options) {}

  /// Replaces the hyper-parameters (takes effect from the next Step).
  void set_options(const AdamOptions& options) { options_ = options; }

  /// Drops all moments and re-shapes for a `num_rows x width` table.
  /// O(previously touched rows) when the shape is unchanged, so one
  /// instance can serve a whole sequence of clients.
  void Reset(size_t num_rows, size_t width);

  /// One global Adam step: every row in `grad` joins the touched set, then
  /// every touched row is stepped (absent rows with exact-zero gradient).
  ///
  /// Like dense `Adam::Step`, a gradient with any non-finite value skips the
  /// whole step (no enrollment, no decay, no step-count increment) and bumps
  /// `skipped_steps()`.
  void Step(RowOverlayTableT<T>* table, const SparseRowStoreT<T>& grad);

  long long step_count() const { return t_; }

  /// Steps dropped because the gradient contained a non-finite value.
  /// Cleared by `Reset` along with the moments.
  long long skipped_steps() const { return skipped_; }

 private:
  AdamOptions options_;
  SparseRowStoreT<T> moments_;  // per touched row: [m(0..w), v(0..w)]
  long long t_ = 0;
  long long skipped_ = 0;
};

using SparseRowAdam = SparseRowAdamT<double>;
using SparseRowAdamF = SparseRowAdamT<float>;

extern template class SparseRowAdamT<double>;
extern template class SparseRowAdamT<float>;

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_ADAM_H_
