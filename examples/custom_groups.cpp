// Customizing HeteFedRec: your own division ratios, model sizes, and
// component toggles through the public API.
//
// Demonstrates:
//   * sweeping the client division ratio (Table VI style),
//   * changing the {Ns, Nm, Nl} model sizes (Table VII style),
//   * switching HeteFedRec components off one by one (Table IV style).
#include <cstdio>

#include "src/core/trainer.h"
#include "src/util/table_printer.h"

int main() {
  using namespace hetefedrec;

  ExperimentConfig base;
  base.dataset = "anime";
  base.data_scale = 0.04;
  base.global_epochs = 10;
  base.clients_per_round = 64;  // scaled with the population (see README)
  base.eval_user_sample = 250;

  // --- 1. Division ratios -------------------------------------------------
  TablePrinter ratios("Client division ratios (NDCG@20)",
                      {"Ratio", "NDCG", "|Us|", "|Um|", "|Ul|"});
  for (auto [name, fracs] :
       {std::pair<const char*, std::array<double, 3>>{"5:3:2", {5, 3, 2}},
        {"1:1:1", {1, 1, 1}},
        {"2:3:5", {2, 3, 5}}}) {
    ExperimentConfig cfg = base;
    cfg.group_fractions = fracs;
    auto runner = ExperimentRunner::Create(cfg);
    if (!runner.ok()) {
      std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
      return 1;
    }
    ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
    ratios.AddRow({name, TablePrinter::Num(r.final_eval.overall.ndcg),
                   std::to_string((*runner)->groups().size(Group::kSmall)),
                   std::to_string((*runner)->groups().size(Group::kMedium)),
                   std::to_string((*runner)->groups().size(Group::kLarge))});
  }
  ratios.Print();

  // --- 2. Model sizes ------------------------------------------------------
  TablePrinter sizes("Model size sets (NDCG@20)", {"Sizes", "NDCG"});
  for (auto [name, dims] :
       {std::pair<const char*, std::array<size_t, 3>>{"{4,8,16}", {4, 8, 16}},
        {"{8,16,32}", {8, 16, 32}}}) {
    ExperimentConfig cfg = base;
    cfg.dims = dims;
    auto runner = ExperimentRunner::Create(cfg);
    if (!runner.ok()) return 1;
    ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
    sizes.AddRow({name, TablePrinter::Num(r.final_eval.overall.ndcg)});
  }
  sizes.Print();

  // --- 3. Component toggles ------------------------------------------------
  TablePrinter parts("Component ablation (NDCG@20)", {"Variant", "NDCG"});
  struct Variant {
    const char* name;
    bool udl, ddr, kd;
  };
  for (const Variant& v :
       {Variant{"full", true, true, true}, {"no RESKD", true, true, false},
        {"UDL only", true, false, false}, {"none", false, false, false}}) {
    ExperimentConfig cfg = base;
    cfg.unified_dual_task = v.udl;
    cfg.decorrelation = v.ddr;
    cfg.ensemble_distillation = v.kd;
    auto runner = ExperimentRunner::Create(cfg);
    if (!runner.ok()) return 1;
    ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
    parts.AddRow({v.name, TablePrinter::Num(r.final_eval.overall.ndcg)});
  }
  parts.Print();
  return 0;
}
