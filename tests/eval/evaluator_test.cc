#include "src/eval/evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <unordered_set>

#include "src/eval/metrics.h"
#include "src/util/thread_pool.h"

namespace hetefedrec {
namespace {

// Deterministic dataset: 6 users, 10 items; user u interacted with items
// u..u+4 so everyone has 4 train + 1 test item.
Dataset MakeDataset() {
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 6; ++u) {
    for (ItemId k = 0; k < 5; ++k) xs.push_back({u, static_cast<ItemId>(u + k)});
  }
  return Dataset::FromInteractions(xs, 6, 10).value();
}

GroupAssignment MakeGroups(const Dataset& ds) {
  return AssignGroups(ds, {2, 2, 2}).value();
}

TEST(EvaluatorTest, OracleScorerGetsPerfectMetrics) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 5);
  // Oracle: test items score 1, everything else 0.
  auto oracle = [&](UserId u, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 0.0);
    for (ItemId i : ds.TestItems(u)) (*scores)[i] = 1.0;
  };
  GroupedEval r = ev.Evaluate(oracle);
  EXPECT_DOUBLE_EQ(r.overall.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.overall.ndcg, 1.0);
  EXPECT_EQ(r.overall.users, 6u);
}

TEST(EvaluatorTest, AdversarialScorerGetsZero) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 2);
  // Anti-oracle: test items score lowest.
  auto anti = [&](UserId u, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 1.0);
    for (ItemId i : ds.TestItems(u)) (*scores)[i] = -1.0;
  };
  GroupedEval r = ev.Evaluate(anti);
  EXPECT_DOUBLE_EQ(r.overall.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.overall.ndcg, 0.0);
}

TEST(EvaluatorTest, TrainItemsNeverRecommended) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 10);
  // Score train items maximally; they must be masked, so recall stays
  // driven by test items only.
  auto cheater = [&](UserId u, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 0.0);
    for (ItemId i : ds.TrainItems(u)) (*scores)[i] = 100.0;
    for (ItemId i : ds.TestItems(u)) (*scores)[i] = 1.0;
  };
  GroupedEval r = ev.Evaluate(cheater);
  EXPECT_DOUBLE_EQ(r.overall.recall, 1.0);  // K=10 covers all unmasked
}

TEST(EvaluatorTest, PerGroupCountsSumToOverall) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 5);
  auto zero = [&](UserId, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 0.0);
  };
  GroupedEval r = ev.Evaluate(zero);
  size_t total = 0;
  for (int g = 0; g < kNumGroups; ++g) total += r.per_group[g].users;
  EXPECT_EQ(total, r.overall.users);
}

TEST(EvaluatorTest, UserSamplingReducesPopulation) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 5, /*user_sample=*/3);
  EXPECT_EQ(ev.eval_users().size(), 3u);
  Evaluator full(ds, groups, 5, /*user_sample=*/0);
  EXPECT_EQ(full.eval_users().size(), 6u);
  Evaluator big(ds, groups, 5, /*user_sample=*/100);
  EXPECT_EQ(big.eval_users().size(), 6u);
}

TEST(EvaluatorTest, SampleDeterministicPerSeed) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator a(ds, groups, 5, 3, 42);
  Evaluator b(ds, groups, 5, 3, 42);
  EXPECT_EQ(a.eval_users(), b.eval_users());
}

TEST(EvaluatorTest, ParallelEvaluationBitIdenticalToSerial) {
  // Larger population with non-trivial fractional metrics: any ordering
  // difference in the parallel reduction would perturb the FP sums.
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 64; ++u) {
    for (ItemId k = 0; k < 8; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 11 + k * 3) % 200)});
    }
  }
  Dataset ds = Dataset::FromInteractions(xs, 64, 200).value();
  GroupAssignment groups = AssignGroups(ds, {5, 3, 2}).value();
  Evaluator ev(ds, groups, 10);

  // Deterministic per-user scoring with irrational-ish values so averaged
  // metrics exercise full double precision.
  auto serial_fn = [&](UserId u, std::vector<double>* scores) {
    scores->resize(ds.num_items());
    for (size_t j = 0; j < ds.num_items(); ++j) {
      (*scores)[j] = std::sin(static_cast<double>(u * 131 + j * 17) * 0.01);
    }
  };
  auto threaded_fn = [&](UserId u, size_t /*slot*/,
                         std::vector<double>* scores) {
    serial_fn(u, scores);
  };

  GroupedEval serial = ev.Evaluate(serial_fn);
  ThreadPool pool(3);  // 4 executing slots
  GroupedEval parallel = ev.Evaluate(threaded_fn, &pool);
  ThreadPool none(0);  // pool-less threaded overload
  GroupedEval degenerate = ev.Evaluate(threaded_fn, &none);

  for (const GroupedEval* other : {&parallel, &degenerate}) {
    EXPECT_EQ(serial.overall.recall, other->overall.recall);
    EXPECT_EQ(serial.overall.ndcg, other->overall.ndcg);
    EXPECT_EQ(serial.overall.users, other->overall.users);
    for (int g = 0; g < kNumGroups; ++g) {
      EXPECT_EQ(serial.per_group[g].recall, other->per_group[g].recall);
      EXPECT_EQ(serial.per_group[g].ndcg, other->per_group[g].ndcg);
      EXPECT_EQ(serial.per_group[g].users, other->per_group[g].users);
    }
  }
}

TEST(EvaluatorTest, BatchOverloadMatchesThreadedOverloadInFullMode) {
  // The id-list overload with candidate_sample = 0 ranks the full
  // catalogue; given the same per-item scores it must reproduce the
  // legacy overload bit-for-bit.
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 40; ++u) {
    for (ItemId k = 0; k < 8; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 7 + k * 5) % 120)});
    }
  }
  Dataset ds = Dataset::FromInteractions(xs, 40, 120).value();
  GroupAssignment groups = AssignGroups(ds, {5, 3, 2}).value();
  Evaluator ev(ds, groups, 10);

  auto item_score = [](UserId u, ItemId j) {
    return std::sin(static_cast<double>(u * 131 + j * 17) * 0.01);
  };
  auto threaded_fn = [&](UserId u, size_t, std::vector<double>* scores) {
    scores->resize(ds.num_items());
    for (size_t j = 0; j < ds.num_items(); ++j) {
      (*scores)[j] = item_score(u, static_cast<ItemId>(j));
    }
  };
  auto batch_fn = [&](UserId u, size_t, const std::vector<ItemId>& ids,
                      double* out) {
    for (size_t i = 0; i < ids.size(); ++i) out[i] = item_score(u, ids[i]);
  };

  ThreadPool pool(3);
  GroupedEval legacy = ev.Evaluate(
      Evaluator::ThreadedScoreFn(threaded_fn), &pool);
  GroupedEval batch = ev.Evaluate(Evaluator::BatchScoreFn(batch_fn), &pool);
  EXPECT_EQ(legacy.overall.recall, batch.overall.recall);
  EXPECT_EQ(legacy.overall.ndcg, batch.overall.ndcg);
  EXPECT_EQ(legacy.overall.users, batch.overall.users);
  for (int g = 0; g < kNumGroups; ++g) {
    EXPECT_EQ(legacy.per_group[g].recall, batch.per_group[g].recall);
    EXPECT_EQ(legacy.per_group[g].ndcg, batch.per_group[g].ndcg);
  }
}

TEST(EvaluatorCandidateTest, CandidateSetContainsTestAndExcludesInteracted) {
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 10; ++u) {
    for (ItemId k = 0; k < 10; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 13 + k * 3) % 150)});
    }
  }
  Dataset ds = Dataset::FromInteractions(xs, 10, 150).value();
  GroupAssignment groups = AssignGroups(ds, {5, 3, 2}).value();
  Evaluator ev(ds, groups, 5, 0, 9177, /*candidate_sample=*/25);

  for (UserId u = 0; u < 10; ++u) {
    std::vector<ItemId> ids = ev.CandidateItems(u);
    // Sorted, duplicate-free.
    ASSERT_TRUE(std::is_sorted(ids.begin(), ids.end()));
    ASSERT_TRUE(std::adjacent_find(ids.begin(), ids.end()) == ids.end());
    // Every test item is present; no train item sneaks in.
    std::unordered_set<ItemId> in_ids(ids.begin(), ids.end());
    for (ItemId t : ds.TestItems(u)) EXPECT_TRUE(in_ids.count(t)) << t;
    for (ItemId t : ds.TrainItems(u)) EXPECT_FALSE(in_ids.count(t)) << t;
    EXPECT_EQ(ids.size(), ds.TestItems(u).size() + 25);
    // Deterministic per user.
    EXPECT_EQ(ids, ev.CandidateItems(u));
  }
}

TEST(EvaluatorCandidateTest, CandidateTopKEqualsFullTopKRestricted) {
  // The pinning test: candidate top-K must equal the full-catalogue top-K
  // restricted to the candidate set (same scores, same ordering).
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 30; ++u) {
    for (ItemId k = 0; k < 10; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 11 + k * 7) % 250)});
    }
  }
  Dataset ds = Dataset::FromInteractions(xs, 30, 250).value();
  GroupAssignment groups = AssignGroups(ds, {5, 3, 2}).value();
  const size_t top_k = 10;
  Evaluator cand_ev(ds, groups, top_k, 0, 9177, /*candidate_sample=*/40);

  auto item_score = [](UserId u, ItemId j) {
    return std::sin(static_cast<double>(u * 37 + j * 101) * 0.013);
  };
  for (UserId u = 0; u < 30; ++u) {
    if (ds.TestItems(u).empty()) continue;
    std::vector<ItemId> ids = cand_ev.CandidateItems(u);

    // Candidate ranking.
    std::vector<double> cand_scores(ids.size());
    for (size_t i = 0; i < ids.size(); ++i) {
      cand_scores[i] = item_score(u, ids[i]);
    }
    std::vector<ItemId> cand_topk =
        TopKFromCandidates(ids, cand_scores, top_k);

    // Full ranking restricted to the candidate set.
    std::vector<double> full_scores(ds.num_items());
    for (size_t j = 0; j < ds.num_items(); ++j) {
      full_scores[j] = item_score(u, static_cast<ItemId>(j));
    }
    std::vector<bool> mask(ds.num_items(), false);
    for (ItemId i : ds.TrainItems(u)) mask[i] = true;
    std::vector<ItemId> full_rank =
        TopKItems(full_scores, mask, ds.num_items());
    std::unordered_set<ItemId> cand_set(ids.begin(), ids.end());
    std::vector<ItemId> restricted;
    for (ItemId i : full_rank) {
      if (cand_set.count(i)) restricted.push_back(i);
      if (restricted.size() == top_k) break;
    }
    ASSERT_EQ(cand_topk, restricted) << "user " << u;
  }
}

TEST(EvaluatorCandidateTest, CandidateEvalParallelBitIdenticalAndBounded) {
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 48; ++u) {
    for (ItemId k = 0; k < 9; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 19 + k * 3) % 220)});
    }
  }
  Dataset ds = Dataset::FromInteractions(xs, 48, 220).value();
  GroupAssignment groups = AssignGroups(ds, {5, 3, 2}).value();
  Evaluator ev(ds, groups, 10, 0, 9177, /*candidate_sample=*/30);

  size_t max_ids_seen = 0;
  std::mutex mu;
  auto batch_fn = [&](UserId u, size_t, const std::vector<ItemId>& ids,
                      double* out) {
    {
      std::lock_guard<std::mutex> lock(mu);
      max_ids_seen = std::max(max_ids_seen, ids.size());
    }
    for (size_t i = 0; i < ids.size(); ++i) {
      out[i] = std::sin(static_cast<double>(u * 131 + ids[i] * 17) * 0.01);
    }
  };
  GroupedEval serial = ev.Evaluate(Evaluator::BatchScoreFn(batch_fn),
                                   /*pool=*/nullptr);
  ThreadPool pool(3);
  GroupedEval parallel = ev.Evaluate(Evaluator::BatchScoreFn(batch_fn),
                                     &pool);
  EXPECT_EQ(serial.overall.recall, parallel.overall.recall);
  EXPECT_EQ(serial.overall.ndcg, parallel.overall.ndcg);
  EXPECT_EQ(serial.overall.users, parallel.overall.users);
  // Candidate slicing actually slices: no callback saw the catalogue.
  EXPECT_LT(max_ids_seen, ds.num_items());
}

TEST(EvaluatorTopKTest, BatchedSelectorBitIdenticalToReference) {
  // use_batched_topk on vs off through every overload: the streaming heap
  // and the partial_sort reference must produce identical metrics.
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 48; ++u) {
    for (ItemId k = 0; k < 8; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 13 + k * 5) % 160)});
    }
  }
  Dataset ds = Dataset::FromInteractions(xs, 48, 160).value();
  GroupAssignment groups = AssignGroups(ds, {5, 3, 2}).value();
  // Quantized scores: heavy ties make the id tie-break load-bearing.
  auto item_score = [](UserId u, ItemId j) {
    return static_cast<double>((u * 31 + j * 17) % 13) / 13.0;
  };
  auto batch_fn = [&](UserId u, size_t, const std::vector<ItemId>& ids,
                      double* out) {
    for (size_t i = 0; i < ids.size(); ++i) out[i] = item_score(u, ids[i]);
  };

  ThreadPool pool(3);
  for (size_t candidates : {size_t{0}, size_t{30}}) {
    Evaluator batched(ds, groups, 10, 0, 9177, candidates,
                      /*use_batched_topk=*/true);
    Evaluator reference(ds, groups, 10, 0, 9177, candidates,
                        /*use_batched_topk=*/false);
    GroupedEval a =
        batched.Evaluate(Evaluator::BatchScoreFn(batch_fn), &pool);
    GroupedEval b =
        reference.Evaluate(Evaluator::BatchScoreFn(batch_fn), &pool);
    EXPECT_EQ(a.overall.recall, b.overall.recall) << candidates;
    EXPECT_EQ(a.overall.ndcg, b.overall.ndcg) << candidates;
    EXPECT_EQ(a.overall.users, b.overall.users) << candidates;
    for (int g = 0; g < kNumGroups; ++g) {
      EXPECT_EQ(a.per_group[g].recall, b.per_group[g].recall);
      EXPECT_EQ(a.per_group[g].ndcg, b.per_group[g].ndcg);
    }
  }
}

TEST(EvaluatorTopKTest, StreamOverloadMatchesBatchOverload) {
  // The fused stream overload (scores pushed block-wise into the top-K
  // sink, uneven block sizes) must reproduce the array-based overloads.
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 32; ++u) {
    for (ItemId k = 0; k < 7; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 17 + k * 11) % 140)});
    }
  }
  Dataset ds = Dataset::FromInteractions(xs, 32, 140).value();
  GroupAssignment groups = AssignGroups(ds, {5, 3, 2}).value();
  Evaluator ev(ds, groups, 10);

  auto item_score = [](UserId u, ItemId j) {
    return std::sin(static_cast<double>(u * 53 + j * 29) * 0.017);
  };
  auto batch_fn = [&](UserId u, size_t, const std::vector<ItemId>& ids,
                      double* out) {
    for (size_t i = 0; i < ids.size(); ++i) out[i] = item_score(u, ids[i]);
  };
  auto stream_fn = [&](UserId u, size_t, TopKSelector* sink) {
    // Deliberately ragged blocks (1, 2, 4, 8, ... items).
    std::vector<double> block;
    size_t first = 0, bs = 1;
    while (first < ds.num_items()) {
      const size_t n = std::min(bs, ds.num_items() - first);
      block.resize(n);
      for (size_t i = 0; i < n; ++i) {
        block[i] = item_score(u, static_cast<ItemId>(first + i));
      }
      sink->Push(static_cast<ItemId>(first), block.data(), n);
      first += n;
      bs *= 2;
    }
  };

  ThreadPool pool(3);
  GroupedEval batch = ev.Evaluate(Evaluator::BatchScoreFn(batch_fn), &pool);
  GroupedEval stream =
      ev.Evaluate(Evaluator::StreamScoreFn(stream_fn), &pool);
  GroupedEval stream_serial =
      ev.Evaluate(Evaluator::StreamScoreFn(stream_fn), nullptr);
  for (const GroupedEval* other : {&stream, &stream_serial}) {
    EXPECT_EQ(batch.overall.recall, other->overall.recall);
    EXPECT_EQ(batch.overall.ndcg, other->overall.ndcg);
    EXPECT_EQ(batch.overall.users, other->overall.users);
    for (int g = 0; g < kNumGroups; ++g) {
      EXPECT_EQ(batch.per_group[g].recall, other->per_group[g].recall);
      EXPECT_EQ(batch.per_group[g].ndcg, other->per_group[g].ndcg);
    }
  }
}

TEST(EvaluatorTopKTest, StarvedCatalogueNdcgUsesRequestedK) {
  // Regression for the IDCG truncation fix at the evaluator level: user 0
  // has 4 train + 2 test items in an 8-item catalogue, so at top_k = 10
  // only 4 items are rankable. Both test items hit at ranks 1-2, but the
  // ideal@10 list also holds 2 hits at ranks 1-2 — so NDCG is 1.0 — while
  // a hit pushed to the list's tail must be graded against rank 2, not
  // against a shrunken 4-long ideal.
  std::vector<Interaction> xs;
  for (ItemId k = 0; k < 6; ++k) xs.push_back({0, k});
  for (ItemId k = 0; k < 6; ++k) xs.push_back({1, static_cast<ItemId>(7 - k)});
  Dataset ds = Dataset::FromInteractions(xs, 2, 8).value();
  GroupAssignment groups = AssignGroups(ds, {1, 1, 1}).value();
  Evaluator ev(ds, groups, 10);

  auto score_fn = [&](UserId u, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 0.0);
    // User 0: test items ranked first; user 1: test items ranked last.
    double v = u == 0 ? 1.0 : -1.0;
    for (ItemId i : ds.TestItems(u)) (*scores)[i] = v;
  };
  GroupedEval r = ev.Evaluate(score_fn);
  ASSERT_EQ(r.overall.users, 2u);

  auto hand_ndcg = [&](UserId u, const std::vector<ItemId>& topk) {
    std::unordered_set<ItemId> rel(ds.TestItems(u).begin(),
                                   ds.TestItems(u).end());
    return NdcgAtK(topk, rel, 10);
  };
  // Reconstruct each user's 4-item ranked list by brute force.
  double expect = 0.0;
  for (UserId u : {UserId{0}, UserId{1}}) {
    std::vector<double> scores;
    score_fn(u, &scores);
    std::vector<bool> mask(ds.num_items(), false);
    for (ItemId i : ds.TrainItems(u)) mask[i] = true;
    expect += hand_ndcg(u, TopKItems(scores, mask, 10));
  }
  expect /= 2.0;
  EXPECT_DOUBLE_EQ(r.overall.ndcg, expect);
  // The anti-oracle user's hits sit at the tail of a 4-item list; under
  // the old normalization the pair averaged higher.
  EXPECT_LT(r.overall.ndcg, 1.0);
  EXPECT_GT(r.overall.ndcg, 0.0);
}

TEST(EvaluatorTest, UsersWithoutTestItemsSkipped) {
  // One user with a single interaction has no test item.
  std::vector<Interaction> xs = {{0, 0}};
  for (ItemId k = 0; k < 5; ++k) xs.push_back({1, k});
  Dataset ds = Dataset::FromInteractions(xs, 2, 6).value();
  GroupAssignment groups = AssignGroups(ds, {1, 1, 1}).value();
  Evaluator ev(ds, groups, 3);
  auto zero = [&](UserId, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 0.0);
  };
  GroupedEval r = ev.Evaluate(zero);
  EXPECT_EQ(r.overall.users, 1u);
}

}  // namespace
}  // namespace hetefedrec
