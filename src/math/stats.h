// Column statistics: means, variances, covariance and correlation matrices.
//
// These feed two parts of the paper: the dimensional decorrelation
// regularizer (Eq. 13 standardizes columns and penalizes the correlation
// matrix) and the collapse diagnostic of Table V (variance of the
// eigenvalues of the item-embedding covariance matrix).
#ifndef HETEFEDREC_MATH_STATS_H_
#define HETEFEDREC_MATH_STATS_H_

#include <vector>

#include "src/math/matrix.h"

namespace hetefedrec {

/// Per-column means of `m` (length = cols).
std::vector<double> ColumnMeans(const Matrix& m);

/// Per-column population variances (divide by rows).
std::vector<double> ColumnVariances(const Matrix& m);

/// Covariance matrix of the columns (cols x cols), population normalization.
Matrix CovarianceMatrix(const Matrix& m);

/// Correlation matrix of the columns. Columns with (near-)zero variance get
/// zero correlation with everything and 1 on the diagonal.
Matrix CorrelationMatrix(const Matrix& m);

/// Column-standardized copy: (m - colmean) / sqrt(colvar + eps).
Matrix StandardizeColumns(const Matrix& m, double eps = 1e-12);

/// Mean of a vector.
double Mean(const std::vector<double>& v);

/// Population variance of a vector.
double Variance(const std::vector<double>& v);

/// Standard deviation (sqrt of population variance).
double StdDev(const std::vector<double>& v);

/// p-th percentile (0..100) by nearest-rank on a sorted copy.
double Percentile(std::vector<double> v, double p);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_STATS_H_
