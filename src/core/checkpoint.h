// Binary checkpoint primitives.
//
// A tiny tagged little-endian format ("HFR1") used to persist matrices and
// whole server states: deploying a trained federated recommender means
// shipping exactly these public parameters to clients. Readers validate
// magic, tags and dimensions so a truncated or foreign file fails loudly
// with a Status instead of corrupting a model.
#ifndef HETEFEDREC_CORE_CHECKPOINT_H_
#define HETEFEDREC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/math/matrix.h"
#include "src/models/ffn.h"
#include "src/util/status.h"

namespace hetefedrec {

/// File magic written at the head of every checkpoint.
inline constexpr char kCheckpointMagic[4] = {'H', 'F', 'R', '1'};

/// Record tags inside a checkpoint stream.
enum class RecordTag : uint32_t {
  kMatrix = 1,
  kFfn = 2,
  kMeta = 3,
  /// Length-prefixed vector of raw uint64 words (format v2, run states).
  /// Doubles ride along as bit patterns; see core/run_state.cc.
  kRaw64 = 4,
  kEnd = 0xFFFFFFFF,
};

/// Writes the checkpoint header.
Status WriteCheckpointHeader(std::ostream* out);

/// Reads and validates the checkpoint header.
Status ReadCheckpointHeader(std::istream* in);

/// Writes one matrix record (tag + rows + cols + row-major doubles).
Status WriteMatrix(std::ostream* out, const Matrix& m);

/// Reads one matrix record written by WriteMatrix.
StatusOr<Matrix> ReadMatrix(std::istream* in);

/// Writes a small key=value string record (model type, widths, seed...).
Status WriteMeta(std::ostream* out, const std::string& key,
                 const std::string& value);

/// Reads a meta record; returns (key, value).
StatusOr<std::pair<std::string, std::string>> ReadMeta(std::istream* in);

/// Writes the end-of-checkpoint sentinel.
Status WriteEnd(std::ostream* out);

/// Peeks the next record tag without consuming it.
StatusOr<RecordTag> PeekTag(std::istream* in);

/// Writes one raw-word record (tag + count + count uint64 words).
Status WriteU64Vector(std::ostream* out, const std::vector<uint64_t>& words);

/// Reads a record written by WriteU64Vector.
StatusOr<std::vector<uint64_t>> ReadU64Vector(std::istream* in);

/// Writes one FeedForwardNet record (layer count + per-layer matrices).
Status WriteFfn(std::ostream* out, const FeedForwardNet& net);

/// Reads a FeedForwardNet record written by WriteFfn.
StatusOr<FeedForwardNet> ReadFfn(std::istream* in);

class ServerApi;

/// Persists a trained server's public parameters — every slot's item
/// embedding table and preference FFN plus identifying metadata — to
/// `path`. Works for any ServerApi implementation (single-table or
/// sharded); the format is shard-count independent.
Status SaveServerCheckpoint(const std::string& path, const ServerApi& server,
                            const std::string& base_model_name);

/// \brief A loaded checkpoint: per-slot public parameters.
struct ServerCheckpoint {
  std::string base_model_name;
  std::vector<Matrix> tables;
  std::vector<FeedForwardNet> thetas;
};

/// Loads a checkpoint written by SaveServerCheckpoint.
StatusOr<ServerCheckpoint> LoadServerCheckpoint(const std::string& path);

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_CHECKPOINT_H_
