#!/usr/bin/env python3
"""Self-test for tools/lint/hfr_lint.py, run via ctest (lint_tool_test).

Drives the linter over the known-bad / known-good fixture tree in
tests/lint/fixtures/ and asserts, per rule R1-R5:

  - every *bad* fixture exits non-zero with exactly the expected findings,
    all carrying the expected rule id;
  - every *good* fixture exits zero with no findings;
  - suppressions with reasons silence findings, reasonless suppressions are
    themselves findings and silence nothing;
  - the R3 owned-declaration check applies under src/ but not under tests/;
  - baselined findings do not fail the run, and the JSON output reports
    them separately;
  - --list-rules names all five rules.

A broken rule therefore fails tier-1, not just the standalone lint job.
"""

import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
LINT = os.path.join(REPO_ROOT, "tools", "lint", "hfr_lint.py")
FIXTURES = os.path.join(REPO_ROOT, "tests", "lint", "fixtures")

FAILURES = []


def check(cond, label, detail=""):
    status = "ok" if cond else "FAIL"
    print("[{}] {}".format(status, label))
    if not cond:
        if detail:
            print("       " + detail.replace("\n", "\n       "))
        FAILURES.append(label)


def run_lint(args, root=REPO_ROOT, baseline=None):
    cmd = [sys.executable, LINT, "--root", root, "--json"]
    if baseline is not None:
        cmd += ["--baseline", baseline]
    cmd += args
    proc = subprocess.run(cmd, capture_output=True, text=True)
    try:
        data = json.loads(proc.stdout) if proc.stdout else {}
    except ValueError:
        data = {}
    return proc.returncode, data, proc.stderr


def empty_baseline(tmp):
    path = os.path.join(tmp, "empty_baseline.json")
    with open(path, "w") as f:
        json.dump({"findings": []}, f)
    return path


def fixture(name):
    return os.path.join("tests", "lint", "fixtures", name)


def main():
    tmp = tempfile.mkdtemp(prefix="hfr_lint_test_")
    try:
        bl = empty_baseline(tmp)

        # --- bad fixtures: exact finding counts, single rule each ---------
        bad_cases = [
            ("r1_bad.cc", "R1", 6),
            ("r2_bad.cc", "R2", 5),
            ("r3_bad.cc", "R3", 2),
            ("r4_bad.cc", "R4", 4),
            ("r5_bad.cmake", "R5", 5),
        ]
        for name, rule, expected in bad_cases:
            rc, data, err = run_lint([fixture(name)], baseline=bl)
            findings = data.get("findings", [])
            rules = sorted({f["rule"] for f in findings})
            check(rc == 1, "{}: exit 1".format(name),
                  "exit={} stderr={}".format(rc, err))
            check(len(findings) == expected,
                  "{}: {} findings".format(name, expected),
                  "got {}: {}".format(len(findings),
                                      json.dumps(findings, indent=1)))
            check(rules == [rule], "{}: all findings are {}".format(name, rule),
                  "rules={}".format(rules))

        # --- good fixtures: clean ----------------------------------------
        good = ["r1_good.cc", "r1_suppressed.cc", "r2_good.cc", "r3_good.cc",
                "r4_good.cc", "r5_good.cmake"]
        for name in good:
            rc, data, err = run_lint([fixture(name)], baseline=bl)
            findings = data.get("findings", [])
            check(rc == 0 and not findings, "{}: clean".format(name),
                  "exit={} findings={}".format(
                      rc, json.dumps(findings, indent=1)))

        # --- malformed suppressions --------------------------------------
        rc, data, _ = run_lint([fixture("suppression_malformed.cc")],
                               baseline=bl)
        findings = data.get("findings", [])
        msgs = " | ".join(f["message"] for f in findings)
        check(rc == 1 and len(findings) == 3,
              "suppression_malformed.cc: 3 findings (2 malformed + 1 "
              "surviving R1)",
              "got {}: {}".format(len(findings), msgs))
        check(sum(1 for f in findings if "without a reason" in f["message"])
              == 2, "suppression_malformed.cc: reasonless suppressions "
              "reported", msgs)
        check(any(f["rule"] == "R1" and "quarantine" in f["message"]
                  for f in findings),
              "suppression_malformed.cc: underlying R1 finding survives",
              msgs)

        # --- R3 owned-declaration check is src/-scoped -------------------
        decl_src = os.path.join(tmp, "declroot", "src", "registry.cc")
        os.makedirs(os.path.dirname(decl_src))
        shutil.copy(os.path.join(FIXTURES, "r3_bad_decl.cc"), decl_src)
        rc, data, _ = run_lint(["src/registry.cc"],
                               root=os.path.join(tmp, "declroot"), baseline=bl)
        findings = data.get("findings", [])
        check(rc == 1 and len(findings) == 1 and findings[0]["rule"] == "R3",
              "r3_bad_decl.cc under src/: unannotated decl is a finding",
              json.dumps(findings, indent=1))
        rc, data, _ = run_lint([fixture("r3_bad_decl.cc")], baseline=bl)
        check(rc == 0 and not data.get("findings"),
              "r3_bad_decl.cc under tests/: decl check does not apply",
              json.dumps(data.get("findings", []), indent=1))

        # --- baseline semantics ------------------------------------------
        rc, data, _ = run_lint([fixture("r1_bad.cc")], baseline=bl)
        keys = ["{}:{}:{}".format(f["file"], f["rule"], f["snippet"])
                for f in data.get("findings", [])]
        legacy = os.path.join(tmp, "legacy_baseline.json")
        with open(legacy, "w") as f:
            json.dump({"findings": [{"key": k} for k in keys]}, f)
        rc, data, err = run_lint([fixture("r1_bad.cc")], baseline=legacy)
        check(rc == 0 and not data.get("findings")
              and len(data.get("baselined", [])) == 6,
              "baseline: baselined findings pass but stay reported",
              "exit={} findings={} baselined={} stderr={}".format(
                  rc, len(data.get("findings", [])),
                  len(data.get("baselined", [])), err))

        # --- the shipped baseline must be empty --------------------------
        with open(os.path.join(REPO_ROOT, "tools", "lint",
                               "baseline.json")) as f:
            shipped = json.load(f)
        check(shipped.get("findings") == [],
              "shipped tools/lint/baseline.json is empty")

        # --- rule catalogue ----------------------------------------------
        proc = subprocess.run([sys.executable, LINT, "--list-rules"],
                              capture_output=True, text=True)
        check(proc.returncode == 0
              and all(r in proc.stdout
                      for r in ["R1", "R2", "R3", "R4", "R5"]),
              "--list-rules names R1..R5", proc.stdout)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    if FAILURES:
        print("\n{} check(s) FAILED".format(len(FAILURES)))
        return 1
    print("\nall lint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
