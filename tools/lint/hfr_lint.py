#!/usr/bin/env python3
"""hfr_lint: determinism lint for the HeteFedRec reproduction.

Machine-checks the bit-identity contract documented in docs/DETERMINISM.md:
run results must be a pure function of the experiment seed — independent of
thread count, shard count, telemetry knobs, wall-clock time, and memory
layout. The rules encode the ways that contract has historically been easy
to break in C++:

  R1 wall-clock        no system_clock/steady_clock/time()/rdtsc outside the
                       quarantined allowlist (timer.h, profiler.h, logging.cc)
  R2 ambient-random    no rand()/srand()/std::random_device/std engines —
                       all randomness routes through the seeded hash-draw Rng
  R3 unordered-iter    walks over std::unordered_map/unordered_set are
                       order-undefined; every walk (and, in src/, every owned
                       declaration) must carry an iteration-order-safe
                       annotation stating the commutativity argument
  R4 schedule-identity no std::this_thread / std::thread::id / pointer-keyed
                       ordering — thread identity and addresses vary run-to-run
  R5 fast-math         no reassociation flags in any CMake target; AVX2 TUs
                       stay -mavx2 -mfma only

Suppressions (mandatory reason, checked non-empty):

  // hfr-lint: allow(R1): <reason>           same line or the line above
  // hfr-lint: iteration-order-safe(<reason>)  R3-specific annotation
  // hfr-lint-file: allow(R1): <reason>      whole file
  # hfr-lint: allow(R5): <reason>            CMake comment form

A checked-in baseline (tools/lint/baseline.json) can carry legacy findings;
this repo's baseline ships empty and must stay empty — fix or annotate at
the source instead.

Exit codes: 0 clean, 1 findings, 2 usage/config error.

Dependency-light by design: stdlib only, no compiler, runs in well under
10 s on this repo.
"""

import argparse
import json
import os
import re
import sys

LINT_VERSION = "1.0"

# Paths scanned by default, relative to the repo root.
DEFAULT_SCAN_DIRS = ("src", "tools", "bench", "tests")
CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# Deliberately-violating lint fixtures must not count as repo findings.
EXCLUDED_PATH_PARTS = ("tests/lint/fixtures",)

# R1: the wall-clock quarantine. These files may read real time because
# their output is either never results-affecting (log prefixes, --profile
# dumps) or is the sanctioned stopwatch benches report through.
WALL_CLOCK_ALLOWLIST = (
    "src/util/timer.h",
    "src/util/telemetry/profiler.h",
    "src/util/logging.cc",
)


class Rule:
    def __init__(self, rule_id, name, summary):
        self.rule_id = rule_id
        self.name = name
        self.summary = summary


RULES = {
    "R1": Rule(
        "R1",
        "wall-clock",
        "Wall-clock reads (system_clock/steady_clock/time()/rdtsc/...) are "
        "forbidden outside the quarantine allowlist: "
        + ", ".join(WALL_CLOCK_ALLOWLIST)
        + ". Measure time through util/Timer or HFR_PROFILE.",
    ),
    "R2": Rule(
        "R2",
        "ambient-randomness",
        "rand()/srand()/std::random_device/std::mt19937-family engines are "
        "forbidden: all randomness must route through the explicitly seeded "
        "Rng (src/util/rng.h) or its hash-draw streams.",
    ),
    "R3": Rule(
        "R3",
        "unordered-iteration",
        "Iterating a std::unordered_map/unordered_set visits elements in an "
        "unspecified, libc++/libstdc++- and size-dependent order. Every walk "
        "must be annotated `// hfr-lint: iteration-order-safe(<reason>)` "
        "with the commutativity argument; in src/, every owned declaration "
        "must carry the same annotation documenting its access discipline.",
    ),
    "R4": Rule(
        "R4",
        "schedule-identity",
        "std::this_thread, std::thread::id, and pointer-keyed ordering "
        "(map<T*,...>, set<T*>) leak scheduling / address-space identity "
        "into results. Key by stable ids (user, item, slot) instead.",
    ),
    "R5": Rule(
        "R5",
        "fast-math",
        "Reassociating math flags (-ffast-math, -funsafe-math-optimizations, "
        "-fassociative-math, -freciprocal-math, -Ofast, -ffp-contract=fast) "
        "break bitwise reproducibility; AVX2 TUs carry -mavx2/-mfma only.",
    ),
}


class Finding:
    def __init__(self, path, line, rule_id, message, snippet):
        self.path = path
        self.line = line
        self.rule_id = rule_id
        self.message = message
        self.snippet = snippet.strip()

    def key(self):
        # Baseline key is line-number-free so entries survive unrelated
        # edits; the snippet pins the construct itself.
        return "{}:{}:{}".format(self.path, self.rule_id, self.snippet)

    def to_json(self):
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "rule_name": RULES[self.rule_id].name,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self):
        return "{}:{}: [{}:{}] {}\n    {}".format(
            self.path, self.line, self.rule_id, RULES[self.rule_id].name,
            self.message, self.snippet)


# --- suppression parsing -----------------------------------------------------

SUPPRESS_RE = re.compile(
    r"hfr-lint:\s*allow\((R[1-5])\)\s*:\s*(.*?)\s*(?:\*/)?\s*$")
FILE_SUPPRESS_RE = re.compile(
    r"hfr-lint-file:\s*allow\((R[1-5])\)\s*:\s*(.*?)\s*(?:\*/)?\s*$")
ORDER_SAFE_RE = re.compile(
    r"hfr-lint:\s*iteration-order-safe\(([^)]*)\)")
# Any hfr-lint marker at all, for malformed-marker detection.
MARKER_RE = re.compile(r"hfr-lint")


class Suppressions:
    """Per-file suppression state parsed from raw (uncleaned) lines."""

    def __init__(self, path, raw_lines):
        self.file_level = {}  # rule_id -> reason
        self.line_level = {}  # line_no -> {rule_id: reason}
        self.malformed = []   # Finding list (empty reasons, bad syntax)
        comment_re = re.compile(r"(//|#)(.*)$")
        for i, raw in enumerate(raw_lines, start=1):
            if "hfr-lint" not in raw:
                continue
            m = comment_re.search(raw)
            comment = m.group(2) if m else raw
            fm = FILE_SUPPRESS_RE.search(comment)
            lm = SUPPRESS_RE.search(comment)
            om = ORDER_SAFE_RE.search(comment)
            if fm:
                rule_id, reason = fm.group(1), fm.group(2)
                if not reason:
                    self.malformed.append(Finding(
                        path, i, rule_id,
                        "file-level suppression without a reason", raw))
                else:
                    self.file_level[rule_id] = reason
            elif lm:
                rule_id, reason = lm.group(1), lm.group(2)
                if not reason:
                    self.malformed.append(Finding(
                        path, i, rule_id,
                        "suppression without a reason", raw))
                else:
                    self._add(i, raw, rule_id, reason)
            elif om:
                reason = om.group(1).strip()
                if not reason:
                    self.malformed.append(Finding(
                        path, i, "R3",
                        "iteration-order-safe annotation without a reason",
                        raw))
                else:
                    self._add(i, raw, "R3", reason)
            elif MARKER_RE.search(comment):
                self.malformed.append(Finding(
                    path, i, "R3",
                    "unrecognized hfr-lint marker (syntax: "
                    "`hfr-lint: allow(Rn): reason` or "
                    "`hfr-lint: iteration-order-safe(reason)`)", raw))

    def _add(self, line_no, raw, rule_id, reason):
        # A suppression on its own comment line covers the next line; a
        # trailing suppression covers its own line. Register both — the
        # covered construct is on exactly one of them.
        before = raw.split("//")[0].split("#")[0]
        targets = [line_no] if before.strip() else [line_no, line_no + 1]
        for t in targets:
            self.line_level.setdefault(t, {})[rule_id] = reason

    def covers(self, line_no, rule_id):
        if rule_id in self.file_level:
            return True
        return rule_id in self.line_level.get(line_no, {})


# --- source cleaning ---------------------------------------------------------

def clean_cxx(lines):
    """Blanks out comments and string/char literals, preserving line
    structure, so rule regexes never match prose or log messages."""
    out = []
    in_block = False
    for line in lines:
        res = []
        i, n = 0, len(line)
        while i < n:
            ch = line[i]
            if in_block:
                if ch == "*" and i + 1 < n and line[i + 1] == "/":
                    in_block = False
                    i += 2
                else:
                    i += 1
                continue
            if ch == "/" and i + 1 < n and line[i + 1] == "/":
                break  # rest of line is a comment
            if ch == "/" and i + 1 < n and line[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if ch == '"' or ch == "'":
                quote = ch
                res.append(quote)
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        break
                    i += 1
                res.append(quote)
                i += 1
                continue
            res.append(ch)
            i += 1
        out.append("".join(res))
    return out


def clean_cmake(lines):
    return [line.split("#")[0] for line in lines]


# --- C++ rules ---------------------------------------------------------------

R1_PATTERNS = [
    (re.compile(r"\b(system_clock|steady_clock|high_resolution_clock)\b"),
     "chrono wall-clock read"),
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(?:NULL|nullptr|0|&\w+)?\s*\)"),
     "C time() read"),
    (re.compile(r"(?<![\w.:>])clock\s*\(\s*\)"), "C clock() read"),
    (re.compile(r"\b(clock_gettime|gettimeofday|ftime)\b"),
     "POSIX wall-clock read"),
    (re.compile(r"\b(__rdtsc|_rdtsc|rdtscp?)\b"), "TSC read"),
    (re.compile(r"\b(localtime|gmtime|mktime)\s*\("),
     "calendar-time conversion"),
]

R2_PATTERNS = [
    (re.compile(r"(?<![\w.:])s?rand\s*\("), "C rand()/srand()"),
    (re.compile(r"\b(rand_r|drand48|lrand48|mrand48|random_r)\b"),
     "C randomness"),
    (re.compile(r"\brandom_device\b"), "std::random_device (nondeterministic)"),
    (re.compile(r"\b(mt19937(_64)?|minstd_rand0?|default_random_engine|"
                r"ranlux\d+(_48)?|knuth_b)\b"),
     "std <random> engine (use the seeded Rng instead)"),
]

R4_PATTERNS = [
    (re.compile(r"\bthis_thread\b"), "std::this_thread"),
    (re.compile(r"\bthread::id\b"), "std::thread::id"),
    (re.compile(r"\.get_id\s*\("), "thread get_id()"),
    # Keyed by a raw pointer: map's key is the first template argument
    # (ends at ','), set's the only one (ends at ',' or '>').
    (re.compile(r"\b(?:multi)?map<\s*[^,<>]*\*\s*,"),
     "pointer-keyed map (address order varies run-to-run)"),
    (re.compile(r"\b(?:multi)?set<\s*[^,<>]*\*\s*[,>]"),
     "pointer-keyed set (address order varies run-to-run)"),
]

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
# An owned declaration: `std::unordered_map<...> name` where the token
# before the name is the closing `>` of the template (not `&`/`*`).
UNORDERED_OWNED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>\s+(\w+)\s*"
    r"(?:[;={(]|$)")


def find_unordered_names(clean_lines):
    """Names declared in this file as owned unordered containers, including
    elements of vectors-of-unordered (`vector<unordered_set<T>> name`)."""
    names = {}
    vec_re = re.compile(
        r"<\s*(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<[^;{}()]*>"
        r"\s*>\s+(\w+)\s*[;={(]")
    for i, line in enumerate(clean_lines, start=1):
        if "unordered_" not in line:
            continue
        for m in UNORDERED_OWNED_DECL_RE.finditer(line):
            prefix = line[: m.start()]
            if prefix.rstrip().endswith(("&", "*")):
                continue
            names[m.group(1)] = i
        for m in vec_re.finditer(line):
            names[m.group(1)] = i
    return names


def scan_cxx_file(relpath, raw_lines, in_src):
    clean = clean_cxx(raw_lines)
    sup = Suppressions(relpath, raw_lines)
    findings = list(sup.malformed)

    def emit(line_no, rule_id, message):
        if not sup.covers(line_no, rule_id):
            findings.append(Finding(relpath, line_no, rule_id, message,
                                    raw_lines[line_no - 1]))

    allow_wall_clock = relpath in WALL_CLOCK_ALLOWLIST

    unordered = find_unordered_names(clean)
    # Pre-build the per-name walk patterns once per file.
    walk_res = []
    for name in unordered:
        walk_res.append((name, re.compile(
            r"for\s*\([^;()]*:\s*(?:\*?\s*)?" + re.escape(name) + r"\s*\)")))
        walk_res.append((name, re.compile(
            r"\b" + re.escape(name) + r"\s*\.\s*c?r?begin\s*\(")))

    for i, line in enumerate(clean, start=1):
        if not line.strip():
            continue
        if not allow_wall_clock:
            for pat, what in R1_PATTERNS:
                if pat.search(line):
                    emit(i, "R1", what + " outside the wall-clock quarantine")
                    break
        for pat, what in R2_PATTERNS:
            if pat.search(line):
                emit(i, "R2", what)
                break
        for pat, what in R4_PATTERNS:
            if pat.search(line):
                emit(i, "R4", what)
                break
        if "unordered_" in line and in_src:
            for m in UNORDERED_OWNED_DECL_RE.finditer(line):
                prefix = line[: m.start()]
                if prefix.rstrip().endswith(("&", "*")):
                    continue
                emit(i, "R3",
                     "owned unordered container `{}` declared in "
                     "results-affecting code without an "
                     "iteration-order-safe annotation".format(m.group(1)))
        for name, pat in walk_res:
            if name in line and pat.search(line):
                emit(i, "R3",
                     "iteration over unordered container `{}` (order is "
                     "unspecified)".format(name))
    return findings


# --- CMake rules (R5) --------------------------------------------------------

FAST_MATH_RE = re.compile(
    r"-ffast-math|-funsafe-math-optimizations|-fassociative-math|"
    r"-freciprocal-math|-Ofast|-ffp-contract=fast|/fp:fast")
ISA_FLAG_RE = re.compile(r"-m[a-z0-9=\-]+")
ALLOWED_ISA_FLAGS = {"-mavx2", "-mfma"}


def scan_cmake_file(relpath, raw_lines):
    clean = clean_cmake(raw_lines)
    sup = Suppressions(relpath, raw_lines)
    findings = list(sup.malformed)

    def emit(line_no, message):
        if not sup.covers(line_no, "R5"):
            findings.append(Finding(relpath, line_no, "R5", message,
                                    raw_lines[line_no - 1]))

    for i, line in enumerate(clean, start=1):
        if FAST_MATH_RE.search(line):
            emit(i, "reassociating math flag breaks bit-identity")
        if "-mavx2" in line or "-mfma" in line:
            bad = [f for f in ISA_FLAG_RE.findall(line)
                   if f not in ALLOWED_ISA_FLAGS]
            if bad:
                emit(i, "AVX2 TU carries extra ISA/math flags {} — "
                        "only -mavx2 -mfma are sanctioned".format(bad))
    return findings


# --- driver ------------------------------------------------------------------

def iter_files(root, scan_dirs):
    for d in scan_dirs:
        top = os.path.join(root, d)
        if not os.path.isdir(top):
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for fn in sorted(filenames):
                full = os.path.join(dirpath, fn)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                if any(part in rel for part in EXCLUDED_PATH_PARTS):
                    continue
                yield rel, full
    # Top-level CMakeLists.txt sits outside the scan dirs.
    top_cmake = os.path.join(root, "CMakeLists.txt")
    if os.path.isfile(top_cmake):
        yield "CMakeLists.txt", top_cmake


def scan_path(rel, full):
    try:
        with open(full, "r", encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [Finding(rel, 0, "R1", "unreadable file: {}".format(e), "")]
    if rel.endswith(CXX_EXTENSIONS):
        return scan_cxx_file(rel, raw_lines, rel.startswith("src/"))
    if rel.endswith((".cmake",)) or os.path.basename(rel) == "CMakeLists.txt":
        return scan_cmake_file(rel, raw_lines)
    return []


def load_baseline(path):
    if not os.path.isfile(path):
        return set()
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, ValueError) as e:
        print("hfr_lint: cannot read baseline {}: {}".format(path, e),
              file=sys.stderr)
        sys.exit(2)
    return {entry["key"] for entry in data.get("findings", [])}


def main(argv):
    ap = argparse.ArgumentParser(
        prog="hfr_lint", description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON (default: <root>/tools/lint/"
                         "baseline.json)")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable JSON on stdout")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalogue and exit")
    ap.add_argument("paths", nargs="*",
                    help="files or directories to scan (default: {})".format(
                        " ".join(DEFAULT_SCAN_DIRS)))
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print("{} {}\n    {}".format(rule.rule_id, rule.name,
                                         rule.summary))
        return 0

    root = args.root or os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
    if not os.path.isdir(root):
        print("hfr_lint: no such root: {}".format(root), file=sys.stderr)
        return 2

    if args.paths:
        files = []
        for p in args.paths:
            full = p if os.path.isabs(p) else os.path.join(root, p)
            if os.path.isdir(full):
                rel_dir = os.path.relpath(full, root).replace(os.sep, "/")
                files.extend(iter_files(root, [rel_dir]))
            elif os.path.isfile(full):
                files.append(
                    (os.path.relpath(full, root).replace(os.sep, "/"), full))
            else:
                print("hfr_lint: no such path: {}".format(p), file=sys.stderr)
                return 2
        # De-dup while keeping order (top-level CMakeLists may repeat).
        seen, uniq = set(), []
        for rel, full in files:
            if rel not in seen:
                seen.add(rel)
                uniq.append((rel, full))
        files = uniq
    else:
        files = list(iter_files(root, DEFAULT_SCAN_DIRS))

    baseline_path = args.baseline or os.path.join(
        root, "tools", "lint", "baseline.json")
    baseline = load_baseline(baseline_path)

    findings = []
    baselined = []
    for rel, full in files:
        for f in scan_path(rel, full):
            if f.key() in baseline:
                baselined.append(f)
            else:
                findings.append(f)

    if args.json:
        print(json.dumps({
            "version": LINT_VERSION,
            "root": root,
            "files_scanned": len(files),
            "findings": [f.to_json() for f in findings],
            "baselined": [f.to_json() for f in baselined],
        }, indent=2))
    else:
        for f in findings:
            print(f.render())
        print("hfr_lint: {} file(s), {} finding(s), {} baselined".format(
            len(files), len(findings), len(baselined)))
    return 1 if findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv[1:]))
    except BrokenPipeError:
        # stdout piped into head/grep and closed early; not an error.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
