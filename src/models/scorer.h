// Slice-aware scoring for the two base recommenders (NCF, LightGCN).
//
// A `Scorer` evaluates r̂ = FFN([pu, pv]) at a chosen embedding width `w`,
// reading only the first `w` columns of the item embedding table and the
// first `w` entries of the user embedding. This "sliced view" is the
// mechanism behind unified dual-task learning (Eq. 11): a client holding a
// width-Nl model trains the same parameters at widths Ns, Nm and Nl by
// instantiating three scorers over shared storage.
//
//   NCF (He et al. 2017):      pu = u,            pv = v_j
//   LightGCN (He et al. 2020): one propagation layer over the client's
//   *local* bipartite graph (privacy: the user sees only its own edges), so
//   every interacted item has degree 1 and
//       pu = (u + Σ_{i∈N(u)} v_i / √d_u) / 2,
//       pv = (v_j + 1{j∈N(u)} · u / √d_u) / 2,
//   i.e. the mean of the layer-0 and layer-1 embeddings.
//
// Backward accumulates into caller-owned gradient buffers. LightGCN's
// gradient into Σ v_i is identical for every interacted item, so it is
// accumulated once per user and scattered by `FinishUserBackward`.
//
// Scoring is batched: `ScoreBatch`/`ScoreRange` push an item-id span
// through the FFN in width-blocked batches (evaluation and local
// validation; RESKD is batched separately via the GramMatrix kernel), and
// `ScoreForTrainBatch` + `BackwardBatch` run a user's whole per-epoch
// sample set as one forward/backward block. On the double backend every
// batched entry point is bit-identical per item/sample to its scalar
// counterpart (`Score`, `ScoreForTrain` + `BackwardSample`), which remain
// as the reference path — see src/math/kernels.h for the
// accumulation-order argument and tests/models/scorer_batch_test.cc for
// the pins.
//
// The class is templated on the working scalar S (double = reference,
// float = fp32 compute backend, src/math/backend.h), and the table and
// gradient parameters are member templates so the same code runs over a
// dense `MatrixT<S>` (evaluation, reference path) or over the sparse
// containers of src/math/sparse.h (`RowOverlayTableT<S>` reads /
// `SparseRowStoreT<S>` gradient writes) without a virtual call per row.
// Explicit instantiations for all combinations live in scorer.cc.
#ifndef HETEFEDREC_MODELS_SCORER_H_
#define HETEFEDREC_MODELS_SCORER_H_

#include <string>
#include <vector>

#include "src/data/types.h"
#include "src/math/matrix.h"
#include "src/models/ffn.h"
#include "src/util/status.h"

namespace hetefedrec {

/// Which base recommendation algorithm F to use (§III-B).
enum class BaseModel { kNcf, kLightGcn };

/// Parses "ncf" / "lightgcn".
StatusOr<BaseModel> BaseModelByName(const std::string& name);

/// Human-readable name ("Fed-NCF" / "Fed-LightGCN").
std::string BaseModelName(BaseModel model);

/// \brief Width-w scoring view over shared parameters (scalar S).
///
/// Usage per user and pass:
///   scorer.BeginUser(user_emb, V, interacted);
///   evaluation: ScoreBatch / ScoreRange (or per-item Score);
///   training:   ScoreForTrainBatch + BackwardBatch (or the per-sample
///               ScoreForTrain + BackwardSample pair), then
///   scorer.FinishUserBackward(...);   // training passes only
template <typename S>
class ScorerT {
 public:
  using Scalar = S;

  /// Items per FFN block in ScoreBatch/ScoreRange: bounds the assembled
  /// item-half block to kScoreBlock x w scalars of scorer-owned scratch
  /// (the user half is shared as a layer-0 prefix, never materialized).
  static constexpr size_t kScoreBlock = 128;

  /// \param model base algorithm.
  /// \param width embedding slice width w (first w dims are used).
  ScorerT(BaseModel model, size_t width);

  size_t width() const { return width_; }
  BaseModel model() const { return model_; }

  /// Prepares per-user state: copies the user slice and, for LightGCN, runs
  /// the local propagation over `interacted` (the user's training items).
  /// `V` must have at least `width` columns. `TableT` is `MatrixT<S>` or
  /// `RowOverlayTableT<S>`. Also fills the user half of the FFN input
  /// scratch once, so per-item scoring rewrites only the item half.
  template <typename TableT>
  void BeginUser(const S* user_emb, const TableT& item_table,
                 const std::vector<ItemId>& interacted);

  /// Per-sample context for BackwardSample.
  struct TrainCache {
    typename FeedForwardNetT<S>::Cache ffn;
    ItemId item = 0;
    bool item_is_interacted = false;
  };

  /// Batch-of-samples context for BackwardBatch.
  struct BatchTrainCache {
    typename FeedForwardNetT<S>::BatchCache ffn;
    std::vector<ItemId> items;
    std::vector<uint8_t> item_is_interacted;
  };

  /// Scores item `j` (logit). Requires a prior BeginUser.
  template <typename TableT>
  S Score(const TableT& item_table, const FeedForwardNetT<S>& theta,
          ItemId j) const;

  /// Scores the `n` items `ids[0..n)` into out[0..n), batching the FFN
  /// forwards in blocks of kScoreBlock. On the double backend
  /// bit-identical per item to Score().
  template <typename TableT>
  void ScoreBatch(const TableT& item_table, const FeedForwardNetT<S>& theta,
                  const ItemId* ids, size_t n, S* out) const;

  /// ScoreBatch over the contiguous item-id span [first, first + n) —
  /// the full-catalogue evaluation shape.
  template <typename TableT>
  void ScoreRange(const TableT& item_table, const FeedForwardNetT<S>& theta,
                  ItemId first, size_t n, S* out) const;

  /// Scores item `j` and fills `cache` for BackwardSample.
  template <typename TableT>
  S ScoreForTrain(const TableT& item_table, const FeedForwardNetT<S>& theta,
                  ItemId j, TrainCache* cache);

  /// Scores the `n` sample items `items[0..n)` in one FFN forward block,
  /// filling `cache` for BackwardBatch and one logit per sample into
  /// `logits`. On the double backend bit-identical per sample to
  /// ScoreForTrain().
  template <typename TableT>
  void ScoreForTrainBatch(const TableT& item_table,
                          const FeedForwardNetT<S>& theta, const ItemId* items,
                          size_t n, BatchTrainCache* cache, S* logits);

  /// Accumulates gradients for one sample given dL/dlogit.
  /// \param d_item_table |V| x width gradient sink (`MatrixT<S>` or
  ///   `SparseRowStoreT<S>`; may be wider — leading cols used).
  /// \param d_user length >= width; first `width` entries accumulated.
  /// \param d_theta same-shape gradient accumulator for `theta`.
  template <typename GradT>
  void BackwardSample(const FeedForwardNetT<S>& theta, const TrainCache& cache,
                      S dlogit, GradT* d_item_table, S* d_user,
                      FeedForwardNetT<S>* d_theta);

  /// Batched BackwardSample over a ScoreForTrainBatch cache: one FFN
  /// BackwardBatch, then the embedding scatters in ascending sample order —
  /// on the double backend bit-identical to per-sample BackwardSample
  /// calls in the same order.
  template <typename GradT>
  void BackwardBatch(const FeedForwardNetT<S>& theta,
                     const BatchTrainCache& cache, const S* dlogits,
                     GradT* d_item_table, S* d_user,
                     FeedForwardNetT<S>* d_theta);

  /// Flushes LightGCN's deferred propagation gradient into the interacted
  /// items' rows and the user embedding. No-op for NCF. Must be called once
  /// after the last BackwardSample of a pass.
  template <typename GradT>
  void FinishUserBackward(GradT* d_item_table, S* d_user);

 private:
  /// Writes the item half [pu | *here*] of one assembled FFN input row.
  template <typename TableT>
  void FillItemHalf(const TableT& item_table, ItemId j, S* dst) const;

  /// Fills prefix_ with the current user's shared layer-0 partial sums.
  void PreparePrefix(const FeedForwardNetT<S>& theta) const;

  /// Shared blocked-scoring loop behind ScoreBatch/ScoreRange: assembles
  /// item halves for items id_of(0..n) in kScoreBlock chunks and runs
  /// ForwardBatchFromPrefix on each. Requires a prior PreparePrefix.
  template <typename TableT, typename IdFn>
  void ScoreBlocks(const TableT& item_table, const FeedForwardNetT<S>& theta,
                   size_t n, IdFn id_of, S* out) const;

  BaseModel model_;
  size_t width_;

  // Per-user state set by BeginUser.
  AlignedVector<S> pu_;                // propagated user embedding
  AlignedVector<S> raw_user_;          // first `width` entries of u
  const std::vector<ItemId>* interacted_ = nullptr;
  std::vector<bool> is_interacted_;    // indexed by item id
  S inv_sqrt_deg_ = S(0);

  // Deferred LightGCN gradient: sum over samples of dL/d(pu).
  AlignedVector<S> dpu_accum_;
  bool pending_backward_ = false;

  // Scratch buffers. x_'s user half is filled once per BeginUser. Batched
  // evaluation shares the user half across the whole batch as a layer-0
  // prefix (ForwardPrefix), so batch_x_ holds item halves only.
  mutable AlignedVector<S> x_;   // FFN input [pu, pv]
  AlignedVector<S> dx_;          // FFN input gradient
  mutable typename FeedForwardNetT<S>::Cache eval_cache_;
  mutable AlignedVector<S> prefix_;    // per-user layer-0 partial sums
  mutable AlignedVector<S> batch_x_;   // kScoreBlock x w item halves
  AlignedVector<S> train_x_;     // n x 2w training block
  AlignedVector<S> batch_dx_;    // n x 2w training input gradients
};

using Scorer = ScorerT<double>;
using ScorerF = ScorerT<float>;

}  // namespace hetefedrec

#endif  // HETEFEDREC_MODELS_SCORER_H_
