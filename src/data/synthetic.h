// Synthetic dataset generators calibrated to the paper's three benchmarks.
//
// The real MovieLens-1M / Anime / Douban datasets are not redistributable
// with this repository, so experiments run on synthetic data generated from
// a latent-factor model whose *published statistics* match Table I of the
// paper: user/item counts, total interactions, and the per-user interaction
// count distribution (average, median, 80th percentile — the values the
// paper uses to divide clients into Us/Um/Ul).
//
// Generative process:
//   1. Items belong to `num_clusters` genres; each item gets a latent vector
//      (cluster center + noise) and a Zipf popularity weight.
//   2. Each user draws a latent vector near 1–2 genre centers and an
//      interaction count from a log-normal fitted to the dataset's
//      median / 80th percentile.
//   3. The user's interactions sample items without replacement with
//      probability ∝ popularity × exp(affinity / temperature).
// This yields learnable collaborative structure plus the heavy-tailed
// data-size skew that motivates model heterogeneity (Fig. 1).
#ifndef HETEFEDREC_DATA_SYNTHETIC_H_
#define HETEFEDREC_DATA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "src/data/types.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace hetefedrec {

/// \brief Parameters of the synthetic generative model.
struct SyntheticConfig {
  std::string name = "synthetic";
  size_t num_users = 1000;
  size_t num_items = 1000;

  /// Log-normal parameters of the per-user interaction count.
  double lognormal_mu = 4.3;     // exp(mu) = median count
  double lognormal_sigma = 1.0;  // spread
  size_t min_interactions = 6;   // floor so the 80/20 split leaves test items
  double max_fraction_of_items = 0.5;  // cap count at this catalogue share

  /// Zipf exponent for item popularity (weight ∝ 1/rank^s). Kept mild:
  /// strong popularity skew would let a non-personalized popularity
  /// ranking dominate every learned model, flattening the method
  /// differences the paper's evaluation measures.
  double zipf_exponent = 0.3;

  /// Latent structure.
  size_t latent_dim = 12;
  size_t num_clusters = 10;
  double item_noise = 0.4;       // item scatter around its cluster center
  double user_noise = 0.3;       // user scatter around its genre mix
  double temperature = 0.6;      // lower = stronger preference alignment

  uint64_t seed = 42;
};

/// Paper-calibrated presets. `scale` in (0, 1] shrinks users/items jointly
/// (scale = 1 reproduces Table I sizes; benches default to smaller scales so
/// the whole suite runs on one CPU core).
SyntheticConfig MovieLensConfig(double scale = 1.0);
SyntheticConfig AnimeConfig(double scale = 1.0);
SyntheticConfig DoubanConfig(double scale = 1.0);

/// Returns the config for a dataset name in {ml, anime, douban}.
StatusOr<SyntheticConfig> DatasetConfigByName(const std::string& name,
                                              double scale);

/// Generates the interaction log for `config`.
std::vector<Interaction> GenerateInteractions(const SyntheticConfig& config);

}  // namespace hetefedrec

#endif  // HETEFEDREC_DATA_SYNTHETIC_H_
