#include "src/fed/comm.h"

namespace hetefedrec {

void CommStats::RecordDownload(Group g, size_t params) {
  auto& pg = groups_[static_cast<int>(g)];
  pg.downloads++;
  pg.down_params += params;
}

void CommStats::RecordUpload(Group g, size_t params) {
  auto& pg = groups_[static_cast<int>(g)];
  pg.uploads++;
  pg.up_params += params;
}

void CommStats::RecordDropped(Group g) {
  groups_[static_cast<int>(g)].dropped++;
}

size_t CommStats::Dropped(Group g) const {
  return groups_[static_cast<int>(g)].dropped;
}

size_t CommStats::TotalDropped() const {
  size_t total = 0;
  for (const auto& pg : groups_) total += pg.dropped;
  return total;
}

size_t CommStats::Participations(Group g) const {
  return groups_[static_cast<int>(g)].uploads;
}

size_t CommStats::Downloads(Group g) const {
  return groups_[static_cast<int>(g)].downloads;
}

double CommStats::AvgUpload(Group g) const {
  const auto& pg = groups_[static_cast<int>(g)];
  if (pg.uploads == 0) return 0.0;
  return static_cast<double>(pg.up_params) / static_cast<double>(pg.uploads);
}

double CommStats::AvgDownload(Group g) const {
  const auto& pg = groups_[static_cast<int>(g)];
  if (pg.downloads == 0) return 0.0;
  return static_cast<double>(pg.down_params) /
         static_cast<double>(pg.downloads);
}

size_t CommStats::DownParams(Group g) const {
  return groups_[static_cast<int>(g)].down_params;
}

size_t CommStats::UpParams(Group g) const {
  return groups_[static_cast<int>(g)].up_params;
}

size_t CommStats::TotalTransmitted() const {
  size_t total = 0;
  for (const auto& pg : groups_) total += pg.up_params + pg.down_params;
  return total;
}

double CommStats::AvgUploadBytes(Group g) const {
  return AvgUpload(g) * static_cast<double>(wire_scalar_bytes_);
}

double CommStats::AvgDownloadBytes(Group g) const {
  return AvgDownload(g) * static_cast<double>(wire_scalar_bytes_);
}

size_t CommStats::TotalBytes() const {
  return TotalTransmitted() * wire_scalar_bytes_;
}

void CommStats::Reset() {
  // The wire format is configuration, not accumulated state.
  groups_ = {};
}

}  // namespace hetefedrec
