// RAII wall-clock phase profiling with hierarchical, per-thread scopes.
//
// Usage: drop `HFR_PROFILE("phase")` at the top of a hot function. Scopes
// nest: a scope opened inside another becomes its child, so the collected
// table shows e.g. round/train/forward with self-time = total - children.
//
// Cost model (docs/OBSERVABILITY.md "Overhead"):
//  - Disabled (the default): one relaxed atomic load and a branch per scope.
//    BM_TelemetryOverhead pins this at well under 1% of a federated round.
//  - Enabled: a thread-local tree walk plus two steady_clock reads per scope.
//
// Each thread accumulates into its own tree (no synchronization on the hot
// path); Collect() merges the trees by path. Wall-clock durations are
// inherently nondeterministic, so profile output is kept OUT of the
// byte-equality-tested metrics/trace streams: it goes to stderr and to
// clearly-marked "profile" JSONL rows only when --profile is set.
//
// Trees are owned by the process-wide Profiler and survive thread exit;
// Reset() zeroes counters in place (never frees nodes) so stale thread_local
// pointers in long-lived threads remain valid. Enable/Reset/Collect must be
// called while no profiled scope is live (e.g. with the worker pool idle).
#ifndef HETEFEDREC_UTIL_TELEMETRY_PROFILER_H_
#define HETEFEDREC_UTIL_TELEMETRY_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace hetefedrec {

namespace internal {
struct ProfNode;
/// Descends the calling thread's tree into the child named `name` (creating
/// it on first use) and returns the node to charge on exit.
ProfNode* ProfEnter(const char* name);
/// Charges `seconds` to `node` and pops back to its parent.
void ProfExit(ProfNode* node, double seconds);
}  // namespace internal

class Profiler {
 public:
  static Profiler& Get();

  void Enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  static bool IsEnabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes all accumulated counters (keeps node storage alive; see file
  /// comment). Call with no profiled scopes live.
  void Reset();

  struct PhaseStat {
    std::string path;      // "round/train/forward"
    int depth = 0;         // nesting depth (0 = top level)
    uint64_t calls = 0;
    double total_seconds = 0.0;
    double self_seconds = 0.0;  // total minus time inside child scopes
  };

  /// Merges every thread's tree by path; preorder, siblings sorted by total
  /// time descending. Call with no profiled scopes live.
  std::vector<PhaseStat> Collect() const;

  /// Renders Collect() as an indented fixed-width table.
  static std::string Render(const std::vector<PhaseStat>& stats);

 private:
  friend internal::ProfNode* internal::ProfEnter(const char* name);
  Profiler() = default;

  inline static std::atomic<bool> enabled_{false};
};

/// RAII scope; all cost gated on the enabled flag at construction.
class ProfileScope {
 public:
  explicit ProfileScope(const char* name) {
    if (!Profiler::IsEnabled()) {
      node_ = nullptr;
      return;
    }
    node_ = internal::ProfEnter(name);
    start_ = std::chrono::steady_clock::now();
  }

  ~ProfileScope() {
    if (!node_) return;
    const std::chrono::duration<double> d =
        std::chrono::steady_clock::now() - start_;
    internal::ProfExit(node_, d.count());
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  internal::ProfNode* node_;
  std::chrono::steady_clock::time_point start_;
};

#define HFR_PROFILE_CONCAT2(a, b) a##b
#define HFR_PROFILE_CONCAT(a, b) HFR_PROFILE_CONCAT2(a, b)
/// Profiles the enclosing scope under `name` (a string literal).
#define HFR_PROFILE(name)                                     \
  ::hetefedrec::ProfileScope HFR_PROFILE_CONCAT(hfr_profile_, \
                                                __LINE__)(name)

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_TELEMETRY_PROFILER_H_
