#include "src/eval/evaluator.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "src/eval/metrics.h"
#include "src/util/logging.h"
#include "src/util/telemetry/profiler.h"
#include "src/util/thread_pool.h"

namespace hetefedrec {

Evaluator::Evaluator(const Dataset& ds, const GroupAssignment& assignment,
                     size_t top_k, size_t user_sample, uint64_t seed,
                     size_t candidate_sample, bool use_batched_topk)
    : ds_(ds),
      assignment_(assignment),
      top_k_(top_k),
      candidate_sample_(candidate_sample),
      use_batched_topk_(use_batched_topk),
      candidate_root_(seed ^ 0xca9d1da7e5ULL) {
  users_.resize(ds.num_users());
  std::iota(users_.begin(), users_.end(), 0);
  if (user_sample > 0 && user_sample < users_.size()) {
    Rng rng(seed);
    rng.Shuffle(&users_);
    users_.resize(user_sample);
  }
  all_items_.resize(ds.num_items());
  std::iota(all_items_.begin(), all_items_.end(), 0);
}

std::vector<ItemId> Evaluator::CandidateItems(UserId u) const {
  const auto& test_items = ds_.TestItems(u);
  std::vector<ItemId> ids(test_items.begin(), test_items.end());
  const size_t interacted = ds_.InteractionCount(u);
  const size_t never_seen =
      ds_.num_items() > interacted ? ds_.num_items() - interacted : 0;
  if (candidate_sample_ >= never_seen) {
    // Degenerate catalogue: every never-interacted item is a candidate.
    for (ItemId j = 0; j < static_cast<ItemId>(ds_.num_items()); ++j) {
      if (!ds_.HasInteracted(u, j)) ids.push_back(j);
    }
  } else {
    // Rejection-sample distinct never-interacted items. Forking per user
    // makes the draw independent of evaluation order and thread count.
    Rng rng = candidate_root_.Fork(u);
    // hfr-lint: iteration-order-safe(dedup guard only - ids are appended in rng draw order and sorted below, the set is never walked)
    std::unordered_set<ItemId> chosen;
    chosen.reserve(candidate_sample_);
    while (chosen.size() < candidate_sample_) {
      ItemId j = static_cast<ItemId>(rng.UniformInt(ds_.num_items()));
      if (ds_.HasInteracted(u, j)) continue;
      if (chosen.insert(j).second) ids.push_back(j);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

template <typename PerUserFn>
GroupedEval Evaluator::Reduce(const PerUserFn& eval_user,
                              ThreadPool* pool) const {
  // Per-user metrics land in per-index slots; the reduction below walks
  // them in user order, so sums (and therefore results) are bit-identical
  // for any thread count.
  std::vector<double> recall(users_.size(), 0.0);
  std::vector<double> ndcg(users_.size(), 0.0);
  std::vector<uint8_t> counted(users_.size(), 0);

  auto run_one = [&](size_t k, size_t slot) {
    eval_user(k, slot, &recall[k], &ndcg[k], &counted[k]);
  };
  if (pool != nullptr && pool->num_workers() > 0) {
    pool->ParallelFor(users_.size(), run_one);
  } else {
    for (size_t k = 0; k < users_.size(); ++k) run_one(k, 0);
  }

  double sum_recall[1 + kNumGroups] = {0};
  double sum_ndcg[1 + kNumGroups] = {0};
  size_t counts[1 + kNumGroups] = {0};
  for (size_t k = 0; k < users_.size(); ++k) {
    if (!counted[k]) continue;
    int g = 1 + static_cast<int>(assignment_.of(users_[k]));
    sum_recall[0] += recall[k];
    sum_ndcg[0] += ndcg[k];
    counts[0]++;
    sum_recall[g] += recall[k];
    sum_ndcg[g] += ndcg[k];
    counts[g]++;
  }

  GroupedEval out;
  auto finalize = [&](int idx) {
    EvalResult r;
    r.users = counts[idx];
    if (counts[idx] > 0) {
      r.recall = sum_recall[idx] / static_cast<double>(counts[idx]);
      r.ndcg = sum_ndcg[idx] / static_cast<double>(counts[idx]);
    }
    return r;
  };
  out.overall = finalize(0);
  for (int g = 0; g < kNumGroups; ++g) out.per_group[g] = finalize(1 + g);
  return out;
}

void Evaluator::BeginUser(UserId u, SlotScratch* scratch) const {
  const auto& test_items = ds_.TestItems(u);
  scratch->relevant.clear();
  scratch->relevant.insert(test_items.begin(), test_items.end());
  if (!scratch->masked.empty()) {
    for (ItemId i : ds_.TrainItems(u)) scratch->masked[i] = true;
  }
}

void Evaluator::FinishUser(UserId u, SlotScratch* scratch, double* recall,
                           double* ndcg) const {
  *recall = RecallAtK(scratch->topk, scratch->relevant);
  *ndcg = NdcgAtK(scratch->topk, scratch->relevant, top_k_);
  if (!scratch->masked.empty()) {
    // Restore the all-false invariant by clearing only this user's train
    // bits — not an O(items) refill per user.
    for (ItemId i : ds_.TrainItems(u)) scratch->masked[i] = false;
  }
}

void Evaluator::SelectMasked(SlotScratch* scratch) const {
  if (use_batched_topk_) {
    scratch->selector.SelectMasked(scratch->scores, scratch->masked, top_k_,
                                   &scratch->topk);
  } else {
    scratch->selector.SelectMaskedReference(scratch->scores, scratch->masked,
                                            top_k_, &scratch->topk);
  }
}

GroupedEval Evaluator::Evaluate(const ScoreFn& score_fn) const {
  return Evaluate(
      [&score_fn](UserId u, size_t /*thread_slot*/,
                  std::vector<double>* scores) { score_fn(u, scores); },
      /*pool=*/nullptr);
}

GroupedEval Evaluator::Evaluate(const ThreadedScoreFn& score_fn,
                                ThreadPool* pool) const {
  const size_t n_slots = pool != nullptr ? pool->num_slots() : 1;
  std::vector<SlotScratch> scratch(n_slots);
  for (auto& s : scratch) s.masked.resize(ds_.num_items());

  auto eval_user = [&](size_t k, size_t slot, double* recall, double* ndcg,
                       uint8_t* counted) {
    const UserId u = users_[k];
    if (ds_.TestItems(u).empty()) return;
    SlotScratch& s = scratch[slot];
    {
      HFR_PROFILE("score");
      score_fn(u, slot, &s.scores);
    }
    HFR_CHECK_EQ(s.scores.size(), ds_.num_items());
    BeginUser(u, &s);
    {
      HFR_PROFILE("topk");
      SelectMasked(&s);
    }
    FinishUser(u, &s, recall, ndcg);
    *counted = 1;
  };
  return Reduce(eval_user, pool);
}

GroupedEval Evaluator::Evaluate(const BatchScoreFn& score_fn,
                                ThreadPool* pool) const {
  const size_t n_slots = pool != nullptr ? pool->num_slots() : 1;
  std::vector<SlotScratch> scratch(n_slots);
  if (candidate_sample_ == 0) {
    for (auto& s : scratch) s.masked.resize(ds_.num_items());
  }

  auto eval_user = [&](size_t k, size_t slot, double* recall, double* ndcg,
                       uint8_t* counted) {
    const UserId u = users_[k];
    if (ds_.TestItems(u).empty()) return;
    SlotScratch& s = scratch[slot];
    BeginUser(u, &s);
    if (candidate_sample_ == 0) {
      // Full-catalogue ranking over the contiguous id span.
      s.scores.resize(ds_.num_items());
      {
        HFR_PROFILE("score");
        score_fn(u, slot, all_items_, s.scores.data());
      }
      HFR_PROFILE("topk");
      SelectMasked(&s);
    } else {
      // Candidate slice: test items + seeded negatives. Train items are
      // excluded by construction, so no mask is needed.
      std::vector<ItemId> ids = CandidateItems(u);
      s.scores.resize(ids.size());
      {
        HFR_PROFILE("score");
        score_fn(u, slot, ids, s.scores.data());
      }
      HFR_PROFILE("topk");
      if (use_batched_topk_) {
        s.selector.SelectFromCandidates(ids, s.scores, top_k_, &s.topk);
      } else {
        s.selector.SelectFromCandidatesReference(ids, s.scores, top_k_,
                                                 &s.topk);
      }
    }
    FinishUser(u, &s, recall, ndcg);
    *counted = 1;
  };
  return Reduce(eval_user, pool);
}

GroupedEval Evaluator::Evaluate(const StreamScoreFn& score_fn,
                                ThreadPool* pool) const {
  // Fused scoring+selection streams the catalogue; the candidate slice
  // already avoids the O(items) pass and keeps the id-list callback.
  HFR_CHECK_EQ(candidate_sample_, 0u);
  const size_t n_slots = pool != nullptr ? pool->num_slots() : 1;
  std::vector<SlotScratch> scratch(n_slots);
  for (auto& s : scratch) s.masked.resize(ds_.num_items());

  auto eval_user = [&](size_t k, size_t slot, double* recall, double* ndcg,
                       uint8_t* counted) {
    const UserId u = users_[k];
    if (ds_.TestItems(u).empty()) return;
    SlotScratch& s = scratch[slot];
    BeginUser(u, &s);
    s.selector.Begin(top_k_, &s.masked);
    {
      // Fused scoring+selection: one scope covers both.
      HFR_PROFILE("score");
      score_fn(u, slot, &s.selector);
    }
    s.selector.Finish(&s.topk);
    FinishUser(u, &s, recall, ndcg);
    *counted = 1;
  };
  return Reduce(eval_user, pool);
}

}  // namespace hetefedrec
