// Dense row-major matrix of doubles.
//
// This is the dense numeric container used across the library: embedding
// tables, feed-forward weights, covariance and correlation matrices, and
// the reference (dense) client-update path. The individual kernels stay
// simple loops, but the hot paths are engineered for scale: per-client
// training goes through the row-sparse containers in src/math/sparse.h so
// round cost is proportional to a client's data rather than the catalogue,
// and rounds execute in parallel (src/util/thread_pool.h). Matrix is the
// storage of record — item tables at server granularity, FFN layers — and
// the interchange format every sparse structure can scatter into.
#ifndef HETEFEDREC_MATH_MATRIX_H_
#define HETEFEDREC_MATH_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/util/logging.h"

namespace hetefedrec {

/// \brief Row-major dense matrix.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix initialized to zero.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    HFR_CHECK_LT(r, rows_);
    HFR_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    HFR_CHECK_LT(r, rows_);
    HFR_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Raw pointer to the start of row r (contiguous, cols() doubles).
  double* Row(size_t r) {
    HFR_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const double* Row(size_t r) const {
    HFR_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  /// Same as Row(r); lets a Matrix stand in for a sparse row store in
  /// templated gradient/update code (see src/math/sparse.h).
  double* MutableRow(size_t r) { return Row(r); }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Sets every element to `value`.
  void Fill(double value);

  /// Sets every element to zero.
  void SetZero() { Fill(0.0); }

  /// this += scale * other. Shapes must match.
  void AddScaled(const Matrix& other, double scale);

  /// Adds `scale * other` into the leading columns of this matrix;
  /// `other` may be narrower (used by padding aggregation, Eq. 7–8).
  void AddScaledIntoLeadingCols(const Matrix& other, double scale);

  /// this *= scale.
  void Scale(double scale);

  /// Copy of the first `n_cols` columns (all rows). Eq. 8's `[: Nx]` slice.
  Matrix LeadingCols(size_t n_cols) const;

  /// Copy of `n_rows` rows starting at `row0` (all columns).
  Matrix RowSlice(size_t row0, size_t n_rows) const;

  /// Matrix transpose.
  Matrix Transposed() const;

  /// Dense matmul: (m x k) * (k x n) -> (m x n).
  static Matrix MatMul(const Matrix& a, const Matrix& b);

  /// Frobenius norm sqrt(sum of squares).
  double FrobeniusNorm() const;

  /// Largest |element|.
  double MaxAbs() const;

  bool SameShape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

// --- Free vector helpers over raw rows ------------------------------------

/// Dot product of two length-n arrays.
double Dot(const double* a, const double* b, size_t n);

/// y += alpha * x (length n).
void Axpy(double alpha, const double* x, double* y, size_t n);

/// Euclidean norm of a length-n array.
double Norm2(const double* a, size_t n);

/// Cosine similarity; returns 0 when either vector is all-zero.
double CosineSimilarity(const double* a, const double* b, size_t n);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_MATRIX_H_
