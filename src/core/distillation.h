// Relation-based Ensemble Self Knowledge Distillation (RESKD), §IV-C.
//
// After heterogeneous aggregation, the server (no client data needed):
//   1. samples a subset Vkd of items,
//   2. computes each table's pairwise cosine-similarity matrix over Vkd
//      (the "relation"),
//   3. averages them into an ensemble relation d_ens (Eq. 16),
//   4. nudges every table so its relation matches d_ens by gradient descent
//      on L_kd = || d(V, Vkd) - d_ens ||²₂ (Eq. 17).
// The ensemble target is held fixed during the descent steps (standard
// distillation practice: the teacher signal is not differentiated).
#ifndef HETEFEDREC_CORE_DISTILLATION_H_
#define HETEFEDREC_CORE_DISTILLATION_H_

#include <vector>

#include "src/data/types.h"
#include "src/math/backend.h"
#include "src/math/matrix.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// Options for one RESKD application.
struct DistillationOptions {
  size_t kd_items = 64;  // |Vkd|
  int steps = 5;         // gradient steps per table per round
  double lr = 0.01;      // step size
  /// Working scalar of the Gram/relation/gradient pipeline. The tables
  /// themselves stay double (server storage of record); the fp32 backends
  /// cast the gathered Vkd rows once and upcast the final row updates.
  /// The Vkd sample draw is scalar-free, so the RNG sequence is identical
  /// on every backend.
  ComputeBackend backend = ComputeBackend::kFp64;
};

/// \brief Pairwise cosine-similarity matrix of the selected rows.
///
/// \param table embedding table.
/// \param items row indices (the sampled Vkd).
/// \returns |items| x |items| symmetric matrix with 1s on the diagonal
///   (0 for all-zero rows).
Matrix RelationMatrix(const Matrix& table, const std::vector<ItemId>& items);

/// Squared-L2 distance between two relation matrices (the distillation
/// loss of Eq. 17 for one table).
double RelationLoss(const Matrix& relation, const Matrix& target);

/// \brief Runs RESKD over a set of tables in place.
///
/// \param tables the per-group item embedding tables {Vs, Vm, Vl}; all must
///   have the same number of rows (items). Each is updated in place.
/// \param options distillation parameters.
/// \param rng source for the Vkd sample.
/// \param sampled_items when non-null, receives the Vkd row indices — the
///   only rows the distillation mutates (delta sync stamps their versions).
/// \returns the mean relation loss across tables *before* distillation
///   (useful for monitoring / tests).
double EnsembleDistill(const std::vector<Matrix*>& tables,
                       const DistillationOptions& options, Rng* rng,
                       std::vector<ItemId>* sampled_items = nullptr);

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_DISTILLATION_H_
