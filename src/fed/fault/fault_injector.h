// Seed-deterministic mid-round fault injection.
//
// `FaultInjector` mirrors `SimulatedNetwork`'s hash-draw discipline: every
// fault is a pure function of `(seed, client, key)`, where `key` is the
// round id under the synchronous schedule and the dispatch sequence number
// under the asynchronous one. Nothing here holds mutable state, so draws
// are identical regardless of thread count or evaluation order, and a run
// that resumes from a checkpoint replays exactly the same faults.
//
// See docs/ROBUSTNESS.md for the fault model and how each kind is resolved
// by the trainer.
#ifndef HETEFEDREC_FED_FAULT_FAULT_INJECTOR_H_
#define HETEFEDREC_FED_FAULT_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/core/local_trainer.h"
#include "src/data/types.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// Per-participation fault probabilities. All zero by default (no faults);
/// the rates are mutually exclusive segments of a single uniform draw, so
/// their sum must be <= 1 (validated by ExperimentConfig).
struct FaultOptions {
  double upload_loss = 0.0;    ///< update trained but never reaches server
  double download_loss = 0.0;  ///< client never receives the round's model
  double crash = 0.0;          ///< client dies mid-local-epoch, loses work
  double duplicate = 0.0;      ///< upload delivered twice (server dedups)
  double corrupt = 0.0;        ///< update values corrupted in flight
  uint64_t seed = 1;
};

enum class FaultKind {
  kNone,
  kDownloadLoss,
  kCrash,
  kUploadLoss,
  kDuplicate,
  kCorrupt,
};

/// Which corruption the injector applied (NaN / Inf / large-norm scaling).
enum class CorruptMode { kNaN, kInf, kLargeNorm };

class FaultInjector {
 public:
  explicit FaultInjector(const FaultOptions& options);

  /// True when at least one fault rate is nonzero. The trainer skips all
  /// fault plumbing (and stays bit-identical to a fault-free build) when
  /// this is false.
  bool any() const { return any_; }

  /// The fault (if any) for client `u`'s participation keyed by `key`
  /// (round id for sync, dispatch sequence for async). One uniform draw,
  /// partitioned into rate segments in declaration order:
  /// [download_loss | crash | upload_loss | duplicate | corrupt | none].
  FaultKind Draw(UserId u, uint64_t key) const;

  /// Corrupts `update` in place, deterministically for `(u, key)`:
  /// NaN-poisoning, Inf-poisoning, or a large-norm (x1e3) scaling of the
  /// item-table delta. Returns the mode applied.
  CorruptMode Corrupt(UserId u, uint64_t key, LocalUpdateResult* update) const;

  const FaultOptions& options() const { return options_; }

 private:
  FaultOptions options_;
  Rng base_;
  bool any_ = false;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_FAULT_FAULT_INJECTOR_H_
