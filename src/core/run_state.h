// Crash-consistent run checkpoints (HFR1 format v2).
//
// A `RunState` captures everything a federated run needs to continue
// bit-identically after a kill: server tables and Θ heads, version stamps,
// client replicas, the scheduler queue, every RNG stream position, both
// virtual clocks, the comm/fault counters and the metric history so far.
// `SaveRunState` writes it with an atomic rename (tmp file + std::rename),
// so a crash mid-write never clobbers the previous good checkpoint.
//
// The config fingerprint guards against resuming under a different
// experiment: any results-affecting knob change invalidates the file.
// See docs/ROBUSTNESS.md ("Checkpoint format v2") for the record layout.
#ifndef HETEFEDREC_CORE_RUN_STATE_H_
#define HETEFEDREC_CORE_RUN_STATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/config.h"
#include "src/core/trainer.h"
#include "src/math/matrix.h"
#include "src/models/ffn.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace hetefedrec {

/// Run-state format version ("format v2" = model checkpoints + run state).
inline constexpr uint64_t kRunStateFormat = 2;

/// Per-client delta-sync replica snapshot: held rows coldest-first so a
/// restore replays the LRU recency order exactly.
struct ReplicaSnapshot {
  uint64_t slot_plus_one = 0;  ///< 0 = never synced (kNoSlot)
  std::vector<uint64_t> rows;      ///< row index, coldest first
  std::vector<uint64_t> versions;  ///< aligned with `rows`
};

struct RunState {
  // --- identity guards -------------------------------------------------
  uint64_t fingerprint = 0;  ///< ConfigFingerprint of the writing run
  std::string method;        ///< short method name ("hetefedrec", ...)
  std::string base_model;    ///< "ncf" | "lightgcn"

  // --- run position ----------------------------------------------------
  uint64_t next_epoch = 1;   ///< epoch to (re-)enter on resume, 1-based
  uint64_t mid_epoch = 0;    ///< 1 = taken between rounds inside an epoch
  uint64_t round_budget = 0;     ///< remaining sync-epoch round budget
  uint64_t rounds_done = 0;      ///< completed rounds/merges, run-global
  uint64_t dispatch_seq = 0;     ///< async dispatch counter
  double loss_sum = 0.0;         ///< epoch train-loss accumulator
  uint64_t loss_count = 0;
  double sim_clock = 0.0;        ///< sync virtual clock

  // --- RNG stream positions --------------------------------------------
  RngState sched_rng;
  RngState kd_rng;
  std::vector<RngState> client_rngs;

  // --- client private state --------------------------------------------
  std::vector<Matrix> client_embeddings;  ///< 1 x width each

  // --- server public state ---------------------------------------------
  std::vector<Matrix> tables;
  std::vector<FeedForwardNet> thetas;
  uint64_t version_round = 0;
  std::vector<uint64_t> version_floors;            ///< per slot
  std::vector<std::vector<uint64_t>> versions;     ///< per slot, per row

  // --- scheduler / aggregator ------------------------------------------
  std::vector<uint64_t> queue_pending;  ///< head..tail of the epoch queue
  double async_clock = 0.0;
  uint64_t async_next_seq = 0;
  uint64_t async_merged = 0;
  uint64_t async_dropped = 0;

  // --- robustness layer -------------------------------------------------
  std::vector<uint64_t> gate_state;  ///< ClientGate::Export (may be empty)
  std::vector<std::vector<double>> admission_history;  ///< per slot

  // --- accounting -------------------------------------------------------
  std::vector<uint64_t> comm_counters;  ///< CommStats::ExportCounters
  std::vector<EpochPoint> history;

  // --- delta-sync replicas ----------------------------------------------
  uint64_t has_replicas = 0;
  std::vector<ReplicaSnapshot> replicas;  ///< per client when has_replicas
};

/// Stable hash of every results-affecting config field (excludes IO/perf
/// plumbing: num_threads, checkpoint/resume knobs, the kill hook). Two
/// configs with equal fingerprints produce bit-identical runs.
uint64_t ConfigFingerprint(const ExperimentConfig& config,
                           const std::string& method_name);

/// Writes `state` to `path` atomically (tmp + rename).
Status SaveRunState(const std::string& path, const RunState& state);

/// Loads a run state written by SaveRunState.
StatusOr<RunState> LoadRunState(const std::string& path);

}  // namespace hetefedrec

#endif  // HETEFEDREC_CORE_RUN_STATE_H_
