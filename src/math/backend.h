// Numeric compute backend selection (docs/PERFORMANCE.md "Numeric
// backends").
//
// The library carries two arithmetic instantiations of the math/model
// stack:
//
//   fp64       — the reference backend. Every kernel keeps the exact scalar
//                accumulation order the repo's bit-identity guarantees are
//                pinned against; all storage of record (server tables,
//                checkpoints, sync replicas) is double on every backend.
//   fp32       — client-side compute in float with the *scalar* fp32
//                kernels: each inner loop mirrors the SIMD algorithm
//                lane-for-lane (std::fmaf chains and the same reduction
//                tree), so its results are bit-identical to fp32_simd on
//                any machine. Serves as the portable fallback and the
//                speedup denominator for the SIMD arm.
//   fp32_simd  — the same float arithmetic through hand-vectorized
//                AVX2+FMA kernels, selected at runtime via CPU detection.
//                When AVX2+FMA is unavailable (or the build disabled it
//                with -DHFR_DISABLE_AVX2=ON) the scalar fp32 kernels run
//                instead — results are identical either way, only speed
//                changes.
//
// Because fp32 and fp32_simd produce the same bits, the backend knob has
// exactly two *numeric* behaviours (double vs float), and the tolerance
// harness (tests/core/backend_equivalence_test.cc) only has to bound
// fp32-vs-fp64 metric drift.
#ifndef HETEFEDREC_MATH_BACKEND_H_
#define HETEFEDREC_MATH_BACKEND_H_

#include <string>

#include "src/util/status.h"

namespace hetefedrec {

/// Which arithmetic the compute-heavy paths (local training, evaluation
/// scoring, distillation) run in. Storage of record stays fp64 everywhere.
enum class ComputeBackend { kFp64, kFp32, kFp32Simd };

/// Parses "fp64" | "fp32" | "fp32_simd".
StatusOr<ComputeBackend> ComputeBackendByName(const std::string& name);

/// Canonical name ("fp64" | "fp32" | "fp32_simd").
std::string ComputeBackendName(ComputeBackend backend);

/// True when this process can run the AVX2+FMA kernels: the CPU reports
/// both features and the build compiled the SIMD translation unit (i.e.
/// HFR_DISABLE_AVX2 was off).
bool CpuSupportsFp32Simd();

/// Process-wide switch consulted by the float kernel entry points: when
/// true (and CpuSupportsFp32Simd()), float kernels dispatch to the AVX2
/// implementations; otherwise they run the lane-emulating scalar fp32
/// code. Results are bit-identical either way, so flipping this is
/// results-inert — it only selects the instruction set. Set it before
/// worker threads start (plain store, read relaxed in the kernels).
void SetFp32SimdEnabled(bool enabled);
bool Fp32SimdEnabled();

/// Applies a backend choice to the process: returns false (and logs once)
/// when fp32_simd was requested but AVX2+FMA is unavailable — the caller
/// proceeds on the scalar fp32 kernels with identical results.
bool ActivateBackend(ComputeBackend backend);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_BACKEND_H_
