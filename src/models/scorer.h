// Slice-aware scoring for the two base recommenders (NCF, LightGCN).
//
// A `Scorer` evaluates r̂ = FFN([pu, pv]) at a chosen embedding width `w`,
// reading only the first `w` columns of the item embedding table and the
// first `w` entries of the user embedding. This "sliced view" is the
// mechanism behind unified dual-task learning (Eq. 11): a client holding a
// width-Nl model trains the same parameters at widths Ns, Nm and Nl by
// instantiating three scorers over shared storage.
//
//   NCF (He et al. 2017):      pu = u,            pv = v_j
//   LightGCN (He et al. 2020): one propagation layer over the client's
//   *local* bipartite graph (privacy: the user sees only its own edges), so
//   every interacted item has degree 1 and
//       pu = (u + Σ_{i∈N(u)} v_i / √d_u) / 2,
//       pv = (v_j + 1{j∈N(u)} · u / √d_u) / 2,
//   i.e. the mean of the layer-0 and layer-1 embeddings.
//
// Backward accumulates into caller-owned gradient buffers. LightGCN's
// gradient into Σ v_i is identical for every interacted item, so it is
// accumulated once per user and scattered by `FinishUserBackward`.
//
// The table and gradient parameters are templates so the same code runs
// over a dense `Matrix` (evaluation, reference path) or over the sparse
// containers of src/math/sparse.h (`RowOverlayTable` reads /
// `SparseRowStore` gradient writes) without a virtual call per row.
// Explicit instantiations for both live in scorer.cc.
#ifndef HETEFEDREC_MODELS_SCORER_H_
#define HETEFEDREC_MODELS_SCORER_H_

#include <string>
#include <vector>

#include "src/data/types.h"
#include "src/math/matrix.h"
#include "src/models/ffn.h"
#include "src/util/status.h"

namespace hetefedrec {

/// Which base recommendation algorithm F to use (§III-B).
enum class BaseModel { kNcf, kLightGcn };

/// Parses "ncf" / "lightgcn".
StatusOr<BaseModel> BaseModelByName(const std::string& name);

/// Human-readable name ("Fed-NCF" / "Fed-LightGCN").
std::string BaseModelName(BaseModel model);

/// \brief Width-w scoring view over shared parameters.
///
/// Usage per user and pass:
///   scorer.BeginUser(user_emb, V, interacted);
///   for each item: Score(...) or ScoreForTrain(...) + BackwardSample(...);
///   scorer.FinishUserBackward(...);   // training passes only
class Scorer {
 public:
  /// \param model base algorithm.
  /// \param width embedding slice width w (first w dims are used).
  Scorer(BaseModel model, size_t width);

  size_t width() const { return width_; }
  BaseModel model() const { return model_; }

  /// Prepares per-user state: copies the user slice and, for LightGCN, runs
  /// the local propagation over `interacted` (the user's training items).
  /// `V` must have at least `width` columns. `TableT` is `Matrix` or
  /// `RowOverlayTable`.
  template <typename TableT>
  void BeginUser(const double* user_emb, const TableT& item_table,
                 const std::vector<ItemId>& interacted);

  /// Per-sample context for BackwardSample.
  struct TrainCache {
    FeedForwardNet::Cache ffn;
    ItemId item = 0;
    bool item_is_interacted = false;
  };

  /// Scores item `j` (logit). Requires a prior BeginUser.
  template <typename TableT>
  double Score(const TableT& item_table, const FeedForwardNet& theta,
               ItemId j) const;

  /// Scores item `j` and fills `cache` for BackwardSample.
  template <typename TableT>
  double ScoreForTrain(const TableT& item_table, const FeedForwardNet& theta,
                       ItemId j, TrainCache* cache);

  /// Accumulates gradients for one sample given dL/dlogit.
  /// \param d_item_table |V| x width gradient sink (`Matrix` or
  ///   `SparseRowStore`; may be wider — leading cols used).
  /// \param d_user length >= width; first `width` entries accumulated.
  /// \param d_theta same-shape gradient accumulator for `theta`.
  template <typename GradT>
  void BackwardSample(const FeedForwardNet& theta, const TrainCache& cache,
                      double dlogit, GradT* d_item_table, double* d_user,
                      FeedForwardNet* d_theta);

  /// Flushes LightGCN's deferred propagation gradient into the interacted
  /// items' rows and the user embedding. No-op for NCF. Must be called once
  /// after the last BackwardSample of a pass.
  template <typename GradT>
  void FinishUserBackward(GradT* d_item_table, double* d_user);

 private:
  BaseModel model_;
  size_t width_;

  // Per-user state set by BeginUser.
  std::vector<double> pu_;             // propagated user embedding
  std::vector<double> raw_user_;       // first `width` entries of u
  const std::vector<ItemId>* interacted_ = nullptr;
  std::vector<bool> is_interacted_;    // indexed by item id
  double inv_sqrt_deg_ = 0.0;

  // Deferred LightGCN gradient: sum over samples of dL/d(pu).
  std::vector<double> dpu_accum_;
  bool pending_backward_ = false;

  // Scratch buffers.
  mutable std::vector<double> x_;   // FFN input [pu, pv]
  std::vector<double> dx_;          // FFN input gradient
  mutable FeedForwardNet::Cache eval_cache_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_MODELS_SCORER_H_
