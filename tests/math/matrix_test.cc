#include "src/math/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hetefedrec {
namespace {

Matrix Iota(size_t rows, size_t cols) {
  Matrix m(rows, cols);
  double v = 1.0;
  for (size_t r = 0; r < rows; ++r)
    for (size_t c = 0; c < cols; ++c) m(r, c) = v++;
  return m;
}

TEST(MatrixTest, ConstructionZeroInitialized) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (size_t r = 0; r < 2; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(m(r, c), 0.0);
}

TEST(MatrixTest, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

TEST(MatrixTest, ElementAccessRowMajor) {
  Matrix m = Iota(2, 3);
  EXPECT_EQ(m(0, 0), 1.0);
  EXPECT_EQ(m(0, 2), 3.0);
  EXPECT_EQ(m(1, 0), 4.0);
  EXPECT_EQ(m.Row(1)[2], 6.0);
}

TEST(MatrixTest, FillAndSetZero) {
  Matrix m(2, 2);
  m.Fill(7.5);
  EXPECT_EQ(m(1, 1), 7.5);
  m.SetZero();
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(MatrixTest, AddScaled) {
  Matrix a = Iota(2, 2);
  Matrix b = Iota(2, 2);
  a.AddScaled(b, -0.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(a(1, 1), 2.0);
}

TEST(MatrixTest, AddScaledIntoLeadingColsPadsWithNothing) {
  // Eq. 7: a narrow update lands in the leading columns, the tail is
  // untouched (zero-padding semantics).
  Matrix wide(2, 4);
  wide.Fill(1.0);
  Matrix narrow = Iota(2, 2);
  wide.AddScaledIntoLeadingCols(narrow, 2.0);
  EXPECT_DOUBLE_EQ(wide(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(wide(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(wide(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(wide(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(wide(1, 0), 7.0);
}

TEST(MatrixTest, ScaleInPlace) {
  Matrix m = Iota(1, 3);
  m.Scale(-2.0);
  EXPECT_DOUBLE_EQ(m(0, 2), -6.0);
}

TEST(MatrixTest, LeadingColsSlices) {
  Matrix m = Iota(2, 4);
  Matrix s = m.LeadingCols(2);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_EQ(s(0, 0), 1.0);
  EXPECT_EQ(s(0, 1), 2.0);
  EXPECT_EQ(s(1, 0), 5.0);
  EXPECT_EQ(s(1, 1), 6.0);
}

TEST(MatrixTest, RowSlice) {
  Matrix m = Iota(4, 2);
  Matrix s = m.RowSlice(1, 2);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 3.0);
  EXPECT_EQ(s(1, 1), 6.0);
}

TEST(MatrixTest, Transposed) {
  Matrix m = Iota(2, 3);
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 0), 3.0);
  EXPECT_EQ(t(0, 1), 4.0);
}

TEST(MatrixTest, MatMulAgainstHandComputed) {
  Matrix a = Iota(2, 3);            // [1 2 3; 4 5 6]
  Matrix b = Iota(3, 2);            // [1 2; 3 4; 5 6]
  Matrix c = Matrix::MatMul(a, b);  // [22 28; 49 64]
  EXPECT_DOUBLE_EQ(c(0, 0), 22.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 28.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 49.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 64.0);
}

TEST(MatrixTest, MatMulIdentity) {
  Matrix a = Iota(3, 3);
  Matrix eye(3, 3);
  for (size_t i = 0; i < 3; ++i) eye(i, i) = 1.0;
  Matrix c = Matrix::MatMul(a, eye);
  for (size_t r = 0; r < 3; ++r)
    for (size_t col = 0; col < 3; ++col) EXPECT_DOUBLE_EQ(c(r, col), a(r, col));
}

TEST(MatrixTest, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(MatrixTest, MaxAbs) {
  Matrix m(1, 3);
  m(0, 0) = -9.0;
  m(0, 1) = 2.0;
  EXPECT_DOUBLE_EQ(m.MaxAbs(), 9.0);
}

TEST(VectorOpsTest, DotAxpyNorm) {
  double a[3] = {1, 2, 3};
  double b[3] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b, 3), 32.0);
  Axpy(2.0, a, b, 3);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  double c[2] = {3, 4};
  EXPECT_DOUBLE_EQ(Norm2(c, 2), 5.0);
}

TEST(VectorOpsTest, CosineSimilarity) {
  double a[2] = {1, 0};
  double b[2] = {0, 1};
  double c[2] = {2, 0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, b, 2), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, c, 2), 1.0);
  double zero[2] = {0, 0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(a, zero, 2), 0.0);
}

}  // namespace
}  // namespace hetefedrec
