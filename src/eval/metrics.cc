#include "src/eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/eval/topk.h"
#include "src/util/logging.h"

namespace hetefedrec {

double RecallAtK(const std::vector<ItemId>& topk,
                 const std::unordered_set<ItemId>& relevant) {
  if (relevant.empty()) return 0.0;
  size_t hits = 0;
  for (ItemId i : topk) hits += relevant.count(i);
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double NdcgAtK(const std::vector<ItemId>& topk,
               const std::unordered_set<ItemId>& relevant, size_t k) {
  HFR_CHECK_LE(topk.size(), k);
  if (relevant.empty()) return 0.0;
  double dcg = 0.0;
  for (size_t p = 0; p < topk.size(); ++p) {
    if (relevant.count(topk[p])) {
      dcg += 1.0 / std::log2(static_cast<double>(p) + 2.0);
    }
  }
  // The ideal ranking places min(k, |relevant|) hits at the head of a
  // length-k list — truncated at the *requested* k, not at topk.size():
  // a ranking starved of candidates (catalogue or candidate pool < K)
  // must not be graded against a correspondingly shrunken ideal.
  double idcg = 0.0;
  size_t ideal_hits = std::min(k, relevant.size());
  for (size_t p = 0; p < ideal_hits; ++p) {
    idcg += 1.0 / std::log2(static_cast<double>(p) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

double HitRateAtK(const std::vector<ItemId>& topk,
                  const std::unordered_set<ItemId>& relevant) {
  for (ItemId i : topk) {
    if (relevant.count(i)) return 1.0;
  }
  return 0.0;
}

double PrecisionAtK(const std::vector<ItemId>& topk,
                    const std::unordered_set<ItemId>& relevant) {
  if (topk.empty()) return 0.0;
  size_t hits = 0;
  for (ItemId i : topk) hits += relevant.count(i);
  return static_cast<double>(hits) / static_cast<double>(topk.size());
}

double MrrAtK(const std::vector<ItemId>& topk,
              const std::unordered_set<ItemId>& relevant) {
  for (size_t p = 0; p < topk.size(); ++p) {
    if (relevant.count(topk[p])) {
      return 1.0 / static_cast<double>(p + 1);
    }
  }
  return 0.0;
}

double AveragePrecisionAtK(const std::vector<ItemId>& topk,
                           const std::unordered_set<ItemId>& relevant) {
  if (relevant.empty() || topk.empty()) return 0.0;
  size_t hits = 0;
  double sum = 0.0;
  for (size_t p = 0; p < topk.size(); ++p) {
    if (relevant.count(topk[p])) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(p + 1);
    }
  }
  size_t denom = std::min(topk.size(), relevant.size());
  return denom > 0 ? sum / static_cast<double>(denom) : 0.0;
}

std::vector<ItemId> TopKItems(const std::vector<double>& scores,
                              const std::vector<bool>& masked, size_t k) {
  // Per-thread scratch: repeated calls rebuild neither the candidate
  // vector nor the order buffer.
  static thread_local TopKSelector selector;
  std::vector<ItemId> topk;
  selector.SelectMaskedReference(scores, masked, k, &topk);
  return topk;
}

std::vector<ItemId> TopKFromCandidates(const std::vector<ItemId>& ids,
                                       const std::vector<double>& scores,
                                       size_t k) {
  static thread_local TopKSelector selector;
  std::vector<ItemId> topk;
  selector.SelectFromCandidatesReference(ids, scores, k, &topk);
  return topk;
}

}  // namespace hetefedrec
