// Virtual-clock trace recorder emitting Chrome trace-event JSON.
//
// Events are keyed to the *simulated-seconds* clock the federated executor
// maintains (not wall time), so a trace of an async straggler-heavy run shows
// exactly the deterministic event order the virtual clock produced — the same
// file, byte for byte, at any thread count. Load the output in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
//
// Track model: one "thread" per lane inside a single process —
//   tid 0            server (rounds, merges, distill, checkpoint)
//   tid 1..N         one track per client group (transfers, faults, drops)
// Lane names are announced with thread_name metadata events.
//
// Simulated seconds are converted to trace microseconds (ts = 1e6 * seconds)
// and formatted through the deterministic JSON helpers. Appending is
// main-thread-only: the recorder is called from the deterministic round /
// merge loop, never from pool workers.
#ifndef HETEFEDREC_UTIL_TELEMETRY_TRACE_H_
#define HETEFEDREC_UTIL_TELEMETRY_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace hetefedrec {

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Announces a lane name (emitted as a thread_name metadata event).
  void SetTrackName(int track, const std::string& name);

  /// Zero-duration instant event ("i" phase) at simulated time `ts_seconds`.
  /// `args_json` is a pre-rendered JSON object ("" for none).
  void Instant(const char* name, const char* category, double ts_seconds,
               int track, const std::string& args_json = "");

  /// Complete event ("X" phase) spanning [ts_seconds, ts_seconds + dur].
  void Complete(const char* name, const char* category, double ts_seconds,
                double dur_seconds, int track,
                const std::string& args_json = "");

  size_t size() const { return events_.size(); }

  /// Renders {"traceEvents":[...]} with one event per line (the line
  /// orientation keeps the file greppable and lets tests scan "ts" values
  /// without a JSON parser).
  std::string ToJson() const;

  Status WriteJson(const std::string& path) const;

 private:
  void Append(const char* phase, const char* name, const char* category,
              double ts_seconds, double dur_seconds, int track,
              const std::string& args_json);

  std::vector<std::string> meta_;    // thread_name announcements
  std::vector<std::string> events_;  // rendered event objects, in order
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_TELEMETRY_TRACE_H_
