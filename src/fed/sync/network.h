// Simulated client network conditions: availability, bandwidth, latency.
//
// Federated-recommendation surveys name client availability and stragglers
// as the main gap between simulation and deployment. This model closes it
// without giving up determinism: every draw is keyed by (seed, client) or
// (seed, client, round) through the splittable Rng, so results are
// bit-reproducible for any thread count and independent of call order —
// the round executor may query clients in any order, or not at all.
//
// Three effects are modeled:
//   availability — each *selection* of a client finds it online with
//     probability p (fresh draw per round, so a client that was offline
//     can come back later);
//   bandwidth    — a per-client log-normal draw, fixed across the run
//     (device classes: a slow phone stays slow);
//   latency      — a per-(client, round) jittered round-trip base.
//
// FinishSeconds composes them into the client's wall-clock round time:
//   latency + bytes_down / bw + compute_per_sample × samples + bytes_up / bw
// which the over-selection protocol in the trainer uses to rank stragglers.
#ifndef HETEFEDREC_FED_SYNC_NETWORK_H_
#define HETEFEDREC_FED_SYNC_NETWORK_H_

#include <cstdint>

#include "src/data/types.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Knobs of the simulated network.
struct NetworkOptions {
  /// P(selected client is online) per selection. 1.0 = everyone always on.
  double availability = 1.0;
  /// Median client bandwidth, bytes/second (default 10 Mbit/s).
  double bandwidth_bytes_per_sec = 1.25e6;
  /// Log-normal sigma of the per-client bandwidth multiplier (0 = uniform
  /// fleet).
  double bandwidth_sigma = 0.0;
  /// Base round-trip latency, seconds.
  double latency_seconds = 0.05;
  /// Log-normal sigma of the per-(client, round) latency multiplier.
  double latency_sigma = 0.0;
  /// Local training compute, seconds per (sample × task) forward/backward.
  double compute_seconds_per_sample = 0.0;
  uint64_t seed = 1;
};

/// \brief Deterministic per-client network condition draws.
class SimulatedNetwork {
 public:
  explicit SimulatedNetwork(const NetworkOptions& options);

  const NetworkOptions& options() const { return options_; }

  /// Whether client `u`, selected in `round`, is online. Fresh Bernoulli
  /// draw per (client, round).
  bool Online(UserId u, uint64_t round) const;

  /// The client's fixed bandwidth, bytes/second.
  double ClientBandwidth(UserId u) const;

  /// Wall-clock seconds for one full participation of client `u`.
  double FinishSeconds(UserId u, uint64_t round, size_t bytes_down,
                       size_t bytes_up, size_t samples) const;

 private:
  NetworkOptions options_;
  Rng base_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_SYNC_NETWORK_H_
