// hetefedrec_run — run any single experiment from the command line.
//
//   ./build/tools/hetefedrec_run --method=hetefedrec --dataset=anime
//       --model=lightgcn --data_scale=0.06 --epochs=18 --alpha=1.0
//       --eval_every=2 --checkpoint=out.ckpt      (one line in the shell)
//
// Prints overall + per-group metrics, the convergence curve when
// --eval_every is set, communication totals, and the collapse diagnostic.
#include <cstdio>

#include "src/core/trainer.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"

namespace hetefedrec {
namespace {

int Main(int argc, char** argv) {
  CommandLine cli;
  cli.AddFlag("method", "hetefedrec",
              "all_small|all_large|all_large_exclusive|standalone|clustered|"
              "direct|hetefedrec");
  cli.AddFlag("dataset", "ml", "ml | anime | douban");
  cli.AddFlag("model", "ncf", "ncf | lightgcn");
  cli.AddFlag("data_scale", "0.06", "synthetic dataset scale in (0,1]");
  cli.AddFlag("dims", "8,16,32", "Ns,Nm,Nl embedding widths");
  cli.AddFlag("fractions", "5,3,2", "Us:Um:Ul division ratio");
  cli.AddFlag("epochs", "18", "global epochs");
  cli.AddFlag("local_epochs", "2", "local epochs per round");
  cli.AddFlag("clients_per_round", "64", "round size");
  cli.AddFlag("lr", "0.001", "Adam learning rate");
  cli.AddFlag("alpha", "1.0", "DDR weight");
  cli.AddFlag("agg", "mean", "mean | sum | weighted");
  cli.AddFlag("udl", "true", "unified dual-task learning");
  cli.AddFlag("ddr", "true", "decorrelation regularization");
  cli.AddFlag("reskd", "true", "relation-based ensemble distillation");
  cli.AddFlag("validation", "0", "local validation fraction (paper: 0.1)");
  cli.AddFlag("eval_every", "0", "evaluate every n epochs (0 = final only)");
  cli.AddFlag("eval_users", "300", "evaluation user sample (0 = all)");
  cli.AddFlag("seed", "7", "experiment seed");
  cli.AddFlag("checkpoint", "", "write final server parameters here");
  cli.AddFlag("threads", "1",
              "round-execution threads (0 = hardware concurrency; results "
              "are identical for any value)");
  cli.AddFlag("dense_updates", "false",
              "use the dense reference client-update path");
  cli.AddFlag("scalar_scoring", "false",
              "use the per-sample reference scoring path instead of the "
              "batched kernels (bit-identical; for comparison runs)");
  cli.AddFlag("scalar_topk", "false",
              "use the per-user partial_sort reference top-K selection "
              "instead of the fused streaming selector (bit-identical; "
              "for comparison runs)");
  cli.AddFlag("eval_candidates", "0",
              "candidate-sliced evaluation: score test items + N seeded "
              "negatives per user instead of the full catalogue (0 = full; "
              "changes reported metrics — see docs/PERFORMANCE.md)");
  cli.AddFlag("replica_cap", "0",
              "per-client LRU cap on delta-sync replica rows (0 = "
              "unlimited; evicted rows re-ship on the next subscription)");
  cli.AddFlag("sparse_comm", "false",
              "report actually-shipped (sparse/delta) scalars instead of "
              "the paper's dense accounting");
  cli.AddFlag("delta_downloads", "false",
              "row-subscription delta downloads instead of full-table "
              "downloads (bit-identical metrics; see docs/SYNC.md)");
  cli.AddFlag("availability", "1.0",
              "P(selected client is online); offline clients requeue");
  cli.AddFlag("straggler_slack", "0",
              "over-selection slack: select N extra clients per round, "
              "merge the first clients_per_round to finish");
  cli.AddFlag("round_deadline", "0",
              "simulated round deadline in seconds (0 = none)");
  cli.AddFlag("compute_backend", "fp64",
              "numeric compute backend: fp64 (bit-exact reference) | fp32 "
              "(float client math) | fp32_simd (float + AVX2 kernels)");
  cli.AddFlag("wire_format", "auto",
              "wire scalar width for byte accounting: auto | fp64 | fp32 | "
              "fp16 (auto = fp64, or fp32 when --compute_backend is fp32*)");
  cli.AddFlag("net_bandwidth", "1.25e6",
              "median client bandwidth, bytes/second");
  cli.AddFlag("net_bandwidth_sigma", "0",
              "log-normal sigma of the per-client bandwidth multiplier");
  cli.AddFlag("net_latency", "0.05", "base round-trip latency, seconds");
  cli.AddFlag("net_latency_sigma", "0",
              "log-normal sigma of the per-(client,round) latency");
  cli.AddFlag("net_compute", "0",
              "local compute seconds per training sample");
  cli.AddFlag("async", "false",
              "asynchronous merge-on-arrival aggregation instead of "
              "synchronous rounds (docs/SYNC.md)");
  cli.AddFlag("async_alpha", "0.5",
              "staleness exponent: updates merge with w(s)=1/(1+s)^alpha");
  cli.AddFlag("async_max_staleness", "0",
              "drop arrivals staler than this version gap (0 = no cap)");
  cli.AddFlag("async_distill_every", "0",
              "merged updates between RESKD distillations "
              "(0 = clients_per_round)");
  cli.AddFlag("async_inflight", "0",
              "clients concurrently in flight (0 = clients_per_round)");
  cli.AddFlag("async_dispatch_batch", "1",
              "completions merged before freed slots re-dispatch as one "
              "parallel batch");
  cli.AddFlag("fault_upload_loss", "0", "P(trained update lost in flight)");
  cli.AddFlag("fault_download_loss", "0",
              "P(model never reaches the selected client)");
  cli.AddFlag("fault_crash", "0", "P(client crashes mid-local-epoch)");
  cli.AddFlag("fault_duplicate", "0",
              "P(update delivered twice; server dedupes)");
  cli.AddFlag("fault_corrupt", "0",
              "P(update corrupted in flight: NaN/Inf/large-norm)");
  cli.AddFlag("fault_retry_max", "5",
              "consecutive transfer failures before a client gives up "
              "for the epoch");
  cli.AddFlag("fault_retry_base", "1",
              "base retry backoff, simulated seconds");
  cli.AddFlag("fault_retry_cap", "60", "retry backoff cap, simulated seconds");
  cli.AddFlag("fault_quarantine_base", "5",
              "base quarantine after an admission rejection, simulated "
              "seconds");
  cli.AddFlag("fault_quarantine_cap", "300",
              "quarantine cap, simulated seconds");
  cli.AddFlag("fault_jitter", "0.5", "backoff jitter fraction in [0,1]");
  cli.AddFlag("admission", "false",
              "server-side update admission control (finite scan + "
              "clip + outlier gate; docs/ROBUSTNESS.md)");
  cli.AddFlag("admit_max_row_norm", "0",
              "clip uploaded item-delta rows to this L2 norm (0 = off)");
  cli.AddFlag("admit_outlier_z", "0",
              "reject updates with robust z-score above this over the "
              "slot's accepted-norm window (0 = off)");
  cli.AddFlag("checkpoint_every", "0",
              "write a crash-consistent run checkpoint every n rounds "
              "(sync) / epochs (async); requires --checkpoint");
  cli.AddFlag("resume", "false",
              "resume from <checkpoint>.run written by --checkpoint_every");
  cli.AddFlag("stop_after_rounds", "0",
              "kill the run after n merged rounds (kill-point testing)");
  cli.AddFlag("metrics_out", "",
              "stream per-round metrics as JSONL here (docs/OBSERVABILITY.md; "
              "never perturbs results)");
  cli.AddFlag("trace_out", "",
              "write a Chrome/Perfetto trace of the simulated run here "
              "(virtual-clock timeline; docs/OBSERVABILITY.md)");
  cli.AddFlag("profile", "false",
              "wall-clock phase profiling; prints a phase table at exit and "
              "adds profile rows to --metrics_out");

  Status st = cli.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 cli.Usage(argv[0]).c_str());
    return 1;
  }

  auto parse_triple = [](const std::string& s, double out[3]) {
    return std::sscanf(s.c_str(), "%lf,%lf,%lf", &out[0], &out[1],
                       &out[2]) == 3;
  };

  ExperimentConfig cfg;
  cfg.dataset = cli.GetString("dataset");
  cfg.data_scale = cli.GetDouble("data_scale");
  cfg.global_epochs = cli.GetInt("epochs");
  cfg.local_epochs = cli.GetInt("local_epochs");
  cfg.clients_per_round = static_cast<size_t>(cli.GetInt("clients_per_round"));
  cfg.lr = cli.GetDouble("lr");
  cfg.alpha = cli.GetDouble("alpha");
  cfg.unified_dual_task = cli.GetBool("udl");
  cfg.decorrelation = cli.GetBool("ddr");
  cfg.ensemble_distillation = cli.GetBool("reskd");
  cfg.local_validation_fraction = cli.GetDouble("validation");
  cfg.eval_every = cli.GetInt("eval_every");
  cfg.eval_user_sample = static_cast<size_t>(cli.GetInt("eval_users"));
  cfg.seed = static_cast<uint64_t>(cli.GetInt("seed"));
  cfg.checkpoint_path = cli.GetString("checkpoint");
  cfg.num_threads = static_cast<size_t>(cli.GetInt("threads"));
  cfg.use_sparse_updates = !cli.GetBool("dense_updates");
  cfg.use_batched_scoring = !cli.GetBool("scalar_scoring");
  cfg.use_batched_topk = !cli.GetBool("scalar_topk");
  cfg.eval_candidate_sample = static_cast<size_t>(cli.GetInt("eval_candidates"));
  cfg.sync_replica_cap = static_cast<size_t>(cli.GetInt("replica_cap"));
  cfg.sparse_comm_accounting = cli.GetBool("sparse_comm");
  cfg.full_downloads = !cli.GetBool("delta_downloads");
  cfg.availability = cli.GetDouble("availability");
  cfg.straggler_slack = static_cast<size_t>(cli.GetInt("straggler_slack"));
  cfg.round_deadline = cli.GetDouble("round_deadline");
  auto backend = ComputeBackendByName(cli.GetString("compute_backend"));
  if (!backend.ok()) {
    std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
    return 1;
  }
  cfg.compute_backend = *backend;
  const std::string wire_format = cli.GetString("wire_format");
  if (wire_format == "auto") {
    cfg.wire_scalar_bytes =
        cfg.compute_backend == ComputeBackend::kFp64 ? 8 : 4;
  } else {
    auto wire = WireScalarBytesByName(wire_format);
    if (!wire.ok()) {
      std::fprintf(stderr, "%s\n", wire.status().ToString().c_str());
      return 1;
    }
    cfg.wire_scalar_bytes = *wire;
  }
  cfg.net_bandwidth = cli.GetDouble("net_bandwidth");
  cfg.net_bandwidth_sigma = cli.GetDouble("net_bandwidth_sigma");
  cfg.net_latency = cli.GetDouble("net_latency");
  cfg.net_latency_sigma = cli.GetDouble("net_latency_sigma");
  cfg.net_compute_per_sample = cli.GetDouble("net_compute");
  cfg.async_mode = cli.GetBool("async");
  cfg.async_staleness_alpha = cli.GetDouble("async_alpha");
  cfg.async_max_staleness =
      static_cast<size_t>(cli.GetInt("async_max_staleness"));
  cfg.async_distill_every =
      static_cast<size_t>(cli.GetInt("async_distill_every"));
  cfg.async_inflight = static_cast<size_t>(cli.GetInt("async_inflight"));
  cfg.async_dispatch_batch =
      static_cast<size_t>(cli.GetInt("async_dispatch_batch"));
  cfg.fault_upload_loss = cli.GetDouble("fault_upload_loss");
  cfg.fault_download_loss = cli.GetDouble("fault_download_loss");
  cfg.fault_crash = cli.GetDouble("fault_crash");
  cfg.fault_duplicate = cli.GetDouble("fault_duplicate");
  cfg.fault_corrupt = cli.GetDouble("fault_corrupt");
  cfg.fault_retry_max = static_cast<size_t>(cli.GetInt("fault_retry_max"));
  cfg.fault_retry_base = cli.GetDouble("fault_retry_base");
  cfg.fault_retry_cap = cli.GetDouble("fault_retry_cap");
  cfg.fault_quarantine_base = cli.GetDouble("fault_quarantine_base");
  cfg.fault_quarantine_cap = cli.GetDouble("fault_quarantine_cap");
  cfg.fault_jitter = cli.GetDouble("fault_jitter");
  cfg.admission_control = cli.GetBool("admission");
  cfg.admit_max_row_norm = cli.GetDouble("admit_max_row_norm");
  cfg.admit_outlier_z = cli.GetDouble("admit_outlier_z");
  cfg.checkpoint_every = static_cast<size_t>(cli.GetInt("checkpoint_every"));
  cfg.resume_run = cli.GetBool("resume");
  cfg.debug_stop_after_rounds =
      static_cast<size_t>(cli.GetUint64("stop_after_rounds"));
  cfg.metrics_out = cli.GetString("metrics_out");
  cfg.trace_out = cli.GetString("trace_out");
  cfg.profile = cli.GetBool("profile");
  if (cli.GetString("agg") == "sum") {
    cfg.aggregation = AggregationMode::kSum;
  } else if (cli.GetString("agg") == "weighted") {
    cfg.aggregation = AggregationMode::kDataWeighted;
  } else {
    cfg.aggregation = AggregationMode::kMean;
  }

  double triple[3];
  if (!parse_triple(cli.GetString("dims"), triple)) {
    std::fprintf(stderr, "bad --dims (expected Ns,Nm,Nl)\n");
    return 1;
  }
  cfg.dims = {static_cast<size_t>(triple[0]), static_cast<size_t>(triple[1]),
              static_cast<size_t>(triple[2])};
  if (!parse_triple(cli.GetString("fractions"), triple)) {
    std::fprintf(stderr, "bad --fractions (expected fs,fm,fl)\n");
    return 1;
  }
  cfg.group_fractions = {triple[0], triple[1], triple[2]};

  auto model = BaseModelByName(cli.GetString("model"));
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  cfg.base_model = *model;
  auto method = MethodByName(cli.GetString("method"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 1;
  }

  auto runner = ExperimentRunner::Create(cfg);
  if (!runner.ok()) {
    std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
    return 1;
  }
  std::printf("%s | %s on %s: %zu users, %zu items, %zu interactions\n",
              MethodName(*method).c_str(), BaseModelName(*model).c_str(),
              cfg.dataset.c_str(), (*runner)->dataset().num_users(),
              (*runner)->dataset().num_items(),
              (*runner)->dataset().TotalInteractions());

  ExperimentResult r = (*runner)->Run(*method);
  for (const EpochPoint& p : r.history) {
    std::printf("epoch %3d  ndcg=%.5f recall=%.5f loss=%.4f simsec=%.1f\n",
                p.epoch, p.eval.overall.ndcg, p.eval.overall.recall,
                p.mean_train_loss, p.simulated_seconds);
  }
  std::printf(
      "\nfinal: Recall@20=%.5f NDCG@20=%.5f (Us %.5f | Um %.5f | Ul %.5f) "
      "over %zu users\n",
      r.final_eval.overall.recall, r.final_eval.overall.ndcg,
      r.final_eval.group(Group::kSmall).ndcg,
      r.final_eval.group(Group::kMedium).ndcg,
      r.final_eval.group(Group::kLarge).ndcg, r.final_eval.overall.users);
  std::printf("comm: %s scalars transmitted total (%s MB on the wire)\n",
              TablePrinter::Count(
                  static_cast<long long>(r.comm.TotalTransmitted()))
                  .c_str(),
              TablePrinter::Num(
                  static_cast<double>(r.comm.TotalBytes()) / (1024.0 * 1024.0),
                  1)
                  .c_str());
  std::printf("comm per participation (down | up scalars): Us %.0f|%.0f  "
              "Um %.0f|%.0f  Ul %.0f|%.0f\n",
              r.comm.AvgDownload(Group::kSmall), r.comm.AvgUpload(Group::kSmall),
              r.comm.AvgDownload(Group::kMedium),
              r.comm.AvgUpload(Group::kMedium),
              r.comm.AvgDownload(Group::kLarge), r.comm.AvgUpload(Group::kLarge));
  std::printf("collapse: var=%.6f normalized=%.4f\n", r.collapse_variance,
              r.collapse_cv);
  const FaultStats& fs = r.comm.faults();
  if (fs.TotalInjected() + fs.TotalRejected() + fs.rows_clipped +
          fs.quarantines + fs.retries + fs.gave_up + fs.nonfinite_grad_steps >
      0) {
    std::printf(
        "faults: down_lost=%zu up_lost=%zu crashed=%zu dup=%zu corrupt=%zu "
        "rej_nonfinite=%zu rej_outlier=%zu clipped=%zu quarantined=%zu "
        "retries=%zu gave_up=%zu nan_steps=%zu\n",
        fs.download_lost, fs.upload_lost, fs.crashed, fs.duplicates,
        fs.corrupted, fs.rejected_nonfinite, fs.rejected_outlier,
        fs.rows_clipped, fs.quarantines, fs.retries, fs.gave_up,
        fs.nonfinite_grad_steps);
  }
  const size_t dropped = r.comm.TotalDropped();
  std::printf("simulated time: %.1fs%s", r.simulated_seconds,
              dropped > 0 ? "" : "\n");
  if (dropped > 0) {
    std::printf("  (%zu over-stale arrivals dropped)\n", dropped);
  }
  std::printf("wall time: %.1fs\n", r.train_seconds);
  return 0;
}

}  // namespace
}  // namespace hetefedrec

int main(int argc, char** argv) { return hetefedrec::Main(argc, argv); }
