// Wall-clock stopwatch for coarse experiment timing.
#ifndef HETEFEDREC_UTIL_TIMER_H_
#define HETEFEDREC_UTIL_TIMER_H_

#include <chrono>

namespace hetefedrec {

/// \brief Starts on construction; `Seconds()` reads elapsed wall time.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_TIMER_H_
