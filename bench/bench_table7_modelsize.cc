// Reproduces Table VII: the effect of the model-size set {Ns, Nm, Nl} on
// ML, comparing All Small, All Large and HeteFedRec (NDCG@20).
//
// Paper shape: performance rises then falls as sizes grow ({8,16,32} is
// the sweet spot where HeteFedRec beats both homogeneous baselines); with
// tiny sizes {2,4,8} simply using the bigger model ("All Large") wins; with
// huge sizes {32,64,128} "All Small" wins but HeteFedRec still beats
// "All Large".
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

struct PaperRow {
  const char* model;
  double small, large, hete;
};
// NDCG@20 on ML, columns {2,4,8} / {8,16,32} / {32,64,128}.
constexpr PaperRow kPaperNcf[] = {
    {"{2,4,8}", 0.03791, 0.04328, 0.03829},
    {"{8,16,32}", 0.04328, 0.04028, 0.04781},
    {"{32,64,128}", 0.04028, 0.03903, 0.04074},
};
constexpr PaperRow kPaperLightGcn[] = {
    {"{2,4,8}", 0.03813, 0.04232, 0.04017},
    {"{8,16,32}", 0.04232, 0.04197, 0.04313},
    {"{32,64,128}", 0.04197, 0.03901, 0.04093},
};

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  const std::array<size_t, 3> sizes[] = {
      {2, 4, 8}, {8, 16, 32}, {32, 64, 128}};
  const char* size_names[] = {"{2,4,8}", "{8,16,32}", "{32,64,128}"};

  TablePrinter table(
      "Table VII: NDCG@20 under different model size settings on ML",
      {"Model", "Sizes", "All Small", "All Large", "HeteFedRec",
       "AS(paper)", "AL(paper)", "HFR(paper)"});

  std::string only_model = cli.GetString("model");
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    if (!only_model.empty() &&
        only_model != (model == BaseModel::kNcf ? "ncf" : "lightgcn")) {
      continue;
    }
    const PaperRow* paper_rows =
        model == BaseModel::kNcf ? kPaperNcf : kPaperLightGcn;
    int middle_hete_best = 0;
    for (int i = 0; i < 3; ++i) {
      ExperimentConfig cfg = *base_cfg;
      cfg.base_model = model;
      cfg.dataset = "ml";
      cfg.dims = sizes[i];
      auto runner = ExperimentRunner::Create(cfg);
      if (!runner.ok()) return FailWith(runner.status());
      std::fprintf(stderr, "[table7] %s / %s ...\n",
                   BaseModelName(model).c_str(), size_names[i]);
      double small =
          (*runner)->Run(Method::kAllSmall).final_eval.overall.ndcg;
      double large =
          (*runner)->Run(Method::kAllLarge).final_eval.overall.ndcg;
      double hete =
          (*runner)->Run(Method::kHeteFedRec).final_eval.overall.ndcg;
      table.AddRow({BaseModelName(model), size_names[i],
                    TablePrinter::Num(small), TablePrinter::Num(large),
                    TablePrinter::Num(hete),
                    TablePrinter::Num(paper_rows[i].small),
                    TablePrinter::Num(paper_rows[i].large),
                    TablePrinter::Num(paper_rows[i].hete)});
      if (i == 1) middle_hete_best = (hete > small && hete > large);
    }
    table.AddSeparator();
    std::printf(
        "%s shape check: HeteFedRec beats both homogeneous baselines at "
        "{8,16,32}: %s (paper: yes)\n",
        BaseModelName(model).c_str(), middle_hete_best ? "YES" : "NO");
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "table7_modelsize"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
