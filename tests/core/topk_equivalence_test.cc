// Batched-top-K equivalence: `use_batched_topk` (on by default) switches
// evaluation to the fused streaming selector / bucketed cascade of
// src/eval/topk.h, and must be *bit-identical* to the partial_sort
// reference across the full pipeline for all seven methods and both base
// models — in full-catalogue mode (the paper's protocol, exercising the
// fused StreamScoreFn path through trainer and standalone) and in
// candidate-sliced mode (the cascade path). Top-K selection only reads
// model parameters, so this pins the evaluation path itself: every
// per-epoch history point and the final grouped metrics.
//
// Registered under ctest as core_topk_equivalence_test — the CI smoke for
// the use_batched_topk toggle.
#include <gtest/gtest.h>

#include "src/core/trainer.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.eval_every = 1;  // compare every epoch's evaluation, not just the last
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 91;
  return cfg;
}

class TopKEquivalenceEndToEnd : public ::testing::TestWithParam<BaseModel> {};

TEST_P(TopKEquivalenceEndToEnd, AllMethodsMatchPartialSortReference) {
  for (Method method : kAllMethods) {
    ExperimentConfig ref_cfg = SmallConfig();
    ref_cfg.base_model = GetParam();
    ref_cfg.use_batched_topk = false;
    ExperimentConfig batched_cfg = SmallConfig();
    batched_cfg.base_model = GetParam();
    batched_cfg.use_batched_topk = true;

    auto ref_runner = ExperimentRunner::Create(ref_cfg);
    auto batched_runner = ExperimentRunner::Create(batched_cfg);
    ASSERT_TRUE(ref_runner.ok());
    ASSERT_TRUE(batched_runner.ok());
    ExperimentResult ref_res = (*ref_runner)->Run(method);
    ExperimentResult batched_res = (*batched_runner)->Run(method);

    SCOPED_TRACE(MethodName(method));
    ExpectSameEval(ref_res.final_eval, batched_res.final_eval);
    ASSERT_EQ(ref_res.history.size(), batched_res.history.size());
    for (size_t i = 0; i < ref_res.history.size(); ++i) {
      ExpectSameEval(ref_res.history[i].eval, batched_res.history[i].eval);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, TopKEquivalenceEndToEnd,
                         ::testing::Values(BaseModel::kNcf,
                                           BaseModel::kLightGcn));

TEST(TopKEquivalence, CandidateModeSelectorMatchesReference) {
  // Candidate-sliced evaluation routes through SelectFromCandidates (the
  // bounded heap at the default top_k=20, the cascade at large k).
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    ExperimentConfig ref_cfg = SmallConfig();
    ref_cfg.base_model = model;
    ref_cfg.eval_candidate_sample = 256;
    ref_cfg.use_batched_topk = false;
    ExperimentConfig batched_cfg = ref_cfg;
    batched_cfg.use_batched_topk = true;

    auto ref_runner = ExperimentRunner::Create(ref_cfg);
    auto batched_runner = ExperimentRunner::Create(batched_cfg);
    ASSERT_TRUE(ref_runner.ok());
    ASSERT_TRUE(batched_runner.ok());
    SCOPED_TRACE(BaseModelName(model));
    ExpectSameEval((*ref_runner)->Run(Method::kHeteFedRec).final_eval,
                   (*batched_runner)->Run(Method::kHeteFedRec).final_eval);
  }
}

TEST(TopKEquivalence, ScalarScoringCombinesWithBatchedTopK) {
  // The two toggles are independent: per-sample reference scoring feeding
  // the streaming selector must still match the all-reference run.
  ExperimentConfig ref_cfg = SmallConfig();
  ref_cfg.use_batched_scoring = false;
  ref_cfg.use_batched_topk = false;
  ExperimentConfig mixed_cfg = SmallConfig();
  mixed_cfg.use_batched_scoring = false;
  mixed_cfg.use_batched_topk = true;

  auto ref_runner = ExperimentRunner::Create(ref_cfg);
  auto mixed_runner = ExperimentRunner::Create(mixed_cfg);
  ASSERT_TRUE(ref_runner.ok());
  ASSERT_TRUE(mixed_runner.ok());
  ExpectSameEval((*ref_runner)->Run(Method::kHeteFedRec).final_eval,
                 (*mixed_runner)->Run(Method::kHeteFedRec).final_eval);
}

}  // namespace
}  // namespace hetefedrec
