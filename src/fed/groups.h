// Quantile-based division of clients into Us / Um / Ul.
//
// Table I's "< 50%" and "< 80%" columns are exactly the thresholds the paper
// uses for its default 5:3:2 division: the half of users with the fewest
// interactions form Us, the next 30% Um, the rest Ul. Generalized here to
// arbitrary fractions (Table VI sweeps 5:3:2, 1:1:1, 2:3:5).
#ifndef HETEFEDREC_FED_GROUPS_H_
#define HETEFEDREC_FED_GROUPS_H_

#include <array>
#include <vector>

#include "src/data/dataset.h"
#include "src/fed/group.h"
#include "src/util/status.h"

namespace hetefedrec {

/// \brief Result of dividing clients by interaction count.
struct GroupAssignment {
  /// Group of each user, indexed by UserId.
  std::vector<Group> group_of;
  /// Number of users per group.
  std::array<size_t, kNumGroups> sizes = {0, 0, 0};
  /// Interaction-count thresholds implied by the division: users with count
  /// <= thresholds[0] are (mostly) small, <= thresholds[1] medium.
  std::array<double, 2> thresholds = {0.0, 0.0};

  size_t size(Group g) const { return sizes[static_cast<int>(g)]; }
  Group of(UserId u) const { return group_of[u]; }
};

/// Divides users into groups with proportions fractions = {fs, fm, fl}
/// (normalized internally) by ascending interaction count; ties broken by
/// user id so the assignment is deterministic and the proportions exact.
StatusOr<GroupAssignment> AssignGroups(const Dataset& ds,
                                       const std::array<double, 3>& fractions);

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_GROUPS_H_
