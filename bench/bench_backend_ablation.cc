// fp32-vs-fp64 backend ablation: for every grid cell (base model ×
// dataset), runs HeteFedRec once per compute backend and tabulates the
// final metrics, the metric drift against the fp64 reference, and the
// wall-clock speedup. Expected shape: |ΔNDCG| and |ΔRecall| within the
// 1e-3 tolerance contract (tests/core/backend_equivalence_test.cc pins
// this at test scale), fp32 == fp32_simd exactly, and fp32_simd the
// fastest arm on AVX2 hardware.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/math/backend.h"
#include "src/util/table_printer.h"
#include "src/util/timer.h"

namespace hetefedrec::bench {
namespace {

constexpr ComputeBackend kBackends[] = {
    ComputeBackend::kFp64, ComputeBackend::kFp32, ComputeBackend::kFp32Simd};

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  TablePrinter table("Backend ablation: fp32/SIMD vs the fp64 reference",
                     {"Model", "Dataset", "Backend", "Recall", "NDCG",
                      "dNDCG", "Seconds", "Speedup"});

  int cells = 0, within_tol = 0, simd_matches_fp32 = 0, simd_fastest = 0;
  double max_drift = 0.0;
  for (const GridCase& cell : EvaluationGrid(cli)) {
    double fp64_ndcg = 0.0, fp64_recall = 0.0, fp64_seconds = 0.0;
    double fp32_ndcg = 0.0, simd_ndcg = 0.0;
    double fp32_seconds = 0.0, simd_seconds = 0.0;
    for (ComputeBackend backend : kBackends) {
      ExperimentConfig cfg = *base_cfg;
      cfg.base_model = cell.model;
      cfg.dataset = cell.dataset;
      ApplyPaperDims(&cfg);
      cfg.compute_backend = backend;
      auto runner = ExperimentRunner::Create(cfg);
      if (!runner.ok()) return FailWith(runner.status());
      std::fprintf(stderr, "[backend] %s / %s / %s ...\n",
                   BaseModelName(cell.model).c_str(), cell.dataset.c_str(),
                   ComputeBackendName(backend).c_str());
      const Timer timer;
      GroupedEval eval = (*runner)->Run(Method::kHeteFedRec).final_eval;
      const double seconds = timer.Seconds();
      const bool is_ref = backend == ComputeBackend::kFp64;
      if (is_ref) {
        fp64_ndcg = eval.overall.ndcg;
        fp64_recall = eval.overall.recall;
        fp64_seconds = seconds;
      } else if (backend == ComputeBackend::kFp32) {
        fp32_ndcg = eval.overall.ndcg;
        fp32_seconds = seconds;
      } else {
        simd_ndcg = eval.overall.ndcg;
        simd_seconds = seconds;
      }
      const double drift = eval.overall.ndcg - fp64_ndcg;
      max_drift = std::max(
          max_drift, std::max(std::fabs(drift),
                              std::fabs(eval.overall.recall - fp64_recall)));
      table.AddRow({BaseModelName(cell.model), cell.dataset,
                    ComputeBackendName(backend),
                    TablePrinter::Num(eval.overall.recall),
                    TablePrinter::Num(eval.overall.ndcg),
                    is_ref ? "-" : TablePrinter::Num(drift),
                    TablePrinter::Num(seconds),
                    is_ref ? "1.00x"
                           : TablePrinter::Num(fp64_seconds / seconds) + "x"});
    }
    table.AddSeparator();

    cells++;
    within_tol += (std::fabs(fp32_ndcg - fp64_ndcg) <= 1e-3 &&
                   std::fabs(simd_ndcg - fp64_ndcg) <= 1e-3);
    simd_matches_fp32 += (simd_ndcg == fp32_ndcg);
    simd_fastest +=
        (simd_seconds <= fp64_seconds && simd_seconds <= fp32_seconds);
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "backend_ablation"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  std::printf(
      "\nShape checks:\n"
      "  fp32 within 1e-3 NDCG of fp64:  %d/%d cells (contract: all)\n"
      "  fp32_simd == fp32 exactly:      %d/%d cells (contract: all)\n"
      "  fp32_simd is the fastest arm:   %d/%d cells (AVX2 hardware: all)\n"
      "  max |metric drift|:             %.6f\n",
      within_tol, cells, simd_matches_fp32, cells, simd_fastest, cells,
      max_drift);
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
