#include "src/math/backend.h"

#include <atomic>

#include "src/util/logging.h"

namespace hetefedrec {

namespace {

std::atomic<bool> g_fp32_simd_enabled{false};

}  // namespace

StatusOr<ComputeBackend> ComputeBackendByName(const std::string& name) {
  if (name == "fp64") return ComputeBackend::kFp64;
  if (name == "fp32") return ComputeBackend::kFp32;
  if (name == "fp32_simd") return ComputeBackend::kFp32Simd;
  return Status::InvalidArgument("unknown compute backend '" + name +
                                 "' (expected fp64|fp32|fp32_simd)");
}

std::string ComputeBackendName(ComputeBackend backend) {
  switch (backend) {
    case ComputeBackend::kFp64:
      return "fp64";
    case ComputeBackend::kFp32:
      return "fp32";
    case ComputeBackend::kFp32Simd:
      return "fp32_simd";
  }
  return "fp64";
}

bool CpuSupportsFp32Simd() {
#if defined(HFR_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

void SetFp32SimdEnabled(bool enabled) {
  g_fp32_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool Fp32SimdEnabled() {
  return g_fp32_simd_enabled.load(std::memory_order_relaxed);
}

bool ActivateBackend(ComputeBackend backend) {
  if (backend != ComputeBackend::kFp32Simd) {
    SetFp32SimdEnabled(false);
    return true;
  }
  if (CpuSupportsFp32Simd()) {
    SetFp32SimdEnabled(true);
    return true;
  }
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    HFR_LOG(Warning) << "compute_backend=fp32_simd requested but AVX2+FMA is "
                        "unavailable (CPU or build); running the scalar fp32 "
                        "kernels — results are bit-identical, only slower";
  }
  SetFp32SimdEnabled(false);
  return false;
}

}  // namespace hetefedrec
