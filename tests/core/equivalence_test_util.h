// Shared assertion for the equivalence suites (sparse/batched/delta/async):
// two runs' grouped evaluations must agree bit-for-bit, overall and per
// group. Kept in one header so a new GroupedEval field is added to the
// pinning exactly once.
#ifndef HETEFEDREC_TESTS_CORE_EQUIVALENCE_TEST_UTIL_H_
#define HETEFEDREC_TESTS_CORE_EQUIVALENCE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "src/eval/evaluator.h"

namespace hetefedrec {

inline void ExpectSameEval(const GroupedEval& a, const GroupedEval& b) {
  EXPECT_EQ(a.overall.recall, b.overall.recall);
  EXPECT_EQ(a.overall.ndcg, b.overall.ndcg);
  EXPECT_EQ(a.overall.users, b.overall.users);
  for (int g = 0; g < kNumGroups; ++g) {
    EXPECT_EQ(a.per_group[g].recall, b.per_group[g].recall);
    EXPECT_EQ(a.per_group[g].ndcg, b.per_group[g].ndcg);
  }
}

}  // namespace hetefedrec

#endif  // HETEFEDREC_TESTS_CORE_EQUIVALENCE_TEST_UTIL_H_
