// Top-K ranking evaluation over the full catalogue.
//
// Protocol (§V-A/B): for each user, score every item the user has not
// trained on, take the top-20, and compute Recall@20 / NDCG@20 against the
// held-out 20% test interactions. Reported overall and per client group
// (Fig. 6 breaks NDCG down by Us/Um/Ul).
//
// Users are independent, so evaluation parallelizes over them: the
// ThreadPool overload computes per-user metrics into per-index slots and
// reduces them serially in user order, making the result bit-identical for
// every thread count (asserted by tests/eval/evaluator_test.cc).
#ifndef HETEFEDREC_EVAL_EVALUATOR_H_
#define HETEFEDREC_EVAL_EVALUATOR_H_

#include <array>
#include <functional>
#include <vector>

#include "src/data/dataset.h"
#include "src/fed/group.h"
#include "src/fed/groups.h"

namespace hetefedrec {

class ThreadPool;

/// \brief Mean metrics over a set of users.
struct EvalResult {
  double recall = 0.0;
  double ndcg = 0.0;
  size_t users = 0;  // users contributing (non-empty test set)
};

/// \brief Overall + per-group evaluation.
struct GroupedEval {
  EvalResult overall;
  std::array<EvalResult, kNumGroups> per_group;

  const EvalResult& group(Group g) const {
    return per_group[static_cast<int>(g)];
  }
};

/// \brief Runs the ranking protocol against a scoring callback.
class Evaluator {
 public:
  /// Scores all items for a user: fills `scores` (resized to num_items).
  using ScoreFn =
      std::function<void(UserId user, std::vector<double>* scores)>;

  /// Like ScoreFn, with the executing thread's slot (< pool->num_slots(),
  /// or 0 when serial) so callers can keep per-thread scorer scratch. Must
  /// be safe to invoke concurrently for distinct users on distinct slots.
  using ThreadedScoreFn = std::function<void(
      UserId user, size_t thread_slot, std::vector<double>* scores)>;

  /// \param ds dataset (test sets + train masks).
  /// \param assignment client group division (for the per-group breakdown).
  /// \param top_k recommendation list length (paper: 20).
  /// \param user_sample evaluate only this many users (0 = all); users are
  ///   drawn deterministically from `seed` so curves are comparable across
  ///   epochs and methods.
  Evaluator(const Dataset& ds, const GroupAssignment& assignment,
            size_t top_k = 20, size_t user_sample = 0, uint64_t seed = 9177);

  /// Evaluates `score_fn` over the (sampled) user population, serially.
  GroupedEval Evaluate(const ScoreFn& score_fn) const;

  /// Parallel evaluation over users. `pool` may be null (serial). Result is
  /// bit-identical to the serial overload for any thread count.
  GroupedEval Evaluate(const ThreadedScoreFn& score_fn,
                       ThreadPool* pool) const;

  const std::vector<UserId>& eval_users() const { return users_; }

 private:
  const Dataset& ds_;
  const GroupAssignment& assignment_;
  size_t top_k_;
  std::vector<UserId> users_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_EVAL_EVALUATOR_H_
