// Telemetry bundle: one object tying the metrics registry, the virtual-clock
// trace recorder and the JSONL metrics stream together for a run.
//
// The federated executor owns one Telemetry when any of --metrics_out,
// --trace_out or --profile is set (and none otherwise — the null pointer is
// the telemetry-off fast path). All writes happen on the deterministic
// round/merge thread except Counter bumps, which are order-free; see
// docs/OBSERVABILITY.md for the full determinism contract and the stream
// schema (meta / round / eval / summary / profile row types).
#ifndef HETEFEDREC_UTIL_TELEMETRY_TELEMETRY_H_
#define HETEFEDREC_UTIL_TELEMETRY_TELEMETRY_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/util/status.h"
#include "src/util/telemetry/json.h"
#include "src/util/telemetry/metrics.h"
#include "src/util/telemetry/profiler.h"
#include "src/util/telemetry/trace.h"

namespace hetefedrec {

struct TelemetryOptions {
  std::string metrics_path;  // per-round JSONL stream ("" = off)
  std::string trace_path;    // Chrome trace JSON ("" = off)
  bool profile = false;      // RAII phase profiling
};

class Telemetry {
 public:
  /// Opens the metrics stream eagerly so a bad path fails at startup, not
  /// after a long run.
  static StatusOr<std::unique_ptr<Telemetry>> Create(
      const TelemetryOptions& options);

  ~Telemetry();

  bool metrics_on() const { return metrics_file_ != nullptr; }
  bool trace_on() const { return trace_ != nullptr; }
  bool profile_on() const { return options_.profile; }

  MetricsRegistry* registry() { return &registry_; }
  /// Null when --trace_out is unset.
  TraceRecorder* trace() { return trace_.get(); }

  /// Writes one metrics row (a rendered JSON object) plus newline.
  /// No-op when the metrics stream is off.
  void WriteRow(const std::string& json);

  /// Flushes the metrics stream and writes the trace file. Safe to call
  /// more than once; the destructor calls it as a backstop.
  Status Flush();

 private:
  explicit Telemetry(const TelemetryOptions& options);

  TelemetryOptions options_;
  MetricsRegistry registry_;
  std::FILE* metrics_file_ = nullptr;
  bool trace_written_ = false;
  std::unique_ptr<TraceRecorder> trace_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_TELEMETRY_TELEMETRY_H_
