// 32-byte–aligned storage for numeric containers.
//
// The fp32/SIMD kernel backend (src/math/backend.h) loads 8-lane AVX2
// vectors straight out of Matrix rows and kernel block scratch; allocating
// every numeric buffer on a 32-byte boundary lets those loads start aligned
// (and keeps rows from straddling cache lines for the narrow FFN widths).
// std::vector's default allocator only guarantees alignof(double), so the
// containers use this allocator instead. The alignment is a pure storage
// property: element values, iteration order and vector semantics are
// untouched, so swapping it in changes no results.
#ifndef HETEFEDREC_MATH_ALIGNED_H_
#define HETEFEDREC_MATH_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace hetefedrec {

/// Alignment (bytes) of every numeric buffer: one full AVX2 vector.
inline constexpr size_t kSimdAlign = 32;

/// \brief Minimal C++17 allocator handing out kSimdAlign-aligned memory.
template <typename T>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): allocator rebinding
  // requires the implicit AlignedAllocator<U> -> AlignedAllocator<T>
  // conversion (std::allocator_traits does it without a cast).
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kSimdAlign)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(kSimdAlign));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// Vector whose buffer starts on a kSimdAlign boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_ALIGNED_H_
