// Reproduces Fig. 7: NDCG@20 vs training epoch on ML for All Small,
// All Large and HeteFedRec, with both base models.
//
// Paper shape: All Small converges fastest; HeteFedRec converges at a pace
// comparable to All Large but to a higher plateau.
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

std::string Sparkline(const std::vector<double>& ys, double peak) {
  // Coarse ASCII trend: one character per epoch, height 0..9.
  std::string out;
  for (double y : ys) {
    int h = peak > 0 ? static_cast<int>(9.0 * y / peak) : 0;
    out.push_back(static_cast<char>('0' + std::clamp(h, 0, 9)));
  }
  return out;
}

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  const Method methods[] = {Method::kAllSmall, Method::kAllLarge,
                            Method::kHeteFedRec};

  TablePrinter table("Fig. 7: NDCG@20 per epoch on ML",
                     {"Model", "Method", "Epoch", "NDCG", "Recall"});

  std::string only_model = cli.GetString("model");
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    if (!only_model.empty() &&
        only_model != (model == BaseModel::kNcf ? "ncf" : "lightgcn")) {
      continue;
    }
    ExperimentConfig cfg = *base_cfg;
    cfg.base_model = model;
    cfg.dataset = "ml";
    ApplyPaperDims(&cfg);
    cfg.eval_every = 1;

    auto runner = ExperimentRunner::Create(cfg);
    if (!runner.ok()) return FailWith(runner.status());

    std::printf("%s on ML (%d epochs):\n", BaseModelName(model).c_str(),
                cfg.global_epochs);
    double peak = 0.0;
    std::vector<std::pair<Method, std::vector<double>>> curves;
    for (Method m : methods) {
      std::fprintf(stderr, "[fig7] %s / %s ...\n",
                   BaseModelName(model).c_str(), MethodName(m).c_str());
      ExperimentResult r = (*runner)->Run(m);
      std::vector<double> ys;
      for (const EpochPoint& p : r.history) {
        table.AddRow({BaseModelName(model), MethodName(m),
                      std::to_string(p.epoch),
                      TablePrinter::Num(p.eval.overall.ndcg),
                      TablePrinter::Num(p.eval.overall.recall)});
        ys.push_back(p.eval.overall.ndcg);
        peak = std::max(peak, p.eval.overall.ndcg);
      }
      curves.emplace_back(m, std::move(ys));
    }
    for (auto& [m, ys] : curves) {
      std::printf("  %-20s |%s| final %.5f\n", MethodName(m).c_str(),
                  Sparkline(ys, peak).c_str(), ys.empty() ? 0.0 : ys.back());
    }
    table.AddSeparator();
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "fig7_convergence"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
