#include "src/data/stream.h"

#include <algorithm>
#include <cmath>

#include "src/util/logging.h"

namespace hetefedrec {

ClientStream::ClientStream(const StreamConfig& config)
    : config_(config), root_(config.seed) {
  HFR_CHECK_GT(config_.num_users, 0u);
  HFR_CHECK_GT(config_.num_items, 0u);
  HFR_CHECK_GT(config_.size_exponent, 0.0);
  HFR_CHECK_GT(config_.min_items_per_user, 0u);
  HFR_CHECK_GE(config_.max_items_per_user, config_.min_items_per_user);
  // A user draws at most max_items_per_user *distinct* items; rejection
  // sampling needs the catalogue to be comfortably larger than the draw.
  HFR_CHECK_LE(config_.max_items_per_user * 2, config_.num_items);

  pop_cdf_.resize(config_.num_items);
  double total = 0.0;
  for (size_t r = 0; r < config_.num_items; ++r) {
    total += std::pow(static_cast<double>(r + 1),
                      -config_.popularity_exponent);
    pop_cdf_[r] = total;
  }
  const double inv = 1.0 / total;
  for (double& v : pop_cdf_) v *= inv;
  pop_cdf_.back() = 1.0;  // guard against accumulated rounding
}

uint32_t ClientStream::SampleItem(Rng* rng) const {
  const double u = rng->Uniform();
  const auto it = std::upper_bound(pop_cdf_.begin(), pop_cdf_.end(), u);
  const size_t rank =
      it == pop_cdf_.end() ? pop_cdf_.size() - 1
                           : static_cast<size_t>(it - pop_cdf_.begin());
  return static_cast<uint32_t>(rank);
}

size_t ClientStream::SampleCount(UserId u) const {
  // Separate fork stream (2u) from the item stream (2u+1) so tests can fit
  // the count distribution without replaying item draws.
  Rng rng = root_.Fork(2 * static_cast<uint64_t>(u));
  // Pareto inverse CDF; 1 - Uniform() is in (0, 1], so the pow is finite.
  const double tail = 1.0 - rng.Uniform();
  const double count = static_cast<double>(config_.min_items_per_user) *
                       std::pow(tail, -1.0 / config_.size_exponent);
  const double capped =
      std::min(count, static_cast<double>(config_.max_items_per_user));
  return static_cast<size_t>(capped);
}

StreamClient ClientStream::Get(UserId u) const {
  HFR_CHECK_LT(static_cast<size_t>(u), config_.num_users);
  StreamClient client;
  client.user = u;
  const size_t count = SampleCount(u);

  Rng rng = root_.Fork(2 * static_cast<uint64_t>(u) + 1);
  client.items.reserve(count);
  // Rejection-sample distinct items. The draw is <= max_items_per_user and
  // the catalogue is >= 2x that, so the expected rejection rate is bounded
  // even if every draw landed in the head.
  while (client.items.size() < count) {
    const uint32_t item = SampleItem(&rng);
    const auto it =
        std::lower_bound(client.items.begin(), client.items.end(), item);
    if (it != client.items.end() && *it == item) continue;
    client.items.insert(it, item);
  }
  return client;
}

}  // namespace hetefedrec
