#include "src/math/sparse.h"

#include <algorithm>

namespace hetefedrec {

template <typename T>
void SparseRowStoreT<T>::Reset(size_t num_rows, size_t cols) {
  // pos_ maps row -> packed index independently of the column stride, so a
  // width change is still an O(touched) reset; only a row-count change
  // pays for a fresh table. This matters when one store serves clients of
  // interleaved widths over a large catalogue.
  if (num_rows == num_rows_) {
    Clear();
  } else {
    num_rows_ = num_rows;
    pos_.assign(num_rows, -1);
    rows_.clear();
    data_.clear();
  }
  cols_ = cols;
}

template <typename T>
void SparseRowStoreT<T>::Clear() {
  for (uint32_t r : rows_) pos_[r] = -1;
  rows_.clear();
  data_.clear();
}

template <typename T>
T* SparseRowStoreT<T>::EnsureRow(size_t r) {
  HFR_CHECK_LT(r, num_rows_);
  int64_t p = pos_[r];
  if (p < 0) {
    p = static_cast<int64_t>(rows_.size());
    pos_[r] = p;
    rows_.push_back(static_cast<uint32_t>(r));
    data_.resize(data_.size() + cols_, T(0));
  }
  return data_.data() + static_cast<size_t>(p) * cols_;
}

template <typename T>
void SparseRowStoreT<T>::Snapshot(std::vector<uint32_t>* rows,
                                  std::vector<T>* data) const {
  rows->assign(rows_.begin(), rows_.end());
  data->assign(data_.begin(), data_.end());
}

template <typename T>
void SparseRowStoreT<T>::Restore(const std::vector<uint32_t>& rows,
                                 const std::vector<T>& data) {
  HFR_CHECK_EQ(data.size(), rows.size() * cols_);
  Clear();
  rows_.assign(rows.begin(), rows.end());
  data_.assign(data.begin(), data.end());
  for (size_t k = 0; k < rows_.size(); ++k) {
    HFR_CHECK_LT(rows_[k], num_rows_);
    pos_[rows_[k]] = static_cast<int64_t>(k);
  }
}

template class SparseRowStoreT<double>;
template class SparseRowStoreT<float>;

template <typename T>
void RowOverlayTableT<T>::Reset(const Matrix* base) {
  HFR_CHECK(base != nullptr);
  base_ = base;
  local_.Reset(base->rows(), base->cols());
  if constexpr (std::is_same_v<T, float>) {
    read_cache_.Reset(base->rows(), base->cols());
  }
}

template <typename T>
T* RowOverlayTableT<T>::MutableRow(size_t r) {
  const bool fresh = !local_.Has(r);
  T* p = local_.EnsureRow(r);
  if (fresh) {
    const double* src = base_->Row(r);
    for (size_t c = 0; c < cols(); ++c) p[c] = static_cast<T>(src[c]);
  }
  return p;
}

template <typename T>
const T* RowOverlayTableT<T>::CachedBaseRow(size_t r) const {
  const T* cached = read_cache_.RowOrNull(r);
  if (cached != nullptr) return cached;
  T* p = read_cache_.EnsureRow(r);
  const double* src = base_->Row(r);
  for (size_t c = 0; c < cols(); ++c) p[c] = static_cast<T>(src[c]);
  return p;
}

template class RowOverlayTableT<double>;
template class RowOverlayTableT<float>;

void SparseRowUpdate::AddScaledTo(Matrix* dst, double scale) const {
  HFR_CHECK_GE(dst->cols(), width);
  for (size_t k = 0; k < rows.size(); ++k) {
    HFR_CHECK_LT(rows[k], dst->rows());
    Axpy(scale, RowData(k), dst->Row(rows[k]), width);
  }
}

Matrix SparseRowUpdate::ToDense(size_t num_rows) const {
  Matrix out(num_rows, width);
  for (size_t k = 0; k < rows.size(); ++k) {
    HFR_CHECK_LT(rows[k], num_rows);
    const double* src = RowData(k);
    std::copy(src, src + width, out.Row(rows[k]));
  }
  return out;
}

SparseRowUpdate SparseRowUpdate::FromDense(const Matrix& dense) {
  SparseRowUpdate out;
  out.width = dense.cols();
  for (size_t r = 0; r < dense.rows(); ++r) {
    const double* row = dense.Row(r);
    bool nonzero = false;
    for (size_t c = 0; c < dense.cols(); ++c) {
      if (row[c] != 0.0) {
        nonzero = true;
        break;
      }
    }
    if (nonzero) {
      out.rows.push_back(static_cast<uint32_t>(r));
      out.data.insert(out.data.end(), row, row + dense.cols());
    }
  }
  return out;
}

}  // namespace hetefedrec
