// Top-K ranking evaluation over the full catalogue or a candidate slice.
//
// Protocol (§V-A/B): for each user, score every item the user has not
// trained on, take the top-20, and compute Recall@20 / NDCG@20 against the
// held-out 20% test interactions. Reported overall and per client group
// (Fig. 6 breaks NDCG down by Us/Um/Ul).
//
// Users are independent, so evaluation parallelizes over them: the
// ThreadPool overloads compute per-user metrics into per-index slots and
// reduce them serially in user order, making the result bit-identical for
// every thread count (asserted by tests/eval/evaluator_test.cc).
//
// Candidate-sliced evaluation (`candidate_sample > 0`) scores only each
// user's test items plus a seeded sample of never-interacted negative
// candidates (He et al.'s sampled-candidate protocol) instead of the whole
// catalogue — O(test + candidates) per user instead of O(items). It is off
// by default so the paper's full-ranking metrics are unchanged; when on,
// the candidate top-K equals the full top-K restricted to the candidate
// set (same ordering — pinned by tests/eval/evaluator_test.cc).
#ifndef HETEFEDREC_EVAL_EVALUATOR_H_
#define HETEFEDREC_EVAL_EVALUATOR_H_

#include <array>
#include <functional>
#include <vector>

#include "src/data/dataset.h"
#include "src/fed/group.h"
#include "src/fed/groups.h"
#include "src/util/rng.h"

namespace hetefedrec {

class ThreadPool;

/// \brief Mean metrics over a set of users.
struct EvalResult {
  double recall = 0.0;
  double ndcg = 0.0;
  size_t users = 0;  // users contributing (non-empty test set)
};

/// \brief Overall + per-group evaluation.
struct GroupedEval {
  EvalResult overall;
  std::array<EvalResult, kNumGroups> per_group;

  const EvalResult& group(Group g) const {
    return per_group[static_cast<int>(g)];
  }
};

/// \brief Runs the ranking protocol against a scoring callback.
class Evaluator {
 public:
  /// Scores all items for a user: fills `scores` (resized to num_items).
  using ScoreFn =
      std::function<void(UserId user, std::vector<double>* scores)>;

  /// Like ScoreFn, with the executing thread's slot (< pool->num_slots(),
  /// or 0 when serial) so callers can keep per-thread scorer scratch. Must
  /// be safe to invoke concurrently for distinct users on distinct slots.
  using ThreadedScoreFn = std::function<void(
      UserId user, size_t thread_slot, std::vector<double>* scores)>;

  /// Scores an explicit item-id list for a user: writes ids.size() logits
  /// into `out`, out[i] scoring ids[i]. The evaluator passes the full
  /// catalogue span in full mode and the user's candidate slice in
  /// candidate mode, so one callback (typically Scorer::ScoreBatch) serves
  /// both. Same concurrency contract as ThreadedScoreFn.
  using BatchScoreFn = std::function<void(
      UserId user, size_t thread_slot, const std::vector<ItemId>& ids,
      double* out)>;

  /// \param ds dataset (test sets + train masks).
  /// \param assignment client group division (for the per-group breakdown).
  /// \param top_k recommendation list length (paper: 20).
  /// \param user_sample evaluate only this many users (0 = all); users are
  ///   drawn deterministically from `seed` so curves are comparable across
  ///   epochs and methods.
  /// \param candidate_sample negative candidates per user for
  ///   candidate-sliced evaluation; 0 = rank the full catalogue. Candidate
  ///   draws are seeded per user, independent of thread count.
  Evaluator(const Dataset& ds, const GroupAssignment& assignment,
            size_t top_k = 20, size_t user_sample = 0, uint64_t seed = 9177,
            size_t candidate_sample = 0);

  /// Evaluates `score_fn` over the (sampled) user population, serially.
  /// Full-catalogue mode only (ignores candidate_sample).
  GroupedEval Evaluate(const ScoreFn& score_fn) const;

  /// Parallel evaluation over users. `pool` may be null (serial). Result is
  /// bit-identical to the serial overload for any thread count.
  /// Full-catalogue mode only (ignores candidate_sample).
  GroupedEval Evaluate(const ThreadedScoreFn& score_fn,
                       ThreadPool* pool) const;

  /// Parallel evaluation through the id-list callback: full-catalogue
  /// ranking when candidate_sample is 0 (bit-identical to the
  /// ThreadedScoreFn overload given the same per-item scores), the
  /// candidate slice otherwise.
  GroupedEval Evaluate(const BatchScoreFn& score_fn, ThreadPool* pool) const;

  /// The candidate id list for `u`: test items plus `candidate_sample`
  /// seeded never-interacted negatives, ascending and duplicate-free.
  /// Exposed for the candidate-vs-full pinning test.
  std::vector<ItemId> CandidateItems(UserId u) const;

  const std::vector<UserId>& eval_users() const { return users_; }
  size_t candidate_sample() const { return candidate_sample_; }

 private:
  template <typename PerUserFn>
  GroupedEval Reduce(const PerUserFn& eval_user, ThreadPool* pool) const;

  const Dataset& ds_;
  const GroupAssignment& assignment_;
  size_t top_k_;
  size_t candidate_sample_;
  Rng candidate_root_;  // forked per user for candidate draws
  std::vector<UserId> users_;
  std::vector<ItemId> all_items_;  // iota span for full-mode BatchScoreFn
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_EVAL_EVALUATOR_H_
