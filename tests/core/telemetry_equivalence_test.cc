// Telemetry end to end: the observation layer must never perturb a run
// (telemetry-on is bit-identical to telemetry-off), its metrics stream and
// trace file must be a pure function of the config (seed- and thread-count
// deterministic, byte for byte), and the virtual-clock trace must be
// monotone in simulated time with the async drop/merge events present.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/core/trainer.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  return cfg;
}

/// Straggler-heavy async shape: many clients in flight over a noisy
/// network with a tight staleness cap, so merges interleave with drops.
ExperimentConfig StragglerAsyncConfig() {
  ExperimentConfig cfg = SmallConfig();
  cfg.async_mode = true;
  cfg.clients_per_round = 8;
  cfg.async_inflight = 64;
  cfg.async_max_staleness = 4;
  cfg.net_bandwidth_sigma = 1.0;
  cfg.net_latency_sigma = 0.3;
  return cfg;
}

ExperimentResult RunWith(const ExperimentConfig& cfg, Method method) {
  auto runner = ExperimentRunner::Create(cfg);
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  return (*runner)->Run(method);
}

void ExpectSameRun(const ExperimentResult& a, const ExperimentResult& b) {
  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.comm.TotalTransmitted(), b.comm.TotalTransmitted());
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(a.comm.ExportCounters(), b.comm.ExportCounters());
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (!f) return "";
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// Extracts the numeric value of `"key":<number>` from a JSON line, or
/// false when the key is absent.
bool FindNumber(const std::string& line, const std::string& key,
                double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

// The compiled-in hooks must be invisible when no flag is set AND when all
// of them are set: telemetry writes files but never touches an RNG stream,
// the virtual clock or any trained value.
TEST(TelemetryEquivalence, TelemetryOnIsBitIdenticalToOff) {
  for (bool async : {false, true}) {
    ExperimentConfig off = SmallConfig();
    off.async_mode = async;
    ExperimentConfig on = off;
    on.metrics_out = TempPath(async ? "tel_on_a.jsonl" : "tel_on_s.jsonl");
    on.trace_out = TempPath(async ? "tel_on_a.json" : "tel_on_s.json");
    on.profile = true;
    on.track_round_comm = true;

    ExperimentResult a = RunWith(off, Method::kHeteFedRec);
    ExperimentResult b = RunWith(on, Method::kHeteFedRec);
    SCOPED_TRACE(async ? "async" : "sync");
    ExpectSameRun(a, b);
    EXPECT_TRUE(a.round_comm.empty());
    EXPECT_FALSE(b.round_comm.empty());
    std::remove(on.metrics_out.c_str());
    std::remove(on.trace_out.c_str());
  }
}

// The streams themselves are deterministic: same config + seed => byte-equal
// files at 1 thread vs 4 threads, sync and async. (--profile is excluded:
// wall-clock profile rows are the one intentionally nondeterministic output.)
TEST(TelemetryEquivalence, StreamsAreThreadCountByteIdentical) {
  for (bool async : {false, true}) {
    ExperimentConfig cfg1 = SmallConfig();
    cfg1.async_mode = async;
    if (async) cfg1.async_dispatch_batch = 8;
    cfg1.metrics_out = TempPath("tel_t1.jsonl");
    cfg1.trace_out = TempPath("tel_t1.json");
    ExperimentConfig cfg4 = cfg1;
    cfg4.num_threads = 4;
    cfg4.metrics_out = TempPath("tel_t4.jsonl");
    cfg4.trace_out = TempPath("tel_t4.json");

    RunWith(cfg1, Method::kHeteFedRec);
    RunWith(cfg4, Method::kHeteFedRec);
    const std::string metrics1 = ReadFile(cfg1.metrics_out);
    const std::string metrics4 = ReadFile(cfg4.metrics_out);
    const std::string trace1 = ReadFile(cfg1.trace_out);
    const std::string trace4 = ReadFile(cfg4.trace_out);
    SCOPED_TRACE(async ? "async" : "sync");
    EXPECT_FALSE(metrics1.empty());
    EXPECT_FALSE(trace1.empty());
    EXPECT_EQ(metrics1, metrics4);
    EXPECT_EQ(trace1, trace4);

    // And seed-deterministic: a re-run reproduces the exact bytes.
    RunWith(cfg1, Method::kHeteFedRec);
    EXPECT_EQ(ReadFile(cfg1.metrics_out), metrics1);
    EXPECT_EQ(ReadFile(cfg1.trace_out), trace1);
    for (const std::string& p : {cfg1.metrics_out, cfg1.trace_out,
                                 cfg4.metrics_out, cfg4.trace_out}) {
      std::remove(p.c_str());
    }
  }
}

// The metrics stream has the documented JSONL shape: a meta header, then
// round rows with non-decreasing round index and virtual clock, then a
// summary whose totals match the run's own accounting.
TEST(TelemetryEquivalence, MetricsStreamShapeAndMonotonicity) {
  ExperimentConfig cfg = SmallConfig();
  cfg.eval_every = 1;
  cfg.metrics_out = TempPath("tel_shape.jsonl");
  const ExperimentResult r = RunWith(cfg, Method::kHeteFedRec);
  const std::vector<std::string> lines = Lines(ReadFile(cfg.metrics_out));
  ASSERT_GT(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"type\":\"meta\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"version\":1"), std::string::npos);

  double prev_round = 0.0, prev_clock = 0.0;
  size_t rounds = 0, evals = 0, summaries = 0;
  for (const std::string& line : lines) {
    double v = 0.0;
    if (line.find("\"type\":\"round\"") != std::string::npos) {
      ++rounds;
      ASSERT_TRUE(FindNumber(line, "round", &v));
      EXPECT_GT(v, prev_round);
      prev_round = v;
      ASSERT_TRUE(FindNumber(line, "clock", &v));
      EXPECT_GE(v, prev_clock);
      prev_clock = v;
    } else if (line.find("\"type\":\"eval\"") != std::string::npos) {
      ++evals;
    } else if (line.find("\"type\":\"summary\"") != std::string::npos) {
      ++summaries;
      ASSERT_TRUE(FindNumber(line, "total_scalars", &v));
      EXPECT_EQ(v, static_cast<double>(r.comm.TotalTransmitted()));
      ASSERT_TRUE(FindNumber(line, "clock", &v));
      EXPECT_EQ(v, r.simulated_seconds);
    }
  }
  EXPECT_GT(rounds, 0u);
  EXPECT_EQ(evals, static_cast<size_t>(cfg.global_epochs));
  EXPECT_EQ(summaries, 1u);
  EXPECT_EQ(lines.back().find("\"type\":\"summary\""), 1u);
  std::remove(cfg.metrics_out.c_str());
}

// The straggler-heavy async trace: virtual-time monotone event stream with
// transfer, merge AND drop events (the staleness cap must actually bite).
TEST(TelemetryEquivalence, AsyncTraceIsMonotoneWithMergeAndDropEvents) {
  ExperimentConfig cfg = StragglerAsyncConfig();
  cfg.trace_out = TempPath("tel_straggler.json");
  const ExperimentResult r = RunWith(cfg, Method::kHeteFedRec);
  EXPECT_GT(r.comm.TotalDropped(), 0u);  // the cap bites at this shape

  const std::vector<std::string> lines = Lines(ReadFile(cfg.trace_out));
  ASSERT_GT(lines.size(), 2u);
  EXPECT_NE(lines.front().find("{\"traceEvents\":["), std::string::npos);

  double prev_ts = 0.0;
  size_t merges = 0, drops = 0, transfers = 0;
  for (const std::string& line : lines) {
    if (line.find("\"ph\":\"M\"") != std::string::npos) continue;
    double ts = 0.0;
    if (!FindNumber(line, "ts", &ts)) continue;
    EXPECT_GE(ts, prev_ts) << line;  // file order == virtual-time order
    prev_ts = ts;
    if (line.find("\"name\":\"merge\"") != std::string::npos) ++merges;
    if (line.find("\"name\":\"drop\"") != std::string::npos) ++drops;
    if (line.find("\"name\":\"transfer\"") != std::string::npos) ++transfers;
  }
  EXPECT_GT(merges, 0u);
  EXPECT_GT(transfers, 0u);
  EXPECT_EQ(drops, r.comm.TotalDropped());
  std::remove(cfg.trace_out.c_str());
}

// Sync traces are monotone too, and per-round comm tracking reconciles
// with the cumulative totals.
TEST(TelemetryEquivalence, SyncTraceMonotoneAndRoundCommReconciles) {
  ExperimentConfig cfg = SmallConfig();
  cfg.trace_out = TempPath("tel_sync.json");
  cfg.track_round_comm = true;
  cfg.net_bandwidth_sigma = 1.0;  // unequal client finish times
  const ExperimentResult r = RunWith(cfg, Method::kHeteFedRec);

  double prev_ts = 0.0;
  size_t round_events = 0;
  for (const std::string& line : Lines(ReadFile(cfg.trace_out))) {
    if (line.find("\"ph\":\"M\"") != std::string::npos) continue;
    double ts = 0.0;
    if (!FindNumber(line, "ts", &ts)) continue;
    EXPECT_GE(ts, prev_ts) << line;
    prev_ts = ts;
    if (line.find("\"name\":\"round\"") != std::string::npos) ++round_events;
  }
  EXPECT_GT(round_events, 0u);
  EXPECT_EQ(round_events, r.round_comm.size());

  size_t down_params = 0, up_params = 0, uploads = 0;
  for (const CommRound& round : r.round_comm) {
    down_params += round.DownParams();
    up_params += round.UpParams();
    uploads += round.Uploads();
  }
  EXPECT_EQ(down_params + up_params, r.comm.TotalTransmitted());
  size_t total_uploads = 0;
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    total_uploads += r.comm.Participations(g);
  }
  EXPECT_EQ(uploads, total_uploads);
  std::remove(cfg.trace_out.c_str());
}

}  // namespace
}  // namespace hetefedrec
