#include "src/util/cli.h"

#include <cstdlib>
#include <sstream>

#include "src/util/logging.h"

namespace hetefedrec {

void CommandLine::AddFlag(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  flags_[name] = Flag{default_value, help};
}

Status CommandLine::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name, value;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() &&
          (it->second.value == "true" || it->second.value == "false")) {
        value = "true";  // bare boolean flag
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " missing value");
      }
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name + "\n" +
                                     Usage(argv[0]));
    }
    it->second.value = value;
  }
  return Status::OK();
}

std::string CommandLine::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  HFR_CHECK(it != flags_.end()) << "unregistered flag " << name;
  return it->second.value;
}

int CommandLine::GetInt(const std::string& name) const {
  return std::atoi(GetString(name).c_str());
}

uint64_t CommandLine::GetUint64(const std::string& name) const {
  return std::strtoull(GetString(name).c_str(), nullptr, 10);
}

double CommandLine::GetDouble(const std::string& name) const {
  return std::atof(GetString(name).c_str());
}

bool CommandLine::GetBool(const std::string& name) const {
  std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes";
}

void RegisterExperimentFlags(CommandLine* cli) {
  cli->AddFlag("seed", "7", "experiment seed");
  cli->AddFlag("agg", "mean", "server aggregation: mean | sum | weighted");
  cli->AddFlag("threads", "1",
               "round-execution threads (0 = hardware concurrency; results "
               "are identical for any value)");
  cli->AddFlag("dense_updates", "false",
               "use the dense reference client-update path instead of "
               "sparse row-touched updates");
  cli->AddFlag("scalar_scoring", "false",
               "use the per-sample reference scoring path instead of the "
               "batched kernels (bit-identical; for comparison runs)");
  cli->AddFlag("scalar_topk", "false",
               "use the per-user partial_sort reference top-K selection "
               "instead of the fused streaming selector (bit-identical; "
               "for comparison runs)");
  cli->AddFlag("eval_candidates", "0",
               "candidate-sliced evaluation: test items + N seeded "
               "negatives per user (0 = full catalogue, the paper's "
               "protocol; changes reported metrics — docs/PERFORMANCE.md)");
  cli->AddFlag("replica_cap", "0",
               "per-client LRU cap on delta-sync replica rows (0 = "
               "unlimited; evicted rows re-ship on the next subscription)");
  cli->AddFlag("sparse_comm", "false",
               "report actually-shipped (sparse/delta) scalars instead of "
               "the paper's dense accounting");
  cli->AddFlag("delta_downloads", "false",
               "row-subscription delta downloads instead of full-table "
               "downloads (bit-identical metrics; see docs/SYNC.md)");
  cli->AddFlag("availability", "1.0",
               "P(selected client is online); offline clients requeue");
  cli->AddFlag("straggler_slack", "0",
               "over-selection slack: select N extra clients per round, "
               "merge the first clients_per_round to finish (0 = "
               "deterministic protocol)");
  cli->AddFlag("round_deadline", "0",
               "simulated round deadline in seconds (0 = none)");
  cli->AddFlag("compute_backend", "fp64",
               "numeric compute backend: fp64 (bit-exact reference) | fp32 "
               "(float client math) | fp32_simd (float + AVX2 kernels)");
  cli->AddFlag("wire_format", "auto",
               "wire scalar width for byte accounting: auto | fp64 | fp32 | "
               "fp16 (auto = fp64, or fp32 when --compute_backend is fp32*)");
  cli->AddFlag("server_shards", "0",
               "item-range parameter-server shards (0 = single-table "
               "server; any S is bit-identical — docs/SYNC.md "
               "\"Sharding\")");
  cli->AddFlag("net_bandwidth", "1.25e6",
               "median client bandwidth, bytes/second");
  cli->AddFlag("net_bandwidth_sigma", "0",
               "log-normal sigma of the per-client bandwidth multiplier");
  cli->AddFlag("net_latency", "0.05", "base round-trip latency, seconds");
  cli->AddFlag("net_latency_sigma", "0",
               "log-normal sigma of the per-(client,round) latency");
  cli->AddFlag("net_compute", "0",
               "local compute seconds per training sample");
  cli->AddFlag("async", "false",
               "asynchronous merge-on-arrival aggregation instead of "
               "synchronous rounds (docs/SYNC.md)");
  cli->AddFlag("async_alpha", "0.5",
               "staleness exponent: updates merge with w(s)=1/(1+s)^alpha");
  cli->AddFlag("async_max_staleness", "0",
               "drop arrivals staler than this version gap (0 = no cap)");
  cli->AddFlag("async_dispatch_batch", "1",
               "completions merged before freed slots re-dispatch as one "
               "parallel batch");
  cli->AddFlag("async_inflight", "0",
               "clients concurrently in flight (0 = clients_per_round)");
  cli->AddFlag("async_distill_every", "0",
               "merged updates between RESKD distillations "
               "(0 = clients_per_round)");
  cli->AddFlag("fault_upload_loss", "0", "P(trained update lost in flight)");
  cli->AddFlag("fault_download_loss", "0",
               "P(model never reaches the selected client)");
  cli->AddFlag("fault_crash", "0", "P(client crashes mid-local-epoch)");
  cli->AddFlag("fault_duplicate", "0",
               "P(update delivered twice; server dedupes)");
  cli->AddFlag("fault_corrupt", "0",
               "P(update corrupted in flight: NaN/Inf/large-norm)");
  cli->AddFlag("fault_retry_max", "5",
               "consecutive transfer failures before a client gives up "
               "for the epoch");
  cli->AddFlag("fault_retry_base", "1",
               "base retry backoff, simulated seconds");
  cli->AddFlag("fault_retry_cap", "60", "retry backoff cap, simulated seconds");
  cli->AddFlag("fault_quarantine_base", "5",
               "base quarantine after an admission rejection, simulated "
               "seconds");
  cli->AddFlag("fault_quarantine_cap", "300",
               "quarantine cap, simulated seconds");
  cli->AddFlag("fault_jitter", "0.5", "backoff jitter fraction in [0,1]");
  cli->AddFlag("admission", "false",
               "server-side update admission control (finite scan + clip + "
               "outlier gate; docs/ROBUSTNESS.md)");
  cli->AddFlag("admit_max_row_norm", "0",
               "clip uploaded item-delta rows to this L2 norm (0 = off)");
  cli->AddFlag("admit_outlier_z", "0",
               "reject updates with robust z-score above this over the "
               "slot's accepted-norm window (0 = off)");
  cli->AddFlag("checkpoint_every", "0",
               "write a crash-consistent run checkpoint every n rounds "
               "(sync) / epochs (async)");
  cli->AddFlag("resume", "false",
               "resume from a run checkpoint written by --checkpoint_every");
  cli->AddFlag("stop_after_rounds", "0",
               "kill the run after n merged rounds (kill-point testing)");
  cli->AddFlag("metrics_out", "",
               "stream per-round metrics as JSONL here "
               "(docs/OBSERVABILITY.md; never perturbs results)");
  cli->AddFlag("trace_out", "",
               "write a Chrome/Perfetto trace of the simulated run here "
               "(virtual-clock timeline; docs/OBSERVABILITY.md)");
  cli->AddFlag("profile", "false",
               "wall-clock phase profiling; prints a phase table per run "
               "and adds profile rows to --metrics_out");
}

std::string CommandLine::Usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.value << ")  " << flag.help
       << "\n";
  }
  return os.str();
}

}  // namespace hetefedrec
