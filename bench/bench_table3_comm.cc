// Reproduces Table III: one-round transmission cost per client type for
// All Small, All Large and HeteFedRec.
//
// Two views are printed: the analytic formulas of Table III evaluated for
// the configured model sizes, and the costs actually *measured* by the
// simulation's communication accounting — they must agree exactly.
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/models/ffn.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  ExperimentConfig cfg = *base_cfg;
  cfg.dataset =
      cli.GetString("dataset").empty() ? "ml" : cli.GetString("dataset");
  ApplyPaperDims(&cfg);
  cfg.global_epochs = 1;  // cost per round is constant

  auto runner = ExperimentRunner::Create(cfg);
  if (!runner.ok()) return FailWith(runner.status());
  const size_t items = (*runner)->dataset().num_items();

  auto theta_params = [&](size_t w) {
    return FeedForwardNet(2 * w, {cfg.ffn_hidden[0], cfg.ffn_hidden[1]})
        .ParamCount();
  };
  const size_t vs = items * cfg.dims[0], vm = items * cfg.dims[1],
               vl = items * cfg.dims[2];
  const size_t ts = theta_params(cfg.dims[0]), tm = theta_params(cfg.dims[1]),
               tl = theta_params(cfg.dims[2]);

  std::printf(
      "Model sizes (%s, %zu items): |Vs|=%s |Vm|=%s |Vl|=%s "
      "|Θs|=%zu |Θm|=%zu |Θl|=%zu\n"
      "(paper quotes 29,648 / 59,296 / 118,592 for V on full-size ML)\n\n",
      cfg.dataset.c_str(), items, TablePrinter::Count(vs).c_str(),
      TablePrinter::Count(vm).c_str(), TablePrinter::Count(vl).c_str(), ts,
      tm, tl);

  TablePrinter table(
      "Table III: one-time transmission cost per client (scalars)",
      {"Client", "All Small", "All Large", "HeteFedRec", "HeteFedRec formula"});
  table.AddRow({"Us", TablePrinter::Count(vs + ts),
                TablePrinter::Count(vl + tl), TablePrinter::Count(vs + ts),
                "size(Vs+Θs)"});
  table.AddRow({"Um", TablePrinter::Count(vs + ts),
                TablePrinter::Count(vl + tl),
                TablePrinter::Count(vm + ts + tm), "size(Vm+Θs,m)"});
  table.AddRow({"Ul", TablePrinter::Count(vs + ts),
                TablePrinter::Count(vl + tl),
                TablePrinter::Count(vl + ts + tm + tl),
                "size(Vl+Θs,m,l)"});
  table.Print();
  st = table.WriteCsv(CsvPath(cli, "table3_comm"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  // Cross-check against the measured accounting.
  TablePrinter measured("Measured average upload per participation",
                        {"Client", "All Small", "All Large", "HeteFedRec"});
  CommStats small = (*runner)->Run(Method::kAllSmall).comm;
  CommStats large = (*runner)->Run(Method::kAllLarge).comm;
  CommStats hete = (*runner)->Run(Method::kHeteFedRec).comm;
  bool agree = true;
  const Group groups[] = {Group::kSmall, Group::kMedium, Group::kLarge};
  const size_t expect_hete[] = {vs + ts, vm + ts + tm, vl + ts + tm + tl};
  for (int g = 0; g < kNumGroups; ++g) {
    measured.AddRow({GroupName(groups[g]),
                     TablePrinter::Num(small.AvgUpload(groups[g]), 0),
                     TablePrinter::Num(large.AvgUpload(groups[g]), 0),
                     TablePrinter::Num(hete.AvgUpload(groups[g]), 0)});
    agree = agree &&
            small.AvgUpload(groups[g]) == static_cast<double>(vs + ts) &&
            large.AvgUpload(groups[g]) == static_cast<double>(vl + tl) &&
            hete.AvgUpload(groups[g]) ==
                static_cast<double>(expect_hete[g]);
  }
  measured.Print();
  std::printf("\nFormulas and measured costs agree: %s\n",
              agree ? "YES" : "NO");
  std::printf(
      "HeteFedRec's extra cost over a size-matched homogeneous scheme is "
      "only Θs (+Θm) — %zu (+%zu) scalars, negligible next to V (paper "
      "§V-F).\n",
      ts, tm);
  return agree ? 0 : 2;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
