// Per-client state in the federated simulation.
//
// A client is one user (§III-A, footnote 4). Its *private* parameters — the
// user embedding — never leave this struct, mirroring the privacy boundary:
// the server and other clients only ever see public-parameter updates.
#ifndef HETEFEDREC_FED_CLIENT_H_
#define HETEFEDREC_FED_CLIENT_H_

#include "src/data/types.h"
#include "src/fed/group.h"
#include "src/math/matrix.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief One participant's persistent local state.
struct ClientState {
  UserId id = 0;
  Group group = Group::kSmall;
  /// Private user embedding (1 x width of the client's model). Updated
  /// locally per Eq. 3 and never uploaded.
  Matrix user_embedding;
  /// Deterministic per-client stream for negative sampling etc.
  Rng rng{0};
};

/// Initializes a client's embedding to N(0, init_std) at the given width.
void InitClient(ClientState* client, UserId id, Group group, size_t width,
                double init_std, const Rng& root_rng);

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_CLIENT_H_
