// Ablation of *this implementation's* design choices (DESIGN.md §3/§6) —
// knobs the paper leaves unspecified, measured so their defaults are
// justified rather than folklore:
//   A. server aggregation: mean of client deltas vs the literal Eq. 4 sum,
//   B. DDR correlation row-sampling budget,
//   C. RESKD budget (|Vkd| x steps),
//   D. the §III-A local validation carve-out on/off.
// Runs a single ML / Fed-NCF cell per variant.
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base = ConfigFromFlags(cli);
  if (!base.ok()) return FailWith(base.status());
  base->dataset = "ml";
  ApplyPaperDims(&*base);

  TablePrinter table("Implementation design-choice ablation (ML, Fed-NCF)",
                     {"Axis", "Variant", "NDCG", "Recall", "Collapse(norm)"});

  auto run = [&](const char* axis, const char* name,
                 const ExperimentConfig& cfg) {
    auto runner = ExperimentRunner::Create(cfg);
    HFR_CHECK(runner.ok()) << runner.status().ToString();
    std::fprintf(stderr, "[design] %s / %s ...\n", axis, name);
    ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
    table.AddRow({axis, name, TablePrinter::Num(r.final_eval.overall.ndcg),
                  TablePrinter::Num(r.final_eval.overall.recall),
                  TablePrinter::Num(r.collapse_cv, 4)});
  };

  // A. Aggregation mode.
  {
    ExperimentConfig cfg = *base;
    cfg.aggregation = AggregationMode::kMean;
    run("aggregation", "mean (default)", cfg);
    cfg.aggregation = AggregationMode::kSum;
    run("aggregation", "sum (Eq. 4 literal)", cfg);
  }
  table.AddSeparator();

  // A2. Data-size-weighted FedAvg (McMahan et al.) as a third option.
  {
    ExperimentConfig cfg = *base;
    cfg.aggregation = AggregationMode::kDataWeighted;
    run("aggregation", "data-weighted mean", cfg);
  }
  table.AddSeparator();

  // B. DDR row-sampling budget.
  for (size_t rows : {size_t{64}, size_t{256}, size_t{0}}) {
    ExperimentConfig cfg = *base;
    cfg.ddr_sample_rows = rows;
    std::string label = rows == 0 ? "all rows" : std::to_string(rows);
    run("ddr_rows", label.c_str(), cfg);
  }
  table.AddSeparator();

  // C. RESKD budget.
  {
    ExperimentConfig cfg = *base;
    run("reskd", "32 items x 2 steps (default)", cfg);
    cfg.kd_items = 128;
    cfg.kd_steps = 5;
    cfg.kd_lr = 0.01;
    run("reskd", "128 items x 5 steps, lr 0.01", cfg);
    cfg = *base;
    cfg.ensemble_distillation = false;
    run("reskd", "off", cfg);
  }
  table.AddSeparator();

  // D. Local validation carve-out.
  {
    ExperimentConfig cfg = *base;
    run("validation", "off (default)", cfg);
    cfg.local_validation_fraction = 0.1;
    run("validation", "10% carve-out (paper §III-A)", cfg);
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "ablation_design"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
