#include "src/fed/groups.h"

#include <algorithm>
#include <numeric>

namespace hetefedrec {

StatusOr<GroupAssignment> AssignGroups(
    const Dataset& ds, const std::array<double, 3>& fractions) {
  double total = fractions[0] + fractions[1] + fractions[2];
  if (total <= 0.0 || fractions[0] < 0 || fractions[1] < 0 ||
      fractions[2] < 0) {
    return Status::InvalidArgument("group fractions must be non-negative "
                                   "and not all zero");
  }
  const size_t n = ds.num_users();
  std::vector<UserId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](UserId a, UserId b) {
    size_t ca = ds.InteractionCount(a);
    size_t cb = ds.InteractionCount(b);
    if (ca != cb) return ca < cb;
    return a < b;
  });

  GroupAssignment out;
  out.group_of.assign(n, Group::kSmall);
  size_t n_small = static_cast<size_t>(
      static_cast<double>(n) * fractions[0] / total + 0.5);
  size_t n_medium = static_cast<size_t>(
      static_cast<double>(n) * (fractions[0] + fractions[1]) / total + 0.5);
  n_small = std::min(n_small, n);
  n_medium = std::clamp(n_medium, n_small, n);

  for (size_t r = 0; r < n; ++r) {
    Group g = r < n_small             ? Group::kSmall
              : (r < n_medium ? Group::kMedium : Group::kLarge);
    out.group_of[order[r]] = g;
    out.sizes[static_cast<int>(g)]++;
  }
  if (n_small > 0) {
    out.thresholds[0] =
        static_cast<double>(ds.InteractionCount(order[n_small - 1]));
  }
  if (n_medium > 0) {
    out.thresholds[1] =
        static_cast<double>(ds.InteractionCount(order[n_medium - 1]));
  }
  return out;
}

}  // namespace hetefedrec
