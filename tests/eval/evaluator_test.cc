#include "src/eval/evaluator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/util/thread_pool.h"

namespace hetefedrec {
namespace {

// Deterministic dataset: 6 users, 10 items; user u interacted with items
// u..u+4 so everyone has 4 train + 1 test item.
Dataset MakeDataset() {
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 6; ++u) {
    for (ItemId k = 0; k < 5; ++k) xs.push_back({u, static_cast<ItemId>(u + k)});
  }
  return Dataset::FromInteractions(xs, 6, 10).value();
}

GroupAssignment MakeGroups(const Dataset& ds) {
  return AssignGroups(ds, {2, 2, 2}).value();
}

TEST(EvaluatorTest, OracleScorerGetsPerfectMetrics) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 5);
  // Oracle: test items score 1, everything else 0.
  auto oracle = [&](UserId u, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 0.0);
    for (ItemId i : ds.TestItems(u)) (*scores)[i] = 1.0;
  };
  GroupedEval r = ev.Evaluate(oracle);
  EXPECT_DOUBLE_EQ(r.overall.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.overall.ndcg, 1.0);
  EXPECT_EQ(r.overall.users, 6u);
}

TEST(EvaluatorTest, AdversarialScorerGetsZero) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 2);
  // Anti-oracle: test items score lowest.
  auto anti = [&](UserId u, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 1.0);
    for (ItemId i : ds.TestItems(u)) (*scores)[i] = -1.0;
  };
  GroupedEval r = ev.Evaluate(anti);
  EXPECT_DOUBLE_EQ(r.overall.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.overall.ndcg, 0.0);
}

TEST(EvaluatorTest, TrainItemsNeverRecommended) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 10);
  // Score train items maximally; they must be masked, so recall stays
  // driven by test items only.
  auto cheater = [&](UserId u, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 0.0);
    for (ItemId i : ds.TrainItems(u)) (*scores)[i] = 100.0;
    for (ItemId i : ds.TestItems(u)) (*scores)[i] = 1.0;
  };
  GroupedEval r = ev.Evaluate(cheater);
  EXPECT_DOUBLE_EQ(r.overall.recall, 1.0);  // K=10 covers all unmasked
}

TEST(EvaluatorTest, PerGroupCountsSumToOverall) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 5);
  auto zero = [&](UserId, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 0.0);
  };
  GroupedEval r = ev.Evaluate(zero);
  size_t total = 0;
  for (int g = 0; g < kNumGroups; ++g) total += r.per_group[g].users;
  EXPECT_EQ(total, r.overall.users);
}

TEST(EvaluatorTest, UserSamplingReducesPopulation) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator ev(ds, groups, 5, /*user_sample=*/3);
  EXPECT_EQ(ev.eval_users().size(), 3u);
  Evaluator full(ds, groups, 5, /*user_sample=*/0);
  EXPECT_EQ(full.eval_users().size(), 6u);
  Evaluator big(ds, groups, 5, /*user_sample=*/100);
  EXPECT_EQ(big.eval_users().size(), 6u);
}

TEST(EvaluatorTest, SampleDeterministicPerSeed) {
  Dataset ds = MakeDataset();
  GroupAssignment groups = MakeGroups(ds);
  Evaluator a(ds, groups, 5, 3, 42);
  Evaluator b(ds, groups, 5, 3, 42);
  EXPECT_EQ(a.eval_users(), b.eval_users());
}

TEST(EvaluatorTest, ParallelEvaluationBitIdenticalToSerial) {
  // Larger population with non-trivial fractional metrics: any ordering
  // difference in the parallel reduction would perturb the FP sums.
  std::vector<Interaction> xs;
  for (UserId u = 0; u < 64; ++u) {
    for (ItemId k = 0; k < 8; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 11 + k * 3) % 200)});
    }
  }
  Dataset ds = Dataset::FromInteractions(xs, 64, 200).value();
  GroupAssignment groups = AssignGroups(ds, {5, 3, 2}).value();
  Evaluator ev(ds, groups, 10);

  // Deterministic per-user scoring with irrational-ish values so averaged
  // metrics exercise full double precision.
  auto serial_fn = [&](UserId u, std::vector<double>* scores) {
    scores->resize(ds.num_items());
    for (size_t j = 0; j < ds.num_items(); ++j) {
      (*scores)[j] = std::sin(static_cast<double>(u * 131 + j * 17) * 0.01);
    }
  };
  auto threaded_fn = [&](UserId u, size_t /*slot*/,
                         std::vector<double>* scores) {
    serial_fn(u, scores);
  };

  GroupedEval serial = ev.Evaluate(serial_fn);
  ThreadPool pool(3);  // 4 executing slots
  GroupedEval parallel = ev.Evaluate(threaded_fn, &pool);
  ThreadPool none(0);  // pool-less threaded overload
  GroupedEval degenerate = ev.Evaluate(threaded_fn, &none);

  for (const GroupedEval* other : {&parallel, &degenerate}) {
    EXPECT_EQ(serial.overall.recall, other->overall.recall);
    EXPECT_EQ(serial.overall.ndcg, other->overall.ndcg);
    EXPECT_EQ(serial.overall.users, other->overall.users);
    for (int g = 0; g < kNumGroups; ++g) {
      EXPECT_EQ(serial.per_group[g].recall, other->per_group[g].recall);
      EXPECT_EQ(serial.per_group[g].ndcg, other->per_group[g].ndcg);
      EXPECT_EQ(serial.per_group[g].users, other->per_group[g].users);
    }
  }
}

TEST(EvaluatorTest, UsersWithoutTestItemsSkipped) {
  // One user with a single interaction has no test item.
  std::vector<Interaction> xs = {{0, 0}};
  for (ItemId k = 0; k < 5; ++k) xs.push_back({1, k});
  Dataset ds = Dataset::FromInteractions(xs, 2, 6).value();
  GroupAssignment groups = AssignGroups(ds, {1, 1, 1}).value();
  Evaluator ev(ds, groups, 3);
  auto zero = [&](UserId, std::vector<double>* scores) {
    scores->assign(ds.num_items(), 0.0);
  };
  GroupedEval r = ev.Evaluate(zero);
  EXPECT_EQ(r.overall.users, 1u);
}

}  // namespace
}  // namespace hetefedrec
