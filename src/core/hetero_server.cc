#include "src/core/hetero_server.h"

#include "src/math/init.h"
#include "src/util/telemetry/profiler.h"

namespace hetefedrec {

HeteroServer::HeteroServer(const Options& options)
    : aggregation_(options.aggregation),
      shared_aggregation_(options.shared_aggregation) {
  HFR_CHECK(!options.widths.empty());
  HFR_CHECK_GT(options.num_items, 0u);
  for (size_t s = 1; s < options.widths.size(); ++s) {
    HFR_CHECK_LT(options.widths[s - 1], options.widths[s]);
  }

  Rng rng(options.seed);
  const size_t max_width = options.widths.back();

  // Initialize the widest table, then share prefixes downwards so Eq. 10's
  // invariant holds from t = 0.
  Matrix widest(options.num_items, max_width);
  InitNormal(&widest, options.embed_init_std, &rng);
  for (size_t w : options.widths) {
    tables_.push_back(widest.LeadingCols(w));
    FeedForwardNet theta(2 * w, {options.ffn_hidden[0],
                                 options.ffn_hidden[1]});
    theta.InitXavier(&rng);
    thetas_.push_back(std::move(theta));
  }

  v_agg_ = Matrix(options.num_items, max_width);
  if (!shared_aggregation_) {
    for (size_t w : options.widths) {
      v_agg_per_slot_.emplace_back(options.num_items, w);
    }
  }
  segment_weight_.assign(tables_.size(), 0.0);
  slot_weight_.assign(tables_.size(), 0.0);
  theta_agg_.reserve(thetas_.size());
  for (const auto& t : thetas_) theta_agg_.push_back(
      FeedForwardNet::ZerosLike(t));
  theta_weight_.assign(thetas_.size(), 0.0);
  touched_mask_.assign(options.num_items, 0);
  versions_ = VersionedTable(tables_.size(), options.num_items);
}

void HeteroServer::MarkTouched(uint32_t row) {
  HFR_CHECK_LT(row, touched_mask_.size());
  if (!touched_mask_[row]) {
    touched_mask_[row] = 1;
    touched_rows_.push_back(row);
  }
}

void HeteroServer::BeginRound() {
  // Zero only what the previous round dirtied: touched rows after an
  // all-sparse round, everything after a round with a dense update (or the
  // first round, where the constructor already zero-initialized).
  if (round_has_dense_) {
    v_agg_.SetZero();
    for (auto& m : v_agg_per_slot_) m.SetZero();
  } else {
    for (uint32_t r : touched_rows_) {
      double* row = v_agg_.Row(r);
      std::fill(row, row + v_agg_.cols(), 0.0);
      for (auto& m : v_agg_per_slot_) {
        double* srow = m.Row(r);
        std::fill(srow, srow + m.cols(), 0.0);
      }
    }
  }
  for (uint32_t r : touched_rows_) touched_mask_[r] = 0;
  touched_rows_.clear();
  round_has_dense_ = false;

  std::fill(segment_weight_.begin(), segment_weight_.end(), 0.0);
  std::fill(slot_weight_.begin(), slot_weight_.end(), 0.0);
  for (auto& t : theta_agg_) t.SetZero();
  std::fill(theta_weight_.begin(), theta_weight_.end(), 0.0);
  versions_.AdvanceRound();
  round_open_ = true;
}

void HeteroServer::Accumulate(const std::vector<LocalTaskSpec>& tasks,
                              const LocalUpdateResult& update,
                              double weight) {
  HFR_CHECK(round_open_);
  HFR_CHECK(!tasks.empty());
  HFR_CHECK_GE(weight, 0.0);
  const size_t client_width =
      update.sparse ? update.v_delta_sparse.width : update.v_delta.cols();
  HFR_CHECK_EQ(tasks.back().width, client_width);
  upload_scalars_ += static_cast<uint64_t>(client_width) *
                     (update.sparse ? update.v_delta_sparse.num_rows()
                                    : update.v_delta.rows());

  if (shared_aggregation_) {
    // Eq. 7-8: zero-pad to the widest slot and sum.
    if (update.sparse) {
      const SparseRowUpdate& up = update.v_delta_sparse;
      for (size_t k = 0; k < up.num_rows(); ++k) {
        const uint32_t r = up.rows[k];
        MarkTouched(r);
        Axpy(weight, up.RowData(k), v_agg_.Row(r), client_width);
      }
    } else {
      round_has_dense_ = true;
      v_agg_.AddScaledIntoLeadingCols(update.v_delta, weight);
    }
    for (size_t s = 0; s < tables_.size(); ++s) {
      if (width(s) <= client_width) segment_weight_[s] += weight;
    }
  } else {
    const size_t slot = tasks.back().slot;
    HFR_CHECK_LT(slot, v_agg_per_slot_.size());
    HFR_CHECK_EQ(v_agg_per_slot_[slot].cols(), client_width);
    if (update.sparse) {
      const SparseRowUpdate& up = update.v_delta_sparse;
      for (size_t k = 0; k < up.num_rows(); ++k) {
        const uint32_t r = up.rows[k];
        MarkTouched(r);
        Axpy(weight, up.RowData(k), v_agg_per_slot_[slot].Row(r),
             client_width);
      }
    } else {
      round_has_dense_ = true;
      v_agg_per_slot_[slot].AddScaled(update.v_delta, weight);
    }
    slot_weight_[slot] += weight;
  }

  HFR_CHECK_EQ(tasks.size(), update.theta_deltas.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    const size_t slot = tasks[t].slot;
    HFR_CHECK_LT(slot, theta_agg_.size());
    theta_agg_[slot].AddScaled(update.theta_deltas[t], weight);
    theta_weight_[slot] += weight;
  }
}

void HeteroServer::FinishRound() {
  HFR_PROFILE("apply");
  HFR_CHECK(round_open_);
  round_open_ = false;

  // Row set to apply: everything after a dense contribution, otherwise only
  // the rows touched by this round's sparse updates (the aggregate is
  // exactly zero elsewhere, and adding seg_scale * 0.0 is a no-op).
  const bool all_rows = round_has_dense_;

  if (shared_aggregation_) {
    // Eq. 8-9: every slot applies the leading-column slice of the padded
    // aggregate. Under kMean/kDataWeighted each *width segment* is
    // normalized by the total weight of clients wide enough to have
    // updated it — the natural extension of FedAvg to padded aggregation.
    // Segment `seg` spans the columns [width(seg-1), width(seg)), whose
    // accumulated weight is segment_weight_[seg].
    for (size_t s = 0; s < tables_.size(); ++s) {
      size_t col0 = 0;
      for (size_t seg = 0; seg <= s; ++seg) {
        const size_t col1 = width(seg);
        double seg_scale = 1.0;
        if (aggregation_ != AggregationMode::kSum) {
          if (segment_weight_[seg] == 0.0) {
            col0 = col1;
            continue;
          }
          seg_scale = 1.0 / segment_weight_[seg];
        }
        auto apply_row = [&](size_t r) {
          const double* src = v_agg_.Row(r);
          double* dst = tables_[s].Row(r);
          for (size_t c = col0; c < col1; ++c) dst[c] += seg_scale * src[c];
        };
        if (all_rows) {
          for (size_t r = 0; r < tables_[s].rows(); ++r) apply_row(r);
        } else {
          for (uint32_t r : touched_rows_) apply_row(r);
        }
        col0 = col1;
      }
    }
  } else {
    for (size_t s = 0; s < tables_.size(); ++s) {
      if (slot_weight_[s] == 0.0) continue;
      double scale = aggregation_ == AggregationMode::kSum
                         ? 1.0
                         : 1.0 / slot_weight_[s];
      if (all_rows) {
        tables_[s].AddScaled(v_agg_per_slot_[s], scale);
      } else {
        for (uint32_t r : touched_rows_) {
          Axpy(scale, v_agg_per_slot_[s].Row(r), tables_[s].Row(r),
               tables_[s].cols());
        }
      }
    }
  }

  // Eq. 15: Θ slots aggregate across every client that trained them.
  for (size_t s = 0; s < thetas_.size(); ++s) {
    if (theta_weight_[s] == 0.0) continue;
    double scale = aggregation_ == AggregationMode::kSum
                       ? 1.0
                       : 1.0 / theta_weight_[s];
    thetas_[s].AddScaled(theta_agg_[s], scale);
  }

  // Version stamps for delta sync: a slot's table changed iff some width
  // segment it reads received weight. The row set is the same one the apply
  // loops visited; stamping a touched row for every eligible slot is a
  // (safe) over-approximation in clustered mode, where touched_rows_ is not
  // split per slot.
  for (size_t s = 0; s < tables_.size(); ++s) {
    bool changed = false;
    if (shared_aggregation_) {
      for (size_t seg = 0; seg <= s && !changed; ++seg) {
        changed = segment_weight_[seg] > 0.0;
      }
    } else {
      changed = slot_weight_[s] > 0.0;
    }
    if (!changed) continue;
    if (all_rows) {
      versions_.StampAll(s);
    } else {
      for (uint32_t r : touched_rows_) versions_.Stamp(s, r);
    }
  }
}

void HeteroServer::ApplyUpdate(const std::vector<LocalTaskSpec>& tasks,
                               const LocalUpdateResult& update, double scale) {
  HFR_CHECK(!round_open_);
  HFR_CHECK_GE(scale, 0.0);
  BeginRound();
  Accumulate(tasks, update, scale);
  // Force sum semantics for the single accumulated update: under kMean the
  // weight would normalize itself away (scale/scale = 1).
  const AggregationMode saved = aggregation_;
  aggregation_ = AggregationMode::kSum;
  FinishRound();
  aggregation_ = saved;
}

double HeteroServer::Distill(const DistillationOptions& options, Rng* rng) {
  HFR_PROFILE("distill");
  if (tables_.size() < 2) return 0.0;
  std::vector<Matrix*> ptrs;
  ptrs.reserve(tables_.size());
  for (auto& t : tables_) ptrs.push_back(&t);
  std::vector<ItemId> sampled;
  double loss = EnsembleDistill(ptrs, options, rng, &sampled);
  // RESKD dirties the Vkd rows of *every* slot — including rows outside any
  // client's touched set — so their versions must advance or replicas would
  // serve stale bytes.
  for (size_t s = 0; s < tables_.size(); ++s) {
    for (ItemId i : sampled) versions_.Stamp(s, static_cast<uint32_t>(i));
  }
  return loss;
}

size_t HeteroServer::SlotParamCount(size_t slot) const {
  HFR_CHECK_LT(slot, tables_.size());
  return tables_[slot].size() + thetas_[slot].ParamCount();
}

ServerSnapshot HeteroServer::Snapshot() const {
  ServerSnapshot snap;
  snap.tables = tables_;
  snap.thetas = thetas_;
  snap.version_round = versions_.round();
  snap.version_floors.reserve(tables_.size());
  snap.versions.reserve(tables_.size());
  for (size_t s = 0; s < tables_.size(); ++s) {
    snap.version_floors.push_back(versions_.floor_of(s));
    snap.versions.push_back(versions_.slot_versions(s));
  }
  return snap;
}

void HeteroServer::RestoreSnapshot(ServerSnapshot snapshot) {
  HFR_CHECK(!round_open_);
  HFR_CHECK_EQ(snapshot.tables.size(), tables_.size());
  HFR_CHECK_EQ(snapshot.thetas.size(), thetas_.size());
  for (size_t s = 0; s < tables_.size(); ++s) {
    HFR_CHECK_EQ(snapshot.tables[s].rows(), tables_[s].rows());
    HFR_CHECK_EQ(snapshot.tables[s].cols(), tables_[s].cols());
    HFR_CHECK_EQ(snapshot.thetas[s].ParamCount(), thetas_[s].ParamCount());
  }
  tables_ = std::move(snapshot.tables);
  thetas_ = std::move(snapshot.thetas);
  versions_.Restore(snapshot.version_round, snapshot.version_floors,
                    snapshot.versions);
}

AdmissionDecision HeteroServer::Admit(const std::vector<LocalTaskSpec>& tasks,
                                      LocalUpdateResult* update) {
  HFR_CHECK(admission_ != nullptr);
  HFR_CHECK(!tasks.empty());
  // The last task is the client's own width — the slot whose accepted-norm
  // window this update is comparable with.
  return admission_->Admit(tasks.back().slot, update);
}

}  // namespace hetefedrec
