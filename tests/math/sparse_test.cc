#include "src/math/sparse.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/math/adam.h"
#include "src/math/init.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

TEST(SparseRowStoreTest, EnsureRowZeroInitializedAndStable) {
  SparseRowStore s;
  s.Reset(10, 3);
  EXPECT_EQ(s.rows(), 10u);
  EXPECT_EQ(s.cols(), 3u);
  EXPECT_FALSE(s.Has(4));
  EXPECT_EQ(s.RowOrNull(4), nullptr);

  double* r4 = s.EnsureRow(4);
  for (int d = 0; d < 3; ++d) EXPECT_EQ(r4[d], 0.0);
  r4[1] = 2.5;
  EXPECT_TRUE(s.Has(4));
  EXPECT_EQ(s.RowOrNull(4)[1], 2.5);
  // Re-ensuring an existing row returns the same data.
  EXPECT_EQ(s.EnsureRow(4)[1], 2.5);
  ASSERT_EQ(s.touched().size(), 1u);
  EXPECT_EQ(s.touched()[0], 4u);
}

TEST(SparseRowStoreTest, ClearIsTouchedProportionalAndComplete) {
  SparseRowStore s;
  s.Reset(100, 2);
  s.EnsureRow(7)[0] = 1.0;
  s.EnsureRow(93)[1] = -1.0;
  s.Clear();
  EXPECT_TRUE(s.touched().empty());
  EXPECT_FALSE(s.Has(7));
  EXPECT_FALSE(s.Has(93));
  // After clearing, rows come back zeroed.
  EXPECT_EQ(s.EnsureRow(7)[0], 0.0);
}

TEST(SparseRowStoreTest, ResetReshapes) {
  SparseRowStore s;
  s.Reset(5, 2);
  s.EnsureRow(1);
  s.Reset(8, 4);
  EXPECT_EQ(s.rows(), 8u);
  EXPECT_EQ(s.cols(), 4u);
  EXPECT_FALSE(s.Has(1));
}

TEST(RowOverlayTableTest, ReadsFallThroughUntilMutated) {
  Matrix base(6, 2);
  base(3, 0) = 1.5;
  base(3, 1) = -2.0;
  RowOverlayTable view;
  view.Reset(&base);
  EXPECT_EQ(view.rows(), 6u);
  EXPECT_EQ(view.cols(), 2u);
  EXPECT_EQ(view.Row(3)[0], 1.5);

  double* r3 = view.MutableRow(3);
  EXPECT_EQ(r3[0], 1.5);  // copy-on-write seeded from the base
  r3[0] = 9.0;
  EXPECT_EQ(view.Row(3)[0], 9.0);
  EXPECT_EQ(base(3, 0), 1.5);  // base untouched
  EXPECT_EQ(view.Row(2)[1], 0.0);
  ASSERT_EQ(view.touched().size(), 1u);
}

TEST(SparseRowUpdateTest, DenseRoundTripAndScatter) {
  Matrix dense(5, 3);
  dense(1, 0) = 1.0;
  dense(4, 2) = -3.0;
  SparseRowUpdate up = SparseRowUpdate::FromDense(dense);
  EXPECT_EQ(up.width, 3u);
  ASSERT_EQ(up.num_rows(), 2u);
  EXPECT_EQ(up.rows[0], 1u);
  EXPECT_EQ(up.rows[1], 4u);
  EXPECT_EQ(up.ParamCount(), 2u * 4u);

  Matrix back = up.ToDense(5);
  for (size_t r = 0; r < 5; ++r)
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(back(r, c), dense(r, c));

  // Scatter into a wider destination: leading-column semantics.
  Matrix wide(5, 4);
  wide.Fill(1.0);
  up.AddScaledTo(&wide, 2.0);
  EXPECT_EQ(wide(1, 0), 3.0);
  EXPECT_EQ(wide(4, 2), -5.0);
  EXPECT_EQ(wide(4, 3), 1.0);  // tail column untouched
  EXPECT_EQ(wide(0, 0), 1.0);  // untouched row
}

TEST(SparseRowAdamTest, MatchesDenseAdamBitForBit) {
  // Dense Adam over a gradient that is zero outside a touched set must be
  // reproduced exactly by SparseRowAdam over the touched rows only — the
  // invariant the sparse client-update path rests on.
  constexpr size_t kRows = 32;
  constexpr size_t kCols = 4;
  Rng rng(11);
  Matrix base(kRows, kCols);
  InitNormal(&base, 0.1, &rng);

  Matrix dense_param = base;
  Adam dense_adam;
  SparseRowAdam sparse_adam;
  sparse_adam.Reset(kRows, kCols);
  RowOverlayTable view;
  view.Reset(&base);

  // Three steps with different touched sets, including a row that is
  // touched in step 1 but not afterwards (moment decay must continue).
  const std::vector<std::vector<uint32_t>> step_rows = {
      {2, 17, 30}, {17, 5}, {5, 2, 9}};
  SparseRowStore grad;
  grad.Reset(kRows, kCols);
  for (const auto& rows : step_rows) {
    Matrix dense_grad(kRows, kCols);
    grad.Clear();
    for (uint32_t r : rows) {
      double* g = grad.EnsureRow(r);
      for (size_t c = 0; c < kCols; ++c) {
        double v = rng.Normal();
        g[c] = v;
        dense_grad(r, c) = v;
      }
    }
    dense_adam.Step(&dense_param, dense_grad);
    sparse_adam.Step(&view, grad);
  }

  for (size_t r = 0; r < kRows; ++r) {
    for (size_t c = 0; c < kCols; ++c) {
      EXPECT_EQ(view.Row(r)[c], dense_param(r, c))
          << "row " << r << " col " << c;
    }
  }
  // Rows never touched must not be in the overlay at all.
  for (uint32_t r : view.touched()) {
    bool expected = false;
    for (const auto& rows : step_rows) {
      expected |= std::find(rows.begin(), rows.end(), r) != rows.end();
    }
    EXPECT_TRUE(expected) << "spurious overlay row " << r;
  }
}

TEST(RowOverlayTableTest, PackedSnapshotRestoreRoundTrips) {
  // The best-validation-epoch snapshot path: save the overlay after some
  // mutations, mutate more (including brand-new rows), restore — the view
  // must read exactly the snapshot state, with later rows reverting to
  // base values by vanishing from the overlay.
  Matrix base(6, 2);
  for (size_t r = 0; r < 6; ++r) {
    base(r, 0) = static_cast<double>(r);
    base(r, 1) = 10.0 + static_cast<double>(r);
  }
  RowOverlayTable view;
  view.Reset(&base);
  view.MutableRow(1)[0] = 100.0;
  view.MutableRow(4)[1] = 200.0;

  std::vector<uint32_t> snap_rows;
  std::vector<double> snap_data;
  view.SnapshotLocal(&snap_rows, &snap_data);
  EXPECT_EQ(snap_rows.size(), 2u);
  EXPECT_EQ(snap_data.size(), 4u);

  view.MutableRow(1)[0] = -1.0;  // post-snapshot drift on a snapshot row
  view.MutableRow(3)[0] = -2.0;  // post-snapshot touch of a new row

  view.RestoreLocal(snap_rows, snap_data);
  EXPECT_EQ(view.Row(1)[0], 100.0);
  EXPECT_EQ(view.Row(4)[1], 200.0);
  EXPECT_EQ(view.Row(3)[0], 3.0);  // reverted to base
  EXPECT_EQ(view.touched().size(), 2u);

  // The restored overlay stays mutable and consistent.
  view.MutableRow(3)[0] = 7.0;
  EXPECT_EQ(view.Row(3)[0], 7.0);
  EXPECT_EQ(view.touched().size(), 3u);
}

}  // namespace
}  // namespace hetefedrec
