#include "src/util/telemetry/trace.h"

#include <cstdio>

#include "src/util/telemetry/json.h"

namespace hetefedrec {

void TraceRecorder::SetTrackName(int track, const std::string& name) {
  JsonObj args;
  args.Str("name", name);
  JsonObj o;
  o.Str("ph", "M")
      .Str("name", "thread_name")
      .I64("pid", 1)
      .I64("tid", track)
      .Raw("args", args.Build());
  meta_.push_back(o.Build());
}

void TraceRecorder::Append(const char* phase, const char* name,
                           const char* category, double ts_seconds,
                           double dur_seconds, int track,
                           const std::string& args_json) {
  JsonObj o;
  o.Str("ph", phase).Str("name", name).Str("cat", category);
  // Simulated seconds -> trace microseconds.
  o.Num("ts", ts_seconds * 1e6);
  if (dur_seconds >= 0.0) o.Num("dur", dur_seconds * 1e6);
  o.I64("pid", 1).I64("tid", track);
  if (!args_json.empty()) o.Raw("args", args_json);
  events_.push_back(o.Build());
}

void TraceRecorder::Instant(const char* name, const char* category,
                            double ts_seconds, int track,
                            const std::string& args_json) {
  Append("i", name, category, ts_seconds, -1.0, track, args_json);
}

void TraceRecorder::Complete(const char* name, const char* category,
                             double ts_seconds, double dur_seconds, int track,
                             const std::string& args_json) {
  Append("X", name, category, ts_seconds, dur_seconds, track, args_json);
}

std::string TraceRecorder::ToJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const std::string& e : meta_) {
    if (!first) out += ",\n";
    first = false;
    out += e;
  }
  for (const std::string& e : events_) {
    if (!first) out += ",\n";
    first = false;
    out += e;
  }
  out += "\n]}\n";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::IOError("cannot open trace file: " + path);
  const std::string json = ToJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != json.size() || !closed) {
    return Status::IOError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace hetefedrec
