#include "src/util/table_printer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hetefedrec {
namespace {

TEST(TablePrinterTest, RendersHeaderAndRows) {
  TablePrinter t("Demo", {"Method", "NDCG"});
  t.AddRow({"All Small", "0.04328"});
  t.AddRow({"HeteFedRec", "0.04781"});
  std::string s = t.Render();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("HeteFedRec"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAligned) {
  TablePrinter t("", {"A", "B"});
  t.AddRow({"xxxxxxxx", "1"});
  t.AddRow({"y", "2"});
  std::string s = t.Render();
  // Every content line must have the same length when aligned.
  std::istringstream is(s);
  std::string line;
  size_t len = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (len == 0) len = line.size();
    EXPECT_EQ(line.size(), len) << "misaligned line: " << line;
  }
}

TEST(TablePrinterTest, SeparatorRendered) {
  TablePrinter t("", {"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  std::string s = t.Render();
  // header rule + top + separator + bottom = 4 rules
  size_t rules = 0, pos = 0;
  while ((pos = s.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TablePrinterTest, CsvRoundTrip) {
  TablePrinter t("T", {"name", "value"});
  t.AddRow({"a,b", "1"});
  t.AddSeparator();
  t.AddRow({"c", "2"});
  std::string path = testing::TempDir() + "/table_printer_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\",1");
  std::getline(in, line);
  EXPECT_EQ(line, "c,2");  // separator skipped
  std::remove(path.c_str());
}

TEST(TablePrinterTest, NumFormatsDigits) {
  EXPECT_EQ(TablePrinter::Num(0.047812345, 5), "0.04781");
  EXPECT_EQ(TablePrinter::Num(1.5, 2), "1.50");
}

TEST(TablePrinterTest, CountInsertsThousandsSeparators) {
  EXPECT_EQ(TablePrinter::Count(0), "0");
  EXPECT_EQ(TablePrinter::Count(999), "999");
  EXPECT_EQ(TablePrinter::Count(1000), "1,000");
  EXPECT_EQ(TablePrinter::Count(1000209), "1,000,209");
  EXPECT_EQ(TablePrinter::Count(-1234), "-1,234");
}

}  // namespace
}  // namespace hetefedrec
