// Communication accounting for Table III.
//
// The simulation never serializes bytes; instead every download/upload of
// public parameters is recorded as a scalar count, which is exactly the
// quantity Table III compares (size(V_a + Θ...) per client per round).
// Byte-level views multiply by the wire format's scalar size
// (`set_wire_scalar_bytes`: 8 = fp64, 4 = fp32, 2 = fp16) so deployment
// budgets can be read off directly; row indices in sparse/delta payloads
// are counted as one scalar each, a deliberate simplification documented in
// docs/SYNC.md.
#ifndef HETEFEDREC_FED_COMM_H_
#define HETEFEDREC_FED_COMM_H_

#include <array>
#include <cstddef>

#include "src/fed/group.h"

namespace hetefedrec {

/// \brief Accumulates per-group transmission counts.
class CommStats {
 public:
  /// Records one client download of `params` scalars.
  void RecordDownload(Group g, size_t params);

  /// Records one client upload of `params` scalars.
  void RecordUpload(Group g, size_t params);

  /// Records one async arrival discarded by the staleness cap
  /// (`async_max_staleness`): the download was delivered and is counted,
  /// but the update never merges, so no upload is recorded — the same
  /// accepted-traffic-only convention over-selection stragglers follow.
  void RecordDropped(Group g);

  /// Number of *merged* participations (uploads accepted by the server).
  /// Under over-selection this is smaller than Downloads(): stragglers
  /// receive their download but their upload is cancelled at round close
  /// and never recorded — CommStats counts accepted traffic only, a
  /// conservative lower bound on wire bytes (docs/SYNC.md).
  size_t Participations(Group g) const;

  /// Number of downloads recorded for the group (>= Participations under
  /// over-selection / deadlines).
  size_t Downloads(Group g) const;

  /// Async arrivals dropped by the staleness cap for the group.
  size_t Dropped(Group g) const;

  /// Total dropped arrivals across all groups.
  size_t TotalDropped() const;

  /// Mean scalars uploaded per participation for the group (0 if none).
  double AvgUpload(Group g) const;

  /// Mean scalars downloaded per participation for the group.
  double AvgDownload(Group g) const;

  /// Raw per-group totals (scalars) — the down/up split of Table III.
  size_t DownParams(Group g) const;
  size_t UpParams(Group g) const;

  /// Total scalars transmitted either direction across all groups.
  size_t TotalTransmitted() const;

  /// Wire format: bytes per transmitted scalar (default 8, fp64).
  void set_wire_scalar_bytes(size_t bytes) { wire_scalar_bytes_ = bytes; }
  size_t wire_scalar_bytes() const { return wire_scalar_bytes_; }

  /// Byte views of the scalar counts under the configured wire format.
  double AvgUploadBytes(Group g) const;
  double AvgDownloadBytes(Group g) const;
  size_t TotalBytes() const;

  void Reset();

 private:
  struct PerGroup {
    size_t uploads = 0;
    size_t downloads = 0;
    size_t dropped = 0;
    size_t up_params = 0;
    size_t down_params = 0;
  };
  std::array<PerGroup, kNumGroups> groups_;
  size_t wire_scalar_bytes_ = 8;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_FED_COMM_H_
