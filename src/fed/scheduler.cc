#include "src/fed/scheduler.h"

#include <algorithm>
#include <numeric>

#include "src/util/logging.h"

namespace hetefedrec {

RoundScheduler::RoundScheduler(size_t num_users, size_t clients_per_round)
    : num_users_(num_users), clients_per_round_(clients_per_round) {
  HFR_CHECK_GT(num_users, 0u);
  HFR_CHECK_GT(clients_per_round, 0u);
}

std::vector<std::vector<UserId>> RoundScheduler::EpochBatches(Rng* rng) const {
  std::vector<UserId> queue(num_users_);
  std::iota(queue.begin(), queue.end(), 0);
  rng->Shuffle(&queue);
  std::vector<std::vector<UserId>> batches;
  for (size_t start = 0; start < num_users_; start += clients_per_round_) {
    size_t end = std::min(num_users_, start + clients_per_round_);
    batches.emplace_back(queue.begin() + start, queue.begin() + end);
  }
  return batches;
}

size_t RoundScheduler::rounds_per_epoch() const {
  return (num_users_ + clients_per_round_ - 1) / clients_per_round_;
}

ClientQueue::ClientQueue(size_t num_users, size_t clients_per_round,
                         size_t over_selection)
    : num_users_(num_users),
      clients_per_round_(clients_per_round),
      over_selection_(over_selection) {
  HFR_CHECK_GT(num_users, 0u);
  HFR_CHECK_GT(clients_per_round, 0u);
}

void ClientQueue::BeginEpoch(Rng* rng) {
  queue_.resize(num_users_);
  std::iota(queue_.begin(), queue_.end(), 0);
  rng->Shuffle(&queue_);
  head_ = 0;
}

std::vector<UserId> ClientQueue::NextRound() {
  const size_t take =
      std::min(queue_.size() - head_, clients_per_round_ + over_selection_);
  std::vector<UserId> round(queue_.begin() + head_,
                            queue_.begin() + head_ + take);
  head_ += take;
  // Compact once the dead prefix dominates so long availability-requeue
  // chains stay O(num_users) memory.
  if (head_ > queue_.size() / 2 && head_ > clients_per_round_) {
    queue_.erase(queue_.begin(), queue_.begin() + head_);
    head_ = 0;
  }
  return round;
}

UserId ClientQueue::PopNext() {
  HFR_CHECK(!Exhausted());
  const UserId u = queue_[head_++];
  // Same compaction policy as NextRound: keep requeue chains O(num_users).
  if (head_ > queue_.size() / 2 && head_ > clients_per_round_) {
    queue_.erase(queue_.begin(), queue_.begin() + head_);
    head_ = 0;
  }
  return u;
}

size_t ClientQueue::rounds_per_epoch() const {
  return (num_users_ + clients_per_round_ - 1) / clients_per_round_;
}

}  // namespace hetefedrec
