#include "src/math/init.h"

#include <cmath>

namespace hetefedrec {

void InitNormal(Matrix* m, double stddev, Rng* rng) {
  for (double& v : m->data()) v = rng->Normal(0.0, stddev);
}

void InitXavierUniform(Matrix* m, size_t fan_in, size_t fan_out, Rng* rng) {
  double a = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (double& v : m->data()) v = rng->Uniform(-a, a);
}

void InitXavierUniform(Matrix* m, Rng* rng) {
  InitXavierUniform(m, m->rows(), m->cols(), rng);
}

}  // namespace hetefedrec
