// Process peak-RSS probe for the scale-out bench and tests.
//
// The million-user streaming workload's whole point is bounded memory, so
// the bench table and the stream tests report/assert the process high-water
// mark rather than trusting the design. Linux-only (reads VmHWM from
// /proc/self/status); returns 0 where the probe is unavailable, and callers
// must treat 0 as "unknown", not "zero bytes".
#ifndef HETEFEDREC_UTIL_RSS_H_
#define HETEFEDREC_UTIL_RSS_H_

#include <cstddef>

namespace hetefedrec {

/// Peak resident set size of the current process in KiB, or 0 when the
/// platform probe is unavailable.
size_t PeakRssKb();

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_RSS_H_
