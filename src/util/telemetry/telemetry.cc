#include "src/util/telemetry/telemetry.h"

namespace hetefedrec {

Telemetry::Telemetry(const TelemetryOptions& options) : options_(options) {
  if (!options_.trace_path.empty()) {
    trace_ = std::make_unique<TraceRecorder>();
  }
}

StatusOr<std::unique_ptr<Telemetry>> Telemetry::Create(
    const TelemetryOptions& options) {
  std::unique_ptr<Telemetry> tel(new Telemetry(options));
  if (!options.metrics_path.empty()) {
    tel->metrics_file_ = std::fopen(options.metrics_path.c_str(), "wb");
    if (!tel->metrics_file_) {
      return Status::IOError("cannot open metrics stream: " +
                             options.metrics_path);
    }
  }
  return tel;
}

Telemetry::~Telemetry() {
  // Backstop for early exits; the executor flushes (and checks) explicitly.
  Flush();
  if (metrics_file_) std::fclose(metrics_file_);
}

void Telemetry::WriteRow(const std::string& json) {
  if (!metrics_file_) return;
  std::fwrite(json.data(), 1, json.size(), metrics_file_);
  std::fputc('\n', metrics_file_);
}

Status Telemetry::Flush() {
  if (metrics_file_) {
    if (std::fflush(metrics_file_) != 0) {
      return Status::IOError("flush failed: " + options_.metrics_path);
    }
  }
  if (trace_ && !trace_written_) {
    Status s = trace_->WriteJson(options_.trace_path);
    if (!s.ok()) return s;
    trace_written_ = true;
  }
  return Status::OK();
}

}  // namespace hetefedrec
