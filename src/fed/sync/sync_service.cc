#include "src/fed/sync/sync_service.h"

#include "src/util/logging.h"

namespace hetefedrec {

SyncService::SyncService(size_t num_users)
    : SyncService(num_users, Options()) {}

SyncService::SyncService(size_t num_users, const Options& options)
    : options_(options), replicas_(num_users) {
  if (options_.replica_cap > 0) {
    for (ClientReplica& rep : replicas_) {
      rep.set_capacity(options_.replica_cap);
    }
  }
}

SyncPlan SyncService::Sync(UserId u, size_t slot,
                           const std::vector<uint32_t>& subscription,
                           const Matrix& table, const VersionView& versions,
                           size_t theta_params) {
  HFR_CHECK_LT(static_cast<size_t>(u), replicas_.size());
  ClientReplica& rep = replicas_[static_cast<size_t>(u)];
  if (rep.slot() == ClientReplica::kNoSlot) {
    rep.set_slot(slot);
  } else {
    // A client's model slot is fixed for the lifetime of a run.
    HFR_CHECK_EQ(rep.slot(), slot);
  }

  const size_t width = table.cols();
  SyncPlan plan;
  plan.subscribed_rows = subscription.size();
  for (uint32_t row : subscription) {
    HFR_CHECK_LT(static_cast<size_t>(row), table.rows());
    const uint64_t current = versions.Version(slot, row);
    if (rep.IsStale(row, current)) {
      plan.shipped_rows++;
      rep.Hold(row, current);
      if (options_.verify_values) {
        rep.HoldValues(row, table.Row(row), width);
      }
    } else {
      // An up-to-date subscription read still pins the row's recency:
      // under a capacity the working set a client keeps re-reading should
      // outlive rows it subscribed to once.
      rep.Touch(row);
      if (options_.verify_values) {
        // Losslessness: a row we decline to ship must still be
        // byte-for-byte what the client holds. A failure here means a
        // server mutation skipped its version stamp.
        const double* cached = rep.Values(row, width);
        HFR_CHECK(cached != nullptr);
        const double* live = table.Row(row);
        for (size_t d = 0; d < width; ++d) {
          HFR_CHECK(cached[d] == live[d]);
        }
      }
    }
  }
  plan.params = plan.shipped_rows * (width + 1) + theta_params + 1;
  return plan;
}

void SyncService::Invalidate(UserId u) {
  HFR_CHECK_LT(static_cast<size_t>(u), replicas_.size());
  replicas_[static_cast<size_t>(u)].Invalidate();
}

const ClientReplica& SyncService::replica(UserId u) const {
  HFR_CHECK_LT(static_cast<size_t>(u), replicas_.size());
  return replicas_[static_cast<size_t>(u)];
}

ClientReplica* SyncService::mutable_replica(UserId u) {
  HFR_CHECK_LT(static_cast<size_t>(u), replicas_.size());
  return &replicas_[static_cast<size_t>(u)];
}

}  // namespace hetefedrec
