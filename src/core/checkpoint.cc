#include "src/core/checkpoint.h"

#include <cstring>
#include <fstream>

#include "src/core/server_api.h"

namespace hetefedrec {

namespace {

Status WriteRaw(std::ostream* out, const void* data, size_t bytes) {
  out->write(static_cast<const char*>(data),
             static_cast<std::streamsize>(bytes));
  if (!out->good()) return Status::IOError("checkpoint write failed");
  return Status::OK();
}

Status ReadRaw(std::istream* in, void* data, size_t bytes) {
  in->read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in->gcount() != static_cast<std::streamsize>(bytes)) {
    return Status::IOError("checkpoint truncated");
  }
  return Status::OK();
}

Status WriteU32(std::ostream* out, uint32_t v) {
  return WriteRaw(out, &v, sizeof(v));
}

StatusOr<uint32_t> ReadU32(std::istream* in) {
  uint32_t v = 0;
  HFR_RETURN_NOT_OK(ReadRaw(in, &v, sizeof(v)));
  return v;
}

Status WriteU64(std::ostream* out, uint64_t v) {
  return WriteRaw(out, &v, sizeof(v));
}

StatusOr<uint64_t> ReadU64(std::istream* in) {
  uint64_t v = 0;
  HFR_RETURN_NOT_OK(ReadRaw(in, &v, sizeof(v)));
  return v;
}

Status ExpectTag(std::istream* in, RecordTag expected) {
  auto tag = ReadU32(in);
  if (!tag.ok()) return tag.status();
  if (*tag != static_cast<uint32_t>(expected)) {
    return Status::InvalidArgument(
        "unexpected checkpoint record tag " + std::to_string(*tag));
  }
  return Status::OK();
}

}  // namespace

Status WriteCheckpointHeader(std::ostream* out) {
  return WriteRaw(out, kCheckpointMagic, sizeof(kCheckpointMagic));
}

Status ReadCheckpointHeader(std::istream* in) {
  char magic[4] = {};
  HFR_RETURN_NOT_OK(ReadRaw(in, magic, sizeof(magic)));
  if (std::memcmp(magic, kCheckpointMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("not a HeteFedRec checkpoint");
  }
  return Status::OK();
}

Status WriteMatrix(std::ostream* out, const Matrix& m) {
  HFR_RETURN_NOT_OK(WriteU32(out, static_cast<uint32_t>(RecordTag::kMatrix)));
  HFR_RETURN_NOT_OK(WriteU64(out, m.rows()));
  HFR_RETURN_NOT_OK(WriteU64(out, m.cols()));
  return WriteRaw(out, m.data().data(), m.size() * sizeof(double));
}

StatusOr<Matrix> ReadMatrix(std::istream* in) {
  HFR_RETURN_NOT_OK(ExpectTag(in, RecordTag::kMatrix));
  auto rows = ReadU64(in);
  if (!rows.ok()) return rows.status();
  auto cols = ReadU64(in);
  if (!cols.ok()) return cols.status();
  // 1 GiB sanity cap: dimensions beyond any model in this project signal a
  // corrupt stream, not a big model.
  if (*rows * *cols > (1ull << 27)) {
    return Status::InvalidArgument("checkpoint matrix implausibly large");
  }
  Matrix m(*rows, *cols);
  HFR_RETURN_NOT_OK(ReadRaw(in, m.data().data(), m.size() * sizeof(double)));
  return m;
}

Status WriteMeta(std::ostream* out, const std::string& key,
                 const std::string& value) {
  HFR_RETURN_NOT_OK(WriteU32(out, static_cast<uint32_t>(RecordTag::kMeta)));
  HFR_RETURN_NOT_OK(WriteU64(out, key.size()));
  HFR_RETURN_NOT_OK(WriteRaw(out, key.data(), key.size()));
  HFR_RETURN_NOT_OK(WriteU64(out, value.size()));
  return WriteRaw(out, value.data(), value.size());
}

StatusOr<std::pair<std::string, std::string>> ReadMeta(std::istream* in) {
  HFR_RETURN_NOT_OK(ExpectTag(in, RecordTag::kMeta));
  auto read_string = [in]() -> StatusOr<std::string> {
    auto len = ReadU64(in);
    if (!len.ok()) return len.status();
    if (*len > (1ull << 20)) {
      return Status::InvalidArgument("checkpoint string implausibly large");
    }
    std::string s(*len, '\0');
    HFR_RETURN_NOT_OK(ReadRaw(in, s.data(), s.size()));
    return s;
  };
  auto key = read_string();
  if (!key.ok()) return key.status();
  auto value = read_string();
  if (!value.ok()) return value.status();
  return std::make_pair(*key, *value);
}

Status WriteEnd(std::ostream* out) {
  return WriteU32(out, static_cast<uint32_t>(RecordTag::kEnd));
}

StatusOr<RecordTag> PeekTag(std::istream* in) {
  auto pos = in->tellg();
  auto tag = ReadU32(in);
  if (!tag.ok()) return tag.status();
  in->seekg(pos);
  return static_cast<RecordTag>(*tag);
}

Status WriteU64Vector(std::ostream* out, const std::vector<uint64_t>& words) {
  HFR_RETURN_NOT_OK(WriteU32(out, static_cast<uint32_t>(RecordTag::kRaw64)));
  HFR_RETURN_NOT_OK(WriteU64(out, words.size()));
  return WriteRaw(out, words.data(), words.size() * sizeof(uint64_t));
}

StatusOr<std::vector<uint64_t>> ReadU64Vector(std::istream* in) {
  HFR_RETURN_NOT_OK(ExpectTag(in, RecordTag::kRaw64));
  auto count = ReadU64(in);
  if (!count.ok()) return count.status();
  // 2 GiB sanity cap, same spirit as the matrix cap: run states pack a few
  // words per client/row, never billions.
  if (*count > (1ull << 28)) {
    return Status::InvalidArgument("checkpoint raw record implausibly large");
  }
  std::vector<uint64_t> words(*count);
  HFR_RETURN_NOT_OK(
      ReadRaw(in, words.data(), words.size() * sizeof(uint64_t)));
  return words;
}

Status WriteFfn(std::ostream* out, const FeedForwardNet& net) {
  HFR_RETURN_NOT_OK(WriteU32(out, static_cast<uint32_t>(RecordTag::kFfn)));
  HFR_RETURN_NOT_OK(WriteU64(out, net.num_layers()));
  for (size_t l = 0; l < net.num_layers(); ++l) {
    HFR_RETURN_NOT_OK(WriteMatrix(out, net.weight(l)));
    HFR_RETURN_NOT_OK(WriteMatrix(out, net.bias(l)));
  }
  return Status::OK();
}

StatusOr<FeedForwardNet> ReadFfn(std::istream* in) {
  HFR_RETURN_NOT_OK(ExpectTag(in, RecordTag::kFfn));
  auto layers = ReadU64(in);
  if (!layers.ok()) return layers.status();
  if (*layers == 0 || *layers > 64) {
    return Status::InvalidArgument("checkpoint FFN layer count implausible");
  }
  std::vector<Matrix> weights, biases;
  for (size_t l = 0; l < *layers; ++l) {
    auto w = ReadMatrix(in);
    if (!w.ok()) return w.status();
    auto b = ReadMatrix(in);
    if (!b.ok()) return b.status();
    weights.push_back(std::move(w).value());
    biases.push_back(std::move(b).value());
  }
  // Reconstruct the architecture from the matrix shapes, then install the
  // parameters.
  std::vector<size_t> hidden;
  for (size_t l = 0; l + 1 < weights.size(); ++l) {
    hidden.push_back(weights[l].cols());
  }
  FeedForwardNet net(weights[0].rows(), hidden);
  for (size_t l = 0; l < weights.size(); ++l) {
    if (!net.weight(l).SameShape(weights[l]) ||
        !net.bias(l).SameShape(biases[l])) {
      return Status::InvalidArgument("checkpoint FFN shapes inconsistent");
    }
    net.weight(l) = std::move(weights[l]);
    net.bias(l) = std::move(biases[l]);
  }
  return net;
}

Status SaveServerCheckpoint(const std::string& path, const ServerApi& server,
                            const std::string& base_model_name) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path);
  HFR_RETURN_NOT_OK(WriteCheckpointHeader(&out));
  HFR_RETURN_NOT_OK(WriteMeta(&out, "base_model", base_model_name));
  HFR_RETURN_NOT_OK(
      WriteMeta(&out, "num_slots", std::to_string(server.num_slots())));
  for (size_t s = 0; s < server.num_slots(); ++s) {
    HFR_RETURN_NOT_OK(WriteMatrix(&out, server.table(s)));
    HFR_RETURN_NOT_OK(WriteFfn(&out, server.theta(s)));
  }
  return WriteEnd(&out);
}

StatusOr<ServerCheckpoint> LoadServerCheckpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  HFR_RETURN_NOT_OK(ReadCheckpointHeader(&in));
  ServerCheckpoint ckpt;
  size_t num_slots = 0;
  while (true) {
    auto meta = ReadMeta(&in);
    if (!meta.ok()) return meta.status();
    if (meta->first == "base_model") {
      ckpt.base_model_name = meta->second;
    } else if (meta->first == "num_slots") {
      num_slots = static_cast<size_t>(std::stoul(meta->second));
      break;
    } else {
      return Status::InvalidArgument("unknown checkpoint meta key " +
                                     meta->first);
    }
  }
  if (num_slots == 0 || num_slots > 16) {
    return Status::InvalidArgument("checkpoint slot count implausible");
  }
  for (size_t s = 0; s < num_slots; ++s) {
    auto table = ReadMatrix(&in);
    if (!table.ok()) return table.status();
    auto theta = ReadFfn(&in);
    if (!theta.ok()) return theta.status();
    ckpt.tables.push_back(std::move(table).value());
    ckpt.thetas.push_back(std::move(theta).value());
  }
  auto end = PeekTag(&in);
  if (!end.ok()) return end.status();
  if (*end != RecordTag::kEnd) {
    return Status::InvalidArgument("checkpoint missing end sentinel");
  }
  return ckpt;
}

}  // namespace hetefedrec
