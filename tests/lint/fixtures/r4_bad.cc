// Fixture: every construct here must trip R4 (schedule identity).
#include <map>
#include <set>
#include <thread>

struct Node {};

std::thread::id Current() {                     // finding: thread::id
  return std::this_thread::get_id();            // finding: this_thread
}

static std::map<Node*, int> ranks;              // finding: pointer-keyed map
static std::set<const Node*> visited;           // finding: pointer-keyed set

int Rank(Node* n) { return ranks[n]; }

bool Seen(const Node* n) { return visited.count(n) > 0; }
