// Lightweight Status / StatusOr error-handling primitives in the style of
// Arrow / RocksDB: recoverable failures travel as values, not exceptions.
#ifndef HETEFEDREC_UTIL_STATUS_H_
#define HETEFEDREC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace hetefedrec {

/// Broad machine-readable categories for failures.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kIOError = 6,
};

/// \brief Result of an operation that can fail without a payload.
///
/// A `Status` is cheap to copy when OK (no allocation) and carries a
/// human-readable message otherwise. Use the factory functions
/// (`Status::InvalidArgument(...)` etc.) rather than the constructor.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders e.g. "InvalidArgument: embedding size must be positive".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Either a value of type `T` or an error `Status`.
///
/// Mirrors `arrow::Result` / `absl::StatusOr`. Accessing the value of a
/// failed `StatusOr` aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the enclosing function.
#define HFR_RETURN_NOT_OK(expr)           \
  do {                                    \
    ::hetefedrec::Status _st = (expr);    \
    if (!_st.ok()) return _st;            \
  } while (false)

}  // namespace hetefedrec

#endif  // HETEFEDREC_UTIL_STATUS_H_
