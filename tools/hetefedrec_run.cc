// hetefedrec_run — run any single experiment from the command line.
//
//   ./build/tools/hetefedrec_run --method=hetefedrec --dataset=anime
//       --model=lightgcn --data_scale=0.06 --epochs=18 --alpha=1.0
//       --eval_every=2 --checkpoint=out.ckpt      (one line in the shell)
//
// Prints overall + per-group metrics, the convergence curve when
// --eval_every is set, communication totals, and the collapse diagnostic.
#include <cstdio>

#include "src/core/trainer.h"
#include "src/util/cli.h"
#include "src/util/table_printer.h"

namespace hetefedrec {
namespace {

int Main(int argc, char** argv) {
  CommandLine cli;
  cli.AddFlag("method", "hetefedrec",
              "all_small|all_large|all_large_exclusive|standalone|clustered|"
              "direct|hetefedrec");
  cli.AddFlag("dataset", "ml", "ml | anime | douban");
  cli.AddFlag("model", "ncf", "ncf | lightgcn");
  cli.AddFlag("data_scale", "0.06", "synthetic dataset scale in (0,1]");
  cli.AddFlag("dims", "8,16,32", "Ns,Nm,Nl embedding widths");
  cli.AddFlag("fractions", "5,3,2", "Us:Um:Ul division ratio");
  cli.AddFlag("epochs", "18", "global epochs");
  cli.AddFlag("local_epochs", "2", "local epochs per round");
  cli.AddFlag("clients_per_round", "64", "round size");
  cli.AddFlag("lr", "0.001", "Adam learning rate");
  cli.AddFlag("alpha", "1.0", "DDR weight");
  cli.AddFlag("agg", "mean", "mean | sum | weighted");
  cli.AddFlag("udl", "true", "unified dual-task learning");
  cli.AddFlag("ddr", "true", "decorrelation regularization");
  cli.AddFlag("reskd", "true", "relation-based ensemble distillation");
  cli.AddFlag("validation", "0", "local validation fraction (paper: 0.1)");
  cli.AddFlag("eval_every", "0", "evaluate every n epochs (0 = final only)");
  cli.AddFlag("eval_users", "300", "evaluation user sample (0 = all)");
  cli.AddFlag("checkpoint", "", "write final server parameters here");
  // Everything an experiment run shares with the bench suite — execution
  // toggles, sync, network, async, faults, sharding, telemetry — comes from
  // the shared registry (src/util/cli.h) so the two flag sets cannot drift.
  RegisterExperimentFlags(&cli);

  Status st = cli.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n%s", st.ToString().c_str(),
                 cli.Usage(argv[0]).c_str());
    return 1;
  }

  auto parse_triple = [](const std::string& s, double out[3]) {
    return std::sscanf(s.c_str(), "%lf,%lf,%lf", &out[0], &out[1],
                       &out[2]) == 3;
  };

  ExperimentConfig cfg;
  cfg.dataset = cli.GetString("dataset");
  cfg.data_scale = cli.GetDouble("data_scale");
  cfg.global_epochs = cli.GetInt("epochs");
  cfg.local_epochs = cli.GetInt("local_epochs");
  cfg.clients_per_round = static_cast<size_t>(cli.GetInt("clients_per_round"));
  cfg.lr = cli.GetDouble("lr");
  cfg.alpha = cli.GetDouble("alpha");
  cfg.unified_dual_task = cli.GetBool("udl");
  cfg.decorrelation = cli.GetBool("ddr");
  cfg.ensemble_distillation = cli.GetBool("reskd");
  cfg.local_validation_fraction = cli.GetDouble("validation");
  cfg.eval_every = cli.GetInt("eval_every");
  cfg.eval_user_sample = static_cast<size_t>(cli.GetInt("eval_users"));
  cfg.checkpoint_path = cli.GetString("checkpoint");
  st = ApplyExperimentFlags(cli, &cfg);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  double triple[3];
  if (!parse_triple(cli.GetString("dims"), triple)) {
    std::fprintf(stderr, "bad --dims (expected Ns,Nm,Nl)\n");
    return 1;
  }
  cfg.dims = {static_cast<size_t>(triple[0]), static_cast<size_t>(triple[1]),
              static_cast<size_t>(triple[2])};
  if (!parse_triple(cli.GetString("fractions"), triple)) {
    std::fprintf(stderr, "bad --fractions (expected fs,fm,fl)\n");
    return 1;
  }
  cfg.group_fractions = {triple[0], triple[1], triple[2]};

  auto model = BaseModelByName(cli.GetString("model"));
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  cfg.base_model = *model;
  auto method = MethodByName(cli.GetString("method"));
  if (!method.ok()) {
    std::fprintf(stderr, "%s\n", method.status().ToString().c_str());
    return 1;
  }

  auto runner = ExperimentRunner::Create(cfg);
  if (!runner.ok()) {
    std::fprintf(stderr, "%s\n", runner.status().ToString().c_str());
    return 1;
  }
  std::printf("%s | %s on %s: %zu users, %zu items, %zu interactions\n",
              MethodName(*method).c_str(), BaseModelName(*model).c_str(),
              cfg.dataset.c_str(), (*runner)->dataset().num_users(),
              (*runner)->dataset().num_items(),
              (*runner)->dataset().TotalInteractions());

  ExperimentResult r = (*runner)->Run(*method);
  for (const EpochPoint& p : r.history) {
    std::printf("epoch %3d  ndcg=%.5f recall=%.5f loss=%.4f simsec=%.1f\n",
                p.epoch, p.eval.overall.ndcg, p.eval.overall.recall,
                p.mean_train_loss, p.simulated_seconds);
  }
  std::printf(
      "\nfinal: Recall@20=%.5f NDCG@20=%.5f (Us %.5f | Um %.5f | Ul %.5f) "
      "over %zu users\n",
      r.final_eval.overall.recall, r.final_eval.overall.ndcg,
      r.final_eval.group(Group::kSmall).ndcg,
      r.final_eval.group(Group::kMedium).ndcg,
      r.final_eval.group(Group::kLarge).ndcg, r.final_eval.overall.users);
  std::printf("comm: %s scalars transmitted total (%s MB on the wire)\n",
              TablePrinter::Count(
                  static_cast<long long>(r.comm.TotalTransmitted()))
                  .c_str(),
              TablePrinter::Num(
                  static_cast<double>(r.comm.TotalBytes()) / (1024.0 * 1024.0),
                  1)
                  .c_str());
  std::printf("comm per participation (down | up scalars): Us %.0f|%.0f  "
              "Um %.0f|%.0f  Ul %.0f|%.0f\n",
              r.comm.AvgDownload(Group::kSmall), r.comm.AvgUpload(Group::kSmall),
              r.comm.AvgDownload(Group::kMedium),
              r.comm.AvgUpload(Group::kMedium),
              r.comm.AvgDownload(Group::kLarge), r.comm.AvgUpload(Group::kLarge));
  std::printf("collapse: var=%.6f normalized=%.4f\n", r.collapse_variance,
              r.collapse_cv);
  const FaultStats& fs = r.comm.faults();
  if (fs.TotalInjected() + fs.TotalRejected() + fs.rows_clipped +
          fs.quarantines + fs.retries + fs.gave_up + fs.nonfinite_grad_steps >
      0) {
    std::printf(
        "faults: down_lost=%zu up_lost=%zu crashed=%zu dup=%zu corrupt=%zu "
        "rej_nonfinite=%zu rej_outlier=%zu clipped=%zu quarantined=%zu "
        "retries=%zu gave_up=%zu nan_steps=%zu\n",
        fs.download_lost, fs.upload_lost, fs.crashed, fs.duplicates,
        fs.corrupted, fs.rejected_nonfinite, fs.rejected_outlier,
        fs.rows_clipped, fs.quarantines, fs.retries, fs.gave_up,
        fs.nonfinite_grad_steps);
  }
  const size_t dropped = r.comm.TotalDropped();
  std::printf("simulated time: %.1fs%s", r.simulated_seconds,
              dropped > 0 ? "" : "\n");
  if (dropped > 0) {
    std::printf("  (%zu over-stale arrivals dropped)\n", dropped);
  }
  std::printf("wall time: %.1fs\n", r.train_seconds);
  return 0;
}

}  // namespace
}  // namespace hetefedrec

int main(int argc, char** argv) { return hetefedrec::Main(argc, argv); }
