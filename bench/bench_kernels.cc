// Microbenchmarks of the numeric kernels underlying every experiment:
// scoring, backprop, aggregation, DDR and RESKD. Uses google-benchmark.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/decorrelation.h"
#include "src/core/distillation.h"
#include "src/core/hetero_server.h"
#include "src/core/local_trainer.h"
#include "src/core/trainer.h"
#include "src/data/dataset.h"
#include "src/data/synthetic.h"
#include "src/eval/metrics.h"
#include "src/eval/topk.h"
#include "src/data/stream.h"
#include "src/fed/shard/sharded_server.h"
#include "src/fed/shard/stream_loop.h"
#include "src/fed/sync/sync_service.h"
#include "src/fed/sync/versioned_table.h"
#include "src/math/activations.h"
#include "src/math/adam.h"
#include "src/math/aligned.h"
#include "src/math/backend.h"
#include "src/math/eigen.h"
#include "src/math/init.h"
#include "src/math/stats.h"
#include "src/models/scorer.h"
#include "src/util/logging.h"

namespace hetefedrec {
namespace {

constexpr size_t kItems = 2048;

Matrix RandomTable(size_t rows, size_t cols, uint64_t seed = 3) {
  Rng rng(seed);
  Matrix m(rows, cols);
  InitNormal(&m, 0.1, &rng);
  return m;
}

void BM_MatMul(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a = RandomTable(n, n, 1);
  Matrix b = RandomTable(n, n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Matrix::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128);

void BM_FfnForward(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  FeedForwardNet net(2 * width, {8, 8});
  Rng rng(5);
  net.InitXavier(&rng);
  std::vector<double> x(2 * width, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.Forward(x.data(), nullptr));
  }
}
BENCHMARK(BM_FfnForward)->Arg(8)->Arg(32)->Arg(128);

void BM_FfnForwardBackward(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  FeedForwardNet net(2 * width, {8, 8});
  Rng rng(7);
  net.InitXavier(&rng);
  std::vector<double> x(2 * width, 0.3);
  std::vector<double> dx(2 * width);
  FeedForwardNet grads = FeedForwardNet::ZerosLike(net);
  FeedForwardNet::Cache cache;
  for (auto _ : state) {
    double logit = net.Forward(x.data(), &cache);
    net.Backward(cache, BceWithLogitsGrad(logit, 1.0), &grads, dx.data());
    benchmark::DoNotOptimize(grads);
  }
}
BENCHMARK(BM_FfnForwardBackward)->Arg(8)->Arg(32)->Arg(128);

void BM_BatchedForward(benchmark::State& state) {
  // Per-sample Forward vs one ForwardBatch over the same 256-row block —
  // the shape of one training task's per-epoch sample set. Arg 2 selects
  // the compute backend (0 fp64 | 1 fp32 scalar | 2 fp32 AVX2); the
  // fp32-vs-fp64 ratio at equal algorithm is the backend speedup recorded
  // in docs/PERFORMANCE.md "Numeric backends".
  const size_t width = static_cast<size_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  const int backend = static_cast<int>(state.range(2));
  constexpr size_t kBatch = 256;
  FeedForwardNet net(2 * width, {8, 8});
  Rng rng(5);
  net.InitXavier(&rng);
  std::vector<double> x(kBatch * 2 * width);
  for (double& v : x) v = rng.Normal(0.0, 0.3);
  std::vector<double> logits(kBatch);
  FeedForwardNetF netf;
  netf.AssignCastFrom(net);
  AlignedVector<float> xf(x.begin(), x.end());
  std::vector<float> logitsf(kBatch);
  SetFp32SimdEnabled(backend == 2 && CpuSupportsFp32Simd());
  for (auto _ : state) {
    if (backend != 0) {
      netf.ForwardBatch(xf.data(), kBatch, nullptr, logitsf.data());
      benchmark::DoNotOptimize(logitsf);
    } else if (batched) {
      net.ForwardBatch(x.data(), kBatch, nullptr, logits.data());
    } else {
      for (size_t b = 0; b < kBatch; ++b) {
        logits[b] = net.Forward(x.data() + b * 2 * width, nullptr);
      }
    }
    benchmark::DoNotOptimize(logits);
  }
  SetFp32SimdEnabled(false);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_BatchedForward)
    ->Args({8, 0, 0})
    ->Args({8, 1, 0})
    ->Args({8, 1, 1})
    ->Args({8, 1, 2})
    ->Args({32, 0, 0})
    ->Args({32, 1, 0})
    ->Args({32, 1, 1})
    ->Args({32, 1, 2})
    ->Args({128, 0, 0})
    ->Args({128, 1, 0})
    ->Args({128, 1, 1})
    ->Args({128, 1, 2});

// Evaluator scoring cost for one user at the Anime paper scale (6,888
// items, width 32): per-item scalar Score vs batched ScoreRange vs the
// candidate slice (test + 200 seeded negatives, eval_candidate_sample
// style). The scalar-vs-batched ratio is the evaluator scoring speedup
// recorded in docs/PERFORMANCE.md (acceptance bar: >= 2x).
void BM_EvalScoring(benchmark::State& state) {
  // Modes 0-2: scoring only (0 scalar | 1 batch | 2 candidates). Modes
  // 3-4: one user's full evaluation inner loop — scoring *and* top-20
  // selection with the train-item mask — through the partial_sort
  // reference (3) vs the fused block-streamed selector (4). Arg 2 selects
  // the compute backend for modes 1 and 4 (0 fp64 | 1 fp32 scalar |
  // 2 fp32 AVX2) — the float path mirrors the evaluator's: float scoring
  // scratch upcast into the double score buffer the selector consumes.
  const int mode = static_cast<int>(state.range(0));
  const BaseModel model =
      state.range(1) == 0 ? BaseModel::kNcf : BaseModel::kLightGcn;
  const int backend = static_cast<int>(state.range(2));
  constexpr size_t kAnimeItems = 6888;
  constexpr size_t kWidth = 32;
  constexpr size_t kTopK = 20;
  Matrix table = RandomTable(kAnimeItems, kWidth, 103);
  Matrix user = RandomTable(1, kWidth, 107);
  FeedForwardNet theta(2 * kWidth, {8, 8});
  Rng rng(109);
  theta.InitXavier(&rng);
  std::vector<ItemId> interacted;
  for (ItemId i = 0; i < 64; ++i) interacted.push_back(i * 97 % kAnimeItems);
  // Candidate slice: ~20 test items + 200 negatives.
  std::vector<ItemId> candidates;
  for (size_t i = 0; i < 220; ++i) {
    candidates.push_back(static_cast<ItemId>(rng.UniformInt(kAnimeItems)));
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::vector<bool> masked(kAnimeItems, false);
  for (ItemId i : interacted) masked[i] = true;

  Scorer sc(model, kWidth);
  ScorerF scf(model, kWidth);
  MatrixF tablef;
  tablef.AssignCast(table);
  FeedForwardNetF thetaf;
  thetaf.AssignCastFrom(theta);
  std::vector<float> userf(user.Row(0), user.Row(0) + kWidth);
  std::vector<float> outf(kAnimeItems);
  SetFp32SimdEnabled(backend == 2 && CpuSupportsFp32Simd());
  TopKSelector selector;
  constexpr size_t kBlock = 1024;
  std::vector<double> out(kAnimeItems);
  std::vector<ItemId> topk;
  size_t scored = 0;
  for (auto _ : state) {
    if (backend != 0) {
      // Float arms cover the two shipping paths: the bulk ScoreRange
      // (mode 1) and the fused block-scored top-K stream (mode 4).
      scf.BeginUser(userf.data(), tablef, interacted);
      if (mode == 1) {
        scf.ScoreRange(tablef, thetaf, 0, kAnimeItems, outf.data());
        for (size_t j = 0; j < kAnimeItems; ++j) {
          out[j] = static_cast<double>(outf[j]);
        }
      } else {
        selector.Begin(kTopK, &masked);
        for (size_t first = 0; first < kAnimeItems; first += kBlock) {
          const size_t bs = std::min(kBlock, kAnimeItems - first);
          scf.ScoreRange(tablef, thetaf, static_cast<ItemId>(first), bs,
                         outf.data());
          for (size_t j = 0; j < bs; ++j) {
            out[j] = static_cast<double>(outf[j]);
          }
          selector.Push(static_cast<ItemId>(first), out.data(), bs);
        }
        selector.Finish(&topk);
      }
      scored += kAnimeItems;
      benchmark::DoNotOptimize(out);
      benchmark::DoNotOptimize(topk);
      continue;
    }
    sc.BeginUser(user.Row(0), table, interacted);
    switch (mode) {
      case 0:
        for (size_t j = 0; j < kAnimeItems; ++j) {
          out[j] = sc.Score(table, theta, static_cast<ItemId>(j));
        }
        scored += kAnimeItems;
        break;
      case 1:
        sc.ScoreRange(table, theta, 0, kAnimeItems, out.data());
        scored += kAnimeItems;
        break;
      case 2:
        sc.ScoreBatch(table, theta, candidates.data(), candidates.size(),
                      out.data());
        scored += candidates.size();
        break;
      case 3:
        sc.ScoreRange(table, theta, 0, kAnimeItems, out.data());
        topk = TopKItems(out, masked, kTopK);
        scored += kAnimeItems;
        break;
      default:
        selector.Begin(kTopK, &masked);
        for (size_t first = 0; first < kAnimeItems; first += kBlock) {
          const size_t bs = std::min(kBlock, kAnimeItems - first);
          sc.ScoreRange(table, theta, static_cast<ItemId>(first), bs,
                        out.data());
          selector.Push(static_cast<ItemId>(first), out.data(), bs);
        }
        selector.Finish(&topk);
        scored += kAnimeItems;
        break;
    }
    benchmark::DoNotOptimize(out);
    benchmark::DoNotOptimize(topk);
  }
  SetFp32SimdEnabled(false);
  state.SetItemsProcessed(static_cast<int64_t>(scored));
}
BENCHMARK(BM_EvalScoring)
    ->Args({0, 0, 0})
    ->Args({1, 0, 0})
    ->Args({1, 0, 1})
    ->Args({1, 0, 2})
    ->Args({2, 0, 0})
    ->Args({3, 0, 0})
    ->Args({4, 0, 0})
    ->Args({4, 0, 1})
    ->Args({4, 0, 2})
    ->Args({0, 1, 0})
    ->Args({1, 1, 0})
    ->Args({1, 1, 2})
    ->Args({2, 1, 0})
    ->Args({3, 1, 0})
    ->Args({4, 1, 0})
    ->Args({4, 1, 2});

void BM_ScorerFullCatalogue(benchmark::State& state) {
  // Cost of ranking all items for one user (the evaluation inner loop).
  const size_t width = static_cast<size_t>(state.range(0));
  const BaseModel model =
      state.range(1) == 0 ? BaseModel::kNcf : BaseModel::kLightGcn;
  Matrix table = RandomTable(kItems, width);
  Matrix user = RandomTable(1, width, 11);
  FeedForwardNet theta(2 * width, {8, 8});
  Rng rng(13);
  theta.InitXavier(&rng);
  std::vector<ItemId> interacted;
  for (ItemId i = 0; i < 64; ++i) interacted.push_back(i * 7 % kItems);

  Scorer sc(model, width);
  for (auto _ : state) {
    sc.BeginUser(user.Row(0), table, interacted);
    double sum = 0;
    for (size_t j = 0; j < kItems; ++j) {
      sum += sc.Score(table, theta, static_cast<ItemId>(j));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kItems);
}
BENCHMARK(BM_ScorerFullCatalogue)
    ->Args({8, 0})
    ->Args({32, 0})
    ->Args({8, 1})
    ->Args({32, 1});

void BM_AdamStep(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  Matrix param = RandomTable(kItems, width, 17);
  Matrix grad = RandomTable(kItems, width, 19);
  Adam adam;
  for (auto _ : state) {
    adam.Step(&param, grad);
    benchmark::DoNotOptimize(param);
  }
  state.SetItemsProcessed(state.iterations() * param.size());
}
BENCHMARK(BM_AdamStep)->Arg(8)->Arg(32)->Arg(128);

void BM_DecorrelationLossAndGrad(benchmark::State& state) {
  const size_t width = static_cast<size_t>(state.range(0));
  const size_t sample_rows = static_cast<size_t>(state.range(1));
  Matrix table = RandomTable(kItems, width, 23);
  Matrix grad(kItems, width);
  Rng rng(29);
  for (auto _ : state) {
    grad.SetZero();
    benchmark::DoNotOptimize(
        DecorrelationLossAndGrad(table, 1.0, sample_rows, &rng, &grad));
  }
}
BENCHMARK(BM_DecorrelationLossAndGrad)
    ->Args({32, 0})
    ->Args({32, 256})
    ->Args({128, 256});

void BM_EnsembleDistill(benchmark::State& state) {
  const size_t kd_items = static_cast<size_t>(state.range(0));
  Matrix s = RandomTable(kItems, 8, 31);
  Matrix m = RandomTable(kItems, 16, 37);
  Matrix l = RandomTable(kItems, 32, 41);
  DistillationOptions opt;
  opt.kd_items = kd_items;
  opt.steps = 2;
  opt.lr = 0.001;
  Rng rng(43);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EnsembleDistill({&s, &m, &l}, opt, &rng));
  }
}
BENCHMARK(BM_EnsembleDistill)->Arg(32)->Arg(64)->Arg(128);

void BM_SymmetricEigenvalues(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix cov = CovarianceMatrix(RandomTable(512, n, 47));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SymmetricEigenvalues(cov));
  }
}
BENCHMARK(BM_SymmetricEigenvalues)->Arg(8)->Arg(32)->Arg(128);

void BM_NegativeSampling(benchmark::State& state) {
  SyntheticConfig cfg = MovieLensConfig(0.05);
  auto ds = Dataset::FromInteractions(GenerateInteractions(cfg),
                                      cfg.num_users, cfg.num_items)
                .value();
  Rng rng(53);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.BuildLocalEpoch(0, &rng));
  }
}
BENCHMARK(BM_NegativeSampling);

// --- Sparse vs dense client-update path -----------------------------------
//
// One federated aggregation round at paper scale: catalogue >= 3k items
// (arg 1 selects the ML-1M catalogue, 3,706 items, or the Anime catalogue,
// 6,888), 256 clients per round, width 32. Clients carry data-poor
// histories (median ~24 interactions — the Us regime that motivates model
// heterogeneity), so the dense path's O(items × width) per-client cost
// dominates. BM_FederatedRound/0/* is the dense reference, /1/* the sparse
// row-touched path; the ratio of the two timings is the per-round
// client-update speedup reported in docs/PERFORMANCE.md.

struct RoundBenchSetup {
  std::unique_ptr<Dataset> ds;
  std::vector<ClientState> clients;

  static constexpr size_t kClientsPerRound = 256;
  static constexpr size_t kWidth = 32;

  static RoundBenchSetup& Get(bool anime) {
    // Lazy per-catalogue so a filtered run only generates what it uses.
    if (anime) {
      static RoundBenchSetup setup(true);
      return setup;
    }
    static RoundBenchSetup setup(false);
    return setup;
  }

  explicit RoundBenchSetup(bool anime) {
    SyntheticConfig cfg = anime ? AnimeConfig(1.0)       // 6,888 items
                                : MovieLensConfig(1.0);  // 3,706 items
    cfg.num_users = 2048;
    cfg.lognormal_mu = std::log(24.0);  // data-poor (Us) histories
    ds = std::make_unique<Dataset>(
        Dataset::FromInteractions(GenerateInteractions(cfg), cfg.num_users,
                                  cfg.num_items)
            .value());
    Rng root(71);
    clients.resize(kClientsPerRound);
    for (size_t u = 0; u < kClientsPerRound; ++u) {
      InitClient(&clients[u], static_cast<UserId>(u), Group::kLarge, kWidth,
                 0.1, root);
    }
  }
};

void BM_FederatedRound(benchmark::State& state) {
  const bool use_sparse = state.range(0) != 0;
  RoundBenchSetup& setup = RoundBenchSetup::Get(state.range(1) != 0);
  // arg 2 (default on): batched scoring kernels vs the per-sample
  // reference — the training-side half of the batched-layer speedup.
  const bool use_batched = state.range(2) != 0;
  // arg 3: compute backend (0 fp64 | 1 fp32 scalar | 2 fp32 AVX2). The
  // fp64-vs-fp32_simd ratio on the sparse batched arm is the end-to-end
  // per-round backend speedup recorded in docs/PERFORMANCE.md.
  const int backend = static_cast<int>(state.range(3));

  HeteroServer::Options so;
  so.widths = {RoundBenchSetup::kWidth};
  so.num_items = setup.ds->num_items();
  so.seed = 3;
  HeteroServer server(so);
  LocalTrainer trainer(*setup.ds, BaseModel::kNcf);
  std::vector<LocalTaskSpec> tasks = {{0, RoundBenchSetup::kWidth}};

  LocalTrainerOptions opt;
  opt.local_epochs = 2;
  opt.use_sparse = use_sparse;
  opt.use_batched = use_batched;
  opt.backend = backend == 0 ? ComputeBackend::kFp64 : ComputeBackend::kFp32;
  SetFp32SimdEnabled(backend == 2 && CpuSupportsFp32Simd());

  size_t uploaded_rows = 0;
  for (auto _ : state) {
    server.BeginRound();
    for (auto& client : setup.clients) {
      LocalUpdateResult up = trainer.Train(
          &client, server.table(0), {&server.theta(0)}, tasks, opt);
      uploaded_rows += up.sparse ? up.v_delta_sparse.num_rows()
                                 : up.v_delta.rows();
      server.Accumulate(tasks, up);
    }
    server.FinishRound();
  }
  SetFp32SimdEnabled(false);
  state.SetItemsProcessed(state.iterations() * setup.clients.size());
  state.counters["rows_per_client"] = benchmark::Counter(
      static_cast<double>(uploaded_rows) /
      (static_cast<double>(state.iterations()) *
       static_cast<double>(setup.clients.size())));
}
BENCHMARK(BM_FederatedRound)
    ->Args({0, 0, 1, 0})
    ->Args({1, 0, 1, 0})
    ->Args({1, 0, 1, 1})  // sparse + batched, fp32 scalar kernels
    ->Args({1, 0, 1, 2})  // sparse + batched, fp32 AVX2 kernels
    ->Args({0, 1, 1, 0})
    ->Args({1, 1, 1, 0})
    ->Args({1, 1, 1, 2})
    ->Args({1, 0, 0, 0})  // sparse + per-sample reference scoring
    ->Args({1, 1, 0, 0})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(2.0);

// One streaming round against the sharded server (arg 0 = shard count,
// S ∈ {1, 8}): 256 power-law clients build sparse MF-SGD deltas against
// the live table and merge through ServerApi. S=1 is the legacy-apply
// baseline; S=8 adds the range-routing and per-shard buffer overhead the
// scale-out pays per round — bench_sharding measures the same loop
// end-to-end at 1M clients.
void BM_ShardedRound(benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  HeteroServer::Options so;
  so.widths = {32};
  so.num_items = 20000;
  so.seed = 3;
  auto server = MakeServer(so, shards);

  StreamConfig scfg;
  scfg.num_users = 1'000'000;
  scfg.num_items = so.num_items;
  scfg.max_items_per_user = 64;
  scfg.seed = 7;
  const ClientStream stream(scfg);

  StreamLoopOptions opt;
  opt.clients_per_round = 256;
  opt.rounds = 1;
  opt.seed = 9;

  uint64_t scalars = 0;
  size_t rounds = 0;
  for (auto _ : state) {
    StreamLoopResult r = RunStreamingRounds(server.get(), stream, opt);
    scalars += r.upload_scalars;
    rounds += r.rounds;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * opt.clients_per_round);
  state.counters["upload_scalars_per_round"] = benchmark::Counter(
      static_cast<double>(scalars) / static_cast<double>(rounds));
}
BENCHMARK(BM_ShardedRound)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

// Isolated update-machinery cost (no scoring): table download + per-epoch
// gradient zeroing + Adam + upload delta for one client touching `touched`
// rows of a 3,706 x 32 table. This is the pure overhead the sparse path
// eliminates.
void BM_ClientUpdateMachinery(benchmark::State& state) {
  const bool use_sparse = state.range(0) != 0;
  const size_t touched = static_cast<size_t>(state.range(1));
  constexpr size_t kRows = 3706;
  constexpr size_t kW = 32;
  Matrix global = RandomTable(kRows, kW, 83);
  Rng pick(89);
  std::vector<uint32_t> rows;
  for (size_t k = 0; k < touched; ++k) {
    rows.push_back(static_cast<uint32_t>(pick.UniformInt(kRows)));
  }

  Matrix v_local, v_grad(kRows, kW);
  RowOverlayTable overlay;
  SparseRowStore sgrad;
  for (auto _ : state) {
    if (use_sparse) {
      overlay.Reset(&global);
      sgrad.Reset(kRows, kW);
      SparseRowAdam adam;
      adam.Reset(kRows, kW);
      for (int epoch = 0; epoch < 2; ++epoch) {
        sgrad.Clear();
        for (uint32_t r : rows) {
          double* g = sgrad.EnsureRow(r);
          for (size_t d = 0; d < kW; ++d) g[d] += 0.01;
        }
        adam.Step(&overlay, sgrad);
      }
      SparseRowUpdate up;
      up.width = kW;
      up.rows.assign(overlay.touched().begin(), overlay.touched().end());
      up.data.resize(up.rows.size() * kW);
      for (size_t k = 0; k < up.rows.size(); ++k) {
        const double* local = overlay.Row(up.rows[k]);
        const double* base = global.Row(up.rows[k]);
        for (size_t d = 0; d < kW; ++d) {
          up.data[k * kW + d] = local[d] - base[d];
        }
      }
      benchmark::DoNotOptimize(up);
    } else {
      v_local = global;
      Adam adam;
      for (int epoch = 0; epoch < 2; ++epoch) {
        v_grad.SetZero();
        for (uint32_t r : rows) {
          double* g = v_grad.Row(r);
          for (size_t d = 0; d < kW; ++d) g[d] += 0.01;
        }
        adam.Step(&v_local, v_grad);
      }
      Matrix delta = v_local;
      delta.AddScaled(global, -1.0);
      benchmark::DoNotOptimize(delta);
    }
  }
}
BENCHMARK(BM_ClientUpdateMachinery)
    ->Args({0, 128})
    ->Args({1, 128})
    ->Args({0, 512})
    ->Args({1, 512});

// --- Full vs delta downloads ----------------------------------------------
//
// One round of the download direction at paper scale (256 clients/round,
// width 32, ML-3706 or Anime-6888 catalogue, ~200-row subscriptions — the
// interacted items + negative pool of a data-poor client). The full
// variant pays what the dense protocol pays per client: a table-sized
// copy. The delta variant runs the SyncService bookkeeping and copies only
// the stale subscribed rows. Counters report the scalars each protocol
// ships per client; their ratio is the `params_down` reduction quoted in
// docs/SYNC.md (>= 5x required at Anime scale by the PR acceptance bar).
void BM_DeltaDownload(benchmark::State& state) {
  const bool use_delta = state.range(0) != 0;
  const size_t items = state.range(1) != 0 ? 6888 : 3706;  // anime : ml
  constexpr size_t kUsers = 2048;
  constexpr size_t kClients = 256;
  constexpr size_t kW = 32;
  constexpr size_t kSubRows = 200;

  Matrix table = RandomTable(items, kW, 97);
  // Fixed per-client subscriptions (interactions don't churn round to
  // round; fresh negatives do, but a stable pool is the favorable case
  // for delta sync and the paper's negatives are redrawn from a stable
  // catalogue anyway).
  Rng pick(101);
  std::vector<std::vector<uint32_t>> subs(kUsers);
  for (auto& s : subs) {
    for (size_t k = 0; k < kSubRows; ++k) {
      s.push_back(static_cast<uint32_t>(pick.UniformInt(items)));
    }
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }
  const size_t theta_params = 521;  // |Θ| at width 32, hidden {8,8}

  VersionedTable versions(1, items);
  SyncService sync(kUsers);
  std::vector<double> client_buffer(items * kW);
  size_t round = 0;
  size_t shipped_scalars = 0;
  size_t participations = 0;

  for (auto _ : state) {
    versions.AdvanceRound();
    const size_t base = (round * kClients) % kUsers;
    for (size_t c = 0; c < kClients; ++c) {
      const UserId u = static_cast<UserId>((base + c) % kUsers);
      if (use_delta) {
        SyncPlan plan =
            sync.Sync(u, 0, subs[u], table, versions, theta_params);
        // Ship the stale rows (modelled as a packed copy).
        for (size_t k = 0; k < plan.shipped_rows; ++k) {
          const double* src = table.Row(subs[u][k % subs[u].size()]);
          std::copy(src, src + kW, client_buffer.begin() + (k % items) * kW);
        }
        shipped_scalars += plan.params;
      } else {
        // Dense protocol: the whole table lands on the client.
        std::copy(table.data().begin(), table.data().end(),
                  client_buffer.begin());
        shipped_scalars += items * kW + theta_params;
      }
      participations++;
    }
    // The server applies this round's aggregate: the union of the round's
    // client subscriptions is dirtied, which is exactly what the next
    // rounds' deltas must re-ship.
    for (size_t c = 0; c < kClients; ++c) {
      const UserId u = static_cast<UserId>((base + c) % kUsers);
      for (uint32_t r : subs[u]) versions.Stamp(0, r);
    }
    round++;
    benchmark::DoNotOptimize(client_buffer);
  }
  state.SetItemsProcessed(state.iterations() * kClients);
  state.counters["scalars_per_client"] = benchmark::Counter(
      static_cast<double>(shipped_scalars) /
      static_cast<double>(participations));
}
BENCHMARK(BM_DeltaDownload)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

// One-epoch HeteFedRec run on a straggler-heavy simulated network,
// synchronous barrier (arg 0 = 0) vs asynchronous merge-on-arrival
// (arg 0 = 1). This is the end-to-end cost of the two server schedules —
// wall time should be comparable (same client work), while the
// `simulated_seconds` counter shows the virtual-clock gap the async
// schedule exists for. Runs in CI's bench-smoke job with JSON output.
void BM_AsyncVsSyncRound(benchmark::State& state) {
  const bool async_mode = state.range(0) != 0;
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 1;
  cfg.clients_per_round = 16;
  cfg.eval_user_sample = 50;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  cfg.availability = 0.8;
  cfg.net_bandwidth_sigma = 1.0;
  cfg.net_latency_sigma = 0.3;
  cfg.async_mode = async_mode;
  if (!async_mode) cfg.straggler_slack = 4;
  auto runner = ExperimentRunner::Create(cfg).value();

  double simulated = 0.0;
  double ndcg = 0.0;
  for (auto _ : state) {
    ExperimentResult r = runner->Run(Method::kHeteFedRec);
    simulated = r.simulated_seconds;
    ndcg = r.final_eval.overall.ndcg;
    benchmark::DoNotOptimize(r);
  }
  state.counters["simulated_seconds"] = benchmark::Counter(simulated);
  state.counters["ndcg"] = benchmark::Counter(ndcg);
}
BENCHMARK(BM_AsyncVsSyncRound)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// One-epoch HeteFedRec run with fault injection off (arg 0 = 0) vs on
// (arg 0 = 1, a 10% total fault rate behind admission control). The
// injection-off case IS the default path — the CI baseline pins its
// overhead against the robustness layer's plumbing (the injector, gate
// and admission controller must cost nothing when disabled).
void BM_FaultyRound(benchmark::State& state) {
  const bool faulted = state.range(0) != 0;
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 1;
  cfg.clients_per_round = 16;
  cfg.eval_user_sample = 50;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  cfg.availability = 0.8;
  cfg.net_bandwidth_sigma = 1.0;
  cfg.net_latency_sigma = 0.3;
  if (faulted) {
    cfg.fault_upload_loss = 0.03;
    cfg.fault_download_loss = 0.02;
    cfg.fault_crash = 0.01;
    cfg.fault_duplicate = 0.01;
    cfg.fault_corrupt = 0.03;
    cfg.admission_control = true;
    cfg.admit_max_row_norm = 1.0;
    cfg.admit_outlier_z = 6.0;
  }
  auto runner = ExperimentRunner::Create(cfg).value();

  double ndcg = 0.0;
  double injected = 0.0;
  for (auto _ : state) {
    ExperimentResult r = runner->Run(Method::kHeteFedRec);
    ndcg = r.final_eval.overall.ndcg;
    injected = static_cast<double>(r.comm.faults().TotalInjected());
    benchmark::DoNotOptimize(r);
  }
  state.counters["ndcg"] = benchmark::Counter(ndcg);
  state.counters["faults_injected"] = benchmark::Counter(injected);
}
BENCHMARK(BM_FaultyRound)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// One-epoch HeteFedRec run with telemetry off (arg 0 = 0 — the default
// path every other benchmark and test exercises) vs fully on (arg 0 = 1:
// metrics JSONL + Chrome trace to temp files + phase profiling). The
// telemetry-off case pins the requirement that the compiled-in hooks cost
// nothing when no flag is set; the on case bounds the observation cost.
void BM_TelemetryOverhead(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 1;
  cfg.clients_per_round = 16;
  cfg.eval_user_sample = 50;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  cfg.availability = 0.8;
  cfg.net_bandwidth_sigma = 1.0;
  cfg.net_latency_sigma = 0.3;
  if (on) {
    cfg.metrics_out = "/tmp/hfr_bench_metrics.jsonl";
    cfg.trace_out = "/tmp/hfr_bench_trace.json";
    cfg.profile = true;
  }
  auto runner = ExperimentRunner::Create(cfg).value();

  // The profiler logs its phase table at Info after every run; silence it
  // for the timed iterations.
  const LogLevel saved_level = GetLogLevel();
  if (on) SetLogLevel(LogLevel::kWarning);
  double ndcg = 0.0;
  for (auto _ : state) {
    ExperimentResult r = runner->Run(Method::kHeteFedRec);
    ndcg = r.final_eval.overall.ndcg;
    benchmark::DoNotOptimize(r);
  }
  SetLogLevel(saved_level);
  state.counters["ndcg"] = benchmark::Counter(ndcg);
  if (on) {
    std::remove("/tmp/hfr_bench_metrics.jsonl");
    std::remove("/tmp/hfr_bench_trace.json");
  }
}
BENCHMARK(BM_TelemetryOverhead)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Top-20 selection over a full-catalogue score array at the ML (3,706
// items) and Anime (6,888 items) shapes: the partial_sort reference
// (candidate-vector build + partial_sort, mode 0) vs the streaming
// bounded-heap selector (mode 1). Every 13th item is masked, mimicking
// train-item exclusion.
void BM_TopK(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const size_t items = static_cast<size_t>(state.range(1));
  Rng rng(59);
  std::vector<double> scores(items);
  for (auto& s : scores) s = rng.Uniform();
  std::vector<bool> mask(items, false);
  for (size_t i = 0; i < items; i += 13) mask[i] = true;
  TopKSelector selector;
  std::vector<ItemId> topk;
  for (auto _ : state) {
    if (mode == 0) {
      selector.SelectMaskedReference(scores, mask, 20, &topk);
    } else {
      selector.SelectMasked(scores, mask, 20, &topk);
    }
    benchmark::DoNotOptimize(topk);
  }
  state.SetItemsProcessed(state.iterations() * items);
}
BENCHMARK(BM_TopK)
    ->Args({0, 3706})
    ->Args({1, 3706})
    ->Args({0, 6888})
    ->Args({1, 6888});

// Top-k over a candidate slice: the partial_sort reference (mode 0) vs
// the selector (mode 1 — bounded heap at k=20, bucketed cascade once k is
// a sizable fraction of the pool). Shapes: the default candidate-eval
// pool (~220 ids, k=20), a wider pool, and a large-k selection.
void BM_TopKCandidates(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const size_t k = static_cast<size_t>(state.range(2));
  Rng rng(61);
  std::vector<ItemId> ids(n);
  std::vector<double> scores(n);
  ItemId next = 0;
  for (size_t i = 0; i < n; ++i) {
    next += 1 + static_cast<ItemId>(rng.UniformInt(5));
    ids[i] = next;
    scores[i] = rng.Uniform();
  }
  TopKSelector selector;
  std::vector<ItemId> topk;
  for (auto _ : state) {
    if (mode == 0) {
      selector.SelectFromCandidatesReference(ids, scores, k, &topk);
    } else {
      selector.SelectFromCandidates(ids, scores, k, &topk);
    }
    benchmark::DoNotOptimize(topk);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopKCandidates)
    ->Args({0, 220, 20})
    ->Args({1, 220, 20})
    ->Args({0, 2048, 20})
    ->Args({1, 2048, 20})
    ->Args({0, 2048, 512})
    ->Args({1, 2048, 512});

}  // namespace
}  // namespace hetefedrec

BENCHMARK_MAIN();
