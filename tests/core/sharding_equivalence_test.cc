// Sharded parameter server, end to end: the S=1 ShardedServer is
// bit-identical to the single-table HeteroServer for every method and
// base model under both schedules; higher shard counts are seed- and
// thread-deterministic AND still bit-identical to S=1 (padded aggregation
// is row-independent, so the shard count changes memory layout and
// per-shard accounting, never arithmetic — docs/SYNC.md "Sharding"); and
// a sharded run resumes from a kill bit-identical to an uninterrupted
// one, including across a shard-count change (Snapshot exports the same
// single-table layout for every S).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/core/trainer.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  return cfg;
}

ExperimentResult RunWith(const ExperimentConfig& cfg, Method method) {
  auto runner = ExperimentRunner::Create(cfg);
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  return (*runner)->Run(method);
}

void ExpectSameRun(const ExperimentResult& a, const ExperimentResult& b) {
  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.collapse_variance, b.collapse_variance);
  EXPECT_EQ(a.comm.TotalTransmitted(), b.comm.TotalTransmitted());
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
}

// The tentpole contract, strongest form: S=1 sharded vs the legacy
// single-table server, every method, both base models, synchronous
// schedule — bit-identical metrics, comm totals and virtual clock.
TEST(ShardingEquivalence, SingleShardMatchesLegacyAllMethodsSync) {
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    for (Method method : kAllMethods) {
      ExperimentConfig legacy = SmallConfig();
      legacy.base_model = model;
      legacy.server_shards = 0;  // HeteroServer
      ExperimentConfig sharded = legacy;
      sharded.server_shards = 1;  // ShardedServer, one shard

      SCOPED_TRACE(BaseModelName(model) + " / " + MethodName(method));
      ExpectSameRun(RunWith(legacy, method), RunWith(sharded, method));
    }
  }
}

// The same bar under merge-on-arrival: async exercises ApplyUpdate (the
// per-arrival staleness-weighted path) and the async Distill cadence
// instead of the round barrier.
TEST(ShardingEquivalence, SingleShardMatchesLegacyAllMethodsAsync) {
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    for (Method method : kAllMethods) {
      if (method == Method::kStandalone) continue;  // no server to shard
      ExperimentConfig legacy = SmallConfig();
      legacy.base_model = model;
      legacy.async_mode = true;
      legacy.server_shards = 0;
      ExperimentConfig sharded = legacy;
      sharded.server_shards = 1;

      SCOPED_TRACE(BaseModelName(model) + " / " + MethodName(method));
      ExpectSameRun(RunWith(legacy, method), RunWith(sharded, method));
    }
  }
}

// Beyond the S=1 contract: because per-row accumulation and application
// are row-independent and shards merge in ascending item-range order,
// ANY shard count reproduces the legacy tables bit-for-bit.
TEST(ShardingEquivalence, HigherShardCountsMatchLegacy) {
  for (size_t shards : {size_t{2}, size_t{4}}) {
    ExperimentConfig legacy = SmallConfig();
    legacy.server_shards = 0;
    ExperimentConfig sharded = legacy;
    sharded.server_shards = shards;

    SCOPED_TRACE("S=" + std::to_string(shards));
    ExpectSameRun(RunWith(legacy, Method::kHeteFedRec),
                  RunWith(sharded, Method::kHeteFedRec));
  }
}

// Seed determinism at S in {2, 4}: two identical sharded runs agree
// bit-for-bit (the routing, per-shard buffers and merge order are pure
// functions of the config).
TEST(ShardingEquivalence, ShardedRunsReproduceBitForBit) {
  for (size_t shards : {size_t{2}, size_t{4}}) {
    ExperimentConfig cfg = SmallConfig();
    cfg.server_shards = shards;
    SCOPED_TRACE("S=" + std::to_string(shards));
    ExpectSameRun(RunWith(cfg, Method::kHeteFedRec),
                  RunWith(cfg, Method::kHeteFedRec));
  }
}

// Thread-count invariance with shards: round execution threads change
// only who trains when, never the merge order into the sharded tables.
TEST(ShardingEquivalence, ShardedRunsAreThreadCountInvariant) {
  ExperimentConfig cfg = SmallConfig();
  cfg.server_shards = 4;
  ExperimentConfig cfg4 = cfg;
  cfg4.num_threads = 4;
  ExpectSameRun(RunWith(cfg, Method::kHeteFedRec),
                RunWith(cfg4, Method::kHeteFedRec));
}

// Sharded runs get crash-consistent resume for free through
// ServerApi::Snapshot: a run killed mid-epoch and resumed finishes
// bit-identical to the uninterrupted sharded run. The resumed leg
// restores into the same shard count it was written from.
TEST(ShardingEquivalence, ShardedKillResumeIsBitIdentical) {
  const std::string full_ckpt = testing::TempDir() + "/shard_resume_a";
  const std::string kill_ckpt = testing::TempDir() + "/shard_resume_b";
  for (const std::string& p : {full_ckpt, kill_ckpt}) {
    std::remove(p.c_str());
    std::remove((p + ".run").c_str());
  }

  ExperimentConfig cfg = SmallConfig();
  cfg.server_shards = 4;

  ExperimentConfig full_cfg = cfg;
  full_cfg.checkpoint_path = full_ckpt;
  ExperimentResult full = RunWith(full_cfg, Method::kHeteFedRec);

  ExperimentConfig kill_cfg = cfg;
  kill_cfg.checkpoint_path = kill_ckpt;
  kill_cfg.checkpoint_every = 1;
  kill_cfg.debug_stop_after_rounds = 3;
  ExperimentResult killed = RunWith(kill_cfg, Method::kHeteFedRec);
  EXPECT_EQ(killed.final_eval.overall.users, 0u);
  ASSERT_TRUE(std::ifstream(kill_ckpt + ".run").good())
      << "kill point left no run checkpoint";

  ExperimentConfig resume_cfg = kill_cfg;
  resume_cfg.debug_stop_after_rounds = 0;
  resume_cfg.resume_run = true;
  ExperimentResult resumed = RunWith(resume_cfg, Method::kHeteFedRec);

  ExpectSameRun(full, resumed);
  // Strongest form: the final model checkpoints are byte-identical.
  std::ifstream a(full_ckpt, std::ios::binary);
  std::ifstream b(kill_ckpt, std::ios::binary);
  ASSERT_TRUE(a.good());
  ASSERT_TRUE(b.good());
  const std::string bytes_a((std::istreambuf_iterator<char>(a)),
                            std::istreambuf_iterator<char>());
  const std::string bytes_b((std::istreambuf_iterator<char>(b)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
}

// The shard count participates in the resume fingerprint: a checkpoint
// written at S=4 must refuse to resume into an S=2 run (silently mixing
// layouts would be a correctness trap even though the tables happen to
// be portable).
TEST(ShardingEquivalenceDeathTest, ResumeFingerprintIncludesShardCount) {
  const std::string ckpt = testing::TempDir() + "/shard_fingerprint";
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".run").c_str());

  ExperimentConfig cfg = SmallConfig();
  cfg.server_shards = 4;
  cfg.checkpoint_path = ckpt;
  cfg.checkpoint_every = 1;
  cfg.debug_stop_after_rounds = 2;
  RunWith(cfg, Method::kHeteFedRec);
  ASSERT_TRUE(std::ifstream(ckpt + ".run").good());

  ExperimentConfig mismatched = cfg;
  mismatched.debug_stop_after_rounds = 0;
  mismatched.resume_run = true;
  mismatched.server_shards = 2;
  EXPECT_DEATH(RunWith(mismatched, Method::kHeteFedRec), "");
}

}  // namespace
}  // namespace hetefedrec
