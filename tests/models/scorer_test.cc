#include "src/models/scorer.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/math/activations.h"
#include "src/math/init.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

constexpr size_t kItems = 12;

struct Fixture {
  Matrix table;
  Matrix user;
  FeedForwardNet theta;
  std::vector<ItemId> interacted = {1, 4, 7};

  explicit Fixture(size_t width, uint64_t seed = 5)
      : table(kItems, width),
        user(1, width),
        theta(2 * width, {8, 8}) {
    Rng rng(seed);
    InitNormal(&table, 0.3, &rng);
    InitNormal(&user, 0.3, &rng);
    theta.InitXavier(&rng);
  }
};

TEST(BaseModelTest, NameParsing) {
  EXPECT_EQ(BaseModelByName("ncf").value(), BaseModel::kNcf);
  EXPECT_EQ(BaseModelByName("lightgcn").value(), BaseModel::kLightGcn);
  EXPECT_FALSE(BaseModelByName("mf").ok());
  EXPECT_EQ(BaseModelName(BaseModel::kNcf), "Fed-NCF");
  EXPECT_EQ(BaseModelName(BaseModel::kLightGcn), "Fed-LightGCN");
}

TEST(ScorerTest, NcfScoreMatchesManualConcat) {
  Fixture f(4);
  Scorer sc(BaseModel::kNcf, 4);
  sc.BeginUser(f.user.Row(0), f.table, f.interacted);
  double got = sc.Score(f.table, f.theta, 3);

  std::vector<double> x(8);
  for (size_t d = 0; d < 4; ++d) {
    x[d] = f.user(0, d);
    x[4 + d] = f.table(3, d);
  }
  EXPECT_NEAR(got, f.theta.Forward(x.data(), nullptr), 1e-12);
}

TEST(ScorerTest, LightGcnScoreMatchesManualPropagation) {
  Fixture f(4);
  Scorer sc(BaseModel::kLightGcn, 4);
  sc.BeginUser(f.user.Row(0), f.table, f.interacted);

  const double inv_sqrt_d = 1.0 / std::sqrt(3.0);
  std::vector<double> x(8);
  for (size_t d = 0; d < 4; ++d) {
    double agg = f.table(1, d) + f.table(4, d) + f.table(7, d);
    x[d] = 0.5 * (f.user(0, d) + inv_sqrt_d * agg);
  }
  // Non-interacted item 3: pv = v/2.
  for (size_t d = 0; d < 4; ++d) x[4 + d] = 0.5 * f.table(3, d);
  EXPECT_NEAR(sc.Score(f.table, f.theta, 3),
              f.theta.Forward(x.data(), nullptr), 1e-12);

  // Interacted item 4: pv = (v + u/√d)/2.
  for (size_t d = 0; d < 4; ++d) {
    x[4 + d] = 0.5 * (f.table(4, d) + inv_sqrt_d * f.user(0, d));
  }
  EXPECT_NEAR(sc.Score(f.table, f.theta, 4),
              f.theta.Forward(x.data(), nullptr), 1e-12);
}

TEST(ScorerTest, SliceUsesOnlyLeadingColumns) {
  // Scoring at width 2 over a width-6 table must ignore columns >= 2.
  Fixture f(6);
  Fixture narrow_theta(2);
  Scorer sc(BaseModel::kNcf, 2);
  sc.BeginUser(f.user.Row(0), f.table, f.interacted);
  double before = sc.Score(f.table, narrow_theta.theta, 5);

  Matrix perturbed = f.table;
  for (size_t r = 0; r < perturbed.rows(); ++r) {
    for (size_t c = 2; c < perturbed.cols(); ++c) perturbed(r, c) += 100.0;
  }
  sc.BeginUser(f.user.Row(0), perturbed, f.interacted);
  double after = sc.Score(perturbed, narrow_theta.theta, 5);
  EXPECT_NEAR(before, after, 1e-12);
}

TEST(ScorerTest, ScoreAndScoreForTrainAgree) {
  for (BaseModel model : {BaseModel::kNcf, BaseModel::kLightGcn}) {
    Fixture f(4);
    Scorer sc(model, 4);
    sc.BeginUser(f.user.Row(0), f.table, f.interacted);
    Scorer::TrainCache cache;
    for (ItemId j = 0; j < static_cast<ItemId>(kItems); ++j) {
      double a = sc.Score(f.table, f.theta, j);
      double b = sc.ScoreForTrain(f.table, f.theta, j, &cache);
      EXPECT_DOUBLE_EQ(a, b) << "model " << static_cast<int>(model);
    }
  }
}

// Full gradient check of the scoring pipeline: perturb each parameter of
// the item table and the user embedding, compare with analytic gradients
// accumulated over a batch of samples.
void GradientCheck(BaseModel model, size_t width) {
  Fixture f(width, 7);
  std::vector<std::pair<ItemId, double>> batch = {
      {1, 1.0}, {4, 1.0}, {7, 1.0}, {0, 0.0}, {9, 0.0}, {4, 0.0}};

  auto total_loss = [&](const Matrix& table, const Matrix& user) {
    Scorer sc(model, width);
    sc.BeginUser(user.Row(0), table, f.interacted);
    double loss = 0;
    for (auto [item, label] : batch) {
      loss += BceWithLogits(sc.Score(table, f.theta, item), label);
    }
    return loss;
  };

  // Analytic gradients.
  Matrix d_table(kItems, width);
  Matrix d_user(1, width);
  FeedForwardNet d_theta = FeedForwardNet::ZerosLike(f.theta);
  Scorer sc(model, width);
  sc.BeginUser(f.user.Row(0), f.table, f.interacted);
  Scorer::TrainCache cache;
  for (auto [item, label] : batch) {
    double logit = sc.ScoreForTrain(f.table, f.theta, item, &cache);
    sc.BackwardSample(f.theta, cache, BceWithLogitsGrad(logit, label),
                      &d_table, d_user.Row(0), &d_theta);
  }
  sc.FinishUserBackward(&d_table, d_user.Row(0));

  const double h = 1e-6;
  for (size_t r = 0; r < kItems; ++r) {
    for (size_t c = 0; c < width; ++c) {
      Matrix plus = f.table, minus = f.table;
      plus(r, c) += h;
      minus(r, c) -= h;
      double numeric =
          (total_loss(plus, f.user) - total_loss(minus, f.user)) / (2 * h);
      EXPECT_NEAR(d_table(r, c), numeric, 1e-5)
          << "table(" << r << "," << c << ") model "
          << static_cast<int>(model);
    }
  }
  for (size_t c = 0; c < width; ++c) {
    Matrix plus = f.user, minus = f.user;
    plus(0, c) += h;
    minus(0, c) -= h;
    double numeric =
        (total_loss(f.table, plus) - total_loss(f.table, minus)) / (2 * h);
    EXPECT_NEAR(d_user(0, c), numeric, 1e-5) << "user dim " << c;
  }
}

TEST(ScorerTest, NcfGradientMatchesFiniteDifference) {
  GradientCheck(BaseModel::kNcf, 3);
}

TEST(ScorerTest, LightGcnGradientMatchesFiniteDifference) {
  GradientCheck(BaseModel::kLightGcn, 3);
}

TEST(ScorerTest, LightGcnHandlesUserWithNoInteractions) {
  Fixture f(4);
  std::vector<ItemId> empty;
  Scorer sc(BaseModel::kLightGcn, 4);
  sc.BeginUser(f.user.Row(0), f.table, empty);
  double s = sc.Score(f.table, f.theta, 2);
  EXPECT_FALSE(std::isnan(s));
  // With no neighbours pu = u/2, pv = v/2.
  std::vector<double> x(8);
  for (size_t d = 0; d < 4; ++d) {
    x[d] = 0.5 * f.user(0, d);
    x[4 + d] = 0.5 * f.table(2, d);
  }
  EXPECT_NEAR(s, f.theta.Forward(x.data(), nullptr), 1e-12);
}

// Parameterized slice-width sweep: gradients must be exact at every width,
// which is the property the unified dual-task mechanism relies on.
class ScorerWidthTest
    : public testing::TestWithParam<std::tuple<BaseModel, size_t>> {};

TEST_P(ScorerWidthTest, GradientExactAtWidth) {
  auto [model, width] = GetParam();
  GradientCheck(model, width);
}

INSTANTIATE_TEST_SUITE_P(
    AllWidths, ScorerWidthTest,
    testing::Combine(testing::Values(BaseModel::kNcf, BaseModel::kLightGcn),
                     testing::Values(1u, 2u, 4u, 8u)),
    [](const auto& info) {
      return (std::get<0>(info.param) == BaseModel::kNcf ? std::string("Ncf")
                                                         : "LightGcn") +
             "Width" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hetefedrec
