#include "src/data/dataset.h"

#include <gtest/gtest.h>

#include <set>

namespace hetefedrec {
namespace {

std::vector<Interaction> MakeInteractions() {
  // user 0: items 0..9 (10), user 1: items 0..4 (5), user 2: item 5 (1).
  std::vector<Interaction> out;
  for (ItemId i = 0; i < 10; ++i) out.push_back({0, i});
  for (ItemId i = 0; i < 5; ++i) out.push_back({1, i});
  out.push_back({2, 5});
  return out;
}

TEST(DatasetTest, SplitSizesFollowFraction) {
  auto ds = Dataset::FromInteractions(MakeInteractions(), 3, 12);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->TrainItems(0).size(), 8u);
  EXPECT_EQ(ds->TestItems(0).size(), 2u);
  EXPECT_EQ(ds->TrainItems(1).size(), 4u);
  EXPECT_EQ(ds->TestItems(1).size(), 1u);
  // A single-interaction user keeps it in train.
  EXPECT_EQ(ds->TrainItems(2).size(), 1u);
  EXPECT_EQ(ds->TestItems(2).size(), 0u);
}

TEST(DatasetTest, TrainTestDisjointAndComplete) {
  auto ds = Dataset::FromInteractions(MakeInteractions(), 3, 12);
  ASSERT_TRUE(ds.ok());
  for (UserId u = 0; u < 3; ++u) {
    std::set<ItemId> train(ds->TrainItems(u).begin(),
                           ds->TrainItems(u).end());
    std::set<ItemId> test(ds->TestItems(u).begin(), ds->TestItems(u).end());
    for (ItemId i : test) EXPECT_EQ(train.count(i), 0u);
    EXPECT_EQ(train.size() + test.size(), ds->InteractionCount(u));
  }
}

TEST(DatasetTest, DuplicatesCollapsed) {
  std::vector<Interaction> xs = {{0, 1}, {0, 1}, {0, 1}, {0, 2}};
  auto ds = Dataset::FromInteractions(xs, 1, 3);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->InteractionCount(0), 2u);
}

TEST(DatasetTest, CountsAndTotals) {
  auto ds = Dataset::FromInteractions(MakeInteractions(), 3, 12);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_users(), 3u);
  EXPECT_EQ(ds->num_items(), 12u);
  EXPECT_EQ(ds->TotalInteractions(), 16u);
  EXPECT_EQ(ds->TotalTrainInteractions(), 13u);
  EXPECT_EQ(ds->InteractionCount(0), 10u);
}

TEST(DatasetTest, HasInteractedCoversBothSplits) {
  auto ds = Dataset::FromInteractions(MakeInteractions(), 3, 12);
  ASSERT_TRUE(ds.ok());
  for (ItemId i = 0; i < 10; ++i) EXPECT_TRUE(ds->HasInteracted(0, i));
  EXPECT_FALSE(ds->HasInteracted(0, 10));
  EXPECT_FALSE(ds->HasInteracted(2, 0));
}

TEST(DatasetTest, RejectsOutOfRangeIds) {
  EXPECT_FALSE(Dataset::FromInteractions({{5, 0}}, 3, 12).ok());
  EXPECT_FALSE(Dataset::FromInteractions({{0, 50}}, 3, 12).ok());
  EXPECT_FALSE(Dataset::FromInteractions({{-1, 0}}, 3, 12).ok());
}

TEST(DatasetTest, RejectsBadOptions) {
  SplitOptions opt;
  opt.train_fraction = 0.0;
  EXPECT_FALSE(Dataset::FromInteractions({{0, 0}}, 1, 1, opt).ok());
  opt.train_fraction = 0.8;
  opt.negatives_per_positive = -1;
  EXPECT_FALSE(Dataset::FromInteractions({{0, 0}}, 1, 1, opt).ok());
  EXPECT_FALSE(Dataset::FromInteractions({}, 0, 5).ok());
}

TEST(DatasetTest, NegativesNeverTrainPositives) {
  auto ds = Dataset::FromInteractions(MakeInteractions(), 3, 12);
  ASSERT_TRUE(ds.ok());
  std::set<ItemId> train(ds->TrainItems(0).begin(), ds->TrainItems(0).end());
  Rng rng(3);
  for (int rep = 0; rep < 50; ++rep) {
    for (ItemId neg : ds->SampleNegatives(0, 5, &rng)) {
      EXPECT_EQ(train.count(neg), 0u);
    }
  }
}

TEST(DatasetTest, NegativesMayIncludeTestItems) {
  // The standard protocol keeps held-out items eligible as negatives;
  // excluding them would leak the test set into training (see dataset.h).
  auto ds = Dataset::FromInteractions(MakeInteractions(), 3, 12);
  ASSERT_TRUE(ds.ok());
  std::set<ItemId> test(ds->TestItems(0).begin(), ds->TestItems(0).end());
  ASSERT_FALSE(test.empty());
  Rng rng(7);
  bool test_item_sampled = false;
  for (int rep = 0; rep < 500 && !test_item_sampled; ++rep) {
    for (ItemId neg : ds->SampleNegatives(0, 5, &rng)) {
      test_item_sampled |= (test.count(neg) > 0);
    }
  }
  EXPECT_TRUE(test_item_sampled);
}

TEST(DatasetTest, NegativesExhaustedUserReturnsEmpty) {
  // User's training set covers every item: no negatives exist.
  std::vector<Interaction> xs;
  for (ItemId i = 0; i < 4; ++i) xs.push_back({0, i});
  SplitOptions opt;
  opt.train_fraction = 1.0;
  auto ds = Dataset::FromInteractions(xs, 1, 4, opt);
  ASSERT_TRUE(ds.ok());
  ASSERT_EQ(ds->TrainItems(0).size(), 4u);
  Rng rng(5);
  EXPECT_TRUE(ds->SampleNegatives(0, 3, &rng).empty());
}

TEST(DatasetTest, BuildLocalEpochRatioAndLabels) {
  auto ds = Dataset::FromInteractions(MakeInteractions(), 3, 12);
  ASSERT_TRUE(ds.ok());
  Rng rng(7);
  std::vector<Sample> epoch = ds->BuildLocalEpoch(0, &rng);
  // 8 train positives, 4 negatives each.
  EXPECT_EQ(epoch.size(), 8u * 5u);
  std::set<ItemId> train(ds->TrainItems(0).begin(), ds->TrainItems(0).end());
  size_t positives = 0;
  for (const Sample& s : epoch) {
    if (s.label == 1.0) {
      positives++;
      EXPECT_EQ(train.count(s.item), 1u);
    } else {
      EXPECT_EQ(train.count(s.item), 0u);
    }
  }
  EXPECT_EQ(positives, 8u);
}

TEST(DatasetTest, SplitDeterministicPerSeed) {
  SplitOptions a;
  a.seed = 1;
  SplitOptions b;
  b.seed = 1;
  auto d1 = Dataset::FromInteractions(MakeInteractions(), 3, 12, a);
  auto d2 = Dataset::FromInteractions(MakeInteractions(), 3, 12, b);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(d1->TrainItems(0), d2->TrainItems(0));
  SplitOptions c;
  c.seed = 2;
  auto d3 = Dataset::FromInteractions(MakeInteractions(), 3, 12, c);
  ASSERT_TRUE(d3.ok());
  // Different seed: very likely different split of user 0's ten items.
  EXPECT_NE(d1->TrainItems(0), d3->TrainItems(0));
}

TEST(DatasetTest, ItemPopularityCountsBothSplits) {
  auto ds = Dataset::FromInteractions(MakeInteractions(), 3, 12);
  ASSERT_TRUE(ds.ok());
  auto pop = ds->ItemPopularity();
  ASSERT_EQ(pop.size(), 12u);
  size_t total = 0;
  for (size_t c : pop) total += c;
  EXPECT_EQ(total, ds->TotalInteractions());
  // Item 0 was interacted by users 0 and 1.
  EXPECT_EQ(pop[0], 2u);
  EXPECT_EQ(pop[11], 0u);
}

}  // namespace
}  // namespace hetefedrec
