// Internal fp32 kernel implementations behind the backend dispatch.
//
// Two implementation sets with ONE shared algorithm definition:
//
//   *Scalar — portable C++ that emulates the AVX2 code lane-for-lane:
//             every multiply-add is a single-rounding std::fmaf and every
//             horizontal reduction follows the exact 8→4→2→1 tree the
//             vector code retires. Runs on any CPU.
//   *Avx2   — hand-vectorized AVX2+FMA twins, compiled only when the
//             build enables the SIMD translation unit (HFR_HAVE_AVX2_TU,
//             i.e. HFR_DISABLE_AVX2=OFF).
//
// Because _mm256_fmadd_ps and std::fmaf both round once, and both paths
// accumulate in the same lane order, the two sets are bit-identical on the
// same inputs (pinned by tests/math/kernels_test.cc Fp32DispatchBitIdentity).
// Callers never include this header directly — the public templated kernels
// in src/math/kernels.h dispatch here for T = float.
//
// Algorithm shapes (shared by both sets; no exact-zero input skip — the
// fp32 backend trades the fp64 path's bit-identity bookkeeping for
// branchless inner loops):
//
//   j-parallel kernels (GemvBatchResume/AccumulateOuterBatch): each output
//     element j accumulates over its reduction index ascending with one
//     fused multiply-add per term — lanes are independent, so vector width
//     never changes the per-element order.
//   dot-shaped kernels (GemvBatchTransposed, Dot): 8 lane accumulators over
//     ascending 8-element chunks (first chunk a plain product, later chunks
//     fused), reduced (l0+l4, l1+l5, l2+l6, l3+l7) → (s0+s2, s1+s3) →
//     (t0+t1), then the tail elements fused in ascending order.
#ifndef HETEFEDREC_MATH_KERNELS_FP32_H_
#define HETEFEDREC_MATH_KERNELS_FP32_H_

#include <cstddef>

namespace hetefedrec {
namespace fp32 {

// --- portable lane-emulating scalar set -----------------------------------
void GemvBatchResumeScalar(const float* x, size_t batch, size_t x_stride,
                           size_t in_dim, const float* w, const float* init,
                           size_t out_dim, float* out);
void AccumulateOuterBatchScalar(const float* in, const float* delta,
                                size_t batch, size_t in_dim, size_t out_dim,
                                float* grads_w, float* grads_b);
void GemvBatchTransposedScalar(const float* delta, size_t batch,
                               size_t out_dim, const float* w, size_t in_dim,
                               float* dx);
float DotScalar(const float* a, const float* b, size_t n);
void AxpyScalar(float alpha, const float* x, float* y, size_t n);

#ifdef HFR_HAVE_AVX2_TU
// --- AVX2+FMA set (kernels_avx2.cc, compiled with -mavx2 -mfma) -----------
void GemvBatchResumeAvx2(const float* x, size_t batch, size_t x_stride,
                         size_t in_dim, const float* w, const float* init,
                         size_t out_dim, float* out);
void AccumulateOuterBatchAvx2(const float* in, const float* delta,
                              size_t batch, size_t in_dim, size_t out_dim,
                              float* grads_w, float* grads_b);
void GemvBatchTransposedAvx2(const float* delta, size_t batch, size_t out_dim,
                             const float* w, size_t in_dim, float* dx);
float DotAvx2(const float* a, const float* b, size_t n);
void AxpyAvx2(float alpha, const float* x, float* y, size_t n);
#endif  // HFR_HAVE_AVX2_TU

}  // namespace fp32
}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_KERNELS_FP32_H_
