// Delta-sync equivalence: the row-subscription download protocol must be
// invisible to training — bit-identical metrics and tables for all seven
// methods — while shrinking the reported download volume. Also pins
// replica invalidation after RESKD distillation and the determinism of
// the availability / straggler machinery under a fixed seed.
#include <gtest/gtest.h>

#include <vector>

#include "src/core/hetero_server.h"
#include "src/core/local_trainer.h"
#include "src/core/trainer.h"
#include "src/fed/sync/sync_service.h"

namespace hetefedrec {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  return cfg;
}

void ExpectSameEval(const GroupedEval& a, const GroupedEval& b) {
  EXPECT_EQ(a.overall.recall, b.overall.recall);
  EXPECT_EQ(a.overall.ndcg, b.overall.ndcg);
  EXPECT_EQ(a.overall.users, b.overall.users);
  for (int g = 0; g < kNumGroups; ++g) {
    EXPECT_EQ(a.per_group[g].recall, b.per_group[g].recall);
    EXPECT_EQ(a.per_group[g].ndcg, b.per_group[g].ndcg);
  }
}

// Every method, full pipeline: delta sync with replica verification ON
// (every skipped row is CHECKed byte-identical against the live table, so
// a missed version stamp aborts the test) must reproduce the
// full-download run exactly. DDR and RESKD matter here: both dirty rows
// outside any single client's touched set.
TEST(DeltaSyncEquivalence, AllMethodsMatchFullDownloads) {
  for (Method method : kAllMethods) {
    ExperimentConfig full_cfg = SmallConfig();
    full_cfg.full_downloads = true;
    ExperimentConfig delta_cfg = SmallConfig();
    delta_cfg.full_downloads = false;
    delta_cfg.sync_verify_replicas = true;

    auto full_runner = ExperimentRunner::Create(full_cfg);
    auto delta_runner = ExperimentRunner::Create(delta_cfg);
    ASSERT_TRUE(full_runner.ok());
    ASSERT_TRUE(delta_runner.ok());
    ExperimentResult full_res = (*full_runner)->Run(method);
    ExperimentResult delta_res = (*delta_runner)->Run(method);

    SCOPED_TRACE(MethodName(method));
    ExpectSameEval(full_res.final_eval, delta_res.final_eval);
    if (method != Method::kStandalone) {
      EXPECT_EQ(full_res.collapse_variance, delta_res.collapse_variance);
      EXPECT_EQ(full_res.collapse_cv, delta_res.collapse_cv);
      // Default accounting still reports the paper's dense numbers.
      EXPECT_EQ(full_res.comm.TotalTransmitted(),
                delta_res.comm.TotalTransmitted());
    }
  }
}

TEST(DeltaSyncEquivalence, DeltaAccountingShrinksDownloads) {
  ExperimentConfig delta_cfg = SmallConfig();
  delta_cfg.full_downloads = false;
  delta_cfg.sparse_comm_accounting = true;
  ExperimentConfig dense_cfg = SmallConfig();
  dense_cfg.sparse_comm_accounting = true;

  auto delta_runner = ExperimentRunner::Create(delta_cfg);
  auto dense_runner = ExperimentRunner::Create(dense_cfg);
  ASSERT_TRUE(delta_runner.ok());
  ASSERT_TRUE(dense_runner.ok());
  ExperimentResult delta_res = (*delta_runner)->Run(Method::kHeteFedRec);
  ExperimentResult dense_res = (*dense_runner)->Run(Method::kHeteFedRec);

  ExpectSameEval(delta_res.final_eval, dense_res.final_eval);
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    EXPECT_LT(delta_res.comm.AvgDownload(g), dense_res.comm.AvgDownload(g))
        << GroupName(g);
    // Uploads are identical — delta sync only changes the down direction.
    EXPECT_EQ(delta_res.comm.AvgUpload(g), dense_res.comm.AvgUpload(g));
  }
}

// After Distill, rows in the Vkd sample must re-ship even to a client
// that held them fresh — RESKD perturbs every slot's table server-side.
TEST(DeltaSyncEquivalence, ReplicaInvalidationAfterDistill) {
  HeteroServer::Options opts;
  opts.widths = {4, 8};
  opts.num_items = 40;
  opts.seed = 17;
  HeteroServer server(opts);
  SyncService sync(1);

  std::vector<uint32_t> subs(40);
  for (uint32_t r = 0; r < 40; ++r) subs[r] = r;

  server.BeginRound();
  server.FinishRound();
  SyncPlan first =
      sync.Sync(0, 1, subs, server.table(1), server.versions(), 0);
  EXPECT_EQ(first.shipped_rows, 40u);

  // An idle round: nothing to re-ship.
  server.BeginRound();
  server.FinishRound();
  SyncPlan idle =
      sync.Sync(0, 1, subs, server.table(1), server.versions(), 0);
  EXPECT_EQ(idle.shipped_rows, 0u);

  // A round with distillation: exactly the Vkd rows go stale.
  server.BeginRound();
  server.FinishRound();
  DistillationOptions kd;
  kd.kd_items = 8;
  kd.steps = 1;
  kd.lr = 0.01;
  Rng kd_rng(23);
  server.Distill(kd, &kd_rng);
  SyncPlan after =
      sync.Sync(0, 1, subs, server.table(1), server.versions(), 0);
  EXPECT_EQ(after.shipped_rows, 8u);
}

// The availability / over-selection protocol must be a pure function of
// the seed: two identical runs agree bit-for-bit, and the protocol still
// covers the population (uploads keep flowing).
TEST(DeltaSyncDeterminism, AvailabilityAndStragglersReproduce) {
  ExperimentConfig cfg = SmallConfig();
  cfg.full_downloads = false;
  cfg.availability = 0.6;
  cfg.straggler_slack = 4;
  cfg.net_bandwidth_sigma = 0.6;
  cfg.net_latency_sigma = 0.2;
  cfg.net_compute_per_sample = 1e-6;

  auto runner_a = ExperimentRunner::Create(cfg);
  auto runner_b = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner_a.ok());
  ASSERT_TRUE(runner_b.ok());
  ExperimentResult a = (*runner_a)->Run(Method::kHeteFedRec);
  ExperimentResult b = (*runner_b)->Run(Method::kHeteFedRec);

  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.collapse_variance, b.collapse_variance);
  EXPECT_EQ(a.comm.TotalTransmitted(), b.comm.TotalTransmitted());
  size_t participations = 0;
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    participations += a.comm.Participations(g);
  }
  EXPECT_GT(participations, 0u);
}

// ... and thread count must not change the outcome even with stragglers
// in play (winners merge in batch order, not completion order).
TEST(DeltaSyncDeterminism, StragglerRunsAreThreadCountInvariant) {
  ExperimentConfig cfg = SmallConfig();
  cfg.availability = 0.7;
  cfg.straggler_slack = 3;
  cfg.net_bandwidth_sigma = 0.4;
  ExperimentConfig cfg4 = cfg;
  cfg4.num_threads = 4;

  auto serial = ExperimentRunner::Create(cfg);
  auto parallel = ExperimentRunner::Create(cfg4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExperimentResult a = (*serial)->Run(Method::kHeteFedRec);
  ExperimentResult b = (*parallel)->Run(Method::kHeteFedRec);
  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.collapse_variance, b.collapse_variance);
  EXPECT_EQ(a.comm.TotalTransmitted(), b.comm.TotalTransmitted());
}

// Over-selection with everyone online and no network noise: every round
// still merges exactly clients_per_round updates, so the acceptance bar
// "availability 1.0 / no stragglers == paper protocol" holds by
// construction and the slack only adds discarded work.
TEST(DeltaSyncDeterminism, DeadlineDropsStragglers) {
  ExperimentConfig cfg = SmallConfig();
  cfg.net_latency = 0.05;
  cfg.round_deadline = 0.01;  // everyone misses it
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  ExperimentResult r = (*runner)->Run(Method::kAllSmall);
  size_t uploads = 0;
  for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
    uploads += r.comm.Participations(g);
  }
  // No update ever merges; the round budget caps the epoch.
  EXPECT_EQ(uploads, 0u);
}

}  // namespace
}  // namespace hetefedrec
