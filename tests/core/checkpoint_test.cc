#include "src/core/checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/hetero_server.h"
#include "src/math/init.h"

namespace hetefedrec {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  InitNormal(&m, 1.0, &rng);
  return m;
}

TEST(CheckpointTest, MatrixRoundTripBitExact) {
  Matrix m = RandomMatrix(7, 5, 1);
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrix(&ss, m).ok());
  auto r = ReadMatrix(&ss);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->SameShape(m));
  for (size_t i = 0; i < m.data().size(); ++i) {
    EXPECT_EQ(r->data()[i], m.data()[i]);  // bit exact, no tolerance
  }
}

TEST(CheckpointTest, MetaRoundTrip) {
  std::stringstream ss;
  ASSERT_TRUE(WriteMeta(&ss, "base_model", "ncf").ok());
  auto r = ReadMeta(&ss);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->first, "base_model");
  EXPECT_EQ(r->second, "ncf");
}

TEST(CheckpointTest, HeaderValidation) {
  std::stringstream ss;
  ASSERT_TRUE(WriteCheckpointHeader(&ss).ok());
  EXPECT_TRUE(ReadCheckpointHeader(&ss).ok());

  std::stringstream bad("NOPE");
  EXPECT_FALSE(ReadCheckpointHeader(&bad).ok());
}

TEST(CheckpointTest, TruncatedMatrixFails) {
  Matrix m = RandomMatrix(4, 4, 2);
  std::stringstream ss;
  ASSERT_TRUE(WriteMatrix(&ss, m).ok());
  std::string bytes = ss.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2));
  auto r = ReadMatrix(&cut);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CheckpointTest, WrongTagFails) {
  std::stringstream ss;
  ASSERT_TRUE(WriteMeta(&ss, "k", "v").ok());
  EXPECT_FALSE(ReadMatrix(&ss).ok());
}

TEST(CheckpointTest, FfnRoundTripPreservesArchitectureAndOutputs) {
  Rng rng(3);
  FeedForwardNet net(12, {8, 8});
  net.InitXavier(&rng);
  std::stringstream ss;
  ASSERT_TRUE(WriteFfn(&ss, net).ok());
  auto r = ReadFfn(&ss);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->input_dim(), 12u);
  EXPECT_EQ(r->num_layers(), 3u);
  std::vector<double> x(12, 0.25);
  EXPECT_EQ(r->Forward(x.data(), nullptr), net.Forward(x.data(), nullptr));
}

TEST(CheckpointTest, ServerSaveLoadRoundTrip) {
  HeteroServer::Options opt;
  opt.widths = {4, 8, 16};
  opt.num_items = 25;
  opt.seed = 5;
  HeteroServer server(opt);

  std::string path = TempPath("server_ckpt.bin");
  ASSERT_TRUE(SaveServerCheckpoint(path, server, "lightgcn").ok());
  auto ckpt = LoadServerCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_EQ(ckpt->base_model_name, "lightgcn");
  ASSERT_EQ(ckpt->tables.size(), 3u);
  ASSERT_EQ(ckpt->thetas.size(), 3u);
  for (size_t s = 0; s < 3; ++s) {
    ASSERT_TRUE(ckpt->tables[s].SameShape(server.table(s)));
    for (size_t i = 0; i < ckpt->tables[s].data().size(); ++i) {
      EXPECT_EQ(ckpt->tables[s].data()[i], server.table(s).data()[i]);
    }
    EXPECT_EQ(ckpt->thetas[s].ParamCount(), server.theta(s).ParamCount());
  }
  std::remove(path.c_str());
}

TEST(CheckpointTest, LoadMissingFileFails) {
  auto r = LoadServerCheckpoint(TempPath("no_such_ckpt.bin"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(CheckpointTest, LoadForeignFileFails) {
  std::string path = TempPath("foreign.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a checkpoint at all, not even close";
  }
  auto r = LoadServerCheckpoint(path);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointTest, TruncatedServerCheckpointFails) {
  HeteroServer::Options opt;
  opt.widths = {4};
  opt.num_items = 10;
  opt.seed = 7;
  HeteroServer server(opt);
  std::string path = TempPath("trunc_ckpt.bin");
  ASSERT_TRUE(SaveServerCheckpoint(path, server, "ncf").ok());
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  std::string bytes = buf.str();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(LoadServerCheckpoint(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hetefedrec
