// CSV import/export so real datasets (MovieLens etc.) can be dropped in.
//
// Format: one `user,item[,rating]` row per interaction; a header row is
// detected and skipped; ratings are binarized (any value counts as an
// implicit positive, matching §V-A).
#ifndef HETEFEDREC_DATA_CSV_H_
#define HETEFEDREC_DATA_CSV_H_

#include <string>
#include <vector>

#include "src/data/types.h"
#include "src/util/status.h"

namespace hetefedrec {

/// Loads interactions from `path`. User/item ids are remapped to a dense
/// [0, n) range in first-appearance order; the mapping sizes are returned
/// through the out-parameters.
StatusOr<std::vector<Interaction>> LoadInteractionsCsv(const std::string& path,
                                                       size_t* num_users,
                                                       size_t* num_items);

/// Writes interactions as `user,item` rows with a header.
Status SaveInteractionsCsv(const std::string& path,
                           const std::vector<Interaction>& interactions);

}  // namespace hetefedrec

#endif  // HETEFEDREC_DATA_CSV_H_
