// Sparse/dense equivalence: the sparse row-touched client-update path and
// the multithreaded round executor must be *bit-identical* to the dense
// serial reference — same tables, same thetas, same metrics. These tests
// compare doubles with EXPECT_EQ on purpose.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/hetero_server.h"
#include "src/core/local_trainer.h"
#include "src/core/trainer.h"
#include "src/math/init.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

constexpr size_t kUsers = 12;
constexpr size_t kItems = 120;

Dataset MakeDataset() {
  std::vector<Interaction> xs;
  for (UserId u = 0; u < static_cast<UserId>(kUsers); ++u) {
    for (int k = 0; k < 10; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 13 + k * 7) % kItems)});
    }
  }
  return Dataset::FromInteractions(xs, kUsers, kItems).value();
}

void ExpectSameMatrix(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_TRUE(a.SameShape(b)) << what;
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      ASSERT_EQ(a(r, c), b(r, c)) << what << " row " << r << " col " << c;
    }
  }
}

void ExpectSameFfn(const FeedForwardNet& a, const FeedForwardNet& b,
                   const char* what) {
  ASSERT_EQ(a.num_layers(), b.num_layers()) << what;
  for (size_t l = 0; l < a.num_layers(); ++l) {
    ExpectSameMatrix(a.weight(l), b.weight(l), what);
    ExpectSameMatrix(a.bias(l), b.bias(l), what);
  }
}

struct FedFixture {
  HeteroServer server;
  std::vector<ClientState> clients;
  LocalTrainer trainer;

  FedFixture(const Dataset& ds, BaseModel model, bool shared)
      : server([&] {
          HeteroServer::Options o;
          o.widths = {4, 8, 16};
          o.num_items = kItems;
          o.shared_aggregation = shared;
          o.seed = 5;
          return o;
        }()),
        trainer(ds, model) {
    Rng root(9);
    clients.resize(kUsers);
    for (UserId u = 0; u < static_cast<UserId>(kUsers); ++u) {
      Group g = static_cast<Group>(u % 3);
      size_t width = server.width(static_cast<size_t>(u % 3));
      InitClient(&clients[u], u, g, width, 0.1, root);
    }
  }
};

// Runs `rounds` federated rounds over all clients with UDL-style task
// lists, DDR on medium/large clients, and the validation carve-out, and
// returns the server.
void RunRounds(FedFixture* f, const Dataset& ds, bool use_sparse,
               int rounds, AggregationMode agg) {
  (void)ds;
  for (int round = 0; round < rounds; ++round) {
    f->server.BeginRound();
    for (UserId u = 0; u < static_cast<UserId>(kUsers); ++u) {
      const size_t slot = static_cast<size_t>(u % 3);
      std::vector<LocalTaskSpec> tasks;
      std::vector<const FeedForwardNet*> thetas;
      for (size_t t = 0; t <= slot; ++t) {
        tasks.push_back(LocalTaskSpec{t, f->server.width(t)});
        thetas.push_back(&f->server.theta(t));
      }
      LocalTrainerOptions opt;
      opt.local_epochs = 3;
      opt.use_sparse = use_sparse;
      opt.apply_ddr = slot > 0;
      opt.alpha = 1.0;
      opt.ddr_sample_rows = 32;
      opt.validation_fraction = 0.2;
      opt.min_validation_positives = 5;
      LocalUpdateResult up = f->trainer.Train(
          &f->clients[u], f->server.table(slot), thetas, tasks, opt);
      EXPECT_EQ(up.sparse, use_sparse);
      f->server.Accumulate(tasks, up, agg == AggregationMode::kDataWeighted
                                          ? 10.0
                                          : 1.0);
    }
    f->server.FinishRound();
  }
}

class SparseEquivalenceRounds
    : public ::testing::TestWithParam<std::tuple<BaseModel, bool>> {};

TEST_P(SparseEquivalenceRounds, TablesAndThetasBitIdentical) {
  const BaseModel model = std::get<0>(GetParam());
  const bool shared = std::get<1>(GetParam());
  Dataset ds = MakeDataset();
  FedFixture dense(ds, model, shared);
  FedFixture sparse(ds, model, shared);

  RunRounds(&dense, ds, /*use_sparse=*/false, 3, AggregationMode::kMean);
  RunRounds(&sparse, ds, /*use_sparse=*/true, 3, AggregationMode::kMean);

  for (size_t s = 0; s < dense.server.num_slots(); ++s) {
    ExpectSameMatrix(dense.server.table(s), sparse.server.table(s), "table");
    ExpectSameFfn(dense.server.theta(s), sparse.server.theta(s), "theta");
  }
  for (UserId u = 0; u < static_cast<UserId>(kUsers); ++u) {
    ExpectSameMatrix(dense.clients[u].user_embedding,
                     sparse.clients[u].user_embedding, "user embedding");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, SparseEquivalenceRounds,
    ::testing::Combine(::testing::Values(BaseModel::kNcf,
                                         BaseModel::kLightGcn),
                       ::testing::Values(true, false)));

TEST(SparseEquivalenceRounds, MixedDenseAndSparseClientsAgree) {
  // A round may mix dense and sparse uploads (e.g. staged rollout); the
  // aggregate must match the all-dense reference.
  Dataset ds = MakeDataset();
  FedFixture ref(ds, BaseModel::kNcf, /*shared=*/true);
  FedFixture mixed(ds, BaseModel::kNcf, /*shared=*/true);

  auto run = [&](FedFixture* f, bool mix) {
    f->server.BeginRound();
    for (UserId u = 0; u < static_cast<UserId>(kUsers); ++u) {
      const size_t slot = static_cast<size_t>(u % 3);
      std::vector<LocalTaskSpec> tasks;
      std::vector<const FeedForwardNet*> thetas;
      for (size_t t = 0; t <= slot; ++t) {
        tasks.push_back(LocalTaskSpec{t, f->server.width(t)});
        thetas.push_back(&f->server.theta(t));
      }
      LocalTrainerOptions opt;
      opt.local_epochs = 2;
      opt.use_sparse = mix && (u % 2 == 0);
      LocalUpdateResult up = f->trainer.Train(
          &f->clients[u], f->server.table(slot), thetas, tasks, opt);
      f->server.Accumulate(tasks, up);
    }
    f->server.FinishRound();
  };
  run(&ref, false);
  run(&mixed, true);
  for (size_t s = 0; s < ref.server.num_slots(); ++s) {
    ExpectSameMatrix(ref.server.table(s), mixed.server.table(s), "table");
  }
}

// --- End-to-end: every method, full ExperimentRunner pipeline -----------

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 33;
  return cfg;
}

void ExpectSameCheckpoint(const std::string& path_a,
                          const std::string& path_b) {
  auto a = LoadServerCheckpoint(path_a);
  auto b = LoadServerCheckpoint(path_b);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->tables.size(), b->tables.size());
  for (size_t s = 0; s < a->tables.size(); ++s) {
    ExpectSameMatrix(a->tables[s], b->tables[s], "ckpt table");
    ExpectSameFfn(a->thetas[s], b->thetas[s], "ckpt theta");
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(SparseEquivalenceEndToEnd, AllMethodsMatchDenseReference) {
  for (Method method : kAllMethods) {
    ExperimentConfig dense_cfg = SmallConfig();
    dense_cfg.use_sparse_updates = false;
    ExperimentConfig sparse_cfg = SmallConfig();
    sparse_cfg.use_sparse_updates = true;
    const bool federated = method != Method::kStandalone;
    if (federated) {
      dense_cfg.checkpoint_path = "/tmp/hfr_eq_dense.ckpt";
      sparse_cfg.checkpoint_path = "/tmp/hfr_eq_sparse.ckpt";
    }

    auto dense_runner = ExperimentRunner::Create(dense_cfg);
    auto sparse_runner = ExperimentRunner::Create(sparse_cfg);
    ASSERT_TRUE(dense_runner.ok());
    ASSERT_TRUE(sparse_runner.ok());
    ExperimentResult dense_res = (*dense_runner)->Run(method);
    ExperimentResult sparse_res = (*sparse_runner)->Run(method);

    SCOPED_TRACE(MethodName(method));
    ExpectSameEval(dense_res.final_eval, sparse_res.final_eval);
    if (federated) {
      EXPECT_EQ(dense_res.collapse_variance, sparse_res.collapse_variance);
      EXPECT_EQ(dense_res.collapse_cv, sparse_res.collapse_cv);
      // Default accounting keeps the paper's dense upload counts.
      EXPECT_EQ(dense_res.comm.TotalTransmitted(),
                sparse_res.comm.TotalTransmitted());
      ExpectSameCheckpoint(dense_cfg.checkpoint_path,
                           sparse_cfg.checkpoint_path);
    }
  }
}

TEST(SparseEquivalenceEndToEnd, SparseAccountingShrinksUploads) {
  ExperimentConfig cfg = SmallConfig();
  cfg.use_sparse_updates = true;
  cfg.sparse_comm_accounting = true;
  auto runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner.ok());
  ExperimentResult res = (*runner)->Run(Method::kHeteFedRec);

  ExperimentConfig ref_cfg = SmallConfig();
  ref_cfg.use_sparse_updates = true;
  auto ref_runner = ExperimentRunner::Create(ref_cfg);
  ASSERT_TRUE(ref_runner.ok());
  ExperimentResult ref = (*ref_runner)->Run(Method::kHeteFedRec);

  // Same training outcome, smaller reported upload volume.
  ExpectSameEval(res.final_eval, ref.final_eval);
  EXPECT_LT(res.comm.TotalTransmitted(), ref.comm.TotalTransmitted());
}

TEST(ThreadDeterminism, OneAndFourThreadsBitIdentical) {
  ExperimentConfig serial_cfg = SmallConfig();
  serial_cfg.num_threads = 1;
  serial_cfg.checkpoint_path = "/tmp/hfr_thr1.ckpt";
  ExperimentConfig parallel_cfg = SmallConfig();
  parallel_cfg.num_threads = 4;
  parallel_cfg.checkpoint_path = "/tmp/hfr_thr4.ckpt";

  auto serial = ExperimentRunner::Create(serial_cfg);
  auto parallel = ExperimentRunner::Create(parallel_cfg);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExperimentResult serial_res = (*serial)->Run(Method::kHeteFedRec);
  ExperimentResult parallel_res = (*parallel)->Run(Method::kHeteFedRec);

  ExpectSameEval(serial_res.final_eval, parallel_res.final_eval);
  EXPECT_EQ(serial_res.collapse_variance, parallel_res.collapse_variance);
  EXPECT_EQ(serial_res.comm.TotalTransmitted(),
            parallel_res.comm.TotalTransmitted());
  ExpectSameCheckpoint(serial_cfg.checkpoint_path,
                       parallel_cfg.checkpoint_path);
}

}  // namespace
}  // namespace hetefedrec
