// Sparse row-touched containers for the client→server update path.
//
// A federated client's local samples touch only O(|train items| +
// negatives + DDR sample rows) item-embedding rows per round, yet the
// dense hot path pays O(num_items × width) per client for the download
// copy, the per-epoch gradient zeroing, the Adam sweep and the upload
// delta. The three types here make every one of those steps proportional
// to the rows actually touched:
//
//   SparseRowStoreT  — packed (row index → fixed-width row data) map with
//                      O(1) lookup via a dense position table and O(touched)
//                      reset. Used for gradient accumulators and per-row
//                      Adam moments.
//   RowOverlayTableT — copy-on-write view over a base Matrix: reads fall
//                      through to the base until a row is first mutated.
//                      This is the client's "local table" without the
//                      dense download copy.
//   SparseRowUpdate  — immutable packed upload (sorted touched rows +
//                      packed per-row delta data), the sparse analogue of
//                      the dense `v_delta` matrix. Always double: the wire
//                      and the server aggregation are fp64 storage of
//                      record on every compute backend.
//
// The stores and overlays are templated on the working scalar for the fp32
// compute backend (src/math/backend.h). A float overlay still sits over the
// *double* base table — rows are cast on first touch (writes) or into a
// read cache (reads), so the conversion cost stays O(rows the client
// actually visits), never O(catalogue).
//
// Correctness invariant (see docs/PERFORMANCE.md): a row whose gradient is
// exactly zero in every local epoch is provably left untouched by Adam
// (its moments stay zero, so the step is exactly 0.0), hence omitting it
// from the upload is bit-identical to uploading a zero delta row.
#ifndef HETEFEDREC_MATH_SPARSE_H_
#define HETEFEDREC_MATH_SPARSE_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "src/math/matrix.h"

namespace hetefedrec {

/// \brief Packed set of touched rows, each holding `cols` scalars.
///
/// Lookup is O(1) through a dense `pos_` table sized to the logical row
/// count; `Clear` is O(touched), so reusing one store across clients and
/// epochs costs nothing proportional to the catalogue.
template <typename T>
class SparseRowStoreT {
 public:
  using Scalar = T;

  SparseRowStoreT() = default;

  /// Re-shapes the store for a `num_rows x cols` logical matrix and drops
  /// all touched rows. O(touched_prev) when the shape is unchanged.
  void Reset(size_t num_rows, size_t cols);

  /// Drops all touched rows, keeping the logical shape and capacity.
  void Clear();

  size_t rows() const { return num_rows_; }
  size_t cols() const { return cols_; }

  /// Touched row indices in first-touch order. Not sorted.
  const std::vector<uint32_t>& touched() const { return rows_; }

  bool Has(size_t r) const {
    HFR_CHECK_LT(r, num_rows_);
    return pos_[r] >= 0;
  }

  /// Row data if touched, nullptr otherwise.
  const T* RowOrNull(size_t r) const {
    HFR_CHECK_LT(r, num_rows_);
    const int64_t p = pos_[r];
    return p < 0 ? nullptr : data_.data() + static_cast<size_t>(p) * cols_;
  }
  T* RowOrNull(size_t r) {
    HFR_CHECK_LT(r, num_rows_);
    const int64_t p = pos_[r];
    return p < 0 ? nullptr : data_.data() + static_cast<size_t>(p) * cols_;
  }

  /// Row data, created zero-filled on first touch. The returned pointer is
  /// invalidated by the next EnsureRow/MutableRow of a *new* row.
  T* EnsureRow(size_t r);

  /// Alias of EnsureRow so the store can stand in for a Matrix gradient
  /// accumulator in templated backward passes.
  T* MutableRow(size_t r) { return EnsureRow(r); }

  /// Copies the packed touched state (rows + data, NOT the O(num_rows)
  /// position table) into the caller's buffers. O(touched).
  void Snapshot(std::vector<uint32_t>* rows, std::vector<T>* data) const;

  /// Replaces the touched set with a snapshot taken from a store of the
  /// same logical shape. O(touched_current + touched_snapshot): the
  /// position table is patched incrementally, never reallocated.
  void Restore(const std::vector<uint32_t>& rows, const std::vector<T>& data);

 private:
  size_t num_rows_ = 0;
  size_t cols_ = 0;
  std::vector<int64_t> pos_;  // -1 = untouched, else index into rows_/data_
  std::vector<uint32_t> rows_;
  AlignedVector<T> data_;  // rows_.size() * cols_, packed
};

using SparseRowStore = SparseRowStoreT<double>;
using SparseRowStoreF = SparseRowStoreT<float>;

extern template class SparseRowStoreT<double>;
extern template class SparseRowStoreT<float>;

/// \brief Copy-on-write row view over a base Matrix (always double).
///
/// Reads (`Row`) return the overlay row when present and the base row
/// otherwise; `MutableRow` copies the base row into the overlay on first
/// touch. The overlay after training holds exactly the rows whose values
/// can differ from the base — the client's upload set.
///
/// For T = float the base stays the server's double table: `MutableRow`
/// casts the base row on first touch, and `Row` of an untouched row casts
/// it into a separate read cache (so reads never pollute the upload set).
/// Both costs are O(visited rows).
template <typename T>
class RowOverlayTableT {
 public:
  using Scalar = T;

  RowOverlayTableT() = default;

  /// Binds the view to `base` and drops all overlay rows. `base` must
  /// outlive the view (or the next Reset).
  void Reset(const Matrix* base);

  size_t rows() const { return base_->rows(); }
  size_t cols() const { return base_->cols(); }

  const T* Row(size_t r) const {
    const T* p = local_.RowOrNull(r);
    if (p != nullptr) return p;
    if constexpr (std::is_same_v<T, double>) {
      return base_->Row(r);
    } else {
      return CachedBaseRow(r);
    }
  }

  /// Overlay row for r, initialized from the base row on first touch.
  T* MutableRow(size_t r);

  /// Overlay row indices in first-touch order.
  const std::vector<uint32_t>& touched() const { return local_.touched(); }

  const Matrix& base() const { return *base_; }

  /// Read access to the overlay store (tests / diagnostics).
  const SparseRowStoreT<T>& local() const { return local_; }

  /// Packed copy of the overlay rows (used to snapshot the best validation
  /// epoch). O(touched) — deliberately not a store copy, whose position
  /// table would cost O(num_items) per improving epoch.
  void SnapshotLocal(std::vector<uint32_t>* rows, std::vector<T>* data) const {
    local_.Snapshot(rows, data);
  }

  /// Replaces the overlay with a snapshot (rows touched after the snapshot
  /// revert to base values by vanishing from the overlay). O(touched).
  void RestoreLocal(const std::vector<uint32_t>& rows,
                    const std::vector<T>& data) {
    local_.Restore(rows, data);
  }

 private:
  // Float path only: lazily cast base rows for read-only access.
  const T* CachedBaseRow(size_t r) const;

  const Matrix* base_ = nullptr;
  SparseRowStoreT<T> local_;
  // mutable: a logically-const read materializes the cast copy.
  mutable SparseRowStoreT<T> read_cache_;
};

using RowOverlayTable = RowOverlayTableT<double>;
using RowOverlayTableF = RowOverlayTableT<float>;

extern template class RowOverlayTableT<double>;
extern template class RowOverlayTableT<float>;

/// \brief Immutable packed upload: touched rows (ascending) + per-row data.
struct SparseRowUpdate {
  size_t width = 0;
  std::vector<uint32_t> rows;  // strictly ascending
  std::vector<double> data;    // rows.size() * width, packed

  bool empty() const { return rows.empty(); }
  size_t num_rows() const { return rows.size(); }

  const double* RowData(size_t k) const { return data.data() + k * width; }

  /// Scalars a real serialization would ship: one index + `width` values
  /// per touched row.
  size_t ParamCount() const { return rows.size() * (width + 1); }

  /// dst->Row(rows[k])[0..width) += scale * RowData(k). `dst` may be wider
  /// (leading-column semantics, Eq. 7-8).
  void AddScaledTo(Matrix* dst, double scale) const;

  /// Dense |num_rows x width| matrix with the packed rows scattered in
  /// (test/debug helper).
  Matrix ToDense(size_t num_rows) const;

  /// Packs every row of `dense` whose values are not all exactly zero
  /// (test/debug helper — production code builds updates from overlays).
  static SparseRowUpdate FromDense(const Matrix& dense);
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_SPARSE_H_
