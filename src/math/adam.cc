#include "src/math/adam.h"

#include <cmath>

namespace hetefedrec {

namespace {

template <typename T>
bool AllFinite(const T* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i])) return false;
  }
  return true;
}

}  // namespace

template <typename T>
void AdamT<T>::Step(MatrixT<T>* param, const MatrixT<T>& grad) {
  HFR_CHECK(param->SameShape(grad));
  if (!AllFinite(grad.data().data(), grad.size())) {
    ++skipped_;
    return;
  }
  if (m_.empty()) {
    m_ = MatrixT<T>(param->rows(), param->cols());
    v_ = MatrixT<T>(param->rows(), param->cols());
  }
  HFR_CHECK(m_.SameShape(*param));
  ++t_;
  const T b1 = static_cast<T>(options_.beta1);
  const T b2 = static_cast<T>(options_.beta2);
  const T one(1);
  // Bias corrections in double regardless of T (cast once): keeps the
  // double path bit-identical and costs one conversion per step.
  const T bias1 =
      static_cast<T>(1.0 - std::pow(options_.beta1, static_cast<double>(t_)));
  const T bias2 =
      static_cast<T>(1.0 - std::pow(options_.beta2, static_cast<double>(t_)));
  const T lr = static_cast<T>(options_.lr);
  const T eps = static_cast<T>(options_.eps);
  T* p = param->data().data();
  T* m = m_.data().data();
  T* v = v_.data().data();
  const T* g = grad.data().data();
  const size_t n = param->size();
  for (size_t i = 0; i < n; ++i) {
    m[i] = b1 * m[i] + (one - b1) * g[i];
    v[i] = b2 * v[i] + (one - b2) * g[i] * g[i];
    T mhat = m[i] / bias1;
    T vhat = v[i] / bias2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

template <typename T>
void AdamT<T>::Reset() {
  m_ = MatrixT<T>();
  v_ = MatrixT<T>();
  t_ = 0;
  skipped_ = 0;
}

template class AdamT<double>;
template class AdamT<float>;

template <typename T>
void SparseRowAdamT<T>::Reset(size_t num_rows, size_t width) {
  moments_.Reset(num_rows, 2 * width);
  t_ = 0;
  skipped_ = 0;
}

template <typename T>
void SparseRowAdamT<T>::Step(RowOverlayTableT<T>* table,
                             const SparseRowStoreT<T>& grad) {
  const size_t w = table->cols();
  HFR_CHECK_EQ(grad.cols(), w);
  HFR_CHECK_EQ(grad.rows(), table->rows());
  HFR_CHECK_EQ(moments_.rows(), table->rows());
  HFR_CHECK_EQ(moments_.cols(), 2 * w);
  for (uint32_t r : grad.touched()) {
    if (!AllFinite(grad.RowOrNull(r), w)) {
      ++skipped_;
      return;
    }
  }
  ++t_;
  const T b1 = static_cast<T>(options_.beta1);
  const T b2 = static_cast<T>(options_.beta2);
  const T one(1);
  const T bias1 =
      static_cast<T>(1.0 - std::pow(options_.beta1, static_cast<double>(t_)));
  const T bias2 =
      static_cast<T>(1.0 - std::pow(options_.beta2, static_cast<double>(t_)));
  const T lr = static_cast<T>(options_.lr);
  const T eps = static_cast<T>(options_.eps);
  // Enroll this step's gradient rows first so pointers into `moments_`
  // stay stable during the update sweep.
  for (uint32_t r : grad.touched()) moments_.EnsureRow(r);
  for (uint32_t r : moments_.touched()) {
    T* m = moments_.RowOrNull(r);
    T* v = m + w;
    const T* g = grad.RowOrNull(r);
    T* p = table->MutableRow(r);
    for (size_t d = 0; d < w; ++d) {
      const T gd = g != nullptr ? g[d] : T(0);
      m[d] = b1 * m[d] + (one - b1) * gd;
      v[d] = b2 * v[d] + (one - b2) * gd * gd;
      const T mhat = m[d] / bias1;
      const T vhat = v[d] / bias2;
      p[d] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
}

template class SparseRowAdamT<double>;
template class SparseRowAdamT<float>;

}  // namespace hetefedrec
