#include "src/core/distillation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/math/init.h"

namespace hetefedrec {
namespace {

Matrix RandomTable(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  InitNormal(&m, 0.5, &rng);
  return m;
}

TEST(RelationMatrixTest, DiagonalOnesAndSymmetry) {
  Matrix t = RandomTable(10, 4, 1);
  std::vector<ItemId> items = {0, 3, 7, 9};
  Matrix rel = RelationMatrix(t, items);
  ASSERT_EQ(rel.rows(), 4u);
  for (size_t a = 0; a < 4; ++a) {
    EXPECT_DOUBLE_EQ(rel(a, a), 1.0);
    for (size_t b = 0; b < 4; ++b) {
      EXPECT_DOUBLE_EQ(rel(a, b), rel(b, a));
      EXPECT_LE(std::abs(rel(a, b)), 1.0 + 1e-12);
    }
  }
}

TEST(RelationMatrixTest, MatchesDirectCosine) {
  Matrix t(3, 2);
  t(0, 0) = 1;
  t(0, 1) = 0;
  t(1, 0) = 0;
  t(1, 1) = 2;
  t(2, 0) = 3;
  t(2, 1) = 3;
  Matrix rel = RelationMatrix(t, {0, 1, 2});
  EXPECT_DOUBLE_EQ(rel(0, 1), 0.0);
  EXPECT_NEAR(rel(0, 2), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(rel(1, 2), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(RelationLossTest, ZeroForIdenticalRelations) {
  Matrix t = RandomTable(8, 3, 2);
  std::vector<ItemId> items = {1, 2, 5};
  Matrix rel = RelationMatrix(t, items);
  EXPECT_DOUBLE_EQ(RelationLoss(rel, rel), 0.0);
}

TEST(RelationLossTest, CountsSquaredDifferences) {
  Matrix a(2, 2), b(2, 2);
  a(0, 1) = 0.5;
  b(0, 1) = 0.1;
  EXPECT_NEAR(RelationLoss(a, b), 0.16, 1e-12);
}

TEST(EnsembleDistillTest, ReducesRelationDisagreement) {
  // Three tables with different widths (the heterogeneous setting).
  Matrix s = RandomTable(30, 4, 3);
  Matrix m = RandomTable(30, 8, 4);
  Matrix l = RandomTable(30, 16, 5);
  DistillationOptions opt;
  opt.kd_items = 30;  // use every item so the loss is comparable
  opt.steps = 20;
  opt.lr = 0.05;
  Rng rng(6);
  double before = EnsembleDistill({&s, &m, &l}, opt, &rng);
  Rng rng2(6);  // same Vkd sample
  double after = EnsembleDistill({&s, &m, &l}, opt, &rng2);
  EXPECT_LT(after, before);
}

TEST(EnsembleDistillTest, IdenticalRelationsAreFixedPoint) {
  // Tables whose rows are identical up to a global scale have identical
  // cosine relations -> ensemble equals each relation -> zero loss and
  // (near-)zero movement.
  Matrix a = RandomTable(12, 4, 7);
  Matrix b = a;
  b.Scale(3.0);
  Matrix a_before = a;
  DistillationOptions opt;
  opt.kd_items = 12;
  opt.steps = 5;
  opt.lr = 0.1;
  Rng rng(8);
  double loss = EnsembleDistill({&a, &b}, opt, &rng);
  EXPECT_NEAR(loss, 0.0, 1e-18);
  for (size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_NEAR(a.data()[i], a_before.data()[i], 1e-9);
  }
}

TEST(EnsembleDistillTest, KdItemsClampedToCatalogue) {
  Matrix a = RandomTable(5, 3, 9);
  Matrix b = RandomTable(5, 6, 10);
  DistillationOptions opt;
  opt.kd_items = 1000;  // > items
  opt.steps = 2;
  opt.lr = 0.01;
  Rng rng(11);
  EXPECT_GE(EnsembleDistill({&a, &b}, opt, &rng), 0.0);
}

TEST(EnsembleDistillTest, ZeroRowsDoNotProduceNans) {
  Matrix a = RandomTable(10, 4, 12);
  for (size_t c = 0; c < 4; ++c) a(3, c) = 0.0;  // dead item embedding
  Matrix b = RandomTable(10, 8, 13);
  DistillationOptions opt;
  opt.kd_items = 10;
  opt.steps = 3;
  opt.lr = 0.05;
  Rng rng(14);
  EnsembleDistill({&a, &b}, opt, &rng);
  for (double v : a.data()) EXPECT_FALSE(std::isnan(v));
  for (double v : b.data()) EXPECT_FALSE(std::isnan(v));
}

TEST(EnsembleDistillTest, GradientStepDescendsLoss) {
  // Single table vs a fixed perturbed target: each DistillStep (via
  // EnsembleDistill with 2 tables where one is frozen by lr=0) should not
  // increase the pre-loss across repeated invocations with the same items.
  Matrix a = RandomTable(20, 4, 15);
  Matrix target_table = RandomTable(20, 4, 16);
  DistillationOptions opt;
  opt.kd_items = 20;
  opt.steps = 10;
  opt.lr = 0.05;
  double prev = 1e9;
  for (int iter = 0; iter < 5; ++iter) {
    Rng rng(17);  // identical Vkd each time (all items anyway)
    double loss = EnsembleDistill({&a, &target_table}, opt, &rng);
    EXPECT_LE(loss, prev + 1e-9);
    prev = loss;
  }
}

}  // namespace
}  // namespace hetefedrec
