// The batched micro-kernels must be bit-identical to their scalar
// reference loops — batching regroups independent accumulator targets but
// never the additions into one target. EXPECT_EQ on doubles is deliberate.
#include "src/math/kernels.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/math/init.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

std::vector<double> RandomBlock(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Normal(0.0, 0.3);
  return v;
}

// The scalar FFN-layer loop (ffn.cc's original Forward body).
void ScalarGemv(const double* x, size_t in_dim, const double* w,
                const double* bias, size_t out_dim, double* out) {
  for (size_t j = 0; j < out_dim; ++j) out[j] = bias[j];
  for (size_t i = 0; i < in_dim; ++i) {
    double xi = x[i];
    if (xi == 0.0) continue;
    for (size_t j = 0; j < out_dim; ++j) out[j] += xi * w[i * out_dim + j];
  }
}

TEST(GemvBatchBiasedTest, BitIdenticalToPerSampleGemv) {
  // Batch sizes straddle the kKernelRowBlock boundary.
  for (size_t batch : {size_t{1}, size_t{7}, size_t{31}, size_t{32},
                       size_t{33}, size_t{100}}) {
    for (size_t in_dim : {size_t{5}, size_t{16}, size_t{64}}) {
      const size_t out_dim = 8;
      std::vector<double> x = RandomBlock(batch * in_dim, 1 + batch);
      std::vector<double> w = RandomBlock(in_dim * out_dim, 2 + in_dim);
      std::vector<double> bias = RandomBlock(out_dim, 3);
      // Exercise the zero-skip path.
      for (size_t t = 0; t < x.size(); t += 3) x[t] = 0.0;

      std::vector<double> batched(batch * out_dim);
      GemvBatchBiased(x.data(), batch, in_dim, w.data(), bias.data(),
                      out_dim, batched.data());

      std::vector<double> ref(out_dim);
      for (size_t b = 0; b < batch; ++b) {
        ScalarGemv(x.data() + b * in_dim, in_dim, w.data(), bias.data(),
                   out_dim, ref.data());
        for (size_t j = 0; j < out_dim; ++j) {
          ASSERT_EQ(batched[b * out_dim + j], ref[j])
              << "batch=" << batch << " b=" << b << " j=" << j;
        }
      }
    }
  }
}

TEST(AccumulateOuterBatchTest, BitIdenticalToSampleOrderAccumulation) {
  const size_t in_dim = 12, out_dim = 8;
  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
    std::vector<double> in = RandomBlock(batch * in_dim, 11 + batch);
    std::vector<double> delta = RandomBlock(batch * out_dim, 13 + batch);
    for (size_t t = 0; t < in.size(); t += 5) in[t] = 0.0;

    std::vector<double> gw(in_dim * out_dim, 0.25);
    std::vector<double> gb(out_dim, -0.5);
    std::vector<double> gw_ref = gw;
    std::vector<double> gb_ref = gb;

    AccumulateOuterBatch(in.data(), delta.data(), batch, in_dim, out_dim,
                         gw.data(), gb.data());

    for (size_t b = 0; b < batch; ++b) {
      const double* irow = in.data() + b * in_dim;
      const double* drow = delta.data() + b * out_dim;
      for (size_t j = 0; j < out_dim; ++j) gb_ref[j] += drow[j];
      for (size_t i = 0; i < in_dim; ++i) {
        if (irow[i] == 0.0) continue;
        for (size_t j = 0; j < out_dim; ++j) {
          gw_ref[i * out_dim + j] += irow[i] * drow[j];
        }
      }
    }
    for (size_t t = 0; t < gw.size(); ++t) ASSERT_EQ(gw[t], gw_ref[t]);
    for (size_t t = 0; t < gb.size(); ++t) ASSERT_EQ(gb[t], gb_ref[t]);
  }
}

TEST(GemvBatchTransposedTest, BitIdenticalToPerSampleDots) {
  const size_t in_dim = 16, out_dim = 8;
  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}}) {
    std::vector<double> delta = RandomBlock(batch * out_dim, 17 + batch);
    std::vector<double> w = RandomBlock(in_dim * out_dim, 19);
    std::vector<double> dx(batch * in_dim);
    GemvBatchTransposed(delta.data(), batch, out_dim, w.data(), in_dim,
                        dx.data());
    for (size_t b = 0; b < batch; ++b) {
      for (size_t i = 0; i < in_dim; ++i) {
        double acc = 0.0;
        for (size_t j = 0; j < out_dim; ++j) {
          acc += w[i * out_dim + j] * delta[b * out_dim + j];
        }
        ASSERT_EQ(dx[b * in_dim + i], acc) << "b=" << b << " i=" << i;
      }
    }
  }
}

TEST(GramMatrixTest, BitIdenticalToPairwiseDot) {
  // k straddles the tile size; includes an all-zero row.
  for (size_t k : {size_t{1}, size_t{7}, size_t{33}, size_t{70}}) {
    const size_t n = 24;
    std::vector<double> x = RandomBlock(k * n, 23 + k);
    if (k > 2) std::fill(x.begin() + n, x.begin() + 2 * n, 0.0);
    Matrix gram(k, k);
    GramMatrix(x.data(), k, n, &gram);
    for (size_t a = 0; a < k; ++a) {
      for (size_t b = 0; b < k; ++b) {
        ASSERT_EQ(gram(a, b), Dot(x.data() + a * n, x.data() + b * n, n))
            << "k=" << k << " a=" << a << " b=" << b;
      }
    }
  }
}

}  // namespace
}  // namespace hetefedrec
