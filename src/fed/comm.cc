#include "src/fed/comm.h"

#include "src/util/logging.h"

namespace hetefedrec {

size_t CommRound::Uploads() const {
  size_t total = 0;
  for (const auto& pg : groups) total += pg.uploads;
  return total;
}

size_t CommRound::Downloads() const {
  size_t total = 0;
  for (const auto& pg : groups) total += pg.downloads;
  return total;
}

size_t CommRound::Dropped() const {
  size_t total = 0;
  for (const auto& pg : groups) total += pg.dropped;
  return total;
}

size_t CommRound::UpParams() const {
  size_t total = 0;
  for (const auto& pg : groups) total += pg.up_params;
  return total;
}

size_t CommRound::DownParams() const {
  size_t total = 0;
  for (const auto& pg : groups) total += pg.down_params;
  return total;
}

double CommRound::AvgDownload(Group g) const {
  const auto& pg = groups[static_cast<int>(g)];
  if (pg.downloads == 0) return 0.0;
  return static_cast<double>(pg.down_params) /
         static_cast<double>(pg.downloads);
}

void CommStats::RecordDownload(Group g, size_t params) {
  auto& pg = groups_[static_cast<int>(g)];
  pg.downloads++;
  pg.down_params += params;
}

void CommStats::RecordUpload(Group g, size_t params) {
  auto& pg = groups_[static_cast<int>(g)];
  pg.uploads++;
  pg.up_params += params;
}

void CommStats::RecordDropped(Group g) {
  groups_[static_cast<int>(g)].dropped++;
}

size_t CommStats::Dropped(Group g) const {
  return groups_[static_cast<int>(g)].dropped;
}

size_t CommStats::TotalDropped() const {
  size_t total = 0;
  for (const auto& pg : groups_) total += pg.dropped;
  return total;
}

size_t CommStats::Participations(Group g) const {
  return groups_[static_cast<int>(g)].uploads;
}

size_t CommStats::Downloads(Group g) const {
  return groups_[static_cast<int>(g)].downloads;
}

double CommStats::AvgUpload(Group g) const {
  const auto& pg = groups_[static_cast<int>(g)];
  if (pg.uploads == 0) return 0.0;
  return static_cast<double>(pg.up_params) / static_cast<double>(pg.uploads);
}

double CommStats::AvgDownload(Group g) const {
  const auto& pg = groups_[static_cast<int>(g)];
  if (pg.downloads == 0) return 0.0;
  return static_cast<double>(pg.down_params) /
         static_cast<double>(pg.downloads);
}

size_t CommStats::DownParams(Group g) const {
  return groups_[static_cast<int>(g)].down_params;
}

size_t CommStats::UpParams(Group g) const {
  return groups_[static_cast<int>(g)].up_params;
}

size_t CommStats::TotalTransmitted() const {
  size_t total = 0;
  for (const auto& pg : groups_) total += pg.up_params + pg.down_params;
  return total;
}

double CommStats::AvgUploadBytes(Group g) const {
  return AvgUpload(g) * static_cast<double>(wire_scalar_bytes_);
}

double CommStats::AvgDownloadBytes(Group g) const {
  return AvgDownload(g) * static_cast<double>(wire_scalar_bytes_);
}

size_t CommStats::TotalBytes() const {
  return TotalTransmitted() * wire_scalar_bytes_;
}

std::vector<uint64_t> CommStats::ExportCounters() const {
  std::vector<uint64_t> packed;
  packed.reserve(kNumGroups * 5 + 12);
  for (const auto& pg : groups_) {
    packed.push_back(pg.uploads);
    packed.push_back(pg.downloads);
    packed.push_back(pg.dropped);
    packed.push_back(pg.up_params);
    packed.push_back(pg.down_params);
  }
  packed.push_back(faults_.download_lost);
  packed.push_back(faults_.upload_lost);
  packed.push_back(faults_.crashed);
  packed.push_back(faults_.duplicates);
  packed.push_back(faults_.corrupted);
  packed.push_back(faults_.rejected_nonfinite);
  packed.push_back(faults_.rejected_outlier);
  packed.push_back(faults_.rows_clipped);
  packed.push_back(faults_.quarantines);
  packed.push_back(faults_.retries);
  packed.push_back(faults_.gave_up);
  packed.push_back(faults_.nonfinite_grad_steps);
  return packed;
}

void CommStats::RestoreCounters(const std::vector<uint64_t>& packed) {
  HFR_CHECK_EQ(packed.size(), kNumGroups * 5 + 12);
  size_t i = 0;
  for (auto& pg : groups_) {
    pg.uploads = packed[i++];
    pg.downloads = packed[i++];
    pg.dropped = packed[i++];
    pg.up_params = packed[i++];
    pg.down_params = packed[i++];
  }
  faults_.download_lost = packed[i++];
  faults_.upload_lost = packed[i++];
  faults_.crashed = packed[i++];
  faults_.duplicates = packed[i++];
  faults_.corrupted = packed[i++];
  faults_.rejected_nonfinite = packed[i++];
  faults_.rejected_outlier = packed[i++];
  faults_.rows_clipped = packed[i++];
  faults_.quarantines = packed[i++];
  faults_.retries = packed[i++];
  faults_.gave_up = packed[i++];
  faults_.nonfinite_grad_steps = packed[i++];
  round_base_ = groups_;
}

void CommStats::Reset() {
  // The wire format is configuration, not accumulated state.
  groups_ = {};
  faults_ = {};
  round_base_ = {};
}

CommRound CommStats::SnapshotRound() {
  CommRound round;
  for (size_t g = 0; g < groups_.size(); ++g) {
    round.groups[g].uploads = groups_[g].uploads - round_base_[g].uploads;
    round.groups[g].downloads =
        groups_[g].downloads - round_base_[g].downloads;
    round.groups[g].dropped = groups_[g].dropped - round_base_[g].dropped;
    round.groups[g].up_params =
        groups_[g].up_params - round_base_[g].up_params;
    round.groups[g].down_params =
        groups_[g].down_params - round_base_[g].down_params;
  }
  round_base_ = groups_;
  return round;
}

}  // namespace hetefedrec
