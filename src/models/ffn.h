// Feed-forward preference predictor (the paper's Θ).
//
// Architecture per §V-D: input [u, v] of size 2N, hidden layers [8, 8] with
// ReLU, and a single output logit (Eq. 5 applies the sigmoid; we keep logits
// and use BCE-with-logits for stability). One FeedForwardNet instance also
// serves as the gradient container for another of the same shape, which
// keeps aggregation code uniform (server sums Θ updates exactly like item
// embedding updates, Eq. 15).
#ifndef HETEFEDREC_MODELS_FFN_H_
#define HETEFEDREC_MODELS_FFN_H_

#include <vector>

#include "src/math/adam.h"
#include "src/math/matrix.h"
#include "src/util/rng.h"

namespace hetefedrec {

/// \brief Multi-layer perceptron with ReLU hidden activations and a single
/// linear output (logit).
class FeedForwardNet {
 public:
  /// Empty network (no layers). Usable only after assignment.
  FeedForwardNet() = default;

  /// \param input_dim size of the input vector (2N for NCF/LightGCN).
  /// \param hidden sizes of the hidden layers (paper: {8, 8}).
  FeedForwardNet(size_t input_dim, std::vector<size_t> hidden);

  /// Xavier-uniform initialization of all weights; biases to zero.
  void InitXavier(Rng* rng);

  size_t input_dim() const { return input_dim_; }
  size_t num_layers() const { return weights_.size(); }

  /// Per-sample activations needed by Backward.
  struct Cache {
    std::vector<double> input;               // copy of x
    std::vector<std::vector<double>> pre;    // pre-activation per layer
    std::vector<std::vector<double>> post;   // post-activation per layer
  };

  /// Batch-of-samples activations needed by BackwardBatch. Layout mirrors
  /// Cache with every buffer widened to `batch` packed rows.
  struct BatchCache {
    size_t batch = 0;
    std::vector<double> input;               // batch x input_dim
    std::vector<std::vector<double>> pre;    // per layer, batch x width_l
    std::vector<std::vector<double>> post;   // per layer, batch x width_l
  };

  /// Computes the output logit for input `x` (length input_dim). If `cache`
  /// is non-null it is filled for a subsequent Backward call.
  double Forward(const double* x, Cache* cache) const;

  /// Pushes a batch x input_dim block through all layers at once via the
  /// blocked kernels of src/math/kernels.h, writing one logit per row into
  /// `logits`. Bit-identical per row to Forward on that row. If `cache` is
  /// non-null it is filled for a subsequent BackwardBatch call.
  void ForwardBatch(const double* x, size_t batch, BatchCache* cache,
                    double* logits) const;

  /// Partial first-layer accumulators after consuming only x[0..split):
  /// acc[j] = bias0[j] + Σ_{i<split} x[i]·W0[i,j], ascending i with
  /// exact-zero skip — the scalar layer-0 loop paused after `split`
  /// iterations. `acc` receives layer-0-width values. The scoring model's
  /// [pu, pv] input shares its user half across a whole batch of items, so
  /// this prefix is computed once per user and resumed per item.
  void ForwardPrefix(const double* x, size_t split, double* acc) const;

  /// ForwardBatch for rows sharing their first (input_dim - suffix_dim)
  /// input dims: resumes the layer-0 accumulation from `prefix` with each
  /// row's suffix (rows start `suffix_stride` doubles apart — pass an
  /// embedding table stride to score rows in place), then runs the
  /// remaining layers batched. Bit-identical to ForwardBatch on the fully
  /// assembled rows. Evaluation only — no backward cache.
  void ForwardBatchFromPrefix(const double* prefix, const double* suffix,
                              size_t batch, size_t suffix_dim,
                              size_t suffix_stride, double* logits) const;

  /// Accumulates gradients into `grads` (a same-shape FeedForwardNet) given
  /// dL/dlogit. If `dx` is non-null, writes dL/dx (length input_dim) —
  /// the path through which item/user embeddings receive gradient.
  void Backward(const Cache& cache, double dlogit, FeedForwardNet* grads,
                double* dx) const;

  /// Batched Backward over a ForwardBatch cache and one dL/dlogit per row.
  /// Gradient sums accumulate in ascending sample order, so the result is
  /// bit-identical to calling Backward sample-by-sample in row order. If
  /// `dx` is non-null it receives the batch x input_dim input gradients.
  void BackwardBatch(const BatchCache& cache, const double* dlogits,
                     FeedForwardNet* grads, double* dx) const;

  /// Zeroes all parameters (turns the net into a gradient accumulator).
  void SetZero();

  /// this += scale * other (same shape).
  void AddScaled(const FeedForwardNet& other, double scale);

  /// Total number of scalar parameters (Table III accounting).
  size_t ParamCount() const;

  /// Largest |parameter| across all layers.
  double MaxAbs() const;

  /// Same-shape zero-initialized copy (gradient accumulator factory).
  static FeedForwardNet ZerosLike(const FeedForwardNet& other);

  /// True when every layer of `other` has identical dimensions.
  bool SameShape(const FeedForwardNet& other) const;

  /// Layer parameter access (weights[l] is in x out; biases[l] is 1 x out).
  const Matrix& weight(size_t l) const { return weights_[l]; }
  Matrix& weight(size_t l) { return weights_[l]; }
  const Matrix& bias(size_t l) const { return biases_[l]; }
  Matrix& bias(size_t l) { return biases_[l]; }

 private:
  size_t input_dim_ = 0;
  std::vector<Matrix> weights_;
  std::vector<Matrix> biases_;
};

/// \brief Adam optimizer state spanning all layers of a FeedForwardNet.
class FfnAdam {
 public:
  explicit FfnAdam(AdamOptions options = {}) : options_(options) {}

  /// One Adam step per layer; `grads` must have the same shape as `net`.
  void Step(FeedForwardNet* net, const FeedForwardNet& grads);

  /// Drops all moment state.
  void Reset();

  /// Sum of per-layer skipped steps (non-finite gradients, see Adam).
  long long skipped_steps() const;

 private:
  AdamOptions options_;
  std::vector<Adam> weight_state_;
  std::vector<Adam> bias_state_;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_MODELS_FFN_H_
