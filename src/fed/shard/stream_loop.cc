#include "src/fed/shard/stream_loop.h"

#include <cmath>
#include <utility>

#include "src/util/logging.h"
#include "src/util/rss.h"
#include "src/util/telemetry/json.h"
#include "src/util/telemetry/telemetry.h"
#include "src/util/timer.h"

namespace hetefedrec {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

StreamLoopResult RunStreamingRounds(ServerApi* server,
                                    const ClientStream& stream,
                                    const StreamLoopOptions& options) {
  HFR_CHECK(server != nullptr);
  HFR_CHECK_GT(server->num_slots(), 0u);
  HFR_CHECK_GT(options.clients_per_round, 0u);
  HFR_CHECK_EQ(server->num_items(), stream.num_items());

  const size_t slot = server->num_slots() - 1;
  const size_t width = server->width(slot);
  const Matrix& table = server->table(slot);
  const std::vector<LocalTaskSpec> tasks = {{slot, width}};
  const size_t num_users = stream.num_users();
  const size_t rounds =
      options.rounds > 0
          ? options.rounds
          : (num_users + options.clients_per_round - 1) /
                options.clients_per_round;

  std::unique_ptr<Telemetry> telemetry;
  if (!options.metrics_out.empty()) {
    TelemetryOptions topts;
    topts.metrics_path = options.metrics_out;
    auto created = Telemetry::Create(topts);
    HFR_CHECK(created.ok()) << created.status().ToString();
    telemetry = std::move(created).value();
    telemetry->WriteRow(JsonObj()
                            .Str("type", "meta")
                            .I64("version", 1)
                            .Str("method", "stream_mf")
                            .Str("dataset", "stream")
                            .Num("data_scale", 1.0)
                            .U64("seed", options.seed)
                            .Bool("async", false)
                            .U64("clients_per_round",
                                 options.clients_per_round)
                            .I64("epochs", 1)
                            .Bool("resumed", false)
                            .U64("users", num_users)
                            .U64("items", stream.num_items())
                            .U64("shards", server->num_shards())
                            .Build());
  }

  const Rng loop_root(options.seed);
  std::vector<double> user_embed(width);
  LocalUpdateResult up;
  up.sparse = true;
  up.theta_deltas.push_back(FeedForwardNet::ZerosLike(server->theta(slot)));
  up.v_delta_sparse.width = width;

  StreamLoopResult result;
  uint64_t scalars_before = 0;
  for (size_t s = 0; s < server->num_shards(); ++s) {
    scalars_before += server->shard_upload_scalars(s);
  }

  Timer total_timer;
  size_t cursor = 0;
  for (size_t r = 0; r < rounds; ++r) {
    Timer round_timer;
    server->BeginRound();
    size_t merged = 0;
    for (size_t k = 0; k < options.clients_per_round; ++k) {
      const UserId u = static_cast<UserId>(cursor);
      cursor = (cursor + 1) % num_users;
      const StreamClient client = stream.Get(u);

      // The client's private embedding: a fresh deterministic draw per
      // (loop seed, user) — nothing is stored between that user's visits.
      Rng er = loop_root.Fork(static_cast<uint64_t>(u) + 1);
      for (size_t d = 0; d < width; ++d) user_embed[d] = er.Normal(0.0, 0.1);

      // One implicit-feedback MF-SGD step per interacted row against the
      // live (pre-round) table: delta = lr * (1 - sigmoid(<e_u, v_i>)) e_u.
      SparseRowUpdate& sp = up.v_delta_sparse;
      sp.rows = client.items;  // distinct, ascending — the required order
      sp.data.resize(sp.rows.size() * width);
      for (size_t k_row = 0; k_row < sp.rows.size(); ++k_row) {
        const double* v = table.Row(sp.rows[k_row]);
        const double score = Dot(user_embed.data(), v, width);
        const double g = options.lr * (1.0 - Sigmoid(score));
        double* dst = sp.data.data() + k_row * width;
        for (size_t d = 0; d < width; ++d) dst[d] = g * user_embed[d];
      }
      up.params_up = sp.ParamCount();
      result.rows_uploaded += sp.rows.size();

      server->UploadDelta(tasks, up, 1.0);
      ++merged;
    }
    server->FinishRound();
    result.clients += merged;

    if (telemetry != nullptr) {
      telemetry->WriteRow(JsonObj()
                              .U64("round", r + 1)
                              .Str("type", "round")
                              .I64("epoch", 0)
                              .Num("clock", total_timer.Seconds())
                              .Num("duration", round_timer.Seconds())
                              .U64("merged", merged)
                              .U64("queue", 0)
                              .Raw("metrics",
                                   telemetry->registry()->ToJson())
                              .Build());
    }
  }
  result.rounds = rounds;
  result.wall_seconds = total_timer.Seconds();

  result.shard_scalars.reserve(server->num_shards());
  uint64_t scalars_after = 0;
  for (size_t s = 0; s < server->num_shards(); ++s) {
    const uint64_t v = server->shard_upload_scalars(s);
    result.shard_scalars.push_back(v);
    scalars_after += v;
  }
  result.upload_scalars = scalars_after - scalars_before;
  result.peak_rss_kb = PeakRssKb();

  if (telemetry != nullptr) {
    telemetry->WriteRow(
        JsonObj()
            .Str("type", "summary")
            .U64("rounds", result.rounds)
            .U64("merges", result.clients)
            .Num("clock", result.wall_seconds)
            .Num("recall", 0.0)
            .Num("ndcg", 0.0)
            .U64("total_scalars", result.upload_scalars)
            .U64("total_bytes", result.upload_scalars * sizeof(double))
            .U64("dropped", 0)
            .U64("peak_rss_kb", result.peak_rss_kb)
            .Raw("metrics", telemetry->registry()->ToJson())
            .Build());
    const Status flushed = telemetry->Flush();
    HFR_CHECK(flushed.ok()) << flushed.ToString();
  }
  return result;
}

}  // namespace hetefedrec
