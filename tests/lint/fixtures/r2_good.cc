// Fixture: must produce zero findings. Randomness routes through the
// seeded Rng; identifiers containing "rand(" as a substring must not match.
#include "src/util/rng.h"

double Draw(unsigned long long seed) {
  hetefedrec::Rng rng(seed);
  return rng.Uniform();
}

int operand(int x) { return x; }

int Call() { return operand(7); }
