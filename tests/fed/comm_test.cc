#include "src/fed/comm.h"

#include <gtest/gtest.h>

#include "src/fed/client.h"

namespace hetefedrec {
namespace {

TEST(CommStatsTest, StartsEmpty) {
  CommStats stats;
  EXPECT_EQ(stats.TotalTransmitted(), 0u);
  EXPECT_EQ(stats.Participations(Group::kSmall), 0u);
  EXPECT_DOUBLE_EQ(stats.AvgUpload(Group::kSmall), 0.0);
}

TEST(CommStatsTest, AveragesPerParticipation) {
  CommStats stats;
  stats.RecordDownload(Group::kMedium, 100);
  stats.RecordUpload(Group::kMedium, 100);
  stats.RecordDownload(Group::kMedium, 200);
  stats.RecordUpload(Group::kMedium, 200);
  EXPECT_EQ(stats.Participations(Group::kMedium), 2u);
  EXPECT_DOUBLE_EQ(stats.AvgUpload(Group::kMedium), 150.0);
  EXPECT_DOUBLE_EQ(stats.AvgDownload(Group::kMedium), 150.0);
  EXPECT_EQ(stats.TotalTransmitted(), 600u);
}

TEST(CommStatsTest, GroupsIndependent) {
  CommStats stats;
  stats.RecordUpload(Group::kSmall, 10);
  stats.RecordUpload(Group::kLarge, 1000);
  EXPECT_DOUBLE_EQ(stats.AvgUpload(Group::kSmall), 10.0);
  EXPECT_DOUBLE_EQ(stats.AvgUpload(Group::kLarge), 1000.0);
  EXPECT_DOUBLE_EQ(stats.AvgUpload(Group::kMedium), 0.0);
}

TEST(CommStatsTest, ResetClears) {
  CommStats stats;
  stats.RecordUpload(Group::kSmall, 10);
  stats.Reset();
  EXPECT_EQ(stats.TotalTransmitted(), 0u);
}

TEST(CommStatsTest, SnapshotRoundReportsDeltasAndRebaselines) {
  CommStats stats;
  stats.RecordDownload(Group::kSmall, 100);
  stats.RecordUpload(Group::kSmall, 40);
  stats.RecordDropped(Group::kLarge);

  CommRound r1 = stats.SnapshotRound();
  EXPECT_EQ(r1.Downloads(), 1u);
  EXPECT_EQ(r1.Uploads(), 1u);
  EXPECT_EQ(r1.Dropped(), 1u);
  EXPECT_EQ(r1.DownParams(), 100u);
  EXPECT_EQ(r1.UpParams(), 40u);
  EXPECT_DOUBLE_EQ(r1.AvgDownload(Group::kSmall), 100.0);

  // Second snapshot covers only traffic since the first.
  stats.RecordDownload(Group::kMedium, 60);
  stats.RecordDownload(Group::kMedium, 20);
  CommRound r2 = stats.SnapshotRound();
  EXPECT_EQ(r2.Downloads(), 2u);
  EXPECT_EQ(r2.DownParams(), 80u);
  EXPECT_EQ(r2.Uploads(), 0u);
  EXPECT_DOUBLE_EQ(r2.AvgDownload(Group::kMedium), 40.0);
  EXPECT_DOUBLE_EQ(r2.AvgDownload(Group::kSmall), 0.0);

  // An idle round snapshots to all-zero; cumulative totals are untouched.
  CommRound r3 = stats.SnapshotRound();
  EXPECT_EQ(r3.Downloads() + r3.Uploads() + r3.DownParams(), 0u);
  EXPECT_EQ(stats.TotalTransmitted(), 220u);
}

TEST(CommStatsTest, SnapshotRoundRebaselinesAcrossRestore) {
  CommStats stats;
  stats.RecordUpload(Group::kSmall, 10);
  CommStats resumed;
  resumed.RestoreCounters(stats.ExportCounters());
  // Restored totals belong to rounds already reported before the restart;
  // the next snapshot must not re-report them.
  CommRound r = resumed.SnapshotRound();
  EXPECT_EQ(r.Uploads(), 0u);
  EXPECT_EQ(r.UpParams(), 0u);
}

TEST(ClientTest, InitSetsWidthAndDeterministicEmbedding) {
  Rng root(42);
  ClientState a, b;
  InitClient(&a, 7, Group::kMedium, 16, 0.1, root);
  InitClient(&b, 7, Group::kMedium, 16, 0.1, root);
  EXPECT_EQ(a.id, 7);
  EXPECT_EQ(a.group, Group::kMedium);
  ASSERT_EQ(a.user_embedding.cols(), 16u);
  EXPECT_EQ(a.user_embedding.rows(), 1u);
  for (size_t c = 0; c < 16; ++c) {
    EXPECT_DOUBLE_EQ(a.user_embedding(0, c), b.user_embedding(0, c));
  }
  // Different ids get different embeddings.
  ClientState c;
  InitClient(&c, 8, Group::kMedium, 16, 0.1, root);
  bool differs = false;
  for (size_t i = 0; i < 16 && !differs; ++i) {
    differs = a.user_embedding(0, i) != c.user_embedding(0, i);
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace hetefedrec
