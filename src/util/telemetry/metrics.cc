#include "src/util/telemetry/metrics.h"

#include "src/util/logging.h"
#include "src/util/telemetry/json.h"

namespace hetefedrec {

size_t Counter::ShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return slot;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    HFR_CHECK_LT(bounds_[i - 1], bounds_[i]) << "histogram bounds must ascend";
  }
}

void Histogram::Observe(double v) {
  size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  ++counts_[b];
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              Kind kind) {
  auto it = index_.find(name);
  if (it == index_.end()) return nullptr;
  Entry* e = &entries_[it->second];
  HFR_CHECK(e->kind == kind) << "metric '" << name
                             << "' re-registered with a different kind";
  return e;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  if (Entry* e = Find(name, Kind::kCounter)) return e->counter;
  counters_.emplace_back(new Counter());
  index_[name] = entries_.size();
  entries_.push_back(
      Entry{name, Kind::kCounter, counters_.back().get(), nullptr, nullptr});
  return counters_.back().get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  if (Entry* e = Find(name, Kind::kGauge)) return e->gauge;
  gauges_.emplace_back(new Gauge());
  index_[name] = entries_.size();
  entries_.push_back(
      Entry{name, Kind::kGauge, nullptr, gauges_.back().get(), nullptr});
  return gauges_.back().get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  if (Entry* e = Find(name, Kind::kHistogram)) return e->histogram;
  histograms_.emplace_back(new Histogram(std::move(bounds)));
  index_[name] = entries_.size();
  entries_.push_back(
      Entry{name, Kind::kHistogram, nullptr, nullptr, histograms_.back().get()});
  return histograms_.back().get();
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const Entry& e : entries_) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(&out, e.name);
    out += ':';
    switch (e.kind) {
      case Kind::kCounter: {
        char buf[24];
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(e.counter->Value()));
        out += buf;
        break;
      }
      case Kind::kGauge:
        AppendJsonNumber(&out, e.gauge->Value());
        break;
      case Kind::kHistogram: {
        const Histogram& h = *e.histogram;
        JsonObj o;
        o.U64("count", h.count());
        o.Num("sum", h.sum());
        o.Num("min", h.min());
        o.Num("max", h.max());
        std::string buckets = "[";
        for (size_t i = 0; i < h.bucket_counts().size(); ++i) {
          if (i) buckets += ',';
          char buf[24];
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(h.bucket_counts()[i]));
          buckets += buf;
        }
        buckets += ']';
        o.Raw("buckets", buckets);
        out += o.Build();
        break;
      }
    }
  }
  out += '}';
  return out;
}

}  // namespace hetefedrec
