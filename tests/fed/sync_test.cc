// Unit tests for the delta-sync subsystem: version stamps, client
// replicas, the sync service's staleness logic, and the simulated
// network's determinism.
#include <gtest/gtest.h>

#include <vector>

#include "src/fed/sync/network.h"
#include "src/fed/sync/replica.h"
#include "src/fed/sync/sync_service.h"
#include "src/fed/sync/versioned_table.h"
#include "src/math/init.h"

namespace hetefedrec {
namespace {

TEST(VersionedTableTest, StartsAtVersionZeroAndStamps) {
  VersionedTable v(2, 10);
  EXPECT_EQ(v.round(), 0u);
  EXPECT_EQ(v.Version(0, 3), 0u);

  v.AdvanceRound();
  v.Stamp(0, 3);
  EXPECT_EQ(v.Version(0, 3), 1u);
  EXPECT_EQ(v.Version(0, 4), 0u);  // untouched row
  EXPECT_EQ(v.Version(1, 3), 0u);  // untouched slot
}

TEST(VersionedTableTest, StampAllFloorsEveryRow) {
  VersionedTable v(1, 5);
  v.AdvanceRound();
  v.Stamp(0, 1);
  v.AdvanceRound();
  v.StampAll(0);
  for (size_t r = 0; r < 5; ++r) EXPECT_EQ(v.Version(0, r), 2u);
  // A later per-row stamp rises above the floor.
  v.AdvanceRound();
  v.Stamp(0, 4);
  EXPECT_EQ(v.Version(0, 4), 3u);
  EXPECT_EQ(v.Version(0, 0), 2u);
}

TEST(VersionedTableTest, VersionsAreMonotone) {
  VersionedTable v(1, 4);
  uint64_t last = v.Version(0, 2);
  for (int round = 0; round < 5; ++round) {
    v.AdvanceRound();
    if (round % 2 == 0) v.Stamp(0, 2);
    if (round == 3) v.StampAll(0);
    EXPECT_GE(v.Version(0, 2), last);
    last = v.Version(0, 2);
  }
}

TEST(ClientReplicaTest, HoldAndStaleness) {
  ClientReplica rep;
  EXPECT_EQ(rep.HeldVersion(7), ClientReplica::kNeverHeld);
  EXPECT_TRUE(rep.IsStale(7, 0));  // never held is always stale

  rep.Hold(7, 3);
  EXPECT_EQ(rep.HeldVersion(7), 3u);
  EXPECT_FALSE(rep.IsStale(7, 3));
  EXPECT_TRUE(rep.IsStale(7, 4));
  EXPECT_EQ(rep.rows_held(), 1u);

  rep.Invalidate();
  EXPECT_EQ(rep.HeldVersion(7), ClientReplica::kNeverHeld);
  EXPECT_EQ(rep.rows_held(), 0u);
}

TEST(ClientReplicaTest, CapacityEvictsLeastRecentlyUsed) {
  ClientReplica rep;
  rep.set_capacity(2);
  rep.Hold(1, 5);
  rep.Hold(2, 5);
  rep.Hold(3, 5);  // evicts row 1 (least recently used)
  EXPECT_EQ(rep.rows_held(), 2u);
  EXPECT_EQ(rep.HeldVersion(1), ClientReplica::kNeverHeld);
  EXPECT_EQ(rep.HeldVersion(2), 5u);
  EXPECT_EQ(rep.HeldVersion(3), 5u);

  // Touch refreshes recency: row 2 survives the next eviction.
  rep.Touch(2);
  rep.Hold(4, 6);  // evicts row 3, not the freshly touched 2
  EXPECT_EQ(rep.HeldVersion(3), ClientReplica::kNeverHeld);
  EXPECT_EQ(rep.HeldVersion(2), 5u);
  EXPECT_EQ(rep.HeldVersion(4), 6u);

  // Re-holding an existing row is an update, not an insertion.
  rep.Hold(2, 7);
  EXPECT_EQ(rep.rows_held(), 2u);
  EXPECT_EQ(rep.HeldVersion(2), 7u);

  // Shrinking the capacity evicts immediately.
  rep.set_capacity(1);
  EXPECT_EQ(rep.rows_held(), 1u);
  EXPECT_EQ(rep.HeldVersion(2), 7u);  // most recently used survives
}

TEST(SyncServiceTest, CappedReplicaReshipsEvictedRows) {
  Matrix table(20, 4);
  Rng rng(3);
  InitNormal(&table, 0.1, &rng);
  VersionedTable versions(1, 20);
  SyncService::Options opts;
  opts.replica_cap = 2;
  opts.verify_values = true;  // eviction must stay lossless under audit
  SyncService sync(1, opts);

  const std::vector<uint32_t> ab = {1, 2};
  SyncPlan first = sync.Sync(0, 0, ab, table, versions, 0);
  EXPECT_EQ(first.shipped_rows, 2u);
  // Within capacity: a repeat subscription ships nothing.
  EXPECT_EQ(sync.Sync(0, 0, ab, table, versions, 0).shipped_rows, 0u);

  // A third row evicts the least recently used; the repeat subscription
  // of the original pair must re-ship the evicted row only.
  const std::vector<uint32_t> c = {3};
  EXPECT_EQ(sync.Sync(0, 0, c, table, versions, 0).shipped_rows, 1u);
  EXPECT_EQ(sync.replica(0).rows_held(), 2u);
  SyncPlan again = sync.Sync(0, 0, ab, table, versions, 0);
  EXPECT_EQ(again.shipped_rows, 2u);  // row 3 evicted one of {1,2} then
                                      // re-shipping 1 evicted the other
  EXPECT_LE(sync.replica(0).rows_held(), 2u);
}

TEST(SyncServiceTest, FirstSyncShipsEverythingSecondShipsNothing) {
  Matrix table(20, 4);
  Rng rng(3);
  InitNormal(&table, 0.1, &rng);
  VersionedTable versions(1, 20);
  SyncService sync(2);

  const std::vector<uint32_t> subs = {1, 5, 9};
  SyncPlan first = sync.Sync(0, 0, subs, table, versions, 100);
  EXPECT_EQ(first.subscribed_rows, 3u);
  EXPECT_EQ(first.shipped_rows, 3u);
  EXPECT_EQ(first.params, 3 * (4 + 1) + 100 + 1);

  // Nothing changed server-side: only Θ and the header go down.
  SyncPlan second = sync.Sync(0, 0, subs, table, versions, 100);
  EXPECT_EQ(second.shipped_rows, 0u);
  EXPECT_EQ(second.params, 100u + 1);

  // Another client's replica is independent.
  SyncPlan other = sync.Sync(1, 0, subs, table, versions, 100);
  EXPECT_EQ(other.shipped_rows, 3u);
}

TEST(SyncServiceTest, OnlyAdvancedRowsReship) {
  Matrix table(20, 4);
  Rng rng(5);
  InitNormal(&table, 0.1, &rng);
  VersionedTable versions(1, 20);
  SyncService sync(1);

  sync.Sync(0, 0, {1, 5, 9}, table, versions, 0);
  versions.AdvanceRound();
  versions.Stamp(0, 5);

  SyncPlan plan = sync.Sync(0, 0, {1, 5, 9, 12}, table, versions, 0);
  // 5 advanced, 12 was never held; 1 and 9 are fresh.
  EXPECT_EQ(plan.shipped_rows, 2u);
}

TEST(SyncServiceTest, StampAllInvalidatesWholeReplica) {
  Matrix table(10, 2);
  Rng rng(7);
  InitNormal(&table, 0.1, &rng);
  VersionedTable versions(1, 10);
  SyncService sync(1);

  sync.Sync(0, 0, {0, 1, 2, 3}, table, versions, 0);
  versions.AdvanceRound();
  versions.StampAll(0);  // e.g. a dense round
  SyncPlan plan = sync.Sync(0, 0, {0, 1, 2, 3}, table, versions, 0);
  EXPECT_EQ(plan.shipped_rows, 4u);
}

TEST(SyncServiceTest, VerifyValuesCatchesFreshRowsAndTracksBytes) {
  Matrix table(10, 3);
  Rng rng(11);
  InitNormal(&table, 0.1, &rng);
  VersionedTable versions(1, 10);
  SyncService::Options opts;
  opts.verify_values = true;
  SyncService sync(1, opts);

  sync.Sync(0, 0, {2, 4}, table, versions, 0);
  const double* cached = sync.replica(0).Values(2, 3);
  ASSERT_NE(cached, nullptr);
  for (size_t d = 0; d < 3; ++d) EXPECT_EQ(cached[d], table.Row(2)[d]);

  // Mutating a row WITH a stamp: the row re-ships and the cache follows.
  versions.AdvanceRound();
  table.Row(2)[0] += 1.0;
  versions.Stamp(0, 2);
  SyncPlan plan = sync.Sync(0, 0, {2, 4}, table, versions, 0);
  EXPECT_EQ(plan.shipped_rows, 1u);
  EXPECT_EQ(sync.replica(0).Values(2, 3)[0], table.Row(2)[0]);
}

TEST(SyncServiceTest, VerifyValuesDiesOnUnstampedMutation) {
  Matrix table(10, 3);
  Rng rng(13);
  InitNormal(&table, 0.1, &rng);
  VersionedTable versions(1, 10);
  SyncService::Options opts;
  opts.verify_values = true;
  SyncService sync(1, opts);

  sync.Sync(0, 0, {2}, table, versions, 0);
  table.Row(2)[1] += 1.0;  // mutation without a version stamp
  EXPECT_DEATH(sync.Sync(0, 0, {2}, table, versions, 0), "");
}

TEST(SimulatedNetworkTest, DrawsAreDeterministicAndOrderFree) {
  NetworkOptions opts;
  opts.availability = 0.5;
  opts.bandwidth_sigma = 0.8;
  opts.latency_sigma = 0.3;
  opts.seed = 42;
  SimulatedNetwork a(opts);
  SimulatedNetwork b(opts);

  // Same (client, round) key gives the same draw regardless of query
  // order or interleaving.
  for (UserId u = 0; u < 20; ++u) {
    EXPECT_EQ(a.Online(u, 3), b.Online(u, 3));
    EXPECT_EQ(a.ClientBandwidth(u), b.ClientBandwidth(u));
    EXPECT_EQ(a.FinishSeconds(u, 3, 1000, 500, 64),
              b.FinishSeconds(u, 3, 1000, 500, 64));
  }
  for (UserId u = 19; u >= 0; --u) {
    EXPECT_EQ(a.Online(u, 3), b.Online(u, 3));
  }
}

TEST(SimulatedNetworkTest, AvailabilityOneNeverDrops) {
  NetworkOptions opts;
  opts.availability = 1.0;
  SimulatedNetwork net(opts);
  for (UserId u = 0; u < 50; ++u) {
    EXPECT_TRUE(net.Online(u, 1));
  }
}

TEST(SimulatedNetworkTest, AvailabilityVariesAcrossRounds) {
  NetworkOptions opts;
  opts.availability = 0.5;
  opts.seed = 9;
  SimulatedNetwork net(opts);
  // A client offline in one round must be able to come back: over many
  // rounds both states appear.
  bool seen_on = false, seen_off = false;
  for (uint64_t round = 0; round < 64; ++round) {
    (net.Online(0, round) ? seen_on : seen_off) = true;
  }
  EXPECT_TRUE(seen_on);
  EXPECT_TRUE(seen_off);
}

TEST(SimulatedNetworkTest, FinishTimeGrowsWithPayload) {
  NetworkOptions opts;
  opts.latency_seconds = 0.01;
  opts.compute_seconds_per_sample = 1e-5;
  SimulatedNetwork net(opts);
  const double small = net.FinishSeconds(0, 1, 1000, 1000, 10);
  const double big = net.FinishSeconds(0, 1, 1000000, 1000, 10);
  EXPECT_LT(small, big);
  const double more_compute = net.FinishSeconds(0, 1, 1000, 1000, 10000);
  EXPECT_LT(small, more_compute);
}

}  // namespace
}  // namespace hetefedrec
