// Reproduces Fig. 6: NDCG@20 broken down by client group (Us / Um / Ul)
// for every method, dataset and base model.
//
// Paper shape: all methods score higher on Um/Ul than Us; "All Small" wins
// on Us while "All Large" wins on Ul (ML/Anime); HeteFedRec is best in
// every group.
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  TablePrinter table("Fig. 6: NDCG@20 per client group",
                     {"Model", "Dataset", "Method", "Us", "Um", "Ul"});

  int cells = 0, hete_best_in_all_groups = 0, groups_ordered = 0;
  for (const GridCase& cell : EvaluationGrid(cli)) {
    ExperimentConfig cfg = *base_cfg;
    cfg.base_model = cell.model;
    cfg.dataset = cell.dataset;
    ApplyPaperDims(&cfg);
    auto runner = ExperimentRunner::Create(cfg);
    if (!runner.ok()) return FailWith(runner.status());

    std::array<double, kNumGroups> best{};
    std::array<double, kNumGroups> hete{};
    for (Method m : kAllMethods) {
      std::fprintf(stderr, "[fig6] %s / %s / %s ...\n",
                   BaseModelName(cell.model).c_str(), cell.dataset.c_str(),
                   MethodName(m).c_str());
      GroupedEval eval = (*runner)->Run(m).final_eval;
      table.AddRow({BaseModelName(cell.model), cell.dataset, MethodName(m),
                    TablePrinter::Num(eval.group(Group::kSmall).ndcg),
                    TablePrinter::Num(eval.group(Group::kMedium).ndcg),
                    TablePrinter::Num(eval.group(Group::kLarge).ndcg)});
      for (int g = 0; g < kNumGroups; ++g) {
        best[g] = std::max(best[g], eval.per_group[g].ndcg);
        if (m == Method::kHeteFedRec) hete[g] = eval.per_group[g].ndcg;
      }
    }
    table.AddSeparator();

    cells++;
    bool all_groups = true;
    for (int g = 0; g < kNumGroups; ++g) {
      if (hete[g] < best[g]) all_groups = false;
    }
    hete_best_in_all_groups += all_groups;
    // Data-rich groups outscore Us for HeteFedRec (the paper's trend).
    groups_ordered +=
        (hete[0] <= hete[1] + 1e-9 || hete[0] <= hete[2] + 1e-9);
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "fig6_groups"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  std::printf(
      "\nShape checks:\n"
      "  HeteFedRec best in every group  : %d/%d cells (paper: all)\n"
      "  Um/Ul outscore Us for HeteFedRec: %d/%d cells (paper: all)\n",
      hete_best_in_all_groups, cells, groups_ordered, cells);
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
