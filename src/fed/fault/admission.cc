#include "src/fed/fault/admission.h"

#include <algorithm>
#include <cmath>

#include "src/math/matrix.h"
#include "src/util/logging.h"

namespace hetefedrec {

namespace {

bool AllFinite(const double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (!std::isfinite(x[i])) return false;
  }
  return true;
}

bool FfnFinite(const FeedForwardNet& net) {
  for (size_t l = 0; l < net.num_layers(); ++l) {
    if (!AllFinite(net.weight(l).data().data(), net.weight(l).size())) {
      return false;
    }
    if (!AllFinite(net.bias(l).data().data(), net.bias(l).size())) {
      return false;
    }
  }
  return true;
}

// Clips one row of `width` values to L2 norm <= cap; returns true if it
// was scaled. Accumulates the (post-clip) squared norm into *sum_sq.
// The squared norm is the shared Dot helper (src/math/matrix.h) — the same
// code path the collapse diagnostics and the fp32 kernels dispatch through.
bool ClipRow(double* row, size_t width, double cap, double* sum_sq) {
  double sq = Dot(row, row, width);
  if (cap > 0.0 && sq > cap * cap) {
    const double scale = cap / std::sqrt(sq);
    for (size_t d = 0; d < width; ++d) row[d] *= scale;
    *sum_sq += cap * cap;
    return true;
  }
  *sum_sq += sq;
  return false;
}

// Median of a copy of `v` (v is small: the bounded window).
double Median(std::vector<double> v) {
  HFR_CHECK(!v.empty());
  const size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double hi = v[mid];
  if (v.size() % 2 == 1) return hi;
  std::nth_element(v.begin(), v.begin() + mid - 1, v.begin() + mid);
  return 0.5 * (v[mid - 1] + hi);
}

}  // namespace

AdmissionController::AdmissionController(size_t num_slots,
                                         const AdmissionOptions& options)
    : options_(options), history_(num_slots) {
  HFR_CHECK_GE(options_.max_row_norm, 0.0);
  HFR_CHECK_GE(options_.outlier_z, 0.0);
  HFR_CHECK_GE(options_.outlier_window, options_.outlier_min_history);
  HFR_CHECK_GE(options_.outlier_min_history, 2u);
}

AdmissionDecision AdmissionController::Admit(size_t slot,
                                             LocalUpdateResult* update) {
  HFR_CHECK_LT(slot, history_.size());
  AdmissionDecision decision;

  // Gate 1: finite scan over everything the client uploads.
  bool finite = true;
  if (update->sparse) {
    finite = AllFinite(update->v_delta_sparse.data.data(),
                       update->v_delta_sparse.data.size());
  } else {
    finite = AllFinite(update->v_delta.data().data(), update->v_delta.size());
  }
  for (const FeedForwardNet& d : update->theta_deltas) {
    if (!finite) break;
    finite = FfnFinite(d);
  }
  if (!finite) {
    decision.verdict = AdmissionVerdict::kRejectNonFinite;
    return decision;
  }

  // Gate 2: per-row norm clipping on the item-table delta.
  double sum_sq = 0.0;
  const double cap = options_.max_row_norm;
  if (update->sparse) {
    SparseRowUpdate& up = update->v_delta_sparse;
    for (size_t k = 0; k < up.num_rows(); ++k) {
      double* row = up.data.data() + k * up.width;
      if (ClipRow(row, up.width, cap, &sum_sq)) ++decision.rows_clipped;
    }
  } else {
    Matrix& d = update->v_delta;
    for (size_t r = 0; r < d.rows(); ++r) {
      if (ClipRow(d.Row(r), d.cols(), cap, &sum_sq)) ++decision.rows_clipped;
    }
  }
  decision.update_norm = std::sqrt(sum_sq);

  // Gate 3: robust z-score against the slot's accepted-norm window.
  std::vector<double>& window = history_[slot];
  if (options_.outlier_z > 0.0 &&
      window.size() >= options_.outlier_min_history) {
    const double med = Median(window);
    std::vector<double> dev(window.size());
    for (size_t i = 0; i < window.size(); ++i) {
      dev[i] = std::fabs(window[i] - med);
    }
    // MAD floor keeps the gate sane when accepted norms are near-constant.
    const double mad =
        std::max(Median(std::move(dev)), 1e-12 * std::max(1.0, med));
    const double z = 0.6745 * (decision.update_norm - med) / mad;
    if (decision.update_norm > med && z > options_.outlier_z) {
      decision.verdict = AdmissionVerdict::kRejectOutlier;
      return decision;
    }
  }

  // Accepted: the norm joins the window (rejections never pollute it).
  window.push_back(decision.update_norm);
  if (window.size() > options_.outlier_window) {
    window.erase(window.begin());
  }
  return decision;
}

std::vector<std::vector<double>> AdmissionController::ExportHistory() const {
  return history_;
}

void AdmissionController::RestoreHistory(
    const std::vector<std::vector<double>>& history) {
  HFR_CHECK_EQ(history.size(), history_.size());
  history_ = history;
}

}  // namespace hetefedrec
