// Cyclic Jacobi eigensolver for symmetric matrices.
//
// Used for Table V: the paper reports the variance of the singular values of
// the covariance matrix of the largest item embedding table. A covariance
// matrix is symmetric positive semi-definite, so its singular values equal
// its eigenvalues; Jacobi rotation is exact enough and trivial to verify.
#ifndef HETEFEDREC_MATH_EIGEN_H_
#define HETEFEDREC_MATH_EIGEN_H_

#include <vector>

#include "src/math/matrix.h"

namespace hetefedrec {

/// \brief Eigenvalues of a symmetric matrix via cyclic Jacobi rotations.
///
/// \param sym symmetric square matrix (asserted up to 1e-9 asymmetry).
/// \param max_sweeps upper bound on full Jacobi sweeps.
/// \returns eigenvalues sorted in descending order.
std::vector<double> SymmetricEigenvalues(const Matrix& sym,
                                         int max_sweeps = 64);

/// Variance of the eigenvalues of cov(columns of m) — the paper's
/// dimensional-collapse measure (Table V, Eq. 12 without the constant).
double SingularValueVariance(const Matrix& m);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_EIGEN_H_
