#include "src/math/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/math/init.h"
#include "src/math/stats.h"
#include "src/util/rng.h"

namespace hetefedrec {
namespace {

TEST(EigenTest, DiagonalMatrixEigenvalues) {
  Matrix m(3, 3);
  m(0, 0) = 3.0;
  m(1, 1) = 1.0;
  m(2, 2) = 2.0;
  auto eig = SymmetricEigenvalues(m);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 3.0, 1e-10);
  EXPECT_NEAR(eig[1], 2.0, 1e-10);
  EXPECT_NEAR(eig[2], 1.0, 1e-10);
}

TEST(EigenTest, KnownTwoByTwo) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 2;
  auto eig = SymmetricEigenvalues(m);
  EXPECT_NEAR(eig[0], 3.0, 1e-10);
  EXPECT_NEAR(eig[1], 1.0, 1e-10);
}

TEST(EigenTest, TraceAndDeterminantPreserved) {
  Rng rng(5);
  Matrix x(50, 6);
  InitNormal(&x, 1.0, &rng);
  Matrix cov = CovarianceMatrix(x);
  auto eig = SymmetricEigenvalues(cov);
  double trace = 0.0;
  for (size_t i = 0; i < 6; ++i) trace += cov(i, i);
  double eig_sum = 0.0;
  for (double e : eig) eig_sum += e;
  EXPECT_NEAR(trace, eig_sum, 1e-8);
}

TEST(EigenTest, CovarianceEigenvaluesNonNegative) {
  Rng rng(7);
  Matrix x(100, 8);
  InitNormal(&x, 2.0, &rng);
  Matrix cov = CovarianceMatrix(x);
  for (double e : SymmetricEigenvalues(cov)) EXPECT_GE(e, -1e-9);
}

TEST(EigenTest, RankDeficiencyDetected) {
  // Two identical columns -> covariance has a zero eigenvalue.
  Rng rng(9);
  Matrix x(60, 3);
  InitNormal(&x, 1.0, &rng);
  for (size_t r = 0; r < x.rows(); ++r) x(r, 2) = x(r, 1);
  auto eig = SymmetricEigenvalues(CovarianceMatrix(x));
  EXPECT_NEAR(eig.back(), 0.0, 1e-9);
}

TEST(EigenTest, SingularValueVarianceZeroForIsotropic) {
  // Columns i.i.d. with equal variance -> eigenvalues nearly equal ->
  // variance of eigenvalues near zero (relative to their magnitude).
  Rng rng(11);
  Matrix x(20000, 4);
  InitNormal(&x, 1.0, &rng);
  double v = SingularValueVariance(x);
  EXPECT_LT(v, 0.01);
}

TEST(EigenTest, SingularValueVarianceLargeForCollapsed) {
  // One dominant direction (collapse): variance of eigenvalues is large.
  Rng rng(13);
  Matrix x(2000, 4);
  for (size_t r = 0; r < x.rows(); ++r) {
    double t = rng.Normal();
    x(r, 0) = 3.0 * t;
    x(r, 1) = 3.0 * t + 0.01 * rng.Normal();
    x(r, 2) = 3.0 * t + 0.01 * rng.Normal();
    x(r, 3) = 0.01 * rng.Normal();
  }
  EXPECT_GT(SingularValueVariance(x), 10.0);
}

TEST(EigenTest, OneByOne) {
  Matrix m(1, 1);
  m(0, 0) = 4.2;
  auto eig = SymmetricEigenvalues(m);
  ASSERT_EQ(eig.size(), 1u);
  EXPECT_DOUBLE_EQ(eig[0], 4.2);
}

}  // namespace
}  // namespace hetefedrec
