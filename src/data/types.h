// Core data types for implicit-feedback recommendation.
#ifndef HETEFEDREC_DATA_TYPES_H_
#define HETEFEDREC_DATA_TYPES_H_

#include <cstdint>
#include <vector>

namespace hetefedrec {

using UserId = int32_t;
using ItemId = int32_t;

/// One observed user-item interaction. Ratings are binarized to implicit
/// feedback (r = 1) as in the paper (§V-A); negatives are sampled, never
/// stored.
struct Interaction {
  UserId user = 0;
  ItemId item = 0;

  bool operator==(const Interaction& o) const {
    return user == o.user && item == o.item;
  }
};

/// A training sample after negative sampling: label 1 for an observed
/// interaction, 0 for a sampled negative.
struct Sample {
  ItemId item = 0;
  double label = 0.0;
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_DATA_TYPES_H_
