#include "src/fed/fault/fault_injector.h"

#include <limits>

#include "src/util/logging.h"

namespace hetefedrec {

namespace {
// Stream tags keep the fault draws independent from SimulatedNetwork's
// online/bandwidth/latency families and from each other.
constexpr uint64_t kFaultStream = 0xfa17ULL;
constexpr uint64_t kCorruptStream = 0xc02bULL;

// How many leading values a NaN/Inf corruption poisons. Poisoning a prefix
// rather than everything keeps the fault subtle enough that only a finite
// scan (not a norm check) reliably catches it.
constexpr size_t kPoisonValues = 8;
}  // namespace

FaultInjector::FaultInjector(const FaultOptions& options)
    : options_(options), base_(options.seed) {
  HFR_CHECK_GE(options_.upload_loss, 0.0);
  HFR_CHECK_GE(options_.download_loss, 0.0);
  HFR_CHECK_GE(options_.crash, 0.0);
  HFR_CHECK_GE(options_.duplicate, 0.0);
  HFR_CHECK_GE(options_.corrupt, 0.0);
  const double total = options_.upload_loss + options_.download_loss +
                       options_.crash + options_.duplicate + options_.corrupt;
  HFR_CHECK_LE(total, 1.0);
  any_ = total > 0.0;
}

FaultKind FaultInjector::Draw(UserId u, uint64_t key) const {
  if (!any_) return FaultKind::kNone;
  Rng draw =
      base_.Fork(kFaultStream).Fork(static_cast<uint64_t>(u)).Fork(key);
  double x = draw.Uniform();
  if (x < options_.download_loss) return FaultKind::kDownloadLoss;
  x -= options_.download_loss;
  if (x < options_.crash) return FaultKind::kCrash;
  x -= options_.crash;
  if (x < options_.upload_loss) return FaultKind::kUploadLoss;
  x -= options_.upload_loss;
  if (x < options_.duplicate) return FaultKind::kDuplicate;
  x -= options_.duplicate;
  if (x < options_.corrupt) return FaultKind::kCorrupt;
  return FaultKind::kNone;
}

CorruptMode FaultInjector::Corrupt(UserId u, uint64_t key,
                                   LocalUpdateResult* update) const {
  Rng draw =
      base_.Fork(kCorruptStream).Fork(static_cast<uint64_t>(u)).Fork(key);
  const CorruptMode mode = static_cast<CorruptMode>(draw.UniformInt(3));
  double* data = nullptr;
  size_t n = 0;
  if (update->sparse) {
    data = update->v_delta_sparse.data.data();
    n = update->v_delta_sparse.data.size();
  } else {
    data = update->v_delta.data().data();
    n = update->v_delta.size();
  }
  if (n == 0) return mode;
  switch (mode) {
    case CorruptMode::kNaN: {
      const size_t k = n < kPoisonValues ? n : kPoisonValues;
      for (size_t i = 0; i < k; ++i) {
        data[i] = std::numeric_limits<double>::quiet_NaN();
      }
      break;
    }
    case CorruptMode::kInf: {
      const size_t k = n < kPoisonValues ? n : kPoisonValues;
      for (size_t i = 0; i < k; ++i) {
        data[i] = std::numeric_limits<double>::infinity();
      }
      break;
    }
    case CorruptMode::kLargeNorm: {
      for (size_t i = 0; i < n; ++i) data[i] *= 1e3;
      break;
    }
  }
  return mode;
}

}  // namespace hetefedrec
