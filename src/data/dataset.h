// In-memory implicit-feedback dataset with per-user train/test splits.
//
// Mirrors the paper's protocol (§V-A): per user, 80% of interactions train
// and 20% test; negatives are drawn 1:4 against items the user has never
// interacted with; a 10% validation carve-out of the training split is
// available to guide local training.
#ifndef HETEFEDREC_DATA_DATASET_H_
#define HETEFEDREC_DATA_DATASET_H_

#include <unordered_set>
#include <vector>

#include "src/data/types.h"
#include "src/util/rng.h"
#include "src/util/status.h"

namespace hetefedrec {

/// \brief Split options for `Dataset::FromInteractions`.
struct SplitOptions {
  /// Fraction of each user's interactions assigned to the training split.
  double train_fraction = 0.8;
  /// Negative samples per positive during training (paper: 1:4).
  int negatives_per_positive = 4;
  /// Shuffle seed for the per-user split.
  uint64_t seed = 17;
};

/// \brief Holds all users' interactions partitioned into train/test.
///
/// The object is immutable after construction; clients hold const references
/// and only ever read their own user's rows, mirroring the federated privacy
/// boundary.
class Dataset {
 public:
  /// Builds a dataset from raw interactions. Duplicate (user,item) pairs are
  /// collapsed. Fails if any id is outside [0, num_users) / [0, num_items).
  static StatusOr<Dataset> FromInteractions(
      const std::vector<Interaction>& interactions, size_t num_users,
      size_t num_items, const SplitOptions& options = {});

  size_t num_users() const { return train_.size(); }
  size_t num_items() const { return num_items_; }
  int negatives_per_positive() const { return negatives_per_positive_; }

  /// Training items of user u.
  const std::vector<ItemId>& TrainItems(UserId u) const;

  /// Held-out test items of user u.
  const std::vector<ItemId>& TestItems(UserId u) const;

  /// Total training interactions across users.
  size_t TotalTrainInteractions() const;

  /// Total interactions (train + test) across users.
  size_t TotalInteractions() const;

  /// Number of interactions (train + test) of user u — the quantity the
  /// paper uses to divide clients into Us/Um/Ul.
  size_t InteractionCount(UserId u) const;

  /// True if user u interacted with item i in either split.
  bool HasInteracted(UserId u, ItemId i) const;

  /// Draws `count` negative items for user u uniformly from items outside
  /// the user's *training* positives. Held-out test items are eligible,
  /// matching the standard NCF evaluation protocol: excluding them would
  /// leak the test set into training, because every non-test item would be
  /// pushed down by repeated negative sampling while test items stayed
  /// untouched.
  std::vector<ItemId> SampleNegatives(UserId u, size_t count, Rng* rng) const;

  /// Builds user u's local training mini-dataset for one epoch: every train
  /// positive plus `negatives_per_positive` fresh negatives each.
  std::vector<Sample> BuildLocalEpoch(UserId u, Rng* rng) const;

  /// Like BuildLocalEpoch but over an explicit positive list — used when a
  /// client carves a validation subset out of its training items (§III-A:
  /// 10% of local training data guides local training).
  std::vector<Sample> BuildEpochFromPositives(
      UserId u, const std::vector<ItemId>& positives, Rng* rng) const;

  /// Items with at least one interaction (used by popularity diagnostics).
  std::vector<size_t> ItemPopularity() const;

 private:
  Dataset() = default;

  size_t num_items_ = 0;
  int negatives_per_positive_ = 4;
  std::vector<std::vector<ItemId>> train_;
  std::vector<std::vector<ItemId>> test_;
  // hfr-lint: iteration-order-safe(membership tests only - insert/count, never walked; split order comes from the per_user vectors)
  std::vector<std::unordered_set<ItemId>> seen_;       // train ∪ test
  // hfr-lint: iteration-order-safe(membership tests only - negative-sample rejection via count, never walked)
  std::vector<std::unordered_set<ItemId>> train_set_;  // train only
};

}  // namespace hetefedrec

#endif  // HETEFEDREC_DATA_DATASET_H_
