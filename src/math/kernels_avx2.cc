// Hand-vectorized AVX2+FMA fp32 kernels (compiled with -mavx2 -mfma; this
// is the only translation unit with those flags, so nothing here may be
// called unless runtime dispatch confirmed CPU support).
//
// Lockstep contract with kernels_fp32.cc: per output element, the vector
// code performs the same single-rounding multiply-adds in the same order
// as the scalar emulation, and the horizontal reduction is the fixed
// (l0+l4, l1+l5, l2+l6, l3+l7) → (s0+s2, s1+s3) → t0+t1 tree. Any change
// to either file must be mirrored in the other
// (tests/math/kernels_test.cc pins the bit-identity).

#include "src/math/kernels_fp32.h"

#ifdef HFR_HAVE_AVX2_TU

#include <immintrin.h>

#include <cmath>

namespace hetefedrec {
namespace fp32 {

namespace {

// (l0+l4, l1+l5, l2+l6, l3+l7) → (s0+s2, s1+s3) → t0+t1 — the exact tree
// DotImpl in kernels_fp32.cc retires.
inline float ReduceTree(__m256 acc) {
  const __m128 lo = _mm256_castps256_ps128(acc);
  const __m128 hi = _mm256_extractf128_ps(acc, 1);
  const __m128 s = _mm_add_ps(lo, hi);           // (s0, s1, s2, s3)
  const __m128 t = _mm_add_ps(s, _mm_movehl_ps(s, s));  // (s0+s2, s1+s3)
  const __m128 r = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x55));
  return _mm_cvtss_f32(r);
}

inline float DotImpl(const float* a, const float* b, size_t n) {
  if (n < 8) {
    float r = 0.0f;
    for (size_t i = 0; i < n; ++i) r = std::fmaf(a[i], b[i], r);
    return r;
  }
  __m256 acc = _mm256_mul_ps(_mm256_loadu_ps(a), _mm256_loadu_ps(b));
  size_t i = 8;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  float r = ReduceTree(acc);
  for (; i < n; ++i) r = std::fmaf(a[i], b[i], r);
  return r;
}

}  // namespace

void GemvBatchResumeAvx2(const float* x, size_t batch, size_t x_stride,
                         size_t in_dim, const float* w, const float* init,
                         size_t out_dim, float* out) {
  if (out_dim == 1) {
    for (size_t b = 0; b < batch; ++b) {
      out[b] = init[0] + DotImpl(x + b * x_stride, w, in_dim);
    }
    return;
  }
  for (size_t b = 0; b < batch; ++b) {
    const float* xrow = x + b * x_stride;
    float* orow = out + b * out_dim;
    size_t j0 = 0;
    for (; j0 + 8 <= out_dim; j0 += 8) {
      __m256 acc = _mm256_loadu_ps(init + j0);
      for (size_t i = 0; i < in_dim; ++i) {
        acc = _mm256_fmadd_ps(_mm256_set1_ps(xrow[i]),
                              _mm256_loadu_ps(w + i * out_dim + j0), acc);
      }
      _mm256_storeu_ps(orow + j0, acc);
    }
    for (; j0 < out_dim; ++j0) {
      float acc = init[j0];
      for (size_t i = 0; i < in_dim; ++i) {
        acc = std::fmaf(xrow[i], w[i * out_dim + j0], acc);
      }
      orow[j0] = acc;
    }
  }
}

void AccumulateOuterBatchAvx2(const float* in, const float* delta,
                              size_t batch, size_t in_dim, size_t out_dim,
                              float* grads_w, float* grads_b) {
  for (size_t b = 0; b < batch; ++b) {
    const float* drow = delta + b * out_dim;
    const float* irow = in + b * in_dim;
    {
      size_t j0 = 0;
      for (; j0 + 8 <= out_dim; j0 += 8) {
        _mm256_storeu_ps(grads_b + j0,
                         _mm256_add_ps(_mm256_loadu_ps(grads_b + j0),
                                       _mm256_loadu_ps(drow + j0)));
      }
      for (; j0 < out_dim; ++j0) grads_b[j0] += drow[j0];
    }
    if (out_dim == 1) {
      // grads_w is a column — vectorize over i instead (independent lanes).
      const __m256 d8 = _mm256_set1_ps(drow[0]);
      size_t i = 0;
      for (; i + 8 <= in_dim; i += 8) {
        _mm256_storeu_ps(grads_w + i,
                         _mm256_fmadd_ps(_mm256_loadu_ps(irow + i), d8,
                                         _mm256_loadu_ps(grads_w + i)));
      }
      for (; i < in_dim; ++i) {
        grads_w[i] = std::fmaf(irow[i], drow[0], grads_w[i]);
      }
      continue;
    }
    for (size_t i = 0; i < in_dim; ++i) {
      const __m256 xi8 = _mm256_set1_ps(irow[i]);
      float* grow = grads_w + i * out_dim;
      size_t j0 = 0;
      for (; j0 + 8 <= out_dim; j0 += 8) {
        _mm256_storeu_ps(grow + j0,
                         _mm256_fmadd_ps(xi8, _mm256_loadu_ps(drow + j0),
                                         _mm256_loadu_ps(grow + j0)));
      }
      for (; j0 < out_dim; ++j0) {
        grow[j0] = std::fmaf(irow[i], drow[j0], grow[j0]);
      }
    }
  }
}

void GemvBatchTransposedAvx2(const float* delta, size_t batch, size_t out_dim,
                             const float* w, size_t in_dim, float* dx) {
  for (size_t b = 0; b < batch; ++b) {
    const float* drow = delta + b * out_dim;
    float* dxrow = dx + b * in_dim;
    for (size_t i = 0; i < in_dim; ++i) {
      dxrow[i] = DotImpl(w + i * out_dim, drow, out_dim);
    }
  }
}

float DotAvx2(const float* a, const float* b, size_t n) {
  return DotImpl(a, b, n);
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 a8 = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(a8, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

}  // namespace fp32
}  // namespace hetefedrec

#endif  // HFR_HAVE_AVX2_TU
