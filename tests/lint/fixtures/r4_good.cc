// Fixture: must produce zero findings. Work is keyed by stable slot
// indices, and pointer-*valued* (not pointer-keyed) containers are fine.
#include <cstddef>
#include <map>
#include <vector>

struct Node {};

// Pointer values keyed by a stable integer id: deterministic.
static std::map<int, Node*> by_id;

Node* Lookup(int id) {
  auto it = by_id.find(id);
  return it == by_id.end() ? nullptr : it->second;
}

double ReduceBySlot(const std::vector<double>& per_slot) {
  double total = 0.0;
  for (std::size_t slot = 0; slot < per_slot.size(); ++slot) {
    total += per_slot[slot];
  }
  return total;
}
