#include "src/fed/fault/client_gate.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/util/logging.h"

namespace hetefedrec {

namespace {
constexpr uint64_t kJitterStream = 0xbacc0ffULL;

uint64_t DoubleBits(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}
}  // namespace

ClientGate::ClientGate(size_t num_users, const BackoffOptions& options)
    : options_(options),
      base_(options.seed),
      fails_(num_users, 0),
      draws_(num_users, 0),
      ready_(num_users, 0.0) {
  HFR_CHECK_GT(options_.retry_base_seconds, 0.0);
  HFR_CHECK_GE(options_.retry_cap_seconds, options_.retry_base_seconds);
  HFR_CHECK_GT(options_.quarantine_base_seconds, 0.0);
  HFR_CHECK_GE(options_.quarantine_cap_seconds,
               options_.quarantine_base_seconds);
  HFR_CHECK_GE(options_.multiplier, 1.0);
  HFR_CHECK_GE(options_.jitter, 0.0);
  HFR_CHECK_LE(options_.jitter, 1.0);
  HFR_CHECK_GE(options_.retry_max, 1u);
}

bool ClientGate::Ready(UserId u, double now) const {
  return now >= ready_[static_cast<size_t>(u)];
}

double ClientGate::Delay(UserId u, double base, double cap) {
  const size_t i = static_cast<size_t>(u);
  const double exp_delay =
      base * std::pow(options_.multiplier,
                      static_cast<double>(fails_[i] - 1));
  const double capped = std::min(cap, exp_delay);
  // Each failure consumes a fresh jitter key so repeats don't synchronize.
  Rng draw = base_.Fork(kJitterStream)
                 .Fork(static_cast<uint64_t>(u))
                 .Fork(draws_[i]++);
  return capped * (1.0 + options_.jitter * draw.Uniform());
}

bool ClientGate::RetryAfterFailure(UserId u, double now) {
  const size_t i = static_cast<size_t>(u);
  ++fails_[i];
  if (fails_[i] >= options_.retry_max) {
    // Give up for this epoch; the streak resets so the next epoch's refill
    // starts the client from the base delay again.
    fails_[i] = 0;
    ready_[i] = now;
    return false;
  }
  ready_[i] = now + Delay(u, options_.retry_base_seconds,
                          options_.retry_cap_seconds);
  return true;
}

void ClientGate::Quarantine(UserId u, double now) {
  const size_t i = static_cast<size_t>(u);
  ++fails_[i];
  ready_[i] = now + Delay(u, options_.quarantine_base_seconds,
                          options_.quarantine_cap_seconds);
}

void ClientGate::OnSuccess(UserId u) { fails_[static_cast<size_t>(u)] = 0; }

std::vector<uint64_t> ClientGate::Export() const {
  std::vector<uint64_t> packed;
  packed.reserve(fails_.size() * 3);
  for (size_t i = 0; i < fails_.size(); ++i) {
    packed.push_back(fails_[i]);
    packed.push_back(draws_[i]);
    packed.push_back(DoubleBits(ready_[i]));
  }
  return packed;
}

void ClientGate::Restore(const std::vector<uint64_t>& packed) {
  HFR_CHECK_EQ(packed.size(), fails_.size() * 3);
  for (size_t i = 0; i < fails_.size(); ++i) {
    fails_[i] = static_cast<uint32_t>(packed[3 * i]);
    draws_[i] = packed[3 * i + 1];
    ready_[i] = BitsToDouble(packed[3 * i + 2]);
  }
}

}  // namespace hetefedrec
