#include "src/fed/scheduler.h"

#include <gtest/gtest.h>

#include <set>

namespace hetefedrec {
namespace {

TEST(SchedulerTest, EveryUserExactlyOncePerEpoch) {
  RoundScheduler sched(1000, 256);
  Rng rng(3);
  auto batches = sched.EpochBatches(&rng);
  std::set<UserId> seen;
  for (const auto& b : batches) {
    for (UserId u : b) EXPECT_TRUE(seen.insert(u).second);
  }
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 999);
}

TEST(SchedulerTest, BatchSizesMatchPaperProtocol) {
  RoundScheduler sched(1000, 256);
  Rng rng(5);
  auto batches = sched.EpochBatches(&rng);
  ASSERT_EQ(batches.size(), 4u);
  EXPECT_EQ(batches[0].size(), 256u);
  EXPECT_EQ(batches[1].size(), 256u);
  EXPECT_EQ(batches[2].size(), 256u);
  EXPECT_EQ(batches[3].size(), 232u);  // remainder
  EXPECT_EQ(sched.rounds_per_epoch(), 4u);
}

TEST(SchedulerTest, FewerUsersThanRoundSize) {
  RoundScheduler sched(100, 256);
  Rng rng(7);
  auto batches = sched.EpochBatches(&rng);
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].size(), 100u);
}

TEST(SchedulerTest, ShuffleChangesAcrossEpochs) {
  RoundScheduler sched(500, 100);
  Rng rng(11);
  auto e1 = sched.EpochBatches(&rng);
  auto e2 = sched.EpochBatches(&rng);
  EXPECT_NE(e1[0], e2[0]);  // astronomically unlikely to coincide
}

TEST(SchedulerTest, DeterministicGivenRngState) {
  RoundScheduler sched(300, 64);
  Rng a(13), b(13);
  EXPECT_EQ(sched.EpochBatches(&a), sched.EpochBatches(&b));
}

}  // namespace
}  // namespace hetefedrec
