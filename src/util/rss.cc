#include "src/util/rss.h"

#include <cstdio>
#include <cstring>

namespace hetefedrec {

size_t PeakRssKb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + 6, "%llu", &value) == 1) {
        kb = static_cast<size_t>(value);
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

}  // namespace hetefedrec
