#include "src/core/local_trainer.h"

#include <algorithm>
#include <limits>
#include <type_traits>

#include "src/core/decorrelation.h"
#include "src/math/activations.h"
#include "src/math/adam.h"
#include "src/util/telemetry/profiler.h"

namespace hetefedrec {

LocalTrainer::LocalTrainer(const Dataset& ds, BaseModel model)
    : ds_(ds), model_(model) {}

LocalUpdateResult LocalTrainer::Train(
    ClientState* client, const Matrix& global_table,
    const std::vector<const FeedForwardNet*>& thetas,
    const std::vector<LocalTaskSpec>& tasks,
    const LocalTrainerOptions& options) {
  const bool fp32 = options.backend != ComputeBackend::kFp64;
  if (options.use_sparse) {
    return fp32 ? TrainImpl<true, float>(client, global_table, thetas, tasks,
                                         options)
                : TrainImpl<true, double>(client, global_table, thetas, tasks,
                                          options);
  }
  return fp32 ? TrainImpl<false, float>(client, global_table, thetas, tasks,
                                        options)
              : TrainImpl<false, double>(client, global_table, thetas, tasks,
                                         options);
}

template <bool kSparse, typename S>
LocalUpdateResult LocalTrainer::TrainImpl(
    ClientState* client, const Matrix& global_table,
    const std::vector<const FeedForwardNet*>& thetas,
    const std::vector<LocalTaskSpec>& tasks,
    const LocalTrainerOptions& options) {
  HFR_CHECK(!tasks.empty());
  HFR_CHECK_EQ(tasks.size(), thetas.size());
  const size_t width = tasks.back().width;
  HFR_CHECK_EQ(global_table.cols(), width);
  HFR_CHECK_EQ(client->user_embedding.cols(), width);
  for (size_t t = 0; t + 1 < tasks.size(); ++t) {
    HFR_CHECK_LE(tasks[t].width, tasks[t + 1].width);
  }
  constexpr bool kFp64 = std::is_same_v<S, double>;
  Scratch<S>& scr = ScratchFor<S>();

  // Local working view of V ("download", counted once per round): a full
  // dense copy on the reference path, a copy-on-write overlay on the
  // sparse path. The fp32 backend casts at this boundary — dense copies
  // convert the whole table once; the overlay converts per visited row.
  if constexpr (kSparse) {
    scr.v_overlay.Reset(&global_table);
    scr.v_grad_sparse.Reset(global_table.rows(), width);
  } else {
    scr.v_local.AssignCast(global_table);
    if (!scr.v_grad.SameShape(scr.v_local)) {
      scr.v_grad = MatrixT<S>(scr.v_local.rows(), width);
    }
  }
  auto local_table = [&]() -> auto& {
    if constexpr (kSparse) {
      return scr.v_overlay;
    } else {
      return scr.v_local;
    }
  };
  auto local_grad = [&]() -> auto& {
    if constexpr (kSparse) {
      return scr.v_grad_sparse;
    } else {
      return scr.v_grad;
    }
  };
  auto& vtab = local_table();
  auto& vgrad = local_grad();

  if (scr.u_grad.cols() != width) scr.u_grad = MatrixT<S>(1, width);

  // Working user embedding: the persistent double row itself on the
  // reference backend; a float round-trip copy on fp32 (written back at
  // the end of the round).
  auto user_table = [&]() -> MatrixT<S>& {
    if constexpr (kFp64) {
      return client->user_embedding;
    } else {
      return scr.user_emb;
    }
  };
  if constexpr (!kFp64) scr.user_emb.AssignCast(client->user_embedding);
  MatrixT<S>& utab = user_table();

  // Θ download buffers and gradient accumulators, reused across calls.
  scr.theta_local.resize(tasks.size());
  scr.theta_grad.resize(tasks.size());
  size_t theta_params = 0;
  for (size_t t = 0; t < tasks.size(); ++t) {
    HFR_CHECK(thetas[t] != nullptr);
    scr.theta_local[t].template AssignCastFrom<double>(*thetas[t]);
    theta_params += thetas[t]->ParamCount();
    if (!scr.theta_grad[t].SameShape(scr.theta_local[t])) {
      scr.theta_grad[t] = FeedForwardNetT<S>::ZerosLike(scr.theta_local[t]);
    }
  }

  // Fresh optimizer state for this round.
  AdamOptions adam_opt;
  adam_opt.lr = options.lr;
  AdamT<S> adam_v(adam_opt);
  if constexpr (kSparse) {
    scr.adam_v_sparse.set_options(adam_opt);
    scr.adam_v_sparse.Reset(global_table.rows(), width);
  }
  AdamT<S> adam_u(adam_opt);
  std::vector<FfnAdamT<S>> adam_theta(tasks.size(), FfnAdamT<S>(adam_opt));

  // One Scorer per task width.
  std::vector<ScorerT<S>> scorers;
  scorers.reserve(tasks.size());
  for (const LocalTaskSpec& task : tasks) {
    scorers.emplace_back(model_, task.width);
  }

  // Validation carve-out (§III-A): hold out the tail of the (already
  // shuffled) training list; fit on the rest; keep the epoch with the best
  // validation BCE.
  const std::vector<ItemId>& all_train = ds_.TrainItems(client->id);
  std::vector<ItemId> fit_items = all_train;
  std::vector<Sample> val_samples;
  const bool use_validation =
      options.validation_fraction > 0.0 &&
      all_train.size() >= options.min_validation_positives;
  if (use_validation) {
    size_t n_val = std::max<size_t>(
        1, static_cast<size_t>(options.validation_fraction *
                               static_cast<double>(all_train.size())));
    std::vector<ItemId> val_items(all_train.end() - n_val, all_train.end());
    fit_items.assign(all_train.begin(), all_train.end() - n_val);
    val_samples =
        ds_.BuildEpochFromPositives(client->id, val_items, &client->rng);
  }
  const std::vector<ItemId>& train_items = fit_items;

  // Best-epoch snapshot state for validation-guided selection. The sparse
  // path snapshots only the overlay's packed rows + data — O(touched) per
  // improving epoch, no O(num_items) position-table copy.
  double best_val_loss = std::numeric_limits<double>::infinity();
  bool best_set = false;
  MatrixT<S> best_v;
  std::vector<uint32_t> best_overlay_rows;
  std::vector<S> best_overlay_data;
  MatrixT<S> best_u;
  std::vector<FeedForwardNetT<S>> best_theta;

  LocalUpdateResult result;

  for (int epoch = 0; epoch < options.local_epochs; ++epoch) {
    std::vector<Sample> samples = ds_.BuildEpochFromPositives(
        client->id, fit_items, &client->rng);
    if constexpr (kSparse) {
      vgrad.Clear();
    } else {
      vgrad.SetZero();
    }
    scr.u_grad.SetZero();
    for (auto& g : scr.theta_grad) g.SetZero();

    double bce_loss = 0.0;
    typename ScorerT<S>::TrainCache cache;
    if (options.use_batched) {
      // The epoch's item list is shared by every task's forward block.
      const size_t n = samples.size();
      sample_items_.resize(n);
      scr.logits.resize(n);
      scr.dlogits.resize(n);
      for (size_t b = 0; b < n; ++b) sample_items_[b] = samples[b].item;
    }
    for (size_t t = 0; t < tasks.size(); ++t) {
      ScorerT<S>& sc = scorers[t];
      sc.BeginUser(utab.Row(0), vtab, train_items);
      if (options.use_batched) {
        // One forward block and one backward block per task; losses and
        // dlogits materialize in sample order, so every accumulator
        // (bce_loss, gradients) sums in the per-sample reference order.
        // The loss scalars stay double on every backend.
        const size_t n = samples.size();
        {
          HFR_PROFILE("forward");
          sc.ScoreForTrainBatch(vtab, scr.theta_local[t], sample_items_.data(),
                                n, &scr.batch_cache, scr.logits.data());
          for (size_t b = 0; b < n; ++b) {
            const double logit = static_cast<double>(scr.logits[b]);
            bce_loss += BceWithLogits(logit, samples[b].label);
            scr.dlogits[b] =
                static_cast<S>(BceWithLogitsGrad(logit, samples[b].label));
          }
        }
        {
          HFR_PROFILE("backward");
          sc.BackwardBatch(scr.theta_local[t], scr.batch_cache,
                           scr.dlogits.data(), &vgrad, scr.u_grad.Row(0),
                           &scr.theta_grad[t]);
        }
      } else {
        for (const Sample& s : samples) {
          const double logit = static_cast<double>(
              sc.ScoreForTrain(vtab, scr.theta_local[t], s.item, &cache));
          bce_loss += BceWithLogits(logit, s.label);
          sc.BackwardSample(scr.theta_local[t], cache,
                            static_cast<S>(BceWithLogitsGrad(logit, s.label)),
                            &vgrad, scr.u_grad.Row(0), &scr.theta_grad[t]);
        }
      }
      sc.FinishUserBackward(&vgrad, scr.u_grad.Row(0));
    }

    double reg_loss = 0.0;
    if (options.apply_ddr) {
      reg_loss = DecorrelationLossAndGrad(vtab, options.alpha,
                                          options.ddr_sample_rows,
                                          &client->rng, &vgrad);
    }

    {
      HFR_PROFILE("adam");
      if constexpr (kSparse) {
        scr.adam_v_sparse.Step(&scr.v_overlay, scr.v_grad_sparse);
      } else {
        adam_v.Step(&scr.v_local, scr.v_grad);
      }
      adam_u.Step(&utab, scr.u_grad);
      for (size_t t = 0; t < tasks.size(); ++t) {
        adam_theta[t].Step(&scr.theta_local[t], scr.theta_grad[t]);
      }
    }

    result.train_samples += samples.size() * tasks.size();

    if (epoch + 1 == options.local_epochs) {
      result.train_loss =
          samples.empty()
              ? 0.0
              : bce_loss / (static_cast<double>(samples.size()) *
                            static_cast<double>(tasks.size()));
      result.reg_loss = reg_loss;
    }

    if (use_validation && !val_samples.empty()) {
      // Validation BCE of the client's own-width model after this epoch.
      ScorerT<S>& own = scorers.back();
      own.BeginUser(utab.Row(0), vtab, fit_items);
      double val = 0.0;
      if (options.use_batched) {
        const size_t n = val_samples.size();
        val_items_.resize(n);
        scr.val_scores.resize(n);
        for (size_t b = 0; b < n; ++b) val_items_[b] = val_samples[b].item;
        own.ScoreBatch(vtab, scr.theta_local.back(), val_items_.data(), n,
                       scr.val_scores.data());
        for (size_t b = 0; b < n; ++b) {
          val += BceWithLogits(static_cast<double>(scr.val_scores[b]),
                               val_samples[b].label);
        }
      } else {
        for (const Sample& s : val_samples) {
          val += BceWithLogits(
              static_cast<double>(
                  own.Score(vtab, scr.theta_local.back(), s.item)),
              s.label);
        }
      }
      val /= static_cast<double>(val_samples.size());
      result.train_samples += val_samples.size();
      if (val < best_val_loss) {
        best_val_loss = val;
        best_set = true;
        if constexpr (kSparse) {
          scr.v_overlay.SnapshotLocal(&best_overlay_rows, &best_overlay_data);
        } else {
          best_v = scr.v_local;
        }
        best_u = utab;
        best_theta = scr.theta_local;
      }
    }
  }

  // Delta-sync subscription: every row the client read. Captured *before*
  // the best-epoch restore — rows mutated only after the best epoch drop
  // out of the upload set, but the client still needed their fresh values.
  if constexpr (kSparse) {
    result.read_rows.assign(scr.v_overlay.touched().begin(),
                            scr.v_overlay.touched().end());
    for (const Sample& s : val_samples) {
      // Validation items are scored but never trained, so they are read
      // without entering the overlay.
      result.read_rows.push_back(static_cast<uint32_t>(s.item));
    }
    std::sort(result.read_rows.begin(), result.read_rows.end());
    result.read_rows.erase(
        std::unique(result.read_rows.begin(), result.read_rows.end()),
        result.read_rows.end());
  }

  if (use_validation && best_set) {
    if constexpr (kSparse) {
      // Rows touched after the best epoch revert to base values by
      // dropping out of the overlay, exactly matching the dense restore.
      scr.v_overlay.RestoreLocal(best_overlay_rows, best_overlay_data);
    } else {
      scr.v_local = best_v;
    }
    utab = best_u;
    scr.theta_local = std::move(best_theta);
    result.validation_loss = best_val_loss;
  }

  // fp32 backend: write the trained user embedding back into the
  // persistent double row (the only state that survives the round).
  if constexpr (!kFp64) {
    double* out = client->user_embedding.Row(0);
    const S* in = utab.Row(0);
    for (size_t d = 0; d < width; ++d) out[d] = static_cast<double>(in[d]);
  }

  // Deltas to upload, always upcast to double at this boundary — the wire
  // and the server aggregation are fp64 storage of record on every
  // backend. Identical arithmetic on both row paths: the dense path's
  // delta is exactly 0.0 outside the touched set (zero gradient in every
  // epoch keeps the Adam moments and step at exactly zero).
  size_t v_upload_params = global_table.size();
  if constexpr (kSparse) {
    result.sparse = true;
    SparseRowUpdate& up = result.v_delta_sparse;
    up.width = width;
    up.rows.assign(scr.v_overlay.touched().begin(),
                   scr.v_overlay.touched().end());
    std::sort(up.rows.begin(), up.rows.end());
    up.data.resize(up.rows.size() * width);
    for (size_t k = 0; k < up.rows.size(); ++k) {
      const S* local = scr.v_overlay.Row(up.rows[k]);
      const double* base = global_table.Row(up.rows[k]);
      double* out = up.data.data() + k * width;
      for (size_t d = 0; d < width; ++d) {
        out[d] = static_cast<double>(local[d]) - base[d];
      }
    }
    if (options.sparse_comm_accounting) v_upload_params = up.ParamCount();
  } else {
    if constexpr (kFp64) {
      result.v_delta = scr.v_local;
    } else {
      result.v_delta.AssignCast(scr.v_local);
    }
    result.v_delta.AddScaled(global_table, -1.0);
  }
  result.theta_deltas.resize(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    FeedForwardNet d;
    d.AssignCastFrom(scr.theta_local[t]);
    d.AddScaled(*thetas[t], -1.0);
    result.theta_deltas[t] = std::move(d);
  }
  result.params_down = global_table.size() + theta_params;
  result.params_up = v_upload_params + theta_params;
  long long skipped = adam_u.skipped_steps();
  if constexpr (kSparse) {
    skipped += scr.adam_v_sparse.skipped_steps();
  } else {
    skipped += adam_v.skipped_steps();
  }
  for (const FfnAdamT<S>& a : adam_theta) skipped += a.skipped_steps();
  result.nonfinite_grad_steps = static_cast<size_t>(skipped);
  return result;
}

template LocalUpdateResult LocalTrainer::TrainImpl<true, double>(
    ClientState*, const Matrix&, const std::vector<const FeedForwardNet*>&,
    const std::vector<LocalTaskSpec>&, const LocalTrainerOptions&);
template LocalUpdateResult LocalTrainer::TrainImpl<false, double>(
    ClientState*, const Matrix&, const std::vector<const FeedForwardNet*>&,
    const std::vector<LocalTaskSpec>&, const LocalTrainerOptions&);
template LocalUpdateResult LocalTrainer::TrainImpl<true, float>(
    ClientState*, const Matrix&, const std::vector<const FeedForwardNet*>&,
    const std::vector<LocalTaskSpec>&, const LocalTrainerOptions&);
template LocalUpdateResult LocalTrainer::TrainImpl<false, float>(
    ClientState*, const Matrix&, const std::vector<const FeedForwardNet*>&,
    const std::vector<LocalTaskSpec>&, const LocalTrainerOptions&);

}  // namespace hetefedrec
