// Dense row-major matrix, templated on the element scalar.
//
// This is the dense numeric container used across the library: embedding
// tables, feed-forward weights, covariance and correlation matrices, and
// the reference (dense) client-update path. Two instantiations exist:
// `Matrix` (double) is the storage of record — item tables at server
// granularity, FFN layers, checkpoints — and the interchange format every
// sparse structure can scatter into; `MatrixF` (float) is the working
// container of the fp32 compute backend (src/math/backend.h), used for
// client-local training state and evaluation scratch, never for state the
// server persists. The individual kernels stay simple loops, but the hot
// paths are engineered for scale: per-client training goes through the
// row-sparse containers in src/math/sparse.h so round cost is proportional
// to a client's data rather than the catalogue, rounds execute in parallel
// (src/util/thread_pool.h), and storage is 32-byte aligned
// (src/math/aligned.h) so the SIMD kernels load full vectors from row 0.
#ifndef HETEFEDREC_MATH_MATRIX_H_
#define HETEFEDREC_MATH_MATRIX_H_

#include <cstddef>

#include "src/math/aligned.h"
#include "src/util/logging.h"

namespace hetefedrec {

/// \brief Row-major dense matrix over scalar T (double or float).
template <typename T>
class MatrixT {
 public:
  using Scalar = T;

  /// Empty 0x0 matrix.
  MatrixT() = default;

  /// rows x cols matrix initialized to zero.
  MatrixT(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T(0)) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(size_t r, size_t c) {
    HFR_CHECK_LT(r, rows_);
    HFR_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  T operator()(size_t r, size_t c) const {
    HFR_CHECK_LT(r, rows_);
    HFR_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Raw pointer to the start of row r (contiguous, cols() scalars).
  T* Row(size_t r) {
    HFR_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const T* Row(size_t r) const {
    HFR_CHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  /// Same as Row(r); lets a MatrixT stand in for a sparse row store in
  /// templated gradient/update code (see src/math/sparse.h).
  T* MutableRow(size_t r) { return Row(r); }

  AlignedVector<T>& data() { return data_; }
  const AlignedVector<T>& data() const { return data_; }

  /// Sets every element to `value`.
  void Fill(T value);

  /// Sets every element to zero.
  void SetZero() { Fill(T(0)); }

  /// this += scale * other. Shapes must match.
  void AddScaled(const MatrixT& other, T scale);

  /// Adds `scale * other` into the leading columns of this matrix;
  /// `other` may be narrower (used by padding aggregation, Eq. 7–8).
  void AddScaledIntoLeadingCols(const MatrixT& other, T scale);

  /// this *= scale.
  void Scale(T scale);

  /// Copy of the first `n_cols` columns (all rows). Eq. 8's `[: Nx]` slice.
  MatrixT LeadingCols(size_t n_cols) const;

  /// Copy of `n_rows` rows starting at `row0` (all columns).
  MatrixT RowSlice(size_t row0, size_t n_rows) const;

  /// Matrix transpose.
  MatrixT Transposed() const;

  /// Dense matmul: (m x k) * (k x n) -> (m x n).
  static MatrixT MatMul(const MatrixT& a, const MatrixT& b);

  /// Frobenius norm sqrt(sum of squares).
  T FrobeniusNorm() const;

  /// Largest |element|.
  T MaxAbs() const;

  bool SameShape(const MatrixT& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Element-wise cast-assign from the other scalar width; resizes to
  /// match. The fp32 backend's conversion boundary (double → float on the
  /// way into client/eval compute, never back).
  template <typename U>
  void AssignCast(const MatrixT<U>& other) {
    rows_ = other.rows();
    cols_ = other.cols();
    data_.resize(rows_ * cols_);
    const U* src = other.data().data();
    for (size_t i = 0; i < data_.size(); ++i) data_[i] = static_cast<T>(src[i]);
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  AlignedVector<T> data_;
};

/// Storage-of-record instantiation (server tables, checkpoints, wire).
using Matrix = MatrixT<double>;
/// fp32 compute-backend instantiation (client/eval working state).
using MatrixF = MatrixT<float>;

extern template class MatrixT<double>;
extern template class MatrixT<float>;

// --- Free vector helpers over raw rows ------------------------------------
//
// The double instantiations keep the plain ascending scalar loops the
// repo's bit-identity guarantees are pinned against; the float
// instantiations dispatch to the fp32 kernel backend (scalar or AVX2 —
// bit-identical to each other, see src/math/backend.h).

/// Dot product of two length-n arrays.
template <typename T>
T Dot(const T* a, const T* b, size_t n);

/// y += alpha * x (length n).
template <typename T>
void Axpy(T alpha, const T* x, T* y, size_t n);

/// Euclidean norm of a length-n array.
template <typename T>
T Norm2(const T* a, size_t n);

/// Cosine similarity; returns 0 when either vector is all-zero.
template <typename T>
T CosineSimilarity(const T* a, const T* b, size_t n);

extern template double Dot<double>(const double*, const double*, size_t);
extern template float Dot<float>(const float*, const float*, size_t);
extern template void Axpy<double>(double, const double*, double*, size_t);
extern template void Axpy<float>(float, const float*, float*, size_t);
extern template double Norm2<double>(const double*, size_t);
extern template float Norm2<float>(const float*, size_t);
extern template double CosineSimilarity<double>(const double*, const double*,
                                                size_t);
extern template float CosineSimilarity<float>(const float*, const float*,
                                              size_t);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_MATRIX_H_
