#include "src/core/config.h"

#include <gtest/gtest.h>

namespace hetefedrec {
namespace {

TEST(ConfigTest, DefaultsValid) {
  ExperimentConfig cfg;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, DimOrderingEnforced) {
  ExperimentConfig cfg;
  cfg.dims = {16, 8, 32};
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.dims = {0, 8, 16};
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.dims = {8, 8, 8};  // equal allowed (homogeneous runs)
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, RangeChecks) {
  ExperimentConfig cfg;
  cfg.data_scale = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.global_epochs = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.lr = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.alpha = -1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.top_k = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.group_fractions = {0, 0, 0};
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.kd_items = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg.ensemble_distillation = false;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, FaultRateChecks) {
  ExperimentConfig cfg;
  cfg.fault_upload_loss = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_corrupt = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  // Individually valid rates whose sum exceeds 1 must be rejected: they
  // partition a single uniform draw.
  cfg.fault_upload_loss = 0.4;
  cfg.fault_download_loss = 0.4;
  cfg.fault_crash = 0.4;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_upload_loss = 0.05;
  cfg.fault_corrupt = 0.01;
  EXPECT_TRUE(cfg.Validate().ok());
}

TEST(ConfigTest, BackoffChecks) {
  ExperimentConfig cfg;
  cfg.fault_retry_max = 0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_retry_base = 0.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_retry_cap = 0.5;  // below the 1.0 base
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_quarantine_cap = 1.0;  // below the 5.0 base
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_jitter = 1.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.fault_jitter = -0.1;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, AdmissionChecks) {
  ExperimentConfig cfg;
  // admit_* thresholds are dead knobs without the controller — reject so a
  // typo'd run doesn't silently skip the gates it asked for.
  cfg.admit_max_row_norm = 1.0;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.admit_outlier_z = 3.5;
  EXPECT_FALSE(cfg.Validate().ok());
  cfg = {};
  cfg.admission_control = true;
  cfg.admit_max_row_norm = 1.0;
  cfg.admit_outlier_z = 3.5;
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.admit_outlier_z = -1.0;
  EXPECT_FALSE(cfg.Validate().ok());
}

TEST(ConfigTest, CheckpointAndResumeChecks) {
  ExperimentConfig cfg;
  cfg.checkpoint_every = 5;
  EXPECT_FALSE(cfg.Validate().ok());  // needs checkpoint_path
  cfg.checkpoint_path = "/tmp/run.ckpt";
  EXPECT_TRUE(cfg.Validate().ok());
  cfg = {};
  cfg.resume_run = true;
  EXPECT_FALSE(cfg.Validate().ok());  // needs checkpoint_path
  cfg.checkpoint_path = "/tmp/run.ckpt";
  EXPECT_TRUE(cfg.Validate().ok());
  cfg.sync_verify_replicas = true;
  EXPECT_FALSE(cfg.Validate().ok());  // verify cache is not serialized
}

TEST(ConfigTest, MethodNamesMatchTableTwo) {
  EXPECT_EQ(MethodName(Method::kAllSmall), "All Small");
  EXPECT_EQ(MethodName(Method::kAllLargeExclusive), "All Large/Exclusive");
  EXPECT_EQ(MethodName(Method::kHeteFedRec), "HeteFedRec(Ours)");
}

TEST(ConfigTest, MethodByNameRoundTrip) {
  EXPECT_EQ(MethodByName("all_small").value(), Method::kAllSmall);
  EXPECT_EQ(MethodByName("all_large").value(), Method::kAllLarge);
  EXPECT_EQ(MethodByName("all_large_exclusive").value(),
            Method::kAllLargeExclusive);
  EXPECT_EQ(MethodByName("standalone").value(), Method::kStandalone);
  EXPECT_EQ(MethodByName("clustered").value(), Method::kClusteredFedRec);
  EXPECT_EQ(MethodByName("direct").value(), Method::kDirectlyAggregate);
  EXPECT_EQ(MethodByName("hetefedrec").value(), Method::kHeteFedRec);
  EXPECT_FALSE(MethodByName("fedavg").ok());
}

TEST(ConfigTest, HeterogeneityClassification) {
  EXPECT_FALSE(IsHeterogeneous(Method::kAllSmall));
  EXPECT_FALSE(IsHeterogeneous(Method::kAllLarge));
  EXPECT_FALSE(IsHeterogeneous(Method::kAllLargeExclusive));
  EXPECT_TRUE(IsHeterogeneous(Method::kStandalone));
  EXPECT_TRUE(IsHeterogeneous(Method::kClusteredFedRec));
  EXPECT_TRUE(IsHeterogeneous(Method::kDirectlyAggregate));
  EXPECT_TRUE(IsHeterogeneous(Method::kHeteFedRec));
}

TEST(ConfigTest, AllMethodsListComplete) {
  EXPECT_EQ(kAllMethods.size(), 7u);
  EXPECT_EQ(kAllMethods.front(), Method::kAllSmall);
  EXPECT_EQ(kAllMethods.back(), Method::kHeteFedRec);
}

}  // namespace
}  // namespace hetefedrec
