// Graceful degradation under injected faults (docs/ROBUSTNESS.md).
//
// Sweeps HeteFedRec on ML over total fault rates of 0-10% — split across
// upload loss, download loss, crashes and corruption — with admission
// control off and on. The headline: ranking quality degrades gracefully
// with the fault rate, and the admission gates keep the corrupted tail
// from collapsing the model (a NaN'd table without admission reports
// collapse=nan). The acceptance bar quoted in ISSUE/ROADMAP: NDCG under
// 5% upload loss + 1% corruption (admission on) within 10% of fault-free.
#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "src/core/trainer.h"
#include "src/util/table_printer.h"

namespace hetefedrec::bench {
namespace {

struct FaultMix {
  const char* label;
  double upload_loss;
  double download_loss;
  double crash;
  double corrupt;
};

int Main(int argc, char** argv) {
  CommandLine cli;
  AddCommonFlags(&cli);
  Status st = cli.Parse(argc, argv);
  if (!st.ok()) return FailWith(st);
  auto base_cfg = ConfigFromFlags(cli);
  if (!base_cfg.ok()) return FailWith(base_cfg.status());

  const FaultMix mixes[] = {
      {"none", 0.0, 0.0, 0.0, 0.0},
      {"1% mixed", 0.004, 0.003, 0.002, 0.001},
      {"5%+1% (bar)", 0.05, 0.0, 0.0, 0.01},
      {"10% mixed", 0.04, 0.03, 0.02, 0.01},
  };

  TablePrinter table(
      "Graceful degradation: HeteFedRec NDCG@20 on ML under injected faults",
      {"Faults", "Admission", "NDCG", "Recall", "Injected", "Rejected",
       "Collapse"});

  double baseline_ndcg = 0.0;
  double bar_ndcg = 0.0;
  size_t bar_rejections = 0;
  for (const FaultMix& mix : mixes) {
    const bool any = mix.upload_loss + mix.download_loss + mix.crash +
                         mix.corrupt >
                     0.0;
    for (bool admission : {false, true}) {
      if (!any && admission) continue;  // fault-free baseline runs once
      ExperimentConfig cfg = *base_cfg;
      cfg.base_model = BaseModel::kNcf;
      cfg.dataset = "ml";
      ApplyPaperDims(&cfg);
      cfg.fault_upload_loss = mix.upload_loss;
      cfg.fault_download_loss = mix.download_loss;
      cfg.fault_crash = mix.crash;
      cfg.fault_corrupt = mix.corrupt;
      if (admission) {
        cfg.admission_control = true;
        cfg.admit_max_row_norm = 1.0;
        cfg.admit_outlier_z = 6.0;
      }
      auto runner = ExperimentRunner::Create(cfg);
      if (!runner.ok()) return FailWith(runner.status());
      std::fprintf(stderr, "[robustness] faults=%s admission=%s ...\n",
                   mix.label, admission ? "on" : "off");
      ExperimentResult r = (*runner)->Run(Method::kHeteFedRec);
      const FaultStats& f = r.comm.faults();
      table.AddRow({mix.label, any ? (admission ? "on" : "off") : "-",
                    TablePrinter::Num(r.final_eval.overall.ndcg),
                    TablePrinter::Num(r.final_eval.overall.recall),
                    TablePrinter::Count(
                        static_cast<long long>(f.TotalInjected())),
                    TablePrinter::Count(
                        static_cast<long long>(f.TotalRejected())),
                    std::isnan(r.collapse_cv)
                        ? std::string("nan")
                        : TablePrinter::Num(r.collapse_cv, 4)});
      if (!any) baseline_ndcg = r.final_eval.overall.ndcg;
      if (admission && std::string(mix.label) == "5%+1% (bar)") {
        bar_ndcg = r.final_eval.overall.ndcg;
        bar_rejections = f.TotalRejected();
      }
    }
    table.AddSeparator();
  }

  table.Print();
  st = table.WriteCsv(CsvPath(cli, "robustness_degradation"));
  if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());

  const double drop =
      baseline_ndcg > 0.0 ? 1.0 - bar_ndcg / baseline_ndcg : 1.0;
  std::printf(
      "acceptance: 5%% upload loss + 1%% corruption (admission on): "
      "NDCG %.5f vs fault-free %.5f (drop %.1f%%, bar <10%%): %s; "
      "corruption-gate rejections %zu (bar >0): %s\n",
      bar_ndcg, baseline_ndcg, 100.0 * drop,
      drop < 0.10 ? "PASS" : "FAIL", bar_rejections,
      bar_rejections > 0 ? "PASS" : "FAIL");
  return 0;
}

}  // namespace
}  // namespace hetefedrec::bench

int main(int argc, char** argv) { return hetefedrec::bench::Main(argc, argv); }
