#include "src/core/local_trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/math/activations.h"
#include "src/math/init.h"

namespace hetefedrec {
namespace {

constexpr size_t kUsers = 4;
constexpr size_t kItems = 40;

Dataset MakeDataset() {
  std::vector<Interaction> xs;
  Rng rng(21);
  for (UserId u = 0; u < static_cast<UserId>(kUsers); ++u) {
    for (int k = 0; k < 8; ++k) {
      xs.push_back({u, static_cast<ItemId>((u * 3 + k) % kItems)});
    }
  }
  return Dataset::FromInteractions(xs, kUsers, kItems).value();
}

struct Globals {
  Matrix table;
  std::vector<FeedForwardNet> thetas;

  Globals(const std::vector<size_t>& widths, uint64_t seed) {
    Rng rng(seed);
    table = Matrix(kItems, widths.back());
    InitNormal(&table, 0.1, &rng);
    for (size_t w : widths) {
      FeedForwardNet t(2 * w, {8, 8});
      t.InitXavier(&rng);
      thetas.push_back(std::move(t));
    }
  }
};

TEST(LocalTrainerTest, SingleTaskProducesDeltasAndCounts) {
  Dataset ds = MakeDataset();
  Globals g({4}, 1);
  LocalTrainer trainer(ds, BaseModel::kNcf);
  ClientState client;
  Rng root(2);
  InitClient(&client, 0, Group::kSmall, 4, 0.1, root);

  LocalTrainerOptions opt;
  opt.local_epochs = 2;
  std::vector<LocalTaskSpec> tasks = {{0, 4}};
  auto res = trainer.Train(&client, g.table, {&g.thetas[0]}, tasks, opt);

  EXPECT_EQ(res.v_delta.rows(), kItems);
  EXPECT_EQ(res.v_delta.cols(), 4u);
  EXPECT_GT(res.v_delta.MaxAbs(), 0.0);
  ASSERT_EQ(res.theta_deltas.size(), 1u);
  EXPECT_GT(res.theta_deltas[0].MaxAbs(), 0.0);
  EXPECT_GT(res.train_loss, 0.0);
  EXPECT_EQ(res.params_down, kItems * 4 + g.thetas[0].ParamCount());
  EXPECT_EQ(res.params_up, res.params_down);
}

TEST(LocalTrainerTest, UserEmbeddingUpdatedInPlace) {
  Dataset ds = MakeDataset();
  Globals g({4}, 3);
  LocalTrainer trainer(ds, BaseModel::kNcf);
  ClientState client;
  Rng root(4);
  InitClient(&client, 1, Group::kSmall, 4, 0.1, root);
  Matrix before = client.user_embedding;

  LocalTrainerOptions opt;
  std::vector<LocalTaskSpec> tasks = {{0, 4}};
  trainer.Train(&client, g.table, {&g.thetas[0]}, tasks, opt);
  bool moved = false;
  for (size_t c = 0; c < 4 && !moved; ++c) {
    moved = client.user_embedding(0, c) != before(0, c);
  }
  EXPECT_TRUE(moved);
}

TEST(LocalTrainerTest, UntouchedItemRowsHaveZeroDelta) {
  // Without DDR, only items the client sampled (positives + negatives)
  // receive gradient; others must be exactly zero in the delta.
  Dataset ds = MakeDataset();
  Globals g({4}, 5);
  LocalTrainer trainer(ds, BaseModel::kNcf);
  ClientState client;
  Rng root(6);
  InitClient(&client, 0, Group::kSmall, 4, 0.1, root);

  LocalTrainerOptions opt;
  opt.apply_ddr = false;
  std::vector<LocalTaskSpec> tasks = {{0, 4}};
  auto res = trainer.Train(&client, g.table, {&g.thetas[0]}, tasks, opt);

  // Find at least one untouched row (kItems=40, user touches <= 8
  // positives + a few dozen sampled negatives across 2 epochs; some rows
  // stay untouched with overwhelming probability).
  size_t zero_rows = 0;
  for (size_t r = 0; r < kItems; ++r) {
    double row_max = 0;
    for (size_t c = 0; c < 4; ++c) {
      row_max = std::max(row_max, std::abs(res.v_delta(r, c)));
    }
    if (row_max == 0.0) zero_rows++;
  }
  EXPECT_GT(zero_rows, 0u);
}

TEST(LocalTrainerTest, DdrMakesDeltaDense) {
  Dataset ds = MakeDataset();
  Globals g({4}, 7);
  LocalTrainer trainer(ds, BaseModel::kNcf);
  ClientState client;
  Rng root(8);
  InitClient(&client, 0, Group::kSmall, 4, 0.1, root);

  LocalTrainerOptions opt;
  opt.apply_ddr = true;
  opt.alpha = 1.0;
  opt.ddr_sample_rows = 0;  // full table
  std::vector<LocalTaskSpec> tasks = {{0, 4}};
  auto res = trainer.Train(&client, g.table, {&g.thetas[0]}, tasks, opt);
  EXPECT_GT(res.reg_loss, 0.0);
  size_t zero_rows = 0;
  for (size_t r = 0; r < kItems; ++r) {
    double row_max = 0;
    for (size_t c = 0; c < 4; ++c) {
      row_max = std::max(row_max, std::abs(res.v_delta(r, c)));
    }
    if (row_max == 0.0) zero_rows++;
  }
  EXPECT_EQ(zero_rows, 0u);
}

TEST(LocalTrainerTest, DualTaskTouchesAllThetas) {
  Dataset ds = MakeDataset();
  Globals g({2, 4, 8}, 9);
  LocalTrainer trainer(ds, BaseModel::kNcf);
  ClientState client;
  Rng root(10);
  InitClient(&client, 2, Group::kLarge, 8, 0.1, root);

  LocalTrainerOptions opt;
  std::vector<LocalTaskSpec> tasks = {{0, 2}, {1, 4}, {2, 8}};
  auto res = trainer.Train(
      &client, g.table, {&g.thetas[0], &g.thetas[1], &g.thetas[2]}, tasks,
      opt);
  ASSERT_EQ(res.theta_deltas.size(), 3u);
  for (const auto& d : res.theta_deltas) EXPECT_GT(d.MaxAbs(), 0.0);
  // Comm includes all three Θ (Table III: Ul transmits Vl + Θs,m,l).
  size_t expected = kItems * 8 + g.thetas[0].ParamCount() +
                    g.thetas[1].ParamCount() + g.thetas[2].ParamCount();
  EXPECT_EQ(res.params_down, expected);
}

TEST(LocalTrainerTest, TrainingReducesLocalLoss) {
  Dataset ds = MakeDataset();
  Globals g({6}, 11);
  LocalTrainer trainer(ds, BaseModel::kNcf);

  // Loss after 1 local epoch vs after 30: should clearly go down.
  auto run = [&](int epochs) {
    ClientState client;
    Rng root(12);
    InitClient(&client, 0, Group::kSmall, 6, 0.1, root);
    LocalTrainerOptions opt;
    opt.local_epochs = epochs;
    std::vector<LocalTaskSpec> tasks = {{0, 6}};
    return trainer.Train(&client, g.table, {&g.thetas[0]}, tasks, opt)
        .train_loss;
  };
  double short_loss = run(1);
  double long_loss = run(30);
  EXPECT_LT(long_loss, short_loss);
}

TEST(LocalTrainerTest, DeterministicForSameClientState) {
  Dataset ds = MakeDataset();
  Globals g({4}, 13);
  LocalTrainer trainer(ds, BaseModel::kLightGcn);
  LocalTrainerOptions opt;
  std::vector<LocalTaskSpec> tasks = {{0, 4}};

  auto run = [&]() {
    ClientState client;
    Rng root(14);
    InitClient(&client, 3, Group::kSmall, 4, 0.1, root);
    return trainer.Train(&client, g.table, {&g.thetas[0]}, tasks, opt);
  };
  auto a = run();
  auto b = run();
  for (size_t i = 0; i < a.v_delta.data().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.v_delta.data()[i], b.v_delta.data()[i]);
  }
  EXPECT_DOUBLE_EQ(a.train_loss, b.train_loss);
}

TEST(LocalTrainerTest, ValidationCarveOutRecordsLoss) {
  Dataset ds = MakeDataset();
  Globals g({4}, 17);
  LocalTrainer trainer(ds, BaseModel::kNcf);
  ClientState client;
  Rng root(18);
  InitClient(&client, 0, Group::kSmall, 4, 0.1, root);

  LocalTrainerOptions opt;
  opt.local_epochs = 4;
  opt.validation_fraction = 0.25;
  opt.min_validation_positives = 4;  // fixture users have ~6 train items
  auto res = trainer.Train(&client, g.table, {&g.thetas[0]}, {{0, 4}}, opt);
  EXPECT_GT(res.validation_loss, 0.0);
  EXPECT_TRUE(std::isfinite(res.validation_loss));
  EXPECT_GT(res.v_delta.MaxAbs(), 0.0);
}

TEST(LocalTrainerTest, ValidationSkippedForTinyClients) {
  Dataset ds = MakeDataset();
  Globals g({4}, 19);
  LocalTrainer trainer(ds, BaseModel::kNcf);
  ClientState client;
  Rng root(20);
  InitClient(&client, 1, Group::kSmall, 4, 0.1, root);

  LocalTrainerOptions opt;
  opt.validation_fraction = 0.1;
  opt.min_validation_positives = 100;  // more than any fixture user has
  auto res = trainer.Train(&client, g.table, {&g.thetas[0]}, {{0, 4}}, opt);
  EXPECT_DOUBLE_EQ(res.validation_loss, 0.0);
}

TEST(LocalTrainerTest, ValidationSelectionNeverWorseThanLastEpoch) {
  // With many local epochs, best-of-epochs validation loss must be <= the
  // validation loss that plain last-epoch training would report.
  Dataset ds = MakeDataset();
  Globals g({4}, 21);
  LocalTrainer trainer(ds, BaseModel::kNcf);

  auto run = [&](int epochs) {
    ClientState client;
    Rng root(22);
    InitClient(&client, 0, Group::kSmall, 4, 0.1, root);
    LocalTrainerOptions opt;
    opt.local_epochs = epochs;
    opt.validation_fraction = 0.25;
    opt.min_validation_positives = 4;
    return trainer.Train(&client, g.table, {&g.thetas[0]}, {{0, 4}}, opt)
        .validation_loss;
  };
  double best_of_8 = run(8);
  double best_of_1 = run(1);
  EXPECT_LE(best_of_8, best_of_1 + 1e-9);
}

TEST(LocalTrainerTest, LightGcnPathProducesFiniteUpdates) {
  Dataset ds = MakeDataset();
  Globals g({2, 4, 8}, 15);
  LocalTrainer trainer(ds, BaseModel::kLightGcn);
  ClientState client;
  Rng root(16);
  InitClient(&client, 1, Group::kLarge, 8, 0.1, root);

  LocalTrainerOptions opt;
  opt.apply_ddr = true;
  opt.ddr_sample_rows = 8;
  std::vector<LocalTaskSpec> tasks = {{0, 2}, {1, 4}, {2, 8}};
  auto res = trainer.Train(
      &client, g.table, {&g.thetas[0], &g.thetas[1], &g.thetas[2]}, tasks,
      opt);
  for (double v : res.v_delta.data()) EXPECT_TRUE(std::isfinite(v));
  EXPECT_TRUE(std::isfinite(res.train_loss));
}

}  // namespace
}  // namespace hetefedrec
