#include "src/eval/evaluator.h"

#include <numeric>
#include <unordered_set>

#include "src/eval/metrics.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace hetefedrec {

Evaluator::Evaluator(const Dataset& ds, const GroupAssignment& assignment,
                     size_t top_k, size_t user_sample, uint64_t seed)
    : ds_(ds), assignment_(assignment), top_k_(top_k) {
  users_.resize(ds.num_users());
  std::iota(users_.begin(), users_.end(), 0);
  if (user_sample > 0 && user_sample < users_.size()) {
    Rng rng(seed);
    rng.Shuffle(&users_);
    users_.resize(user_sample);
  }
}

GroupedEval Evaluator::Evaluate(const ScoreFn& score_fn) const {
  return Evaluate(
      [&score_fn](UserId u, size_t /*thread_slot*/,
                  std::vector<double>* scores) { score_fn(u, scores); },
      /*pool=*/nullptr);
}

GroupedEval Evaluator::Evaluate(const ThreadedScoreFn& score_fn,
                                ThreadPool* pool) const {
  // Per-user metrics land in per-index slots; the reduction below walks
  // them in user order, so sums (and therefore results) are bit-identical
  // for any thread count.
  std::vector<double> recall(users_.size(), 0.0);
  std::vector<double> ndcg(users_.size(), 0.0);
  std::vector<uint8_t> counted(users_.size(), 0);

  const size_t n_slots = pool != nullptr ? pool->num_slots() : 1;
  // Per-thread scratch: the candidate scores and the train-item mask.
  std::vector<std::vector<double>> scores(n_slots);
  std::vector<std::vector<bool>> masked(n_slots,
                                        std::vector<bool>(ds_.num_items()));

  auto eval_user = [&](size_t k, size_t slot) {
    const UserId u = users_[k];
    const auto& test_items = ds_.TestItems(u);
    if (test_items.empty()) return;
    score_fn(u, slot, &scores[slot]);
    HFR_CHECK_EQ(scores[slot].size(), ds_.num_items());

    std::fill(masked[slot].begin(), masked[slot].end(), false);
    for (ItemId i : ds_.TrainItems(u)) masked[slot][i] = true;

    std::unordered_set<ItemId> relevant(test_items.begin(), test_items.end());
    std::vector<ItemId> topk = TopKItems(scores[slot], masked[slot], top_k_);
    recall[k] = RecallAtK(topk, relevant);
    ndcg[k] = NdcgAtK(topk, relevant);
    counted[k] = 1;
  };

  if (pool != nullptr && pool->num_workers() > 0) {
    pool->ParallelFor(users_.size(), eval_user);
  } else {
    for (size_t k = 0; k < users_.size(); ++k) eval_user(k, 0);
  }

  double sum_recall[1 + kNumGroups] = {0};
  double sum_ndcg[1 + kNumGroups] = {0};
  size_t counts[1 + kNumGroups] = {0};
  for (size_t k = 0; k < users_.size(); ++k) {
    if (!counted[k]) continue;
    int g = 1 + static_cast<int>(assignment_.of(users_[k]));
    sum_recall[0] += recall[k];
    sum_ndcg[0] += ndcg[k];
    counts[0]++;
    sum_recall[g] += recall[k];
    sum_ndcg[g] += ndcg[k];
    counts[g]++;
  }

  GroupedEval out;
  auto finalize = [&](int idx) {
    EvalResult r;
    r.users = counts[idx];
    if (counts[idx] > 0) {
      r.recall = sum_recall[idx] / static_cast<double>(counts[idx]);
      r.ndcg = sum_ndcg[idx] / static_cast<double>(counts[idx]);
    }
    return r;
  };
  out.overall = finalize(0);
  for (int g = 0; g < kNumGroups; ++g) out.per_group[g] = finalize(1 + g);
  return out;
}

}  // namespace hetefedrec
