#include "src/math/adam.h"

#include <cmath>

namespace hetefedrec {

void Adam::Step(Matrix* param, const Matrix& grad) {
  HFR_CHECK(param->SameShape(grad));
  if (m_.empty()) {
    m_ = Matrix(param->rows(), param->cols());
    v_ = Matrix(param->rows(), param->cols());
  }
  HFR_CHECK(m_.SameShape(*param));
  ++t_;
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  double* p = param->data().data();
  double* m = m_.data().data();
  double* v = v_.data().data();
  const double* g = grad.data().data();
  const size_t n = param->size();
  for (size_t i = 0; i < n; ++i) {
    m[i] = b1 * m[i] + (1.0 - b1) * g[i];
    v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
    double mhat = m[i] / bias1;
    double vhat = v[i] / bias2;
    p[i] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
  }
}

void Adam::Reset() {
  m_ = Matrix();
  v_ = Matrix();
  t_ = 0;
}

}  // namespace hetefedrec
