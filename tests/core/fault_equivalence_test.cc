// Fault injection end to end: the knobs are inert when off (defaults stay
// bit-identical to the fault-free implementation), faults are a pure
// function of the seed (reproducible, thread-count invariant, sync and
// async), injected faults surface in the FaultStats counters, and the
// admission gates reject corrupted updates instead of merging them.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/trainer.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.seed = 41;
  return cfg;
}

ExperimentConfig FaultyConfig() {
  ExperimentConfig cfg = SmallConfig();
  cfg.fault_upload_loss = 0.05;
  cfg.fault_download_loss = 0.03;
  cfg.fault_crash = 0.02;
  cfg.fault_duplicate = 0.02;
  cfg.fault_corrupt = 0.03;
  return cfg;
}

ExperimentResult RunWith(const ExperimentConfig& cfg, Method method) {
  auto runner = ExperimentRunner::Create(cfg);
  EXPECT_TRUE(runner.ok()) << runner.status().ToString();
  return (*runner)->Run(method);
}

bool AllFaultCountersZero(const FaultStats& f) {
  return f.TotalInjected() == 0 && f.TotalRejected() == 0 &&
         f.rows_clipped == 0 && f.quarantines == 0 && f.retries == 0 &&
         f.gave_up == 0 && f.nonfinite_grad_steps == 0;
}

void ExpectSameRun(const ExperimentResult& a, const ExperimentResult& b) {
  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.comm.TotalTransmitted(), b.comm.TotalTransmitted());
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
  EXPECT_EQ(a.comm.ExportCounters(), b.comm.ExportCounters());
}

// With every fault rate at zero, the retry/backoff knobs must be inert:
// the gate and injector are never constructed and the run is bit-identical
// to the pre-robustness implementation.
TEST(FaultEquivalence, KnobsAreInertWithoutFaultRates) {
  for (Method method : {Method::kHeteFedRec, Method::kClusteredFedRec}) {
    ExperimentConfig plain = SmallConfig();
    ExperimentConfig knobs = plain;
    knobs.fault_retry_max = 2;
    knobs.fault_retry_base = 0.1;
    knobs.fault_retry_cap = 10.0;
    knobs.fault_quarantine_base = 1.0;
    knobs.fault_quarantine_cap = 50.0;
    knobs.fault_jitter = 0.9;

    ExperimentResult a = RunWith(plain, method);
    ExperimentResult b = RunWith(knobs, method);
    SCOPED_TRACE(MethodName(method));
    ExpectSameRun(a, b);
    EXPECT_TRUE(AllFaultCountersZero(a.comm.faults()));
    EXPECT_TRUE(AllFaultCountersZero(b.comm.faults()));
  }
}

// Same seed, same faults: a faulted run reproduces bit-for-bit, and the
// injected-fault counters land in FaultStats.
TEST(FaultEquivalence, FaultedRunsReproduceBitForBit) {
  ExperimentConfig cfg = FaultyConfig();
  ExperimentResult a = RunWith(cfg, Method::kHeteFedRec);
  ExperimentResult b = RunWith(cfg, Method::kHeteFedRec);
  ExpectSameRun(a, b);

  const FaultStats& f = a.comm.faults();
  EXPECT_GT(f.TotalInjected(), 0u);
  EXPECT_GT(f.upload_lost + f.download_lost + f.crashed, 0u);
  EXPECT_GT(f.retries + f.gave_up, 0u);  // failures hit the backoff path
}

// The determinism bar: fault draws are keyed by (seed, client, round/seq),
// never by execution order, so 1 thread vs 4 threads is bit-identical —
// under both schedules.
TEST(FaultEquivalence, FaultsAreThreadCountInvariant) {
  for (bool async : {false, true}) {
    ExperimentConfig cfg = FaultyConfig();
    cfg.async_mode = async;
    cfg.admission_control = true;
    cfg.admit_max_row_norm = 1.0;
    if (async) cfg.async_dispatch_batch = 8;
    ExperimentConfig cfg4 = cfg;
    cfg4.num_threads = 4;

    ExperimentResult serial = RunWith(cfg, Method::kHeteFedRec);
    ExperimentResult parallel = RunWith(cfg4, Method::kHeteFedRec);
    SCOPED_TRACE(async ? "async" : "sync");
    ExpectSameRun(serial, parallel);
    EXPECT_GT(serial.comm.faults().TotalInjected(), 0u);
  }
}

// A different seed draws different faults (the injector is not keyed off
// some global counter that would make every seed collide).
TEST(FaultEquivalence, SeedChangesTheFaultSchedule) {
  ExperimentConfig a_cfg = FaultyConfig();
  ExperimentConfig b_cfg = FaultyConfig();
  b_cfg.seed = 42;
  const FaultStats a = RunWith(a_cfg, Method::kHeteFedRec).comm.faults();
  const FaultStats b = RunWith(b_cfg, Method::kHeteFedRec).comm.faults();
  EXPECT_TRUE(a.download_lost != b.download_lost ||
              a.upload_lost != b.upload_lost || a.crashed != b.crashed ||
              a.duplicates != b.duplicates || a.corrupted != b.corrupted);
}

// Every federated method survives the full fault cocktail under both
// schedules and still merges uploads.
TEST(FaultEquivalence, AllFederatedMethodsRunFaulted) {
  for (bool async : {false, true}) {
    for (Method method : kAllMethods) {
      if (method == Method::kStandalone) continue;
      ExperimentConfig cfg = FaultyConfig();
      cfg.async_mode = async;
      ExperimentResult r = RunWith(cfg, method);
      SCOPED_TRACE(MethodName(method) + (async ? " async" : " sync"));
      size_t uploads = 0;
      for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
        uploads += r.comm.Participations(g);
      }
      EXPECT_GT(uploads, 0u);
      EXPECT_GT(r.comm.faults().TotalInjected(), 0u);
    }
  }
}

// Admission control catches the corruption the injector produces: NaN/Inf
// poisoning trips the finite scan, large-norm scaling trips the z-gate.
// Without admission the corrupted bytes merge silently (counters only).
TEST(FaultEquivalence, AdmissionRejectsCorruptedUpdates) {
  ExperimentConfig cfg = SmallConfig();
  cfg.fault_corrupt = 0.1;
  cfg.admission_control = true;
  cfg.admit_max_row_norm = 1.0;
  cfg.admit_outlier_z = 6.0;

  ExperimentResult r = RunWith(cfg, Method::kHeteFedRec);
  const FaultStats& f = r.comm.faults();
  EXPECT_GT(f.corrupted, 0u);
  EXPECT_GT(f.TotalRejected(), 0u);
  EXPECT_EQ(f.TotalRejected(), f.rejected_nonfinite + f.rejected_outlier);
  // Every rejection quarantined its client.
  EXPECT_EQ(f.quarantines, f.TotalRejected());
  // Rejected updates never merge, so no NaN can reach the tables: the
  // final metrics are finite and the run reproduces.
  EXPECT_TRUE(std::isfinite(r.final_eval.overall.ndcg));
  ExpectSameRun(r, RunWith(cfg, Method::kHeteFedRec));
}

// The graceful-degradation criterion at test scale: 5% upload loss + 1%
// corruption behind admission control keeps NDCG in the same band as the
// fault-free run (the bench sweeps this properly; here we pin "does not
// collapse").
TEST(FaultEquivalence, ModerateFaultsDegradeGracefully) {
  ExperimentConfig clean = SmallConfig();
  ExperimentConfig faulty = SmallConfig();
  faulty.fault_upload_loss = 0.05;
  faulty.fault_corrupt = 0.01;
  faulty.admission_control = true;
  faulty.admit_max_row_norm = 1.0;
  faulty.admit_outlier_z = 6.0;

  ExperimentResult clean_res = RunWith(clean, Method::kHeteFedRec);
  ExperimentResult faulty_res = RunWith(faulty, Method::kHeteFedRec);
  EXPECT_GT(clean_res.final_eval.overall.ndcg, 0.0);
  EXPECT_GT(faulty_res.final_eval.overall.ndcg,
            0.5 * clean_res.final_eval.overall.ndcg);
}

// Standalone training has no network, no server, no rounds: every
// robustness knob must be a no-op there.
TEST(FaultEquivalence, StandaloneIgnoresRobustnessKnobs) {
  ExperimentConfig plain = SmallConfig();
  ExperimentConfig knobs = FaultyConfig();
  knobs.admission_control = true;
  knobs.admit_max_row_norm = 1.0;
  ExperimentResult a = RunWith(plain, Method::kStandalone);
  ExperimentResult b = RunWith(knobs, Method::kStandalone);
  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_TRUE(AllFaultCountersZero(b.comm.faults()));
}

}  // namespace
}  // namespace hetefedrec
