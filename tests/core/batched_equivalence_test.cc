// Batched/scalar equivalence: the batched scoring kernel layer
// (use_batched_scoring, on by default) must be *bit-identical* to the
// per-sample reference across the full pipeline — same metrics, same
// collapse diagnostics, same checkpointed parameters — for all seven
// methods and both base models. This is the acceptance bar that default
// metrics are unchanged from the pre-batching implementation: the scalar
// path is byte-for-byte the PR 2 computation.
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "src/core/checkpoint.h"
#include "src/core/trainer.h"
#include "tests/core/equivalence_test_util.h"

namespace hetefedrec {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig cfg;
  cfg.dataset = "ml";
  cfg.data_scale = 0.02;
  cfg.global_epochs = 2;
  cfg.clients_per_round = 32;
  cfg.eval_user_sample = 60;
  cfg.ddr_sample_rows = 64;
  cfg.kd_items = 16;
  cfg.local_validation_fraction = 0.2;  // exercise batched validation too
  cfg.seed = 57;
  return cfg;
}

void ExpectSameCheckpoint(const std::string& path_a,
                          const std::string& path_b) {
  auto a = LoadServerCheckpoint(path_a);
  auto b = LoadServerCheckpoint(path_b);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(a->tables.size(), b->tables.size());
  for (size_t s = 0; s < a->tables.size(); ++s) {
    ASSERT_TRUE(a->tables[s].SameShape(b->tables[s]));
    for (size_t t = 0; t < a->tables[s].data().size(); ++t) {
      ASSERT_EQ(a->tables[s].data()[t], b->tables[s].data()[t])
          << "slot " << s << " elem " << t;
    }
    ASSERT_EQ(a->thetas[s].num_layers(), b->thetas[s].num_layers());
    for (size_t l = 0; l < a->thetas[s].num_layers(); ++l) {
      for (size_t t = 0; t < a->thetas[s].weight(l).data().size(); ++t) {
        ASSERT_EQ(a->thetas[s].weight(l).data()[t],
                  b->thetas[s].weight(l).data()[t]);
      }
      for (size_t t = 0; t < a->thetas[s].bias(l).data().size(); ++t) {
        ASSERT_EQ(a->thetas[s].bias(l).data()[t],
                  b->thetas[s].bias(l).data()[t]);
      }
    }
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

class BatchedEquivalenceEndToEnd : public ::testing::TestWithParam<BaseModel> {
};

TEST_P(BatchedEquivalenceEndToEnd, AllMethodsMatchScalarReference) {
  for (Method method : kAllMethods) {
    ExperimentConfig scalar_cfg = SmallConfig();
    scalar_cfg.base_model = GetParam();
    scalar_cfg.use_batched_scoring = false;
    ExperimentConfig batched_cfg = SmallConfig();
    batched_cfg.base_model = GetParam();
    batched_cfg.use_batched_scoring = true;
    const bool federated = method != Method::kStandalone;
    if (federated) {
      scalar_cfg.checkpoint_path = "/tmp/hfr_batch_scalar.ckpt";
      batched_cfg.checkpoint_path = "/tmp/hfr_batch_batched.ckpt";
    }

    auto scalar_runner = ExperimentRunner::Create(scalar_cfg);
    auto batched_runner = ExperimentRunner::Create(batched_cfg);
    ASSERT_TRUE(scalar_runner.ok());
    ASSERT_TRUE(batched_runner.ok());
    ExperimentResult scalar_res = (*scalar_runner)->Run(method);
    ExperimentResult batched_res = (*batched_runner)->Run(method);

    SCOPED_TRACE(MethodName(method));
    ExpectSameEval(scalar_res.final_eval, batched_res.final_eval);
    if (federated) {
      EXPECT_EQ(scalar_res.collapse_variance, batched_res.collapse_variance);
      EXPECT_EQ(scalar_res.collapse_cv, batched_res.collapse_cv);
      EXPECT_EQ(scalar_res.comm.TotalTransmitted(),
                batched_res.comm.TotalTransmitted());
      ExpectSameCheckpoint(scalar_cfg.checkpoint_path,
                           batched_cfg.checkpoint_path);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Models, BatchedEquivalenceEndToEnd,
                         ::testing::Values(BaseModel::kNcf,
                                           BaseModel::kLightGcn));

TEST(BatchedEquivalence, DensePathAlsoMatches) {
  // The batched layer sits above both table containers; the dense
  // reference path must agree with itself across the toggle too.
  ExperimentConfig scalar_cfg = SmallConfig();
  scalar_cfg.use_sparse_updates = false;
  scalar_cfg.use_batched_scoring = false;
  ExperimentConfig batched_cfg = SmallConfig();
  batched_cfg.use_sparse_updates = false;
  batched_cfg.use_batched_scoring = true;

  auto scalar_runner = ExperimentRunner::Create(scalar_cfg);
  auto batched_runner = ExperimentRunner::Create(batched_cfg);
  ASSERT_TRUE(scalar_runner.ok());
  ASSERT_TRUE(batched_runner.ok());
  ExpectSameEval((*scalar_runner)->Run(Method::kHeteFedRec).final_eval,
                 (*batched_runner)->Run(Method::kHeteFedRec).final_eval);
}

TEST(BatchedEquivalence, ThreadCountInvariantWithBatching) {
  ExperimentConfig serial_cfg = SmallConfig();
  serial_cfg.num_threads = 1;
  ExperimentConfig parallel_cfg = SmallConfig();
  parallel_cfg.num_threads = 4;

  auto serial = ExperimentRunner::Create(serial_cfg);
  auto parallel = ExperimentRunner::Create(parallel_cfg);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ExperimentResult a = (*serial)->Run(Method::kHeteFedRec);
  ExperimentResult b = (*parallel)->Run(Method::kHeteFedRec);
  ExpectSameEval(a.final_eval, b.final_eval);
  EXPECT_EQ(a.collapse_variance, b.collapse_variance);
}

}  // namespace
}  // namespace hetefedrec
