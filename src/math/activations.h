// Scalar activations and the binary cross-entropy loss (Eq. 2).
//
// Everything is written against logits where possible for numerical
// stability: the recommendation loss is computed as BCE-with-logits so no
// intermediate sigmoid can saturate to exactly 0 or 1.
#ifndef HETEFEDREC_MATH_ACTIVATIONS_H_
#define HETEFEDREC_MATH_ACTIVATIONS_H_

#include <cstddef>

namespace hetefedrec {

/// Numerically stable logistic function.
double Sigmoid(double x);

/// ReLU.
double Relu(double x);

/// dReLU/dx given the forward input.
double ReluGrad(double x);

/// \brief Stable binary cross entropy on a logit.
///
/// Computes -[y log sigmoid(z) + (1-y) log(1 - sigmoid(z))] without forming
/// the sigmoid: max(z,0) - z*y + log(1 + exp(-|z|)).
double BceWithLogits(double logit, double label);

/// dBCE/dlogit = sigmoid(logit) - label.
double BceWithLogitsGrad(double logit, double label);

}  // namespace hetefedrec

#endif  // HETEFEDREC_MATH_ACTIVATIONS_H_
