#include "src/core/local_trainer.h"

#include <algorithm>
#include <limits>

#include "src/core/decorrelation.h"
#include "src/math/activations.h"
#include "src/math/adam.h"
#include "src/util/telemetry/profiler.h"

namespace hetefedrec {

LocalTrainer::LocalTrainer(const Dataset& ds, BaseModel model)
    : ds_(ds), model_(model) {}

LocalUpdateResult LocalTrainer::Train(
    ClientState* client, const Matrix& global_table,
    const std::vector<const FeedForwardNet*>& thetas,
    const std::vector<LocalTaskSpec>& tasks,
    const LocalTrainerOptions& options) {
  return options.use_sparse
             ? TrainImpl<true>(client, global_table, thetas, tasks, options)
             : TrainImpl<false>(client, global_table, thetas, tasks, options);
}

template <bool kSparse>
LocalUpdateResult LocalTrainer::TrainImpl(
    ClientState* client, const Matrix& global_table,
    const std::vector<const FeedForwardNet*>& thetas,
    const std::vector<LocalTaskSpec>& tasks,
    const LocalTrainerOptions& options) {
  HFR_CHECK(!tasks.empty());
  HFR_CHECK_EQ(tasks.size(), thetas.size());
  const size_t width = tasks.back().width;
  HFR_CHECK_EQ(global_table.cols(), width);
  HFR_CHECK_EQ(client->user_embedding.cols(), width);
  for (size_t t = 0; t + 1 < tasks.size(); ++t) {
    HFR_CHECK_LE(tasks[t].width, tasks[t + 1].width);
  }

  // Local working view of V ("download", counted once per round): a full
  // dense copy on the reference path, a copy-on-write overlay on the
  // sparse path.
  if constexpr (kSparse) {
    v_overlay_.Reset(&global_table);
    v_grad_sparse_.Reset(global_table.rows(), width);
  } else {
    v_local_ = global_table;
    if (!v_grad_.SameShape(v_local_)) v_grad_ = Matrix(v_local_.rows(), width);
  }
  auto local_table = [&]() -> auto& {
    if constexpr (kSparse) {
      return v_overlay_;
    } else {
      return v_local_;
    }
  };
  auto local_grad = [&]() -> auto& {
    if constexpr (kSparse) {
      return v_grad_sparse_;
    } else {
      return v_grad_;
    }
  };
  auto& vtab = local_table();
  auto& vgrad = local_grad();

  if (u_grad_.cols() != width) u_grad_ = Matrix(1, width);

  // Θ download buffers and gradient accumulators, reused across calls.
  theta_local_.resize(tasks.size());
  theta_grad_.resize(tasks.size());
  size_t theta_params = 0;
  for (size_t t = 0; t < tasks.size(); ++t) {
    HFR_CHECK(thetas[t] != nullptr);
    theta_local_[t] = *thetas[t];
    theta_params += thetas[t]->ParamCount();
    if (!theta_grad_[t].SameShape(theta_local_[t])) {
      theta_grad_[t] = FeedForwardNet::ZerosLike(theta_local_[t]);
    }
  }

  // Fresh optimizer state for this round.
  AdamOptions adam_opt;
  adam_opt.lr = options.lr;
  Adam adam_v(adam_opt);
  if constexpr (kSparse) {
    adam_v_sparse_.set_options(adam_opt);
    adam_v_sparse_.Reset(global_table.rows(), width);
  }
  Adam adam_u(adam_opt);
  std::vector<FfnAdam> adam_theta(tasks.size(), FfnAdam(adam_opt));

  // One Scorer per task width.
  std::vector<Scorer> scorers;
  scorers.reserve(tasks.size());
  for (const LocalTaskSpec& task : tasks) {
    scorers.emplace_back(model_, task.width);
  }

  // Validation carve-out (§III-A): hold out the tail of the (already
  // shuffled) training list; fit on the rest; keep the epoch with the best
  // validation BCE.
  const std::vector<ItemId>& all_train = ds_.TrainItems(client->id);
  std::vector<ItemId> fit_items = all_train;
  std::vector<Sample> val_samples;
  const bool use_validation =
      options.validation_fraction > 0.0 &&
      all_train.size() >= options.min_validation_positives;
  if (use_validation) {
    size_t n_val = std::max<size_t>(
        1, static_cast<size_t>(options.validation_fraction *
                               static_cast<double>(all_train.size())));
    std::vector<ItemId> val_items(all_train.end() - n_val, all_train.end());
    fit_items.assign(all_train.begin(), all_train.end() - n_val);
    val_samples =
        ds_.BuildEpochFromPositives(client->id, val_items, &client->rng);
  }
  const std::vector<ItemId>& train_items = fit_items;

  // Best-epoch snapshot state for validation-guided selection. The sparse
  // path snapshots only the overlay's packed rows + data — O(touched) per
  // improving epoch, no O(num_items) position-table copy.
  double best_val_loss = std::numeric_limits<double>::infinity();
  bool best_set = false;
  Matrix best_v;
  std::vector<uint32_t> best_overlay_rows;
  std::vector<double> best_overlay_data;
  Matrix best_u;
  std::vector<FeedForwardNet> best_theta;

  LocalUpdateResult result;

  for (int epoch = 0; epoch < options.local_epochs; ++epoch) {
    std::vector<Sample> samples = ds_.BuildEpochFromPositives(
        client->id, fit_items, &client->rng);
    if constexpr (kSparse) {
      vgrad.Clear();
    } else {
      vgrad.SetZero();
    }
    u_grad_.SetZero();
    for (auto& g : theta_grad_) g.SetZero();

    double bce_loss = 0.0;
    Scorer::TrainCache cache;
    if (options.use_batched) {
      // The epoch's item list is shared by every task's forward block.
      const size_t n = samples.size();
      sample_items_.resize(n);
      logits_.resize(n);
      dlogits_.resize(n);
      for (size_t b = 0; b < n; ++b) sample_items_[b] = samples[b].item;
    }
    for (size_t t = 0; t < tasks.size(); ++t) {
      Scorer& sc = scorers[t];
      sc.BeginUser(client->user_embedding.Row(0), vtab, train_items);
      if (options.use_batched) {
        // One forward block and one backward block per task; losses and
        // dlogits materialize in sample order, so every accumulator
        // (bce_loss, gradients) sums in the per-sample reference order.
        const size_t n = samples.size();
        {
          HFR_PROFILE("forward");
          sc.ScoreForTrainBatch(vtab, theta_local_[t], sample_items_.data(),
                                n, &batch_cache_, logits_.data());
          for (size_t b = 0; b < n; ++b) {
            bce_loss += BceWithLogits(logits_[b], samples[b].label);
            dlogits_[b] = BceWithLogitsGrad(logits_[b], samples[b].label);
          }
        }
        {
          HFR_PROFILE("backward");
          sc.BackwardBatch(theta_local_[t], batch_cache_, dlogits_.data(),
                           &vgrad, u_grad_.Row(0), &theta_grad_[t]);
        }
      } else {
        for (const Sample& s : samples) {
          double logit = sc.ScoreForTrain(vtab, theta_local_[t], s.item,
                                          &cache);
          bce_loss += BceWithLogits(logit, s.label);
          sc.BackwardSample(theta_local_[t], cache,
                            BceWithLogitsGrad(logit, s.label), &vgrad,
                            u_grad_.Row(0), &theta_grad_[t]);
        }
      }
      sc.FinishUserBackward(&vgrad, u_grad_.Row(0));
    }

    double reg_loss = 0.0;
    if (options.apply_ddr) {
      reg_loss = DecorrelationLossAndGrad(vtab, options.alpha,
                                          options.ddr_sample_rows,
                                          &client->rng, &vgrad);
    }

    {
      HFR_PROFILE("adam");
      if constexpr (kSparse) {
        adam_v_sparse_.Step(&v_overlay_, v_grad_sparse_);
      } else {
        adam_v.Step(&v_local_, v_grad_);
      }
      adam_u.Step(&client->user_embedding, u_grad_);
      for (size_t t = 0; t < tasks.size(); ++t) {
        adam_theta[t].Step(&theta_local_[t], theta_grad_[t]);
      }
    }

    result.train_samples += samples.size() * tasks.size();

    if (epoch + 1 == options.local_epochs) {
      result.train_loss =
          samples.empty()
              ? 0.0
              : bce_loss / (static_cast<double>(samples.size()) *
                            static_cast<double>(tasks.size()));
      result.reg_loss = reg_loss;
    }

    if (use_validation && !val_samples.empty()) {
      // Validation BCE of the client's own-width model after this epoch.
      Scorer& own = scorers.back();
      own.BeginUser(client->user_embedding.Row(0), vtab, fit_items);
      double val = 0.0;
      if (options.use_batched) {
        const size_t n = val_samples.size();
        val_items_.resize(n);
        val_scores_.resize(n);
        for (size_t b = 0; b < n; ++b) val_items_[b] = val_samples[b].item;
        own.ScoreBatch(vtab, theta_local_.back(), val_items_.data(), n,
                       val_scores_.data());
        for (size_t b = 0; b < n; ++b) {
          val += BceWithLogits(val_scores_[b], val_samples[b].label);
        }
      } else {
        for (const Sample& s : val_samples) {
          val += BceWithLogits(own.Score(vtab, theta_local_.back(), s.item),
                               s.label);
        }
      }
      val /= static_cast<double>(val_samples.size());
      result.train_samples += val_samples.size();
      if (val < best_val_loss) {
        best_val_loss = val;
        best_set = true;
        if constexpr (kSparse) {
          v_overlay_.SnapshotLocal(&best_overlay_rows, &best_overlay_data);
        } else {
          best_v = v_local_;
        }
        best_u = client->user_embedding;
        best_theta = theta_local_;
      }
    }
  }

  // Delta-sync subscription: every row the client read. Captured *before*
  // the best-epoch restore — rows mutated only after the best epoch drop
  // out of the upload set, but the client still needed their fresh values.
  if constexpr (kSparse) {
    result.read_rows.assign(v_overlay_.touched().begin(),
                            v_overlay_.touched().end());
    for (const Sample& s : val_samples) {
      // Validation items are scored but never trained, so they are read
      // without entering the overlay.
      result.read_rows.push_back(static_cast<uint32_t>(s.item));
    }
    std::sort(result.read_rows.begin(), result.read_rows.end());
    result.read_rows.erase(
        std::unique(result.read_rows.begin(), result.read_rows.end()),
        result.read_rows.end());
  }

  if (use_validation && best_set) {
    if constexpr (kSparse) {
      // Rows touched after the best epoch revert to base values by
      // dropping out of the overlay, exactly matching the dense restore.
      v_overlay_.RestoreLocal(best_overlay_rows, best_overlay_data);
    } else {
      v_local_ = best_v;
    }
    client->user_embedding = best_u;
    theta_local_ = std::move(best_theta);
    result.validation_loss = best_val_loss;
  }

  // Deltas to upload. Identical arithmetic on both paths: the dense path's
  // delta is exactly 0.0 outside the touched set (zero gradient in every
  // epoch keeps the Adam moments and step at exactly zero).
  size_t v_upload_params = global_table.size();
  if constexpr (kSparse) {
    result.sparse = true;
    SparseRowUpdate& up = result.v_delta_sparse;
    up.width = width;
    up.rows.assign(v_overlay_.touched().begin(), v_overlay_.touched().end());
    std::sort(up.rows.begin(), up.rows.end());
    up.data.resize(up.rows.size() * width);
    for (size_t k = 0; k < up.rows.size(); ++k) {
      const double* local = v_overlay_.Row(up.rows[k]);
      const double* base = global_table.Row(up.rows[k]);
      double* out = up.data.data() + k * width;
      for (size_t d = 0; d < width; ++d) out[d] = local[d] - base[d];
    }
    if (options.sparse_comm_accounting) v_upload_params = up.ParamCount();
  } else {
    result.v_delta = v_local_;
    result.v_delta.AddScaled(global_table, -1.0);
  }
  result.theta_deltas.resize(tasks.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    FeedForwardNet d = theta_local_[t];
    d.AddScaled(*thetas[t], -1.0);
    result.theta_deltas[t] = std::move(d);
  }
  result.params_down = global_table.size() + theta_params;
  result.params_up = v_upload_params + theta_params;
  long long skipped = adam_u.skipped_steps();
  if constexpr (kSparse) {
    skipped += adam_v_sparse_.skipped_steps();
  } else {
    skipped += adam_v.skipped_steps();
  }
  for (const FfnAdam& a : adam_theta) skipped += a.skipped_steps();
  result.nonfinite_grad_steps = static_cast<size_t>(skipped);
  return result;
}

template LocalUpdateResult LocalTrainer::TrainImpl<true>(
    ClientState*, const Matrix&, const std::vector<const FeedForwardNet*>&,
    const std::vector<LocalTaskSpec>&, const LocalTrainerOptions&);
template LocalUpdateResult LocalTrainer::TrainImpl<false>(
    ClientState*, const Matrix&, const std::vector<const FeedForwardNet*>&,
    const std::vector<LocalTaskSpec>&, const LocalTrainerOptions&);

}  // namespace hetefedrec
