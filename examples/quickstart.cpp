// Quickstart: train HeteFedRec on a small synthetic MovieLens-like dataset
// and print overall + per-group metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/core/trainer.h"

int main() {
  using namespace hetefedrec;

  // 1. Configure the experiment. Defaults follow the paper's §V-D settings
  //    (dims {8,16,32}, 5:3:2 division, Adam lr 0.001); we shrink the
  //    dataset so this runs in under a minute (HeteFedRec overtakes the
  //    homogeneous baselines in the later epochs — Fig. 7).
  ExperimentConfig config;
  config.dataset = "ml";
  config.data_scale = 0.05;  // ~300 users
  config.base_model = BaseModel::kNcf;
  config.global_epochs = 14;
  // Round size scales with the population (the paper's 256 of 6,040);
  // keeping 256 at example scale would mean ~1 aggregation round per epoch.
  config.clients_per_round = 64;
  config.eval_user_sample = 200;

  // 2. Create a runner: generates the dataset, splits train/test, and
  //    divides clients into Us/Um/Ul by interaction count.
  auto runner = ExperimentRunner::Create(config);
  if (!runner.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 runner.status().ToString().c_str());
    return 1;
  }

  std::printf("dataset: %zu users, %zu items, %zu interactions\n",
              (*runner)->dataset().num_users(),
              (*runner)->dataset().num_items(),
              (*runner)->dataset().TotalInteractions());
  std::printf("groups: |Us|=%zu |Um|=%zu |Ul|=%zu\n",
              (*runner)->groups().size(Group::kSmall),
              (*runner)->groups().size(Group::kMedium),
              (*runner)->groups().size(Group::kLarge));

  // 3. Train HeteFedRec and a homogeneous baseline for comparison.
  for (Method method : {Method::kAllSmall, Method::kHeteFedRec}) {
    ExperimentResult result = (*runner)->Run(method);
    std::printf("\n%-20s Recall@20=%.5f NDCG@20=%.5f (%.1fs)\n",
                MethodName(method).c_str(), result.final_eval.overall.recall,
                result.final_eval.overall.ndcg, result.train_seconds);
    for (Group g : {Group::kSmall, Group::kMedium, Group::kLarge}) {
      std::printf("  %-4s NDCG@20=%.5f over %zu users\n",
                  GroupName(g).c_str(), result.final_eval.group(g).ndcg,
                  result.final_eval.group(g).users);
    }
  }
  return 0;
}
