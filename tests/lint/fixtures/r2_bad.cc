// Fixture: every construct here must trip R2 (ambient randomness).
#include <cstdlib>
#include <random>

int Draw() {
  std::random_device rd;            // finding
  std::mt19937 gen(rd());           // finding
  std::default_random_engine e{1};  // finding
  (void)gen;
  (void)e;
  srand(42);                        // finding
  return rand();                    // finding
}
